//===- tests/test_json.cpp - Minimal JSON parser --------------------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
//
// The parser's one job is to round-trip the repo's own report writers
// (bench envelopes, telemetry dumps, PMU sections), so beyond the usual
// scalar/structure/escape cases it parses a representative
// BENCH_suite.json fragment and the telemetry registry's real output.
//
//===----------------------------------------------------------------------===//

#include "support/json.h"

#include "support/telemetry.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <string_view>

using namespace sepe;

namespace {

json::Value parseOk(const std::string &Text) {
  Expected<json::Value> Doc = json::parse(Text);
  EXPECT_TRUE(Doc) << Text;
  return Doc ? Doc.take() : json::Value::makeNull();
}

TEST(Json, Scalars) {
  EXPECT_TRUE(parseOk("null").isNull());
  EXPECT_TRUE(parseOk("true").boolean());
  EXPECT_FALSE(parseOk("false").boolean());
  EXPECT_DOUBLE_EQ(parseOk("42").number(), 42.0);
  EXPECT_DOUBLE_EQ(parseOk("-3.5e2").number(), -350.0);
  EXPECT_EQ(parseOk("\"hi\"").string(), "hi");
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(parseOk(R"("a\"b\\c\/d")").string(), "a\"b\\c/d");
  EXPECT_EQ(parseOk(R"("line\nbreak\ttab")").string(), "line\nbreak\ttab");
  EXPECT_EQ(parseOk(R"("AB")").string(), "AB");
}

TEST(Json, NestedStructure) {
  const json::Value Doc = parseOk(
      R"({"a": [1, 2, {"b": true}], "c": {"d": null}, "e": "x"})");
  ASSERT_TRUE(Doc.isObject());
  const json::Value *A = Doc.find("a");
  ASSERT_NE(A, nullptr);
  ASSERT_TRUE(A->isArray());
  ASSERT_EQ(A->array().size(), 3u);
  EXPECT_DOUBLE_EQ(A->array()[0].number(), 1.0);
  EXPECT_TRUE(A->array()[2].find("b")->boolean());
  EXPECT_TRUE(Doc.find("c")->find("d")->isNull());
  EXPECT_EQ(Doc.stringOr("e", ""), "x");
  EXPECT_EQ(Doc.find("missing"), nullptr);
  EXPECT_DOUBLE_EQ(Doc.numberOr("missing", -1), -1.0);
}

TEST(Json, ErrorsArePositioned) {
  for (const char *Bad :
       {"", "{", "[1,", "{\"a\" 1}", "tru", "\"unterminated",
        "01", "[1] trailing", "{\"a\": 1,}"})
    EXPECT_FALSE(json::parse(Bad)) << Bad;
}

TEST(Json, DepthIsBounded) {
  // 100 nested arrays exceed the parser's depth cap; the error must be
  // a clean Expected, not a stack overflow.
  std::string Deep;
  for (int I = 0; I != 100; ++I)
    Deep += '[';
  EXPECT_FALSE(json::parse(Deep));
}

TEST(Json, ParsesBenchEnvelopeShape) {
  const json::Value Doc = parseOk(R"({
    "schema_version": 1,
    "benchmark": "sepebench",
    "cpu_features": "avx2,bmi2",
    "workloads": [
      {"name": "hash_single/SSN/Pext", "unit": "ns_per_key",
       "median": 2.2141, "mad": 0.0270, "raw": [2.21, 2.19, 2.25],
       "pmu": {"available": false, "reason": "denied"}}
    ],
    "resources": {"peak_rss_kb": 6200, "user_sec": 1.03},
    "telemetry": {"compiled_in": false}
  })");
  EXPECT_DOUBLE_EQ(Doc.numberOr("schema_version", 0), 1.0);
  const json::Value *Workloads = Doc.find("workloads");
  ASSERT_NE(Workloads, nullptr);
  ASSERT_EQ(Workloads->array().size(), 1u);
  const json::Value &W = Workloads->array()[0];
  EXPECT_EQ(W.stringOr("name", ""), "hash_single/SSN/Pext");
  EXPECT_DOUBLE_EQ(W.numberOr("median", 0), 2.2141);
  EXPECT_FALSE(W.find("pmu")->find("available")->boolean());
}

TEST(Json, ParsesRealTelemetryDump) {
  // Whatever telemetry::toJson() emits (compiled in or out) must be a
  // document our own reader accepts — the bench envelope embeds it.
  Expected<json::Value> Doc = json::parse(telemetry::toJson());
  ASSERT_TRUE(Doc);
  ASSERT_NE(Doc->find("compiled_in"), nullptr);
}

TEST(Json, DuplicateKeysKeepFirst) {
  EXPECT_DOUBLE_EQ(parseOk(R"({"a": 1, "a": 2})").numberOr("a", 0), 1.0);
}

TEST(Json, ParseFileErrors) {
  EXPECT_FALSE(json::parseFile("/nonexistent/path/report.json"));
}

TEST(Json, EscapeStringHandlesControlAndNonAscii) {
  EXPECT_EQ(json::escapeString("plain"), "plain");
  EXPECT_EQ(json::escapeString("a\"b\\c"), R"(a\"b\\c)");
  EXPECT_EQ(json::escapeString("\n\t\r\b\f"), R"(\n\t\r\b\f)");
  EXPECT_EQ(json::escapeString(std::string_view("\0x", 2)), R"(\u0000x)");
  EXPECT_EQ(json::escapeString("\x1f"), R"(\u001f)");
  EXPECT_EQ(json::escapeString("\x7f"), R"(\u007f)");
  EXPECT_EQ(json::escapeString("\xff"), R"(\u00ff)");
}

TEST(Json, EscapeStringRoundTripsEveryByte) {
  std::string All;
  for (int B = 0; B != 256; ++B)
    All += static_cast<char>(B);
  const json::Value Doc = parseOk("\"" + json::escapeString(All) + "\"");
  EXPECT_EQ(Doc.string(), All);
}

TEST(Json, EscapeStringRoundTripsRandomStrings) {
  // The writer/parser pair must round-trip arbitrary byte strings —
  // sampled key dumps (runtime/adaptive_hash.h sampledKeys) can carry
  // any byte the drifted stream does.
  std::mt19937_64 Rng(1234);
  for (int Trial = 0; Trial != 200; ++Trial) {
    std::string S;
    const size_t Len = Rng() % 64;
    for (size_t I = 0; I != Len; ++I)
      S += static_cast<char>(Rng() % 256);
    const std::string Escaped = json::escapeString(S);
    for (char C : Escaped)
      EXPECT_TRUE(static_cast<unsigned char>(C) >= 0x20 &&
                  static_cast<unsigned char>(C) <= 0x7E)
          << "escaped text must be printable ASCII";
    const json::Value Doc = parseOk("\"" + Escaped + "\"");
    EXPECT_EQ(Doc.string(), S) << "trial " << Trial;
  }
}

} // namespace
