//===- tests/test_mphf.cpp - Static-set tier (minimal perfect hashing) ----===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
//
// The MPHF subsystem: packed/Elias-Fano storage primitives, the three
// construction tiers (Mixer/Displace/Split), the bijectivity
// acceptance matrix over every paper format, serialization round-trips
// and the explain renderings.
//
//===----------------------------------------------------------------------===//

#include "mphf/mphf.h"

#include "keygen/distributions.h"
#include "keygen/paper_formats.h"
#include "mphf/mphf_explain.h"
#include "mphf/mphf_io.h"
#include "mphf/packed.h"
#include "quality/mphf_check.h"
#include "support/json.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <string_view>
#include <vector>

using namespace sepe;

namespace {

std::vector<std::string> paperKeys(PaperKey Key, size_t N,
                                   uint64_t Seed = 0x3f1d) {
  KeyGenerator Gen(paperKeyFormat(Key), KeyDistribution::Uniform, Seed);
  return Gen.distinct(N);
}

MphfBuildOptions formatOptions(PaperKey Key) {
  MphfBuildOptions Options;
  Options.Format = &paperKeyFormat(Key);
  return Options;
}

//===----------------------------------------------------------------------===//
// Storage primitives
//===----------------------------------------------------------------------===//

TEST(PackedArrayTest, RoundTripsEveryWidth) {
  std::mt19937_64 Rng(0x9ac4);
  for (unsigned Bits = 0; Bits <= 57; ++Bits) {
    const uint64_t Mask =
        Bits == 0 ? 0 : (~uint64_t{0} >> (64 - Bits));
    std::vector<uint64_t> Values(129);
    for (uint64_t &V : Values)
      V = Rng() & Mask;
    PackedArray Packed(Bits, Values.size());
    for (size_t I = 0; I != Values.size(); ++I)
      Packed.set(I, Values[I]);
    EXPECT_EQ(Packed.bits(), Bits);
    for (size_t I = 0; I != Values.size(); ++I)
      ASSERT_EQ(Packed.get(I), Values[I]) << "width " << Bits << " @ " << I;
  }
}

TEST(PackedArrayTest, PackUsesTheWidthOfTheLargestValue) {
  const PackedArray Packed = PackedArray::pack({3, 0, 7, 1});
  EXPECT_EQ(Packed.bits(), 3u);
  EXPECT_EQ(Packed.size(), 4u);
  EXPECT_EQ(Packed.get(0), 3u);
  EXPECT_EQ(Packed.get(2), 7u);
  const PackedArray Zeros = PackedArray::pack({0, 0, 0});
  EXPECT_EQ(Zeros.bits(), 0u);
  EXPECT_EQ(Zeros.get(1), 0u);
}

TEST(EliasFanoTest, RandomMonotoneSequencesRoundTrip) {
  std::mt19937_64 Rng(0xef01);
  for (int Round = 0; Round != 8; ++Round) {
    const size_t N = 1 + Rng() % 3000;
    std::vector<uint64_t> Values(N);
    uint64_t Acc = 0;
    for (uint64_t &V : Values) {
      Acc += Rng() % 97; // plenty of repeats and small gaps
      V = Acc;
    }
    const EliasFano EF = EliasFano::encode(Values);
    ASSERT_EQ(EF.size(), N);
    EXPECT_EQ(EF.universe(), Values.back());
    for (size_t I = 0; I != N; ++I)
      ASSERT_EQ(EF.get(I), Values[I]) << "round " << Round << " @ " << I;
    EXPECT_EQ(EF.decode(), Values);
  }
}

TEST(EliasFanoTest, BeatsPlainWordsOnDenseSequences) {
  std::vector<uint64_t> Values(10000);
  for (size_t I = 0; I != Values.size(); ++I)
    Values[I] = I * 32; // bucket-offset-like density
  const EliasFano EF = EliasFano::encode(Values);
  EXPECT_LT(EF.bytesUsed(), Values.size() * sizeof(uint32_t))
      << "Elias-Fano must undercut even 32-bit plain storage here";
}

//===----------------------------------------------------------------------===//
// Construction tiers
//===----------------------------------------------------------------------===//

TEST(MphfBuildTest, TinySetsUseTheMixerTier) {
  const std::vector<std::string> Keys = paperKeys(PaperKey::SSN, 8);
  Expected<Mphf> F = buildMphf(Keys, formatOptions(PaperKey::SSN));
  ASSERT_TRUE(F) << F.error().Message;
  EXPECT_EQ(F->plan().Tier, MphfTier::Mixer);
  EXPECT_FALSE(F->plan().RawBase) << "SSN extraction must be usable";
  EXPECT_TRUE(quality::measureMphf(*F, Keys).perfect());
}

TEST(MphfBuildTest, SmallSetsUseTheDisplaceTier) {
  const std::vector<std::string> Keys = paperKeys(PaperKey::SSN, 64);
  Expected<Mphf> F = buildMphf(Keys, formatOptions(PaperKey::SSN));
  ASSERT_TRUE(F) << F.error().Message;
  EXPECT_EQ(F->plan().Tier, MphfTier::Displace);
  EXPECT_TRUE(quality::measureMphf(*F, Keys).perfect());
}

TEST(MphfBuildTest, LargeSetsUseTheSplitTier) {
  const std::vector<std::string> Keys = paperKeys(PaperKey::SSN, 1000);
  Expected<Mphf> F = buildMphf(Keys, formatOptions(PaperKey::SSN));
  ASSERT_TRUE(F) << F.error().Message;
  EXPECT_EQ(F->plan().Tier, MphfTier::Split);
  EXPECT_GT(F->plan().Pilots.size(), 0u);
  EXPECT_TRUE(quality::measureMphf(*F, Keys).perfect());
  // The space story: a handful of bits per key, not a stored key set.
  EXPECT_LT(F->plan().bitsPerKey(), 16.0);
}

TEST(MphfBuildTest, SingleKeyAndPairAreHandled) {
  for (size_t N : {1u, 2u}) {
    const std::vector<std::string> Keys = paperKeys(PaperKey::MAC, N);
    Expected<Mphf> F = buildMphf(Keys, formatOptions(PaperKey::MAC));
    ASSERT_TRUE(F) << "n=" << N << ": " << F.error().Message;
    EXPECT_TRUE(quality::measureMphf(*F, Keys).perfect()) << "n=" << N;
  }
}

TEST(MphfBuildTest, EmptySetIsAnError) {
  Expected<Mphf> F = buildMphf(std::vector<std::string>{});
  EXPECT_FALSE(F);
}

TEST(MphfBuildTest, DuplicateKeysAreReportedNotLooped) {
  std::vector<std::string> Keys = paperKeys(PaperKey::SSN, 100);
  Keys.push_back(Keys.front());
  Expected<Mphf> F = buildMphf(Keys, formatOptions(PaperKey::SSN));
  ASSERT_FALSE(F);
  EXPECT_NE(F.error().Message.find("duplicate"), std::string::npos)
      << F.error().Message;
}

TEST(MphfBuildTest, RawBaseHandlesFormatlessKeys) {
  // No format, no extraction plan: arbitrary byte strings of mixed
  // lengths must still build via the seeded raw mix.
  std::vector<std::string> Keys;
  for (int I = 0; I != 500; ++I)
    Keys.push_back("key/" + std::to_string(I * 7919) + "/suffix" +
                   std::string(I % 13, 'x'));
  Expected<Mphf> F = buildMphf(Keys);
  ASSERT_TRUE(F) << F.error().Message;
  EXPECT_TRUE(F->plan().RawBase);
  EXPECT_TRUE(quality::measureMphf(*F, Keys).perfect());
}

TEST(MphfBuildTest, DeterministicForFixedSeed) {
  const std::vector<std::string> Keys = paperKeys(PaperKey::CPF, 300);
  Expected<Mphf> A = buildMphf(Keys, formatOptions(PaperKey::CPF));
  Expected<Mphf> B = buildMphf(Keys, formatOptions(PaperKey::CPF));
  ASSERT_TRUE(A);
  ASSERT_TRUE(B);
  EXPECT_EQ(serializeMphf(A->plan()), serializeMphf(B->plan()));
}

TEST(MphfBuildTest, OutOfSetKeysStayInRange) {
  const std::vector<std::string> Keys = paperKeys(PaperKey::SSN, 2000);
  Expected<Mphf> F = buildMphf(Keys, formatOptions(PaperKey::SSN));
  ASSERT_TRUE(F) << F.error().Message;
  KeyGenerator Gen(paperKeyFormat(PaperKey::SSN), KeyDistribution::Uniform,
                   0x07u);
  for (int I = 0; I != 4000; ++I) {
    const std::string Key = Gen.next();
    EXPECT_LT((*F)(Key), F->size()) << Key;
  }
  // Wildly out-of-format keys too.
  EXPECT_LT((*F)(""), F->size());
  EXPECT_LT((*F)("definitely not an ssn, far too long a key"), F->size());
}

TEST(MphfBuildTest, BatchAgreesWithSingleKeyEval) {
  const std::vector<std::string> Keys = paperKeys(PaperKey::IPv4, 777);
  Expected<Mphf> F = buildMphf(Keys, formatOptions(PaperKey::IPv4));
  ASSERT_TRUE(F) << F.error().Message;
  std::vector<std::string_view> Views(Keys.begin(), Keys.end());
  std::vector<uint64_t> Out(Views.size());
  F->evalBatch(Views.data(), Out.data(), Views.size());
  for (size_t I = 0; I != Views.size(); ++I)
    ASSERT_EQ(Out[I], (*F)(Views[I])) << I;
}

//===----------------------------------------------------------------------===//
// The acceptance matrix: every paper format, three orders of magnitude
//===----------------------------------------------------------------------===//

TEST(MphfAcceptanceTest, AllPaperFormatsAtSixteenKeys) {
  for (PaperKey Key : AllPaperKeys) {
    const std::vector<std::string> Keys = paperKeys(Key, 16);
    Expected<Mphf> F = buildMphf(Keys, formatOptions(Key));
    ASSERT_TRUE(F) << paperKeyName(Key) << ": " << F.error().Message;
    quality::MphfReport R = quality::measureMphf(*F, Keys);
    EXPECT_EQ(R.Collisions, 0u) << paperKeyName(Key);
    EXPECT_EQ(R.Coverage, 1.0) << paperKeyName(Key);
    EXPECT_TRUE(R.perfect()) << paperKeyName(Key);
  }
}

TEST(MphfAcceptanceTest, AllPaperFormatsAtAThousandKeys) {
  for (PaperKey Key : AllPaperKeys) {
    const std::vector<std::string> Keys = paperKeys(Key, 1000);
    Expected<Mphf> F = buildMphf(Keys, formatOptions(Key));
    ASSERT_TRUE(F) << paperKeyName(Key) << ": " << F.error().Message;
    quality::MphfReport R = quality::measureMphf(*F, Keys);
    EXPECT_EQ(R.Collisions, 0u) << paperKeyName(Key);
    EXPECT_EQ(R.Coverage, 1.0) << paperKeyName(Key);
  }
}

TEST(MphfAcceptanceTest, AllPaperFormatsAtAHundredThousandKeys) {
  for (PaperKey Key : AllPaperKeys) {
    const std::vector<std::string> Keys = paperKeys(Key, 100000);
    Expected<Mphf> F = buildMphf(Keys, formatOptions(Key));
    ASSERT_TRUE(F) << paperKeyName(Key) << ": " << F.error().Message;
    quality::MphfReport R = quality::measureMphf(*F, Keys);
    EXPECT_EQ(R.Collisions, 0u) << paperKeyName(Key);
    EXPECT_EQ(R.Coverage, 1.0) << paperKeyName(Key);
    EXPECT_EQ(R.MaxIndex, Keys.size() - 1) << paperKeyName(Key);
  }
}

//===----------------------------------------------------------------------===//
// Serialization and explain
//===----------------------------------------------------------------------===//

TEST(MphfIoTest, SplitTierRoundTrips) {
  const std::vector<std::string> Keys = paperKeys(PaperKey::SSN, 1500);
  Expected<Mphf> F = buildMphf(Keys, formatOptions(PaperKey::SSN));
  ASSERT_TRUE(F) << F.error().Message;
  const std::string Text = serializeMphf(F->plan());
  Expected<MphfPlan> Back = deserializeMphf(Text);
  ASSERT_TRUE(Back) << Back.error().Message;
  EXPECT_EQ(serializeMphf(*Back), Text) << "serialize is a fixed point";
  const Mphf G(std::make_shared<const MphfPlan>(Back.take()));
  for (const std::string &Key : Keys)
    ASSERT_EQ(G(Key), (*F)(Key)) << Key;
}

TEST(MphfIoTest, MixerAndDisplaceTiersRoundTrip) {
  for (size_t N : {6u, 48u}) {
    const std::vector<std::string> Keys = paperKeys(PaperKey::MAC, N);
    Expected<Mphf> F = buildMphf(Keys, formatOptions(PaperKey::MAC));
    ASSERT_TRUE(F) << F.error().Message;
    Expected<MphfPlan> Back = deserializeMphf(serializeMphf(F->plan()));
    ASSERT_TRUE(Back) << "n=" << N << ": " << Back.error().Message;
    const Mphf G(std::make_shared<const MphfPlan>(Back.take()));
    for (const std::string &Key : Keys)
      ASSERT_EQ(G(Key), (*F)(Key)) << Key;
  }
}

TEST(MphfIoTest, RawBasePlansRoundTripWithoutAnEmbeddedPlan) {
  std::vector<std::string> Keys;
  for (int I = 0; I != 200; ++I)
    Keys.push_back("raw-" + std::to_string(I));
  Expected<Mphf> F = buildMphf(Keys);
  ASSERT_TRUE(F) << F.error().Message;
  const std::string Text = serializeMphf(F->plan());
  EXPECT_EQ(Text.find("plan\n"), std::string::npos);
  Expected<MphfPlan> Back = deserializeMphf(Text);
  ASSERT_TRUE(Back) << Back.error().Message;
  EXPECT_TRUE(Back->RawBase);
  const Mphf G(std::make_shared<const MphfPlan>(Back.take()));
  for (const std::string &Key : Keys)
    ASSERT_EQ(G(Key), (*F)(Key));
}

TEST(MphfIoTest, MalformedInputsFailWithLineNumbers) {
  EXPECT_FALSE(deserializeMphf(""));
  EXPECT_FALSE(deserializeMphf("not-a-plan\n"));
  EXPECT_FALSE(deserializeMphf("sepe-mphf v1\ntier Split\n"));
  EXPECT_FALSE(deserializeMphf("sepe-mphf v1\ntier Nope\nn 4\n"));
  Expected<MphfPlan> Unterminated =
      deserializeMphf("sepe-mphf v1\ntier Mixer\nn 4\nmixer 0x3\nplan\n");
  ASSERT_FALSE(Unterminated);
  EXPECT_NE(Unterminated.error().Message.find("endplan"),
            std::string::npos);
}

TEST(MphfExplainTest, AllThreeFormatsRender) {
  const std::vector<std::string> Keys = paperKeys(PaperKey::SSN, 1000);
  Expected<Mphf> F = buildMphf(Keys, formatOptions(PaperKey::SSN));
  ASSERT_TRUE(F) << F.error().Message;

  const std::string Text = explainMphf(F->plan(), ExplainFormat::Text);
  EXPECT_NE(Text.find("mphf Split"), std::string::npos) << Text;
  EXPECT_NE(Text.find("bits/key"), std::string::npos);
  EXPECT_NE(Text.find("extraction plan"), std::string::npos)
      << "embedded front-end must render";
  EXPECT_NE(Text.find("plan Pext"), std::string::npos);

  const std::string Json = explainMphf(F->plan(), ExplainFormat::Json);
  Expected<json::Value> Doc = json::parse(Json);
  ASSERT_TRUE(Doc) << Doc.error().Message;
  EXPECT_EQ(Doc->stringOr("tier", ""), "Split");
  EXPECT_EQ(Doc->numberOr("n", 0), 1000.0);
  EXPECT_TRUE(Doc->find("extract") != nullptr);

  const std::string Dot = explainMphf(F->plan(), ExplainFormat::Dot);
  EXPECT_NE(Dot.find("digraph sepe_mphf"), std::string::npos);
  EXPECT_NE(Dot.find("->"), std::string::npos);
}

TEST(MphfExplainTest, MixerTierRendersItsConstant) {
  const std::vector<std::string> Keys = paperKeys(PaperKey::SSN, 4);
  Expected<Mphf> F = buildMphf(Keys, formatOptions(PaperKey::SSN));
  ASSERT_TRUE(F) << F.error().Message;
  ASSERT_EQ(F->plan().Tier, MphfTier::Mixer);
  const std::string Text = explainMphf(F->plan(), ExplainFormat::Text);
  EXPECT_NE(Text.find("mixer constant"), std::string::npos) << Text;
  Expected<json::Value> Doc =
      json::parse(explainMphf(F->plan(), ExplainFormat::Json));
  ASSERT_TRUE(Doc) << Doc.error().Message;
  EXPECT_NE(Doc->stringOr("mixer", ""), "");
}

} // namespace
