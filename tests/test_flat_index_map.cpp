//===- tests/test_flat_index_map.cpp - Learned-index style map ------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "container/flat_index_map.h"

#include "core/regex_parser.h"
#include "core/synthesizer.h"
#include "keygen/distributions.h"
#include "keygen/paper_formats.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <random>
#include <thread>
#include <unordered_map>

using namespace sepe;

namespace {

SynthesizedHash bijectiveHash(const std::string &Regex) {
  Expected<FormatSpec> Spec = parseRegex(Regex);
  EXPECT_TRUE(Spec);
  Expected<HashPlan> Plan = synthesize(Spec->abstract(), HashFamily::Pext);
  EXPECT_TRUE(Plan);
  EXPECT_TRUE(Plan->Bijective) << Regex;
  return SynthesizedHash(Plan.take());
}

TEST(BijectionFlagTest, SetForSmallPextFormats) {
  for (const char *Regex :
       {R"(\d{3}-\d{2}-\d{4})", R"([0-9]{16})", R"([0-9a-f]{8}--------)"}) {
    Expected<FormatSpec> Spec = parseRegex(Regex);
    ASSERT_TRUE(Spec);
    Expected<HashPlan> Plan =
        synthesize(Spec->abstract(), HashFamily::Pext);
    ASSERT_TRUE(Plan);
    EXPECT_TRUE(Plan->Bijective) << Regex;
  }
}

TEST(BijectionFlagTest, ClearForWideOrUnmixedFormats) {
  // INTS has 400 free bits; OffXor never proves injectivity.
  Expected<FormatSpec> Ints = parseRegex(R"([0-9]{100})");
  ASSERT_TRUE(Ints);
  Expected<HashPlan> IntsPlan =
      synthesize(Ints->abstract(), HashFamily::Pext);
  ASSERT_TRUE(IntsPlan);
  EXPECT_FALSE(IntsPlan->Bijective);

  Expected<FormatSpec> Ssn = parseRegex(R"(\d{3}-\d{2}-\d{4})");
  ASSERT_TRUE(Ssn);
  Expected<HashPlan> OffXorPlan =
      synthesize(Ssn->abstract(), HashFamily::OffXor);
  ASSERT_TRUE(OffXorPlan);
  EXPECT_FALSE(OffXorPlan->Bijective);
}

TEST(BijectionFlagTest, PaperClaimMacAndIpv6AreNotBijections) {
  // 96 and 256 free bits: the flag must stay off even though measured
  // collisions are zero.
  for (PaperKey Key : {PaperKey::MAC, PaperKey::IPv6}) {
    Expected<HashPlan> Plan =
        synthesize(paperKeyFormat(Key).abstract(), HashFamily::Pext);
    ASSERT_TRUE(Plan);
    EXPECT_FALSE(Plan->Bijective) << paperKeyName(Key);
  }
}

TEST(FlatIndexMapTest, InsertFindEraseBasics) {
  FlatIndexMap<int> Map(bijectiveHash(R"(\d{3}-\d{2}-\d{4})"));
  EXPECT_TRUE(Map.empty());
  EXPECT_TRUE(Map.insert("123-45-6789", 1));
  EXPECT_FALSE(Map.insert("123-45-6789", 2)) << "duplicate insert";
  EXPECT_TRUE(Map.insert("000-00-0001", 3));
  EXPECT_EQ(Map.size(), 2u);

  ASSERT_NE(Map.find("123-45-6789"), nullptr);
  EXPECT_EQ(*Map.find("123-45-6789"), 1) << "first insert wins";
  EXPECT_EQ(Map.find("999-99-9999"), nullptr);

  EXPECT_TRUE(Map.erase("123-45-6789"));
  EXPECT_FALSE(Map.erase("123-45-6789"));
  EXPECT_EQ(Map.size(), 1u);
  EXPECT_FALSE(Map.contains("123-45-6789"));
  EXPECT_TRUE(Map.contains("000-00-0001"));
}

TEST(FlatIndexMapTest, GrowsUnderLoad) {
  FlatIndexMap<uint64_t> Map(bijectiveHash(R"([0-9]{9})"), 16);
  KeyGenerator Gen(*parseRegex(R"([0-9]{9})"), KeyDistribution::Uniform,
                   91);
  const std::vector<std::string> Keys = Gen.distinct(20000);
  for (size_t I = 0; I != Keys.size(); ++I)
    ASSERT_TRUE(Map.insert(Keys[I], I));
  EXPECT_EQ(Map.size(), Keys.size());
  for (size_t I = 0; I != Keys.size(); ++I) {
    const uint64_t *Value = Map.find(Keys[I]);
    ASSERT_NE(Value, nullptr) << Keys[I];
    EXPECT_EQ(*Value, I);
  }
}

TEST(FlatIndexMapTest, IncrementalKeysHaveShortProbes) {
  // The pext image of consecutive keys is a bijection but not monotone
  // (nibbles pack little-endian); the Fibonacci slot mapping must still
  // keep probe sequences short at 50% load.
  FlatIndexMap<int> Map(bijectiveHash(R"([0-9]{9})"), 4096);
  KeyGenerator Gen(*parseRegex(R"([0-9]{9})"),
                   KeyDistribution::Incremental, 0);
  for (int I = 0; I != 2000; ++I)
    Map.insert(Gen.next(), I);
  EXPECT_LE(Map.maxProbeLength(), 24u)
      << "slot mapping must break up incremental-key clusters";
}

TEST(FlatIndexMapTest, DifferentialAgainstStdMap) {
  // Random insert/erase/find interleaving, mirrored against std::map.
  const SynthesizedHash Hash = bijectiveHash(R"([0-9]{6}xy)");
  FlatIndexMap<int> Map(Hash);
  std::map<std::string, int> Reference;
  Expected<FormatSpec> Spec = parseRegex(R"([0-9]{6}xy)");
  ASSERT_TRUE(Spec);
  KeyGenerator Gen(*Spec, KeyDistribution::Uniform, 555);
  const std::vector<std::string> Pool = Gen.distinct(300);
  std::mt19937_64 Rng(556);
  for (int Step = 0; Step != 20000; ++Step) {
    const std::string &Key = Pool[Rng() % Pool.size()];
    switch (Rng() % 3) {
    case 0: {
      const int Value = static_cast<int>(Rng() % 1000);
      const bool InsertedRef = Reference.emplace(Key, Value).second;
      EXPECT_EQ(Map.insert(Key, Value), InsertedRef) << Step;
      break;
    }
    case 1:
      EXPECT_EQ(Map.erase(Key), Reference.erase(Key) == 1) << Step;
      break;
    default: {
      const auto It = Reference.find(Key);
      const int *Found = Map.find(Key);
      EXPECT_EQ(Found != nullptr, It != Reference.end()) << Step;
      if (Found != nullptr && It != Reference.end()) {
        EXPECT_EQ(*Found, It->second) << Step;
      }
      break;
    }
    }
    EXPECT_EQ(Map.size(), Reference.size());
  }
}

TEST(FlatIndexMapTest, EraseBackwardShiftKeepsClusterReachable) {
  // Construct a probing cluster, erase in the middle, and verify the
  // displaced entries are still found.
  const SynthesizedHash Hash = bijectiveHash(R"([0-9]{4}zzzz)");
  FlatIndexMap<int> Map(Hash, 8192);
  // Consecutive numeric keys occupy consecutive slots: a guaranteed
  // cluster.
  Expected<FormatSpec> Spec = parseRegex(R"([0-9]{4}zzzz)");
  ASSERT_TRUE(Spec);
  KeyGenerator Gen(*Spec, KeyDistribution::Incremental, 0);
  std::vector<std::string> Keys;
  for (int I = 0; I != 64; ++I)
    Keys.push_back(Gen.next());
  for (int I = 0; I != 64; ++I)
    Map.insert(Keys[static_cast<size_t>(I)], I);
  for (int I = 10; I != 20; ++I)
    EXPECT_TRUE(Map.erase(Keys[static_cast<size_t>(I)]));
  for (int I = 0; I != 64; ++I) {
    const bool Erased = I >= 10 && I < 20;
    EXPECT_EQ(Map.contains(Keys[static_cast<size_t>(I)]), !Erased) << I;
  }
}

TEST(FlatIndexMapTest, PreHashedEntryPointsMatchPlain) {
  // The *Hashed entry points take the bijection image directly; with
  // Image == hasher()(Key) they must agree with the string overloads.
  const SynthesizedHash Hash = bijectiveHash(R"([0-9]{6}xy)");
  FlatIndexMap<int> Map(Hash);
  Expected<FormatSpec> Spec = parseRegex(R"([0-9]{6}xy)");
  ASSERT_TRUE(Spec);
  KeyGenerator Gen(*Spec, KeyDistribution::Uniform, 808);
  const std::vector<std::string> Keys = Gen.distinct(200);
  for (size_t I = 0; I != Keys.size(); ++I) {
    const uint64_t Image = Map.hasher()(Keys[I]);
    EXPECT_TRUE(Map.insertHashed(Image, static_cast<int>(I)));
    EXPECT_FALSE(Map.insertHashed(Image, -1)) << "duplicate image";
  }
  for (size_t I = 0; I != Keys.size(); ++I) {
    const uint64_t Image = Map.hasher()(Keys[I]);
    ASSERT_NE(Map.find(Keys[I]), nullptr);
    EXPECT_EQ(*Map.find(Keys[I]), static_cast<int>(I))
        << "string lookup sees pre-hashed insert";
    ASSERT_NE(Map.findHashed(Image), nullptr);
    EXPECT_EQ(Map.findHashed(Image), Map.find(Keys[I]));
    EXPECT_TRUE(Map.containsHashed(Image));
  }
  for (size_t I = 0; I < Keys.size(); I += 2)
    EXPECT_TRUE(Map.eraseHashed(Map.hasher()(Keys[I])));
  for (size_t I = 0; I != Keys.size(); ++I)
    EXPECT_EQ(Map.contains(Keys[I]), I % 2 == 1);
}

TEST(SwissGroupTest, SimdAndScalarMatchersAgree) {
  // The SSE2 group matchers and the portable bit-twiddling fallback
  // must report identical candidate masks for any control-byte pattern:
  // full tags (0..127), empty (-128), and tombstones (-2).
  std::mt19937_64 Rng(0x5155);
  for (int Trial = 0; Trial != 2000; ++Trial) {
    alignas(16) int8_t Ctrl[swiss::GroupSize];
    for (int8_t &C : Ctrl) {
      switch (Rng() % 4) {
      case 0:
        C = swiss::CtrlEmpty;
        break;
      case 1:
        C = swiss::CtrlDeleted;
        break;
      default:
        C = static_cast<int8_t>(Rng() % 128);
        break;
      }
    }
    const int8_t Tag = static_cast<int8_t>(Rng() % 128);
    EXPECT_EQ(swiss::matchTag(Ctrl, Tag),
              swiss::matchTagScalar(Ctrl, Tag));
    EXPECT_EQ(swiss::matchEmpty(Ctrl), swiss::matchEmptyScalar(Ctrl));
    EXPECT_EQ(swiss::matchEmptyOrDeleted(Ctrl),
              swiss::matchEmptyOrDeletedScalar(Ctrl));
  }
}

TEST(FlatIndexMapTest, RehashKeepsPreHashedEntriesReachable) {
  // Regression for the control-byte migration: entries inserted through
  // the pre-hashed entry points must survive growth rehashes (triggered
  // by load) and explicit reserve() — both rebuild the control array
  // from the stored images.
  const SynthesizedHash Hash = bijectiveHash(R"([0-9]{9})");
  FlatIndexMap<uint64_t> Map(Hash, 16);
  KeyGenerator Gen(*parseRegex(R"([0-9]{9})"), KeyDistribution::Uniform,
                   4242);
  const std::vector<std::string> Keys = Gen.distinct(5000);
  std::vector<uint64_t> Images;
  for (const std::string &K : Keys)
    Images.push_back(Hash(K));

  const size_t Initial = Map.capacity();
  for (size_t I = 0; I != Images.size(); ++I) {
    ASSERT_TRUE(Map.insertHashed(Images[I], I));
    // Every entry inserted so far stays reachable across each growth.
    if ((I & 1023) == 1023)
      for (size_t J = 0; J <= I; J += 97)
        ASSERT_NE(Map.findHashed(Images[J]), nullptr) << I << "/" << J;
  }
  EXPECT_GT(Map.capacity(), Initial) << "test must exercise growth";

  // An explicit rehash via reserve must also keep everything.
  Map.reserve(4 * Keys.size());
  for (size_t I = 0; I != Images.size(); ++I) {
    const uint64_t *Value = Map.findHashed(Images[I]);
    ASSERT_NE(Value, nullptr) << I;
    EXPECT_EQ(*Value, I);
    EXPECT_TRUE(Map.contains(Keys[I])) << "string lookup after rehash";
  }
}

TEST(FlatIndexMapTest, ReservePreallocatesForInsertions) {
  const SynthesizedHash Hash = bijectiveHash(R"([0-9]{9})");
  FlatIndexMap<int> Map(Hash, 16);
  Map.reserve(10000);
  const size_t Reserved = Map.capacity();
  EXPECT_GE(Reserved * 7, 10000u * 8) << "7/8 load bound";

  KeyGenerator Gen(*parseRegex(R"([0-9]{9})"), KeyDistribution::Uniform,
                   777);
  const std::vector<std::string> Keys = Gen.distinct(10000);
  for (size_t I = 0; I != Keys.size(); ++I)
    ASSERT_TRUE(Map.insert(Keys[I], static_cast<int>(I)));
  EXPECT_EQ(Map.capacity(), Reserved)
      << "reserve must preallocate all growth";
  for (size_t I = 0; I != Keys.size(); ++I)
    EXPECT_TRUE(Map.contains(Keys[I]));
}

TEST(FlatIndexMapTest, TombstoneChurnStaysBoundedAndCorrect) {
  // Insert/erase churn over a fixed pool accumulates tombstones; the
  // same-capacity rehash sweep must reclaim them instead of growing the
  // table forever, and lookups must stay exact throughout.
  const SynthesizedHash Hash = bijectiveHash(R"([0-9]{6}xy)");
  FlatIndexMap<int> Map(Hash);
  Expected<FormatSpec> Spec = parseRegex(R"([0-9]{6}xy)");
  ASSERT_TRUE(Spec);
  KeyGenerator Gen(*Spec, KeyDistribution::Uniform, 321);
  const std::vector<std::string> Pool = Gen.distinct(64);
  std::mt19937_64 Rng(322);
  std::vector<bool> Present(Pool.size(), false);
  for (int Step = 0; Step != 100000; ++Step) {
    const size_t I = Rng() % Pool.size();
    if (Present[I])
      EXPECT_TRUE(Map.erase(Pool[I])) << Step;
    else
      EXPECT_TRUE(Map.insert(Pool[I], static_cast<int>(I))) << Step;
    Present[I] = !Present[I];
  }
  for (size_t I = 0; I != Pool.size(); ++I)
    EXPECT_EQ(Map.contains(Pool[I]), static_cast<bool>(Present[I])) << I;
  EXPECT_LE(Map.capacity(), 1024u)
      << "tombstone sweeps must keep a 64-key pool in a small table";
  EXPECT_LE(Map.tombstones(), Map.capacity() * 7 / 8);
}

TEST(FlatIndexMapTest, InsertBatchHashesThroughBatchKernel) {
  const SynthesizedHash Hash = bijectiveHash(R"([0-9]{6}xy)");
  FlatIndexMap<int> Batched(Hash);
  FlatIndexMap<int> Plain(Hash);
  Expected<FormatSpec> Spec = parseRegex(R"([0-9]{6}xy)");
  ASSERT_TRUE(Spec);
  KeyGenerator Gen(*Spec, KeyDistribution::Uniform, 909);
  // 517 keys: spans two 256-key batch blocks plus a remainder.
  const std::vector<std::string> Keys = Gen.distinct(517);
  const std::vector<std::string_view> Views(Keys.begin(), Keys.end());
  std::vector<int> Values;
  for (size_t I = 0; I != Keys.size(); ++I) {
    Values.push_back(static_cast<int>(I));
    Plain.insert(Keys[I], static_cast<int>(I));
  }
  EXPECT_EQ(Batched.insertBatch(Views.data(), Values.data(), Views.size()),
            Views.size());
  EXPECT_EQ(Batched.size(), Plain.size());
  for (size_t I = 0; I != Keys.size(); ++I) {
    ASSERT_NE(Batched.find(Keys[I]), nullptr) << I;
    EXPECT_EQ(*Batched.find(Keys[I]), static_cast<int>(I));
  }
  // Re-inserting the same block inserts nothing.
  EXPECT_EQ(Batched.insertBatch(Views.data(), Values.data(), Views.size()),
            0u);
}

/// A second, different bijection over the same format: Pext with the
/// top-bits spread disabled packs the extracted chunks low, so images
/// differ from the default while injectivity is preserved.
SynthesizedHash bijectiveHashNoSpread(const std::string &Regex) {
  Expected<FormatSpec> Spec = parseRegex(Regex);
  EXPECT_TRUE(Spec);
  SynthesisOptions Options;
  Options.SpreadToTopBits = false;
  Expected<HashPlan> Plan =
      synthesize(Spec->abstract(), HashFamily::Pext, Options);
  EXPECT_TRUE(Plan);
  EXPECT_TRUE(Plan->Bijective) << Regex;
  return SynthesizedHash(Plan.take());
}

TEST(FlatIndexMapTest, RehashWithPreservesEveryMapping) {
  // >8 bytes so the pext plan has two extraction steps — the top-bits
  // spread only moves the last chunk of a multi-step plan, and the two
  // hashes must genuinely differ for the migration to mean anything.
  const char *Regex = R"([0-9]{9}zzzzzzz)";
  const SynthesizedHash OldHash = bijectiveHash(Regex);
  const SynthesizedHash NewHash = bijectiveHashNoSpread(Regex);
  Expected<FormatSpec> Spec = parseRegex(Regex);
  ASSERT_TRUE(Spec);
  KeyGenerator Gen(*Spec, KeyDistribution::Uniform, 313);
  const std::vector<std::string> Keys = Gen.distinct(5000);
  // The two bijections genuinely disagree, so the migration below is
  // not a no-op.
  ASSERT_NE(OldHash(Keys[0]), NewHash(Keys[0]));

  FlatIndexMap<int> Map(OldHash);
  for (size_t I = 0; I != Keys.size(); ++I)
    Map.insert(Keys[I], static_cast<int>(I));

  const std::vector<std::string_view> Views(Keys.begin(), Keys.end());
  const FlatIndexMap<int> Migrated =
      Map.rehashWith(NewHash, Views.data(), Views.size());
  EXPECT_EQ(Migrated.size(), Map.size());
  for (size_t I = 0; I != Keys.size(); ++I) {
    const int *Value = Migrated.find(Keys[I]);
    ASSERT_NE(Value, nullptr) << Keys[I];
    EXPECT_EQ(*Value, static_cast<int>(I));
    // The migrated map is keyed by the new bijection's images.
    EXPECT_EQ(Migrated.findHashed(NewHash(Keys[I])), Value);
  }
  // The source map is untouched (rehashWith builds off to the side).
  for (size_t I = 0; I != Keys.size(); ++I)
    EXPECT_NE(Map.find(Keys[I]), nullptr);
}

TEST(FlatIndexMapTest, RehashWithIsSafeUnderConcurrentReaders) {
  // The adaptive swap protocol: readers keep resolving lookups through
  // an atomically published map pointer while rehashWith builds the
  // successor; after the pointer swings, they resolve through the new
  // map. Either generation must answer every lookup correctly.
  const char *Regex = R"([0-9]{9}zzzzzzz)";
  Expected<FormatSpec> Spec = parseRegex(Regex);
  ASSERT_TRUE(Spec);
  KeyGenerator Gen(*Spec, KeyDistribution::Uniform, 717);
  const std::vector<std::string> Keys = Gen.distinct(2000);

  FlatIndexMap<int> OldMap(bijectiveHash(Regex));
  for (size_t I = 0; I != Keys.size(); ++I)
    OldMap.insert(Keys[I], static_cast<int>(I));
  std::atomic<const FlatIndexMap<int> *> Active{&OldMap};

  std::atomic<bool> Stop{false};
  std::atomic<bool> Failed{false};
  std::vector<std::thread> Readers;
  for (int T = 0; T != 4; ++T)
    Readers.emplace_back([&, T] {
      std::mt19937_64 Rng(T);
      while (!Stop.load(std::memory_order_acquire)) {
        const FlatIndexMap<int> *Map = Active.load(std::memory_order_acquire);
        const size_t I = Rng() % Keys.size();
        const int *Value = Map->find(Keys[I]);
        if (Value == nullptr || *Value != static_cast<int>(I)) {
          Failed.store(true, std::memory_order_release);
          return;
        }
      }
    });

  const std::vector<std::string_view> Views(Keys.begin(), Keys.end());
  const FlatIndexMap<int> NewMap =
      OldMap.rehashWith(bijectiveHashNoSpread(Regex), Views.data(),
                        Views.size());
  Active.store(&NewMap, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Stop.store(true, std::memory_order_release);
  for (std::thread &T : Readers)
    T.join();
  EXPECT_FALSE(Failed.load());
  EXPECT_EQ(NewMap.size(), Keys.size());
}

} // namespace

TEST(FlatIndexMapTest, PropertyInterleavedOpsMatchUnorderedMap) {
  // Randomized insert/erase/find interleavings (with batch inserts and
  // batch probes mixed in) mirrored against std::unordered_map: after
  // every operation both maps agree on membership and value, and at
  // checkpoints on the full keyset.
  const char *Regex = R"([0-9]{9})";
  FlatIndexMap<uint32_t> Map(bijectiveHash(Regex));
  std::unordered_map<std::string, uint32_t> Mirror;

  KeyGenerator Gen(*parseRegex(Regex), KeyDistribution::Uniform, 0x10a1);
  const std::vector<std::string> Keys = Gen.distinct(600);
  std::mt19937_64 Rng(0xfeed);

  const auto Check = [&](const std::string &Key) {
    const uint32_t *Mine = Map.find(Key);
    const auto Theirs = Mirror.find(Key);
    ASSERT_EQ(Mine != nullptr, Theirs != Mirror.end()) << Key;
    if (Mine != nullptr)
      ASSERT_EQ(*Mine, Theirs->second) << Key;
  };

  for (size_t Step = 0; Step != 4000; ++Step) {
    const std::string &Key = Keys[Rng() % Keys.size()];
    switch (Rng() % 4) {
    case 0: { // Insert (first insert wins, like FlatIndexMap).
      const uint32_t V = static_cast<uint32_t>(Rng());
      const bool Mine = Map.insert(Key, V);
      const bool Theirs = Mirror.emplace(Key, V).second;
      ASSERT_EQ(Mine, Theirs) << Key;
      break;
    }
    case 1: { // Erase.
      const bool Mine = Map.erase(Key);
      const bool Theirs = Mirror.erase(Key) != 0;
      ASSERT_EQ(Mine, Theirs) << Key;
      break;
    }
    case 2: { // Batch insert of a random slice.
      const size_t Start = Rng() % Keys.size();
      const size_t Len = std::min<size_t>(1 + Rng() % 48,
                                          Keys.size() - Start);
      std::vector<std::string_view> Views(Keys.begin() + Start,
                                          Keys.begin() + Start + Len);
      std::vector<uint32_t> Values(Len);
      for (uint32_t &V : Values)
        V = static_cast<uint32_t>(Rng());
      const size_t Mine = Map.insertBatch(Views.data(), Values.data(), Len);
      size_t Theirs = 0;
      for (size_t I = 0; I != Len; ++I)
        Theirs += Mirror.emplace(Keys[Start + I], Values[I]).second ? 1 : 0;
      ASSERT_EQ(Mine, Theirs);
      break;
    }
    default: // Find.
      Check(Key);
      break;
    }
    ASSERT_EQ(Map.size(), Mirror.size()) << "step " << Step;
    if (Step % 512 == 0)
      for (const std::string &K : Keys)
        Check(K);
  }

  // Final sweep, through the batch probe path as well.
  for (const std::string &K : Keys)
    Check(K);
  const SynthesizedHash Hash = Map.hasher();
  std::vector<std::string_view> Views(Keys.begin(), Keys.end());
  std::vector<uint64_t> Images(Keys.size());
  Hash.hashBatch(Views.data(), Images.data(), Views.size());
  std::vector<uint32_t *> Out(Keys.size());
  Map.findHashedBatch(Images.data(), Out.data(), Images.size());
  for (size_t I = 0; I != Keys.size(); ++I) {
    const auto Theirs = Mirror.find(Keys[I]);
    ASSERT_EQ(Out[I] != nullptr, Theirs != Mirror.end()) << Keys[I];
    if (Out[I] != nullptr)
      ASSERT_EQ(*Out[I], Theirs->second);
  }
}
