//===- tests/test_jit.cpp - JIT ≡ interpreter property tests --------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JIT's one contract mirrors the batch API's: compiled code must be
/// bit-identical to the interpreter it replaces, for every family, every
/// paper format, and both entry points (single-key and batch, at every
/// batch size including the empty and tail shapes). The reference lane
/// is a Scalar-pinned SynthesizedHash over the same plan — forced
/// interpreted rungs never take the JIT, so it is exactly the kernel
/// codegen.h mirrors. On top of the equivalence sweep: the W^X smoke
/// (the live mapping is r-x, never writable), dispatch-resolution
/// checks (Auto takes Jit only when host + shape allow, Jit requests
/// resolve downward elsewhere), and the shared-ownership property the
/// RCU retirement story rests on (copies keep the code alive after the
/// original dies).
///
//===----------------------------------------------------------------------===//

#include "core/jit.h"

#include "core/regex_parser.h"
#include "core/synthesizer.h"
#include "driver/hash_registry.h"
#include "keygen/distributions.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

using namespace sepe;

namespace {

std::vector<std::string_view> viewsOf(const std::vector<std::string> &Keys) {
  return std::vector<std::string_view>(Keys.begin(), Keys.end());
}

class JitEquivalence : public ::testing::TestWithParam<PaperKey> {};

TEST_P(JitEquivalence, AllFamiliesBothEntryPointsBitIdentical) {
  const PaperKey Key = GetParam();
  KeyGenerator Gen(paperKeyFormat(Key), KeyDistribution::Uniform,
                   0x717 + static_cast<uint64_t>(Key));
  // 131 = 32 four-wide main-loop iterations plus a 3-key tail.
  const std::vector<std::string> Text = Gen.distinct(131);
  const std::vector<std::string_view> Views = viewsOf(Text);

  const HashFunctionSet Set = HashFunctionSet::create(Key);
  for (HashKind Kind : SyntheticHashKinds) {
    const HashPlan &Plan = Set.synthesized(syntheticFamily(Kind)).plan();
    // The interpreted reference: a forced Scalar rung never upgrades to
    // compiled code.
    const SynthesizedHash Ref(Plan, IsaLevel::Native, BatchPath::Scalar);
    const SynthesizedHash Jitted(Plan, IsaLevel::Native, BatchPath::Jit);
    const std::string Label = std::string(paperKeyName(Key)) + "/" +
                              hashKindName(Kind) + "->" +
                              Jitted.batchPathName();

    if (jitAvailable() && jitSupportsPlan(Plan)) {
      EXPECT_STREQ(Jitted.batchPathName(), "jit") << Label;
      ASSERT_NE(Jitted.jitProgram(), nullptr) << Label;
      EXPECT_GT(Jitted.jitProgram()->codeBytes(), 0u) << Label;
    } else {
      // Unsupported shape or host: the request resolved downward and
      // no program was attached.
      EXPECT_STRNE(Jitted.batchPathName(), "jit") << Label;
      EXPECT_EQ(Jitted.jitProgram(), nullptr) << Label;
    }

    // Single-key entry point.
    for (const std::string_view View : Views)
      ASSERT_EQ(Jitted(View), Ref(View)) << Label << " key=" << View;

    // Batch entry point: empty (output untouched), sub-stride sizes,
    // an exact stride multiple, and the full main-loop + tail shape.
    uint64_t Guard = 0xdeadbeefdeadbeefULL;
    Jitted.hashBatch(Views.data(), &Guard, 0);
    EXPECT_EQ(Guard, 0xdeadbeefdeadbeefULL) << Label;
    for (size_t N : {size_t(1), size_t(3), size_t(4), size_t(5),
                     Views.size()}) {
      std::vector<uint64_t> Got(N, 0), Want(N, 0);
      Jitted.hashBatch(Views.data(), Got.data(), N);
      Ref.hashBatch(Views.data(), Want.data(), N);
      for (size_t I = 0; I != N; ++I)
        ASSERT_EQ(Got[I], Want[I])
            << Label << " N=" << N << " key[" << I << "]=" << Text[I];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFormats, JitEquivalence,
                         ::testing::ValuesIn(AllPaperKeys),
                         [](const auto &Info) {
                           return std::string(paperKeyName(Info.param));
                         });

TEST(JitWxTest, MappingIsExecutableNeverWritable) {
  const HashFunctionSet Set = HashFunctionSet::create(PaperKey::SSN);
  const HashPlan &Plan = Set.synthesized(HashFamily::Pext).plan();
  if (!jitAvailable() || !jitSupportsPlan(Plan))
    GTEST_SKIP() << "JIT not available on this host/build";
  const SynthesizedHash Jitted(Plan, IsaLevel::Native, BatchPath::Jit);
  ASSERT_NE(Jitted.jitProgram(), nullptr);
  const uintptr_t Addr =
      reinterpret_cast<uintptr_t>(Jitted.jitProgram()->code());

  // The sealed buffer must show up as r-x: readable, executable, and —
  // the W^X property — not writable. (While being emitted it was rw-;
  // the factory seals before publishing, so no caller can observe a
  // simultaneously writable+executable state.)
  std::ifstream Maps("/proc/self/maps");
  ASSERT_TRUE(Maps.is_open());
  std::string Line;
  bool Found = false;
  while (std::getline(Maps, Line)) {
    unsigned long Start = 0, End = 0;
    char Perms[5] = {0};
    if (std::sscanf(Line.c_str(), "%lx-%lx %4s", &Start, &End, Perms) != 3)
      continue;
    if (Addr < Start || Addr >= End)
      continue;
    Found = true;
    EXPECT_EQ(Perms[0], 'r') << Line;
    EXPECT_EQ(Perms[1], '-') << "writable+executable mapping: " << Line;
    EXPECT_EQ(Perms[2], 'x') << Line;
  }
  EXPECT_TRUE(Found) << "jit mapping not present in /proc/self/maps";
}

TEST(JitDispatchTest, AutoTakesJitOnlyWhenHostAndShapeAllow) {
  for (PaperKey Key : AllPaperKeys) {
    const HashFunctionSet Set = HashFunctionSet::create(Key);
    for (HashKind Kind : SyntheticHashKinds) {
      const HashPlan &Plan = Set.synthesized(syntheticFamily(Kind)).plan();
      const SynthesizedHash Auto(Plan, IsaLevel::Native, BatchPath::Auto);
      const std::string Resolved = Auto.batchPathName();
      const std::string Label =
          std::string(paperKeyName(Key)) + "/" + hashKindName(Kind);
      if (Resolved == "jit") {
        EXPECT_TRUE(jitAvailable() && jitSupportsPlan(Plan)) << Label;
        EXPECT_NE(Auto.jitProgram(), nullptr) << Label;
      } else {
        EXPECT_EQ(Auto.jitProgram(), nullptr) << Label;
      }
      // Hardware-pext plans are exactly the shapes the JIT exists for:
      // under Auto on a capable host they must land on compiled code.
      if (Kind == HashKind::Pext && jitAvailable() && jitSupportsPlan(Plan))
        EXPECT_EQ(Resolved, "jit") << Label;

      // Below the Native ceiling the JIT never engages, even forced.
      for (IsaLevel Isa : {IsaLevel::NoBitExtract, IsaLevel::Portable}) {
        const SynthesizedHash Capped(Plan, Isa, BatchPath::Jit);
        EXPECT_STRNE(Capped.batchPathName(), "jit") << Label;
        EXPECT_EQ(Capped.jitProgram(), nullptr) << Label;
      }
    }
  }
}

TEST(JitDispatchTest, UnsupportedShapesResolveDownward) {
  // Variable-length and partial-load shapes have no JIT kernel; a Jit
  // preference must resolve onto the interpreted ladder, not fail.
  for (bool AllowShort : {false, true}) {
    SynthesisOptions Options;
    Options.AllowShortKeys = AllowShort;
    Expected<FormatSpec> Spec = parseRegex(R"(\d{4})");
    ASSERT_TRUE(Spec);
    Expected<HashPlan> Plan =
        synthesize(Spec->abstract(), HashFamily::OffXor, Options);
    ASSERT_TRUE(Plan);
    EXPECT_FALSE(jitSupportsPlan(*Plan));
    const SynthesizedHash Forced(*Plan, IsaLevel::Native, BatchPath::Jit);
    EXPECT_STREQ(Forced.batchPathName(), "scalar");
    EXPECT_EQ(Forced.jitProgram(), nullptr);
  }
}

TEST(JitRcuTest, CopiesKeepCompiledCodeAliveAfterOriginalDies) {
  // The retirement story: retired generations hold SynthesizedHash
  // copies, and those copies must keep the mapping executable. Destroy
  // the original, then hash through the survivor.
  const HashFunctionSet Set = HashFunctionSet::create(PaperKey::SSN);
  const HashPlan &Plan = Set.synthesized(HashFamily::Pext).plan();
  if (!jitAvailable() || !jitSupportsPlan(Plan))
    GTEST_SKIP() << "JIT not available on this host/build";

  KeyGenerator Gen(paperKeyFormat(PaperKey::SSN), KeyDistribution::Uniform,
                   0xa11ce);
  const std::vector<std::string> Text = Gen.distinct(37);
  const std::vector<std::string_view> Views = viewsOf(Text);
  const SynthesizedHash Ref(Plan, IsaLevel::Native, BatchPath::Scalar);

  std::unique_ptr<SynthesizedHash> Original =
      std::make_unique<SynthesizedHash>(Plan, IsaLevel::Native,
                                        BatchPath::Jit);
  ASSERT_NE(Original->jitProgram(), nullptr);
  const SynthesizedHash Survivor = *Original;
  EXPECT_EQ(Survivor.jitProgram(), Original->jitProgram())
      << "copies share one program";
  Original.reset();

  std::vector<uint64_t> Out(Views.size(), 0);
  Survivor.hashBatch(Views.data(), Out.data(), Views.size());
  for (size_t I = 0; I != Views.size(); ++I)
    EXPECT_EQ(Out[I], Ref(Views[I])) << "key[" << I << "]=" << Text[I];
}

} // namespace
