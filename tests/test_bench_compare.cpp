//===- tests/test_bench_compare.cpp - Perf-regression gate ----------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
//
// Golden-pair tests for the noise-aware comparator behind
// `sepebench --compare`: identical reports, a clear regression, an
// improvement, jitter inside the noise band, the absolute floor on
// near-zero workloads, added/removed workloads, schema-version
// mismatch, and malformed input. The fixtures are small literal
// BENCH_suite.json documents, so each verdict is pinned to exact
// numbers rather than to whatever the host machine measures today.
//
//===----------------------------------------------------------------------===//

#include "support/bench_compare.h"

#include <gtest/gtest.h>

#include <string>

using namespace sepe;
using namespace sepe::bench;

namespace {

/// A minimal suite report: schema + workloads with the fields the
/// comparator reads (name, unit, median, mad).
std::string suiteJson(const std::string &WorkloadsJson,
                      int SchemaVersion = 1) {
  return "{\"schema_version\": " + std::to_string(SchemaVersion) +
         ", \"benchmark\": \"sepebench\", \"workloads\": [" +
         WorkloadsJson + "]}";
}

std::string workload(const char *Name, double Median, double Mad) {
  char Buffer[192];
  std::snprintf(Buffer, sizeof(Buffer),
                "{\"name\": \"%s\", \"unit\": \"ns_per_key\", "
                "\"median\": %.4f, \"mad\": %.4f}",
                Name, Median, Mad);
  return Buffer;
}

const WorkloadDelta *findDelta(const CompareReport &Report,
                               const std::string &Name) {
  for (const WorkloadDelta &Delta : Report.Deltas)
    if (Delta.Name == Name)
      return &Delta;
  return nullptr;
}

TEST(BenchCompare, IdenticalReportsAreClean) {
  const std::string Text =
      suiteJson(workload("hash/SSN/Pext", 2.5, 0.02) + "," +
                workload("lowmix/SSN", 45.0, 0.8));
  Expected<CompareReport> Report = compareSuiteReports(Text, Text);
  ASSERT_TRUE(Report);
  EXPECT_FALSE(Report->hasRegression());
  EXPECT_EQ(Report->Regressions, 0u);
  EXPECT_EQ(Report->Improvements, 0u);
  ASSERT_EQ(Report->Deltas.size(), 2u);
  for (const WorkloadDelta &Delta : Report->Deltas)
    EXPECT_EQ(Delta.Verdict, DeltaVerdict::Unchanged);
}

TEST(BenchCompare, ClearRegressionGates) {
  // +40% with tight MADs: far beyond every floor.
  const std::string Base = suiteJson(workload("hash/SSN/Pext", 2.5, 0.02));
  const std::string New = suiteJson(workload("hash/SSN/Pext", 3.5, 0.02));
  Expected<CompareReport> Report = compareSuiteReports(Base, New);
  ASSERT_TRUE(Report);
  EXPECT_TRUE(Report->hasRegression());
  const WorkloadDelta *Delta = findDelta(*Report, "hash/SSN/Pext");
  ASSERT_NE(Delta, nullptr);
  EXPECT_EQ(Delta->Verdict, DeltaVerdict::Regression);
  EXPECT_NEAR(Delta->DeltaPct, 40.0, 0.01);
}

TEST(BenchCompare, ImprovementIsReportedNotGated) {
  const std::string Base = suiteJson(workload("hash/SSN/Aes", 4.0, 0.03));
  const std::string New = suiteJson(workload("hash/SSN/Aes", 3.0, 0.03));
  Expected<CompareReport> Report = compareSuiteReports(Base, New);
  ASSERT_TRUE(Report);
  EXPECT_FALSE(Report->hasRegression());
  EXPECT_EQ(Report->Improvements, 1u);
  EXPECT_EQ(findDelta(*Report, "hash/SSN/Aes")->Verdict,
            DeltaVerdict::Improvement);
}

TEST(BenchCompare, JitterInsideNoiseBandIsUnchanged) {
  // +6% — beyond the 5% relative floor — but the MADs say this
  // workload wobbles by ~0.15, so 3*MAD = 0.45 swallows the 0.15 move.
  const std::string Base = suiteJson(workload("fig13/SSN", 2.50, 0.15));
  const std::string New = suiteJson(workload("fig13/SSN", 2.65, 0.15));
  Expected<CompareReport> Report = compareSuiteReports(Base, New);
  ASSERT_TRUE(Report);
  EXPECT_FALSE(Report->hasRegression());
  EXPECT_EQ(findDelta(*Report, "fig13/SSN")->Verdict,
            DeltaVerdict::Unchanged);
}

TEST(BenchCompare, RelativeFloorIgnoresTightButTinyMoves) {
  // MADs are nearly zero so the noise band is just the 0.05 absolute
  // floor; a +0.06 move clears it — but that is only +1.2% of a 5.0
  // median, under the 5% relative floor. Both conditions must hold.
  const std::string Base = suiteJson(workload("hash/URL1/Stl", 5.00, 0.001));
  const std::string New = suiteJson(workload("hash/URL1/Stl", 5.06, 0.001));
  Expected<CompareReport> Report = compareSuiteReports(Base, New);
  ASSERT_TRUE(Report);
  EXPECT_FALSE(Report->hasRegression());
}

TEST(BenchCompare, AbsoluteFloorShieldsNearZeroWorkloads) {
  // +50% relative, but 0.02 -> 0.03 is a 0.01 absolute move, far under
  // the 0.05 floor: sub-floor workloads can never gate.
  const std::string Base = suiteJson(workload("hash/SSN/OffXor", 0.02, 0.0));
  const std::string New = suiteJson(workload("hash/SSN/OffXor", 0.03, 0.0));
  Expected<CompareReport> Report = compareSuiteReports(Base, New);
  ASSERT_TRUE(Report);
  EXPECT_FALSE(Report->hasRegression());
}

TEST(BenchCompare, ThresholdsAreConfigurable) {
  // The same +6% move from the jitter test becomes a regression once
  // the caller tightens the noise multiplier and relative floor.
  const std::string Base = suiteJson(workload("fig13/SSN", 2.50, 0.01));
  const std::string New = suiteJson(workload("fig13/SSN", 2.65, 0.01));
  CompareThresholds Tight;
  Tight.NoiseK = 1.0;
  Tight.AbsFloor = 0.01;
  Tight.RelFloor = 0.01;
  Expected<CompareReport> Report = compareSuiteReports(Base, New, Tight);
  ASSERT_TRUE(Report);
  EXPECT_TRUE(Report->hasRegression());

  CompareThresholds Loose;
  Loose.RelFloor = 0.50;
  Report = compareSuiteReports(Base, New, Loose);
  ASSERT_TRUE(Report);
  EXPECT_FALSE(Report->hasRegression());
}

TEST(BenchCompare, AddedAndRemovedNeverGate) {
  const std::string Base =
      suiteJson(workload("hash/SSN/Pext", 2.5, 0.02) + "," +
                workload("hash/SSN/Gone", 1.0, 0.01));
  const std::string New =
      suiteJson(workload("hash/SSN/Pext", 2.5, 0.02) + "," +
                workload("hash/SSN/Fresh", 9.9, 0.01));
  Expected<CompareReport> Report = compareSuiteReports(Base, New);
  ASSERT_TRUE(Report);
  EXPECT_FALSE(Report->hasRegression());
  EXPECT_EQ(findDelta(*Report, "hash/SSN/Gone")->Verdict,
            DeltaVerdict::Removed);
  EXPECT_EQ(findDelta(*Report, "hash/SSN/Fresh")->Verdict,
            DeltaVerdict::Added);
}

TEST(BenchCompare, SchemaMismatchIsAnError) {
  const std::string Base = suiteJson(workload("hash/SSN/Pext", 2.5, 0.02), 1);
  const std::string New = suiteJson(workload("hash/SSN/Pext", 2.5, 0.02), 2);
  Expected<CompareReport> Report = compareSuiteReports(Base, New);
  EXPECT_FALSE(Report);
  EXPECT_NE(Report.error().Message.find("schema_version"),
            std::string::npos);
}

TEST(BenchCompare, MissingSchemaIsAnError) {
  const std::string Base = suiteJson(workload("hash/SSN/Pext", 2.5, 0.02));
  const std::string New =
      "{\"benchmark\": \"sepebench\", \"workloads\": []}";
  EXPECT_FALSE(compareSuiteReports(Base, New));
}

TEST(BenchCompare, MalformedJsonIsAnError) {
  const std::string Good = suiteJson(workload("hash/SSN/Pext", 2.5, 0.02));
  EXPECT_FALSE(compareSuiteReports(Good, "{\"workloads\": ["));
  EXPECT_FALSE(compareSuiteReports("not json at all", Good));
  EXPECT_FALSE(compareSuiteReports(Good, "{\"schema_version\": 1}"));
}

TEST(BenchCompare, MalformedWorkloadEntriesAreSkipped) {
  // Entries without a name or median cannot be judged; they must not
  // poison the rest of the report.
  const std::string Base = suiteJson(
      workload("hash/SSN/Pext", 2.5, 0.02) +
      ",{\"unit\": \"ns\"},{\"name\": \"no_median\", \"unit\": \"ns\"}");
  const std::string New = suiteJson(workload("hash/SSN/Pext", 2.5, 0.02));
  Expected<CompareReport> Report = compareSuiteReports(Base, New);
  ASSERT_TRUE(Report);
  EXPECT_FALSE(Report->hasRegression());
  EXPECT_NE(findDelta(*Report, "hash/SSN/Pext"), nullptr);
  EXPECT_EQ(findDelta(*Report, "no_median"), nullptr);
}

TEST(BenchCompare, RenderMentionsEveryMovedWorkload) {
  const std::string Base =
      suiteJson(workload("hash/A", 2.0, 0.01) + "," +
                workload("hash/B", 3.0, 0.01));
  const std::string New =
      suiteJson(workload("hash/A", 3.0, 0.01) + "," +
                workload("hash/B", 2.0, 0.01));
  Expected<CompareReport> Report = compareSuiteReports(Base, New);
  ASSERT_TRUE(Report);
  const std::string Text = Report->render();
  EXPECT_NE(Text.find("hash/A"), std::string::npos);
  EXPECT_NE(Text.find("hash/B"), std::string::npos);
  EXPECT_NE(Text.find("REGRESSION"), std::string::npos);
}

} // namespace
