//===- tests/test_batch.cpp - Batch/single hashing equivalence ------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch API's one contract is bit-identity: hashBatch(Keys, Out, N)
/// must produce exactly operator()(Keys[i]) for every i, for every
/// hasher, at every IsaLevel. These property tests sweep all ten
/// HashKinds across all eight paper formats and all three ISA levels,
/// including the edge shapes the interleaved kernels must get right:
/// empty batches, N == 1, and odd N that leaves a remainder after the
/// four-keys-per-iteration main loop.
///
//===----------------------------------------------------------------------===//

#include "driver/hash_registry.h"

#include "core/regex_parser.h"
#include "core/synthesizer.h"
#include "hashes/polymur_like.h"
#include "keygen/distributions.h"
#include "support/batch.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <string_view>
#include <vector>

using namespace sepe;

namespace {

constexpr std::array<IsaLevel, 3> AllIsaLevels = {
    IsaLevel::Native, IsaLevel::NoBitExtract, IsaLevel::Portable};

const char *isaName(IsaLevel Isa) {
  switch (Isa) {
  case IsaLevel::Native:
    return "Native";
  case IsaLevel::NoBitExtract:
    return "NoBitExtract";
  case IsaLevel::Portable:
    return "Portable";
  }
  return "<invalid>";
}

std::vector<std::string_view> viewsOf(const std::vector<std::string> &Keys) {
  return std::vector<std::string_view>(Keys.begin(), Keys.end());
}

class BatchEquivalence : public ::testing::TestWithParam<PaperKey> {};

TEST_P(BatchEquivalence, AllKindsAllIsaLevelsBitIdentical) {
  const PaperKey Key = GetParam();
  KeyGenerator Gen(paperKeyFormat(Key), KeyDistribution::Uniform,
                   0x5eed + static_cast<uint64_t>(Key));
  // 131 = 32 interleaved groups of 4 plus a remainder of 3.
  const std::vector<std::string> Text = Gen.distinct(131);
  const std::vector<std::string_view> Views = viewsOf(Text);

  for (IsaLevel Isa : AllIsaLevels) {
    const HashFunctionSet Set = HashFunctionSet::create(Key, Isa);
    for (HashKind Kind : AllHashKinds) {
      const std::string Label = std::string(paperKeyName(Key)) + "/" +
                                hashKindName(Kind) + "/" + isaName(Isa);

      // An empty batch must not touch the output buffer.
      uint64_t Guard = 0xdeadbeefdeadbeefULL;
      Set.hashBatch(Kind, Views.data(), &Guard, 0);
      EXPECT_EQ(Guard, 0xdeadbeefdeadbeefULL) << Label;

      // N == 1: below any interleaving width.
      uint64_t One = 0;
      Set.hashBatch(Kind, Views.data(), &One, 1);
      EXPECT_EQ(One, Set.hash(Kind, Views[0])) << Label;

      // Odd N: exercises both the 4-way main loop and its remainder.
      std::vector<uint64_t> Out(Views.size(), 0);
      Set.hashBatch(Kind, Views.data(), Out.data(), Views.size());
      for (size_t I = 0; I != Views.size(); ++I)
        ASSERT_EQ(Out[I], Set.hash(Kind, Views[I]))
            << Label << " key[" << I << "]=" << Text[I];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFormats, BatchEquivalence,
                         ::testing::ValuesIn(AllPaperKeys),
                         [](const auto &Info) {
                           return std::string(paperKeyName(Info.param));
                         });

constexpr std::array<BatchPath, 5> AllBatchPaths = {
    BatchPath::Auto, BatchPath::Scalar, BatchPath::Interleaved,
    BatchPath::Avx2, BatchPath::Jit};

class ForcedPathEquivalence : public ::testing::TestWithParam<PaperKey> {};

TEST_P(ForcedPathEquivalence, EveryDispatchRungBitIdentical) {
  // Whatever kernel a preference resolves to on this host — scalar,
  // interleaved, or the AVX2 wide kernels — the batch output must be
  // bit-identical to the scalar single-key evaluator. 131 keys leave a
  // remainder after both the 4- and 8-key wide loops.
  const PaperKey Key = GetParam();
  KeyGenerator Gen(paperKeyFormat(Key), KeyDistribution::Uniform,
                   0xf0ced + static_cast<uint64_t>(Key));
  const std::vector<std::string> Text = Gen.distinct(131);
  const std::vector<std::string_view> Views = viewsOf(Text);

  for (IsaLevel Isa : AllIsaLevels) {
    const HashFunctionSet Set = HashFunctionSet::create(Key, Isa);
    for (HashKind Kind : SyntheticHashKinds) {
      const SynthesizedHash &Attached =
          Set.synthesized(syntheticFamily(Kind));
      for (BatchPath Preferred : AllBatchPaths) {
        const SynthesizedHash Forced(Attached.plan(), Isa, Preferred);
        const std::string Label = std::string(paperKeyName(Key)) + "/" +
                                  hashKindName(Kind) + "/" + isaName(Isa) +
                                  "/" + batchPathName(Preferred) + "->" +
                                  Forced.batchPathName();

        uint64_t Guard = 0xdeadbeefdeadbeefULL;
        Forced.hashBatch(Views.data(), &Guard, 0);
        EXPECT_EQ(Guard, 0xdeadbeefdeadbeefULL) << Label;

        for (size_t N : {size_t(1), size_t(3), Views.size()}) {
          std::vector<uint64_t> Out(N, 0);
          Forced.hashBatch(Views.data(), Out.data(), N);
          for (size_t I = 0; I != N; ++I)
            ASSERT_EQ(Out[I], Forced(Views[I]))
                << Label << " N=" << N << " key[" << I << "]=" << Text[I];
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFormats, ForcedPathEquivalence,
                         ::testing::ValuesIn(AllPaperKeys),
                         [](const auto &Info) {
                           return std::string(paperKeyName(Info.param));
                         });

TEST(BatchDispatchTest, ResolutionRespectsIsaCeiling) {
  // The wide rung only exists at Native; below it a forced Avx2 request
  // must land on a soft path, and a Scalar request always wins.
  for (PaperKey Key : AllPaperKeys) {
    for (IsaLevel Isa : AllIsaLevels) {
      const HashFunctionSet Set = HashFunctionSet::create(Key, Isa);
      for (HashKind Kind : SyntheticHashKinds) {
        const SynthesizedHash &Attached =
            Set.synthesized(syntheticFamily(Kind));
        for (BatchPath Preferred : AllBatchPaths) {
          const SynthesizedHash Forced(Attached.plan(), Isa, Preferred);
          const std::string Resolved = Forced.batchPathName();
          const std::string Label = std::string(paperKeyName(Key)) + "/" +
                                    hashKindName(Kind) + "/" + isaName(Isa);
          EXPECT_TRUE(Resolved == "scalar" || Resolved == "interleaved" ||
                      Resolved == "avx2" || Resolved == "jit")
              << Label << " resolved " << Resolved;
          if (Preferred == BatchPath::Scalar)
            EXPECT_EQ(Resolved, "scalar") << Label;
          if (Isa != IsaLevel::Native) {
            EXPECT_NE(Resolved, "avx2")
                << Label << ": wide kernels require the Native ceiling";
            EXPECT_NE(Resolved, "jit")
                << Label << ": compiled code requires the Native ceiling";
          }
        }
        // Auto never picks the wide pext network over one-cycle
        // hardware pext.
        if (Kind == HashKind::Pext)
          EXPECT_NE(std::string(Attached.batchPathName()), "avx2")
              << paperKeyName(Key) << "/" << isaName(Isa);
      }
    }
  }
}

TEST(BatchDispatchTest, DegenerateShapesResolveScalar) {
  // FallbackToStl and PartialLoad plans only have the per-key loop; any
  // preference must resolve to it.
  Expected<FormatSpec> Spec = parseRegex(R"(\d{4})");
  ASSERT_TRUE(Spec);
  for (bool AllowShort : {false, true}) {
    SynthesisOptions Options;
    Options.AllowShortKeys = AllowShort;
    Expected<HashPlan> Plan =
        synthesize(Spec->abstract(), HashFamily::OffXor, Options);
    ASSERT_TRUE(Plan);
    ASSERT_TRUE(AllowShort ? Plan->PartialLoad : Plan->FallbackToStl);
    for (BatchPath Preferred : AllBatchPaths) {
      const SynthesizedHash Forced(*Plan, IsaLevel::Native, Preferred);
      EXPECT_EQ(std::string(Forced.batchPathName()), "scalar");
    }
  }
}

TEST(BatchExecutorTest, UnalignedKeyDataBitIdentical) {
  // The wide kernels issue 32- and 16-byte loads at whatever alignment
  // the key data happens to have. Pack copies of each key at stride
  // len+1 inside one arena so the data pointers walk through every
  // alignment class mod 32.
  for (PaperKey Key : {PaperKey::IPv6, PaperKey::INTS, PaperKey::URL1,
                       PaperKey::URL2}) {
    KeyGenerator Gen(paperKeyFormat(Key), KeyDistribution::Uniform,
                     0xa119 + static_cast<uint64_t>(Key));
    const std::vector<std::string> Text = Gen.distinct(67);
    std::string Arena;
    for (const std::string &K : Text) {
      Arena += K;
      Arena.push_back('|');
    }
    std::vector<std::string_view> Views;
    size_t Pos = 0;
    for (const std::string &K : Text) {
      Views.push_back(std::string_view(Arena).substr(Pos, K.size()));
      Pos += K.size() + 1;
    }

    const HashFunctionSet Set = HashFunctionSet::create(Key);
    for (HashKind Kind : SyntheticHashKinds) {
      const SynthesizedHash &Attached =
          Set.synthesized(syntheticFamily(Kind));
      for (BatchPath Preferred : AllBatchPaths) {
        const SynthesizedHash Forced(Attached.plan(), IsaLevel::Native,
                                     Preferred);
        std::vector<uint64_t> Out(Views.size(), 0);
        Forced.hashBatch(Views.data(), Out.data(), Views.size());
        for (size_t I = 0; I != Views.size(); ++I)
          ASSERT_EQ(Out[I], Forced(Views[I]))
              << paperKeyName(Key) << "/" << hashKindName(Kind) << "/"
              << Forced.batchPathName() << " key[" << I << "]";
      }
    }
  }
}

TEST(BatchExecutorTest, PartialLoadPlansBatchLikeSingle) {
  // Forced short-key specialization (RQ7) is not in the registry; check
  // the batch kernels for the partial-load plan shape directly.
  Expected<FormatSpec> Spec = parseRegex(R"(\d{4})");
  ASSERT_TRUE(Spec);
  SynthesisOptions Options;
  Options.AllowShortKeys = true;
  for (HashFamily Family : {HashFamily::Naive, HashFamily::OffXor,
                            HashFamily::Aes, HashFamily::Pext}) {
    Expected<HashPlan> Plan = synthesize(Spec->abstract(), Family, Options);
    ASSERT_TRUE(Plan);
    ASSERT_TRUE(Plan->PartialLoad);
    for (IsaLevel Isa : AllIsaLevels) {
      const SynthesizedHash Hash(*Plan, Isa);
      KeyGenerator Gen(*Spec, KeyDistribution::Uniform, 77);
      const std::vector<std::string> Text = Gen.distinct(21);
      const std::vector<std::string_view> Views = viewsOf(Text);
      std::vector<uint64_t> Out(Views.size());
      Hash.hashBatch(Views.data(), Out.data(), Views.size());
      for (size_t I = 0; I != Views.size(); ++I)
        EXPECT_EQ(Out[I], Hash(Views[I]))
            << familyName(Family) << "/" << isaName(Isa);
    }
  }
}

TEST(BatchExecutorTest, StlFallbackPlansBatchLikeSingle) {
  // Keys under 8 bytes without forced specialization defer to the STL
  // hash; the batch path must defer identically.
  Expected<FormatSpec> Spec = parseRegex(R"(\d{4})");
  ASSERT_TRUE(Spec);
  Expected<HashPlan> Plan = synthesize(Spec->abstract(), HashFamily::OffXor);
  ASSERT_TRUE(Plan);
  ASSERT_TRUE(Plan->FallbackToStl);
  const SynthesizedHash Hash(Plan.take());
  KeyGenerator Gen(*Spec, KeyDistribution::Uniform, 3);
  const std::vector<std::string> Text = Gen.distinct(9);
  const std::vector<std::string_view> Views = viewsOf(Text);
  std::vector<uint64_t> Out(Views.size());
  Hash.hashBatch(Views.data(), Out.data(), Views.size());
  for (size_t I = 0; I != Views.size(); ++I)
    EXPECT_EQ(Out[I], Hash(Views[I]));
}

TEST(BatchAdapterTest, FallbackLoopCoversUnspecializedHashers) {
  // PolymurLikeHash has no native batch kernel; the support/batch.h
  // adapter must supply the loop-over-single fallback.
  static_assert(!HasNativeBatch<PolymurLikeHash>);
  static_assert(HasNativeBatch<MurmurStlHash>);
  static_assert(HasNativeBatch<FnvHash>);
  static_assert(HasNativeBatch<SynthesizedHash>);
  static_assert(HasNativeBatch<PerfectHashFunction>);

  const PolymurLikeHash Polymur;
  const std::vector<std::string> Text = {"alpha", "beta", "gamma-delta",
                                         "epsilon", "z"};
  const std::vector<std::string_view> Views = viewsOf(Text);
  std::vector<uint64_t> Out(Views.size());
  hashBatch(Polymur, Views.data(), Out.data(), Views.size());
  for (size_t I = 0; I != Views.size(); ++I)
    EXPECT_EQ(Out[I], Polymur(Views[I]));
}

// The fused guarded kernel (compileGuard + the precompiled-guard
// hashBatchGuarded overload) must agree exactly with the matches()
// oracle on admit/reject and with the plain batch kernel on every
// admitted key — across every paper format, with mutated bytes, wrong
// lengths, and chunk-boundary placements in one stream.
class FusedGuardEquivalence : public ::testing::TestWithParam<PaperKey> {};

TEST_P(FusedGuardEquivalence, AgreesWithMembershipOracle) {
  const PaperKey Key = GetParam();
  const KeyPattern Pattern = paperKeyFormat(Key).abstract();
  Expected<HashPlan> Plan = synthesize(Pattern, HashFamily::OffXor);
  ASSERT_TRUE(Plan) << Plan.error().Message;
  const SynthesizedHash Hash(Plan.take());
  const BatchGuard Compiled = Hash.compileGuard(Pattern);
  ASSERT_TRUE(Compiled.fused()) << paperKeyName(Key)
                                << " should compile to a fused guard";

  KeyGenerator Gen(paperKeyFormat(Key), KeyDistribution::Uniform,
                   0xfeed + static_cast<uint64_t>(Key));
  // 331 keys: several 64-key guard chunks plus a 4-wide remainder.
  std::vector<std::string> Text = Gen.distinct(331);
  // Sprinkle rejections everywhere a kernel lane could mishandle them:
  // mutated bytes at chunk starts/ends, wrong lengths mid-chunk (which
  // demote their whole chunk to the scalar lane), and a constant-prefix
  // violation when the format has uncovered constant positions.
  std::mt19937_64 Rng(99);
  for (const size_t I : {size_t{0}, size_t{63}, size_t{64}, size_t{127},
                         size_t{200}, Text.size() - 1})
    Text[I].back() = '\xff';
  Text[70] += "tail";
  Text[130].pop_back();
  Text[131].clear();
  for (size_t I = 0; I != 40; ++I) {
    std::string &K = Text[Rng() % Text.size()];
    if (!K.empty())
      K[Rng() % K.size()] ^= 0x80;
  }
  const std::vector<std::string_view> Views = viewsOf(Text);

  std::vector<uint64_t> Out(Views.size(), 0);
  std::vector<uint32_t> MissIdx(Views.size());
  const size_t Misses = Hash.hashBatchGuarded(
      Pattern, Compiled, Views.data(), Out.data(), Views.size(),
      MissIdx.data());

  std::vector<bool> Missed(Views.size(), false);
  for (size_t I = 0; I != Misses; ++I) {
    ASSERT_LT(MissIdx[I], Views.size());
    ASSERT_FALSE(Missed[MissIdx[I]]) << "duplicate miss index";
    Missed[MissIdx[I]] = true;
  }
  size_t OracleMisses = 0;
  for (size_t I = 0; I != Views.size(); ++I) {
    const bool InFormat = Pattern.matches(Views[I]);
    OracleMisses += !InFormat;
    EXPECT_EQ(Missed[I], !InFormat)
        << paperKeyName(Key) << " key[" << I << "]";
    if (InFormat)
      EXPECT_EQ(Out[I], Hash(Views[I]))
          << paperKeyName(Key) << " key[" << I << "]";
  }
  EXPECT_EQ(Misses, OracleMisses);
}

INSTANTIATE_TEST_SUITE_P(AllFormats, FusedGuardEquivalence,
                         ::testing::ValuesIn(AllPaperKeys),
                         [](const auto &Info) {
                           return std::string(paperKeyName(Info.param));
                         });

} // namespace
