//===- tests/test_batch.cpp - Batch/single hashing equivalence ------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch API's one contract is bit-identity: hashBatch(Keys, Out, N)
/// must produce exactly operator()(Keys[i]) for every i, for every
/// hasher, at every IsaLevel. These property tests sweep all ten
/// HashKinds across all eight paper formats and all three ISA levels,
/// including the edge shapes the interleaved kernels must get right:
/// empty batches, N == 1, and odd N that leaves a remainder after the
/// four-keys-per-iteration main loop.
///
//===----------------------------------------------------------------------===//

#include "driver/hash_registry.h"

#include "core/regex_parser.h"
#include "core/synthesizer.h"
#include "hashes/polymur_like.h"
#include "keygen/distributions.h"
#include "support/batch.h"

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

using namespace sepe;

namespace {

constexpr std::array<IsaLevel, 3> AllIsaLevels = {
    IsaLevel::Native, IsaLevel::NoBitExtract, IsaLevel::Portable};

const char *isaName(IsaLevel Isa) {
  switch (Isa) {
  case IsaLevel::Native:
    return "Native";
  case IsaLevel::NoBitExtract:
    return "NoBitExtract";
  case IsaLevel::Portable:
    return "Portable";
  }
  return "<invalid>";
}

std::vector<std::string_view> viewsOf(const std::vector<std::string> &Keys) {
  return std::vector<std::string_view>(Keys.begin(), Keys.end());
}

class BatchEquivalence : public ::testing::TestWithParam<PaperKey> {};

TEST_P(BatchEquivalence, AllKindsAllIsaLevelsBitIdentical) {
  const PaperKey Key = GetParam();
  KeyGenerator Gen(paperKeyFormat(Key), KeyDistribution::Uniform,
                   0x5eed + static_cast<uint64_t>(Key));
  // 131 = 32 interleaved groups of 4 plus a remainder of 3.
  const std::vector<std::string> Text = Gen.distinct(131);
  const std::vector<std::string_view> Views = viewsOf(Text);

  for (IsaLevel Isa : AllIsaLevels) {
    const HashFunctionSet Set = HashFunctionSet::create(Key, Isa);
    for (HashKind Kind : AllHashKinds) {
      const std::string Label = std::string(paperKeyName(Key)) + "/" +
                                hashKindName(Kind) + "/" + isaName(Isa);

      // An empty batch must not touch the output buffer.
      uint64_t Guard = 0xdeadbeefdeadbeefULL;
      Set.hashBatch(Kind, Views.data(), &Guard, 0);
      EXPECT_EQ(Guard, 0xdeadbeefdeadbeefULL) << Label;

      // N == 1: below any interleaving width.
      uint64_t One = 0;
      Set.hashBatch(Kind, Views.data(), &One, 1);
      EXPECT_EQ(One, Set.hash(Kind, Views[0])) << Label;

      // Odd N: exercises both the 4-way main loop and its remainder.
      std::vector<uint64_t> Out(Views.size(), 0);
      Set.hashBatch(Kind, Views.data(), Out.data(), Views.size());
      for (size_t I = 0; I != Views.size(); ++I)
        ASSERT_EQ(Out[I], Set.hash(Kind, Views[I]))
            << Label << " key[" << I << "]=" << Text[I];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFormats, BatchEquivalence,
                         ::testing::ValuesIn(AllPaperKeys),
                         [](const auto &Info) {
                           return std::string(paperKeyName(Info.param));
                         });

TEST(BatchExecutorTest, PartialLoadPlansBatchLikeSingle) {
  // Forced short-key specialization (RQ7) is not in the registry; check
  // the batch kernels for the partial-load plan shape directly.
  Expected<FormatSpec> Spec = parseRegex(R"(\d{4})");
  ASSERT_TRUE(Spec);
  SynthesisOptions Options;
  Options.AllowShortKeys = true;
  for (HashFamily Family : {HashFamily::Naive, HashFamily::OffXor,
                            HashFamily::Aes, HashFamily::Pext}) {
    Expected<HashPlan> Plan = synthesize(Spec->abstract(), Family, Options);
    ASSERT_TRUE(Plan);
    ASSERT_TRUE(Plan->PartialLoad);
    for (IsaLevel Isa : AllIsaLevels) {
      const SynthesizedHash Hash(*Plan, Isa);
      KeyGenerator Gen(*Spec, KeyDistribution::Uniform, 77);
      const std::vector<std::string> Text = Gen.distinct(21);
      const std::vector<std::string_view> Views = viewsOf(Text);
      std::vector<uint64_t> Out(Views.size());
      Hash.hashBatch(Views.data(), Out.data(), Views.size());
      for (size_t I = 0; I != Views.size(); ++I)
        EXPECT_EQ(Out[I], Hash(Views[I]))
            << familyName(Family) << "/" << isaName(Isa);
    }
  }
}

TEST(BatchExecutorTest, StlFallbackPlansBatchLikeSingle) {
  // Keys under 8 bytes without forced specialization defer to the STL
  // hash; the batch path must defer identically.
  Expected<FormatSpec> Spec = parseRegex(R"(\d{4})");
  ASSERT_TRUE(Spec);
  Expected<HashPlan> Plan = synthesize(Spec->abstract(), HashFamily::OffXor);
  ASSERT_TRUE(Plan);
  ASSERT_TRUE(Plan->FallbackToStl);
  const SynthesizedHash Hash(Plan.take());
  KeyGenerator Gen(*Spec, KeyDistribution::Uniform, 3);
  const std::vector<std::string> Text = Gen.distinct(9);
  const std::vector<std::string_view> Views = viewsOf(Text);
  std::vector<uint64_t> Out(Views.size());
  Hash.hashBatch(Views.data(), Out.data(), Views.size());
  for (size_t I = 0; I != Views.size(); ++I)
    EXPECT_EQ(Out[I], Hash(Views[I]));
}

TEST(BatchAdapterTest, FallbackLoopCoversUnspecializedHashers) {
  // PolymurLikeHash has no native batch kernel; the support/batch.h
  // adapter must supply the loop-over-single fallback.
  static_assert(!HasNativeBatch<PolymurLikeHash>);
  static_assert(HasNativeBatch<MurmurStlHash>);
  static_assert(HasNativeBatch<FnvHash>);
  static_assert(HasNativeBatch<SynthesizedHash>);
  static_assert(HasNativeBatch<PerfectHashFunction>);

  const PolymurLikeHash Polymur;
  const std::vector<std::string> Text = {"alpha", "beta", "gamma-delta",
                                         "epsilon", "z"};
  const std::vector<std::string_view> Views = viewsOf(Text);
  std::vector<uint64_t> Out(Views.size());
  hashBatch(Polymur, Views.data(), Out.data(), Views.size());
  for (size_t I = 0; I != Views.size(); ++I)
    EXPECT_EQ(Out[I], Polymur(Views[I]));
}

} // namespace
