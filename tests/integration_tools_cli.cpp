//===- tests/integration_tools_cli.cpp - keybuilder / keysynth CLI --------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exercises the two command-line tools end to end, reproducing the
/// Figure 5 tutorial: keybuilder infers a regex from example keys, and
/// keysynth turns the regex into compilable C++.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <string>

namespace {

std::string binaryPath(const std::string &Tool) {
  return std::string(SEPE_BINARY_DIR) + "/src/" + Tool;
}

/// Runs \p Command, captures stdout, stores the exit code.
std::string runCommand(const std::string &Command, int &ExitCode) {
  std::string Output;
  FILE *Pipe = popen(Command.c_str(), "r");
  if (Pipe == nullptr) {
    ExitCode = -1;
    return Output;
  }
  std::array<char, 4096> Buffer;
  size_t Count;
  while ((Count = fread(Buffer.data(), 1, Buffer.size(), Pipe)) > 0)
    Output.append(Buffer.data(), Count);
  ExitCode = pclose(Pipe);
  return Output;
}

TEST(ToolsCliTest, KeybuilderInfersIpv4Regex) {
  const std::string KeysFile = ::testing::TempDir() + "/ipv4_keys.txt";
  {
    std::ofstream Out(KeysFile);
    Out << "192.168.001.042\n"
        << "010.000.255.001\n"
        << "127.000.000.001\n"
        << "555.555.555.555\n";
  }
  int ExitCode = 0;
  const std::string Regex =
      runCommand(binaryPath("keybuilder") + " " + KeysFile, ExitCode);
  EXPECT_EQ(ExitCode, 0);
  EXPECT_NE(Regex.find("{3}"), std::string::npos) << Regex;
  EXPECT_NE(Regex.find("\\."), std::string::npos) << Regex;
}

TEST(ToolsCliTest, KeybuilderReadsStdin) {
  int ExitCode = 0;
  const std::string Regex = runCommand(
      "printf 'JFK\\nLaX\\nGRu\\n' | " + binaryPath("keybuilder"),
      ExitCode);
  EXPECT_EQ(ExitCode, 0);
  EXPECT_FALSE(Regex.empty());
}

TEST(ToolsCliTest, KeybuilderFailsOnEmptyInput) {
  int ExitCode = 0;
  runCommand("printf '' | " + binaryPath("keybuilder") + " 2>/dev/null",
             ExitCode);
  EXPECT_NE(ExitCode, 0);
}

TEST(ToolsCliTest, KeysynthEmitsAllFourFamilies) {
  int ExitCode = 0;
  const std::string Code = runCommand(
      binaryPath("keysynth") + " '(([0-9]{3})\\.){3}[0-9]{3}'", ExitCode);
  EXPECT_EQ(ExitCode, 0);
  for (const char *Name : {"SepeNaiveHash", "SepeOffXorHash", "SepeAesHash",
                           "SepePextHash"})
    EXPECT_NE(Code.find(Name), std::string::npos) << Name;
}

TEST(ToolsCliTest, KeysynthSingleFamilyWithOptions) {
  int ExitCode = 0;
  const std::string Code = runCommand(
      binaryPath("keysynth") +
          " --family=pext --target=aarch64 --name=JetsonHash"
          " '\\d{3}-\\d{2}-\\d{4}'",
      ExitCode);
  EXPECT_EQ(ExitCode, 0);
  EXPECT_NE(Code.find("struct JetsonHash"), std::string::npos);
  EXPECT_NE(Code.find("sepe_pext_soft"), std::string::npos)
      << "the paper's Jetson has no bext: expect the soft gather";
  EXPECT_EQ(Code.find("SepeNaiveHash"), std::string::npos);
}

TEST(ToolsCliTest, KeysynthRejectsBadRegex) {
  int ExitCode = 0;
  runCommand(binaryPath("keysynth") + " 'a*' 2>/dev/null", ExitCode);
  EXPECT_NE(ExitCode, 0);
}

TEST(ToolsCliTest, PipelineKeybuilderIntoKeysynth) {
  // Figure 5a: keysynth "$(keybuilder < file_with_keys.txt)".
  const std::string KeysFile = ::testing::TempDir() + "/ssn_keys.txt";
  {
    std::ofstream Out(KeysFile);
    Out << "000-00-0000\n555-55-5555\n123-45-6789\n";
  }
  int ExitCode = 0;
  const std::string Code = runCommand(
      binaryPath("keysynth") + " \"$(" + binaryPath("keybuilder") + " < " +
          KeysFile + ")\"",
      ExitCode);
  EXPECT_EQ(ExitCode, 0);
  EXPECT_NE(Code.find("SepePextHash"), std::string::npos);
}

TEST(ToolsCliTest, PlanOutPlanInRoundTripsTheGeneratedCode) {
  const std::string PlanStem = ::testing::TempDir() + "/ssn_plan";
  int ExitCode = 0;
  const std::string Direct = runCommand(
      binaryPath("keysynth") + " --family=pext --plan-out=" + PlanStem +
          " '\\d{3}-\\d{2}-\\d{4}'",
      ExitCode);
  ASSERT_EQ(ExitCode, 0);
  const std::string FromPlan = runCommand(
      binaryPath("keysynth") + " --plan-in=" + PlanStem + ".Pext",
      ExitCode);
  ASSERT_EQ(ExitCode, 0);
  EXPECT_EQ(Direct, FromPlan)
      << "plan round trip must regenerate identical code";
}

TEST(ToolsCliTest, PlanInRejectsGarbage) {
  const std::string Path = ::testing::TempDir() + "/garbage_plan";
  {
    std::ofstream Out(Path);
    Out << "this is not a plan\n";
  }
  int ExitCode = 0;
  runCommand(binaryPath("keysynth") + " --plan-in=" + Path +
                 " 2>/dev/null",
             ExitCode);
  EXPECT_NE(ExitCode, 0);
}

TEST(ToolsCliTest, MphfBuildSerializeLoadExplainRoundTrips) {
  // Static-set tier CLI loop: build an MPHF over a key file (the regex
  // supplies the extraction front-end), store it, reload it, and check
  // the reloaded plan renders identically.
  const std::string KeysFile = ::testing::TempDir() + "/mphf_keys.txt";
  {
    std::ofstream Out(KeysFile);
    for (int I = 0; I != 200; ++I) {
      char Buffer[16];
      std::snprintf(Buffer, sizeof(Buffer), "%03d-%02d-%04d", I % 1000,
                    (I * 7) % 100, (I * 37) % 10000);
      Out << Buffer << "\n";
    }
  }
  const std::string MphfFile = ::testing::TempDir() + "/mphf_keys.mphf";
  int ExitCode = 0;
  const std::string Direct = runCommand(
      binaryPath("keysynth") + " --mphf-keys=" + KeysFile +
          " --mphf-out=" + MphfFile + " '\\d{3}-\\d{2}-\\d{4}'",
      ExitCode);
  ASSERT_EQ(ExitCode, 0);
  EXPECT_NE(Direct.find("mphf Split"), std::string::npos)
      << "200 keys must land in the Split tier: " << Direct;
  const std::string Reloaded = runCommand(
      binaryPath("keysynth") + " --mphf-in=" + MphfFile, ExitCode);
  ASSERT_EQ(ExitCode, 0);
  EXPECT_EQ(Direct, Reloaded)
      << "serialized MPHF must explain identically after reload";
}

TEST(ToolsCliTest, MphfInRejectsGarbage) {
  const std::string Path = ::testing::TempDir() + "/garbage_mphf";
  {
    std::ofstream Out(Path);
    Out << "sepe-mphf v999\nnot a plan\n";
  }
  int ExitCode = 0;
  runCommand(binaryPath("keysynth") + " --mphf-in=" + Path +
                 " 2>/dev/null",
             ExitCode);
  EXPECT_NE(ExitCode, 0);
}

TEST(ToolsCliTest, SepedriverRunsOneExperiment) {
  int ExitCode = 0;
  const std::string Output = runCommand(
      binaryPath("sepedriver") +
          " --key=SSN --spread=300 --affectations=600 --mode=inter70",
      ExitCode);
  EXPECT_EQ(ExitCode, 0);
  EXPECT_NE(Output.find("OffXor"), std::string::npos);
  EXPECT_NE(Output.find("Gperf"), std::string::npos);
  EXPECT_NE(Output.find("B-Time"), std::string::npos);
}

TEST(ToolsCliTest, SepedriverRejectsBadArguments) {
  int ExitCode = 0;
  runCommand(binaryPath("sepedriver") + " --key=NOPE 2>/dev/null",
             ExitCode);
  EXPECT_NE(ExitCode, 0);
  runCommand(binaryPath("sepedriver") + " --container=tree 2>/dev/null",
             ExitCode);
  EXPECT_NE(ExitCode, 0);
}

TEST(ToolsCliTest, GeneratedCodeFromCliCompiles) {
  const std::string Dir = ::testing::TempDir();
  const std::string Cpp = Dir + "/cli_gen.cpp";
  const std::string Obj = Dir + "/cli_gen.o";
  int ExitCode = 0;
  runCommand(binaryPath("keysynth") +
                 " '([0-9a-f]{4}:){7}[0-9a-f]{4}' > " + Cpp,
             ExitCode);
  ASSERT_EQ(ExitCode, 0);
  runCommand("g++ -std=c++20 -O2 -mbmi2 -maes -c -o " + Obj + " " + Cpp,
             ExitCode);
  EXPECT_EQ(ExitCode, 0) << "keysynth output must compile as-is";
}

} // namespace
