//===- tests/test_telemetry.cpp - Observability substrate -----------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
//
// Runs in both build flavors: with -DSEPE_TELEMETRY=ON the full
// counter/histogram/timer semantics are checked, plus two end-to-end
// properties (FlatIndexMap probe accounting, executor batch dispatch);
// without it the same binary checks that the no-op shims really are
// inert and that toJson() still emits the valid minimal document.
//
//===----------------------------------------------------------------------===//

#include "support/telemetry.h"

#include "container/flat_index_map.h"
#include "core/regex_parser.h"
#include "core/synthesizer.h"
#include "keygen/distributions.h"
#include "keygen/paper_formats.h"

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

using namespace sepe;

namespace {

/// Zeroes the registry and enables recording for one test body;
/// restores the default-off state on scope exit so no other test sees
/// telemetry enabled.
struct TelemetryScope {
  TelemetryScope() {
    telemetry::resetAll();
    telemetry::setEnabled(true);
  }
  ~TelemetryScope() { telemetry::setEnabled(false); }
};

SynthesizedHash bijectiveHash(const std::string &Regex) {
  Expected<FormatSpec> Spec = parseRegex(Regex);
  EXPECT_TRUE(Spec);
  Expected<HashPlan> Plan = synthesize(Spec->abstract(), HashFamily::Pext);
  EXPECT_TRUE(Plan);
  EXPECT_TRUE(Plan->Bijective) << Regex;
  return SynthesizedHash(Plan.take());
}

TEST(TelemetryCoreTest, DisabledByDefault) {
  // Both flavors: recording must be opt-in (setEnabled or the
  // SEPE_TELEMETRY_ENABLED env var, which the test harness never sets).
  EXPECT_FALSE(telemetry::enabled());
}

TEST(TelemetryCoreTest, CompiledOutShimsAreInert) {
  if (telemetry::compiledIn())
    GTEST_SKIP() << "built with SEPE_TELEMETRY; shims not in play";
  telemetry::setEnabled(true);
  EXPECT_FALSE(telemetry::enabled());

  telemetry::Counter &C = telemetry::counter("test.shim.counter");
  C.add(7);
  EXPECT_EQ(C.value(), 0u);

  telemetry::Histogram &H = telemetry::histogram("test.shim.histogram");
  H.record(42);
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.sum(), 0u);
  EXPECT_EQ(H.max(), 0u);

  { telemetry::ScopedTimer T(telemetry::span("test.shim.span")); }
  EXPECT_EQ(telemetry::span("test.shim.span").count(), 0u);

  const std::string Json = telemetry::toJson();
  EXPECT_NE(Json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(Json.find("\"compiled_in\":false"), std::string::npos);
  EXPECT_NE(Json.find("\"counters\":{}"), std::string::npos);
}

TEST(TelemetryCoreTest, CounterGatesOnEnabledFlag) {
  if (!telemetry::compiledIn())
    GTEST_SKIP() << "needs -DSEPE_TELEMETRY=ON";
  TelemetryScope Scope;
  telemetry::Counter &C = telemetry::counter("test.counter.gate");
  C.add();
  C.add(9);
  EXPECT_EQ(C.value(), 10u);

  telemetry::setEnabled(false);
  C.add(100);
  EXPECT_EQ(C.value(), 10u) << "disabled counter must not move";

  telemetry::setEnabled(true);
  C.reset();
  EXPECT_EQ(C.value(), 0u);
}

TEST(TelemetryCoreTest, HistogramBucketsAndMoments) {
  if (!telemetry::compiledIn())
    GTEST_SKIP() << "needs -DSEPE_TELEMETRY=ON";
  using telemetry::Histogram;
  // The log2 layout: bucket 0 <- {0}, bucket i <- [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::bucketOf(0), 0u);
  EXPECT_EQ(Histogram::bucketOf(1), 1u);
  EXPECT_EQ(Histogram::bucketOf(2), 2u);
  EXPECT_EQ(Histogram::bucketOf(3), 2u);
  EXPECT_EQ(Histogram::bucketOf(4), 3u);
  EXPECT_EQ(Histogram::bucketOf(~uint64_t{0}), 64u);
  EXPECT_EQ(Histogram::bucketFloor(0), 0u);
  EXPECT_EQ(Histogram::bucketFloor(1), 1u);
  EXPECT_EQ(Histogram::bucketFloor(5), 16u);

  TelemetryScope Scope;
  telemetry::Histogram &H = telemetry::histogram("test.histogram.moments");
  for (uint64_t V : {0, 1, 2, 3, 1000})
    H.record(V);
  EXPECT_EQ(H.count(), 5u);
  EXPECT_EQ(H.sum(), 1006u);
  EXPECT_EQ(H.max(), 1000u);
  EXPECT_EQ(H.bucket(0), 1u);
  EXPECT_EQ(H.bucket(1), 1u);
  EXPECT_EQ(H.bucket(2), 2u);
  EXPECT_EQ(H.bucket(Histogram::bucketOf(1000)), 1u);

  telemetry::setEnabled(false);
  H.record(5);
  EXPECT_EQ(H.count(), 5u) << "disabled histogram must not move";
}

TEST(TelemetryCoreTest, PercentileInterpolatesBucketBoundaries) {
  if (!telemetry::compiledIn())
    GTEST_SKIP() << "needs -DSEPE_TELEMETRY=ON";
  TelemetryScope Scope;
  telemetry::Histogram &H = telemetry::histogram("test.percentile");
  EXPECT_EQ(H.percentile(0.50), 0.0) << "empty histogram";

  // 99 samples in [16, 32) and one at 1000: the p50 lands mid-bucket,
  // the p999 rides the outlier but clamps to the observed max.
  for (int I = 0; I != 99; ++I)
    H.record(16);
  H.record(1000);
  const double P50 = H.percentile(0.50);
  EXPECT_GE(P50, 16.0);
  EXPECT_LT(P50, 32.0);
  const double P999 = H.percentile(0.999);
  EXPECT_GT(P999, 32.0);
  EXPECT_LE(P999, 1000.0) << "clamped to max(), not the bucket ceiling";
  // Quantiles are monotone in Q.
  EXPECT_LE(H.percentile(0.50), H.percentile(0.90));
  EXPECT_LE(H.percentile(0.90), H.percentile(0.99));
  EXPECT_LE(H.percentile(0.99), H.percentile(0.999));

  // The JSON export carries the summary keys.
  const std::string Json = telemetry::toJson();
  EXPECT_NE(Json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(Json.find("\"p90\":"), std::string::npos);
  EXPECT_NE(Json.find("\"p99\":"), std::string::npos);
  EXPECT_NE(Json.find("\"p999\":"), std::string::npos);
}

TEST(TelemetryCoreTest, PercentileEdgeCases) {
  if (!telemetry::compiledIn())
    GTEST_SKIP() << "needs -DSEPE_TELEMETRY=ON";
  TelemetryScope Scope;

  // Empty histogram: every quantile, including the clamped extremes,
  // is 0.0 rather than NaN or a bucket floor.
  telemetry::Histogram &Empty = telemetry::histogram("test.pct.empty");
  for (double Q : {-1.0, 0.0, 0.5, 1.0, 2.0})
    EXPECT_EQ(Empty.percentile(Q), 0.0) << "Q=" << Q;

  // Single-bucket population: all mass in [4, 8). Every quantile must
  // land inside that bucket and at or below the observed max.
  telemetry::Histogram &One = telemetry::histogram("test.pct.onebucket");
  for (int I = 0; I != 10; ++I)
    One.record(7);
  for (double Q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    const double P = One.percentile(Q);
    EXPECT_GE(P, 4.0) << "Q=" << Q;
    EXPECT_LE(P, 7.0) << "Q=" << Q << " must clamp to the observed max";
  }

  // Out-of-range Q clamps instead of extrapolating: below 0 behaves
  // like 0, above 1 like 1 (the observed max).
  telemetry::Histogram &Spread = telemetry::histogram("test.pct.spread");
  for (uint64_t V : {1, 10, 100, 1000})
    Spread.record(V);
  EXPECT_EQ(Spread.percentile(-0.5), Spread.percentile(0.0));
  EXPECT_EQ(Spread.percentile(1.5), Spread.percentile(1.0));
  EXPECT_LE(Spread.percentile(1.0), 1000.0);

  // Monotone ladder across buckets: p50 <= p90 <= p99 <= p999.
  EXPECT_LE(Spread.percentile(0.50), Spread.percentile(0.90));
  EXPECT_LE(Spread.percentile(0.90), Spread.percentile(0.99));
  EXPECT_LE(Spread.percentile(0.99), Spread.percentile(0.999));
}

TEST(TelemetryCoreTest, PrometheusExposition) {
  TelemetryScope Scope;
  if (!telemetry::compiledIn()) {
    // The compiled-out shim must still return a commented document.
    EXPECT_EQ(telemetry::toPrometheus().rfind("#", 0), 0u);
    return;
  }
  telemetry::counter("test.prom.counter").add(5);
  telemetry::histogram("test.prom.hist").record(32);
  telemetry::span("test.prom.span").record(1024);
  const std::string Text = telemetry::toPrometheus();
  // Names are flattened onto the Prometheus alphabet and prefixed.
  EXPECT_NE(Text.find("# TYPE sepe_test_prom_counter counter"),
            std::string::npos);
  EXPECT_NE(Text.find("sepe_test_prom_counter 5"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE sepe_test_prom_hist summary"),
            std::string::npos);
  EXPECT_NE(Text.find("sepe_test_prom_hist{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(Text.find("sepe_test_prom_hist_count 1"), std::string::npos);
  EXPECT_NE(Text.find("sepe_test_prom_span_ns{quantile=\"0.5\"}"),
            std::string::npos)
      << "span histograms carry the _ns unit suffix";
}

TEST(TelemetryCoreTest, ScopedTimerRecordsOnlyWhenEnabled) {
  if (!telemetry::compiledIn())
    GTEST_SKIP() << "needs -DSEPE_TELEMETRY=ON";
  TelemetryScope Scope;
  telemetry::Histogram &Span = telemetry::span("test.timer");
  {
    telemetry::ScopedTimer T(Span);
    volatile unsigned Spin = 0;
    for (unsigned I = 0; I != 1000; ++I)
      Spin = Spin + 1;
  }
  EXPECT_EQ(Span.count(), 1u);

  telemetry::setEnabled(false);
  { telemetry::ScopedTimer T(Span); }
  EXPECT_EQ(Span.count(), 1u) << "disabled timer must not record";
}

TEST(TelemetryCoreTest, MacrosFeedTheRegistryAndResetAllZeroes) {
  if (!telemetry::compiledIn())
    GTEST_SKIP() << "needs -DSEPE_TELEMETRY=ON";
  TelemetryScope Scope;
  for (int I = 0; I != 3; ++I) {
    SEPE_COUNT("test.macro.count");
    SEPE_RECORD("test.macro.record", 16);
    SEPE_SPAN("test.macro.span");
  }
  EXPECT_EQ(telemetry::counter("test.macro.count").value(), 3u);
  EXPECT_EQ(telemetry::histogram("test.macro.record").count(), 3u);
  EXPECT_EQ(telemetry::histogram("test.macro.record").sum(), 48u);
  EXPECT_EQ(telemetry::span("test.macro.span").count(), 3u);

  const std::string Json = telemetry::toJson();
  EXPECT_NE(Json.find("\"compiled_in\":true"), std::string::npos);
  EXPECT_NE(Json.find("\"test.macro.count\":3"), std::string::npos);
  EXPECT_NE(Json.find("\"test.macro.record\""), std::string::npos);
  EXPECT_NE(Json.find("\"test.macro.span\""), std::string::npos);

  telemetry::resetAll();
  EXPECT_EQ(telemetry::counter("test.macro.count").value(), 0u);
  EXPECT_EQ(telemetry::histogram("test.macro.record").count(), 0u);
  EXPECT_EQ(telemetry::span("test.macro.span").count(), 0u);
}

// The probe-length property: every find() — hit or miss — records
// exactly one sample in the probe-groups histogram, so its count must
// equal the hit counter plus the miss counter, and no probe can scan
// zero groups.
TEST(TelemetryFlatIndexMapTest, ProbeHistogramTotalsMatchLookups) {
  if (!telemetry::compiledIn())
    GTEST_SKIP() << "needs -DSEPE_TELEMETRY=ON";
  const SynthesizedHash Pext = bijectiveHash(R"(\d{3}-\d{2}-\d{4})");
  KeyGenerator Gen(paperKeyFormat(PaperKey::SSN), KeyDistribution::Uniform,
                   0x7e1e);
  const std::vector<std::string> Pool = Gen.distinct(4096);
  const size_t Half = Pool.size() / 2;

  FlatIndexMap<uint64_t> Map(Pext, 16);
  for (size_t I = 0; I != Half; ++I)
    Map.insert(Pool[I], I);

  // Enable after the build phase so only the measured lookups count.
  TelemetryScope Scope;
  size_t Hits = 0, Misses = 0;
  for (const std::string &Key : Pool) {
    if (Map.find(Key) != nullptr)
      ++Hits;
    else
      ++Misses;
  }
  ASSERT_EQ(Hits, Half);
  ASSERT_EQ(Misses, Pool.size() - Half);

  const telemetry::Histogram &Probe =
      telemetry::histogram("flat_index_map.probe_groups.find");
  EXPECT_EQ(telemetry::counter("flat_index_map.find.hit").value(), Hits);
  EXPECT_EQ(telemetry::counter("flat_index_map.find.miss").value(), Misses);
  EXPECT_EQ(Probe.count(), Hits + Misses);
  EXPECT_EQ(Probe.bucket(0), 0u) << "a probe always scans >= 1 group";
  EXPECT_GE(Probe.sum(), Probe.count());
  EXPECT_GE(Probe.max(), 1u);
}

TEST(TelemetryDispatchTest, ForcedPathsRecordTheForcedRung) {
  if (!telemetry::compiledIn())
    GTEST_SKIP() << "needs -DSEPE_TELEMETRY=ON";
  Expected<FormatSpec> Spec = parseRegex(R"(\d{3}-\d{2}-\d{4})");
  ASSERT_TRUE(Spec);
  Expected<HashPlan> Plan = synthesize(Spec->abstract(), HashFamily::OffXor);
  ASSERT_TRUE(Plan);

  KeyGenerator Gen(paperKeyFormat(PaperKey::SSN), KeyDistribution::Uniform,
                   0xd15b);
  const std::vector<std::string> Keys = Gen.distinct(37);
  std::vector<std::string_view> Views(Keys.begin(), Keys.end());
  std::vector<uint64_t> Out(Views.size());

  const char *AllRungs[] = {"scalar", "interleaved", "avx2"};
  for (BatchPath Preferred :
       {BatchPath::Scalar, BatchPath::Interleaved, BatchPath::Avx2}) {
    // A forced request the host cannot honor resolves downward, so the
    // assertion targets the resolved rung — which IS the forced one
    // whenever the host supports it, and for Scalar always.
    const SynthesizedHash Forced(*Plan, IsaLevel::Native, Preferred);
    const std::string Rung = Forced.batchPathName();
    if (Preferred == BatchPath::Scalar) {
      ASSERT_EQ(Rung, "scalar");
    }

    TelemetryScope Scope;
    Forced.hashBatch(Views.data(), Out.data(), Views.size());

    const std::string CallsName = "executor.batch.calls." + Rung;
    const std::string KeysName = "executor.batch.keys." + Rung;
    EXPECT_EQ(telemetry::counter(CallsName.c_str()).value(), 1u) << Rung;
    EXPECT_EQ(telemetry::histogram(KeysName.c_str()).count(), 1u) << Rung;
    EXPECT_EQ(telemetry::histogram(KeysName.c_str()).sum(), Views.size())
        << Rung;
    EXPECT_EQ(telemetry::histogram("executor.batch.tail_keys").sum(),
              Views.size() % 4);
    for (const char *Other : AllRungs) {
      if (Rung == Other)
        continue;
      const std::string OtherName = std::string("executor.batch.calls.") +
                                    Other;
      EXPECT_EQ(telemetry::counter(OtherName.c_str()).value(), 0u)
          << "forced " << Rung << " must not touch " << Other;
    }
  }
}

TEST(TelemetryDispatchTest, SingleCallCounterMoves) {
  if (!telemetry::compiledIn())
    GTEST_SKIP() << "needs -DSEPE_TELEMETRY=ON";
  const SynthesizedHash Hash = bijectiveHash(R"(\d{3}-\d{2}-\d{4})");
  TelemetryScope Scope;
  (void)Hash("123-45-6789");
  (void)Hash("987-65-4321");
  EXPECT_EQ(telemetry::counter("executor.single.calls").value(), 2u);
}

} // namespace
