//===- tests/test_synthesizer.cpp - Plan synthesis (Section 3.2) ----------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "core/synthesizer.h"

#include "core/regex_parser.h"

#include <gtest/gtest.h>

#include <bit>

using namespace sepe;

namespace {

KeyPattern patternOf(const std::string &Regex) {
  Expected<FormatSpec> Spec = parseRegex(Regex);
  EXPECT_TRUE(Spec) << Regex;
  return Spec->abstract();
}

HashPlan planOf(const std::string &Regex, HashFamily Family,
                const SynthesisOptions &Options = {}) {
  Expected<HashPlan> Plan = synthesize(patternOf(Regex), Family, Options);
  EXPECT_TRUE(Plan) << Regex;
  return Plan.take();
}

TEST(SynthesizerTest, RejectsEmptyPattern) {
  EXPECT_FALSE(synthesize(KeyPattern(), HashFamily::OffXor));
}

TEST(SynthesizerTest, RejectsAllConstantFormat) {
  Expected<HashPlan> Plan =
      synthesize(patternOf("onlyone"), HashFamily::OffXor);
  ASSERT_FALSE(Plan);
  EXPECT_NE(Plan.error().Message.find("single key"), std::string::npos);
}

TEST(SynthesizerTest, ShortKeysFallBackToStl) {
  // Footnote 5: keys under one machine word default to the STL hash.
  const HashPlan Plan = planOf(R"(\d{4})", HashFamily::Pext);
  EXPECT_TRUE(Plan.FallbackToStl);
  EXPECT_TRUE(Plan.Steps.empty());
}

TEST(SynthesizerTest, ShortKeysCanBeForced) {
  SynthesisOptions Options;
  Options.AllowShortKeys = true;
  const HashPlan Plan = planOf(R"(\d{4})", HashFamily::Pext, Options);
  EXPECT_FALSE(Plan.FallbackToStl);
  EXPECT_TRUE(Plan.PartialLoad);
  ASSERT_EQ(Plan.Steps.size(), 1u);
  EXPECT_EQ(Plan.Steps[0].Mask, 0x0f0f0f0fULL);
}

TEST(SynthesizerTest, SsnOffXorIsTwoLoads) {
  const HashPlan Plan = planOf(R"(\d{3}-\d{2}-\d{4})", HashFamily::OffXor);
  ASSERT_EQ(Plan.Steps.size(), 2u);
  EXPECT_EQ(Plan.Steps[0].Offset, 0u);
  EXPECT_EQ(Plan.Steps[1].Offset, 3u);
  EXPECT_EQ(Plan.Steps[0].Mask, ~uint64_t{0});
  EXPECT_EQ(Plan.Steps[0].Shift, 0);
}

TEST(SynthesizerTest, SsnPextMasksMatchFigure12) {
  const HashPlan Plan = planOf(R"(\d{3}-\d{2}-\d{4})", HashFamily::Pext);
  ASSERT_EQ(Plan.Steps.size(), 2u);
  EXPECT_EQ(Plan.Steps[0].Mask, 0x0f000f0f000f0f0fULL);
  EXPECT_EQ(Plan.Steps[1].Mask, 0x0f0f0f0000000000ULL);
  EXPECT_EQ(Plan.Steps[0].Shift, 0);
  // Figure 12, Step 3: the last chunk (12 bits) is hoisted to the top of
  // the 64-bit range: 64 - 12 = 52.
  EXPECT_EQ(Plan.Steps[1].Shift, 52);
}

TEST(SynthesizerTest, SpreadToTopCanBeDisabled) {
  SynthesisOptions Options;
  Options.SpreadToTopBits = false;
  const HashPlan Plan =
      planOf(R"(\d{3}-\d{2}-\d{4})", HashFamily::Pext, Options);
  ASSERT_EQ(Plan.Steps.size(), 2u);
  EXPECT_EQ(Plan.Steps[1].Shift, 24) << "sequential packing after 24 bits";
}

TEST(SynthesizerTest, NaiveLoadsEveryWordOffXorSkips) {
  // URL1: 23 constant bytes + 20 slug + 5 constant suffix = 48 bytes.
  const std::string Url = R"(https://example\.com/go/[a-z0-9]{20}\.html)";
  const HashPlan Naive = planOf(Url, HashFamily::Naive);
  const HashPlan OffXor = planOf(Url, HashFamily::OffXor);
  EXPECT_EQ(Naive.Steps.size(), 6u) << "48 bytes = 6 words";
  EXPECT_LT(OffXor.Steps.size(), Naive.Steps.size());
  ASSERT_EQ(OffXor.Steps.size(), 3u) << "20 slug bytes = 3 overlapping words";
  EXPECT_EQ(OffXor.Steps[0].Offset, 23u);
}

TEST(SynthesizerTest, AesSharesOffXorLayout) {
  const std::string Url = R"(https://example\.com/go/[a-z0-9]{20}\.html)";
  const HashPlan Aes = planOf(Url, HashFamily::Aes);
  const HashPlan OffXor = planOf(Url, HashFamily::OffXor);
  ASSERT_EQ(Aes.Steps.size(), OffXor.Steps.size());
  for (size_t I = 0; I != Aes.Steps.size(); ++I)
    EXPECT_EQ(Aes.Steps[I].Offset, OffXor.Steps[I].Offset);
}

TEST(SynthesizerTest, PextIsBijectiveWhenBitsFit) {
  // Section 4.2: Pext builds a bijection for formats with <= 64 relevant
  // bits; a 16-digit integer fits exactly.
  const HashPlan Plan = planOf(R"([0-9]{16})", HashFamily::Pext);
  unsigned Bits = 0;
  for (const PlanStep &S : Plan.Steps)
    Bits += static_cast<unsigned>(std::popcount(S.Mask));
  EXPECT_EQ(Bits, 64u);
  EXPECT_EQ(Plan.FreeBits, 64u);
}

TEST(SynthesizerTest, PextShiftsDoNotOverlapWhenBitsFit) {
  const HashPlan Plan = planOf(R"([0-9]{16})", HashFamily::Pext);
  uint64_t Occupied = 0;
  for (const PlanStep &S : Plan.Steps) {
    const unsigned Width = static_cast<unsigned>(std::popcount(S.Mask));
    const uint64_t Range =
        (Width == 64 ? ~uint64_t{0} : ((uint64_t{1} << Width) - 1))
        << S.Shift;
    EXPECT_EQ(Occupied & Range, 0u) << "chunks must not overlap";
    Occupied |= Range;
  }
  EXPECT_EQ(Occupied, ~uint64_t{0});
}

TEST(SynthesizerTest, IntsPextWrapsShifts) {
  // 400 free bits cannot fit in 64; shifts wrap modulo 64 and the plan
  // still covers all 13 loads.
  const HashPlan Plan = planOf(R"([0-9]{100})", HashFamily::Pext);
  EXPECT_EQ(Plan.Steps.size(), 13u);
  EXPECT_EQ(Plan.FreeBits, 400u);
  for (const PlanStep &S : Plan.Steps)
    EXPECT_LT(S.Shift, 64);
}

TEST(SynthesizerTest, VariableLengthPlansUseSkipTable) {
  Expected<FormatSpec> Spec = parseRegex(R"(user-\d{10}(.){0,8})");
  ASSERT_TRUE(Spec);
  for (HashFamily Family : {HashFamily::OffXor, HashFamily::Pext,
                            HashFamily::Aes, HashFamily::Naive}) {
    Expected<HashPlan> Plan = synthesize(Spec->abstract(), Family);
    ASSERT_TRUE(Plan);
    EXPECT_FALSE(Plan->FixedLength);
    EXPECT_TRUE(Plan->usesSkipTable());
    EXPECT_EQ(Plan->Skip.Masks.size(), Plan->Skip.loadCount());
  }
}

TEST(SynthesizerTest, VariableNaiveWalksThePrefixDensely) {
  Expected<FormatSpec> Spec = parseRegex(R"(constant\d{8}(.){0,8})");
  ASSERT_TRUE(Spec);
  Expected<HashPlan> Naive = synthesize(Spec->abstract(), HashFamily::Naive);
  Expected<HashPlan> OffXor =
      synthesize(Spec->abstract(), HashFamily::OffXor);
  ASSERT_TRUE(Naive);
  ASSERT_TRUE(OffXor);
  EXPECT_EQ(Naive->Skip.loadCount(), 2u) << "16-byte prefix = 2 words";
  EXPECT_EQ(OffXor->Skip.loadCount(), 1u) << "constant word skipped";
}

TEST(SynthesizerTest, AllFamiliesSucceedOnEveryPaperFormat) {
  const std::vector<std::string> Regexes = {
      R"(\d{3}-\d{2}-\d{4})",
      R"(\d{3}\.\d{3}\.\d{3}-\d{2})",
      R"(([0-9a-fA-F]{2}-){5}[0-9a-fA-F]{2})",
      R"((([0-9]{3})\.){3}[0-9]{3})",
      R"(([0-9a-f]{4}:){7}[0-9a-f]{4})",
      R"([0-9]{100})",
      R"(https://example\.com/go/[a-z0-9]{20}\.html)",
      R"(https://www\.example\.com/en/articles/[a-z0-9]{20}\.html)",
  };
  for (const std::string &Regex : Regexes) {
    Expected<std::array<HashPlan, 4>> Plans =
        synthesizeAllFamilies(patternOf(Regex));
    ASSERT_TRUE(Plans) << Regex;
    for (const HashPlan &Plan : *Plans) {
      EXPECT_FALSE(Plan.FallbackToStl) << Regex;
      EXPECT_FALSE(Plan.Steps.empty()) << Regex;
    }
  }
}

TEST(SynthesizerTest, PlanDumpMentionsFamilyAndLoads) {
  const HashPlan Plan = planOf(R"(\d{3}-\d{2}-\d{4})", HashFamily::Pext);
  const std::string Dump = Plan.str();
  EXPECT_NE(Dump.find("Pext"), std::string::npos);
  EXPECT_NE(Dump.find("load +0"), std::string::npos);
  EXPECT_NE(Dump.find("load +3"), std::string::npos);
}

TEST(SynthesizerTest, CodeSizeGrowsWithKeyLength) {
  const HashPlan Small = planOf(R"([0-9]{16})", HashFamily::Pext);
  const HashPlan Large = planOf(R"([0-9]{100})", HashFamily::Pext);
  EXPECT_LT(Small.codeSizeEstimate(), Large.codeSizeEstimate());
}

} // namespace
