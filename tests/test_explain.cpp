//===- tests/test_explain.cpp - Plan introspection ------------------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
//
// explainPlan across its three output forms, over the full paper
// family x format matrix, including plans that round-tripped through
// the sepe-plan text serialization (so --explain on --plan-in files is
// covered structurally). The DOT form is validated structurally —
// one digraph, balanced braces, quoted labels — because the graphviz
// binary is not a test dependency.
//
//===----------------------------------------------------------------------===//

#include "core/explain.h"

#include "core/jit.h"
#include "core/plan_io.h"
#include "core/regex_parser.h"
#include "core/synthesizer.h"
#include "keygen/paper_formats.h"
#include "support/json.h"

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

using namespace sepe;

namespace {

HashPlan ssnPlan(HashFamily Family) {
  Expected<FormatSpec> Spec = parseRegex(R"(\d{3}-\d{2}-\d{4})");
  EXPECT_TRUE(Spec);
  Expected<HashPlan> Plan = synthesize(Spec->abstract(), Family);
  EXPECT_TRUE(Plan);
  return Plan.take();
}

const std::vector<HashFamily> AllFamilies = {
    HashFamily::Naive, HashFamily::OffXor, HashFamily::Aes,
    HashFamily::Pext};

TEST(ExplainTextTest, CarriesFamilyStepsAndCost) {
  const HashPlan Plan = ssnPlan(HashFamily::Pext);
  const std::string Text = explainPlan(Plan);
  EXPECT_NE(Text.find("plan Pext"), std::string::npos);
  EXPECT_NE(Text.find("len=[11,11]"), std::string::npos);
  EXPECT_NE(Text.find("step 0: load 8B @ [0,8)"), std::string::npos);
  EXPECT_NE(Text.find("pext 0x"), std::string::npos);
  EXPECT_NE(Text.find("ops"), std::string::npos);
  EXPECT_NE(Text.find("est. generated code"), std::string::npos);
  EXPECT_EQ(Text.back(), '\n');
}

TEST(ExplainTextTest, EveryFamilyMentionsItsCombine) {
  for (HashFamily Family : AllFamilies) {
    const std::string Text = explainPlan(ssnPlan(Family));
    EXPECT_NE(Text.find(familyName(Family)), std::string::npos);
    EXPECT_NE(Text.find("combine:"), std::string::npos);
  }
  EXPECT_NE(explainPlan(ssnPlan(HashFamily::Aes)).find("aesenc"),
            std::string::npos);
}

TEST(ExplainJsonTest, ParsesAndCarriesTheStepArray) {
  const HashPlan Plan = ssnPlan(HashFamily::OffXor);
  const std::string Text = explainPlan(Plan, ExplainFormat::Json);
  Expected<json::Value> Doc = json::parse(Text);
  ASSERT_TRUE(Doc) << Doc.error().Message;
  EXPECT_EQ(Doc->stringOr("family", ""), "OffXor");
  EXPECT_EQ(Doc->numberOr("min_len", -1), 11.0);
  EXPECT_EQ(Doc->numberOr("max_len", -1), 11.0);
  const json::Value *Steps = Doc->find("steps");
  ASSERT_NE(Steps, nullptr);
  ASSERT_TRUE(Steps->isArray());
  ASSERT_EQ(Steps->array().size(), Plan.Steps.size());
  for (const json::Value &Step : Steps->array()) {
    EXPECT_TRUE(Step.find("offset") != nullptr);
    EXPECT_TRUE(Step.find("mask") != nullptr);
    EXPECT_GE(Step.numberOr("cost_ops", 0), 2.0);
  }
  const json::Value *Bijective = Doc->find("bijective");
  ASSERT_NE(Bijective, nullptr);
  EXPECT_TRUE(Bijective->isBool());
}

/// Structural DOT validation: one digraph, balanced braces, an even
/// number of label quotes, edges present.
void expectValidDot(const std::string &Dot) {
  EXPECT_EQ(Dot.rfind("digraph", 0), 0u) << "must start with digraph";
  int Depth = 0;
  size_t Quotes = 0;
  bool InQuote = false;
  for (size_t I = 0; I != Dot.size(); ++I) {
    const char C = Dot[I];
    if (C == '"' && (I == 0 || Dot[I - 1] != '\\')) {
      ++Quotes;
      InQuote = !InQuote;
      continue;
    }
    if (InQuote)
      continue;
    if (C == '{')
      ++Depth;
    if (C == '}') {
      --Depth;
      EXPECT_GE(Depth, 0) << "unbalanced closing brace at " << I;
    }
  }
  EXPECT_EQ(Depth, 0) << "unbalanced braces";
  EXPECT_EQ(Quotes % 2, 0u) << "unbalanced quotes";
  EXPECT_FALSE(InQuote);
  EXPECT_NE(Dot.find("->"), std::string::npos) << "no edges";
}

TEST(ExplainDotTest, SinglePlanIsAValidDigraph) {
  for (HashFamily Family : AllFamilies) {
    const std::string Dot =
        explainPlan(ssnPlan(Family), ExplainFormat::Dot);
    expectValidDot(Dot);
    EXPECT_NE(Dot.find("cluster_0"), std::string::npos);
  }
}

TEST(ExplainDotTest, MultiPlanGraphClustersEveryFamily) {
  std::vector<std::pair<std::string, HashPlan>> Plans;
  for (HashFamily Family : AllFamilies)
    Plans.emplace_back(familyName(Family), ssnPlan(Family));
  const std::string Dot = explainPlansDot(Plans);
  expectValidDot(Dot);
  for (size_t I = 0; I != Plans.size(); ++I)
    EXPECT_NE(Dot.find("cluster_" + std::to_string(I)),
              std::string::npos);
  EXPECT_NE(Dot.find("Pext"), std::string::npos);
}

TEST(ExplainDotTest, VariableLengthPlanRendersSkipTable) {
  const FormatSpec &Format = paperKeyFormat(PaperKey::URL1);
  Expected<HashPlan> Plan =
      synthesize(Format.abstract(), HashFamily::Pext);
  ASSERT_TRUE(Plan);
  if (!Plan->usesSkipTable())
    GTEST_SKIP() << "URL1 synthesized fixed-length";
  const std::string Dot = explainPlan(*Plan, ExplainFormat::Dot);
  expectValidDot(Dot);
  EXPECT_NE(Dot.find("tail"), std::string::npos);
  const std::string Text = explainPlan(*Plan);
  EXPECT_NE(Text.find("skip table"), std::string::npos);
}

// The satellite tie-in: a plan parsed back from its serialized text
// must explain identically to the original, in every format, across
// the whole paper matrix — that is what makes `--explain` on
// `--plan-in` files trustworthy.
TEST(ExplainRoundTripTest, ParsedPlansExplainIdentically) {
  for (PaperKey Key : AllPaperKeys) {
    const FormatSpec &Format = paperKeyFormat(Key);
    for (HashFamily Family : AllFamilies) {
      Expected<HashPlan> Plan = synthesize(Format.abstract(), Family);
      ASSERT_TRUE(Plan) << paperKeyName(Key);
      Expected<HashPlan> Parsed = deserializePlan(serializePlan(*Plan));
      ASSERT_TRUE(Parsed)
          << paperKeyName(Key) << "/" << familyName(Family) << ": "
          << Parsed.error().Message;
      for (ExplainFormat F : {ExplainFormat::Text, ExplainFormat::Json,
                              ExplainFormat::Dot})
        EXPECT_EQ(explainPlan(*Plan, F), explainPlan(*Parsed, F))
            << paperKeyName(Key) << "/" << familyName(Family);
    }
  }
}

TEST(ExplainFormatTest, ParsesTheCliSpellings) {
  ExplainFormat F = ExplainFormat::Text;
  EXPECT_TRUE(parseExplainFormat("", F));
  EXPECT_EQ(F, ExplainFormat::Text);
  EXPECT_TRUE(parseExplainFormat("json", F));
  EXPECT_EQ(F, ExplainFormat::Json);
  EXPECT_TRUE(parseExplainFormat("dot", F));
  EXPECT_EQ(F, ExplainFormat::Dot);
  EXPECT_TRUE(parseExplainFormat("text", F));
  EXPECT_EQ(F, ExplainFormat::Text);
  F = ExplainFormat::Json;
  EXPECT_FALSE(parseExplainFormat("svg", F));
  EXPECT_EQ(F, ExplainFormat::Json) << "failed parse must not clobber";
}

TEST(ExplainJitTest, AnnotatedDumpMarksTheEntries) {
  const HashPlan Plan = ssnPlan(HashFamily::Pext);
  if (!jitAvailable() || !jitSupportsPlan(Plan))
    GTEST_SKIP() << "JIT not available on this host/build";
  std::shared_ptr<const JitProgram> Program = compileJitProgram(Plan);
  ASSERT_NE(Program, nullptr);
  const std::string Dump = explainJitProgram(*Program);
  EXPECT_NE(Dump.find("jit program:"), std::string::npos);
  EXPECT_NE(Dump.find("eval @ +0x"), std::string::npos);
  EXPECT_NE(Dump.find("batch @ +0x"), std::string::npos);
  EXPECT_NE(Dump.find("<eval entry>"), std::string::npos);
  EXPECT_NE(Dump.find("<batch entry>"), std::string::npos);
  // Every code byte appears: count hex byte columns.
  size_t HexBytes = 0;
  for (size_t I = 0; I + 2 < Dump.size(); ++I)
    if (Dump[I] == ' ' &&
        std::isxdigit(static_cast<unsigned char>(Dump[I + 1])) &&
        std::isxdigit(static_cast<unsigned char>(Dump[I + 2])) &&
        (I + 3 == Dump.size() || Dump[I + 3] == ' ' ||
         Dump[I + 3] == '\n'))
      ++HexBytes;
  EXPECT_GE(HexBytes, Program->codeBytes());
}

} // namespace
