//===- tests/test_keygen.cpp - Key formats and distributions --------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "keygen/distributions.h"

#include "core/regex_parser.h"
#include "keygen/paper_formats.h"

#include <gtest/gtest.h>

#include <unordered_set>

using namespace sepe;

namespace {

TEST(PaperFormatsTest, AllRegexesParse) {
  for (PaperKey Key : AllPaperKeys) {
    const FormatSpec &Spec = paperKeyFormat(Key);
    EXPECT_FALSE(Spec.empty()) << paperKeyName(Key);
    EXPECT_TRUE(Spec.isFixedLength()) << paperKeyName(Key);
  }
}

TEST(PaperFormatsTest, LengthsMatchThePaper) {
  EXPECT_EQ(paperKeyFormat(PaperKey::SSN).maxLength(), 11u);
  EXPECT_EQ(paperKeyFormat(PaperKey::CPF).maxLength(), 14u);
  EXPECT_EQ(paperKeyFormat(PaperKey::MAC).maxLength(), 17u);
  EXPECT_EQ(paperKeyFormat(PaperKey::IPv4).maxLength(), 15u);
  EXPECT_EQ(paperKeyFormat(PaperKey::IPv6).maxLength(), 39u);
  EXPECT_EQ(paperKeyFormat(PaperKey::INTS).maxLength(), 100u);
  // URL1: 23 constant chars + 20 slug + ".html".
  EXPECT_EQ(paperKeyFormat(PaperKey::URL1).maxLength(), 48u);
  // URL2: 36 constant chars + 20 slug + ".html".
  EXPECT_EQ(paperKeyFormat(PaperKey::URL2).maxLength(), 61u);
}

TEST(PaperFormatsTest, Url1PrefixIs23Constants) {
  const FormatSpec &Spec = paperKeyFormat(PaperKey::URL1);
  for (size_t I = 0; I != 23; ++I)
    EXPECT_TRUE(Spec.classAt(I).isSingleton()) << I;
  EXPECT_FALSE(Spec.classAt(23).isSingleton());
}

TEST(PaperFormatsTest, Url2PrefixIs36Constants) {
  const FormatSpec &Spec = paperKeyFormat(PaperKey::URL2);
  for (size_t I = 0; I != 36; ++I)
    EXPECT_TRUE(Spec.classAt(I).isSingleton()) << I;
  EXPECT_FALSE(Spec.classAt(36).isSingleton());
}

TEST(KeyGeneratorTest, GeneratedKeysMatchTheirFormat) {
  for (PaperKey Key : AllPaperKeys)
    for (KeyDistribution Dist : AllKeyDistributions) {
      KeyGenerator Gen(paperKeyFormat(Key), Dist, 17);
      for (int I = 0; I != 20; ++I) {
        const std::string Text = Gen.next();
        EXPECT_TRUE(paperKeyFormat(Key).matches(Text))
            << paperKeyName(Key) << "/" << distributionName(Dist) << ": "
            << Text;
      }
    }
}

TEST(KeyGeneratorTest, IncrementalIsAscendingAscii) {
  // RQ3: '000-00-0000', '000-00-0001', ... in ascending order.
  KeyGenerator Gen(paperKeyFormat(PaperKey::SSN),
                   KeyDistribution::Incremental, 0);
  EXPECT_EQ(Gen.next(), "000-00-0000");
  EXPECT_EQ(Gen.next(), "000-00-0001");
  EXPECT_EQ(Gen.next(), "000-00-0002");
  std::string Prev = "000-00-0002";
  for (int I = 0; I != 500; ++I) {
    const std::string Next = Gen.next();
    EXPECT_LT(Prev, Next);
    Prev = Next;
  }
}

TEST(KeyGeneratorTest, ValueKeyRoundTrip) {
  KeyGenerator Gen(paperKeyFormat(PaperKey::MAC), KeyDistribution::Uniform,
                   3);
  for (uint64_t V : {0ULL, 1ULL, 255ULL, 123456789ULL}) {
    const std::string Key = Gen.keyForValue(V);
    EXPECT_EQ(static_cast<uint64_t>(Gen.valueForKey(Key)), V);
  }
}

TEST(KeyGeneratorTest, SpaceSizeIsRadixProduct) {
  // SSN: nine digit positions => 10^9 keys.
  KeyGenerator Gen(paperKeyFormat(PaperKey::SSN),
                   KeyDistribution::Incremental, 0);
  EXPECT_EQ(static_cast<uint64_t>(Gen.spaceSize()), 1000000000ULL);
}

TEST(KeyGeneratorTest, DistinctProducesUniqueConformingKeys) {
  for (KeyDistribution Dist : AllKeyDistributions) {
    KeyGenerator Gen(paperKeyFormat(PaperKey::IPv4), Dist, 23);
    const std::vector<std::string> Keys = Gen.distinct(2000);
    EXPECT_EQ(Keys.size(), 2000u);
    std::unordered_set<std::string> Unique(Keys.begin(), Keys.end());
    EXPECT_EQ(Unique.size(), Keys.size()) << distributionName(Dist);
    for (const std::string &Key : Keys)
      EXPECT_TRUE(paperKeyFormat(PaperKey::IPv4).matches(Key));
  }
}

TEST(KeyGeneratorTest, DistinctWorksWhenSpreadEqualsSpace) {
  // 4-digit keys (RQ7's worst case): 10,000 keys total. Every
  // distribution must deliver the full space without stalling.
  Expected<FormatSpec> Spec = parseRegex(R"(\d{4})");
  ASSERT_TRUE(Spec);
  for (KeyDistribution Dist : AllKeyDistributions) {
    KeyGenerator Gen(*Spec, Dist, 29);
    const std::vector<std::string> Keys = Gen.distinct(10000);
    std::unordered_set<std::string> Unique(Keys.begin(), Keys.end());
    EXPECT_EQ(Unique.size(), 10000u) << distributionName(Dist);
  }
}

TEST(KeyGeneratorTest, DeterministicForFixedSeed) {
  KeyGenerator A(paperKeyFormat(PaperKey::IPv6), KeyDistribution::Uniform,
                 99);
  KeyGenerator B(paperKeyFormat(PaperKey::IPv6), KeyDistribution::Uniform,
                 99);
  for (int I = 0; I != 10; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(KeyGeneratorTest, NormalConcentratesAroundTheMean) {
  // Values drawn from the bell curve must cluster: the middle half of
  // the capped space should hold the vast majority of draws.
  KeyGenerator Gen(paperKeyFormat(PaperKey::SSN), KeyDistribution::Normal,
                   41);
  const uint64_t Space = static_cast<uint64_t>(Gen.spaceSize());
  size_t Middle = 0;
  const int Draws = 2000;
  for (int I = 0; I != Draws; ++I) {
    const uint64_t V = static_cast<uint64_t>(
        Gen.valueForKey(Gen.next()));
    if (V > Space / 4 && V < 3 * (Space / 4))
      ++Middle;
  }
  EXPECT_GT(Middle, Draws * 9 / 10);
}

TEST(KeyGeneratorTest, UniformSpreadsAcrossTheSpace) {
  KeyGenerator Gen(paperKeyFormat(PaperKey::SSN), KeyDistribution::Uniform,
                   43);
  const uint64_t Space = static_cast<uint64_t>(Gen.spaceSize());
  size_t Low = 0;
  const int Draws = 2000;
  for (int I = 0; I != Draws; ++I) {
    if (static_cast<uint64_t>(Gen.valueForKey(Gen.next())) < Space / 2)
      ++Low;
  }
  EXPECT_GT(Low, Draws / 3);
  EXPECT_LT(Low, Draws * 2 / 3);
}

TEST(KeyGeneratorTest, IntsHugeSpaceStillWorks) {
  KeyGenerator Gen(paperKeyFormat(PaperKey::INTS), KeyDistribution::Uniform,
                   47);
  const std::vector<std::string> Keys = Gen.distinct(100);
  for (const std::string &Key : Keys)
    EXPECT_EQ(Key.size(), 100u);
}

} // namespace
