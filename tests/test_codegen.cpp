//===- tests/test_codegen.cpp - C++ source emission -----------------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "core/codegen.h"

#include "core/regex_parser.h"
#include "core/synthesizer.h"

#include <gtest/gtest.h>

using namespace sepe;

namespace {

HashPlan planOf(const std::string &Regex, HashFamily Family,
                const SynthesisOptions &Options = {}) {
  Expected<FormatSpec> Spec = parseRegex(Regex);
  EXPECT_TRUE(Spec) << Regex;
  Expected<HashPlan> Plan = synthesize(Spec->abstract(), Family, Options);
  EXPECT_TRUE(Plan);
  return Plan.take();
}

TEST(CodegenTest, PreambleHasGuardAndHelpers) {
  for (Target Isa : {Target::X86, Target::AArch64, Target::Portable}) {
    const std::string Preamble = emitPreamble(Isa);
    EXPECT_NE(Preamble.find("SEPE_GENERATED_PREAMBLE"), std::string::npos);
    EXPECT_NE(Preamble.find("sepe_load_u64"), std::string::npos);
    EXPECT_NE(Preamble.find("sepe_aesenc"), std::string::npos);
  }
}

TEST(CodegenTest, X86PreambleUsesIntrinsics) {
  const std::string Preamble = emitPreamble(Target::X86);
  EXPECT_NE(Preamble.find("immintrin.h"), std::string::npos);
  EXPECT_NE(Preamble.find("_mm_aesenc_si128"), std::string::npos);
}

TEST(CodegenTest, AArch64PreambleUsesNeon) {
  const std::string Preamble = emitPreamble(Target::AArch64);
  EXPECT_NE(Preamble.find("arm_neon.h"), std::string::npos);
  EXPECT_NE(Preamble.find("vaeseq_u8"), std::string::npos);
  EXPECT_NE(Preamble.find("vaesmcq_u8"), std::string::npos);
}

TEST(CodegenTest, PortablePreambleEmbedsSBox) {
  const std::string Preamble = emitPreamble(Target::Portable);
  EXPECT_NE(Preamble.find("SepeAesSBox[256]"), std::string::npos);
  EXPECT_NE(Preamble.find("0x63"), std::string::npos)
      << "S-box must start with 0x63";
}

TEST(CodegenTest, OffXorBodyIsStraightLineXors) {
  const HashPlan Plan = planOf(R"(\d{3}-\d{2}-\d{4})", HashFamily::OffXor);
  const std::string Code = emitHashFunction(Plan);
  EXPECT_NE(Code.find("struct SepeOffXorHash"), std::string::npos);
  EXPECT_NE(Code.find("Hash ^= sepe_load_u64(Ptr + 0);"), std::string::npos);
  EXPECT_NE(Code.find("Hash ^= sepe_load_u64(Ptr + 3);"), std::string::npos);
  EXPECT_EQ(Code.find("for ("), std::string::npos)
      << "fixed-length code must be fully unrolled";
}

TEST(CodegenTest, PextBodyUsesPextInstructionOnX86) {
  const HashPlan Plan = planOf(R"(\d{3}-\d{2}-\d{4})", HashFamily::Pext);
  CodegenOptions Options;
  Options.Isa = Target::X86;
  const std::string Code = emitHashFunction(Plan, Options);
  EXPECT_NE(Code.find("_pext_u64(sepe_load_u64(Ptr + 0), "
                      "0x0f000f0f000f0f0fULL)"),
            std::string::npos)
      << Code;
  EXPECT_NE(Code.find(", 52)"), std::string::npos)
      << "Figure 12's Step-3 placement (emitted as a rotation)";
}

TEST(CodegenTest, PextBodyFallsBackToSoftGatherOffX86) {
  const HashPlan Plan = planOf(R"(\d{3}-\d{2}-\d{4})", HashFamily::Pext);
  for (Target Isa : {Target::AArch64, Target::Portable}) {
    CodegenOptions Options;
    Options.Isa = Isa;
    const std::string Code = emitHashFunction(Plan, Options);
    EXPECT_NE(Code.find("sepe_pext_soft"), std::string::npos);
    EXPECT_EQ(Code.find("_pext_u64"), std::string::npos);
  }
}

TEST(CodegenTest, AesBodyPairsLoads) {
  const HashPlan Plan =
      planOf(R"(https://example\.com/go/[a-z0-9]{20}\.html)",
             HashFamily::Aes);
  const std::string Code = emitHashFunction(Plan);
  EXPECT_NE(Code.find("sepe_aes_init"), std::string::npos);
  EXPECT_NE(Code.find("sepe_aesenc"), std::string::npos);
  EXPECT_NE(Code.find("sepe_aes_fold"), std::string::npos);
  // Three loads: one paired chunk plus a replicated trailer.
  EXPECT_NE(Code.find("Last"), std::string::npos);
}

TEST(CodegenTest, FallbackDelegatesToStdHash) {
  const HashPlan Plan = planOf(R"(\d{4})", HashFamily::OffXor);
  ASSERT_TRUE(Plan.FallbackToStl);
  const std::string Code = emitHashFunction(Plan);
  EXPECT_NE(Code.find("std::hash<std::string>"), std::string::npos);
}

TEST(CodegenTest, VariableBodyEmitsSkipTableAndTailLoop) {
  Expected<FormatSpec> Spec = parseRegex(R"(user-\d{10}(.){0,8})");
  ASSERT_TRUE(Spec);
  Expected<HashPlan> Plan =
      synthesize(Spec->abstract(), HashFamily::OffXor);
  ASSERT_TRUE(Plan);
  const std::string Code = emitHashFunction(*Plan);
  EXPECT_NE(Code.find("Skip[]"), std::string::npos);
  EXPECT_NE(Code.find("while (Ptr < End)"), std::string::npos);
}

TEST(CodegenTest, CustomNameAndCWrapper) {
  const HashPlan Plan = planOf(R"(\d{3}-\d{2}-\d{4})", HashFamily::Pext);
  CodegenOptions Options;
  Options.StructName = "MySsnHash";
  Options.EmitCWrapper = true;
  const std::string Code = emitHashFunction(Plan, Options);
  EXPECT_NE(Code.find("struct MySsnHash"), std::string::npos);
  EXPECT_NE(Code.find("extern \"C\" uint64_t MySsnHash_hash"),
            std::string::npos);
}

TEST(CodegenTest, TranslationUnitHasAllFamilies) {
  Expected<FormatSpec> Spec = parseRegex(R"(\d{3}-\d{2}-\d{4})");
  ASSERT_TRUE(Spec);
  Expected<std::array<HashPlan, 4>> Plans =
      synthesizeAllFamilies(Spec->abstract());
  ASSERT_TRUE(Plans);
  const std::string Code = emitTranslationUnit(
      std::vector<HashPlan>(Plans->begin(), Plans->end()));
  for (const char *Name : {"SepeNaiveHash", "SepeOffXorHash", "SepeAesHash",
                           "SepePextHash"})
    EXPECT_NE(Code.find(Name), std::string::npos) << Name;
}

TEST(CodegenTest, DocCommentStatesFormat) {
  const HashPlan Plan = planOf(R"(\d{3}-\d{2}-\d{4})", HashFamily::Pext);
  const std::string Code = emitHashFunction(Plan);
  EXPECT_NE(Code.find("keys of length 11"), std::string::npos);
  EXPECT_NE(Code.find("36 free bits"), std::string::npos);
}

} // namespace
