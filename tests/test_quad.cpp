//===- tests/test_quad.cpp - Quad semilattice laws ------------------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "core/quad.h"

#include <gtest/gtest.h>

#include <vector>

using namespace sepe;

namespace {

std::vector<Quad> allQuads() {
  std::vector<Quad> Quads;
  for (uint8_t Bits = 0; Bits != 4; ++Bits)
    Quads.push_back(Quad::pair(Bits));
  Quads.push_back(Quad::top());
  return Quads;
}

TEST(QuadTest, DefaultIsTop) {
  EXPECT_TRUE(Quad().isTop());
  EXPECT_TRUE(Quad::top().isTop());
}

TEST(QuadTest, PairRoundTripsBits) {
  for (uint8_t Bits = 0; Bits != 4; ++Bits) {
    const Quad Q = Quad::pair(Bits);
    EXPECT_FALSE(Q.isTop());
    EXPECT_EQ(Q.bits(), Bits);
  }
}

TEST(QuadTest, JoinOfEqualPairsIsIdentity) {
  for (uint8_t Bits = 0; Bits != 4; ++Bits)
    EXPECT_EQ(join(Quad::pair(Bits), Quad::pair(Bits)), Quad::pair(Bits));
}

TEST(QuadTest, JoinOfDistinctPairsIsTop) {
  for (uint8_t A = 0; A != 4; ++A)
    for (uint8_t B = 0; B != 4; ++B) {
      if (A == B)
        continue;
      EXPECT_TRUE(join(Quad::pair(A), Quad::pair(B)).isTop())
          << "join(" << int(A) << ", " << int(B) << ")";
    }
}

TEST(QuadTest, TopIsAbsorbing) {
  // Theorem 3.3 (ii): b v T = T for every b.
  for (const Quad &Q : allQuads()) {
    EXPECT_TRUE(join(Q, Quad::top()).isTop());
    EXPECT_TRUE(join(Quad::top(), Q).isTop());
  }
}

TEST(QuadTest, JoinIsCommutative) {
  for (const Quad &A : allQuads())
    for (const Quad &B : allQuads())
      EXPECT_EQ(join(A, B), join(B, A));
}

TEST(QuadTest, JoinIsAssociative) {
  for (const Quad &A : allQuads())
    for (const Quad &B : allQuads())
      for (const Quad &C : allQuads())
        EXPECT_EQ(join(join(A, B), C), join(A, join(B, C)));
}

TEST(QuadTest, JoinIsIdempotent) {
  for (const Quad &Q : allQuads())
    EXPECT_EQ(join(Q, Q), Q);
}

TEST(QuadTest, PartialOrderMatchesJoin) {
  // Theorem 3.3 (i): b <= T always; b <= b; distinct pairs incomparable.
  for (const Quad &Q : allQuads()) {
    EXPECT_TRUE(Q <= Quad::top());
    EXPECT_TRUE(Q <= Q);
  }
  for (uint8_t A = 0; A != 4; ++A)
    for (uint8_t B = 0; B != 4; ++B) {
      if (A == B)
        continue;
      EXPECT_FALSE(Quad::pair(A) <= Quad::pair(B));
    }
  EXPECT_FALSE(Quad::top() <= Quad::pair(0));
}

TEST(QuadTest, StrRendersPairsAndTop) {
  EXPECT_EQ(Quad::pair(0).str(), "00");
  EXPECT_EQ(Quad::pair(1).str(), "01");
  EXPECT_EQ(Quad::pair(2).str(), "10");
  EXPECT_EQ(Quad::pair(3).str(), "11");
  EXPECT_EQ(Quad::top().str(), "TT");
}

} // namespace
