//===- tests/test_aes_round.cpp - AES round correctness -------------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "hashes/aes_round.h"

#include <gtest/gtest.h>

#include <random>

using namespace sepe;

namespace {

TEST(AesRoundTest, SBoxMatchesKnownEntries) {
  // Spot-check the constexpr-generated S-box against the published
  // table.
  EXPECT_EQ(AesSBox[0x00], 0x63);
  EXPECT_EQ(AesSBox[0x01], 0x7c);
  EXPECT_EQ(AesSBox[0x02], 0x77);
  EXPECT_EQ(AesSBox[0x10], 0xca);
  EXPECT_EQ(AesSBox[0x53], 0xed);
  EXPECT_EQ(AesSBox[0xff], 0x16);
}

TEST(AesRoundTest, SBoxIsAPermutation) {
  std::array<bool, 256> Seen{};
  for (unsigned I = 0; I != 256; ++I) {
    EXPECT_FALSE(Seen[AesSBox[I]]) << "duplicate S-box value";
    Seen[AesSBox[I]] = true;
  }
}

TEST(AesRoundTest, ZeroKeyRoundIsDeterministic) {
  const Block128 State{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  const Block128 Key{0, 0};
  EXPECT_EQ(aesEncRoundSoft(State, Key), aesEncRoundSoft(State, Key));
}

TEST(AesRoundTest, RoundKeyIsXoredLast) {
  const Block128 State{42, 99};
  const Block128 KeyA{0x1111, 0x2222};
  const Block128 Zero{0, 0};
  const Block128 WithKey = aesEncRoundSoft(State, KeyA);
  const Block128 NoKey = aesEncRoundSoft(State, Zero);
  EXPECT_EQ(WithKey, NoKey ^ KeyA);
}

TEST(AesRoundTest, SoftwareMatchesHardware) {
  if (!hasHardwareAes())
    GTEST_SKIP() << "AES-NI not compiled in";
  std::mt19937_64 Rng(7);
  for (int I = 0; I != 200; ++I) {
    const Block128 State{Rng(), Rng()};
    const Block128 Key{Rng(), Rng()};
    EXPECT_EQ(aesEncRoundSoft(State, Key), aesEncRoundHw(State, Key))
        << "iteration " << I;
  }
}

TEST(AesRoundTest, KnownAesencVector) {
  // aesenc of the all-zero state with a zero key: SubBytes maps 0x00 to
  // 0x63 everywhere; ShiftRows is a no-op on a uniform state; MixColumns
  // of a uniform column is the same byte (2x ^ 3x ^ x ^ x = x since
  // 2 ^ 3 = 1 in GF(2)). Result: all bytes 0x63.
  const Block128 Zero{0, 0};
  const Block128 Result = aesEncRoundSoft(Zero, Zero);
  EXPECT_EQ(Result.Lo, 0x6363636363636363ULL);
  EXPECT_EQ(Result.Hi, 0x6363636363636363ULL);
}

TEST(AesRoundTest, SingleByteChangeDiffuses) {
  const Block128 A{1, 0};
  const Block128 B{2, 0};
  const Block128 Zero{0, 0};
  const Block128 Ra = aesEncRoundSoft(A, Zero);
  const Block128 Rb = aesEncRoundSoft(B, Zero);
  // One round diffuses one byte into a full column (4 bytes).
  const uint64_t DiffLo = Ra.Lo ^ Rb.Lo;
  const uint64_t DiffHi = Ra.Hi ^ Rb.Hi;
  int Bytes = 0;
  for (int I = 0; I != 8; ++I) {
    if ((DiffLo >> (8 * I)) & 0xFF)
      ++Bytes;
    if ((DiffHi >> (8 * I)) & 0xFF)
      ++Bytes;
  }
  EXPECT_GE(Bytes, 4) << "MixColumns spreads one byte across its column";
}

} // namespace
