//===- tests/test_regex_parser.cpp - Restricted regex dialect -------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "core/regex_parser.h"

#include <gtest/gtest.h>

using namespace sepe;

namespace {

FormatSpec parseOk(const std::string &Regex) {
  Expected<FormatSpec> Result = parseRegex(Regex);
  EXPECT_TRUE(Result) << Regex << ": "
                      << (Result ? "" : Result.error().Message);
  return Result ? Result.take() : FormatSpec();
}

std::string parseErr(const std::string &Regex) {
  Expected<FormatSpec> Result = parseRegex(Regex);
  EXPECT_FALSE(Result) << Regex << " unexpectedly parsed";
  return Result ? "" : Result.error().Message;
}

TEST(RegexParserTest, LiteralSequence) {
  const FormatSpec Spec = parseOk("abc");
  EXPECT_EQ(Spec.maxLength(), 3u);
  EXPECT_TRUE(Spec.isFixedLength());
  EXPECT_TRUE(Spec.matches("abc"));
  EXPECT_FALSE(Spec.matches("abd"));
}

TEST(RegexParserTest, EscapedDotIsLiteral) {
  const FormatSpec Spec = parseOk(R"(a\.b)");
  EXPECT_TRUE(Spec.matches("a.b"));
  EXPECT_FALSE(Spec.matches("axb"));
}

TEST(RegexParserTest, DotMatchesAnyByte) {
  const FormatSpec Spec = parseOk("a.c");
  EXPECT_TRUE(Spec.matches("abc"));
  EXPECT_TRUE(Spec.matches(std::string("a\0c", 3)));
}

TEST(RegexParserTest, DigitEscape) {
  const FormatSpec Spec = parseOk(R"(\d\d)");
  EXPECT_TRUE(Spec.matches("42"));
  EXPECT_FALSE(Spec.matches("4x"));
}

TEST(RegexParserTest, WordAndSpaceEscapes) {
  EXPECT_TRUE(parseOk(R"(\w)").matches("_"));
  EXPECT_TRUE(parseOk(R"(\w)").matches("Z"));
  EXPECT_FALSE(parseOk(R"(\w)").matches("-"));
  EXPECT_TRUE(parseOk(R"(\s)").matches(" "));
  EXPECT_TRUE(parseOk(R"(\s)").matches("\t"));
}

TEST(RegexParserTest, HexEscape) {
  const FormatSpec Spec = parseOk(R"(\x41\x7a)");
  EXPECT_TRUE(Spec.matches("Az"));
}

TEST(RegexParserTest, CharClassWithRanges) {
  const FormatSpec Spec = parseOk("[0-9a-fA-F]");
  for (char C : {'0', '9', 'a', 'f', 'A', 'F'})
    EXPECT_TRUE(Spec.matches(std::string(1, C))) << C;
  for (char C : {'g', 'G', '/', ':'})
    EXPECT_FALSE(Spec.matches(std::string(1, C))) << C;
}

TEST(RegexParserTest, ClassWithLiteralDash) {
  // Trailing '-' inside a class is a literal.
  const FormatSpec Spec = parseOk("[a-]");
  EXPECT_TRUE(Spec.matches("a"));
  EXPECT_TRUE(Spec.matches("-"));
  EXPECT_FALSE(Spec.matches("b"));
}

TEST(RegexParserTest, CountedRepetition) {
  const FormatSpec Spec = parseOk(R"(\d{3})");
  EXPECT_EQ(Spec.maxLength(), 3u);
  EXPECT_TRUE(Spec.matches("123"));
}

TEST(RegexParserTest, GroupRepetition) {
  const FormatSpec Spec = parseOk(R"((ab){3})");
  EXPECT_EQ(Spec.maxLength(), 6u);
  EXPECT_TRUE(Spec.matches("ababab"));
}

TEST(RegexParserTest, PaperIpv4Regex) {
  const FormatSpec Spec = parseOk(R"((([0-9]{3})\.){3}[0-9]{3})");
  EXPECT_EQ(Spec.maxLength(), 15u);
  EXPECT_TRUE(Spec.isFixedLength());
  EXPECT_TRUE(Spec.matches("192.168.001.255"));
  EXPECT_FALSE(Spec.matches("192.168.1.255"));
}

TEST(RegexParserTest, PaperSsnRegex) {
  const FormatSpec Spec = parseOk(R"(\d{3}-\d{2}-\d{4})");
  EXPECT_EQ(Spec.maxLength(), 11u);
  EXPECT_TRUE(Spec.matches("123-45-6789"));
  EXPECT_FALSE(Spec.matches("123-456-789"));
}

TEST(RegexParserTest, PaperMacRegex) {
  const FormatSpec Spec = parseOk(R"(([0-9a-fA-F]{2}-){5}[0-9a-fA-F]{2})");
  EXPECT_EQ(Spec.maxLength(), 17u);
  EXPECT_TRUE(Spec.matches("de-ad-BE-EF-00-42"));
}

TEST(RegexParserTest, BoundedRangeRepetitionInTail) {
  const FormatSpec Spec = parseOk("ab{1,3}");
  EXPECT_EQ(Spec.minLength(), 2u);
  EXPECT_EQ(Spec.maxLength(), 4u);
  EXPECT_TRUE(Spec.matches("ab"));
  EXPECT_TRUE(Spec.matches("abbb"));
  EXPECT_FALSE(Spec.matches("a"));
}

TEST(RegexParserTest, OptionalTail) {
  const FormatSpec Spec = parseOk("abc?");
  EXPECT_EQ(Spec.minLength(), 2u);
  EXPECT_EQ(Spec.maxLength(), 3u);
  EXPECT_TRUE(Spec.matches("ab"));
  EXPECT_TRUE(Spec.matches("abc"));
}

TEST(RegexParserTest, ZeroRepetitionDropsAtom) {
  const FormatSpec Spec = parseOk("a{0}bc");
  EXPECT_TRUE(Spec.matches("bc"));
  EXPECT_FALSE(Spec.matches("abc"));
}

TEST(RegexParserTest, RejectsUnboundedStar) {
  EXPECT_NE(parseErr("a*").find("unbounded"), std::string::npos);
  EXPECT_NE(parseErr("a+").find("unbounded"), std::string::npos);
  EXPECT_NE(parseErr("a{2,}").find("unbounded"), std::string::npos);
}

TEST(RegexParserTest, RejectsAlternation) {
  EXPECT_NE(parseErr("a|b").find("alternation"), std::string::npos);
}

TEST(RegexParserTest, RejectsVariableLengthInMiddle) {
  EXPECT_NE(parseErr("a?b").find("end of the pattern"), std::string::npos);
  EXPECT_NE(parseErr("a{1,2}b").find("end of the pattern"),
            std::string::npos);
}

TEST(RegexParserTest, RejectsMalformedInputs) {
  parseErr("");
  parseErr("(ab");
  parseErr("ab)");
  parseErr("[a-");
  parseErr("[]");
  parseErr("[^a]");
  parseErr("a{}");
  parseErr("a{2");
  parseErr("a{3,1}");
  parseErr("\\");
  parseErr(R"(\xZZ)");
  parseErr(R"(\D)");
}

TEST(RegexParserTest, ErrorCarriesPosition) {
  Expected<FormatSpec> Result = parseRegex("abc*");
  ASSERT_FALSE(Result);
  EXPECT_EQ(Result.error().Pos, 3u);
}

TEST(RegexParserTest, WidthLimitEnforced) {
  parseErr("a{2000000}");
  parseErr("(a{2000}){2000}");
}

} // namespace
