//===- tests/test_plan_io.cpp - Plan serialization -------------------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "core/plan_io.h"

#include "core/executor.h"
#include "core/regex_parser.h"
#include "core/synthesizer.h"
#include "keygen/distributions.h"
#include "keygen/paper_formats.h"

#include <gtest/gtest.h>

using namespace sepe;

namespace {

bool plansEqual(const HashPlan &A, const HashPlan &B) {
  return A.Family == B.Family && A.MinKeyLen == B.MinKeyLen &&
         A.MaxKeyLen == B.MaxKeyLen && A.FixedLength == B.FixedLength &&
         A.FallbackToStl == B.FallbackToStl &&
         A.PartialLoad == B.PartialLoad && A.Bijective == B.Bijective &&
         A.Steps == B.Steps && A.Skip.Skip == B.Skip.Skip &&
         A.Skip.Masks == B.Skip.Masks &&
         A.Skip.TailStart == B.Skip.TailStart &&
         A.FreeBits == B.FreeBits;
}

TEST(PlanIoTest, RoundTripsEveryPaperFormatAndFamily) {
  for (PaperKey Key : AllPaperKeys)
    for (HashFamily Family : {HashFamily::Naive, HashFamily::OffXor,
                              HashFamily::Aes, HashFamily::Pext}) {
      Expected<HashPlan> Plan =
          synthesize(paperKeyFormat(Key).abstract(), Family);
      ASSERT_TRUE(Plan);
      const std::string Text = serializePlan(*Plan);
      Expected<HashPlan> Round = deserializePlan(Text);
      ASSERT_TRUE(Round) << paperKeyName(Key) << "/" << familyName(Family)
                         << ": " << Round.error().Message;
      EXPECT_TRUE(plansEqual(*Plan, *Round))
          << paperKeyName(Key) << "/" << familyName(Family) << "\n"
          << Text;
    }
}

TEST(PlanIoTest, RoundTripsVariableLengthPlans) {
  Expected<FormatSpec> Spec = parseRegex(R"(user-\d{10}(.){0,8})");
  ASSERT_TRUE(Spec);
  for (HashFamily Family : {HashFamily::OffXor, HashFamily::Pext,
                            HashFamily::Aes}) {
    Expected<HashPlan> Plan = synthesize(Spec->abstract(), Family);
    ASSERT_TRUE(Plan);
    Expected<HashPlan> Round = deserializePlan(serializePlan(*Plan));
    ASSERT_TRUE(Round) << Round.error().Message;
    EXPECT_TRUE(plansEqual(*Plan, *Round)) << familyName(Family);
  }
}

TEST(PlanIoTest, RoundTripsFallbackAndPartialPlans) {
  Expected<FormatSpec> Spec = parseRegex(R"(\d{4})");
  ASSERT_TRUE(Spec);
  Expected<HashPlan> Fallback =
      synthesize(Spec->abstract(), HashFamily::OffXor);
  ASSERT_TRUE(Fallback);
  Expected<HashPlan> Round = deserializePlan(serializePlan(*Fallback));
  ASSERT_TRUE(Round);
  EXPECT_TRUE(Round->FallbackToStl);

  SynthesisOptions Force;
  Force.AllowShortKeys = true;
  Expected<HashPlan> Partial =
      synthesize(Spec->abstract(), HashFamily::Pext, Force);
  ASSERT_TRUE(Partial);
  Expected<HashPlan> Round2 = deserializePlan(serializePlan(*Partial));
  ASSERT_TRUE(Round2);
  EXPECT_TRUE(plansEqual(*Partial, *Round2));
}

TEST(PlanIoTest, DeserializedPlanHashesIdentically) {
  // The executor over a round-tripped plan is the same function.
  Expected<HashPlan> Plan = synthesize(
      paperKeyFormat(PaperKey::SSN).abstract(), HashFamily::Pext);
  ASSERT_TRUE(Plan);
  Expected<HashPlan> Round = deserializePlan(serializePlan(*Plan));
  ASSERT_TRUE(Round);
  const SynthesizedHash Original(Plan.take());
  const SynthesizedHash Restored(Round.take());
  KeyGenerator Gen(paperKeyFormat(PaperKey::SSN), KeyDistribution::Uniform,
                   808);
  for (int I = 0; I != 100; ++I) {
    const std::string Key = Gen.next();
    EXPECT_EQ(Original(Key), Restored(Key));
  }
}

TEST(PlanIoTest, SerializedTextIsHumanReadable) {
  Expected<HashPlan> Plan = synthesize(
      paperKeyFormat(PaperKey::SSN).abstract(), HashFamily::Pext);
  ASSERT_TRUE(Plan);
  const std::string Text = serializePlan(*Plan);
  EXPECT_NE(Text.find("sepe-plan v1"), std::string::npos);
  EXPECT_NE(Text.find("family Pext"), std::string::npos);
  EXPECT_NE(Text.find("len 11 11"), std::string::npos);
  EXPECT_NE(Text.find("bijective"), std::string::npos);
  EXPECT_NE(Text.find("step 0 0x0f000f0f000f0f0f 0"), std::string::npos)
      << Text;
}

TEST(PlanIoTest, CommentsAndBlankLinesIgnored) {
  Expected<HashPlan> Plan = synthesize(
      paperKeyFormat(PaperKey::SSN).abstract(), HashFamily::OffXor);
  ASSERT_TRUE(Plan);
  std::string Text = serializePlan(*Plan);
  Text.insert(Text.find('\n') + 1, "# a comment\n\n");
  Expected<HashPlan> Round = deserializePlan(Text);
  ASSERT_TRUE(Round);
  EXPECT_TRUE(plansEqual(*Plan, *Round));
}

TEST(PlanIoTest, RejectsMalformedInput) {
  const std::vector<std::string> Bad = {
      "",
      "not-a-plan\n",
      "sepe-plan v1\n",                                    // incomplete
      "sepe-plan v1\nfamily Bogus\nlen 8 8\n",             // bad family
      "sepe-plan v1\nfamily Pext\nlen 9 3\n",              // min > max
      "sepe-plan v1\nfamily Pext\nlen 8 8\nstep 0 zz 0\n", // bad mask
      "sepe-plan v1\nfamily Pext\nlen 8 8\nstep 0 0x1 99\n", // shift >= 64
      "sepe-plan v1\nfamily Pext\nlen 8 8\nflags wat\n",
      "sepe-plan v1\nfamily Pext\nlen 8 8\nwhatkey 1\n",
      "sepe-plan v1\nfamily Pext\nlen 8 8\n", // fixed without steps
  };
  for (const std::string &Text : Bad) {
    Expected<HashPlan> Result = deserializePlan(Text);
    EXPECT_FALSE(Result) << "accepted: " << Text;
  }
}

TEST(PlanIoTest, ErrorsCarryLineNumbers) {
  Expected<HashPlan> Result =
      deserializePlan("sepe-plan v1\nfamily Pext\nlen 8 8\nstep 0 zz 0\n");
  ASSERT_FALSE(Result);
  EXPECT_NE(Result.error().Message.find("line 4"), std::string::npos)
      << Result.error().Message;
}

} // namespace
