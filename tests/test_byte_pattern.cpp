//===- tests/test_byte_pattern.cpp - Byte-level quad abstraction ----------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "core/byte_pattern.h"

#include <gtest/gtest.h>

using namespace sepe;

namespace {

TEST(BytePatternTest, FromByteIsFullyConstant) {
  const BytePattern P = BytePattern::fromByte(0x42);
  EXPECT_TRUE(P.isConstant());
  EXPECT_EQ(P.constMask(), 0xFF);
  EXPECT_EQ(P.constValue(), 0x42);
  EXPECT_EQ(P.constBitCount(), 8u);
  EXPECT_TRUE(P.matches(0x42));
  EXPECT_FALSE(P.matches(0x43));
}

TEST(BytePatternTest, TopMatchesEverything) {
  const BytePattern P = BytePattern::top();
  EXPECT_TRUE(P.isTop());
  EXPECT_EQ(P.constBitCount(), 0u);
  for (unsigned Byte = 0; Byte != 256; ++Byte)
    EXPECT_TRUE(P.matches(static_cast<uint8_t>(Byte)));
}

TEST(BytePatternTest, JoinOfEqualBytesIsIdentity) {
  const BytePattern P = BytePattern::fromByte('7');
  EXPECT_EQ(join(P, P), P);
}

TEST(BytePatternTest, JoinTopsDifferingPairsOnly) {
  // '0' = 0011 0000, '1' = 0011 0001: they differ only in the lowest bit
  // pair, so the three upper pairs stay constant.
  const BytePattern P =
      join(BytePattern::fromByte('0'), BytePattern::fromByte('1'));
  EXPECT_EQ(P.constMask(), 0xFC);
  EXPECT_EQ(P.constValue(), 0x30);
  EXPECT_EQ(P.constBitCount(), 6u);
}

TEST(BytePatternTest, DigitsShareFourConstantBits) {
  // Section 3.1 rationale: the quad lattice finds four constant bits in
  // ASCII digits (the 0x3 high nibble).
  BytePattern Digits = BytePattern::fromByte('0');
  for (char C = '1'; C <= '9'; ++C)
    Digits = join(Digits, BytePattern::fromByte(static_cast<uint8_t>(C)));
  EXPECT_EQ(Digits.constMask(), 0xF0);
  EXPECT_EQ(Digits.constValue(), 0x30);
  EXPECT_EQ(Digits.constBitCount(), 4u);
  EXPECT_EQ(Digits.freeMask(), 0x0F);
}

TEST(BytePatternTest, UpperCaseLettersShareFourConstantBitsAtQuadZero) {
  // Example 3.5: 'J' v 'L' v 'G' keeps the 0100 prefix.
  BytePattern P = BytePattern::fromByte('J');
  P = join(P, BytePattern::fromByte('L'));
  P = join(P, BytePattern::fromByte('G'));
  EXPECT_EQ(P.quadAt(0), Quad::pair(0b01));
  EXPECT_FALSE(P.quadAt(0).isTop());
}

TEST(BytePatternTest, MixedCaseLettersKeepOnlyTwoConstantBits) {
  // Example 3.5: one lower-case letter reduces the invariant to the
  // first bit pair (01).
  BytePattern P = BytePattern::fromByte('J');
  P = join(P, BytePattern::fromByte('a'));
  EXPECT_EQ(P.quadAt(0), Quad::pair(0b01));
  EXPECT_EQ(P.constBitCount(), 2u);
}

TEST(BytePatternTest, QuadAtReadsMostSignificantFirst) {
  // 'J' = 0100 1010: quads are 01, 00, 10, 10.
  const BytePattern P = BytePattern::fromByte('J');
  EXPECT_EQ(P.quadAt(0), Quad::pair(0b01));
  EXPECT_EQ(P.quadAt(1), Quad::pair(0b00));
  EXPECT_EQ(P.quadAt(2), Quad::pair(0b10));
  EXPECT_EQ(P.quadAt(3), Quad::pair(0b10));
}

TEST(BytePatternTest, StrShowsQuads) {
  EXPECT_EQ(BytePattern::fromByte('J').str(), "01001010");
  EXPECT_EQ(BytePattern::top().str(), "TTTTTTTT");
}

TEST(BytePatternTest, JoinIsCommutativeOnRandomBytes) {
  for (unsigned A = 0; A < 256; A += 7)
    for (unsigned B = 0; B < 256; B += 11) {
      const BytePattern PA = BytePattern::fromByte(static_cast<uint8_t>(A));
      const BytePattern PB = BytePattern::fromByte(static_cast<uint8_t>(B));
      EXPECT_EQ(join(PA, PB), join(PB, PA));
    }
}

TEST(BytePatternTest, JoinResultMatchesBothOperandsBytes) {
  // Soundness: the join must admit every byte that either operand
  // admits.
  for (unsigned A = 0; A < 256; A += 5)
    for (unsigned B = 0; B < 256; B += 9) {
      const BytePattern J = join(BytePattern::fromByte(static_cast<uint8_t>(A)),
                                 BytePattern::fromByte(static_cast<uint8_t>(B)));
      EXPECT_TRUE(J.matches(static_cast<uint8_t>(A)));
      EXPECT_TRUE(J.matches(static_cast<uint8_t>(B)));
    }
}

TEST(BytePatternTest, FromMaskValueValidatesPairGranularity) {
  const BytePattern P = BytePattern::fromMaskValue(0xF0, 0x30);
  EXPECT_EQ(P.constMask(), 0xF0);
  EXPECT_TRUE(P.matches('5'));
  EXPECT_FALSE(P.matches('A'));
}

} // namespace
