//===- tests/test_adaptive.cpp - Adaptive runtime ------------------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The adaptive runtime's contracts: the sampler stays a bounded uniform
/// reservoir, the drift detector closes windows exactly once, guarded
/// dispatch is bit-identical to the specialized hash in-format and to
/// the fallback out-of-format (all eight paper formats, single and
/// batch), drift trips lead to a hot swap whose joined pattern still
/// admits every pre-drift key (join monotonicity), and concurrent
/// readers only ever observe values of a published generation.
///
//===----------------------------------------------------------------------===//

#include "runtime/adaptive_hash.h"

#include "core/inference.h"
#include "core/synthesizer.h"
#include "hashes/city.h"
#include "hashes/low_level_hash.h"
#include "keygen/distributions.h"
#include "keygen/paper_formats.h"
#include "runtime/drift_detector.h"
#include "runtime/key_sampler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>

using namespace sepe;

namespace {

std::vector<std::string> formatKeys(PaperKey Key, size_t N,
                                    uint64_t Seed = 42) {
  KeyGenerator Gen(paperKeyFormat(Key), KeyDistribution::Uniform, Seed);
  std::vector<std::string> Keys;
  Keys.reserve(N);
  for (size_t I = 0; I != N; ++I)
    Keys.push_back(Gen.next());
  return Keys;
}

/// Applies the library's drift probe: one byte the pattern's guard is
/// guaranteed to reject (findDriftProbe handles the pair-granular quad
/// lattice, where e.g. the hex positions of MAC/IPv6 abstract to top
/// and admit anything).
std::vector<std::string> drifted(std::vector<std::string> Keys,
                                 const KeyPattern &P) {
  const DriftProbe Probe = findDriftProbe(P);
  EXPECT_TRUE(Probe.Valid) << "pattern admits every probe byte";
  for (std::string &Key : Keys)
    Key[Probe.Pos] = Probe.Byte;
  return Keys;
}

std::vector<std::string_view> views(const std::vector<std::string> &Keys) {
  return {Keys.begin(), Keys.end()};
}

// --- KeySampler --------------------------------------------------------

TEST(KeySamplerTest, FillsToCapacityThenStaysBounded) {
  KeySampler Sampler(8);
  for (int I = 0; I != 100; ++I)
    Sampler.offer("key-" + std::to_string(I));
  EXPECT_EQ(Sampler.size(), 8u);
  EXPECT_EQ(Sampler.offered(), 100u);
  for (const std::string &Key : Sampler.snapshot())
    EXPECT_EQ(Key.substr(0, 4), "key-");
}

TEST(KeySamplerTest, DeterministicForSeed) {
  KeySampler A(4, 99), B(4, 99);
  for (int I = 0; I != 50; ++I) {
    A.offer(std::to_string(I));
    B.offer(std::to_string(I));
  }
  EXPECT_EQ(A.snapshot(), B.snapshot());
}

TEST(KeySamplerTest, DrainResetsCountAndReservoir) {
  KeySampler Sampler(4);
  for (int I = 0; I != 10; ++I)
    Sampler.offer("k");
  const std::vector<std::string> Drained = Sampler.drain();
  EXPECT_EQ(Drained.size(), 4u);
  EXPECT_EQ(Sampler.size(), 0u);
  EXPECT_EQ(Sampler.offered(), 0u);
  Sampler.offer("fresh");
  EXPECT_EQ(Sampler.snapshot(), std::vector<std::string>{"fresh"});
}

TEST(KeySamplerTest, ReservoirIsRoughlyUniform) {
  // Offer 0..999 into a 100-slot reservoir many times; every decile of
  // the stream should land some keys (Algorithm R keeps early and late
  // offers alike).
  KeySampler Sampler(100, 7);
  for (int I = 0; I != 1000; ++I)
    Sampler.offer(std::to_string(I));
  std::set<int> Deciles;
  for (const std::string &Key : Sampler.snapshot())
    Deciles.insert(std::stoi(Key) / 100);
  EXPECT_GE(Deciles.size(), 8u);
}

// --- DriftDetector -----------------------------------------------------

TEST(DriftDetectorTest, WindowOpenUntilFull) {
  DriftDetector D(100, 0.1);
  for (int I = 0; I != 9; ++I)
    EXPECT_EQ(D.observe(10, 0), DriftDetector::Window::Open);
  EXPECT_EQ(D.observe(10, 0), DriftDetector::Window::Closed);
  EXPECT_EQ(D.windowsClosed(), 1u);
  EXPECT_DOUBLE_EQ(D.lastRatio(), 0.0);
}

TEST(DriftDetectorTest, TripsPastThreshold) {
  DriftDetector D(100, 0.1);
  EXPECT_EQ(D.observe(99, 20), DriftDetector::Window::Open);
  EXPECT_EQ(D.observe(1, 1), DriftDetector::Window::Tripped);
  EXPECT_NEAR(D.lastRatio(), 0.21, 1e-9);
  EXPECT_EQ(D.observedTotal(), 100u);
  EXPECT_EQ(D.mismatchedTotal(), 21u);
}

TEST(DriftDetectorTest, ExactThresholdDoesNotTrip) {
  DriftDetector D(100, 0.1);
  EXPECT_EQ(D.observe(100, 10), DriftDetector::Window::Closed);
}

TEST(DriftDetectorTest, ResetClearsLiveWindowNotTotals) {
  DriftDetector D(100, 0.1);
  D.observe(50, 50);
  D.reset();
  // The 50 pre-reset misses are gone from the live window: a clean
  // window of 100 now closes with ratio 0.
  EXPECT_EQ(D.observe(100, 0), DriftDetector::Window::Closed);
  EXPECT_DOUBLE_EQ(D.lastRatio(), 0.0);
  EXPECT_EQ(D.observedTotal(), 150u);
  EXPECT_EQ(D.mismatchedTotal(), 50u);
}

TEST(DriftDetectorTest, ConcurrentObserversLoseNothing) {
  DriftDetector D(1000, 0.5);
  constexpr int ThreadCount = 4, PerThread = 50000;
  std::atomic<uint64_t> Trips{0}, Closes{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T != ThreadCount; ++T)
    Threads.emplace_back([&] {
      for (int I = 0; I != PerThread; ++I)
        switch (D.observe(10, I % 2 ? 10 : 0)) {
        case DriftDetector::Window::Tripped:
          Trips.fetch_add(1);
          break;
        case DriftDetector::Window::Closed:
          Closes.fetch_add(1);
          break;
        case DriftDetector::Window::Open:
          break;
        }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(D.observedTotal(), uint64_t{ThreadCount} * PerThread * 10);
  EXPECT_EQ(D.mismatchedTotal(), uint64_t{ThreadCount} * PerThread * 5);
  // Every closed window was closed by exactly one thread.
  EXPECT_EQ(Trips + Closes, D.windowsClosed());
  // Windows can overshoot their nominal size under contention (adds
  // landing between the crossing and the close), so only require the
  // order of magnitude.
  EXPECT_GE(D.windowsClosed(), uint64_t{ThreadCount} * PerThread * 10 / 2000);
}

// --- Guarded dispatch equivalence (per paper format) -------------------

class AdaptiveFormatTest : public ::testing::TestWithParam<PaperKey> {};

TEST_P(AdaptiveFormatTest, GuardedDispatchMatchesSpecializedAndFallback) {
  AdaptiveOptions Options;
  Options.Background = false;
  AdaptiveHash Adaptive(paperKeyFormat(GetParam()).abstract(), Options);
  const SynthesizedHash Specialized = Adaptive.specialized();
  ASSERT_TRUE(Specialized.valid());

  const std::vector<std::string> InFormat = formatKeys(GetParam(), 300);
  const std::vector<std::string> OutOfFormat =
      drifted(InFormat, Adaptive.pattern());
  for (size_t I = 0; I != InFormat.size(); ++I) {
    EXPECT_EQ(Adaptive(InFormat[I]), Specialized(InFormat[I]));
    EXPECT_EQ(Adaptive(OutOfFormat[I]),
              lowLevelHash(OutOfFormat[I].data(), OutOfFormat[I].size(), 0));
  }
  EXPECT_EQ(Adaptive.guardPasses(), InFormat.size());
  EXPECT_EQ(Adaptive.guardMisses(), OutOfFormat.size());
}

TEST_P(AdaptiveFormatTest, BatchAgreesWithSingleKeyOnMixedStream) {
  AdaptiveOptions Options;
  Options.Background = false;
  AdaptiveHash Adaptive(paperKeyFormat(GetParam()).abstract(), Options);
  const SynthesizedHash Specialized = Adaptive.specialized();

  // Interleave in- and out-of-format keys so every 256-block is mixed,
  // exercising the compaction path of hashBatchGuarded.
  std::vector<std::string> Keys = formatKeys(GetParam(), 600, 7);
  const DriftProbe Probe = findDriftProbe(Adaptive.pattern());
  ASSERT_TRUE(Probe.Valid);
  for (size_t I = 0; I < Keys.size(); I += 3)
    Keys[I][Probe.Pos] = Probe.Byte;
  const std::vector<std::string_view> Views = views(Keys);
  std::vector<uint64_t> Out(Keys.size());
  Adaptive.hashBatch(Views.data(), Out.data(), Views.size());
  for (size_t I = 0; I != Keys.size(); ++I) {
    if (I % 3 == 0)
      EXPECT_EQ(Out[I], lowLevelHash(Keys[I].data(), Keys[I].size(), 0));
    else
      EXPECT_EQ(Out[I], Specialized(Keys[I]));
  }
}

TEST_P(AdaptiveFormatTest, CityFallbackSelectable) {
  AdaptiveOptions Options;
  Options.Background = false;
  Options.Fallback = FallbackKind::City;
  AdaptiveHash Adaptive(paperKeyFormat(GetParam()).abstract(), Options);
  const std::string Key =
      drifted(formatKeys(GetParam(), 1), Adaptive.pattern()).front();
  EXPECT_EQ(Adaptive(Key), cityHash64(Key.data(), Key.size()));
}

INSTANTIATE_TEST_SUITE_P(AllFormats, AdaptiveFormatTest,
                         ::testing::ValuesIn(AllPaperKeys),
                         [](const ::testing::TestParamInfo<PaperKey> &Info) {
                           return paperKeyName(Info.param);
                         });

// --- Drift -> resynthesis -> hot swap ----------------------------------

TEST(AdaptiveSwapTest, DriftTripsDetectorAndPumpSwaps) {
  AdaptiveOptions Options;
  Options.Background = false;
  Options.DriftWindow = 256;
  Options.DriftThreshold = 0.02;
  AdaptiveHash Adaptive(paperKeyFormat(PaperKey::SSN).abstract(), Options);
  EXPECT_EQ(Adaptive.epoch(), 0u);

  const std::vector<std::string> PreDrift = formatKeys(PaperKey::SSN, 512);
  const std::vector<std::string> PostDrift =
      drifted(PreDrift, Adaptive.pattern());
  const std::vector<std::string_view> Views = views(PostDrift);
  std::vector<uint64_t> Out(Views.size());
  Adaptive.hashBatch(Views.data(), Out.data(), Views.size());

  EXPECT_TRUE(Adaptive.resynthesisPending());
  EXPECT_GT(Adaptive.windowMismatchRatio(), Options.DriftThreshold);
  ASSERT_TRUE(Adaptive.pumpResynthesis());
  EXPECT_EQ(Adaptive.epoch(), 1u);
  EXPECT_EQ(Adaptive.swaps(), 1u);
  EXPECT_FALSE(Adaptive.resynthesisPending());

  // Join monotonicity, end to end: the re-learned pattern admits both
  // the drifted keys that forced the swap and every pre-drift key.
  const KeyPattern Joined = Adaptive.pattern();
  for (size_t I = 0; I != PreDrift.size(); ++I) {
    EXPECT_TRUE(Joined.matches(PreDrift[I]));
    EXPECT_TRUE(Joined.matches(PostDrift[I]));
  }

  // And the new generation hashes both on the specialized path.
  const SynthesizedHash NewHash = Adaptive.specialized();
  const uint64_t MissesBeforeReplay = Adaptive.guardMisses();
  for (size_t I = 0; I != PreDrift.size(); ++I) {
    EXPECT_EQ(Adaptive(PreDrift[I]), NewHash(PreDrift[I]));
    EXPECT_EQ(Adaptive(PostDrift[I]), NewHash(PostDrift[I]));
  }
  EXPECT_EQ(Adaptive.guardMisses(), MissesBeforeReplay);
}

TEST(AdaptiveSwapTest, JoinMonotonicityAcrossRepeatedDrift) {
  // Property (a) of the issue: under successive drift waves the active
  // pattern only ever widens — keys admitted at epoch E stay admitted
  // at every epoch > E.
  AdaptiveOptions Options;
  Options.Background = false;
  Options.DriftWindow = 128;
  AdaptiveHash Adaptive(paperKeyFormat(PaperKey::IPv4).abstract(), Options);

  std::vector<std::string> Admitted = formatKeys(PaperKey::IPv4, 128);
  const char Waves[] = {'X', '!', '~'};
  for (char Wave : Waves) {
    std::vector<std::string> Drift = formatKeys(PaperKey::IPv4, 128, Wave);
    for (std::string &Key : Drift)
      Key[0] = Wave;
    const std::vector<std::string_view> Views = views(Drift);
    std::vector<uint64_t> Out(Views.size());
    Adaptive.hashBatch(Views.data(), Out.data(), Views.size());
    if (!Adaptive.pumpResynthesis())
      continue;
    const KeyPattern Pattern = Adaptive.pattern();
    for (const std::string &Key : Admitted)
      EXPECT_TRUE(Pattern.matches(Key)) << "wave " << Wave << ": " << Key;
    Admitted.insert(Admitted.end(), Drift.begin(), Drift.end());
  }
  EXPECT_GE(Adaptive.swaps(), 1u);
}

TEST(AdaptiveSwapTest, ColdStartLearnsPatternFromScratch) {
  AdaptiveOptions Options;
  Options.Background = false;
  Options.DriftWindow = 64;
  AdaptiveHash Adaptive(KeyPattern{}, Options);
  EXPECT_FALSE(Adaptive.specialized().valid());

  const std::vector<std::string> Keys = formatKeys(PaperKey::MAC, 256);
  const std::vector<std::string_view> Views = views(Keys);
  std::vector<uint64_t> Out(Views.size());
  Adaptive.hashBatch(Views.data(), Out.data(), Views.size());
  // Cold start: every key is a guard miss and a fallback hash.
  for (size_t I = 0; I != Keys.size(); ++I)
    EXPECT_EQ(Out[I], lowLevelHash(Keys[I].data(), Keys[I].size(), 0));

  ASSERT_TRUE(Adaptive.pumpResynthesis());
  EXPECT_TRUE(Adaptive.specialized().valid());
  // The inferred pattern covers the MAC format the stream came from.
  for (const std::string &Key : Keys)
    EXPECT_TRUE(Adaptive.pattern().matches(Key));
}

TEST(AdaptiveSwapTest, TooFewSamplesRefusesToSwap) {
  AdaptiveOptions Options;
  Options.Background = false;
  Options.MinSamples = 64;
  AdaptiveHash Adaptive(paperKeyFormat(PaperKey::SSN).abstract(), Options);
  const std::vector<std::string> Keys =
      drifted(formatKeys(PaperKey::SSN, 8), Adaptive.pattern());
  for (const std::string &Key : Keys)
    Adaptive(Key);
  EXPECT_FALSE(Adaptive.pumpResynthesis());
  EXPECT_EQ(Adaptive.epoch(), 0u);
}

TEST(AdaptiveSwapTest, InFormatStreamNeverSwaps) {
  AdaptiveOptions Options;
  Options.Background = false;
  Options.DriftWindow = 64;
  AdaptiveHash Adaptive(paperKeyFormat(PaperKey::URL1).abstract(), Options);
  const std::vector<std::string> Keys = formatKeys(PaperKey::URL1, 512);
  const std::vector<std::string_view> Views = views(Keys);
  std::vector<uint64_t> Out(Views.size());
  Adaptive.hashBatch(Views.data(), Out.data(), Views.size());
  EXPECT_FALSE(Adaptive.resynthesisPending());
  EXPECT_FALSE(Adaptive.pumpResynthesis());
  EXPECT_EQ(Adaptive.swaps(), 0u);
}

TEST(AdaptiveSwapTest, BackgroundWorkerSwapsOnItsOwn) {
  AdaptiveOptions Options;
  Options.Background = true;
  Options.DriftWindow = 256;
  Options.Cooldown = std::chrono::milliseconds(0);
  AdaptiveHash Adaptive(paperKeyFormat(PaperKey::SSN).abstract(), Options);

  const std::vector<std::string> Drift =
      drifted(formatKeys(PaperKey::SSN, 512), Adaptive.pattern());
  const std::vector<std::string_view> Views = views(Drift);
  std::vector<uint64_t> Out(Views.size());
  for (int Round = 0; Round != 200 && Adaptive.epoch() == 0; ++Round) {
    Adaptive.hashBatch(Views.data(), Out.data(), Views.size());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(Adaptive.epoch(), 1u);
}

// --- Concurrency: readers never block, never see torn state ------------

TEST(AdaptiveConcurrencyTest, ReadersSeeOnlyPublishedGenerations) {
  AdaptiveOptions Options;
  Options.Background = false;
  Options.DriftWindow = 128;
  AdaptiveHash Adaptive(paperKeyFormat(PaperKey::SSN).abstract(), Options);
  const SynthesizedHash OldHash = Adaptive.specialized();

  // Pre-drift keys stay in-format across the swap (join is monotone),
  // so every read must return H_old(key) or H_new(key) — never a torn
  // or fallback value.
  const std::vector<std::string> Keys = formatKeys(PaperKey::SSN, 256);
  const std::vector<std::string_view> Views = views(Keys);

  std::atomic<bool> Stop{false};
  std::atomic<bool> Failed{false};
  std::vector<std::thread> Readers;
  for (int T = 0; T != 4; ++T)
    Readers.emplace_back([&] {
      std::vector<uint64_t> Out(Views.size());
      while (!Stop.load(std::memory_order_acquire)) {
        Adaptive.hashBatch(Views.data(), Out.data(), Views.size());
        const SynthesizedHash NewHash = Adaptive.specialized();
        for (size_t I = 0; I != Keys.size(); ++I)
          if (Out[I] != OldHash(Keys[I]) && Out[I] != NewHash(Keys[I])) {
            Failed.store(true, std::memory_order_release);
            return;
          }
      }
    });

  // Drift + swap while the readers hash.
  const std::vector<std::string> Drift =
      drifted(formatKeys(PaperKey::SSN, 512), Adaptive.pattern());
  const std::vector<std::string_view> DriftViews = views(Drift);
  std::vector<uint64_t> DriftOut(DriftViews.size());
  int Swaps = 0;
  for (int Round = 0; Round != 50 && Swaps == 0; ++Round) {
    Adaptive.hashBatch(DriftViews.data(), DriftOut.data(), DriftViews.size());
    Swaps += Adaptive.pumpResynthesis();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Stop.store(true, std::memory_order_release);
  for (std::thread &T : Readers)
    T.join();
  EXPECT_FALSE(Failed.load());
  EXPECT_EQ(Swaps, 1);
}

TEST(AdaptiveConcurrencyTest, SingleKeyReadersRaceTheWorker) {
  // Background mode under reader load; TSan's target. Values are
  // checked against the set of hashes either generation could produce.
  AdaptiveOptions Options;
  Options.Background = true;
  Options.DriftWindow = 64;
  Options.Cooldown = std::chrono::milliseconds(0);
  AdaptiveHash Adaptive(paperKeyFormat(PaperKey::IPv4).abstract(), Options);
  const SynthesizedHash OldHash = Adaptive.specialized();

  const std::vector<std::string> Keys = formatKeys(PaperKey::IPv4, 64);
  std::atomic<bool> Stop{false};
  std::atomic<bool> Failed{false};
  std::vector<std::thread> Readers;
  for (int T = 0; T != 3; ++T)
    Readers.emplace_back([&] {
      while (!Stop.load(std::memory_order_acquire))
        for (const std::string &Key : Keys) {
          const uint64_t H = Adaptive(Key);
          const SynthesizedHash NewHash = Adaptive.specialized();
          if (H != OldHash(Key) && H != NewHash(Key))
            Failed.store(true, std::memory_order_release);
        }
    });

  const std::vector<std::string> Drift =
      drifted(formatKeys(PaperKey::IPv4, 64), Adaptive.pattern());
  for (int Round = 0; Round != 500 && Adaptive.epoch() == 0; ++Round)
    for (const std::string &Key : Drift)
      Adaptive(Key);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  Stop.store(true, std::memory_order_release);
  for (std::thread &T : Readers)
    T.join();
  EXPECT_FALSE(Failed.load());
}

} // namespace
