//===- tests/test_stats.cpp - Statistics substrate ------------------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "stats/chi_square.h"
#include "stats/descriptive.h"
#include "stats/mann_whitney.h"
#include "stats/pearson.h"

#include <gtest/gtest.h>

#include <random>

using namespace sepe;

namespace {

TEST(DescriptiveTest, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(mean({2, 4, 6}), 4.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_NEAR(stddev({2, 4, 6}), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(stddev({5}), 0.0);
}

TEST(DescriptiveTest, GeometricMean) {
  EXPECT_NEAR(geometricMean({1, 100}), 10.0, 1e-9);
  EXPECT_NEAR(geometricMean({2, 2, 2}), 2.0, 1e-12);
}

TEST(DescriptiveTest, QuantileInterpolates) {
  const std::vector<double> S = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(quantile(S, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(S, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(S, 0.5), 2.5);
}

TEST(DescriptiveTest, BoxStatsSummary) {
  const BoxStats B = boxStats({5, 1, 3, 2, 4});
  EXPECT_DOUBLE_EQ(B.Min, 1.0);
  EXPECT_DOUBLE_EQ(B.Max, 5.0);
  EXPECT_DOUBLE_EQ(B.Median, 3.0);
  EXPECT_DOUBLE_EQ(B.Mean, 3.0);
  EXPECT_EQ(B.Count, 5u);
  EXPECT_LE(B.Q1, B.Median);
  EXPECT_LE(B.Median, B.Q3);
}

TEST(MannWhitneyTest, IdenticalSamplesAreNotSignificant) {
  const std::vector<double> S = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const MannWhitneyResult R = mannWhitneyU(S, S);
  EXPECT_FALSE(R.significantAt(0.05));
  EXPECT_GT(R.PValue, 0.9);
}

TEST(MannWhitneyTest, DisjointSamplesAreSignificant) {
  const std::vector<double> A = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const std::vector<double> B = {101, 102, 103, 104, 105,
                                 106, 107, 108, 109, 110};
  const MannWhitneyResult R = mannWhitneyU(A, B);
  EXPECT_TRUE(R.significantAt(0.05));
  EXPECT_LT(R.PValue, 0.001);
}

TEST(MannWhitneyTest, SymmetricInDirection) {
  const std::vector<double> A = {1, 3, 5, 7, 9, 11, 13, 15};
  const std::vector<double> B = {2, 4, 6, 8, 10, 12, 14, 16};
  const MannWhitneyResult AB = mannWhitneyU(A, B);
  const MannWhitneyResult BA = mannWhitneyU(B, A);
  EXPECT_NEAR(AB.PValue, BA.PValue, 1e-9);
}

TEST(MannWhitneyTest, AllTiedGivesPValueOne) {
  const std::vector<double> A = {5, 5, 5, 5};
  const MannWhitneyResult R = mannWhitneyU(A, A);
  EXPECT_DOUBLE_EQ(R.PValue, 1.0);
}

TEST(MannWhitneyTest, OverlappingButShiftedSamples) {
  std::mt19937_64 Rng(1);
  std::normal_distribution<double> Base(100, 5), Shifted(103, 5);
  std::vector<double> A, B;
  for (int I = 0; I != 50; ++I) {
    A.push_back(Base(Rng));
    B.push_back(Shifted(Rng));
  }
  const MannWhitneyResult R = mannWhitneyU(A, B);
  EXPECT_TRUE(R.significantAt(0.05)) << "p = " << R.PValue;
}

TEST(ChiSquareTest, UniformCountsScoreZero) {
  EXPECT_DOUBLE_EQ(chiSquareUniform({10, 10, 10, 10}), 0.0);
}

TEST(ChiSquareTest, SkewScoresPositive) {
  EXPECT_GT(chiSquareUniform({40, 0, 0, 0}), 100.0);
}

TEST(ChiSquareTest, Histogram64SpreadsBins) {
  std::vector<uint64_t> Hashes;
  std::mt19937_64 Rng(2);
  for (int I = 0; I != 64000; ++I)
    Hashes.push_back(Rng());
  const std::vector<uint64_t> Bins = histogram64(Hashes, 64);
  ASSERT_EQ(Bins.size(), 64u);
  uint64_t Total = 0;
  for (uint64_t B : Bins) {
    EXPECT_GT(B, 700u);
    EXPECT_LT(B, 1300u);
    Total += B;
  }
  EXPECT_EQ(Total, Hashes.size());
}

TEST(ChiSquareTest, RandomHashesLookUniform) {
  std::vector<uint64_t> Hashes;
  std::mt19937_64 Rng(4);
  for (int I = 0; I != 100000; ++I)
    Hashes.push_back(Rng());
  const double Stat = hashUniformityChi2(Hashes, 64);
  // 63 degrees of freedom: expect a statistic near 63, p-value
  // comfortably above rejection.
  EXPECT_LT(Stat, 120.0);
  EXPECT_GT(chiSquarePValue(Stat, 63), 0.01);
}

TEST(ChiSquareTest, LowBitsOnlyHashesLookSkewed) {
  // Hashes confined to the low 16 bits land in one 64-bin slice.
  std::vector<uint64_t> Hashes;
  std::mt19937_64 Rng(5);
  for (int I = 0; I != 10000; ++I)
    Hashes.push_back(Rng() & 0xFFFF);
  const double Stat = hashUniformityChi2(Hashes, 64);
  EXPECT_GT(Stat, 100000.0);
  EXPECT_LT(chiSquarePValue(Stat, 63), 1e-6);
}

TEST(PearsonTest, PerfectLinearCorrelation) {
  EXPECT_NEAR(pearsonCorrelation({1, 2, 3, 4}, {10, 20, 30, 40}), 1.0,
              1e-12);
  EXPECT_NEAR(pearsonCorrelation({1, 2, 3, 4}, {40, 30, 20, 10}), -1.0,
              1e-12);
}

TEST(PearsonTest, ZeroVarianceGivesZero) {
  EXPECT_DOUBLE_EQ(pearsonCorrelation({1, 2, 3}, {5, 5, 5}), 0.0);
}

TEST(PearsonTest, NoisyLinearStaysHigh) {
  std::mt19937_64 Rng(6);
  std::normal_distribution<double> Noise(0, 1);
  std::vector<double> X, Y;
  for (int I = 0; I != 200; ++I) {
    X.push_back(I);
    Y.push_back(3.0 * I + Noise(Rng));
  }
  EXPECT_GT(pearsonCorrelation(X, Y), 0.999);
}

} // namespace
