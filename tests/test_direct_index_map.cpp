//===- tests/test_direct_index_map.cpp - MPHF-backed static map -----------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
//
// DirectIndexMap: sealed lookups over an MPHF, the fingerprint
// membership check, and the false-positive-rate property across
// formats and fingerprint widths (an out-of-set key may only slip
// through at ~2^-FpBits).
//
//===----------------------------------------------------------------------===//

#include "container/direct_index_map.h"

#include "keygen/distributions.h"
#include "keygen/paper_formats.h"

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

using namespace sepe;

namespace {

struct Fixture {
  std::vector<std::string> Keys;
  std::vector<std::string_view> Views;
  std::vector<uint32_t> Values;
  Mphf F;
};

Fixture makeFixture(PaperKey Key, size_t N, uint64_t Seed = 0xd1d1) {
  Fixture Fx;
  KeyGenerator Gen(paperKeyFormat(Key), KeyDistribution::Uniform, Seed);
  Fx.Keys = Gen.distinct(N);
  Fx.Views.assign(Fx.Keys.begin(), Fx.Keys.end());
  Fx.Values.resize(N);
  for (size_t I = 0; I != N; ++I)
    Fx.Values[I] = static_cast<uint32_t>(I * 3 + 1);
  MphfBuildOptions Options;
  Options.Format = &paperKeyFormat(Key);
  Expected<Mphf> F = buildMphf(Fx.Keys, Options);
  EXPECT_TRUE(F) << F.error().Message;
  Fx.F = F.take();
  return Fx;
}

TEST(DirectIndexMapTest, EveryInSetKeyFindsItsOwnValue) {
  Fixture Fx = makeFixture(PaperKey::SSN, 5000);
  DirectIndexMap<uint32_t> Map(Fx.F, Fx.Views.data(), Fx.Values.data(),
                               Fx.Views.size());
  ASSERT_TRUE(Map.valid());
  EXPECT_EQ(Map.size(), Fx.Keys.size());
  for (size_t I = 0; I != Fx.Keys.size(); ++I) {
    const uint32_t *V = Map.find(Fx.Keys[I]);
    ASSERT_NE(V, nullptr) << Fx.Keys[I];
    EXPECT_EQ(*V, Fx.Values[I]) << "wrong value for " << Fx.Keys[I];
  }
}

TEST(DirectIndexMapTest, FindBatchAgreesWithFind) {
  Fixture Fx = makeFixture(PaperKey::MAC, 900);
  DirectIndexMap<uint32_t> Map(Fx.F, Fx.Views.data(), Fx.Values.data(),
                               Fx.Views.size());
  ASSERT_TRUE(Map.valid());
  std::vector<const uint32_t *> Out(Fx.Views.size());
  const size_t Hits =
      Map.findBatch(Fx.Views.data(), Out.data(), Fx.Views.size());
  EXPECT_EQ(Hits, Fx.Views.size());
  for (size_t I = 0; I != Fx.Views.size(); ++I)
    ASSERT_EQ(Out[I], Map.find(Fx.Views[I])) << I;
}

TEST(DirectIndexMapTest, MismatchedMphfIsRejectedAtConstruction) {
  Fixture A = makeFixture(PaperKey::SSN, 100, 0xaaa);
  Fixture B = makeFixture(PaperKey::SSN, 100, 0xbbb);
  // B's keys behind A's MPHF: the construction-time bijection re-walk
  // must fail instead of sealing a silently-wrong map.
  DirectIndexMap<uint32_t> Map(A.F, B.Views.data(), B.Values.data(),
                               B.Views.size());
  EXPECT_FALSE(Map.valid());
  EXPECT_EQ(Map.find(B.Keys.front()), nullptr);
  EXPECT_EQ(Map.size(), 0u);
}

TEST(DirectIndexMapTest, DefaultConstructedMapRejectsEverything) {
  DirectIndexMap<int> Map;
  EXPECT_FALSE(Map.valid());
  EXPECT_EQ(Map.find("anything"), nullptr);
}

/// The satellite property: out-of-set keys must be rejected at a rate
/// consistent with the fingerprint width, across formats and widths.
template <unsigned FpBits>
double measuredFalsePositiveRate(PaperKey Key, size_t N, size_t Probes) {
  Fixture Fx = makeFixture(Key, N);
  DirectIndexMap<uint32_t, FpBits> Map(Fx.F, Fx.Views.data(),
                                       Fx.Values.data(), Fx.Views.size());
  EXPECT_TRUE(Map.valid());
  std::unordered_set<std::string> InSet(Fx.Keys.begin(), Fx.Keys.end());
  KeyGenerator Gen(paperKeyFormat(Key), KeyDistribution::Uniform, 0xface);
  size_t FalsePositives = 0, Checked = 0;
  while (Checked != Probes) {
    const std::string Probe = Gen.next();
    if (InSet.count(Probe) != 0)
      continue; // only out-of-set keys count
    ++Checked;
    if (Map.find(Probe) != nullptr)
      ++FalsePositives;
  }
  return static_cast<double>(FalsePositives) / static_cast<double>(Probes);
}

TEST(DirectIndexMapFpRateTest, EightBitFingerprintsAcrossFormats) {
  // Expected rate 2^-8 ~ 0.39%. 20000 probes put the 5-sigma band at
  // ~0.6% absolute; 2% is a deterministic-failure threshold, not a
  // statistical razor.
  for (PaperKey Key :
       {PaperKey::SSN, PaperKey::MAC, PaperKey::IPv4, PaperKey::URL1}) {
    const double Rate = measuredFalsePositiveRate<8>(Key, 2000, 20000);
    EXPECT_LT(Rate, 0.02) << paperKeyName(Key);
  }
}

TEST(DirectIndexMapFpRateTest, SixteenBitFingerprintsAreTighter) {
  // Expected rate 2^-16 ~ 0.0015%: over 20000 probes, more than ~10
  // false positives means the fingerprint bits are not independent.
  for (PaperKey Key : {PaperKey::SSN, PaperKey::IPv6}) {
    const double Rate = measuredFalsePositiveRate<16>(Key, 2000, 20000);
    EXPECT_LT(Rate, 0.0005) << paperKeyName(Key);
  }
}

TEST(DirectIndexMapFpRateTest, WiderFingerprintsCostMoreMemory) {
  Fixture Fx = makeFixture(PaperKey::SSN, 4096);
  DirectIndexMap<uint32_t, 8> Narrow(Fx.F, Fx.Views.data(),
                                     Fx.Values.data(), Fx.Views.size());
  DirectIndexMap<uint32_t, 16> Wide(Fx.F, Fx.Views.data(), Fx.Values.data(),
                                    Fx.Views.size());
  ASSERT_TRUE(Narrow.valid());
  ASSERT_TRUE(Wide.valid());
  EXPECT_EQ(Wide.bytesUsed() - Narrow.bytesUsed(), Fx.Views.size())
      << "exactly one extra byte per key";
}

} // namespace
