//===- tests/test_bit_ops.cpp - Bit-level primitives ----------------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "support/bit_ops.h"

#include <gtest/gtest.h>

#include <random>

using namespace sepe;

namespace {

TEST(BitOpsTest, LoadU64LeIsLittleEndian) {
  const unsigned char Bytes[8] = {0x01, 0x02, 0x03, 0x04,
                                  0x05, 0x06, 0x07, 0x08};
  EXPECT_EQ(loadU64Le(Bytes), 0x0807060504030201ULL);
}

TEST(BitOpsTest, LoadU32LeIsLittleEndian) {
  const unsigned char Bytes[4] = {0xAA, 0xBB, 0xCC, 0xDD};
  EXPECT_EQ(loadU32Le(Bytes), 0xDDCCBBAAu);
}

TEST(BitOpsTest, LoadBytesZeroExtends) {
  const unsigned char Bytes[4] = {0xFF, 0x01, 0x02, 0x03};
  EXPECT_EQ(loadBytesLe(Bytes, 0), 0u);
  EXPECT_EQ(loadBytesLe(Bytes, 1), 0xFFu);
  EXPECT_EQ(loadBytesLe(Bytes, 3), 0x0201FFu);
}

TEST(BitOpsTest, PextSoftMatchesFigure11Semantics) {
  // Extracting the low nibble of every byte compresses digits.
  EXPECT_EQ(pextSoft(0x1234567812345678ULL, 0x0F0F0F0F0F0F0F0FULL),
            0x24682468u);
  EXPECT_EQ(pextSoft(0xFFFFFFFFFFFFFFFFULL, 0), 0u);
  EXPECT_EQ(pextSoft(0xFFFFFFFFFFFFFFFFULL, ~0ULL), ~0ULL);
  EXPECT_EQ(pextSoft(0b1010, 0b1110), 0b101u);
}

TEST(BitOpsTest, PextSoftMatchesHardware) {
  if (!hasHardwarePext())
    GTEST_SKIP() << "BMI2 not compiled in";
  std::mt19937_64 Rng(3);
  for (int I = 0; I != 500; ++I) {
    const uint64_t Src = Rng();
    const uint64_t Mask = Rng() & Rng(); // biased toward sparse masks
    EXPECT_EQ(pextSoft(Src, Mask), pextHw(Src, Mask));
  }
}

TEST(BitOpsTest, PdepIsInverseOfPextOnMask) {
  std::mt19937_64 Rng(5);
  for (int I = 0; I != 200; ++I) {
    const uint64_t Src = Rng();
    const uint64_t Mask = Rng();
    EXPECT_EQ(pdepSoft(pextSoft(Src, Mask), Mask), Src & Mask);
  }
}

TEST(BitOpsTest, Mul128KnownProducts) {
  uint64_t Lo, Hi;
  mul128(~0ULL, 2, Lo, Hi);
  EXPECT_EQ(Lo, ~0ULL - 1);
  EXPECT_EQ(Hi, 1u);
  mul128(0x100000000ULL, 0x100000000ULL, Lo, Hi);
  EXPECT_EQ(Lo, 0u);
  EXPECT_EQ(Hi, 1u);
}

TEST(BitOpsTest, MulFoldXorsHalves) {
  uint64_t Lo, Hi;
  mul128(0xdeadbeefULL, 0xfeedfaceULL, Lo, Hi);
  EXPECT_EQ(mulFold(0xdeadbeefULL, 0xfeedfaceULL), Lo ^ Hi);
}

TEST(BitOpsTest, Rotr64) {
  EXPECT_EQ(rotr64(0x1, 1), 0x8000000000000000ULL);
  EXPECT_EQ(rotr64(0x8000000000000000ULL, 63), 0x1u);
  EXPECT_EQ(rotr64(0xABCDULL, 0), 0xABCDULL);
}

} // namespace
