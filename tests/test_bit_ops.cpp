//===- tests/test_bit_ops.cpp - Bit-level primitives ----------------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "support/bit_ops.h"

#include <gtest/gtest.h>

#include <random>

using namespace sepe;

namespace {

TEST(BitOpsTest, LoadU64LeIsLittleEndian) {
  const unsigned char Bytes[8] = {0x01, 0x02, 0x03, 0x04,
                                  0x05, 0x06, 0x07, 0x08};
  EXPECT_EQ(loadU64Le(Bytes), 0x0807060504030201ULL);
}

TEST(BitOpsTest, LoadU32LeIsLittleEndian) {
  const unsigned char Bytes[4] = {0xAA, 0xBB, 0xCC, 0xDD};
  EXPECT_EQ(loadU32Le(Bytes), 0xDDCCBBAAu);
}

TEST(BitOpsTest, LoadBytesZeroExtends) {
  const unsigned char Bytes[4] = {0xFF, 0x01, 0x02, 0x03};
  EXPECT_EQ(loadBytesLe(Bytes, 0), 0u);
  EXPECT_EQ(loadBytesLe(Bytes, 1), 0xFFu);
  EXPECT_EQ(loadBytesLe(Bytes, 3), 0x0201FFu);
}

TEST(BitOpsTest, PextSoftMatchesFigure11Semantics) {
  // Extracting the low nibble of every byte compresses digits.
  EXPECT_EQ(pextSoft(0x1234567812345678ULL, 0x0F0F0F0F0F0F0F0FULL),
            0x24682468u);
  EXPECT_EQ(pextSoft(0xFFFFFFFFFFFFFFFFULL, 0), 0u);
  EXPECT_EQ(pextSoft(0xFFFFFFFFFFFFFFFFULL, ~0ULL), ~0ULL);
  EXPECT_EQ(pextSoft(0b1010, 0b1110), 0b101u);
}

TEST(BitOpsTest, PextSoftMatchesHardware) {
  if (!hasHardwarePext())
    GTEST_SKIP() << "BMI2 not compiled in";
  std::mt19937_64 Rng(3);
  for (int I = 0; I != 500; ++I) {
    const uint64_t Src = Rng();
    const uint64_t Mask = Rng() & Rng(); // biased toward sparse masks
    EXPECT_EQ(pextSoft(Src, Mask), pextHw(Src, Mask));
  }
}

TEST(BitOpsTest, PextNetworkMatchesPextSoftOnEdgeMasks) {
  for (const uint64_t Mask :
       {uint64_t{0}, ~uint64_t{0}, uint64_t{1}, uint64_t{0x8000000000000000},
        uint64_t{0x0F0F0F0F0F0F0F0F}, uint64_t{0xF0F0F0F0F0F0F0F0},
        uint64_t{0x5555555555555555}, uint64_t{0xAAAAAAAAAAAAAAAA},
        uint64_t{0x00FF00FF00FF00FF}, uint64_t{0x0000000000000F0F}}) {
    const PextNetwork Net = PextNetwork::compile(Mask);
    for (const uint64_t Src :
         {uint64_t{0}, ~uint64_t{0}, uint64_t{0x123456789ABCDEF0},
          uint64_t{0xDEADBEEFFEEDFACE}}) {
      EXPECT_EQ(Net.apply(Src), pextSoft(Src, Mask))
          << "mask=" << std::hex << Mask << " src=" << Src;
    }
  }
}

TEST(BitOpsTest, PextNetworkMatchesPextSoftRandomized) {
  std::mt19937_64 Rng(17);
  for (int I = 0; I != 2000; ++I) {
    // Mix dense, sparse, and very sparse masks.
    uint64_t Mask = Rng();
    if (I % 3 == 1)
      Mask &= Rng();
    if (I % 3 == 2)
      Mask &= Rng() & Rng();
    const PextNetwork Net = PextNetwork::compile(Mask);
    for (int J = 0; J != 4; ++J) {
      const uint64_t Src = Rng();
      ASSERT_EQ(Net.apply(Src), pextSoft(Src, Mask))
          << "mask=" << std::hex << Mask << " src=" << Src;
    }
  }
}

TEST(BitOpsTest, PextNetworkDropsIdentityRounds) {
  // The all-ones mask moves nothing: zero rounds.
  EXPECT_EQ(PextNetwork::compile(~uint64_t{0}).Rounds, 0);
  EXPECT_EQ(PextNetwork::compile(0).Rounds, 0);
  // The uniform low-nibble mask needs only nibble-granularity moves
  // (shifts 4, 8, 16), so rounds 0-1 are identity but still counted —
  // what matters is that the trailing 32-shift round is dropped.
  EXPECT_LE(PextNetwork::compile(0x0F0F0F0F0F0F0F0FULL).Rounds, 5);
}

TEST(BitOpsTest, Pext16x8CompressesEachLaneIndependently) {
  const uint16_t Src[8] = {0x1234, 0xFFFF, 0x0000, 0xABCD,
                           0x5678, 0x8001, 0x7FFE, 0x9999};
  const uint16_t Mask[8] = {0x0F0F, 0xFFFF, 0xFFFF, 0x00FF,
                            0xF0F0, 0x8001, 0x0001, 0x5555};
  uint16_t Out[8] = {};
  pext16x8(Src, Mask, Out);
  for (int L = 0; L != 8; ++L)
    EXPECT_EQ(Out[L], static_cast<uint16_t>(pextSoft(Src[L], Mask[L])))
        << "lane " << L;
  EXPECT_EQ(Out[0], 0x24u);  // low nibbles of 0x12, 0x34
  EXPECT_EQ(Out[1], 0xFFFFu);
  EXPECT_EQ(Out[3], 0xCDu);
  EXPECT_EQ(Out[5], 0x3u); // both guard bits set
}

TEST(BitOpsTest, Pext16x8AgreesWithPextNetworkLanes) {
  std::mt19937_64 Rng(23);
  for (int I = 0; I != 200; ++I) {
    uint16_t Src[8], Mask[8], Out[8];
    for (int L = 0; L != 8; ++L) {
      Src[L] = static_cast<uint16_t>(Rng());
      Mask[L] = static_cast<uint16_t>(Rng() & Rng());
    }
    pext16x8(Src, Mask, Out);
    for (int L = 0; L != 8; ++L) {
      const PextNetwork Net = PextNetwork::compile(Mask[L]);
      ASSERT_EQ(Out[L], static_cast<uint16_t>(Net.apply(Src[L])));
    }
  }
}

TEST(BitOpsTest, PdepIsInverseOfPextOnMask) {
  std::mt19937_64 Rng(5);
  for (int I = 0; I != 200; ++I) {
    const uint64_t Src = Rng();
    const uint64_t Mask = Rng();
    EXPECT_EQ(pdepSoft(pextSoft(Src, Mask), Mask), Src & Mask);
  }
}

TEST(BitOpsTest, Mul128KnownProducts) {
  uint64_t Lo, Hi;
  mul128(~0ULL, 2, Lo, Hi);
  EXPECT_EQ(Lo, ~0ULL - 1);
  EXPECT_EQ(Hi, 1u);
  mul128(0x100000000ULL, 0x100000000ULL, Lo, Hi);
  EXPECT_EQ(Lo, 0u);
  EXPECT_EQ(Hi, 1u);
}

TEST(BitOpsTest, MulFoldXorsHalves) {
  uint64_t Lo, Hi;
  mul128(0xdeadbeefULL, 0xfeedfaceULL, Lo, Hi);
  EXPECT_EQ(mulFold(0xdeadbeefULL, 0xfeedfaceULL), Lo ^ Hi);
}

TEST(BitOpsTest, Rotr64) {
  EXPECT_EQ(rotr64(0x1, 1), 0x8000000000000000ULL);
  EXPECT_EQ(rotr64(0x8000000000000000ULL, 63), 0x1u);
  EXPECT_EQ(rotr64(0xABCDULL, 0), 0xABCDULL);
}

} // namespace
