//===- tests/test_trace.cpp - Flight recorder ------------------------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
//
// Runs in both build flavors: with -DSEPE_TRACE=ON the ring-buffer
// semantics are checked (drop-oldest wrap, cross-thread drain ordering,
// span durations, the Chrome-trace export shape); without it the same
// binary checks that the shims are inert and that writeChromeTrace
// still emits a valid empty document.
//
//===----------------------------------------------------------------------===//

#include "support/trace.h"

#include "support/json.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace sepe;

namespace {

/// Enables recording for one test body and leaves the recorder empty:
/// drains on entry (discarding events leaked by other tests) and
/// disables + drains again on exit.
struct TraceScope {
  TraceScope() {
    (void)trace::drain();
    trace::setEnabled(true);
  }
  ~TraceScope() {
    trace::setEnabled(false);
    (void)trace::drain();
  }
};

std::string tempPath(const char *Name) {
  return std::string(::testing::TempDir()) + Name;
}

TEST(TraceCoreTest, DisabledByDefault) {
  // Both flavors: emission must be opt-in (setEnabled or the
  // SEPE_TRACE_ENABLED env var, which the test harness never sets).
  EXPECT_FALSE(trace::enabled());
}

TEST(TraceCoreTest, DisabledEmitIsANoOp) {
  // Whether the plane is compiled out or merely runtime-disabled, an
  // emit must not record anything.
  ASSERT_FALSE(trace::enabled());
  const uint64_t Before = trace::emitted();
  SEPE_TRACE_INSTANT(SwapPublish, 7, 0);
  trace::emit(trace::EventKind::DriftTripped, 1, 2);
  {
    SEPE_TRACE_SPAN(S, ResynthAttempt, 3);
    trace::Span Direct(trace::EventKind::JitCompile);
    Direct.setArg(64);
  }
  EXPECT_EQ(trace::emitted(), Before);
  EXPECT_EQ(trace::occupancy(), 0u);
  EXPECT_TRUE(trace::drain().empty());
}

TEST(TraceCoreTest, CompiledOutShimsAreInert) {
  if (trace::compiledIn())
    GTEST_SKIP() << "trace compiled in; shim test not applicable";
  trace::setEnabled(true); // Must not stick in the OFF build.
  EXPECT_FALSE(trace::enabled());
  SEPE_TRACE_INSTANT(DriftTripped, 1, 2);
  EXPECT_EQ(trace::emitted(), 0u);
  EXPECT_EQ(trace::dropped(), 0u);
  EXPECT_TRUE(trace::drain().empty());
}

TEST(TraceCoreTest, EventKindNamesAreTotal) {
  for (uint16_t K = 0;
       K != static_cast<uint16_t>(trace::EventKind::NumKinds); ++K) {
    const char *Name =
        trace::eventKindName(static_cast<trace::EventKind>(K));
    ASSERT_NE(Name, nullptr);
    EXPECT_NE(std::string(Name), "");
    EXPECT_NE(std::string(Name), "?") << "kind " << K;
  }
}

TEST(TraceRingTest, EmitDrainRoundTrip) {
  if (!trace::compiledIn())
    GTEST_SKIP() << "built without -DSEPE_TRACE=ON";
  TraceScope Scope;
  trace::emit(trace::EventKind::DriftTripped, 4, 250000);
  trace::emit(trace::EventKind::SwapPublish, 5, 0);
  const std::vector<trace::Event> Events = trace::drain();
  ASSERT_EQ(Events.size(), 2u);
  EXPECT_EQ(Events[0].Kind, trace::EventKind::DriftTripped);
  EXPECT_EQ(Events[0].Gen, 4u);
  EXPECT_EQ(Events[0].Arg, 250000u);
  EXPECT_FALSE(Events[0].IsSpan);
  EXPECT_EQ(Events[0].DurNs, 0u);
  EXPECT_EQ(Events[1].Kind, trace::EventKind::SwapPublish);
  EXPECT_LE(Events[0].TimeNs, Events[1].TimeNs);
  // Same thread: one ring, one tid.
  EXPECT_EQ(Events[0].Tid, Events[1].Tid);
  // Consumed: a second drain sees only newer events.
  EXPECT_TRUE(trace::drain().empty());
}

TEST(TraceRingTest, SpanCarriesDuration) {
  if (!trace::compiledIn())
    GTEST_SKIP() << "built without -DSEPE_TRACE=ON";
  TraceScope Scope;
  {
    trace::Span S(trace::EventKind::JitCompile, 9);
    S.setArg(128);
  }
  const std::vector<trace::Event> Events = trace::drain();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_TRUE(Events[0].IsSpan);
  EXPECT_EQ(Events[0].Kind, trace::EventKind::JitCompile);
  EXPECT_EQ(Events[0].Gen, 9u);
  EXPECT_EQ(Events[0].Arg, 128u);
}

TEST(TraceRingTest, WrapDropsOldestAndCountsDrops) {
  if (!trace::compiledIn())
    GTEST_SKIP() << "built without -DSEPE_TRACE=ON";
  // A fresh thread gets a fresh ring, so the shrunken capacity applies
  // regardless of what the main thread's ring already is.
  trace::setRingCapacity(8);
  const uint64_t DroppedBefore = trace::dropped();
  std::thread Writer([] {
    trace::setEnabled(true);
    for (uint64_t I = 0; I != 20; ++I)
      trace::emit(trace::EventKind::DualWrite, 1, I);
    trace::setEnabled(false);
  });
  Writer.join();
  trace::setRingCapacity(8192); // Restore the default for later tests.
  std::vector<trace::Event> Mine;
  for (const trace::Event &E : trace::drain())
    if (E.Kind == trace::EventKind::DualWrite && E.Gen == 1)
      Mine.push_back(E);
  // 20 emitted into 8 slots: the 8 NEWEST survive, oldest dropped.
  ASSERT_EQ(Mine.size(), 8u);
  for (size_t I = 0; I != Mine.size(); ++I)
    EXPECT_EQ(Mine[I].Arg, 12 + I) << "expected the newest events";
  EXPECT_EQ(trace::dropped() - DroppedBefore, 12u);
}

TEST(TraceRingTest, MultiThreadDrainIsTimeOrdered) {
  if (!trace::compiledIn())
    GTEST_SKIP() << "built without -DSEPE_TRACE=ON";
  TraceScope Scope;
  constexpr size_t NumThreads = 4;
  constexpr uint64_t PerThread = 64;
  std::vector<std::thread> Threads;
  for (size_t T = 0; T != NumThreads; ++T)
    Threads.emplace_back([T] {
      for (uint64_t I = 0; I != PerThread; ++I)
        trace::emit(trace::EventKind::GuardReject, T, I);
    });
  for (std::thread &T : Threads)
    T.join();
  std::vector<trace::Event> Events;
  for (const trace::Event &E : trace::drain())
    if (E.Kind == trace::EventKind::GuardReject)
      Events.push_back(E);
  ASSERT_EQ(Events.size(), NumThreads * PerThread);
  std::vector<uint64_t> PerTidCount(NumThreads + 2, 0);
  for (size_t I = 0; I != Events.size(); ++I) {
    if (I != 0)
      EXPECT_LE(Events[I - 1].TimeNs, Events[I].TimeNs)
          << "drain must merge rings into time order";
    ASSERT_LT(Events[I].Gen, NumThreads);
  }
  // Per-thread suborder survives the merge: each emitter's args must
  // come back ascending within its own Gen lane.
  for (size_t T = 0; T != NumThreads; ++T) {
    uint64_t Expect = 0;
    for (const trace::Event &E : Events)
      if (E.Gen == T)
        EXPECT_EQ(E.Arg, Expect++);
    EXPECT_EQ(Expect, PerThread);
  }
}

TEST(TraceChromeTest, GoldenShape) {
  const std::string Path = tempPath("sepe_trace_golden.json");
  uint64_t SpanCount = 0, InstantCount = 0;
  if (trace::compiledIn()) {
    TraceScope Scope;
    trace::emit(trace::EventKind::DriftTripped, 3, 250000);
    {
      trace::Span S(trace::EventKind::MigrateShards, 4);
      S.setArg(17);
    }
    trace::emit(trace::EventKind::SwapPublish, 4, 0);
    SpanCount = 1;
    InstantCount = 2;
    ASSERT_TRUE(trace::writeChromeTrace(Path));
  } else {
    // The compiled-out document must still be a valid empty trace.
    ASSERT_TRUE(trace::writeChromeTrace(Path));
  }

  Expected<json::Value> Doc = json::parseFile(Path);
  ASSERT_TRUE(Doc) << Doc.error().Message;
  const json::Value *Events = Doc->find("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());
  ASSERT_EQ(Events->array().size(), SpanCount + InstantCount);

  uint64_t Spans = 0, Instants = 0;
  double LastTs = 0;
  for (const json::Value &E : Events->array()) {
    const json::Value *Ph = E.find("ph");
    const json::Value *Ts = E.find("ts");
    ASSERT_NE(Ph, nullptr);
    ASSERT_TRUE(Ph->isString());
    ASSERT_NE(Ts, nullptr);
    ASSERT_TRUE(Ts->isNumber());
    ASSERT_NE(E.find("tid"), nullptr);
    ASSERT_NE(E.find("pid"), nullptr);
    ASSERT_NE(E.find("name"), nullptr);
    EXPECT_GE(Ts->number(), LastTs) << "events must be sorted";
    LastTs = Ts->number();
    const std::string &Kind = Ph->string();
    if (Kind == "X") {
      ++Spans;
      EXPECT_NE(E.find("dur"), nullptr) << "complete events carry dur";
    } else {
      EXPECT_EQ(Kind, "i");
      ++Instants;
    }
  }
  EXPECT_EQ(Spans, SpanCount);
  EXPECT_EQ(Instants, InstantCount);
  std::remove(Path.c_str());
}

TEST(TraceChromeTest, ArgsCarryGeneration) {
  if (!trace::compiledIn())
    GTEST_SKIP() << "built without -DSEPE_TRACE=ON";
  const std::string Path = tempPath("sepe_trace_args.json");
  {
    TraceScope Scope;
    trace::emit(trace::EventKind::SwapPublish, 42, 7);
    ASSERT_TRUE(trace::writeChromeTrace(Path));
  }
  Expected<json::Value> Doc = json::parseFile(Path);
  ASSERT_TRUE(Doc) << Doc.error().Message;
  const json::Value *Events = Doc->find("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_EQ(Events->array().size(), 1u);
  const json::Value &E = Events->array()[0];
  EXPECT_EQ(E.stringOr("name", ""), "adaptive.swap.publish");
  const json::Value *Args = E.find("args");
  ASSERT_NE(Args, nullptr);
  EXPECT_EQ(Args->numberOr("gen", -1), 42.0);
  EXPECT_EQ(Args->numberOr("arg", -1), 7.0);
  std::remove(Path.c_str());
}

} // namespace
