//===- tests/test_polymur_like.cpp - Length-specialized baseline ----------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "hashes/polymur_like.h"

#include <gtest/gtest.h>

#include <random>
#include <unordered_set>

using namespace sepe;

namespace {

std::string randomString(std::mt19937_64 &Rng, size_t Len) {
  std::string S(Len, '\0');
  for (char &C : S)
    C = static_cast<char>(Rng() & 0xFF);
  return S;
}

TEST(PolymurLikeTest, ParamsAreInField) {
  for (uint64_t Seed : {0ULL, 1ULL, ~0ULL, 0xdeadbeefULL}) {
    const PolymurParams P = PolymurParams::fromSeed(Seed);
    EXPECT_GE(P.K, 2u);
    EXPECT_LT(P.K, (uint64_t{1} << 61) - 1);
  }
}

TEST(PolymurLikeTest, Deterministic) {
  const PolymurLikeHash Hash;
  for (size_t Len : {0u, 3u, 7u, 8u, 20u, 49u, 50u, 51u, 200u}) {
    const std::string Key(Len, 'k');
    EXPECT_EQ(Hash(Key), Hash(Key)) << Len;
  }
}

TEST(PolymurLikeTest, AllThreeSpecializationsAreSensitive) {
  // One representative length per Figure-2 branch; flipping any byte
  // must change the hash.
  const PolymurLikeHash Hash;
  std::mt19937_64 Rng(1);
  for (size_t Len : {1u, 4u, 7u, 8u, 16u, 31u, 49u, 50u, 80u, 200u}) {
    const std::string Base = randomString(Rng, Len);
    for (size_t I = 0; I != Len; ++I) {
      std::string Mutated = Base;
      Mutated[I] = static_cast<char>(Mutated[I] + 1);
      EXPECT_NE(Hash(Base), Hash(Mutated)) << "len " << Len << " byte "
                                           << I;
    }
  }
}

TEST(PolymurLikeTest, LengthIsPartOfTheHash) {
  const PolymurLikeHash Hash;
  EXPECT_NE(Hash(std::string(3, '\0')), Hash(std::string(4, '\0')));
  EXPECT_NE(Hash(std::string(20, 'a')), Hash(std::string(21, 'a')));
}

TEST(PolymurLikeTest, SeedsProduceIndependentFunctions) {
  const PolymurParams A = PolymurParams::fromSeed(1);
  const PolymurParams B = PolymurParams::fromSeed(2);
  const std::string Key = "independent-functions";
  EXPECT_NE(polymurLikeHash(Key.data(), Key.size(), A),
            polymurLikeHash(Key.data(), Key.size(), B));
}

TEST(PolymurLikeTest, FewCollisionsOnRandomInputs) {
  const PolymurLikeHash Hash;
  std::mt19937_64 Rng(7);
  std::unordered_set<uint64_t> Hashes;
  std::unordered_set<std::string> Keys;
  for (int I = 0; I != 5000; ++I) {
    const std::string Key = randomString(Rng, 1 + Rng() % 80);
    if (!Keys.insert(Key).second)
      continue;
    Hashes.insert(Hash(Key));
  }
  EXPECT_GE(Hashes.size() + 2, Keys.size());
}

TEST(PolymurLikeTest, AvalancheOnAllBranches) {
  const PolymurLikeHash Hash;
  for (size_t Len : {6u, 20u, 80u}) {
    const std::string Base(Len, 'x');
    int Flips = 0, Trials = 0;
    for (size_t Byte = 0; Byte != Len; ++Byte)
      for (int Bit = 0; Bit != 8; ++Bit) {
        std::string Mutated = Base;
        Mutated[Byte] = static_cast<char>(Mutated[Byte] ^ (1 << Bit));
        Flips += __builtin_popcountll(Hash(Base) ^ Hash(Mutated));
        ++Trials;
      }
    EXPECT_GT(static_cast<double>(Flips) / Trials, 20.0) << "len " << Len;
  }
}

} // namespace
