//===- tests/test_properties.cpp - Parameterized property sweeps ----------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-based sweeps over (paper key format x hash family x key
/// distribution): for every combination, the synthesized hash must be
/// deterministic, total on the format, sensitive to every free key
/// position, and no slower to collide than the free-bit bound allows.
///
//===----------------------------------------------------------------------===//

#include "core/executor.h"
#include "core/regex_parser.h"
#include "core/regex_printer.h"
#include "core/synthesizer.h"
#include "keygen/distributions.h"
#include "keygen/paper_formats.h"

#include <gtest/gtest.h>

#include <unordered_set>

using namespace sepe;

namespace {

struct PropertyCase {
  PaperKey Key;
  HashFamily Family;
};

class FormatFamilyTest : public ::testing::TestWithParam<PropertyCase> {
protected:
  const FormatSpec &spec() const { return paperKeyFormat(GetParam().Key); }

  SynthesizedHash makeHash() const {
    Expected<HashPlan> Plan =
        synthesize(spec().abstract(), GetParam().Family);
    EXPECT_TRUE(Plan);
    return SynthesizedHash(Plan.take());
  }
};

std::string caseName(const ::testing::TestParamInfo<PropertyCase> &Info) {
  return std::string(paperKeyName(Info.param.Key)) +
         familyName(Info.param.Family);
}

std::vector<PropertyCase> allCases() {
  std::vector<PropertyCase> Cases;
  for (PaperKey Key : AllPaperKeys)
    for (HashFamily Family : {HashFamily::Naive, HashFamily::OffXor,
                              HashFamily::Aes, HashFamily::Pext})
      Cases.push_back({Key, Family});
  return Cases;
}

TEST_P(FormatFamilyTest, DeterministicOverDistributions) {
  const SynthesizedHash Hash = makeHash();
  for (KeyDistribution Dist : AllKeyDistributions) {
    KeyGenerator Gen(spec(), Dist, 1001);
    for (int I = 0; I != 10; ++I) {
      const std::string Key = Gen.next();
      EXPECT_EQ(Hash(Key), Hash(Key));
    }
  }
}

TEST_P(FormatFamilyTest, SensitiveToEveryVariablePosition) {
  // Changing any single free position must change the hash (xor
  // families are bijective per word; Aes diffuses). This is the
  // correctness core: no key byte that can vary may be dropped.
  const SynthesizedHash Hash = makeHash();
  KeyGenerator Gen(spec(), KeyDistribution::Uniform, 2002);
  const std::string Base = Gen.next();
  for (size_t Pos : spec().variablePositions()) {
    const CharSet &Class = spec().classAt(Pos);
    std::string Mutated = Base;
    // Pick a different admissible byte for this position.
    const uint8_t Old = static_cast<uint8_t>(Base[Pos]);
    const uint8_t New = Class.nth((Class.rankOf(Old) + 1) % Class.size());
    ASSERT_NE(Old, New);
    Mutated[Pos] = static_cast<char>(New);
    EXPECT_NE(Hash(Base), Hash(Mutated))
        << paperKeyName(GetParam().Key) << "/"
        << familyName(GetParam().Family) << " ignores position " << Pos;
  }
}

TEST_P(FormatFamilyTest, CollisionsStayLowOnUniformKeys) {
  const SynthesizedHash Hash = makeHash();
  KeyGenerator Gen(spec(), KeyDistribution::Uniform, 3003);
  const std::vector<std::string> Keys = Gen.distinct(2000);
  std::unordered_set<uint64_t> Hashes;
  for (const std::string &Key : Keys)
    Hashes.insert(Hash(Key));
  // Tolerate a handful of collisions (Aes on short keys, xor folding);
  // anything worse indicates a broken layout.
  EXPECT_GE(Hashes.size() + 20, Keys.size())
      << paperKeyName(GetParam().Key) << "/"
      << familyName(GetParam().Family);
}

TEST_P(FormatFamilyTest, RegexRoundTripYieldsIdenticalHashes) {
  // keybuilder path: abstract -> print -> parse -> abstract must give
  // the same plan, hence the same hash function.
  const KeyPattern Pattern = spec().abstract();
  Expected<FormatSpec> Reparsed = parseRegex(printRegex(Pattern));
  ASSERT_TRUE(Reparsed);
  Expected<HashPlan> PlanA = synthesize(Pattern, GetParam().Family);
  Expected<HashPlan> PlanB =
      synthesize(Reparsed->abstract(), GetParam().Family);
  ASSERT_TRUE(PlanA);
  ASSERT_TRUE(PlanB);
  const SynthesizedHash HashA(PlanA.take());
  const SynthesizedHash HashB(PlanB.take());
  KeyGenerator Gen(spec(), KeyDistribution::Uniform, 4004);
  for (int I = 0; I != 20; ++I) {
    const std::string Key = Gen.next();
    EXPECT_EQ(HashA(Key), HashB(Key));
  }
}

INSTANTIATE_TEST_SUITE_P(AllFormatsAllFamilies, FormatFamilyTest,
                         ::testing::ValuesIn(allCases()), caseName);

// --- Pext bijection sweep --------------------------------------------------

class PextBijectionTest : public ::testing::TestWithParam<PaperKey> {};

TEST_P(PextBijectionTest, NoCollisionsAcrossDistributions) {
  // Section 4.2: Pext achieved zero T-Coll on every paper format, even
  // the ones with more than 64 relevant bits.
  Expected<HashPlan> Plan =
      synthesize(paperKeyFormat(GetParam()).abstract(), HashFamily::Pext);
  ASSERT_TRUE(Plan);
  const SynthesizedHash Hash(Plan.take());
  for (KeyDistribution Dist : AllKeyDistributions) {
    KeyGenerator Gen(paperKeyFormat(GetParam()), Dist, 5005);
    const std::vector<std::string> Keys = Gen.distinct(2000);
    std::unordered_set<uint64_t> Hashes;
    for (const std::string &Key : Keys)
      Hashes.insert(Hash(Key));
    EXPECT_EQ(Hashes.size(), Keys.size()) << distributionName(Dist);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFormats, PextBijectionTest, ::testing::ValuesIn(AllPaperKeys),
    [](const ::testing::TestParamInfo<PaperKey> &Info) {
      return paperKeyName(Info.param);
    });

// --- Synthetic digit-format sweep -------------------------------------------

class DigitWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(DigitWidthTest, PextPacksExactlyFourBitsPerDigit) {
  const int Width = GetParam();
  Expected<FormatSpec> Spec =
      parseRegex("[0-9]{" + std::to_string(Width) + "}");
  ASSERT_TRUE(Spec);
  Expected<HashPlan> Plan =
      synthesize(Spec->abstract(), HashFamily::Pext);
  ASSERT_TRUE(Plan);
  EXPECT_EQ(Plan->FreeBits, static_cast<unsigned>(4 * Width));
  unsigned MaskBits = 0;
  for (const PlanStep &S : Plan->Steps)
    MaskBits += static_cast<unsigned>(__builtin_popcountll(S.Mask));
  EXPECT_EQ(MaskBits, Plan->FreeBits);
}

TEST_P(DigitWidthTest, ExecutorInjectiveUpTo16Digits) {
  const int Width = GetParam();
  if (Width > 16)
    GTEST_SKIP() << "beyond the 64-bit bijection bound";
  Expected<FormatSpec> Spec =
      parseRegex("[0-9]{" + std::to_string(Width) + "}");
  ASSERT_TRUE(Spec);
  Expected<HashPlan> Plan =
      synthesize(Spec->abstract(), HashFamily::Pext);
  ASSERT_TRUE(Plan);
  const SynthesizedHash Hash(Plan.take());
  KeyGenerator Gen(*Spec, KeyDistribution::Uniform, 6006);
  std::unordered_set<uint64_t> Hashes;
  std::unordered_set<std::string> Keys;
  for (int I = 0; I != 2000; ++I) {
    const std::string Key = Gen.next();
    if (!Keys.insert(Key).second)
      continue;
    EXPECT_TRUE(Hashes.insert(Hash(Key)).second) << Key;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, DigitWidthTest,
                         ::testing::Values(8, 9, 10, 12, 16, 24, 32, 64));

} // namespace
