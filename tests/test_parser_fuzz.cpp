//===- tests/test_parser_fuzz.cpp - Parser robustness sweep ---------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fuzzing of the restricted regex parser: random byte
/// strings and random well-formed-ish strings over the metacharacter
/// alphabet must either parse into a consistent FormatSpec or produce a
/// positioned error — never crash, hang, or return an inconsistent
/// spec. Every successfully parsed spec is pushed through abstraction
/// and synthesis to make sure downstream stages tolerate whatever the
/// parser accepts.
///
//===----------------------------------------------------------------------===//

#include "core/regex_parser.h"

#include "core/regex_printer.h"
#include "core/synthesizer.h"

#include <gtest/gtest.h>

#include <random>

using namespace sepe;

namespace {

void checkParseOutcome(const std::string &Input) {
  Expected<FormatSpec> Result = parseRegex(Input);
  if (!Result) {
    // Errors must carry a message and an in-range (or npos) position.
    EXPECT_FALSE(Result.error().Message.empty());
    if (Result.error().Pos != std::string::npos) {
      EXPECT_LE(Result.error().Pos, Input.size());
    }
    return;
  }
  const FormatSpec &Spec = *Result;
  EXPECT_GE(Spec.maxLength(), Spec.minLength());
  EXPECT_LE(Spec.maxLength(), MaxRegexWidth);
  EXPECT_FALSE(Spec.empty());
  for (const CharSet &Class : Spec.classes())
    EXPECT_FALSE(Class.empty());

  // Downstream stages must accept anything the parser accepts.
  const KeyPattern Pattern = Spec.abstract();
  EXPECT_EQ(Pattern.maxLength(), Spec.maxLength());
  Expected<HashPlan> Plan = synthesize(Pattern, HashFamily::Pext);
  if (Plan) {
    // And the printer must produce a reparsable regex.
    Expected<FormatSpec> Round = parseRegex(printRegex(Pattern));
    ASSERT_TRUE(Round) << "print(" << Input << ") failed to reparse";
    EXPECT_EQ(Round->abstract(), Pattern);
  }
}

TEST(ParserFuzzTest, RandomByteStringsNeverCrash) {
  std::mt19937_64 Rng(0xf22);
  for (int Case = 0; Case != 3000; ++Case) {
    const size_t Len = Rng() % 40;
    std::string Input(Len, '\0');
    for (char &C : Input)
      C = static_cast<char>(Rng() & 0xFF);
    checkParseOutcome(Input);
  }
}

TEST(ParserFuzzTest, MetacharacterSoupNeverCrashes) {
  // Strings biased toward the grammar's alphabet reach deeper parser
  // states than raw bytes.
  static const char Alphabet[] = R"(abc019(){}[]\.-,?*+|^dswx)";
  std::mt19937_64 Rng(0x50b);
  for (int Case = 0; Case != 5000; ++Case) {
    const size_t Len = Rng() % 24;
    std::string Input(Len, '\0');
    for (char &C : Input)
      C = Alphabet[Rng() % (sizeof(Alphabet) - 1)];
    checkParseOutcome(Input);
  }
}

TEST(ParserFuzzTest, MutatedPaperRegexes) {
  // Single-character mutations of known-good regexes exercise the
  // error paths adjacent to real inputs.
  const std::vector<std::string> Bases = {
      R"(\d{3}-\d{2}-\d{4})",
      R"((([0-9]{3})\.){3}[0-9]{3})",
      R"(([0-9a-fA-F]{2}-){5}[0-9a-fA-F]{2})",
      R"(https://example\.com/go/[a-z0-9]{20}\.html)",
  };
  static const char Alphabet[] = R"(abc019(){}[]\.-,?*+|^)";
  std::mt19937_64 Rng(0xbadc0de);
  for (const std::string &Base : Bases)
    for (int Case = 0; Case != 400; ++Case) {
      std::string Mutated = Base;
      const unsigned Kind = static_cast<unsigned>(Rng() % 3);
      const size_t Pos = Rng() % Mutated.size();
      if (Kind == 0)
        Mutated[Pos] = Alphabet[Rng() % (sizeof(Alphabet) - 1)];
      else if (Kind == 1)
        Mutated.erase(Pos, 1);
      else
        Mutated.insert(Pos, 1,
                       Alphabet[Rng() % (sizeof(Alphabet) - 1)]);
      checkParseOutcome(Mutated);
    }
}

TEST(ParserFuzzTest, DeepNestingIsBounded) {
  // 200 nested groups must parse (or error) without stack issues.
  std::string Deep;
  for (int I = 0; I != 200; ++I)
    Deep += '(';
  Deep += 'a';
  for (int I = 0; I != 200; ++I)
    Deep += ')';
  checkParseOutcome(Deep);

  std::string Unbalanced(400, '(');
  checkParseOutcome(Unbalanced);
}

} // namespace
