//===- tests/test_low_mix_table.cpp - Low-mixing container ----------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "container/low_mix_table.h"

#include "hashes/murmur.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace sepe;

namespace {

/// Identity-style hash over decimal strings: entropy in the low bits
/// only, the adversarial shape for a most-significant-bit container.
struct NumericHash {
  size_t operator()(const std::string &Key) const {
    size_t Value = 0;
    for (char C : Key)
      if (C >= '0' && C <= '9')
        Value = Value * 10 + static_cast<size_t>(C - '0');
    return Value;
  }
};

TEST(LowMixTableTest, InsertFindErase) {
  LowMixTable<std::string, MurmurStlHash> Table{MurmurStlHash{}};
  EXPECT_TRUE(Table.insert("alpha"));
  EXPECT_FALSE(Table.insert("alpha")) << "duplicate insert";
  EXPECT_TRUE(Table.contains("alpha"));
  EXPECT_FALSE(Table.contains("beta"));
  EXPECT_EQ(Table.size(), 1u);
  EXPECT_TRUE(Table.erase("alpha"));
  EXPECT_FALSE(Table.erase("alpha"));
  EXPECT_TRUE(Table.empty());
}

TEST(LowMixTableTest, GrowsPastInitialBuckets) {
  LowMixTable<std::string, MurmurStlHash> Table{MurmurStlHash{}, 0, 4};
  for (int I = 0; I != 1000; ++I)
    Table.insert("key-" + std::to_string(I));
  EXPECT_EQ(Table.size(), 1000u);
  EXPECT_GE(Table.bucketCount(), 1000u);
  for (int I = 0; I != 1000; ++I)
    EXPECT_TRUE(Table.contains("key-" + std::to_string(I)));
}

TEST(LowMixTableTest, RehashPreservesContents) {
  LowMixTable<std::string, MurmurStlHash> Table{MurmurStlHash{}};
  for (int I = 0; I != 100; ++I)
    Table.insert(std::to_string(I));
  Table.rehash(4096);
  EXPECT_EQ(Table.bucketCount(), 4096u);
  for (int I = 0; I != 100; ++I)
    EXPECT_TRUE(Table.contains(std::to_string(I)));
}

TEST(LowMixTableTest, ZeroDiscardBehavesLikeModulo) {
  // With DiscardBits = 0 and a well-mixed hash, collisions stay near
  // the birthday bound.
  LowMixTable<std::string, MurmurStlHash> Table{MurmurStlHash{}, 0, 4096};
  for (int I = 0; I != 1000; ++I)
    Table.insert("k" + std::to_string(I));
  EXPECT_LT(Table.bucketCollisions(), 300u);
}

TEST(LowMixTableTest, DiscardingBitsPunishesLowEntropyHashes) {
  // RQ7's central effect: an identity-like hash collapses into few
  // buckets once the low bits are discarded.
  const unsigned Discard = 48;
  LowMixTable<std::string, NumericHash> Table{NumericHash{}, Discard, 4096};
  for (int I = 0; I != 1000; ++I)
    Table.insert(std::to_string(100000 + I));
  // All numeric values < 2^20, so every hash >> 48 is zero: one bucket.
  EXPECT_EQ(Table.bucketCollisions(), 999u);
  EXPECT_EQ(Table.maxBucketSize(), 1000u);
  EXPECT_EQ(Table.occupiedBuckets(), 1u);
}

TEST(LowMixTableTest, MixedHashSurvivesDiscarding) {
  LowMixTable<std::string, MurmurStlHash> Table{MurmurStlHash{}, 48, 4096};
  for (int I = 0; I != 1000; ++I)
    Table.insert(std::to_string(100000 + I));
  // A mixing hash keeps its entropy in the high bits too.
  EXPECT_LT(Table.bucketCollisions(), 300u);
}

TEST(LowMixTableTest, FindAfterRehashWithDiscard) {
  LowMixTable<std::string, NumericHash> Table{NumericHash{}, 16, 8};
  for (int I = 0; I != 500; ++I)
    Table.insert(std::to_string(I * 65536 + 7));
  for (int I = 0; I != 500; ++I)
    EXPECT_TRUE(Table.contains(std::to_string(I * 65536 + 7)));
  EXPECT_FALSE(Table.contains("12345"));
}

TEST(LowMixTableTest, PreHashedEntryPointsMatchPlain) {
  // insertHashed/containsHashed/eraseHashed with H == Hasher(K) must be
  // indistinguishable from the hashing overloads — including across the
  // growth rehashes, which re-derive buckets from the stored keys.
  const MurmurStlHash Hash;
  LowMixTable<std::string, MurmurStlHash> Plain{Hash, 8, 4};
  LowMixTable<std::string, MurmurStlHash> Pre{Hash, 8, 4};
  std::vector<std::string> Keys;
  for (int I = 0; I != 300; ++I)
    Keys.push_back("key-" + std::to_string(I));
  for (const std::string &K : Keys) {
    EXPECT_EQ(Pre.insertHashed(K, Hash(K)), Plain.insert(K));
    EXPECT_FALSE(Pre.insertHashed(K, Hash(K))) << "duplicate " << K;
  }
  EXPECT_EQ(Pre.size(), Plain.size());
  EXPECT_EQ(Pre.bucketCollisions(), Plain.bucketCollisions());
  for (const std::string &K : Keys) {
    EXPECT_TRUE(Pre.containsHashed(K, Hash(K)));
    EXPECT_TRUE(Pre.contains(K)) << "plain lookup sees pre-hashed insert";
  }
  EXPECT_FALSE(Pre.containsHashed("absent", Hash(std::string("absent"))));
  for (size_t I = 0; I < Keys.size(); I += 2)
    EXPECT_TRUE(Pre.eraseHashed(Keys[I], Hash(Keys[I])));
  for (size_t I = 0; I != Keys.size(); ++I)
    EXPECT_EQ(Pre.contains(Keys[I]), I % 2 == 1);
}

/// Murmur xored with a seed: lets one hasher type express two genuinely
/// different hash functions, which is what rehashWith swaps between.
struct SeededHash {
  size_t Seed = 0;
  size_t operator()(const std::string &Key) const {
    return MurmurStlHash{}(Key) ^ Seed;
  }
};

TEST(LowMixTableTest, RehashWithPreservesMembership) {
  // Swap the hasher out from under a populated table (the adaptive
  // hot-swap migration, runtime/adaptive_hash.h): every membership and
  // non-membership answer must survive the re-bucketing, under both
  // bucket policies.
  for (unsigned DiscardBits : {0u, 8u}) {
    LowMixTable<std::string, SeededHash> Table{SeededHash{0}, DiscardBits};
    std::vector<std::string> Keys;
    for (int I = 0; I != 500; ++I)
      Keys.push_back("key-" + std::to_string(I));
    for (const std::string &K : Keys)
      Table.insert(K);

    Table.rehashWith(SeededHash{0x9e3779b97f4a7c15ULL});
    EXPECT_EQ(Table.size(), Keys.size());
    for (const std::string &K : Keys)
      EXPECT_TRUE(Table.contains(K)) << "discard " << DiscardBits << ": "
                                     << K;
    EXPECT_FALSE(Table.contains("absent"));
    EXPECT_TRUE(Table.erase(Keys[0]));
    EXPECT_FALSE(Table.contains(Keys[0]))
        << "post-swap erase goes through the new buckets";
  }
}

} // namespace
