//===- tests/test_gperf.cpp - Mini-gperf generator -------------------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "gperf/perfect_hash.h"

#include "keygen/distributions.h"
#include "keygen/paper_formats.h"

#include <gtest/gtest.h>

#include <unordered_set>

using namespace sepe;

namespace {

TEST(GperfTest, PerfectOnSmallKeywordSet) {
  const std::vector<std::string> Keywords = {
      "if",   "else",  "while", "for",    "return", "break",
      "case", "const", "char",  "double", "float",  "int"};
  const PerfectHashFunction Fn = buildPerfectHash(Keywords);
  EXPECT_EQ(Fn.trainingCollisions(), 0u)
      << "a dozen keywords must hash perfectly";
  std::unordered_set<size_t> Hashes;
  for (const std::string &K : Keywords)
    EXPECT_TRUE(Hashes.insert(Fn(K)).second) << K;
}

TEST(GperfTest, DeterministicForFixedSeed) {
  const std::vector<std::string> Keys = {"alpha", "beta", "gamma", "delta"};
  const PerfectHashFunction A = buildPerfectHash(Keys);
  const PerfectHashFunction B = buildPerfectHash(Keys);
  for (const std::string &K : Keys)
    EXPECT_EQ(A(K), B(K));
}

TEST(GperfTest, LengthParticipates) {
  const std::vector<std::string> Keys = {"a", "aa", "aaa"};
  const PerfectHashFunction Fn = buildPerfectHash(Keys);
  EXPECT_EQ(Fn.trainingCollisions(), 0u)
      << "keys differing only in length are separable via the length term";
}

TEST(GperfTest, SelectsFewDistinguishingPositions) {
  // Keys differing only at position 4: one position should be enough.
  const std::vector<std::string> Keys = {"key-A-pad", "key-B-pad",
                                         "key-C-pad"};
  const PerfectHashFunction Fn = buildPerfectHash(Keys);
  EXPECT_EQ(Fn.trainingCollisions(), 0u);
  EXPECT_LE(Fn.positions().size(), 2u);
}

TEST(GperfTest, ImperfectButUsefulOn1000TrainingKeys) {
  // The paper's setup: 1000 random keys. The paper itself observes that
  // gperf's table is *imperfect* at this scale ("the high collision
  // rate is due to the imperfect lookup table"); what matters is that
  // the search separates far better than the untrained table (999
  // collisions) while keeping the hash range dense.
  KeyGenerator Gen(paperKeyFormat(PaperKey::SSN), KeyDistribution::Uniform,
                   77);
  const std::vector<std::string> Keys = Gen.distinct(1000);
  const PerfectHashFunction Fn = buildPerfectHash(Keys);
  EXPECT_LE(Fn.trainingCollisions(), 400u);
  EXPECT_GT(Fn.trainingCollisions(), 0u)
      << "1000 random keys exceed what the dense asso table can separate";
}

TEST(GperfTest, CollidesHeavilyOnUnseenKeys) {
  // The paper's central Gperf observation: perfect on the sample,
  // catastrophic on the full key space (T-Coll 55k for 10k keys).
  KeyGenerator Train(paperKeyFormat(PaperKey::SSN),
                     KeyDistribution::Uniform, 78);
  const PerfectHashFunction Fn = buildPerfectHash(Train.distinct(1000));
  KeyGenerator Fresh(paperKeyFormat(PaperKey::SSN),
                     KeyDistribution::Uniform, 1234);
  std::unordered_set<size_t> Hashes;
  const std::vector<std::string> Unseen = Fresh.distinct(10000);
  for (const std::string &K : Unseen)
    Hashes.insert(Fn(K));
  const size_t Collisions = Unseen.size() - Hashes.size();
  EXPECT_GT(Collisions, Unseen.size() / 2)
      << "the asso tables confine unseen keys to a narrow range";
}

TEST(GperfTest, PropertyRandomizedKeywordSetsAcrossFormats) {
  // Property sweep over large randomized keyword sets: for every paper
  // format and several seeds, (a) the reported training-collision
  // count matches a recount over the training set, (b) the batch path
  // agrees with the scalar path key for key, and (c) rebuilding from
  // the same set reproduces the same function.
  for (const PaperKey Key :
       {PaperKey::SSN, PaperKey::IPv4, PaperKey::MAC, PaperKey::IPv6}) {
    for (const uint64_t Seed : {11u, 222u, 3333u}) {
      KeyGenerator Gen(paperKeyFormat(Key), KeyDistribution::Uniform, Seed);
      const std::vector<std::string> Text = Gen.distinct(2000);
      const std::vector<std::string_view> Keys(Text.begin(), Text.end());
      const PerfectHashFunction Fn = buildPerfectHash(Text);

      std::unordered_set<size_t> Seen;
      size_t Recount = 0;
      for (const std::string_view K : Keys)
        Recount += Seen.insert(Fn(K)).second ? 0 : 1;
      EXPECT_EQ(Fn.trainingCollisions(), Recount)
          << paperKeyName(Key) << " seed " << Seed;

      std::vector<uint64_t> Batch(Keys.size());
      Fn.hashBatch(Keys.data(), Batch.data(), Keys.size());
      for (size_t I = 0; I != Keys.size(); ++I)
        ASSERT_EQ(Batch[I], Fn(Keys[I]))
            << paperKeyName(Key) << " seed " << Seed << " key " << Text[I];

      const PerfectHashFunction Again = buildPerfectHash(Text);
      for (size_t I = 0; I < Keys.size(); I += 97)
        EXPECT_EQ(Again(Keys[I]), Fn(Keys[I]));
    }
  }
}

TEST(GperfTest, PerfectOnRandomizedSetsInTheKeywordRegime) {
  // gperf's home turf is keyword-table scale. Randomized sets drawn
  // from high-entropy formats must stay collision-free there.
  for (const uint64_t Seed : {5u, 50u, 500u}) {
    KeyGenerator Gen(paperKeyFormat(PaperKey::IPv6),
                     KeyDistribution::Uniform, Seed);
    const std::vector<std::string> Text = Gen.distinct(32);
    const PerfectHashFunction Fn = buildPerfectHash(Text);
    EXPECT_EQ(Fn.trainingCollisions(), 0u) << "seed " << Seed;
    std::unordered_set<size_t> Hashes;
    for (const std::string &K : Text)
      EXPECT_TRUE(Hashes.insert(Fn(K)).second) << K;
  }
}

TEST(GperfTest, TableSizeReportsAssoEntries) {
  const std::vector<std::string> Keys = {"one", "two", "six"};
  const PerfectHashFunction Fn = buildPerfectHash(Keys);
  EXPECT_EQ(Fn.tableSize(), Fn.positions().size() * 256);
}

TEST(GperfTest, EmitCContainsAssoTablesAndFunction) {
  const std::vector<std::string> Keys = {"red", "ted", "bed"};
  const PerfectHashFunction Fn = buildPerfectHash(Keys);
  const std::string Code = Fn.emitC("color_hash");
  EXPECT_NE(Code.find("asso0"), std::string::npos);
  EXPECT_NE(Code.find("size_t color_hash(const char *Key, size_t Len)"),
            std::string::npos);
}

TEST(GperfTest, HandlesKeysShorterThanPositions) {
  const std::vector<std::string> Keys = {"longkey-1", "longkey-2", "ab"};
  const PerfectHashFunction Fn = buildPerfectHash(Keys);
  // Hashing a short key must not read out of bounds (positions beyond
  // the key are skipped).
  EXPECT_NO_FATAL_FAILURE((void)Fn("x"));
}

} // namespace
