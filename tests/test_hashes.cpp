//===- tests/test_hashes.cpp - Baseline hash implementations --------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "hashes/city.h"
#include "hashes/fnv.h"
#include "hashes/low_level_hash.h"
#include "hashes/murmur.h"

#include <gtest/gtest.h>

#include <functional>
#include <random>
#include <string_view>
#include <unordered_set>
#include <vector>

using namespace sepe;

namespace {

std::vector<std::string> randomStrings(size_t Count, size_t MaxLen,
                                       uint64_t Seed) {
  std::mt19937_64 Rng(Seed);
  std::vector<std::string> Out;
  Out.reserve(Count);
  for (size_t I = 0; I != Count; ++I) {
    const size_t Len = Rng() % (MaxLen + 1);
    std::string S(Len, '\0');
    for (char &C : S)
      C = static_cast<char>(Rng() & 0xFF);
    Out.push_back(std::move(S));
  }
  return Out;
}

TEST(MurmurTest, MatchesPlatformStdHash) {
  // Our Figure-1 clone must agree bit-for-bit with libstdc++'s
  // std::hash<std::string> on this platform.
  const std::hash<std::string> StdHash;
  const MurmurStlHash Ours;
  for (const std::string &S : randomStrings(500, 40, 1)) {
    EXPECT_EQ(Ours(S), StdHash(S)) << "length " << S.size();
  }
  EXPECT_EQ(Ours(std::string()), StdHash(std::string()));
}

TEST(MurmurTest, SeedChangesResult) {
  const std::string Key = "hello world";
  EXPECT_NE(murmurHashBytes(Key.data(), Key.size(), 1),
            murmurHashBytes(Key.data(), Key.size(), 2));
}

TEST(MurmurTest, TailBytesMatter) {
  // Keys sharing the aligned prefix but differing in the tail.
  const std::string A = "12345678abc";
  const std::string B = "12345678abd";
  EXPECT_NE(MurmurStlHash{}(A), MurmurStlHash{}(B));
}

TEST(FnvTest, MatchesPublishedVectors) {
  // Canonical FNV-1a 64-bit test vectors.
  const auto Fnv = [](const std::string &S) {
    return fnv1aHashBytes(S.data(), S.size(), FnvOffsetBasis64);
  };
  EXPECT_EQ(Fnv(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(Fnv("b"), 0xaf63df4c8601f1a5ULL);
  EXPECT_EQ(Fnv("foobar"), 0x85944171f73967e8ULL);
}

TEST(FnvTest, OrderSensitive) {
  EXPECT_NE(FnvHash{}("ab"), FnvHash{}("ba"));
}

TEST(CityTest, DeterministicAndLengthAware) {
  const CityHash City;
  EXPECT_EQ(City("some key"), City("some key"));
  EXPECT_NE(City(""), City("x"));
}

TEST(CityTest, ExercisesEveryLengthBucket) {
  // CityHash64 has distinct code paths for 0-16, 17-32, 33-64 and >64
  // bytes; make sure each is hit and produces distinct values for
  // near-identical inputs.
  const CityHash City;
  for (size_t Len : {0u, 1u, 3u, 4u, 7u, 8u, 15u, 16u, 17u, 32u, 33u, 63u,
                     64u, 65u, 128u, 333u}) {
    std::string A(Len, 'a');
    EXPECT_EQ(City(A), City(A)) << Len;
    if (Len == 0)
      continue;
    std::string B = A;
    B.back() = 'b';
    EXPECT_NE(City(A), City(B)) << Len;
    std::string C = A;
    C.front() = 'c';
    EXPECT_NE(City(A), City(C)) << Len;
  }
}

TEST(CityTest, FewCollisionsOnRandomInputs) {
  std::unordered_set<uint64_t> Hashes;
  std::unordered_set<std::string> Keys;
  const CityHash City;
  for (const std::string &S : randomStrings(5000, 64, 3)) {
    if (!Keys.insert(S).second)
      continue;
    Hashes.insert(City(S));
  }
  EXPECT_GE(Hashes.size() + 2, Keys.size());
}

TEST(LowLevelHashTest, SeedAndLengthSensitivity) {
  const std::string Key = "the quick brown fox";
  EXPECT_NE(lowLevelHash(Key.data(), Key.size(), 0),
            lowLevelHash(Key.data(), Key.size(), 1));
  EXPECT_NE(LowLevelHashFn{}(""), LowLevelHashFn{}(std::string(1, '\0')))
      << "length participates via the final mix";
}

TEST(LowLevelHashTest, ExercisesEveryLengthBucket) {
  const LowLevelHashFn Hash;
  for (size_t Len : {0u, 1u, 2u, 3u, 4u, 8u, 9u, 16u, 17u, 63u, 64u, 65u,
                     129u, 500u}) {
    std::string A(Len, 'q');
    EXPECT_EQ(Hash(A), Hash(A)) << Len;
    if (Len == 0)
      continue;
    std::string B = A;
    B.back() = 'r';
    EXPECT_NE(Hash(A), Hash(B)) << Len;
  }
}

TEST(LowLevelHashTest, FewCollisionsOnRandomInputs) {
  std::unordered_set<uint64_t> Hashes;
  std::unordered_set<std::string> Keys;
  for (const std::string &S : randomStrings(5000, 96, 9)) {
    if (!Keys.insert(S).second)
      continue;
    Hashes.insert(LowLevelHashFn{}(S));
  }
  EXPECT_GE(Hashes.size() + 2, Keys.size());
}

TEST(BaselineAvalancheTest, SingleBitFlipsChangeManyBits) {
  // Sanity avalanche check for the mixing baselines (not the synthetic
  // low-mixing families): flipping one input bit should flip a healthy
  // number of output bits on average.
  const std::string Base = "avalanche-test-key-0123456789";
  const auto AvgFlips = [&](auto Hash) {
    int Flips = 0, Trials = 0;
    for (size_t Byte = 0; Byte != Base.size(); ++Byte)
      for (int Bit = 0; Bit != 8; ++Bit) {
        std::string Mutated = Base;
        Mutated[Byte] = static_cast<char>(Mutated[Byte] ^ (1 << Bit));
        Flips += __builtin_popcountll(Hash(Base) ^ Hash(Mutated));
        ++Trials;
      }
    return static_cast<double>(Flips) / Trials;
  };
  EXPECT_GT(AvgFlips(MurmurStlHash{}), 24.0);
  EXPECT_GT(AvgFlips(CityHash{}), 24.0);
  EXPECT_GT(AvgFlips(LowLevelHashFn{}), 24.0);
  EXPECT_GT(AvgFlips(FnvHash{}), 20.0);
}

TEST(BaselineBatchTest, InterleavedKernelsHandleMixedLengths) {
  // The FNV and Murmur batch kernels interleave groups of four
  // equal-length keys and must fall back per key when a group mixes
  // lengths; sweep a key set laid out to hit both paths, plus every
  // remainder size.
  std::vector<std::string> Text;
  for (int I = 0; I != 23; ++I)
    Text.push_back(std::string(static_cast<size_t>(I % 2 == 0 ? 12 : 5 + I),
                               static_cast<char>('a' + I)));
  // A run of equal lengths so the interleaved path actually executes.
  for (int I = 0; I != 8; ++I)
    Text.push_back("equal-len-" + std::to_string(I));
  std::vector<std::string_view> Views(Text.begin(), Text.end());
  for (size_t N = 0; N <= Views.size(); ++N) {
    std::vector<uint64_t> Out(N + 1, 0x5a5a5a5a5a5a5a5aULL);
    fnv1aHashBatch(Views.data(), Out.data(), N, FnvOffsetBasis64);
    for (size_t I = 0; I != N; ++I)
      ASSERT_EQ(Out[I], FnvHash{}(Views[I])) << "FNV N=" << N << " i=" << I;
    EXPECT_EQ(Out[N], 0x5a5a5a5a5a5a5a5aULL) << "FNV wrote past N=" << N;

    murmurHashBatch(Views.data(), Out.data(), N, StlHashSeed);
    for (size_t I = 0; I != N; ++I)
      ASSERT_EQ(Out[I], MurmurStlHash{}(Views[I]))
          << "Murmur N=" << N << " i=" << I;
    EXPECT_EQ(Out[N], 0x5a5a5a5a5a5a5a5aULL)
        << "Murmur wrote past N=" << N;
  }
}

} // namespace
