//===- tests/test_executor.cpp - Runtime plan evaluation ------------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "core/executor.h"

#include "core/regex_parser.h"
#include "core/synthesizer.h"
#include "hashes/murmur.h"
#include "keygen/distributions.h"
#include "keygen/paper_formats.h"
#include "support/bit_ops.h"

#include <gtest/gtest.h>

#include <bit>
#include <unordered_set>

using namespace sepe;

namespace {

FormatSpec specOf(const std::string &Regex) {
  Expected<FormatSpec> Spec = parseRegex(Regex);
  EXPECT_TRUE(Spec) << Regex;
  return Spec.take();
}

SynthesizedHash hashOf(const FormatSpec &Spec, HashFamily Family,
                       IsaLevel Isa = IsaLevel::Native,
                       const SynthesisOptions &Options = {}) {
  Expected<HashPlan> Plan = synthesize(Spec.abstract(), Family, Options);
  EXPECT_TRUE(Plan);
  return SynthesizedHash(Plan.take(), Isa);
}

/// Slow reference model for fixed-length xor-family plans.
uint64_t referenceFixedHash(const HashPlan &Plan, const std::string &Key) {
  uint64_t Hash = 0;
  for (const PlanStep &S : Plan.Steps) {
    uint64_t Word = loadU64Le(Key.data() + S.Offset);
    if (Plan.Family == HashFamily::Pext)
      Word = std::rotl(pextSoft(Word, S.Mask), S.Shift);
    Hash ^= Word;
  }
  return Hash;
}

TEST(ExecutorTest, OffXorMatchesTutorialExample) {
  // Figure 5c: IPv4 OffXor is load(0) ^ load(7).
  const FormatSpec Spec = specOf(R"((([0-9]{3})\.){3}[0-9]{3})");
  const SynthesizedHash Hash = hashOf(Spec, HashFamily::OffXor);
  const std::string Key = "192.168.001.255";
  ASSERT_EQ(Hash.plan().Steps.size(), 2u);
  EXPECT_EQ(Hash.plan().Steps[0].Offset, 0u);
  EXPECT_EQ(Hash.plan().Steps[1].Offset, 7u);
  const uint64_t Expected =
      loadU64Le(Key.data()) ^ loadU64Le(Key.data() + 7);
  EXPECT_EQ(Hash(Key), Expected);
}

TEST(ExecutorTest, FixedPlansMatchReferenceModel) {
  for (PaperKey Key : AllPaperKeys) {
    const FormatSpec &Spec = paperKeyFormat(Key);
    for (HashFamily Family : {HashFamily::Naive, HashFamily::OffXor,
                              HashFamily::Pext}) {
      const SynthesizedHash Hash = hashOf(Spec, Family);
      KeyGenerator Gen(Spec, KeyDistribution::Uniform, 42);
      for (int I = 0; I != 50; ++I) {
        const std::string Text = Gen.next();
        EXPECT_EQ(Hash(Text), referenceFixedHash(Hash.plan(), Text))
            << paperKeyName(Key) << "/" << familyName(Family);
      }
    }
  }
}

TEST(ExecutorTest, PortableAndHardwareAgree) {
  // The software pext / AES round must be bit-identical to the hardware
  // instructions for every family and format.
  for (PaperKey Key : AllPaperKeys) {
    const FormatSpec &Spec = paperKeyFormat(Key);
    for (HashFamily Family : {HashFamily::Naive, HashFamily::OffXor,
                              HashFamily::Aes, HashFamily::Pext}) {
      const SynthesizedHash Hw = hashOf(Spec, Family, IsaLevel::Native);
      const SynthesizedHash Soft = hashOf(Spec, Family, IsaLevel::Portable);
      const SynthesizedHash Jetson =
          hashOf(Spec, Family, IsaLevel::NoBitExtract);
      KeyGenerator Gen(Spec, KeyDistribution::Uniform, 7);
      for (int I = 0; I != 25; ++I) {
        const std::string Text = Gen.next();
        EXPECT_EQ(Hw(Text), Soft(Text))
            << paperKeyName(Key) << "/" << familyName(Family);
        EXPECT_EQ(Hw(Text), Jetson(Text))
            << paperKeyName(Key) << "/" << familyName(Family);
      }
    }
  }
}

TEST(ExecutorTest, PextSsnIsInjective) {
  // Figure 12: pext builds a bijection from SSN strings to integers.
  const FormatSpec Spec = specOf(R"(\d{3}-\d{2}-\d{4})");
  const SynthesizedHash Hash = hashOf(Spec, HashFamily::Pext);
  KeyGenerator Gen(Spec, KeyDistribution::Uniform, 99);
  std::unordered_set<uint64_t> Hashes;
  std::unordered_set<std::string> Keys;
  for (int I = 0; I != 5000; ++I) {
    const std::string Text = Gen.next();
    if (!Keys.insert(Text).second)
      continue;
    EXPECT_TRUE(Hashes.insert(Hash(Text)).second)
        << "collision on " << Text;
  }
}

TEST(ExecutorTest, Pext16DigitsIsInjective) {
  // Section 4.2: "a 16 character integer in string format is a bijection
  // with our Pext implementation".
  const FormatSpec Spec = specOf(R"([0-9]{16})");
  const SynthesizedHash Hash = hashOf(Spec, HashFamily::Pext);
  KeyGenerator Gen(Spec, KeyDistribution::Uniform, 123);
  std::unordered_set<uint64_t> Hashes;
  std::unordered_set<std::string> Keys;
  for (int I = 0; I != 5000; ++I) {
    const std::string Text = Gen.next();
    if (!Keys.insert(Text).second)
      continue;
    EXPECT_TRUE(Hashes.insert(Hash(Text)).second);
  }
}

TEST(ExecutorTest, PextIncrementalKeysKeepLowBits) {
  // Example 4.1: with a single pext chunk the hash is the key's numeric
  // value, so consecutive keys land in consecutive buckets.
  const FormatSpec Spec = specOf(R"([0-9]{9})");
  const SynthesizedHash Hash = hashOf(Spec, HashFamily::Pext);
  KeyGenerator Gen(Spec, KeyDistribution::Incremental, 0);
  // Key "000000000" has pext value 0; "000000001" is... digit nibbles
  // packed low-to-high from the little end of the load; verify strict
  // monotone behavior on the last digit instead of absolute values.
  const uint64_t H0 = Hash(Gen.keyForValue(0));
  const uint64_t H1 = Hash(Gen.keyForValue(1));
  const uint64_t H2 = Hash(Gen.keyForValue(2));
  EXPECT_NE(H0, H1);
  EXPECT_EQ(H2 - H1, H1 - H0) << "consecutive keys differ by a constant";
}

TEST(ExecutorTest, FallbackMatchesStlMurmur) {
  const FormatSpec Spec = specOf(R"(\d{4})");
  const SynthesizedHash Hash = hashOf(Spec, HashFamily::OffXor);
  ASSERT_TRUE(Hash.plan().FallbackToStl);
  const std::string Key = "1234";
  EXPECT_EQ(Hash(Key), MurmurStlHash{}(Key));
}

TEST(ExecutorTest, ForcedShortKeysAreInjective) {
  SynthesisOptions Options;
  Options.AllowShortKeys = true;
  const FormatSpec Spec = specOf(R"(\d{4})");
  const SynthesizedHash Hash =
      hashOf(Spec, HashFamily::Pext, IsaLevel::Native, Options);
  std::unordered_set<uint64_t> Hashes;
  KeyGenerator Gen(Spec, KeyDistribution::Incremental, 0);
  for (int I = 0; I != 10000; ++I)
    EXPECT_TRUE(Hashes.insert(Hash(Gen.next())).second);
}

TEST(ExecutorTest, AesDiffersAcrossKeys) {
  const FormatSpec &Spec = paperKeyFormat(PaperKey::MAC);
  const SynthesizedHash Hash = hashOf(Spec, HashFamily::Aes);
  KeyGenerator Gen(Spec, KeyDistribution::Uniform, 5);
  std::unordered_set<uint64_t> Hashes;
  std::unordered_set<std::string> Keys;
  int Distinct = 0;
  for (int I = 0; I != 2000; ++I) {
    const std::string Text = Gen.next();
    if (!Keys.insert(Text).second)
      continue;
    ++Distinct;
    Hashes.insert(Hash(Text));
  }
  // The AES round may collide occasionally on sub-16-byte keys, but the
  // overwhelming majority must be distinct.
  EXPECT_GE(static_cast<int>(Hashes.size()), Distinct - 2);
}

TEST(ExecutorTest, VariableLengthHashesRespectSkipTable) {
  // Keys share a constant prefix; the hash must ignore it and still
  // distinguish the variable parts, including tail bytes.
  const FormatSpec Spec = specOf(R"(order=\d{10}(.){0,6})");
  for (HashFamily Family : {HashFamily::Naive, HashFamily::OffXor,
                            HashFamily::Aes, HashFamily::Pext}) {
    const SynthesizedHash Hash = hashOf(Spec, Family);
    ASSERT_FALSE(Hash.plan().FixedLength);
    EXPECT_NE(Hash("order=0123456789"), Hash("order=0123456780"))
        << familyName(Family);
    EXPECT_NE(Hash("order=0123456789ab"), Hash("order=0123456789ba"))
        << familyName(Family) << ": tail bytes must be order-sensitive";
    EXPECT_NE(Hash("order=0123456789"), Hash("order=0123456789a"))
        << familyName(Family) << ": length must matter";
  }
}

TEST(ExecutorTest, DeterministicAcrossCalls) {
  const FormatSpec &Spec = paperKeyFormat(PaperKey::IPv6);
  for (HashFamily Family : {HashFamily::Naive, HashFamily::OffXor,
                            HashFamily::Aes, HashFamily::Pext}) {
    const SynthesizedHash Hash = hashOf(Spec, Family);
    KeyGenerator Gen(Spec, KeyDistribution::Uniform, 11);
    const std::string Text = Gen.next();
    EXPECT_EQ(Hash(Text), Hash(Text));
  }
}

TEST(ExecutorTest, CopiesShareThePlan) {
  const FormatSpec &Spec = paperKeyFormat(PaperKey::SSN);
  const SynthesizedHash Hash = hashOf(Spec, HashFamily::Pext);
  const SynthesizedHash Copy = Hash;
  EXPECT_EQ(&Hash.plan(), &Copy.plan());
  EXPECT_EQ(Hash("123-45-6789"), Copy("123-45-6789"));
}

TEST(ExecutorTest, InvalidByDefault) {
  SynthesizedHash Hash;
  EXPECT_FALSE(Hash.valid());
}

} // namespace
