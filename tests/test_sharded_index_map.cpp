//===- tests/test_sharded_index_map.cpp - Concurrent sharded map ----------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "container/sharded_index_map.h"

#include "core/inference.h"
#include "core/regex_parser.h"
#include "core/synthesizer.h"
#include "keygen/distributions.h"
#include "keygen/paper_formats.h"
#include "support/json.h"

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>
#include <unordered_map>

using namespace sepe;

namespace {

SynthesizedHash bijectivePext(const std::string &Regex,
                              IsaLevel Isa = IsaLevel::Native) {
  Expected<FormatSpec> Spec = parseRegex(Regex);
  EXPECT_TRUE(Spec);
  Expected<HashPlan> Plan = synthesize(Spec->abstract(), HashFamily::Pext);
  EXPECT_TRUE(Plan);
  EXPECT_TRUE(Plan->Bijective) << Regex;
  return SynthesizedHash(Plan.take(), Isa);
}

KeyPattern patternOf(const std::string &Regex) {
  Expected<FormatSpec> Spec = parseRegex(Regex);
  EXPECT_TRUE(Spec);
  return Spec->abstract();
}

std::vector<std::string> distinctKeys(const std::string &Regex, size_t N,
                                      uint64_t Seed) {
  Expected<FormatSpec> Spec = parseRegex(Regex);
  EXPECT_TRUE(Spec);
  KeyGenerator Gen(*Spec, KeyDistribution::Uniform, Seed);
  return Gen.distinct(N);
}

constexpr const char *SsnRegex = R"(\d{3}-\d{2}-\d{4})";

} // namespace

// --- Shard partition kernel -------------------------------------------------

TEST(ShardPartitionTest, RoutingScrambleIsDecorrelatedFromGroupScramble) {
  // The shard index must not be a function of the in-shard home group:
  // with the same multiplier, every key landing in shard S would be
  // confined to a 1/NumShards slice of that shard's groups. Check that
  // for images that share a shard, the group-scramble high bits spread.
  std::mt19937_64 Rng(7);
  std::vector<uint64_t> SameShard;
  while (SameShard.size() < 64) {
    const uint64_t Image = Rng();
    if (probe::shardOf(Image, 4) == 3)
      SameShard.push_back(Image);
  }
  std::unordered_map<uint64_t, size_t> TopNibbles;
  for (const uint64_t Image : SameShard)
    ++TopNibbles[probe::scramble(Image) >> 60];
  // 64 keys over 16 nibble values: a same-multiplier collapse would put
  // them all in one bucket; decorrelated routing spreads them widely.
  EXPECT_GE(TopNibbles.size(), 8u);
}

TEST(ShardPartitionTest, PartitionEquivalentToPerKeyShardOfAllFormats) {
  // The batch partition is definitionally a stable counting sort by
  // probe::shardOf. Pin that equivalence for every paper format at
  // every ISA level (the images come from the real batch kernels, so a
  // partition/kernel disagreement would surface here), at several shard
  // widths including the degenerate single-shard map.
  for (const PaperKey Key : AllPaperKeys) {
    const FormatSpec Format = paperKeyFormat(Key);
    Expected<HashPlan> Plan =
        synthesize(Format.abstract(), HashFamily::Pext);
    ASSERT_TRUE(Plan) << paperKeyName(Key);
    const HashPlan Taken = Plan.take();
    KeyGenerator Gen(Format, KeyDistribution::Uniform,
                     0x51ab + static_cast<uint64_t>(Key));
    const std::vector<std::string> Keys = Gen.distinct(shard::ChunkSize);
    const std::vector<std::string_view> Views(Keys.begin(), Keys.end());
    for (const IsaLevel Isa :
         {IsaLevel::Native, IsaLevel::NoBitExtract, IsaLevel::Portable}) {
      const SynthesizedHash Hash(Taken, Isa);
      uint64_t Images[shard::ChunkSize];
      Hash.hashBatch(Views.data(), Images, Views.size());
      for (const unsigned Bits : {0u, 2u, 4u, 8u}) {
        uint16_t Order[shard::ChunkSize];
        uint32_t Offsets[256 + 1];
        shard::partitionChunk(Images, Views.size(), Bits, Order, Offsets);
        const size_t NumShards = size_t{1} << Bits;
        ASSERT_EQ(Offsets[0], 0u);
        ASSERT_EQ(Offsets[NumShards], Views.size());
        std::vector<bool> Seen(Views.size(), false);
        for (size_t S = 0; S != NumShards; ++S) {
          for (uint32_t I = Offsets[S]; I != Offsets[S + 1]; ++I) {
            const uint16_t K = Order[I];
            ASSERT_LT(K, Views.size());
            ASSERT_FALSE(Seen[K]) << "index emitted twice";
            Seen[K] = true;
            ASSERT_EQ(probe::shardOf(Images[K], Bits), S)
                << paperKeyName(Key) << " isa " << static_cast<int>(Isa);
            if (I != Offsets[S])
              ASSERT_LT(Order[I - 1], K) << "partition must be stable";
          }
        }
      }
    }
  }
}

// --- Single-threaded semantics ----------------------------------------------

TEST(ShardedIndexMapTest, PutGetEraseBasics) {
  ShardedIndexMap<int> Map(bijectivePext(SsnRegex), patternOf(SsnRegex),
                           /*EpochLabel=*/7, /*ShardCountHint=*/8);
  EXPECT_EQ(Map.shardCount(), 8u);
  EXPECT_EQ(Map.epoch(), 7u);

  EXPECT_TRUE(Map.put("123-45-6789", 1));
  EXPECT_FALSE(Map.put("123-45-6789", 2)) << "first insert wins";
  EXPECT_TRUE(Map.put("000-00-0001", 3));
  EXPECT_EQ(Map.size(), 2u);

  int V = 0;
  ASSERT_TRUE(Map.get("123-45-6789", V));
  EXPECT_EQ(V, 1);
  EXPECT_FALSE(Map.get("999-99-9999", V));
  EXPECT_TRUE(Map.contains("000-00-0001"));

  EXPECT_TRUE(Map.erase("123-45-6789"));
  EXPECT_FALSE(Map.erase("123-45-6789"));
  EXPECT_FALSE(Map.contains("123-45-6789"));
  EXPECT_EQ(Map.size(), 1u);
}

TEST(ShardedIndexMapTest, ShardCountHintRoundsAndClamps) {
  const KeyPattern P = patternOf(SsnRegex);
  EXPECT_EQ(ShardedIndexMap<int>(bijectivePext(SsnRegex), P, 0, 1)
                .shardCount(),
            1u);
  EXPECT_EQ(ShardedIndexMap<int>(bijectivePext(SsnRegex), P, 0, 5)
                .shardCount(),
            8u);
  EXPECT_EQ(ShardedIndexMap<int>(bijectivePext(SsnRegex), P, 0, 1000)
                .shardCount(),
            256u);
}

TEST(ShardedIndexMapTest, BatchOpsMatchScalarOps) {
  ShardedIndexMap<uint64_t> Map(bijectivePext(SsnRegex),
                                patternOf(SsnRegex));
  const std::vector<std::string> Keys = distinctKeys(SsnRegex, 777, 0xb);
  const std::vector<std::string_view> Views(Keys.begin(), Keys.end());
  std::vector<uint64_t> Values(Keys.size());
  for (size_t I = 0; I != Keys.size(); ++I)
    Values[I] = I * 3 + 1;

  EXPECT_EQ(Map.putBatch(Views.data(), Values.data(), Views.size()),
            Views.size());
  EXPECT_EQ(Map.putBatch(Views.data(), Values.data(), Views.size()), 0u)
      << "re-inserting the same batch";
  EXPECT_EQ(Map.size(), Keys.size());

  std::vector<uint64_t> Out(Keys.size(), ~0ull);
  std::vector<uint8_t> Found(Keys.size(), 0);
  EXPECT_EQ(Map.getBatch(Views.data(), Out.data(), Found.data(),
                         Views.size()),
            Views.size());
  for (size_t I = 0; I != Keys.size(); ++I) {
    ASSERT_TRUE(Found[I]);
    ASSERT_EQ(Out[I], Values[I]);
    uint64_t Scalar = 0;
    ASSERT_TRUE(Map.get(Views[I], Scalar));
    ASSERT_EQ(Scalar, Values[I]);
  }

  // Half-erase, then a mixed batch probe sees exactly the survivors.
  for (size_t I = 0; I < Keys.size(); I += 2)
    ASSERT_TRUE(Map.erase(Views[I]));
  EXPECT_EQ(Map.getBatch(Views.data(), Out.data(), Found.data(),
                         Views.size()),
            Keys.size() / 2);
  for (size_t I = 0; I != Keys.size(); ++I)
    ASSERT_EQ(Found[I] != 0, I % 2 == 1) << I;
}

TEST(ShardedIndexMapTest, EntriesSpreadAcrossShards) {
  ShardedIndexMap<uint64_t> Map(bijectivePext(SsnRegex),
                                patternOf(SsnRegex), 0, 16);
  const std::vector<std::string> Keys = distinctKeys(SsnRegex, 4096, 0xc);
  for (size_t I = 0; I != Keys.size(); ++I)
    Map.put(Keys[I], I);
  size_t Occupied = 0;
  for (size_t S = 0; S != Map.shardCount(); ++S) {
    const auto Stats = Map.shardStats(S);
    if (Stats.Size != 0)
      ++Occupied;
    // No shard should swallow a grossly outsized share (mean is 256).
    EXPECT_LT(Stats.Size, Keys.size() / 4) << "shard " << S;
  }
  EXPECT_EQ(Occupied, Map.shardCount());
}

// --- Labeled and guarded entry points ---------------------------------------

TEST(ShardedIndexMapTest, LabeledProbesValidateEpoch) {
  const SynthesizedHash Hash = bijectivePext(SsnRegex);
  ShardedIndexMap<int> Map(Hash, patternOf(SsnRegex), /*EpochLabel=*/3);
  const std::string Key = "123-45-6789";
  const uint64_t Image = Hash(Key);

  bool Inserted = false;
  EXPECT_TRUE(Map.putHashed(Key, Image, 3, 11, Inserted));
  EXPECT_TRUE(Inserted);

  int V = 0;
  EXPECT_EQ(Map.getHashed(Image, 3, V), ProbeResult::Hit);
  EXPECT_EQ(V, 11);
  EXPECT_EQ(Map.getHashed(Hash("999-99-9999"), 3, V), ProbeResult::Miss);

  // Wrong label: nothing probed, nothing written, nothing erased.
  EXPECT_EQ(Map.getHashed(Image, 4, V), ProbeResult::Stale);
  EXPECT_FALSE(Map.putHashed(Key, Image, 4, 12, Inserted));
  bool Erased = true;
  EXPECT_FALSE(Map.eraseHashed(Key, Image, 4, Erased));
  EXPECT_TRUE(Map.contains(Key));

  EXPECT_TRUE(Map.eraseHashed(Key, Image, 3, Erased));
  EXPECT_TRUE(Erased);
  EXPECT_FALSE(Map.contains(Key));
}

TEST(ShardedIndexMapTest, LabeledBatchValidatesEpoch) {
  const SynthesizedHash Hash = bijectivePext(SsnRegex);
  ShardedIndexMap<uint64_t> Map(Hash, patternOf(SsnRegex),
                                /*EpochLabel=*/9);
  const std::vector<std::string> Keys = distinctKeys(SsnRegex, 200, 0xd);
  const std::vector<std::string_view> Views(Keys.begin(), Keys.end());
  std::vector<uint64_t> Images(Keys.size());
  Hash.hashBatch(Views.data(), Images.data(), Views.size());
  std::vector<uint64_t> Values(Keys.size());
  for (size_t I = 0; I != Keys.size(); ++I)
    Values[I] = I;

  size_t Inserted = 0;
  EXPECT_FALSE(Map.putBatchHashed(Views.data(), Images.data(),
                                  Values.data(), Views.size(), 8,
                                  Inserted));
  EXPECT_EQ(Map.size(), 0u) << "stale batch insert must write nothing";
  EXPECT_TRUE(Map.putBatchHashed(Views.data(), Images.data(), Values.data(),
                                 Views.size(), 9, Inserted));
  EXPECT_EQ(Inserted, Views.size());

  std::vector<uint64_t> Out(Keys.size());
  std::vector<uint8_t> Found(Keys.size());
  size_t Hits = 0;
  EXPECT_FALSE(Map.getBatchHashed(Images.data(), 8, Out.data(), Found.data(),
                                  Images.size(), Hits));
  EXPECT_TRUE(Map.getBatchHashed(Images.data(), 9, Out.data(), Found.data(),
                                 Images.size(), Hits));
  EXPECT_EQ(Hits, Keys.size());
  for (size_t I = 0; I != Keys.size(); ++I)
    ASSERT_EQ(Out[I], I);
}

TEST(ShardedIndexMapTest, GuardedProbesRejectNonConformingKeys) {
  ShardedIndexMap<int> Map(bijectivePext(SsnRegex), patternOf(SsnRegex));
  bool Inserted = false;
  ASSERT_TRUE(Map.putGuarded("123-45-6789", 5, Inserted));
  EXPECT_TRUE(Inserted);

  int V = 0;
  EXPECT_EQ(Map.getGuarded("123-45-6789", V), ProbeResult::Hit);
  EXPECT_EQ(V, 5);
  EXPECT_EQ(Map.getGuarded("000-00-0000", V), ProbeResult::Miss);
  // Wrong shape: the guard turns it away before any image probe (an
  // image probe with a non-conforming key would be unsound).
  EXPECT_EQ(Map.getGuarded("not-an-ssn!", V), ProbeResult::NotAdmitted);
  EXPECT_FALSE(Map.putGuarded("not-an-ssn!", 6, Inserted));
  bool Erased = false;
  EXPECT_FALSE(Map.eraseGuarded("not-an-ssn!", Erased));
  EXPECT_EQ(Map.size(), 1u);

  ASSERT_TRUE(Map.eraseGuarded("123-45-6789", Erased));
  EXPECT_TRUE(Erased);
}

// --- Migration --------------------------------------------------------------

TEST(ShardedIndexMapTest, MigratePreservesEveryLiveMapping) {
  const SynthesizedHash Hash = bijectivePext(SsnRegex);
  ShardedIndexMap<uint64_t> Map(Hash, patternOf(SsnRegex),
                                /*EpochLabel=*/0, 8);
  const std::vector<std::string> Keys = distinctKeys(SsnRegex, 3000, 0xe);
  for (size_t I = 0; I != Keys.size(); ++I)
    Map.put(Keys[I], I);
  // Erase a third so the journal holds dead keys the sweep must skip.
  for (size_t I = 0; I < Keys.size(); I += 3)
    Map.erase(Keys[I]);
  const size_t LiveBefore = Map.size();

  // Re-synthesize the same format (a fresh equivalent plan) under a new
  // label: keys scatter to new shards through the new plan's images.
  Map.migrate(bijectivePext(SsnRegex), patternOf(SsnRegex),
              /*NewLabel=*/1);
  EXPECT_EQ(Map.epoch(), 1u);
  EXPECT_EQ(Map.migrations(), 1u);
  EXPECT_EQ(Map.size(), LiveBefore);
  for (size_t I = 0; I != Keys.size(); ++I) {
    uint64_t V = ~0ull;
    if (I % 3 == 0) {
      EXPECT_FALSE(Map.get(Keys[I], V)) << "erased key resurrected";
    } else {
      ASSERT_TRUE(Map.get(Keys[I], V)) << Keys[I];
      ASSERT_EQ(V, I);
    }
  }

  // Journals compact to the live keyset as a migration side effect.
  size_t JournalTotal = 0;
  for (size_t S = 0; S != Map.shardCount(); ++S)
    JournalTotal += Map.shardStats(S).JournalLen;
  EXPECT_EQ(JournalTotal, LiveBefore);

  // And a second migration on top of the first works the same.
  Map.migrate(bijectivePext(SsnRegex), patternOf(SsnRegex), 2);
  EXPECT_EQ(Map.size(), LiveBefore);
  uint64_t V = 0;
  ASSERT_TRUE(Map.get(Keys[1], V));
  EXPECT_EQ(V, 1u);
}

TEST(ShardedIndexMapTest, MigrateUnderConcurrentTraffic) {
  // The acceptance property, in-process: resident keys must never miss
  // while migrations run under full read/write load. Also the TSan
  // target for the seal + dual-write protocol.
  const SynthesizedHash Hash = bijectivePext(SsnRegex);
  ShardedIndexMap<uint64_t> Map(Hash, patternOf(SsnRegex),
                                /*EpochLabel=*/0, 8);
  const std::vector<std::string> Keys = distinctKeys(SsnRegex, 2048, 0xf);
  const size_t Resident = Keys.size() / 2;
  for (size_t I = 0; I != Resident; ++I)
    Map.put(Keys[I], I);

  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> FailedLookups{0};

  std::vector<std::thread> Workers;
  for (int T = 0; T != 2; ++T)
    Workers.emplace_back([&, T] {
      std::mt19937_64 Rng(100 + T);
      uint64_t Out[shard::ChunkSize];
      uint8_t Found[shard::ChunkSize];
      std::string_view Batch[shard::ChunkSize];
      while (!Stop.load(std::memory_order_relaxed)) {
        // Scalar resident lookups...
        for (int R = 0; R != 32; ++R) {
          const size_t I = Rng() % Resident;
          uint64_t V = ~0ull;
          if (!Map.get(Keys[I], V) || V != I)
            FailedLookups.fetch_add(1, std::memory_order_relaxed);
        }
        // ...and a resident batch, which must fully hit too.
        const size_t Base = Rng() % (Resident - shard::ChunkSize);
        for (size_t I = 0; I != shard::ChunkSize; ++I)
          Batch[I] = Keys[Base + I];
        Map.getBatch(Batch, Out, Found, shard::ChunkSize);
        for (size_t I = 0; I != shard::ChunkSize; ++I)
          if (!Found[I] || Out[I] != Base + I)
            FailedLookups.fetch_add(1, std::memory_order_relaxed);
      }
    });
  Workers.emplace_back([&] {
    // Churn writer on the non-resident half.
    std::mt19937_64 Rng(55);
    while (!Stop.load(std::memory_order_relaxed)) {
      const size_t I = Resident + Rng() % (Keys.size() - Resident);
      if (Rng() & 1)
        Map.put(Keys[I], I);
      else
        Map.erase(Keys[I]);
    }
  });

  for (uint64_t Label = 1; Label <= 4; ++Label)
    Map.migrate(bijectivePext(SsnRegex), patternOf(SsnRegex), Label);
  Stop.store(true, std::memory_order_relaxed);
  for (std::thread &W : Workers)
    W.join();

  EXPECT_EQ(FailedLookups.load(), 0u);
  EXPECT_EQ(Map.epoch(), 4u);
  EXPECT_EQ(Map.migrations(), 4u);
  for (size_t I = 0; I != Resident; ++I) {
    uint64_t V = ~0ull;
    ASSERT_TRUE(Map.get(Keys[I], V)) << Keys[I];
    ASSERT_EQ(V, I);
  }
}

TEST(ShardedIndexMapTest, NoTornEpochUnderConcurrentMigrations) {
  // Label, hash and pattern live in one published Table: a reader that
  // hashes through hasher() and immediately probes with the epoch it
  // read must either be consistent (Hit) or cleanly told it straddled a
  // swap (Stale) — never a silent wrong-table probe. Detection: each
  // generation G writes value G for a sentinel key; a torn probe would
  // return a value from a different generation than the label claimed.
  // Because getHashed validates the label against the table it probes,
  // a reader whose epoch() and hasher() loads straddle a swap can only
  // get Stale: the label admits the probe only when epoch, hash and
  // shards all came from the same generation (epochs are monotone, so
  // label == active epoch pins the hasher() load to the same table).
  // Hence for an always-present key, Hit-with-the-value and Stale are
  // the only legal outcomes; a Miss or a wrong value is a torn epoch.
  const std::string Sentinel = "271-82-8182";
  ShardedIndexMap<uint64_t> Map(bijectivePext(SsnRegex),
                                patternOf(SsnRegex), 0, 4);
  Map.put(Sentinel, 42);

  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Torn{0};
  std::vector<std::thread> Readers;
  for (int T = 0; T != 3; ++T)
    Readers.emplace_back([&] {
      while (!Stop.load(std::memory_order_relaxed)) {
        const uint64_t Epoch = Map.epoch();
        const uint64_t Image = Map.hasher()(Sentinel);
        uint64_t V = ~0ull;
        const ProbeResult R = Map.getHashed(Image, Epoch, V);
        if (R == ProbeResult::Miss ||
            (R == ProbeResult::Hit && V != 42))
          Torn.fetch_add(1, std::memory_order_relaxed);
      }
    });

  for (uint64_t Label = 1; Label != 30; ++Label)
    Map.migrate(bijectivePext(SsnRegex), patternOf(SsnRegex), Label);
  Stop.store(true, std::memory_order_relaxed);
  for (std::thread &R : Readers)
    R.join();
  EXPECT_EQ(Torn.load(), 0u);
}

// --- Per-shard contention counters ------------------------------------------

TEST(ShardedIndexMapTest, ContentionCountersTrackAcquisitions) {
  ShardedIndexMap<uint64_t> Map(bijectivePext(SsnRegex), patternOf(SsnRegex),
                                /*EpochLabel=*/0, /*ShardCountHint=*/8);
  const std::vector<std::string> Keys = distinctKeys(SsnRegex, 64, 0xc0de);
  for (size_t I = 0; I != Keys.size(); ++I)
    Map.put(Keys[I], I);
  uint64_t V = 0;
  for (const std::string &Key : Keys)
    EXPECT_TRUE(Map.get(Key, V));

  ShardedIndexMap<uint64_t>::ShardContention Sum;
  for (size_t S = 0; S != Map.shardCount(); ++S) {
    const auto C = Map.shardContention(S);
    Sum.SharedAcquires += C.SharedAcquires;
    Sum.SharedContended += C.SharedContended;
    Sum.UniqueAcquires += C.UniqueAcquires;
    Sum.UniqueContended += C.UniqueContended;
  }
  // One write acquisition per put, one read acquisition per get; a
  // single thread can never lose a try-lock.
  EXPECT_EQ(Sum.UniqueAcquires, Keys.size());
  EXPECT_EQ(Sum.SharedAcquires, Keys.size());
  EXPECT_EQ(Sum.UniqueContended, 0u);
  EXPECT_EQ(Sum.SharedContended, 0u);
}

TEST(ShardedIndexMapTest, ContentionJsonParsesAndSumsMatch) {
  ShardedIndexMap<uint64_t> Map(bijectivePext(SsnRegex), patternOf(SsnRegex),
                                /*EpochLabel=*/7, /*ShardCountHint=*/4);
  const std::vector<std::string> Keys = distinctKeys(SsnRegex, 32, 0x7e57);
  for (size_t I = 0; I != Keys.size(); ++I)
    Map.put(Keys[I], I);

  Expected<json::Value> Doc = json::parse(Map.contentionJson());
  ASSERT_TRUE(Doc);
  EXPECT_EQ(Doc->numberOr("epoch", -1), 7.0);
  const json::Value *Shards = Doc->find("shards");
  ASSERT_NE(Shards, nullptr);
  ASSERT_TRUE(Shards->isArray());
  ASSERT_EQ(Shards->array().size(), Map.shardCount());
  double Unique = 0;
  for (const json::Value &Row : Shards->array())
    Unique += Row.numberOr("unique_acquires", 0);
  EXPECT_EQ(Unique, static_cast<double>(Keys.size()));
  const json::Value *Totals = Doc->find("totals");
  ASSERT_NE(Totals, nullptr);
  EXPECT_EQ(Totals->numberOr("unique_acquires", -1),
            static_cast<double>(Keys.size()));
}

TEST(ShardedIndexMapTest, ContentionResetsWithMigration) {
  // Counters live on the active generation's shards: after a migrate
  // the new epoch starts from (nearly) zero — only the migration's own
  // successor-side dual-write/copy acquisitions are visible.
  ShardedIndexMap<uint64_t> Map(bijectivePext(SsnRegex), patternOf(SsnRegex),
                                /*EpochLabel=*/0, /*ShardCountHint=*/4);
  const std::vector<std::string> Keys = distinctKeys(SsnRegex, 48, 0x3316);
  for (size_t I = 0; I != Keys.size(); ++I)
    Map.put(Keys[I], I);
  uint64_t ReadsBefore = 0;
  uint64_t V = 0;
  for (const std::string &Key : Keys)
    Map.get(Key, V);
  for (size_t S = 0; S != Map.shardCount(); ++S)
    ReadsBefore += Map.shardContention(S).SharedAcquires;
  EXPECT_EQ(ReadsBefore, Keys.size());

  Map.migrate(bijectivePext(SsnRegex), patternOf(SsnRegex), /*Epoch=*/1);
  uint64_t ReadsAfter = 0;
  for (size_t S = 0; S != Map.shardCount(); ++S)
    ReadsAfter += Map.shardContention(S).SharedAcquires;
  EXPECT_EQ(ReadsAfter, 0u) << "new generation starts fresh";
}
