//===- tests/test_gpt_like.cpp - The simulated Gpt baseline ---------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "hashes/gpt_like.h"

#include "keygen/distributions.h"

#include <gtest/gtest.h>

#include <unordered_set>

using namespace sepe;

namespace {

TEST(GptLikeTest, SsnIsTheNumberItself) {
  EXPECT_EQ(gptLikeHash(PaperKey::SSN, "123-45-6789"), 123456789u);
  EXPECT_EQ(gptLikeHash(PaperKey::SSN, "000-00-0000"), 0u);
}

TEST(GptLikeTest, CpfIsTheNumberItself) {
  EXPECT_EQ(gptLikeHash(PaperKey::CPF, "123.456.789-09"), 12345678909ULL);
}

TEST(GptLikeTest, MacIsTheAddressValue) {
  EXPECT_EQ(gptLikeHash(PaperKey::MAC, "00-00-00-00-00-01"), 1u);
  EXPECT_EQ(gptLikeHash(PaperKey::MAC, "ff-ff-ff-ff-ff-ff"),
            0xffffffffffffULL);
  EXPECT_EQ(gptLikeHash(PaperKey::MAC, "DE-AD-be-ef-00-42"),
            0xdeadbeef0042ULL);
}

TEST(GptLikeTest, Ipv4CollidesOnOctetPermutations) {
  // The paper's Gpt function is dominated by IPv4 collisions (7,857 of
  // 7,865); our simulation reproduces the commutative weakness.
  EXPECT_EQ(gptLikeHash(PaperKey::IPv4, "001.002.003.004"),
            gptLikeHash(PaperKey::IPv4, "004.003.002.001"));
  EXPECT_EQ(gptLikeHash(PaperKey::IPv4, "010.000.000.000"),
            gptLikeHash(PaperKey::IPv4, "000.000.000.010"));
}

TEST(GptLikeTest, Ipv4StillSeparatesDifferentSums) {
  EXPECT_NE(gptLikeHash(PaperKey::IPv4, "001.002.003.004"),
            gptLikeHash(PaperKey::IPv4, "001.002.003.005"));
}

TEST(GptLikeTest, Ipv6IsInjectiveOnRandomKeys) {
  KeyGenerator Gen(paperKeyFormat(PaperKey::IPv6), KeyDistribution::Uniform,
                   21);
  std::unordered_set<uint64_t> Hashes;
  std::unordered_set<std::string> Keys;
  for (int I = 0; I != 3000; ++I) {
    const std::string Key = Gen.next();
    if (!Keys.insert(Key).second)
      continue;
    EXPECT_TRUE(Hashes.insert(gptLikeHash(PaperKey::IPv6, Key)).second)
        << Key;
  }
}

TEST(GptLikeTest, UrlsIgnoreTheConstantPrefix) {
  KeyGenerator Gen(paperKeyFormat(PaperKey::URL1), KeyDistribution::Uniform,
                   31);
  const std::string A = Gen.next();
  // Mutating a prefix byte must not change the hash (the simulated
  // prompt tells the model the prefix is constant).
  std::string B = A;
  B[0] = 'H';
  EXPECT_EQ(gptLikeHash(PaperKey::URL1, A), gptLikeHash(PaperKey::URL1, B));
  // Mutating the slug must.
  std::string C = A;
  C[25] = C[25] == 'a' ? 'b' : 'a';
  EXPECT_NE(gptLikeHash(PaperKey::URL1, A), gptLikeHash(PaperKey::URL1, C));
}

TEST(GptLikeTest, IntsUsesEveryDigit) {
  KeyGenerator Gen(paperKeyFormat(PaperKey::INTS),
                   KeyDistribution::Incremental, 0);
  const std::string A = Gen.keyForValue(0);
  for (size_t Pos : {0u, 50u, 99u}) {
    std::string B = A;
    B[Pos] = '7';
    EXPECT_NE(gptLikeHash(PaperKey::INTS, A), gptLikeHash(PaperKey::INTS, B))
        << "digit " << Pos;
  }
}

TEST(GptLikeTest, FunctorDispatchesOnFormat) {
  const GptHash SsnHash{PaperKey::SSN};
  EXPECT_EQ(SsnHash(std::string("123-45-6789")), 123456789u);
}

TEST(GptLikeTest, LowCollisionsOnNonIpv4Formats) {
  // Mirrors Section 4.2's observation: the Gpt concentration is on
  // IPv4; other formats stay (nearly) collision-free.
  for (PaperKey Key : {PaperKey::SSN, PaperKey::CPF, PaperKey::MAC,
                       PaperKey::URL1}) {
    KeyGenerator Gen(paperKeyFormat(Key), KeyDistribution::Uniform, 61);
    std::unordered_set<uint64_t> Hashes;
    const std::vector<std::string> Keys = Gen.distinct(3000);
    for (const std::string &K : Keys)
      Hashes.insert(gptLikeHash(Key, K));
    EXPECT_GE(Hashes.size() + 3, Keys.size()) << paperKeyName(Key);
  }
}

TEST(GptLikeTest, HighCollisionsOnIpv4) {
  KeyGenerator Gen(paperKeyFormat(PaperKey::IPv4), KeyDistribution::Uniform,
                   62);
  std::unordered_set<uint64_t> Hashes;
  const std::vector<std::string> Keys = Gen.distinct(10000);
  for (const std::string &K : Keys)
    Hashes.insert(gptLikeHash(PaperKey::IPv4, K));
  const size_t Collisions = Keys.size() - Hashes.size();
  EXPECT_GT(Collisions, 5000u)
      << "octet sums range over [0, 3996]: most keys must collide";
}

} // namespace
