//===- tests/test_metrics_exporter.cpp - Live metrics plane ---------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
//
// Exercises the Prometheus renderer and the two exporters end-to-end:
// the HTTP listener is scraped over a real loopback socket, and the
// snapshot writer is checked against the file it periodically rewrites.
// Both run in either telemetry build flavor — the exposition degrades
// to the flight-recorder gauges plus the compiled-out comment.
//
//===----------------------------------------------------------------------===//

#include "support/metrics_exporter.h"

#include "support/telemetry.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <chrono>
#include <cstdio>
#include <netinet/in.h>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace sepe;

namespace {

/// One blocking GET for \p Path against 127.0.0.1:\p Port; returns the
/// full response (headers + body), or "" on connect failure.
std::string httpGet(uint16_t Port, const std::string &Path = "/metrics") {
  const int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return "";
  sockaddr_in Addr = {};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    ::close(Fd);
    return "";
  }
  const std::string Request =
      "GET " + Path + " HTTP/1.1\r\nHost: x\r\n\r\n";
  (void)!::send(Fd, Request.data(), Request.size(), 0);
  std::string Out;
  char Buffer[4096];
  ssize_t Got = 0;
  while ((Got = ::recv(Fd, Buffer, sizeof(Buffer), 0)) > 0)
    Out.append(Buffer, static_cast<size_t>(Got));
  ::close(Fd);
  return Out;
}

TEST(MetricsRenderTest, CarriesTelemetryAndTraceGauges) {
  const std::string Text = metrics::renderPrometheus();
  // The flight-recorder gauges are present in every build flavor.
  EXPECT_NE(Text.find("sepe_trace_emitted"), std::string::npos);
  EXPECT_NE(Text.find("sepe_trace_dropped"), std::string::npos);
  EXPECT_NE(Text.find("sepe_trace_occupancy"), std::string::npos);
}

TEST(MetricsRenderTest, AppendsExtraSection) {
  const std::string Text = metrics::renderPrometheus(
      [] { return std::string("extra_metric 42\n"); });
  EXPECT_NE(Text.find("extra_metric 42"), std::string::npos);
}

TEST(MetricsServerTest, ServesPrometheusOverLoopback) {
  metrics::MetricsServer Server;
  // Port 0: the kernel picks a free ephemeral port, so the test never
  // collides with a busy machine.
  ASSERT_TRUE(Server.start(0, [] {
    return std::string("test_server_extra 1\n");
  }));
  ASSERT_NE(Server.port(), 0);
  const std::string Response = httpGet(Server.port());
  EXPECT_NE(Response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(Response.find("text/plain"), std::string::npos);
  EXPECT_NE(Response.find("sepe_trace_emitted"), std::string::npos);
  EXPECT_NE(Response.find("test_server_extra 1"), std::string::npos);
  Server.stop();
  EXPECT_GE(Server.requestsServed(), 1u);
  // A second start must work after stop().
  ASSERT_TRUE(Server.start(0));
  EXPECT_NE(httpGet(Server.port()).find("200 OK"), std::string::npos);
  Server.stop();
}

TEST(MetricsServerTest, RootAndMetricsBothServeTheExposition) {
  metrics::MetricsServer Server;
  ASSERT_TRUE(Server.start(0));
  for (const char *Path : {"/", "/metrics", "/metrics?name=x"}) {
    const std::string Response = httpGet(Server.port(), Path);
    EXPECT_NE(Response.find("HTTP/1.1 200 OK"), std::string::npos) << Path;
    EXPECT_NE(Response.find("sepe_trace_emitted"), std::string::npos)
        << Path;
  }
  Server.stop();
}

TEST(MetricsServerTest, UnknownPathGetsA404ListingKnownPaths) {
  metrics::MetricsServer Server;
  Server.registerHandler("/hello", "text/plain", [] {
    return std::string("hi\n");
  });
  ASSERT_TRUE(Server.start(0));
  const std::string Response = httpGet(Server.port(), "/nope");
  EXPECT_NE(Response.find("HTTP/1.1 404 Not Found"), std::string::npos);
  EXPECT_NE(Response.find("404 not found: /nope"), std::string::npos);
  EXPECT_NE(Response.find("/metrics"), std::string::npos);
  EXPECT_NE(Response.find("/hello"), std::string::npos)
      << "the 404 body lists mounted endpoints";
  Server.stop();
}

TEST(MetricsServerTest, RegisteredHandlerServesItsOwnContentType) {
  metrics::MetricsServer Server;
  int Calls = 0;
  Server.registerHandler("/status.json", "application/json", [&Calls] {
    ++Calls;
    return std::string("{\"ok\":true}\n");
  });
  ASSERT_TRUE(Server.start(0));
  const std::string Response = httpGet(Server.port(), "/status.json");
  EXPECT_NE(Response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(Response.find("application/json"), std::string::npos);
  EXPECT_NE(Response.find("{\"ok\":true}"), std::string::npos);
  EXPECT_EQ(Calls, 1);
  // The query string never reaches the route match.
  EXPECT_NE(httpGet(Server.port(), "/status.json?v=1").find("200 OK"),
            std::string::npos);
  EXPECT_EQ(Calls, 2);
  Server.stop();
}

TEST(MetricsServerTest, MountedHandlerOverridesABuiltinPath) {
  metrics::MetricsServer Server;
  Server.registerHandler("/metrics", "text/plain", [] {
    return std::string("custom exposition\n");
  });
  ASSERT_TRUE(Server.start(0));
  const std::string Response = httpGet(Server.port(), "/metrics");
  EXPECT_NE(Response.find("custom exposition"), std::string::npos);
  EXPECT_EQ(Response.find("sepe_trace_emitted"), std::string::npos);
  // "/" still serves the built-in renderer.
  EXPECT_NE(httpGet(Server.port(), "/").find("sepe_trace_emitted"),
            std::string::npos);
  Server.stop();
}

TEST(MetricsSnapshotTest, WritesAndRewritesTheFile) {
  const std::string Path =
      std::string(::testing::TempDir()) + "sepe_metrics_snapshot.prom";
  std::remove(Path.c_str());
  {
    metrics::SnapshotWriter Writer;
    Writer.start(Path, 0.05);
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    Writer.stop();
    EXPECT_GE(Writer.snapshotsWritten(), 1u);
  }
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  ASSERT_NE(F, nullptr) << "snapshot file must exist after stop()";
  char Buffer[4096];
  const size_t Got = std::fread(Buffer, 1, sizeof(Buffer), F);
  std::fclose(F);
  const std::string Text(Buffer, Got);
  EXPECT_NE(Text.find("sepe_trace_emitted"), std::string::npos);
  std::remove(Path.c_str());
}

} // namespace
