//===- tests/test_key_pattern.cpp - Key-level quad abstraction ------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "core/key_pattern.h"

#include <gtest/gtest.h>

#include <random>
#include <string_view>

using namespace sepe;

namespace {

std::vector<BytePattern> literalBytes(const std::string &Text) {
  std::vector<BytePattern> Bytes;
  for (char C : Text)
    Bytes.push_back(BytePattern::fromByte(static_cast<uint8_t>(C)));
  return Bytes;
}

TEST(KeyPatternTest, FixedLengthBasics) {
  const KeyPattern P = KeyPattern::fixed(literalBytes("abc"));
  EXPECT_TRUE(P.isFixedLength());
  EXPECT_EQ(P.minLength(), 3u);
  EXPECT_EQ(P.maxLength(), 3u);
  EXPECT_TRUE(P.matches("abc"));
  EXPECT_FALSE(P.matches("abd"));
  EXPECT_FALSE(P.matches("ab"));
  EXPECT_FALSE(P.matches("abcd"));
}

TEST(KeyPatternTest, VariableLengthAcceptsRange) {
  std::vector<BytePattern> Bytes = literalBytes("ab");
  Bytes.push_back(BytePattern::top());
  const KeyPattern P = KeyPattern::variable(std::move(Bytes), 2);
  EXPECT_FALSE(P.isFixedLength());
  EXPECT_TRUE(P.matches("ab"));
  EXPECT_TRUE(P.matches("abX"));
  EXPECT_FALSE(P.matches("a"));
  EXPECT_FALSE(P.matches("abXY"));
}

TEST(KeyPatternTest, FreeBitCountSumsNonConstantBits) {
  // Two constant bytes => 0 free bits; one top byte => 8.
  std::vector<BytePattern> Bytes = literalBytes("ab");
  Bytes.push_back(BytePattern::top());
  const KeyPattern P = KeyPattern::fixed(std::move(Bytes));
  EXPECT_EQ(P.freeBitCount(), 8u);
}

TEST(KeyPatternTest, JoinWidensLengthBounds) {
  const KeyPattern A = KeyPattern::fixed(literalBytes("ab"));
  const KeyPattern B = KeyPattern::fixed(literalBytes("abcd"));
  const KeyPattern J = join(A, B);
  EXPECT_EQ(J.minLength(), 2u);
  EXPECT_EQ(J.maxLength(), 4u);
  EXPECT_TRUE(J.matches("ab"));
  EXPECT_TRUE(J.matches("abcd"));
}

TEST(KeyPatternTest, JoinIsPointwise) {
  const KeyPattern A = KeyPattern::fixed(literalBytes("a0"));
  const KeyPattern B = KeyPattern::fixed(literalBytes("a1"));
  const KeyPattern J = join(A, B);
  EXPECT_TRUE(J.byteAt(0).isConstant());
  EXPECT_FALSE(J.byteAt(1).isConstant());
  EXPECT_TRUE(J.matches("a0"));
  EXPECT_TRUE(J.matches("a1"));
  EXPECT_TRUE(J.matches("a2")) << "quad granularity admits nearby digits";
}

TEST(KeyPatternTest, StrSeparatesBytes) {
  const KeyPattern P = KeyPattern::fixed(literalBytes("JF"));
  EXPECT_EQ(P.str(), "01001010|01000110");
}

/// The per-byte definition matches() is specified against: length in
/// bounds and every position's BytePattern satisfied.
bool matchesReference(const KeyPattern &P, std::string_view Key) {
  if (Key.size() < P.minLength() || Key.size() > P.maxLength())
    return false;
  for (size_t I = 0; I != Key.size(); ++I)
    if (!P.byteAt(I).matches(static_cast<uint8_t>(Key[I])))
      return false;
  return true;
}

TEST(KeyPatternTest, WordMatcherAgreesWithPerByteReference) {
  // Widths straddling the 8-byte word boundary, mixing constant, quad
  // and top positions; probe with mutations at every position.
  std::mt19937_64 Rng(11);
  for (size_t Width : {1u, 7u, 8u, 9u, 15u, 16u, 17u, 31u}) {
    std::vector<BytePattern> Bytes;
    std::string Member;
    for (size_t I = 0; I != Width; ++I) {
      switch (I % 3) {
      case 0:
        Bytes.push_back(BytePattern::fromByte('a' + I % 26));
        Member += static_cast<char>('a' + I % 26);
        break;
      case 1:
        Bytes.push_back(join(BytePattern::fromByte('0'),
                             BytePattern::fromByte('9')));
        Member += '4';
        break;
      default:
        Bytes.push_back(BytePattern::top());
        Member += static_cast<char>(Rng() % 256);
        break;
      }
    }
    const KeyPattern P = KeyPattern::fixed(std::move(Bytes));
    ASSERT_TRUE(P.matches(Member)) << Width;
    for (size_t I = 0; I != Width; ++I)
      for (int Probe = 0; Probe != 8; ++Probe) {
        std::string Key = Member;
        Key[I] = static_cast<char>(Rng() % 256);
        EXPECT_EQ(P.matches(Key), matchesReference(P, Key))
            << "width " << Width << " pos " << I;
      }
  }
}

TEST(KeyPatternTest, WordMatcherAgreesOnVariableLengths) {
  std::vector<BytePattern> Bytes = literalBytes("ab");
  for (int I = 0; I != 10; ++I)
    Bytes.push_back(BytePattern::top());
  const KeyPattern P = KeyPattern::variable(std::move(Bytes), 2);
  std::mt19937_64 Rng(12);
  for (size_t Len = 0; Len != 14; ++Len)
    for (int Probe = 0; Probe != 32; ++Probe) {
      std::string Key;
      for (size_t I = 0; I != Len; ++I)
        Key += static_cast<char>(Probe < 16 && I < 2 ? "ab"[I]
                                                     : Rng() % 256);
      EXPECT_EQ(P.matches(Key), matchesReference(P, Key)) << Len;
    }
}

TEST(KeyPatternTest, MatchesBatchCountsAndFlags) {
  const KeyPattern P = KeyPattern::fixed(literalBytes("abcdefghij"));
  const std::vector<std::string> Keys = {"abcdefghij", "Xbcdefghij",
                                         "abcdefghij", "abcdefghiX",
                                         "short"};
  std::vector<std::string_view> Views(Keys.begin(), Keys.end());
  uint8_t Out[5] = {9, 9, 9, 9, 9};
  EXPECT_EQ(P.matchesBatch(Views.data(), Out, Views.size()), 2u);
  EXPECT_EQ(Out[0], 1);
  EXPECT_EQ(Out[1], 0);
  EXPECT_EQ(Out[2], 1);
  EXPECT_EQ(Out[3], 0);
  EXPECT_EQ(Out[4], 0);
}

} // namespace
