//===- tests/test_key_pattern.cpp - Key-level quad abstraction ------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "core/key_pattern.h"

#include <gtest/gtest.h>

using namespace sepe;

namespace {

std::vector<BytePattern> literalBytes(const std::string &Text) {
  std::vector<BytePattern> Bytes;
  for (char C : Text)
    Bytes.push_back(BytePattern::fromByte(static_cast<uint8_t>(C)));
  return Bytes;
}

TEST(KeyPatternTest, FixedLengthBasics) {
  const KeyPattern P = KeyPattern::fixed(literalBytes("abc"));
  EXPECT_TRUE(P.isFixedLength());
  EXPECT_EQ(P.minLength(), 3u);
  EXPECT_EQ(P.maxLength(), 3u);
  EXPECT_TRUE(P.matches("abc"));
  EXPECT_FALSE(P.matches("abd"));
  EXPECT_FALSE(P.matches("ab"));
  EXPECT_FALSE(P.matches("abcd"));
}

TEST(KeyPatternTest, VariableLengthAcceptsRange) {
  std::vector<BytePattern> Bytes = literalBytes("ab");
  Bytes.push_back(BytePattern::top());
  const KeyPattern P = KeyPattern::variable(std::move(Bytes), 2);
  EXPECT_FALSE(P.isFixedLength());
  EXPECT_TRUE(P.matches("ab"));
  EXPECT_TRUE(P.matches("abX"));
  EXPECT_FALSE(P.matches("a"));
  EXPECT_FALSE(P.matches("abXY"));
}

TEST(KeyPatternTest, FreeBitCountSumsNonConstantBits) {
  // Two constant bytes => 0 free bits; one top byte => 8.
  std::vector<BytePattern> Bytes = literalBytes("ab");
  Bytes.push_back(BytePattern::top());
  const KeyPattern P = KeyPattern::fixed(std::move(Bytes));
  EXPECT_EQ(P.freeBitCount(), 8u);
}

TEST(KeyPatternTest, JoinWidensLengthBounds) {
  const KeyPattern A = KeyPattern::fixed(literalBytes("ab"));
  const KeyPattern B = KeyPattern::fixed(literalBytes("abcd"));
  const KeyPattern J = join(A, B);
  EXPECT_EQ(J.minLength(), 2u);
  EXPECT_EQ(J.maxLength(), 4u);
  EXPECT_TRUE(J.matches("ab"));
  EXPECT_TRUE(J.matches("abcd"));
}

TEST(KeyPatternTest, JoinIsPointwise) {
  const KeyPattern A = KeyPattern::fixed(literalBytes("a0"));
  const KeyPattern B = KeyPattern::fixed(literalBytes("a1"));
  const KeyPattern J = join(A, B);
  EXPECT_TRUE(J.byteAt(0).isConstant());
  EXPECT_FALSE(J.byteAt(1).isConstant());
  EXPECT_TRUE(J.matches("a0"));
  EXPECT_TRUE(J.matches("a1"));
  EXPECT_TRUE(J.matches("a2")) << "quad granularity admits nearby digits";
}

TEST(KeyPatternTest, StrSeparatesBytes) {
  const KeyPattern P = KeyPattern::fixed(literalBytes("JF"));
  EXPECT_EQ(P.str(), "01001010|01000110");
}

} // namespace
