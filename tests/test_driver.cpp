//===- tests/test_driver.cpp - Benchmark driver ---------------------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "driver/experiment.h"

#include "driver/report.h"

#include <gtest/gtest.h>

#include <unordered_set>

using namespace sepe;

namespace {

ExperimentConfig smallConfig() {
  ExperimentConfig Config;
  Config.Spread = 200;
  Config.Affectations = 600;
  return Config;
}

TEST(HashRegistryTest, NamesAreStable) {
  EXPECT_STREQ(hashKindName(HashKind::Stl), "STL");
  EXPECT_STREQ(hashKindName(HashKind::Abseil), "Abseil");
  EXPECT_STREQ(hashKindName(HashKind::Pext), "Pext");
  EXPECT_TRUE(isSynthetic(HashKind::Naive));
  EXPECT_FALSE(isSynthetic(HashKind::City));
}

TEST(HashRegistryTest, EveryKindHashesEveryFormat) {
  for (PaperKey Key : AllPaperKeys) {
    const HashFunctionSet Set = HashFunctionSet::create(Key);
    KeyGenerator Gen(paperKeyFormat(Key), KeyDistribution::Uniform, 3);
    const std::string Text = Gen.next();
    for (HashKind Kind : AllHashKinds) {
      const size_t H1 = Set.hash(Kind, Text);
      const size_t H2 = Set.hash(Kind, Text);
      EXPECT_EQ(H1, H2) << hashKindName(Kind) << "/" << paperKeyName(Key);
    }
  }
}

TEST(HashRegistryTest, VisitMatchesHash) {
  const HashFunctionSet Set = HashFunctionSet::create(PaperKey::SSN);
  const std::string Key = "123-45-6789";
  for (HashKind Kind : AllHashKinds) {
    const size_t Direct = Set.hash(Kind, Key);
    const size_t Visited =
        Set.visit(Kind, [&](const auto &H) -> size_t { return H(Key); });
    EXPECT_EQ(Direct, Visited) << hashKindName(Kind);
  }
}

TEST(HashRegistryTest, StlKindMatchesStdHash) {
  const HashFunctionSet Set = HashFunctionSet::create(PaperKey::SSN);
  const std::string Key = "321-54-9876";
  EXPECT_EQ(Set.hash(HashKind::Stl, Key), std::hash<std::string>{}(Key));
}

TEST(WorkloadTest, BatchedScheduleHasThreePhases) {
  ExperimentConfig Config = smallConfig();
  Config.Mode = ExecMode::Batched;
  const Workload Work = makeWorkload(PaperKey::SSN, Config);
  ASSERT_EQ(Work.Schedule.size(), Config.Affectations);
  EXPECT_EQ(Work.Keys.size(), Config.Spread);
  const size_t Third = Config.Affectations / 3;
  for (size_t I = 0; I != Third; ++I)
    EXPECT_EQ(Work.Schedule[I].first, Workload::Op::Insert);
  for (size_t I = Third; I != 2 * Third; ++I)
    EXPECT_EQ(Work.Schedule[I].first, Workload::Op::Search);
  EXPECT_EQ(Work.Schedule.back().first, Workload::Op::Erase);
}

TEST(WorkloadTest, InterweavedFirstHalfInserts) {
  ExperimentConfig Config = smallConfig();
  Config.Mode = ExecMode::Inter70_20;
  const Workload Work = makeWorkload(PaperKey::SSN, Config);
  for (size_t I = 0; I != Config.Affectations / 2; ++I)
    EXPECT_EQ(Work.Schedule[I].first, Workload::Op::Insert);
}

TEST(WorkloadTest, InterweavedRespectsProbabilities) {
  ExperimentConfig Config = smallConfig();
  Config.Affectations = 20000;
  Config.Mode = ExecMode::Inter40_30;
  const Workload Work = makeWorkload(PaperKey::SSN, Config);
  size_t Inserts = 0, Searches = 0, Erases = 0;
  for (size_t I = Config.Affectations / 2; I != Work.Schedule.size(); ++I) {
    switch (Work.Schedule[I].first) {
    case Workload::Op::Insert:
      ++Inserts;
      break;
    case Workload::Op::Search:
      ++Searches;
      break;
    case Workload::Op::Erase:
      ++Erases;
      break;
    }
  }
  const double Total = static_cast<double>(Inserts + Searches + Erases);
  EXPECT_NEAR(Inserts / Total, 0.4, 0.03);
  EXPECT_NEAR(Searches / Total, 0.3, 0.03);
  EXPECT_NEAR(Erases / Total, 0.3, 0.03);
}

TEST(WorkloadTest, DeterministicForFixedSeed) {
  const Workload A = makeWorkload(PaperKey::MAC, smallConfig());
  const Workload B = makeWorkload(PaperKey::MAC, smallConfig());
  EXPECT_EQ(A.Keys, B.Keys);
  EXPECT_EQ(A.Schedule, B.Schedule);
}

TEST(ExperimentTest, RunsForEveryContainerKind) {
  const HashFunctionSet Set = HashFunctionSet::create(PaperKey::SSN);
  for (ContainerKind Container : AllContainerKinds) {
    ExperimentConfig Config = smallConfig();
    Config.Container = Container;
    const Workload Work = makeWorkload(PaperKey::SSN, Config);
    const ExperimentResult Result =
        runExperiment(Work, Config, HashKind::Stl, Set);
    EXPECT_GT(Result.BTimeMs, 0.0) << containerKindName(Container);
    EXPECT_GT(Result.HTimeMs, 0.0);
  }
}

TEST(ExperimentTest, PextHasZeroTrueCollisionsOnSsn) {
  const HashFunctionSet Set = HashFunctionSet::create(PaperKey::SSN);
  const ExperimentConfig Config = smallConfig();
  const Workload Work = makeWorkload(PaperKey::SSN, Config);
  const ExperimentResult Result =
      runExperiment(Work, Config, HashKind::Pext, Set);
  EXPECT_EQ(Result.TrueCollisions, 0u);
}

TEST(ExperimentTest, GperfCollidesMost) {
  const HashFunctionSet Set = HashFunctionSet::create(PaperKey::SSN);
  ExperimentConfig Config = smallConfig();
  Config.Spread = 2000;
  Config.Affectations = 2000;
  const Workload Work = makeWorkload(PaperKey::SSN, Config);
  const ExperimentResult Gperf =
      runExperiment(Work, Config, HashKind::Gperf, Set);
  const ExperimentResult Stl =
      runExperiment(Work, Config, HashKind::Stl, Set);
  EXPECT_GT(Gperf.TrueCollisions, Stl.TrueCollisions + 100);
  EXPECT_GT(Gperf.BucketCollisions, Stl.BucketCollisions);
}

TEST(ExperimentTest, CountTrueCollisionsAgreesWithResult) {
  const HashFunctionSet Set = HashFunctionSet::create(PaperKey::IPv4);
  const ExperimentConfig Config = smallConfig();
  const Workload Work = makeWorkload(PaperKey::IPv4, Config);
  const ExperimentResult Result =
      runExperiment(Work, Config, HashKind::Gpt, Set);
  EXPECT_EQ(Result.TrueCollisions,
            countTrueCollisions(Work.Keys, HashKind::Gpt, Set));
}

TEST(ExperimentTest, StandardGridHas144Cells) {
  const std::vector<ExperimentConfig> Grid = standardGrid(1000);
  EXPECT_EQ(Grid.size(), 144u);
  // All seeds distinct so workloads differ.
  std::unordered_set<uint64_t> Seeds;
  for (const ExperimentConfig &Config : Grid)
    Seeds.insert(Config.Seed);
  EXPECT_EQ(Seeds.size(), Grid.size());
}

TEST(ReportTest, TextTableAligns) {
  TextTable Table({"Function", "B-Time"});
  Table.addRow({"STL", "3.19"});
  Table.addRow({"OffXor", "3.03"});
  const std::string Out = Table.str();
  EXPECT_NE(Out.find("Function"), std::string::npos);
  EXPECT_NE(Out.find("OffXor"), std::string::npos);
  EXPECT_NE(Out.find("----"), std::string::npos);
}

TEST(ReportTest, BoxplotRendersAllBoxes) {
  const BoxStats A = boxStats({1, 2, 3, 4, 5});
  const BoxStats B = boxStats({2, 3, 4, 5, 6});
  const std::string Out = renderBoxplots({"A", "B"}, {A, B});
  EXPECT_NE(Out.find("A |"), std::string::npos);
  EXPECT_NE(Out.find('='), std::string::npos);
  EXPECT_NE(Out.find('*'), std::string::npos);
}

} // namespace
