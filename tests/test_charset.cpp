//===- tests/test_charset.cpp - Exact byte sets ---------------------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "core/charset.h"

#include <gtest/gtest.h>

using namespace sepe;

namespace {

TEST(CharSetTest, SingletonBasics) {
  const CharSet S = CharSet::singleton('x');
  EXPECT_TRUE(S.isSingleton());
  EXPECT_EQ(S.size(), 1u);
  EXPECT_TRUE(S.contains('x'));
  EXPECT_FALSE(S.contains('y'));
  EXPECT_EQ(S.min(), 'x');
  EXPECT_EQ(S.max(), 'x');
}

TEST(CharSetTest, RangeContainsEndpoints) {
  const CharSet S = CharSet::range('0', '9');
  EXPECT_EQ(S.size(), 10u);
  EXPECT_TRUE(S.contains('0'));
  EXPECT_TRUE(S.contains('9'));
  EXPECT_FALSE(S.contains('0' - 1));
  EXPECT_FALSE(S.contains('9' + 1));
}

TEST(CharSetTest, AnyHasAllBytes) {
  EXPECT_EQ(CharSet::any().size(), 256u);
}

TEST(CharSetTest, NthAndRankAreInverse) {
  CharSet S = CharSet::range('a', 'f');
  S |= CharSet::range('0', '9');
  for (size_t Rank = 0; Rank != S.size(); ++Rank) {
    const uint8_t Byte = S.nth(Rank);
    EXPECT_EQ(S.rankOf(Byte), Rank);
  }
}

TEST(CharSetTest, NthEnumeratesAscending) {
  CharSet S = CharSet::range('0', '9');
  S |= CharSet::range('a', 'f');
  EXPECT_EQ(S.nth(0), '0');
  EXPECT_EQ(S.nth(9), '9');
  EXPECT_EQ(S.nth(10), 'a');
  EXPECT_EQ(S.nth(15), 'f');
}

TEST(CharSetTest, UnionMergesMembers) {
  CharSet S = CharSet::singleton('a');
  S |= CharSet::singleton('z');
  EXPECT_EQ(S.size(), 2u);
  EXPECT_TRUE(S.contains('a'));
  EXPECT_TRUE(S.contains('z'));
}

TEST(CharSetTest, AbstractionOfDigitsKeepsHighNibble) {
  const BytePattern P = CharSet::range('0', '9').abstraction();
  EXPECT_EQ(P.constMask(), 0xF0);
  EXPECT_EQ(P.constValue(), 0x30);
}

TEST(CharSetTest, AbstractionOfSingletonIsExact) {
  const BytePattern P = CharSet::singleton(':').abstraction();
  EXPECT_TRUE(P.isConstant());
  EXPECT_EQ(P.constValue(), ':');
}

TEST(CharSetTest, AbstractionOfHexKeepsSomething) {
  // [0-9a-f] spans 0x30-0x39 and 0x61-0x66: only the top bit pair can
  // stay... 0x3 = 0011, 0x6 = 0110 — quad 0 differs (00 vs 01), so in
  // fact nothing above the pair granularity survives except what the
  // join computes; verify soundness instead of a fixed mask.
  CharSet Hex = CharSet::range('0', '9');
  Hex |= CharSet::range('a', 'f');
  const BytePattern P = Hex.abstraction();
  for (unsigned Byte = 0; Byte != 256; ++Byte)
    if (Hex.contains(static_cast<uint8_t>(Byte))) {
      EXPECT_TRUE(P.matches(static_cast<uint8_t>(Byte)));
    }
}

TEST(CharSetTest, AbstractionOfAllBytesIsTop) {
  EXPECT_TRUE(CharSet::any().abstraction().isTop());
}

} // namespace
