//===- tests/test_inference.cpp - Pattern inference (Section 3.1) ---------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "core/inference.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace sepe;

namespace {

TEST(InferenceTest, EmptySetYieldsEmptyPattern) {
  EXPECT_TRUE(inferPattern({}).empty());
}

TEST(InferenceTest, SingleKeyIsFullyConstant) {
  const KeyPattern P = inferPattern({"abc"});
  EXPECT_TRUE(P.isFixedLength());
  for (size_t I = 0; I != 3; ++I)
    EXPECT_TRUE(P.byteAt(I).isConstant());
}

TEST(InferenceTest, IataExampleFromPaper) {
  // Example 3.4: JFK v LaX v GRu. The first byte keeps its upper quad
  // (0100 = upper-case letters); the second byte mixes upper and lower
  // case, keeping only 01.
  const KeyPattern P = inferPattern({"JFK", "LaX", "GRu"});
  EXPECT_EQ(P.byteAt(0).quadAt(0), Quad::pair(0b01));
  EXPECT_EQ(P.byteAt(0).quadAt(1), Quad::pair(0b00));
  EXPECT_EQ(P.byteAt(1).quadAt(0), Quad::pair(0b01));
  EXPECT_TRUE(P.byteAt(1).quadAt(1).isTop());
}

TEST(InferenceTest, ShorterKeysTopTheTail) {
  // Example 3.4's ICAO case: a fourth letter missing in the IATA codes
  // makes the tail position all-top.
  const KeyPattern P = inferPattern({"JFK", "LaX", "GRu", "RJTT"});
  EXPECT_EQ(P.minLength(), 3u);
  EXPECT_EQ(P.maxLength(), 4u);
  EXPECT_TRUE(P.byteAt(3).isTop());
}

TEST(InferenceTest, ResultCoversEveryExample) {
  const std::vector<std::string> Keys = {"123-45-6789", "000-00-0000",
                                         "999-99-9999"};
  const KeyPattern P = inferPattern(Keys);
  for (const std::string &Key : Keys)
    EXPECT_TRUE(P.matches(Key)) << Key;
}

TEST(InferenceTest, SeparatorsStayConstant) {
  const KeyPattern P = inferPattern({"123-45-6789", "987-65-4321"});
  EXPECT_TRUE(P.byteAt(3).isConstant());
  EXPECT_EQ(P.byteAt(3).constValue(), '-');
  EXPECT_TRUE(P.byteAt(6).isConstant());
  EXPECT_FALSE(P.byteAt(0).isConstant());
}

TEST(InferenceTest, TwoGoodExamplesExerciseDigitQuads) {
  // Example 3.6: all-0s and all-5s suffice to free the digit nibble.
  const KeyPattern P = inferPattern({"000.000.000.000", "555.555.555.555"});
  for (size_t I : {0u, 1u, 2u, 4u, 5u, 6u}) {
    EXPECT_EQ(P.byteAt(I).constMask(), 0xF0) << "digit at " << I;
  }
  EXPECT_TRUE(P.byteAt(3).isConstant());
}

TEST(InferenceTest, OrderIndependence) {
  const std::vector<std::string> Keys = {"JFK", "LaX", "GRu"};
  const KeyPattern Forward = inferPattern(Keys);
  const KeyPattern Backward = inferPattern({"GRu", "LaX", "JFK"});
  EXPECT_EQ(Forward, Backward);
}

TEST(InferenceTest, BuilderMatchesBatchInference) {
  const std::vector<std::string> Keys = {"aa:bb", "00:ff", "12:34"};
  PatternBuilder Builder;
  for (const std::string &Key : Keys)
    Builder.addKey(Key);
  EXPECT_EQ(Builder.keyCount(), 3u);
  EXPECT_EQ(Builder.pattern(), inferPattern(Keys));
}

TEST(InferenceTest, StreamSkipsBlankLinesAndCr) {
  std::istringstream In("abc\r\n\nabd\r\n");
  const KeyPattern P = inferPatternFromStream(In);
  EXPECT_EQ(P.maxLength(), 3u);
  EXPECT_TRUE(P.matches("abc"));
  EXPECT_TRUE(P.matches("abd"));
}

TEST(InferenceTest, MoreExamplesOnlyLoosenThePattern) {
  // Monotonicity: adding examples can only move positions up-lattice.
  const KeyPattern Small = inferPattern({"AAA", "AAB"});
  const KeyPattern Large = inferPattern({"AAA", "AAB", "AZz"});
  for (size_t I = 0; I != 3; ++I) {
    const uint8_t SmallMask = Small.byteAt(I).constMask();
    const uint8_t LargeMask = Large.byteAt(I).constMask();
    EXPECT_EQ(LargeMask & SmallMask, LargeMask)
        << "constant bits must only shrink";
  }
}

} // namespace
