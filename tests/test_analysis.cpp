//===- tests/test_analysis.cpp - Load layout and skip tables --------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "core/analysis.h"

#include "core/regex_parser.h"

#include <gtest/gtest.h>

using namespace sepe;

namespace {

KeyPattern patternOf(const std::string &Regex) {
  Expected<FormatSpec> Spec = parseRegex(Regex);
  EXPECT_TRUE(Spec) << Regex;
  return Spec->abstract();
}

TEST(AnalysisTest, ParseRangesSplitsConstAndFree) {
  // "abc" then two digits then "xy": three runs.
  const KeyPattern P = patternOf(R"(abc\d\dxy)");
  const std::vector<ByteRun> Runs = parseRanges(P);
  ASSERT_EQ(Runs.size(), 3u);
  EXPECT_EQ(Runs[0], (ByteRun{0, 3, true}));
  EXPECT_EQ(Runs[1], (ByteRun{3, 5, false}));
  EXPECT_EQ(Runs[2], (ByteRun{5, 7, true}));
}

TEST(AnalysisTest, ParseRangesAllFree) {
  const KeyPattern P = patternOf(R"(\d{10})");
  const std::vector<ByteRun> Runs = parseRanges(P);
  ASSERT_EQ(Runs.size(), 1u);
  EXPECT_FALSE(Runs[0].IsConstant);
  EXPECT_EQ(Runs[0].size(), 10u);
}

TEST(AnalysisTest, FreeMaskHasNibblePerDigit) {
  const KeyPattern P = patternOf(R"(\d{8})");
  EXPECT_EQ(freeMaskAt(P, 0), 0x0f0f0f0f0f0f0f0fULL);
}

TEST(AnalysisTest, FreeMaskZeroOnConstants) {
  const KeyPattern P = patternOf("abcdefgh");
  EXPECT_EQ(freeMaskAt(P, 0), 0u);
}

TEST(AnalysisTest, NaiveLayoutCoversEveryByteWithOverlappingTail) {
  // 11 bytes: loads at 0 and 3 (= 11 - 8), per Section 3.2.2.
  const KeyPattern P = patternOf(R"(\d{3}-\d{2}-\d{4})");
  const std::vector<LoadWord> Loads = computeLoadsAllBytes(P);
  ASSERT_EQ(Loads.size(), 2u);
  EXPECT_EQ(Loads[0].Offset, 0u);
  EXPECT_EQ(Loads[1].Offset, 3u);
}

TEST(AnalysisTest, NaiveLayoutExactMultipleHasNoOverlap) {
  const KeyPattern P = patternOf(R"(\d{16})");
  const std::vector<LoadWord> Loads = computeLoadsAllBytes(P);
  ASSERT_EQ(Loads.size(), 2u);
  EXPECT_EQ(Loads[0].Offset, 0u);
  EXPECT_EQ(Loads[1].Offset, 8u);
}

TEST(AnalysisTest, SkippingLayoutAvoidsConstantWords) {
  // 8 constant bytes then 8 digits: a single load at offset 8.
  const KeyPattern P = patternOf(R"(constant\d{8})");
  const std::vector<LoadWord> Loads = computeLoadsSkippingConst(P);
  ASSERT_EQ(Loads.size(), 1u);
  EXPECT_EQ(Loads[0].Offset, 8u);
  EXPECT_EQ(Loads[0].FreeMask, 0x0f0f0f0f0f0f0f0fULL);
}

TEST(AnalysisTest, SkippingLayoutCoversEveryFreeByte) {
  const std::vector<std::string> Regexes = {
      R"(\d{3}-\d{2}-\d{4})",
      R"((([0-9]{3})\.){3}[0-9]{3})",
      R"(([0-9a-f]{4}:){7}[0-9a-f]{4})",
      R"([0-9]{100})",
      R"(https://example\.com/go/[a-z0-9]{20}\.html)",
      R"(prefix--\d\d--\d\d--suffixx)",
  };
  for (const std::string &Regex : Regexes) {
    const KeyPattern P = patternOf(Regex);
    const std::vector<LoadWord> Loads = computeLoadsSkippingConst(P);
    std::vector<bool> Covered(P.maxLength(), false);
    for (const LoadWord &Load : Loads)
      for (size_t J = 0; J != 8; ++J)
        Covered[Load.Offset + J] = true;
    for (size_t I = 0; I != P.maxLength(); ++I)
      if (!P.byteAt(I).isConstant()) {
        EXPECT_TRUE(Covered[I]) << Regex << " byte " << I;
      }
  }
}

TEST(AnalysisTest, LoadsStayInBounds) {
  const std::vector<std::string> Regexes = {
      R"(\d{3}-\d{2}-\d{4})", R"([0-9]{100})", R"(\d{9})", R"(\d{8})"};
  for (const std::string &Regex : Regexes) {
    const KeyPattern P = patternOf(Regex);
    for (const LoadWord &Load : computeLoadsSkippingConst(P))
      EXPECT_LE(Load.Offset + 8, P.maxLength()) << Regex;
    for (const LoadWord &Load : computeLoadsAllBytes(P))
      EXPECT_LE(Load.Offset + 8, P.maxLength()) << Regex;
  }
}

TEST(AnalysisTest, NewFreeMaskExcludesOverlap) {
  // SSN: loads at 0 and 3 overlap in bytes [3, 8); the second load's
  // NewFreeMask must only keep bytes 8-10 (word bytes 5-7), mirroring
  // masks mk0/mk1 of Figure 12.
  const KeyPattern P = patternOf(R"(\d{3}-\d{2}-\d{4})");
  const std::vector<LoadWord> Loads = computeLoadsSkippingConst(P);
  ASSERT_EQ(Loads.size(), 2u);
  EXPECT_EQ(Loads[0].Offset, 0u);
  EXPECT_EQ(Loads[0].NewFreeMask, Loads[0].FreeMask);
  EXPECT_EQ(Loads[1].Offset, 3u);
  EXPECT_EQ(Loads[1].NewFreeMask & 0xffffffffffULL, 0u)
      << "bytes already covered by the first load must be masked out";
  EXPECT_EQ(Loads[1].NewFreeMask, 0x0f0f0f0000000000ULL);
}

TEST(AnalysisTest, DisjointNewMasksPartitionFreeBits) {
  // Across loads, NewFreeMask bits must never extract the same key bit
  // twice: the total popcount equals the pattern's free-bit count.
  const std::vector<std::string> Regexes = {
      R"(\d{3}-\d{2}-\d{4})", R"((([0-9]{3})\.){3}[0-9]{3})",
      R"([0-9]{100})", R"(([0-9a-f]{4}:){7}[0-9a-f]{4})"};
  for (const std::string &Regex : Regexes) {
    const KeyPattern P = patternOf(Regex);
    unsigned Bits = 0;
    for (const LoadWord &Load : computeLoadsSkippingConst(P))
      Bits += static_cast<unsigned>(__builtin_popcountll(Load.NewFreeMask));
    EXPECT_EQ(Bits, P.freeBitCount()) << Regex;
  }
}

TEST(AnalysisTest, SkipTableForVariableKeys) {
  // 8 constant bytes, 8 digits, then a variable tail.
  Expected<FormatSpec> Spec = parseRegex(R"(constant\d{8}(.){0,4})");
  ASSERT_TRUE(Spec);
  const KeyPattern P = Spec->abstract();
  ASSERT_FALSE(P.isFixedLength());
  const SkipTable Table = buildSkipTable(P);
  ASSERT_EQ(Table.loadCount(), 1u);
  EXPECT_EQ(Table.Skip[0], 8u) << "initial jump over the constant prefix";
  EXPECT_EQ(Table.Skip[1], 8u);
  EXPECT_EQ(Table.TailStart, 16u);
}

TEST(AnalysisTest, SkipTableLoadsStayInGuaranteedPrefix) {
  Expected<FormatSpec> Spec = parseRegex(R"(\d{12}(.){0,9})");
  ASSERT_TRUE(Spec);
  const SkipTable Table = buildSkipTable(Spec->abstract());
  // Only one 8-byte load fits in the 12-byte guaranteed prefix.
  ASSERT_EQ(Table.loadCount(), 1u);
  EXPECT_EQ(Table.Skip[0], 0u);
  EXPECT_EQ(Table.TailStart, 8u);
}

TEST(AnalysisTest, SkipTableEmptyForShortPrefix) {
  Expected<FormatSpec> Spec = parseRegex(R"(\d{4}(.){0,9})");
  ASSERT_TRUE(Spec);
  const SkipTable Table = buildSkipTable(Spec->abstract());
  EXPECT_EQ(Table.loadCount(), 0u);
  EXPECT_EQ(Table.TailStart, 0u);
}

TEST(AnalysisTest, SkipTableSkipsInteriorConstantRun) {
  // digits(8) constant(10) digits(8) tail: two loads with a skip > 8
  // between them (Figure 9's "white tabs").
  Expected<FormatSpec> Spec =
      parseRegex(R"(\d{8}AAAAAAAAAA\d{8}(.){0,4})");
  ASSERT_TRUE(Spec);
  const SkipTable Table = buildSkipTable(Spec->abstract());
  ASSERT_EQ(Table.loadCount(), 2u);
  EXPECT_EQ(Table.Skip[0], 0u);
  EXPECT_EQ(Table.Skip[1], 18u) << "jump over the constant middle";
  EXPECT_EQ(Table.Skip[2], 8u);
  EXPECT_EQ(Table.TailStart, 26u);
}

} // namespace
