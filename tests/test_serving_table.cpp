//===- tests/test_serving_table.cpp - Adaptive sharded serving layer ------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "runtime/serving_table.h"

#include "core/regex_parser.h"
#include "keygen/distributions.h"
#include "keygen/paper_formats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <random>
#include <thread>

using namespace sepe;

namespace {

constexpr const char *SsnRegex = R"(\d{3}-\d{2}-\d{4})";

KeyPattern patternOf(const std::string &Regex) {
  Expected<FormatSpec> Spec = parseRegex(Regex);
  EXPECT_TRUE(Spec);
  return Spec->abstract();
}

std::vector<std::string> distinctKeys(const std::string &Regex, size_t N,
                                      uint64_t Seed) {
  Expected<FormatSpec> Spec = parseRegex(Regex);
  EXPECT_TRUE(Spec);
  KeyGenerator Gen(*Spec, KeyDistribution::Uniform, Seed);
  return Gen.distinct(N);
}

/// Deterministic manual-pump options with the bijective family (the
/// fast lane's soundness condition).
AdaptiveOptions servingOptions() {
  AdaptiveOptions Options;
  Options.Family = HashFamily::Pext;
  Options.Background = false;
  Options.Cooldown = std::chrono::milliseconds(0);
  Options.DriftWindow = 256;
  return Options;
}

/// Copies of \p Keys driven out of \p Pattern through its drift probe.
std::vector<std::string> driftedCopies(const std::vector<std::string> &Keys,
                                       const KeyPattern &Pattern) {
  const DriftProbe Probe = findDriftProbe(Pattern);
  EXPECT_TRUE(Probe.Valid);
  std::vector<std::string> Out(Keys);
  for (std::string &Key : Out)
    Key[Probe.Pos] = Probe.Byte;
  return Out;
}

} // namespace

TEST(ServingTableTest, FastLaneEngagesForBijectivePlans) {
  ServingTable<uint64_t> Table(patternOf(SsnRegex), servingOptions());
  EXPECT_TRUE(Table.hasFastLane());

  EXPECT_TRUE(Table.put("123-45-6789", 1));
  EXPECT_FALSE(Table.put("123-45-6789", 2)) << "first insert wins";
  uint64_t V = 0;
  ASSERT_TRUE(Table.get("123-45-6789", V));
  EXPECT_EQ(V, 1u);
  EXPECT_FALSE(Table.get("999-99-9999", V));

  const auto Stats = Table.stats();
  EXPECT_EQ(Stats.FastSize, 1u) << "conforming key belongs in fast lane";
  EXPECT_EQ(Stats.SpillSize, 0u);

  EXPECT_TRUE(Table.erase("123-45-6789"));
  EXPECT_FALSE(Table.erase("123-45-6789"));
  EXPECT_EQ(Table.size(), 0u);
}

TEST(ServingTableTest, SpillLaneServesNonConformingKeys) {
  ServingTable<uint64_t> Table(patternOf(SsnRegex), servingOptions());
  EXPECT_TRUE(Table.put("definitely-not-an-ssn", 7));
  uint64_t V = 0;
  ASSERT_TRUE(Table.get("definitely-not-an-ssn", V));
  EXPECT_EQ(V, 7u);

  const auto Stats = Table.stats();
  EXPECT_EQ(Stats.FastSize, 0u);
  EXPECT_EQ(Stats.SpillSize, 1u);

  EXPECT_TRUE(Table.erase("definitely-not-an-ssn"));
  EXPECT_EQ(Table.stats().SpillSize, 0u);
}

TEST(ServingTableTest, ColdStartServesFromSpillOnly) {
  // Empty pattern: no generation to synthesize, so every key takes the
  // spill lane until drift sampling infers one.
  ServingTable<uint64_t> Table(KeyPattern{}, servingOptions());
  EXPECT_FALSE(Table.hasFastLane());
  EXPECT_TRUE(Table.put("123-45-6789", 3));
  uint64_t V = 0;
  ASSERT_TRUE(Table.get("123-45-6789", V));
  EXPECT_EQ(V, 3u);
  EXPECT_EQ(Table.stats().SpillSize, 1u);
}

TEST(ServingTableTest, BatchOpsMatchScalarAcrossBothLanes) {
  const KeyPattern Pattern = patternOf(SsnRegex);
  ServingTable<uint64_t> Table(Pattern, servingOptions());
  const std::vector<std::string> InFormat = distinctKeys(SsnRegex, 300, 1);
  const std::vector<std::string> Drifted = driftedCopies(InFormat, Pattern);

  // Interleave the lanes so every batch chunk mixes admitted and
  // rejected keys.
  std::vector<std::string_view> Views;
  std::vector<uint64_t> Values;
  for (size_t I = 0; I != InFormat.size(); ++I) {
    Views.push_back(InFormat[I]);
    Values.push_back(2 * I);
    Views.push_back(Drifted[I]);
    Values.push_back(2 * I + 1);
  }
  EXPECT_EQ(Table.putBatch(Views.data(), Values.data(), Views.size()),
            Views.size());
  EXPECT_EQ(Table.putBatch(Views.data(), Values.data(), Views.size()), 0u)
      << "re-inserting the same batch";
  EXPECT_EQ(Table.stats().FastSize, InFormat.size());
  EXPECT_EQ(Table.stats().SpillSize, Drifted.size());

  std::vector<uint64_t> Out(Views.size(), ~0ull);
  std::vector<uint8_t> Found(Views.size(), 0);
  EXPECT_EQ(Table.getBatch(Views.data(), Out.data(), Found.data(),
                           Views.size()),
            Views.size());
  for (size_t I = 0; I != Views.size(); ++I) {
    ASSERT_TRUE(Found[I]) << Views[I];
    ASSERT_EQ(Out[I], Values[I]);
    uint64_t Scalar = 0;
    ASSERT_TRUE(Table.get(Views[I], Scalar));
    ASSERT_EQ(Scalar, Values[I]);
  }
}

TEST(ServingTableTest, DriftSwapMigrateSweepKeepsEveryKeyVisible) {
  // The full lifecycle, deterministically: load both lanes, drive
  // drifted traffic until the detector trips, pump the re-synthesis
  // (pattern join admits the drifted keys), then maintain() — fast
  // lane migrates to the new generation and the sweep pulls the spill
  // keys in. Every key must be visible with the right value at every
  // step.
  const KeyPattern Pattern = patternOf(SsnRegex);
  AdaptiveOptions Options = servingOptions();
  ServingTable<uint64_t> Table(Pattern, Options, /*ShardCountHint=*/8);
  ASSERT_TRUE(Table.hasFastLane());

  const std::vector<std::string> InFormat = distinctKeys(SsnRegex, 512, 2);
  const std::vector<std::string> Drifted = driftedCopies(InFormat, Pattern);
  for (size_t I = 0; I != InFormat.size(); ++I) {
    Table.put(InFormat[I], I);
    Table.put(Drifted[I], InFormat.size() + I);
  }
  EXPECT_EQ(Table.stats().SpillSize, Drifted.size());

  // Drifted lookups are guard misses: they feed the sampler and trip
  // the drift window.
  for (int Round = 0; Round != 8; ++Round)
    for (size_t I = 0; I != Drifted.size(); ++I) {
      uint64_t V = 0;
      ASSERT_TRUE(Table.get(Drifted[I], V)) << "pre-swap spill lookup";
      ASSERT_EQ(V, InFormat.size() + I);
    }
  ASSERT_TRUE(Table.adaptive().resynthesisPending());
  if (!Table.adaptive().pumpResynthesis())
    GTEST_SKIP() << "joined pattern did not synthesize; lifecycle not "
                    "exercisable for this format";
  const uint64_t NewEpoch = Table.adaptive().epoch();
  EXPECT_EQ(NewEpoch, 1u);

  // Between swap and maintain: fast lane still labeled with the old
  // epoch, every lookup still correct (labeled probes go Stale and
  // redo guarded).
  uint64_t V = 0;
  ASSERT_TRUE(Table.get(InFormat[0], V));
  EXPECT_EQ(V, 0u);

  ASSERT_TRUE(Table.maintain());
  const auto Stats = Table.stats();
  EXPECT_EQ(Stats.FastEpoch, NewEpoch) << "fast lane migrated";
  EXPECT_GE(Stats.Migrations, 1u);
  if (Table.adaptive().pattern().matches(Drifted[0])) {
    EXPECT_EQ(Stats.SpillSize, 0u)
        << "widened pattern admits the drifted keys: sweep moves them";
    EXPECT_EQ(Stats.FastSize, InFormat.size() + Drifted.size());
    EXPECT_GE(Stats.SweptKeys, Drifted.size());
  }

  for (size_t I = 0; I != InFormat.size(); ++I) {
    ASSERT_TRUE(Table.get(InFormat[I], V)) << InFormat[I];
    ASSERT_EQ(V, I);
    ASSERT_TRUE(Table.get(Drifted[I], V)) << Drifted[I];
    ASSERT_EQ(V, InFormat.size() + I);
  }

  // maintain() with nothing to do reports no work.
  EXPECT_FALSE(Table.maintain());
}

TEST(ServingTableTest, HotSwapUnderConcurrentTrafficLosesNoLookups) {
  // The acceptance criterion, in-process (and the TSan target): client
  // threads hammer both lanes while the main thread drives drift ->
  // swap -> migrate -> sweep. Resident keys must hit with the right
  // value on every probe, through every phase.
  const KeyPattern Pattern = patternOf(SsnRegex);
  ServingTable<uint64_t> Table(Pattern, servingOptions(),
                               /*ShardCountHint=*/8);
  ASSERT_TRUE(Table.hasFastLane());

  const std::vector<std::string> Keys = distinctKeys(SsnRegex, 1024, 3);
  const size_t Resident = Keys.size() / 2;
  const std::vector<std::string> Drifted = driftedCopies(
      std::vector<std::string>(Keys.begin(), Keys.begin() + Resident),
      Pattern);
  for (size_t I = 0; I != Resident; ++I) {
    Table.put(Keys[I], I);
    Table.put(Drifted[I], Resident + I);
  }

  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> FailedLookups{0};
  std::vector<std::thread> Workers;
  for (int T = 0; T != 2; ++T)
    Workers.emplace_back([&, T] {
      std::mt19937_64 Rng(200 + T);
      while (!Stop.load(std::memory_order_relaxed)) {
        const size_t I = Rng() % Resident;
        uint64_t V = ~0ull;
        if (!Table.get(Keys[I], V) || V != I)
          FailedLookups.fetch_add(1, std::memory_order_relaxed);
        if (!Table.get(Drifted[I], V) || V != Resident + I)
          FailedLookups.fetch_add(1, std::memory_order_relaxed);
      }
    });
  Workers.emplace_back([&] {
    // Churn writer on the non-resident half of the in-format pool.
    std::mt19937_64 Rng(77);
    while (!Stop.load(std::memory_order_relaxed)) {
      const size_t I = Resident + Rng() % (Keys.size() - Resident);
      if (Rng() & 1)
        Table.put(Keys[I], I);
      else
        Table.erase(Keys[I]);
    }
  });

  // Main thread: drive the lifecycle several times while traffic runs.
  for (int Round = 0; Round != 3; ++Round) {
    if (Table.adaptive().resynthesisPending())
      Table.adaptive().pumpResynthesis();
    Table.maintain();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  Stop.store(true, std::memory_order_relaxed);
  for (std::thread &W : Workers)
    W.join();

  EXPECT_EQ(FailedLookups.load(), 0u);
  if (Table.adaptive().resynthesisPending())
    Table.adaptive().pumpResynthesis();
  Table.maintain();
  for (size_t I = 0; I != Resident; ++I) {
    uint64_t V = ~0ull;
    ASSERT_TRUE(Table.get(Keys[I], V));
    ASSERT_EQ(V, I);
    ASSERT_TRUE(Table.get(Drifted[I], V));
    ASSERT_EQ(V, Resident + I);
  }
}

TEST(ServingTableStaticTest, SealStaticServesSealedKeysExactly) {
  ServingTable<uint64_t> Table(patternOf(SsnRegex), servingOptions());
  const std::vector<std::string> Keys = distinctKeys(SsnRegex, 500, 11);
  std::vector<std::string_view> Views(Keys.begin(), Keys.end());
  for (size_t I = 0; I != Keys.size(); ++I)
    Table.put(Keys[I], I);

  EXPECT_FALSE(Table.staticLaneActive());
  EXPECT_EQ(Table.sealStatic(Views), Keys.size());
  ASSERT_TRUE(Table.staticLaneActive());
  const auto Stats = Table.stats();
  EXPECT_TRUE(Stats.StaticActive);
  EXPECT_EQ(Stats.StaticSize, Keys.size());

  for (size_t I = 0; I != Keys.size(); ++I) {
    uint64_t V = ~0ull;
    ASSERT_TRUE(Table.get(Keys[I], V)) << Keys[I];
    ASSERT_EQ(V, I);
  }
  // Out-of-set keys must miss: the exact key compare catches any
  // fingerprint false positive, so the static lane never serves a
  // wrong value.
  const std::vector<std::string> Absent = distinctKeys(SsnRegex, 500, 12);
  for (const std::string &Key : Absent) {
    uint64_t V = 0;
    bool InSealed = false;
    for (const std::string &K : Keys)
      InSealed |= K == Key;
    if (!InSealed) {
      EXPECT_FALSE(Table.get(Key, V)) << Key;
    }
  }

  // The batch path runs through the MPHF's fused base kernels; it must
  // agree with scalar gets.
  std::vector<uint64_t> Out(Views.size(), ~0ull);
  std::vector<uint8_t> Found(Views.size(), 0);
  EXPECT_EQ(
      Table.getBatch(Views.data(), Out.data(), Found.data(), Views.size()),
      Views.size());
  for (size_t I = 0; I != Views.size(); ++I) {
    ASSERT_TRUE(Found[I]) << Views[I];
    ASSERT_EQ(Out[I], I);
  }
}

TEST(ServingTableStaticTest, SealSnapshotsPresentSubsetAcrossBothLanes) {
  // The seal list may name absent keys (skipped) and spill-lane keys
  // (sealed like any present key: the MPHF's raw-byte fallback handles
  // out-of-format keys).
  ServingTable<uint64_t> Table(patternOf(SsnRegex), servingOptions());
  const std::vector<std::string> InFormat = distinctKeys(SsnRegex, 100, 21);
  for (size_t I = 0; I != InFormat.size(); ++I)
    Table.put(InFormat[I], I);
  Table.put("not-an-ssn-at-all", 777);

  std::vector<std::string_view> SealList(InFormat.begin(), InFormat.end());
  SealList.push_back("not-an-ssn-at-all");
  SealList.push_back("999-99-9999"); // Never inserted.
  EXPECT_EQ(Table.sealStatic(SealList), InFormat.size() + 1);
  EXPECT_EQ(Table.stats().StaticSize, InFormat.size() + 1);

  uint64_t V = 0;
  ASSERT_TRUE(Table.get("not-an-ssn-at-all", V));
  EXPECT_EQ(V, 777u);
  EXPECT_FALSE(Table.get("999-99-9999", V));

  // New puts miss the sealed lane but are served by the dynamic lanes;
  // the lane stays valid because put never overwrites a present key.
  EXPECT_TRUE(Table.put("999-99-9999", 42));
  EXPECT_TRUE(Table.staticLaneActive());
  ASSERT_TRUE(Table.get("999-99-9999", V));
  EXPECT_EQ(V, 42u);
  EXPECT_FALSE(Table.put(InFormat[0], 1000)) << "first insert still wins";
  ASSERT_TRUE(Table.get(InFormat[0], V));
  EXPECT_EQ(V, 0u);
}

TEST(ServingTableStaticTest, EraseOfSealedKeyInvalidatesTheLane) {
  ServingTable<uint64_t> Table(patternOf(SsnRegex), servingOptions());
  const std::vector<std::string> Keys = distinctKeys(SsnRegex, 64, 31);
  std::vector<std::string_view> Views(Keys.begin(), Keys.end());
  for (size_t I = 0; I != Keys.size(); ++I)
    Table.put(Keys[I], I);
  ASSERT_EQ(Table.sealStatic(Views), Keys.size());

  // Erasing a non-sealed key leaves the lane up.
  Table.put("111-11-1111", 99);
  if (Keys.end() == std::find(Keys.begin(), Keys.end(), "111-11-1111")) {
    EXPECT_TRUE(Table.erase("111-11-1111"));
    EXPECT_TRUE(Table.staticLaneActive());
  }

  // Erasing a sealed key must tear the lane down before erase returns:
  // a stale values[mphf(key)] copy may never be served.
  EXPECT_TRUE(Table.erase(Keys[0]));
  EXPECT_FALSE(Table.staticLaneActive());
  uint64_t V = 0;
  EXPECT_FALSE(Table.get(Keys[0], V));
  for (size_t I = 1; I != Keys.size(); ++I) {
    ASSERT_TRUE(Table.get(Keys[I], V)) << "dynamic lanes keep serving";
    ASSERT_EQ(V, I);
  }

  // Re-seal after the erase: one fewer key, and serving resumes.
  EXPECT_EQ(Table.sealStatic(Views), Keys.size() - 1);
  EXPECT_TRUE(Table.staticLaneActive());
}

TEST(ServingTableStaticTest, DropStaticAndEmptySealAreBenign) {
  ServingTable<uint64_t> Table(patternOf(SsnRegex), servingOptions());
  EXPECT_EQ(Table.sealStatic(nullptr, 0), 0u) << "empty seal list";
  EXPECT_FALSE(Table.staticLaneActive());

  const std::vector<std::string> Keys = distinctKeys(SsnRegex, 32, 41);
  std::vector<std::string_view> Views(Keys.begin(), Keys.end());
  EXPECT_EQ(Table.sealStatic(Views), 0u) << "nothing present yet";

  for (size_t I = 0; I != Keys.size(); ++I)
    Table.put(Keys[I], I);
  ASSERT_EQ(Table.sealStatic(Views), Keys.size());
  Table.dropStatic();
  EXPECT_FALSE(Table.staticLaneActive());
  for (size_t I = 0; I != Keys.size(); ++I) {
    uint64_t V = ~0ull;
    ASSERT_TRUE(Table.get(Keys[I], V));
    ASSERT_EQ(V, I);
  }
}

TEST(ServingTableStaticTest, ConcurrentReadersSurviveSealAndDropCycles) {
  // TSan target: readers hammer sealed keys while the main thread
  // seals, drops, and re-seals. Every lookup must hit with the right
  // value regardless of which lane serves it — the retired-storage
  // discipline means a reader mid-probe on a dropped lane is safe.
  ServingTable<uint64_t> Table(patternOf(SsnRegex), servingOptions());
  const std::vector<std::string> Keys = distinctKeys(SsnRegex, 256, 51);
  std::vector<std::string_view> Views(Keys.begin(), Keys.end());
  for (size_t I = 0; I != Keys.size(); ++I)
    Table.put(Keys[I], I);

  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Failed{0};
  std::vector<std::thread> Readers;
  for (int T = 0; T != 3; ++T)
    Readers.emplace_back([&, T] {
      std::mt19937_64 Rng(300 + T);
      uint64_t Batch[16];
      uint8_t Found[16];
      std::string_view Probe[16];
      while (!Stop.load(std::memory_order_relaxed)) {
        const size_t I = Rng() % Keys.size();
        uint64_t V = ~0ull;
        if (!Table.get(Keys[I], V) || V != I)
          Failed.fetch_add(1, std::memory_order_relaxed);
        for (size_t J = 0; J != 16; ++J)
          Probe[J] = Keys[(I + J) % Keys.size()];
        if (Table.getBatch(Probe, Batch, Found, 16) != 16)
          Failed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (int Round = 0; Round != 20; ++Round) {
    ASSERT_EQ(Table.sealStatic(Views), Keys.size());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    Table.dropStatic();
  }
  Stop.store(true, std::memory_order_relaxed);
  for (std::thread &R : Readers)
    R.join();
  EXPECT_EQ(Failed.load(), 0u);
}
