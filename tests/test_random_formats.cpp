//===- tests/test_random_formats.cpp - Fuzz-style format sweep ------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential testing over *randomly generated* key formats, not just
/// the paper's eight: a seeded generator builds arbitrary FormatSpecs
/// (mixed constant runs, digit/hex/letter/full-byte classes, assorted
/// lengths), and every (format x family) pair must satisfy the core
/// contracts: total, deterministic, position-sensitive, and consistent
/// with the regex round trip. This is the suite that catches layout
/// bugs the handpicked formats miss (e.g. mask overflow past 64 bits).
///
//===----------------------------------------------------------------------===//

#include "core/executor.h"
#include "core/regex_parser.h"
#include "core/regex_printer.h"
#include "core/synthesizer.h"
#include "keygen/distributions.h"

#include <gtest/gtest.h>

#include <random>
#include <unordered_set>

using namespace sepe;

namespace {

/// Builds a random fixed-length format of 8 to ~120 bytes.
FormatSpec randomFormat(uint64_t Seed) {
  std::mt19937_64 Rng(Seed);
  std::vector<CharSet> Classes;
  const size_t RunCount = 2 + Rng() % 8;
  for (size_t Run = 0; Run != RunCount; ++Run) {
    const size_t RunLen = 1 + Rng() % 15;
    const unsigned Kind = static_cast<unsigned>(Rng() % 5);
    for (size_t I = 0; I != RunLen; ++I) {
      switch (Kind) {
      case 0: // constant byte
        Classes.push_back(CharSet::singleton(
            static_cast<uint8_t>('!' + Rng() % 90)));
        break;
      case 1: // digits
        Classes.push_back(CharSet::range('0', '9'));
        break;
      case 2: { // hex
        CharSet Hex = CharSet::range('0', '9');
        Hex |= CharSet::range('a', 'f');
        Classes.push_back(Hex);
        break;
      }
      case 3: // letters
        Classes.push_back(CharSet::range('a', 'z'));
        break;
      default: // full byte range
        Classes.push_back(CharSet::any());
        break;
      }
    }
  }
  while (Classes.size() < 8)
    Classes.push_back(CharSet::range('0', '9'));
  return FormatSpec::fixed(std::move(Classes));
}

/// True when the format has at least one non-singleton class (otherwise
/// synthesis rightfully refuses).
bool hasFreeBits(const FormatSpec &Spec) {
  for (const CharSet &Class : Spec.classes())
    if (!Class.isSingleton() && !Class.abstraction().isConstant())
      return true;
  return false;
}

class RandomFormatTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomFormatTest, AllFamiliesSatisfyCoreContracts) {
  const FormatSpec Spec = randomFormat(GetParam());
  const KeyPattern Pattern = Spec.abstract();
  if (!hasFreeBits(Spec))
    GTEST_SKIP() << "degenerate constant format";

  KeyGenerator Gen(Spec, KeyDistribution::Uniform, GetParam() ^ 0xf00d);

  for (HashFamily Family : {HashFamily::Naive, HashFamily::OffXor,
                            HashFamily::Aes, HashFamily::Pext}) {
    Expected<HashPlan> Plan = synthesize(Pattern, Family);
    ASSERT_TRUE(Plan) << familyName(Family);
    const SynthesizedHash Hash(Plan.take());
    const SynthesizedHash Soft(
        std::make_shared<const HashPlan>(Hash.plan()), IsaLevel::Portable);

    const std::string Base = Gen.next();
    ASSERT_TRUE(Spec.matches(Base));

    // Determinism + hardware/software agreement.
    EXPECT_EQ(Hash(Base), Hash(Base));
    EXPECT_EQ(Hash(Base), Soft(Base));

    // Position sensitivity on every free position.
    for (size_t Pos : Spec.variablePositions()) {
      const CharSet &Class = Spec.classAt(Pos);
      if (Class.abstraction().isConstant())
        continue; // Free at class level but constant at quad level.
      std::string Mutated = Base;
      const uint8_t Old = static_cast<uint8_t>(Base[Pos]);
      const uint8_t New =
          Class.nth((Class.rankOf(Old) + 1) % Class.size());
      Mutated[Pos] = static_cast<char>(New);
      if (Old == New)
        continue;
      EXPECT_NE(Hash(Base), Hash(Mutated))
          << familyName(Family) << " format " << GetParam()
          << " ignores position " << Pos;
    }
  }
}

TEST_P(RandomFormatTest, RegexRoundTripPreservesThePattern) {
  const FormatSpec Spec = randomFormat(GetParam());
  const KeyPattern Pattern = Spec.abstract();
  const std::string Regex = printRegex(Pattern);
  Expected<FormatSpec> Reparsed = parseRegex(Regex);
  ASSERT_TRUE(Reparsed) << Regex;
  EXPECT_EQ(Reparsed->abstract(), Pattern) << Regex;
}

TEST_P(RandomFormatTest, PextCollisionFreeOnSamples) {
  const FormatSpec Spec = randomFormat(GetParam());
  if (!hasFreeBits(Spec))
    GTEST_SKIP();
  Expected<HashPlan> Plan =
      synthesize(Spec.abstract(), HashFamily::Pext);
  ASSERT_TRUE(Plan);
  const SynthesizedHash Hash(Plan.take());
  KeyGenerator Gen(Spec, KeyDistribution::Uniform, GetParam() ^ 0xcafe);
  std::unordered_set<uint64_t> Hashes;
  std::unordered_set<std::string> Keys;
  for (int I = 0; I != 500; ++I) {
    const std::string Key = Gen.next();
    if (!Keys.insert(Key).second)
      continue;
    Hashes.insert(Hash(Key));
  }
  EXPECT_GE(Hashes.size() + 2, Keys.size())
      << "format " << GetParam() << " collides unexpectedly often";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFormatTest,
                         ::testing::Range<uint64_t>(1, 41));

} // namespace
