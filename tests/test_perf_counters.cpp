//===- tests/test_perf_counters.cpp - PMU group wrapper -------------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
//
// Exercises both halves of the degradation contract. When the host
// grants perf_event_open (a bare-metal Linux dev box), live counters
// must be plausible: nonzero instructions for a spin loop, more
// instructions for more work, monotonic read()s while enabled. When it
// does not (seccomp-filtered CI containers, perf_event_paranoid,
// non-Linux), every reading must be a well-formed "unavailable"
// fallback: Valid == false, zero counts, zero derived metrics, and a
// toJson() that still parses. Both paths run everywhere — the live
// assertions simply skip where the backend is down, so the suite is
// green in a container where the syscall is denied.
//
//===----------------------------------------------------------------------===//

#include "support/perf_counters.h"

#include "support/json.h"
#include "support/telemetry.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

using namespace sepe;

namespace {

/// Opaque work: enough instructions to register on any live counter.
uint64_t spin(uint64_t Iterations) {
  uint64_t Sink = 0;
  for (uint64_t I = 0; I != Iterations; ++I)
    Sink += I * 2654435761u;
  asm volatile("" : : "r"(Sink) : "memory");
  return Sink;
}

TEST(PerfCounters, ProbeIsConsistent) {
  // available() and unavailableReason() must agree, and repeated calls
  // must return the same cached verdict.
  const bool First = perf::available();
  EXPECT_EQ(First, perf::available());
  if (First)
    EXPECT_EQ(perf::unavailableReason(), "available");
  else
    EXPECT_FALSE(perf::unavailableReason().empty());
}

TEST(PerfCounters, GroupLivenessMatchesProbe) {
  perf::CounterGroup Group;
  EXPECT_EQ(Group.live(), perf::available());
}

TEST(PerfCounters, LiveCountersArePlausible) {
  perf::CounterGroup Group;
  if (!Group.live())
    GTEST_SKIP() << "perf_event_open unavailable: "
                 << perf::unavailableReason();

  perf::CounterReading Reading;
  {
    perf::ScopedCounters Scope(Group, Reading);
    spin(200000);
  }
  ASSERT_TRUE(Reading.Valid);
  EXPECT_GT(Reading.Instructions, 0u);
  EXPECT_GT(Reading.TimeEnabledNs, 0u);
  // A multiply-add loop retires at least one instruction per
  // iteration; anything lower means the counts are garbage.
  EXPECT_GE(Reading.Instructions, 200000u);
  if (Reading.Cycles > 0)
    EXPECT_GT(Reading.ipc(), 0.0);
}

TEST(PerfCounters, MoreWorkMoreInstructions) {
  perf::CounterGroup Group;
  if (!Group.live())
    GTEST_SKIP() << "perf_event_open unavailable: "
                 << perf::unavailableReason();

  perf::CounterReading Small, Large;
  {
    perf::ScopedCounters Scope(Group, Small);
    spin(100000);
  }
  {
    perf::ScopedCounters Scope(Group, Large);
    spin(1000000);
  }
  ASSERT_TRUE(Small.Valid);
  ASSERT_TRUE(Large.Valid);
  // 10x the work: demand a clear separation, not exact ratios, so the
  // test is immune to counter noise and fixed start/stop overhead.
  EXPECT_GT(Large.Instructions, Small.Instructions * 2);
}

TEST(PerfCounters, ReadIsMonotonicWhileRunning) {
  perf::CounterGroup Group;
  if (!Group.live())
    GTEST_SKIP() << "perf_event_open unavailable: "
                 << perf::unavailableReason();

  Group.start();
  spin(50000);
  const perf::CounterReading First = Group.read();
  spin(50000);
  const perf::CounterReading Second = Group.read();
  const perf::CounterReading Final = Group.stop();

  ASSERT_TRUE(First.Valid);
  ASSERT_TRUE(Second.Valid);
  ASSERT_TRUE(Final.Valid);
  EXPECT_GE(Second.Instructions, First.Instructions);
  EXPECT_GE(Final.Instructions, Second.Instructions);
  EXPECT_GE(Second.TimeEnabledNs, First.TimeEnabledNs);
}

TEST(PerfCounters, UnavailableReadingIsWellFormed) {
  // Forge the fallback shape directly so this checks the same
  // invariants on hosts where the backend happens to be live.
  perf::CounterReading Reading;
  EXPECT_FALSE(Reading.Valid);
  EXPECT_EQ(Reading.Cycles, 0u);
  EXPECT_EQ(Reading.ipc(), 0.0);
  EXPECT_EQ(Reading.cyclesPer(1000), 0.0);
  EXPECT_EQ(Reading.instructionsPer(1000), 0.0);
  EXPECT_EQ(Reading.branchMissRate(), 0.0);
  EXPECT_EQ(Reading.cacheMissRate(), 0.0);

  Expected<json::Value> Doc = json::parse(Reading.toJson());
  ASSERT_TRUE(Doc);
  const json::Value *Available = Doc->find("available");
  ASSERT_NE(Available, nullptr);
  EXPECT_TRUE(Available->isBool());
  EXPECT_FALSE(Available->boolean());
  EXPECT_NE(Doc->find("reason"), nullptr);
}

TEST(PerfCounters, StoppedGroupDegradesGracefully) {
  // stop() without start(), and every call on a dead group, must be
  // safe no-ops returning invalid readings — the container contract.
  perf::CounterGroup Group;
  if (Group.live())
    GTEST_SKIP() << "backend live; degradation covered elsewhere";
  Group.start();
  const perf::CounterReading Mid = Group.read();
  const perf::CounterReading End = Group.stop();
  EXPECT_FALSE(Mid.Valid);
  EXPECT_FALSE(End.Valid);
  EXPECT_EQ(End.Instructions, 0u);
}

TEST(PerfCounters, ValidReadingJsonParses) {
  perf::CounterGroup Group;
  if (!Group.live())
    GTEST_SKIP() << "perf_event_open unavailable: "
                 << perf::unavailableReason();

  perf::CounterReading Reading;
  {
    perf::ScopedCounters Scope(Group, Reading);
    spin(100000);
  }
  ASSERT_TRUE(Reading.Valid);
  const Expected<json::Value> Doc = json::parse(Reading.toJson(1000));
  ASSERT_TRUE(Doc);
  EXPECT_GT(Doc->numberOr("instructions", -1), 0.0);
  EXPECT_GE(Doc->numberOr("ipc", -1), 0.0);
  // Units > 0 adds the per-unit metrics.
  EXPECT_NE(Doc->find("cycles_per_unit"), nullptr);
}

TEST(PerfCounters, RecordToTelemetryHandlesBothStates) {
  // Invalid readings must not create counters; valid-shaped ones must.
  telemetry::resetAll();
  telemetry::setEnabled(true);

  perf::CounterReading Invalid;
  perf::recordToTelemetry("test_invalid", Invalid);

  perf::CounterReading Forged;
  Forged.Valid = true;
  Forged.Cycles = 1234;
  Forged.Instructions = 5678;
  perf::recordToTelemetry("test_valid", Forged);

  const std::string Json = telemetry::toJson();
  telemetry::setEnabled(false);
  EXPECT_EQ(Json.find("pmu.test_invalid"), std::string::npos);
  if (telemetry::compiledIn()) {
    EXPECT_NE(Json.find("pmu.test_valid.cycles"), std::string::npos);
    EXPECT_NE(Json.find("pmu.test_valid.instructions"),
              std::string::npos);
  }
}

} // namespace
