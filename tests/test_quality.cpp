//===- tests/test_quality.cpp - Statistical quality plane -----------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
//
// The offline harness: free-bit extraction from format class sets, the
// SAC/bias/uniformity report and its invariants (a bijective Pext plan
// must show zero collisions and full free-bit coverage; Aes must
// out-avalanche the xor families), the JSON row shape. The live side:
// the AdaptiveHash in-format reservoir, QualityMonitor generation
// stamping, and the live-stats JSON/Prometheus surfaces.
//
//===----------------------------------------------------------------------===//

#include "quality/avalanche.h"

#include "core/regex_parser.h"
#include "core/synthesizer.h"
#include "keygen/distributions.h"
#include "keygen/paper_formats.h"
#include "quality/live_stats.h"
#include "quality/monitor.h"
#include "runtime/adaptive_hash.h"
#include "support/json.h"

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

using namespace sepe;
using namespace sepe::quality;

namespace {

FormatSpec ssnSpec() {
  Expected<FormatSpec> Spec = parseRegex(R"(\d{3}-\d{2}-\d{4})");
  EXPECT_TRUE(Spec);
  return *Spec;
}

SynthesizedHash makeHash(const FormatSpec &Format, HashFamily Family) {
  Expected<HashPlan> Plan = synthesize(Format.abstract(), Family);
  EXPECT_TRUE(Plan);
  return SynthesizedHash(Plan.take());
}

TEST(FreeMaskTest, SsnDigitsExposeTheLowNibble) {
  const std::vector<uint8_t> Masks = formatFreeMasks(ssnSpec());
  ASSERT_EQ(Masks.size(), 11u);
  // Digits 0x30..0x39: bits 0..3 vary, bits 4..7 are fixed.
  for (size_t P : {0u, 1u, 2u, 4u, 5u, 7u, 8u, 9u, 10u})
    EXPECT_EQ(Masks[P], 0x0f) << "digit position " << P;
  // The dashes are constant: no free bits.
  EXPECT_EQ(Masks[3], 0x00);
  EXPECT_EQ(Masks[6], 0x00);
}

TEST(FreeMaskTest, SingletonAndFullClassesBracketTheRange) {
  Expected<FormatSpec> Spec = parseRegex(R"(A[a-b])");
  ASSERT_TRUE(Spec);
  const std::vector<uint8_t> Masks = formatFreeMasks(*Spec);
  ASSERT_EQ(Masks.size(), 2u);
  EXPECT_EQ(Masks[0], 0x00) << "singleton class has no free bits";
  EXPECT_EQ(Masks[1], 'a' ^ 'b') << "two-member class frees their xor";
}

TEST(QualityReportTest, BijectivePextHasNoCollisionsAndFullCoverage) {
  const FormatSpec Format = ssnSpec();
  const SynthesizedHash Hash = makeHash(Format, HashFamily::Pext);
  ASSERT_TRUE(Hash.plan().Bijective);
  QualityReport R = measureQuality(Format, Hash);
  R.Format = "SSN";
  EXPECT_EQ(R.Family, "Pext");
  EXPECT_TRUE(R.Bijective);
  EXPECT_EQ(R.FreeBitCount, 36u) << "9 digit positions x 4 free bits";
  EXPECT_EQ(R.Collisions, 0u) << "bijective plan on distinct keys";
  EXPECT_EQ(R.FreeBitCoverage, 1.0) << "no dead free bit in a bijection";
  EXPECT_GT(R.SacKeys, 0u);
  EXPECT_GT(R.UniformKeys, 0u);
  EXPECT_GE(R.SacScore, 0.0);
  EXPECT_LE(R.SacScore, 1.0);
  EXPECT_GE(R.Chi2, 0.0);
  EXPECT_GE(R.MaxSacBias, R.MeanSacBias);
  EXPECT_GE(R.MaxOutputBias, R.MeanOutputBias);
}

TEST(QualityReportTest, AesOutAvalanchesTheXorFamilies) {
  const FormatSpec Format = ssnSpec();
  const QualityReport Aes =
      measureQuality(Format, makeHash(Format, HashFamily::Aes));
  const QualityReport OffXor =
      measureQuality(Format, makeHash(Format, HashFamily::OffXor));
  // OffXor moves each input bit to exactly one output bit, so its SAC
  // matrix is almost entirely 0/1 cells; AES rounds diffuse.
  EXPECT_GT(Aes.SacScore, OffXor.SacScore);
  // A short key gets one effective aesenc round: a byte diffuses to a
  // 4-byte column, not the full state, so ~0.35-0.4 is the honest
  // ceiling here — still an order of magnitude beyond the xor families.
  EXPECT_GT(Aes.SacScore, 0.3);
  EXPECT_LT(OffXor.SacScore, 0.2);
  EXPECT_EQ(OffXor.FreeBitCoverage, 1.0)
      << "xor still may not drop a free bit";
}

TEST(QualityReportTest, MeasuresEveryPaperFamilyAndFormat) {
  // A smoke over the full matrix with small samples: every combination
  // must produce a finite, internally consistent row.
  QualityOptions Small;
  Small.SacKeys = 32;
  Small.BicKeys = 8;
  Small.UniformKeys = 256;
  for (PaperKey Key : AllPaperKeys) {
    const FormatSpec &Format = paperKeyFormat(Key);
    for (HashFamily Family :
         {HashFamily::Naive, HashFamily::OffXor, HashFamily::Aes,
          HashFamily::Pext}) {
      const SynthesizedHash Hash = makeHash(Format, Family);
      QualityReport R = measureQuality(Format, Hash, Small);
      R.Format = paperKeyName(Key);
      EXPECT_GT(R.FreeBitCount, 0u) << R.Format;
      EXPECT_GE(R.SacScore, 0.0) << R.Format << "/" << R.Family;
      EXPECT_LE(R.SacScore, 1.0) << R.Format << "/" << R.Family;
      EXPECT_GT(R.FreeBitCoverage, 0.0) << R.Format << "/" << R.Family;
      if (R.Bijective) {
        EXPECT_EQ(R.Collisions, 0u) << R.Format << "/" << R.Family;
      }
      Expected<json::Value> Doc = json::parse(R.toJson());
      ASSERT_TRUE(Doc) << Doc.error().Message;
      EXPECT_EQ(Doc->stringOr("format", ""), paperKeyName(Key));
      EXPECT_EQ(Doc->stringOr("family", ""), familyName(Family));
      EXPECT_TRUE(Doc->find("sac_score") != nullptr);
      EXPECT_TRUE(Doc->find("max_sac_bias") != nullptr);
      EXPECT_TRUE(Doc->find("chi2") != nullptr);
    }
  }
}

TEST(QualitySamplerTest, AdaptiveHashReservoirsAdmittedKeys) {
  const FormatSpec Format = ssnSpec();
  AdaptiveOptions Options;
  Options.Family = HashFamily::Pext;
  Options.Background = false;
  Options.QualitySampleEvery = 1;
  AdaptiveHash Hash(Format.abstract(), Options);

  KeyGenerator Gen(Format, KeyDistribution::Uniform, 0x9a11);
  const std::vector<std::string> Keys = Gen.distinct(64);
  for (const std::string &Key : Keys)
    (void)Hash(Key);
  // One out-of-format key: must land in the drift reservoir, not the
  // quality one.
  (void)Hash("not-an-ssn!");

  const std::vector<std::string> Sampled = Hash.sampledInFormatKeys();
  EXPECT_EQ(Sampled.size(), Keys.size());
  for (const std::string &Key : Sampled)
    EXPECT_TRUE(Format.matches(Key)) << Key;

  // Batch path samples too (Every=1 collects everything while capacity
  // lasts).
  std::vector<std::string_view> Views(Keys.begin(), Keys.end());
  std::vector<uint64_t> Out(Views.size());
  Hash.hashBatch(Views.data(), Out.data(), Views.size());
  EXPECT_GE(Hash.sampledInFormatKeys().size(), Keys.size());
}

TEST(QualitySamplerTest, DisabledByDefault) {
  const FormatSpec Format = ssnSpec();
  AdaptiveOptions Options;
  Options.Background = false;
  AdaptiveHash Hash(Format.abstract(), Options);
  KeyGenerator Gen(Format, KeyDistribution::Uniform, 0x9a12);
  for (int I = 0; I != 32; ++I)
    (void)Hash(Gen.next());
  EXPECT_TRUE(Hash.sampledInFormatKeys().empty());
}

TEST(QualityMonitorTest, PumpStampsTheGenerationAndPublishes) {
  const FormatSpec Format = ssnSpec();
  AdaptiveOptions Options;
  Options.Family = HashFamily::Pext;
  Options.Background = false;
  Options.QualitySampleEvery = 1;
  AdaptiveHash Hash(Format.abstract(), Options);
  QualityMonitor Monitor(Hash);

  // Below MinKeys: invalid but still generation-stamped and published.
  LiveQualitySample Empty = Monitor.pump(/*MinKeys=*/16);
  EXPECT_FALSE(Empty.Valid);
  EXPECT_EQ(Empty.Generation, Hash.epoch());
  EXPECT_EQ(Empty.SequenceNumber, 1u);

  KeyGenerator Gen(Format, KeyDistribution::Uniform, 0x9a13);
  const std::vector<std::string> Keys = Gen.distinct(128);
  for (const std::string &Key : Keys)
    (void)Hash(Key);

  const LiveQualitySample S = Monitor.pump(16);
  EXPECT_TRUE(S.Valid);
  EXPECT_EQ(S.Generation, Hash.epoch());
  EXPECT_EQ(S.SequenceNumber, 2u);
  EXPECT_GE(S.SampleKeys, 16u);
  EXPECT_EQ(S.DuplicateHashes, 0u) << "bijective plan, distinct keys";
  EXPECT_GE(S.OccupancySkew, 1.0) << "max/mean is at least 1";
  EXPECT_GE(S.Chi2, 0.0);
  EXPECT_EQ(Monitor.latest().SequenceNumber, S.SequenceNumber);

  // The process-global slot and both textual surfaces see the sample.
  const LiveQualitySample Latest = latestLiveSample();
  EXPECT_EQ(Latest.SequenceNumber, S.SequenceNumber);
  EXPECT_EQ(Latest.Generation, S.Generation);
  Expected<json::Value> Doc = json::parse(liveStatsJson());
  ASSERT_TRUE(Doc) << Doc.error().Message;
  EXPECT_EQ(Doc->numberOr("generation", -1),
            static_cast<double>(S.Generation));
  EXPECT_EQ(Doc->numberOr("sample_keys", -1),
            static_cast<double>(S.SampleKeys));
  const json::Value *Valid = Doc->find("valid");
  ASSERT_NE(Valid, nullptr);
  EXPECT_TRUE(Valid->boolean());
  const std::string Prom = liveStatsPrometheus();
  EXPECT_NE(Prom.find("sepe_quality_generation"), std::string::npos);
  EXPECT_NE(Prom.find("sepe_quality_occupancy_skew"), std::string::npos);
}

TEST(QualityMonitorTest, SampleTracksTheEpochAcrossASwap) {
  const FormatSpec Format = ssnSpec();
  AdaptiveOptions Options;
  Options.Family = HashFamily::OffXor;
  Options.Background = false;
  Options.QualitySampleEvery = 1;
  Options.MinSamples = 4;
  Options.DriftWindow = 64;
  Options.Cooldown = std::chrono::milliseconds(0);
  AdaptiveHash Hash(Format.abstract(), Options);
  QualityMonitor Monitor(Hash);

  KeyGenerator Gen(Format, KeyDistribution::Uniform, 0x9a14);
  for (int I = 0; I != 64; ++I)
    (void)Hash(Gen.next());
  ASSERT_EQ(Monitor.pump(8).Generation, 0u);

  // Drift: keys one position longer force a resynthesis.
  Expected<FormatSpec> Wide = parseRegex(R"(\d{3}-\d{2}-\d{4}X)");
  ASSERT_TRUE(Wide);
  KeyGenerator WideGen(*Wide, KeyDistribution::Uniform, 0x9a15);
  for (int I = 0; I != 64; ++I)
    (void)Hash(WideGen.next());
  ASSERT_TRUE(Hash.pumpResynthesis());
  ASSERT_GT(Hash.epoch(), 0u);

  const LiveQualitySample S = Monitor.pump(8);
  EXPECT_EQ(S.Generation, Hash.epoch())
      << "sample must carry the post-swap generation";
}

} // namespace
