//===- tests/test_regex_printer.cpp - keybuilder output -------------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "core/regex_printer.h"

#include "core/inference.h"
#include "core/regex_parser.h"

#include <gtest/gtest.h>

using namespace sepe;

namespace {

TEST(RegexPrinterTest, ConstantBytesPrintAsLiterals) {
  const KeyPattern P = inferPattern({"ab"});
  EXPECT_EQ(printRegex(P), "ab");
}

TEST(RegexPrinterTest, MetacharactersAreEscaped) {
  const KeyPattern P = inferPattern({".(x)"});
  const std::string Regex = printRegex(P);
  Expected<FormatSpec> Round = parseRegex(Regex);
  ASSERT_TRUE(Round) << Regex;
  EXPECT_TRUE(Round->matches(".(x)"));
}

TEST(RegexPrinterTest, TopPrintsAsDot) {
  EXPECT_EQ(printByteAtom(BytePattern::top()), ".");
}

TEST(RegexPrinterTest, DigitQuadPatternPrintsAsClass) {
  // The quad abstraction of [0-9] admits 0x30-0x3f, i.e. "0-?" in
  // ASCII; expect a class spanning exactly those 16 bytes.
  const BytePattern Digits = CharSet::range('0', '9').abstraction();
  const std::string Atom = printByteAtom(Digits);
  EXPECT_EQ(Atom.front(), '[');
  Expected<FormatSpec> Parsed = parseRegex(Atom);
  ASSERT_TRUE(Parsed);
  EXPECT_EQ(Parsed->classAt(0).size(), 16u);
  for (char C = '0'; C <= '9'; ++C)
    EXPECT_TRUE(Parsed->classAt(0).contains(static_cast<uint8_t>(C)));
}

TEST(RegexPrinterTest, RunsCompressWithCounts) {
  const KeyPattern P = inferPattern({"0000000000", "9999999999"});
  const std::string Regex = printRegex(P);
  EXPECT_NE(Regex.find("{10}"), std::string::npos) << Regex;
}

TEST(RegexPrinterTest, RoundTripPreservesPattern) {
  // keybuilder's core contract: parse(print(p)).abstract() == p.
  const std::vector<std::vector<std::string>> ExampleSets = {
      {"123-45-6789", "000-00-0000"},
      {"JFK", "LaX", "GRu"},
      {"de-ad-be-ef-00-42", "00-11-22-33-44-55"},
      {"https://a.io/x", "https://b.io/y"},
  };
  for (const auto &Keys : ExampleSets) {
    const KeyPattern P = inferPattern(Keys);
    const std::string Regex = printRegex(P);
    Expected<FormatSpec> Parsed = parseRegex(Regex);
    ASSERT_TRUE(Parsed) << Regex;
    EXPECT_EQ(Parsed->abstract(), P) << Regex;
    for (const std::string &Key : Keys)
      EXPECT_TRUE(Parsed->matches(Key)) << Regex << " vs " << Key;
  }
}

TEST(RegexPrinterTest, RoundTripWithVariableLength) {
  const KeyPattern P = inferPattern({"JFK", "RJTT"});
  const std::string Regex = printRegex(P);
  Expected<FormatSpec> Parsed = parseRegex(Regex);
  ASSERT_TRUE(Parsed) << Regex;
  EXPECT_EQ(Parsed->minLength(), 3u);
  EXPECT_EQ(Parsed->maxLength(), 4u);
  EXPECT_EQ(Parsed->abstract(), P);
}

TEST(RegexPrinterTest, NonPrintableBytesUseHexEscapes) {
  const KeyPattern P = inferPattern({std::string("\x01\x02", 2)});
  const std::string Regex = printRegex(P);
  EXPECT_NE(Regex.find("\\x01"), std::string::npos) << Regex;
  Expected<FormatSpec> Parsed = parseRegex(Regex);
  ASSERT_TRUE(Parsed);
  EXPECT_TRUE(Parsed->matches(std::string("\x01\x02", 2)));
}

} // namespace
