//===- tests/integration_codegen_compile.cpp - Compile generated code -----===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end validation of the code generator: for each paper format
/// and family, emit the C++ source, compile it with the host compiler
/// into a shared object, dlopen it, and check that the compiled
/// function agrees bit-for-bit with the in-process executor on random
/// keys. This is the strongest evidence that the emitted code is what
/// the executor models.
///
//===----------------------------------------------------------------------===//

#include "core/codegen.h"
#include "core/executor.h"
#include "core/regex_parser.h"
#include "core/synthesizer.h"
#include "keygen/distributions.h"
#include "keygen/paper_formats.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <dlfcn.h>
#include <fstream>
#include <string>
#include <unistd.h>

using namespace sepe;

namespace {

using CompiledHashFn = uint64_t (*)(const char *, size_t);

/// Writes \p Source, compiles it to a shared object, and returns the
/// dlopen handle (nullptr on failure).
void *compileToSharedObject(const std::string &Source,
                            const std::string &Stem) {
  const std::string Dir = ::testing::TempDir();
  const std::string CppPath = Dir + "/" + Stem + ".cpp";
  const std::string SoPath = Dir + "/" + Stem + ".so";
  {
    std::ofstream Out(CppPath);
    Out << Source;
  }
  const std::string Command = "g++ -std=c++20 -O2 -mbmi2 -maes -shared "
                              "-fPIC -o " +
                              SoPath + " " + CppPath + " 2> " + Dir + "/" +
                              Stem + ".log";
  if (std::system(Command.c_str()) != 0)
    return nullptr;
  return dlopen(SoPath.c_str(), RTLD_NOW);
}

class CodegenCompileTest
    : public ::testing::TestWithParam<std::pair<PaperKey, HashFamily>> {};

TEST_P(CodegenCompileTest, CompiledCodeMatchesExecutor) {
  const auto [Key, Family] = GetParam();
  Expected<HashPlan> Plan =
      synthesize(paperKeyFormat(Key).abstract(), Family);
  ASSERT_TRUE(Plan);

  const std::string Name = std::string("Gen") + paperKeyName(Key) +
                           familyName(Family);
  CodegenOptions Options;
  Options.StructName = Name;
  Options.EmitCWrapper = true;
  const std::string Source =
      emitPreamble(Target::X86) + emitHashFunction(*Plan, Options);

  void *Handle = compileToSharedObject(Source, Name);
  ASSERT_NE(Handle, nullptr) << "generated code failed to compile";
  auto Fn = reinterpret_cast<CompiledHashFn>(
      dlsym(Handle, (Name + "_hash").c_str()));
  ASSERT_NE(Fn, nullptr);

  const SynthesizedHash Executor(Plan.take());
  KeyGenerator Gen(paperKeyFormat(Key), KeyDistribution::Uniform, 31337);
  for (int I = 0; I != 200; ++I) {
    const std::string Text = Gen.next();
    EXPECT_EQ(Fn(Text.data(), Text.size()), Executor(Text))
        << paperKeyName(Key) << "/" << familyName(Family) << " on "
        << Text;
  }
  dlclose(Handle);
}

std::vector<std::pair<PaperKey, HashFamily>> compileCases() {
  // One format per structural shape to keep the suite fast: short SSN
  // (overlapping loads), IPv4 (tutorial case), INTS (many loads), URL1
  // (constant prefix), IPv6 (interleaved separators).
  std::vector<std::pair<PaperKey, HashFamily>> Cases;
  for (PaperKey Key : {PaperKey::SSN, PaperKey::IPv4, PaperKey::INTS,
                       PaperKey::URL1, PaperKey::IPv6})
    for (HashFamily Family : {HashFamily::Naive, HashFamily::OffXor,
                              HashFamily::Aes, HashFamily::Pext})
      Cases.emplace_back(Key, Family);
  return Cases;
}

INSTANTIATE_TEST_SUITE_P(
    PaperFormats, CodegenCompileTest, ::testing::ValuesIn(compileCases()),
    [](const ::testing::TestParamInfo<std::pair<PaperKey, HashFamily>>
           &Info) {
      return std::string(paperKeyName(Info.param.first)) +
             familyName(Info.param.second);
    });

TEST(CodegenCompileTest2, PortableTargetCompilesAndMatches) {
  // The portable flavor (soft pext, soft AES with the embedded S-box)
  // must compile without ISA flags and agree with the executor.
  Expected<HashPlan> Plan = synthesize(
      paperKeyFormat(PaperKey::SSN).abstract(), HashFamily::Pext);
  ASSERT_TRUE(Plan);
  CodegenOptions Options;
  Options.Isa = Target::Portable;
  Options.StructName = "PortableSsnPext";
  Options.EmitCWrapper = true;
  const std::string Source =
      emitPreamble(Target::Portable) + emitHashFunction(*Plan, Options);

  const std::string Dir = ::testing::TempDir();
  const std::string CppPath = Dir + "/portable_ssn.cpp";
  const std::string SoPath = Dir + "/portable_ssn.so";
  {
    std::ofstream Out(CppPath);
    Out << Source;
  }
  // Note: no -mbmi2/-maes — portable code must not need them.
  const std::string Command = "g++ -std=c++20 -O2 -shared -fPIC -o " +
                              SoPath + " " + CppPath + " 2> " + Dir +
                              "/portable_ssn.log";
  ASSERT_EQ(std::system(Command.c_str()), 0);
  void *Handle = dlopen(SoPath.c_str(), RTLD_NOW);
  ASSERT_NE(Handle, nullptr);
  auto Fn = reinterpret_cast<CompiledHashFn>(
      dlsym(Handle, "PortableSsnPext_hash"));
  ASSERT_NE(Fn, nullptr);

  const SynthesizedHash Executor(Plan.take());
  KeyGenerator Gen(paperKeyFormat(PaperKey::SSN), KeyDistribution::Uniform,
                   555);
  for (int I = 0; I != 100; ++I) {
    const std::string Text = Gen.next();
    EXPECT_EQ(Fn(Text.data(), Text.size()), Executor(Text));
  }
  dlclose(Handle);
}

TEST(CodegenCompileTest2, PortableAesCompilesAndMatches) {
  Expected<HashPlan> Plan = synthesize(
      paperKeyFormat(PaperKey::MAC).abstract(), HashFamily::Aes);
  ASSERT_TRUE(Plan);
  CodegenOptions Options;
  Options.Isa = Target::Portable;
  Options.StructName = "PortableMacAes";
  Options.EmitCWrapper = true;
  const std::string Source =
      emitPreamble(Target::Portable) + emitHashFunction(*Plan, Options);

  void *Handle = nullptr;
  {
    const std::string Dir = ::testing::TempDir();
    const std::string CppPath = Dir + "/portable_mac.cpp";
    const std::string SoPath = Dir + "/portable_mac.so";
    std::ofstream(CppPath) << Source;
    const std::string Command = "g++ -std=c++20 -O2 -shared -fPIC -o " +
                                SoPath + " " + CppPath + " 2> " + Dir +
                                "/portable_mac.log";
    ASSERT_EQ(std::system(Command.c_str()), 0);
    Handle = dlopen(SoPath.c_str(), RTLD_NOW);
  }
  ASSERT_NE(Handle, nullptr);
  auto Fn =
      reinterpret_cast<CompiledHashFn>(dlsym(Handle, "PortableMacAes_hash"));
  ASSERT_NE(Fn, nullptr);

  const SynthesizedHash Executor(Plan.take());
  KeyGenerator Gen(paperKeyFormat(PaperKey::MAC), KeyDistribution::Uniform,
                   777);
  for (int I = 0; I != 100; ++I) {
    const std::string Text = Gen.next();
    EXPECT_EQ(Fn(Text.data(), Text.size()), Executor(Text));
  }
  dlclose(Handle);
}

TEST(CodegenCompileTest2, VariableLengthCompiledCodeMatches) {
  Expected<FormatSpec> Spec = parseRegex(R"(order=\d{10}(.){0,6})");
  ASSERT_TRUE(Spec);
  Expected<HashPlan> Plan =
      synthesize(Spec->abstract(), HashFamily::Pext);
  ASSERT_TRUE(Plan);
  ASSERT_FALSE(Plan->FixedLength);
  CodegenOptions Options;
  Options.StructName = "GenVarPext";
  Options.EmitCWrapper = true;
  const std::string Source =
      emitPreamble(Target::X86) + emitHashFunction(*Plan, Options);
  void *Handle = compileToSharedObject(Source, "GenVarPext");
  ASSERT_NE(Handle, nullptr);
  auto Fn =
      reinterpret_cast<CompiledHashFn>(dlsym(Handle, "GenVarPext_hash"));
  ASSERT_NE(Fn, nullptr);
  const SynthesizedHash Executor(Plan.take());
  const std::vector<std::string> Keys = {
      "order=0123456789",    "order=9876543210x",   "order=1111111111xyz",
      "order=0000000000abcd", "order=5555555555!@#$%",
      "order=4242424242zzzzzz"};
  for (const std::string &Key : Keys)
    EXPECT_EQ(Fn(Key.data(), Key.size()), Executor(Key)) << Key;
  dlclose(Handle);
}

} // namespace
