# Empty compiler generated dependencies file for ssn_registry.
# This may be replaced when dependencies are built.
