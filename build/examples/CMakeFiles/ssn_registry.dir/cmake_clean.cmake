file(REMOVE_RECURSE
  "CMakeFiles/ssn_registry.dir/ssn_registry.cpp.o"
  "CMakeFiles/ssn_registry.dir/ssn_registry.cpp.o.d"
  "ssn_registry"
  "ssn_registry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssn_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
