
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/ssn_registry.cpp" "examples/CMakeFiles/ssn_registry.dir/ssn_registry.cpp.o" "gcc" "examples/CMakeFiles/ssn_registry.dir/ssn_registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sepe_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sepe_keygen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sepe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sepe_hashes.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sepe_gperf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sepe_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
