file(REMOVE_RECURSE
  "CMakeFiles/url_router.dir/url_router.cpp.o"
  "CMakeFiles/url_router.dir/url_router.cpp.o.d"
  "url_router"
  "url_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/url_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
