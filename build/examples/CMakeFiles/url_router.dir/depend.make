# Empty dependencies file for url_router.
# This may be replaced when dependencies are built.
