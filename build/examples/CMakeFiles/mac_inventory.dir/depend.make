# Empty dependencies file for mac_inventory.
# This may be replaced when dependencies are built.
