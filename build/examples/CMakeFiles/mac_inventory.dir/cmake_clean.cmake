file(REMOVE_RECURSE
  "CMakeFiles/mac_inventory.dir/mac_inventory.cpp.o"
  "CMakeFiles/mac_inventory.dir/mac_inventory.cpp.o.d"
  "mac_inventory"
  "mac_inventory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mac_inventory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
