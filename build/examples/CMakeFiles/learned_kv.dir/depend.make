# Empty dependencies file for learned_kv.
# This may be replaced when dependencies are built.
