file(REMOVE_RECURSE
  "CMakeFiles/learned_kv.dir/learned_kv.cpp.o"
  "CMakeFiles/learned_kv.dir/learned_kv.cpp.o.d"
  "learned_kv"
  "learned_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learned_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
