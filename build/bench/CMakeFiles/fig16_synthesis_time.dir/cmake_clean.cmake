file(REMOVE_RECURSE
  "CMakeFiles/fig16_synthesis_time.dir/fig16_synthesis_time.cpp.o"
  "CMakeFiles/fig16_synthesis_time.dir/fig16_synthesis_time.cpp.o.d"
  "fig16_synthesis_time"
  "fig16_synthesis_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_synthesis_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
