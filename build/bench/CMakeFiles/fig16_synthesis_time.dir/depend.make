# Empty dependencies file for fig16_synthesis_time.
# This may be replaced when dependencies are built.
