file(REMOVE_RECURSE
  "CMakeFiles/fig19_hash_scaling.dir/fig19_hash_scaling.cpp.o"
  "CMakeFiles/fig19_hash_scaling.dir/fig19_hash_scaling.cpp.o.d"
  "fig19_hash_scaling"
  "fig19_hash_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_hash_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
