# Empty compiler generated dependencies file for fig19_hash_scaling.
# This may be replaced when dependencies are built.
