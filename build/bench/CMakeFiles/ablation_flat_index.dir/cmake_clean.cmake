file(REMOVE_RECURSE
  "CMakeFiles/ablation_flat_index.dir/ablation_flat_index.cpp.o"
  "CMakeFiles/ablation_flat_index.dir/ablation_flat_index.cpp.o.d"
  "ablation_flat_index"
  "ablation_flat_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_flat_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
