# Empty dependencies file for ablation_flat_index.
# This may be replaced when dependencies are built.
