file(REMOVE_RECURSE
  "CMakeFiles/ablation_skip_table.dir/ablation_skip_table.cpp.o"
  "CMakeFiles/ablation_skip_table.dir/ablation_skip_table.cpp.o.d"
  "ablation_skip_table"
  "ablation_skip_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_skip_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
