# Empty compiler generated dependencies file for ablation_skip_table.
# This may be replaced when dependencies are built.
