file(REMOVE_RECURSE
  "CMakeFiles/micro_hash.dir/micro_hash.cpp.o"
  "CMakeFiles/micro_hash.dir/micro_hash.cpp.o.d"
  "micro_hash"
  "micro_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
