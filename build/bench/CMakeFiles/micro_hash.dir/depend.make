# Empty dependencies file for micro_hash.
# This may be replaced when dependencies are built.
