file(REMOVE_RECURSE
  "CMakeFiles/fig15_portable.dir/fig15_portable.cpp.o"
  "CMakeFiles/fig15_portable.dir/fig15_portable.cpp.o.d"
  "fig15_portable"
  "fig15_portable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_portable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
