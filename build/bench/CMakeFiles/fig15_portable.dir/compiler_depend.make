# Empty compiler generated dependencies file for fig15_portable.
# This may be replaced when dependencies are built.
