file(REMOVE_RECURSE
  "CMakeFiles/fig20_containers.dir/fig20_containers.cpp.o"
  "CMakeFiles/fig20_containers.dir/fig20_containers.cpp.o.d"
  "fig20_containers"
  "fig20_containers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_containers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
