# Empty dependencies file for fig20_containers.
# This may be replaced when dependencies are built.
