# Empty dependencies file for table3_distribution.
# This may be replaced when dependencies are built.
