file(REMOVE_RECURSE
  "CMakeFiles/table3_distribution.dir/table3_distribution.cpp.o"
  "CMakeFiles/table3_distribution.dir/table3_distribution.cpp.o.d"
  "table3_distribution"
  "table3_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
