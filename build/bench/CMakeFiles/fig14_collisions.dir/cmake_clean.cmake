file(REMOVE_RECURSE
  "CMakeFiles/fig14_collisions.dir/fig14_collisions.cpp.o"
  "CMakeFiles/fig14_collisions.dir/fig14_collisions.cpp.o.d"
  "fig14_collisions"
  "fig14_collisions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_collisions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
