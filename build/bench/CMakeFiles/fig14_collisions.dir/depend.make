# Empty dependencies file for fig14_collisions.
# This may be replaced when dependencies are built.
