file(REMOVE_RECURSE
  "CMakeFiles/fig17_lowmix_buckets.dir/fig17_lowmix_buckets.cpp.o"
  "CMakeFiles/fig17_lowmix_buckets.dir/fig17_lowmix_buckets.cpp.o.d"
  "fig17_lowmix_buckets"
  "fig17_lowmix_buckets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_lowmix_buckets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
