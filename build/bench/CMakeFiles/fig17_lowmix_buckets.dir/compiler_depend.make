# Empty compiler generated dependencies file for fig17_lowmix_buckets.
# This may be replaced when dependencies are built.
