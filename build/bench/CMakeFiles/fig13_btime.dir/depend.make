# Empty dependencies file for fig13_btime.
# This may be replaced when dependencies are built.
