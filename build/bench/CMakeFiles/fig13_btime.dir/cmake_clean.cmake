file(REMOVE_RECURSE
  "CMakeFiles/fig13_btime.dir/fig13_btime.cpp.o"
  "CMakeFiles/fig13_btime.dir/fig13_btime.cpp.o.d"
  "fig13_btime"
  "fig13_btime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_btime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
