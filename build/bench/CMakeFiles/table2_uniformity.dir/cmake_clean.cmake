file(REMOVE_RECURSE
  "CMakeFiles/table2_uniformity.dir/table2_uniformity.cpp.o"
  "CMakeFiles/table2_uniformity.dir/table2_uniformity.cpp.o.d"
  "table2_uniformity"
  "table2_uniformity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_uniformity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
