# Empty compiler generated dependencies file for table2_uniformity.
# This may be replaced when dependencies are built.
