file(REMOVE_RECURSE
  "CMakeFiles/ablation_pext_spread.dir/ablation_pext_spread.cpp.o"
  "CMakeFiles/ablation_pext_spread.dir/ablation_pext_spread.cpp.o.d"
  "ablation_pext_spread"
  "ablation_pext_spread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pext_spread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
