# Empty dependencies file for ablation_pext_spread.
# This may be replaced when dependencies are built.
