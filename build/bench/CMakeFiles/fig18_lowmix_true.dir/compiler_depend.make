# Empty compiler generated dependencies file for fig18_lowmix_true.
# This may be replaced when dependencies are built.
