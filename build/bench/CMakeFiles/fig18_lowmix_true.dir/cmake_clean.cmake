file(REMOVE_RECURSE
  "CMakeFiles/fig18_lowmix_true.dir/fig18_lowmix_true.cpp.o"
  "CMakeFiles/fig18_lowmix_true.dir/fig18_lowmix_true.cpp.o.d"
  "fig18_lowmix_true"
  "fig18_lowmix_true.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_lowmix_true.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
