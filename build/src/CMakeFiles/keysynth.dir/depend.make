# Empty dependencies file for keysynth.
# This may be replaced when dependencies are built.
