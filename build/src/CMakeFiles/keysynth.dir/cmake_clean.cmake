file(REMOVE_RECURSE
  "CMakeFiles/keysynth.dir/tools/keysynth.cpp.o"
  "CMakeFiles/keysynth.dir/tools/keysynth.cpp.o.d"
  "keysynth"
  "keysynth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keysynth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
