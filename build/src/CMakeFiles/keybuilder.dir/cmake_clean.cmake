file(REMOVE_RECURSE
  "CMakeFiles/keybuilder.dir/tools/keybuilder.cpp.o"
  "CMakeFiles/keybuilder.dir/tools/keybuilder.cpp.o.d"
  "keybuilder"
  "keybuilder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keybuilder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
