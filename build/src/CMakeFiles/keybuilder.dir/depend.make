# Empty dependencies file for keybuilder.
# This may be replaced when dependencies are built.
