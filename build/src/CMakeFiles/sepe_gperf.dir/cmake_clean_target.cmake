file(REMOVE_RECURSE
  "libsepe_gperf.a"
)
