file(REMOVE_RECURSE
  "CMakeFiles/sepe_gperf.dir/gperf/perfect_hash.cpp.o"
  "CMakeFiles/sepe_gperf.dir/gperf/perfect_hash.cpp.o.d"
  "libsepe_gperf.a"
  "libsepe_gperf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sepe_gperf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
