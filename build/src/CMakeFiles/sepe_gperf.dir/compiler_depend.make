# Empty compiler generated dependencies file for sepe_gperf.
# This may be replaced when dependencies are built.
