# Empty dependencies file for sepe_driver.
# This may be replaced when dependencies are built.
