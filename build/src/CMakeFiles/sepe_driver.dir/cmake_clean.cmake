file(REMOVE_RECURSE
  "CMakeFiles/sepe_driver.dir/driver/experiment.cpp.o"
  "CMakeFiles/sepe_driver.dir/driver/experiment.cpp.o.d"
  "CMakeFiles/sepe_driver.dir/driver/hash_registry.cpp.o"
  "CMakeFiles/sepe_driver.dir/driver/hash_registry.cpp.o.d"
  "CMakeFiles/sepe_driver.dir/driver/report.cpp.o"
  "CMakeFiles/sepe_driver.dir/driver/report.cpp.o.d"
  "libsepe_driver.a"
  "libsepe_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sepe_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
