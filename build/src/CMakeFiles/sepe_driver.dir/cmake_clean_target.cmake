file(REMOVE_RECURSE
  "libsepe_driver.a"
)
