file(REMOVE_RECURSE
  "libsepe_stats.a"
)
