
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/chi_square.cpp" "src/CMakeFiles/sepe_stats.dir/stats/chi_square.cpp.o" "gcc" "src/CMakeFiles/sepe_stats.dir/stats/chi_square.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/CMakeFiles/sepe_stats.dir/stats/descriptive.cpp.o" "gcc" "src/CMakeFiles/sepe_stats.dir/stats/descriptive.cpp.o.d"
  "/root/repo/src/stats/mann_whitney.cpp" "src/CMakeFiles/sepe_stats.dir/stats/mann_whitney.cpp.o" "gcc" "src/CMakeFiles/sepe_stats.dir/stats/mann_whitney.cpp.o.d"
  "/root/repo/src/stats/pearson.cpp" "src/CMakeFiles/sepe_stats.dir/stats/pearson.cpp.o" "gcc" "src/CMakeFiles/sepe_stats.dir/stats/pearson.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
