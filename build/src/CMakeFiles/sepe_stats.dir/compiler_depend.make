# Empty compiler generated dependencies file for sepe_stats.
# This may be replaced when dependencies are built.
