file(REMOVE_RECURSE
  "CMakeFiles/sepe_stats.dir/stats/chi_square.cpp.o"
  "CMakeFiles/sepe_stats.dir/stats/chi_square.cpp.o.d"
  "CMakeFiles/sepe_stats.dir/stats/descriptive.cpp.o"
  "CMakeFiles/sepe_stats.dir/stats/descriptive.cpp.o.d"
  "CMakeFiles/sepe_stats.dir/stats/mann_whitney.cpp.o"
  "CMakeFiles/sepe_stats.dir/stats/mann_whitney.cpp.o.d"
  "CMakeFiles/sepe_stats.dir/stats/pearson.cpp.o"
  "CMakeFiles/sepe_stats.dir/stats/pearson.cpp.o.d"
  "libsepe_stats.a"
  "libsepe_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sepe_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
