# Empty compiler generated dependencies file for sepedriver.
# This may be replaced when dependencies are built.
