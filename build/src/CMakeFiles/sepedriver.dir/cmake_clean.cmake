file(REMOVE_RECURSE
  "CMakeFiles/sepedriver.dir/tools/sepedriver.cpp.o"
  "CMakeFiles/sepedriver.dir/tools/sepedriver.cpp.o.d"
  "sepedriver"
  "sepedriver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sepedriver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
