file(REMOVE_RECURSE
  "CMakeFiles/sepe_keygen.dir/hashes/gpt_like.cpp.o"
  "CMakeFiles/sepe_keygen.dir/hashes/gpt_like.cpp.o.d"
  "CMakeFiles/sepe_keygen.dir/keygen/distributions.cpp.o"
  "CMakeFiles/sepe_keygen.dir/keygen/distributions.cpp.o.d"
  "CMakeFiles/sepe_keygen.dir/keygen/paper_formats.cpp.o"
  "CMakeFiles/sepe_keygen.dir/keygen/paper_formats.cpp.o.d"
  "libsepe_keygen.a"
  "libsepe_keygen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sepe_keygen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
