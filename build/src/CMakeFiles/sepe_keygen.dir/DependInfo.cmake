
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hashes/gpt_like.cpp" "src/CMakeFiles/sepe_keygen.dir/hashes/gpt_like.cpp.o" "gcc" "src/CMakeFiles/sepe_keygen.dir/hashes/gpt_like.cpp.o.d"
  "/root/repo/src/keygen/distributions.cpp" "src/CMakeFiles/sepe_keygen.dir/keygen/distributions.cpp.o" "gcc" "src/CMakeFiles/sepe_keygen.dir/keygen/distributions.cpp.o.d"
  "/root/repo/src/keygen/paper_formats.cpp" "src/CMakeFiles/sepe_keygen.dir/keygen/paper_formats.cpp.o" "gcc" "src/CMakeFiles/sepe_keygen.dir/keygen/paper_formats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sepe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sepe_hashes.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
