file(REMOVE_RECURSE
  "libsepe_keygen.a"
)
