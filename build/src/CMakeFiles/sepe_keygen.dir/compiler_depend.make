# Empty compiler generated dependencies file for sepe_keygen.
# This may be replaced when dependencies are built.
