file(REMOVE_RECURSE
  "libsepe_hashes.a"
)
