# Empty compiler generated dependencies file for sepe_hashes.
# This may be replaced when dependencies are built.
