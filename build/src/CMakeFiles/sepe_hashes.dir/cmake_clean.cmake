file(REMOVE_RECURSE
  "CMakeFiles/sepe_hashes.dir/hashes/aes_round.cpp.o"
  "CMakeFiles/sepe_hashes.dir/hashes/aes_round.cpp.o.d"
  "CMakeFiles/sepe_hashes.dir/hashes/city.cpp.o"
  "CMakeFiles/sepe_hashes.dir/hashes/city.cpp.o.d"
  "CMakeFiles/sepe_hashes.dir/hashes/fnv.cpp.o"
  "CMakeFiles/sepe_hashes.dir/hashes/fnv.cpp.o.d"
  "CMakeFiles/sepe_hashes.dir/hashes/low_level_hash.cpp.o"
  "CMakeFiles/sepe_hashes.dir/hashes/low_level_hash.cpp.o.d"
  "CMakeFiles/sepe_hashes.dir/hashes/murmur.cpp.o"
  "CMakeFiles/sepe_hashes.dir/hashes/murmur.cpp.o.d"
  "CMakeFiles/sepe_hashes.dir/hashes/polymur_like.cpp.o"
  "CMakeFiles/sepe_hashes.dir/hashes/polymur_like.cpp.o.d"
  "libsepe_hashes.a"
  "libsepe_hashes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sepe_hashes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
