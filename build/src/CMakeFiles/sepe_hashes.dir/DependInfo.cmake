
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hashes/aes_round.cpp" "src/CMakeFiles/sepe_hashes.dir/hashes/aes_round.cpp.o" "gcc" "src/CMakeFiles/sepe_hashes.dir/hashes/aes_round.cpp.o.d"
  "/root/repo/src/hashes/city.cpp" "src/CMakeFiles/sepe_hashes.dir/hashes/city.cpp.o" "gcc" "src/CMakeFiles/sepe_hashes.dir/hashes/city.cpp.o.d"
  "/root/repo/src/hashes/fnv.cpp" "src/CMakeFiles/sepe_hashes.dir/hashes/fnv.cpp.o" "gcc" "src/CMakeFiles/sepe_hashes.dir/hashes/fnv.cpp.o.d"
  "/root/repo/src/hashes/low_level_hash.cpp" "src/CMakeFiles/sepe_hashes.dir/hashes/low_level_hash.cpp.o" "gcc" "src/CMakeFiles/sepe_hashes.dir/hashes/low_level_hash.cpp.o.d"
  "/root/repo/src/hashes/murmur.cpp" "src/CMakeFiles/sepe_hashes.dir/hashes/murmur.cpp.o" "gcc" "src/CMakeFiles/sepe_hashes.dir/hashes/murmur.cpp.o.d"
  "/root/repo/src/hashes/polymur_like.cpp" "src/CMakeFiles/sepe_hashes.dir/hashes/polymur_like.cpp.o" "gcc" "src/CMakeFiles/sepe_hashes.dir/hashes/polymur_like.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
