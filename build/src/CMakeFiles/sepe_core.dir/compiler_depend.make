# Empty compiler generated dependencies file for sepe_core.
# This may be replaced when dependencies are built.
