file(REMOVE_RECURSE
  "CMakeFiles/sepe_core.dir/core/analysis.cpp.o"
  "CMakeFiles/sepe_core.dir/core/analysis.cpp.o.d"
  "CMakeFiles/sepe_core.dir/core/codegen.cpp.o"
  "CMakeFiles/sepe_core.dir/core/codegen.cpp.o.d"
  "CMakeFiles/sepe_core.dir/core/executor.cpp.o"
  "CMakeFiles/sepe_core.dir/core/executor.cpp.o.d"
  "CMakeFiles/sepe_core.dir/core/inference.cpp.o"
  "CMakeFiles/sepe_core.dir/core/inference.cpp.o.d"
  "CMakeFiles/sepe_core.dir/core/plan.cpp.o"
  "CMakeFiles/sepe_core.dir/core/plan.cpp.o.d"
  "CMakeFiles/sepe_core.dir/core/plan_io.cpp.o"
  "CMakeFiles/sepe_core.dir/core/plan_io.cpp.o.d"
  "CMakeFiles/sepe_core.dir/core/regex_parser.cpp.o"
  "CMakeFiles/sepe_core.dir/core/regex_parser.cpp.o.d"
  "CMakeFiles/sepe_core.dir/core/regex_printer.cpp.o"
  "CMakeFiles/sepe_core.dir/core/regex_printer.cpp.o.d"
  "CMakeFiles/sepe_core.dir/core/synthesizer.cpp.o"
  "CMakeFiles/sepe_core.dir/core/synthesizer.cpp.o.d"
  "libsepe_core.a"
  "libsepe_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sepe_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
