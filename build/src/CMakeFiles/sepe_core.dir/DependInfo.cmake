
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cpp" "src/CMakeFiles/sepe_core.dir/core/analysis.cpp.o" "gcc" "src/CMakeFiles/sepe_core.dir/core/analysis.cpp.o.d"
  "/root/repo/src/core/codegen.cpp" "src/CMakeFiles/sepe_core.dir/core/codegen.cpp.o" "gcc" "src/CMakeFiles/sepe_core.dir/core/codegen.cpp.o.d"
  "/root/repo/src/core/executor.cpp" "src/CMakeFiles/sepe_core.dir/core/executor.cpp.o" "gcc" "src/CMakeFiles/sepe_core.dir/core/executor.cpp.o.d"
  "/root/repo/src/core/inference.cpp" "src/CMakeFiles/sepe_core.dir/core/inference.cpp.o" "gcc" "src/CMakeFiles/sepe_core.dir/core/inference.cpp.o.d"
  "/root/repo/src/core/plan.cpp" "src/CMakeFiles/sepe_core.dir/core/plan.cpp.o" "gcc" "src/CMakeFiles/sepe_core.dir/core/plan.cpp.o.d"
  "/root/repo/src/core/plan_io.cpp" "src/CMakeFiles/sepe_core.dir/core/plan_io.cpp.o" "gcc" "src/CMakeFiles/sepe_core.dir/core/plan_io.cpp.o.d"
  "/root/repo/src/core/regex_parser.cpp" "src/CMakeFiles/sepe_core.dir/core/regex_parser.cpp.o" "gcc" "src/CMakeFiles/sepe_core.dir/core/regex_parser.cpp.o.d"
  "/root/repo/src/core/regex_printer.cpp" "src/CMakeFiles/sepe_core.dir/core/regex_printer.cpp.o" "gcc" "src/CMakeFiles/sepe_core.dir/core/regex_printer.cpp.o.d"
  "/root/repo/src/core/synthesizer.cpp" "src/CMakeFiles/sepe_core.dir/core/synthesizer.cpp.o" "gcc" "src/CMakeFiles/sepe_core.dir/core/synthesizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sepe_hashes.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
