file(REMOVE_RECURSE
  "libsepe_core.a"
)
