
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_aes_round.cpp" "tests/CMakeFiles/unit_tests.dir/test_aes_round.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_aes_round.cpp.o.d"
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/unit_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_bit_ops.cpp" "tests/CMakeFiles/unit_tests.dir/test_bit_ops.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_bit_ops.cpp.o.d"
  "/root/repo/tests/test_byte_pattern.cpp" "tests/CMakeFiles/unit_tests.dir/test_byte_pattern.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_byte_pattern.cpp.o.d"
  "/root/repo/tests/test_charset.cpp" "tests/CMakeFiles/unit_tests.dir/test_charset.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_charset.cpp.o.d"
  "/root/repo/tests/test_codegen.cpp" "tests/CMakeFiles/unit_tests.dir/test_codegen.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_codegen.cpp.o.d"
  "/root/repo/tests/test_driver.cpp" "tests/CMakeFiles/unit_tests.dir/test_driver.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_driver.cpp.o.d"
  "/root/repo/tests/test_executor.cpp" "tests/CMakeFiles/unit_tests.dir/test_executor.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_executor.cpp.o.d"
  "/root/repo/tests/test_flat_index_map.cpp" "tests/CMakeFiles/unit_tests.dir/test_flat_index_map.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_flat_index_map.cpp.o.d"
  "/root/repo/tests/test_gperf.cpp" "tests/CMakeFiles/unit_tests.dir/test_gperf.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_gperf.cpp.o.d"
  "/root/repo/tests/test_gpt_like.cpp" "tests/CMakeFiles/unit_tests.dir/test_gpt_like.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_gpt_like.cpp.o.d"
  "/root/repo/tests/test_hashes.cpp" "tests/CMakeFiles/unit_tests.dir/test_hashes.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_hashes.cpp.o.d"
  "/root/repo/tests/test_inference.cpp" "tests/CMakeFiles/unit_tests.dir/test_inference.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_inference.cpp.o.d"
  "/root/repo/tests/test_key_pattern.cpp" "tests/CMakeFiles/unit_tests.dir/test_key_pattern.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_key_pattern.cpp.o.d"
  "/root/repo/tests/test_keygen.cpp" "tests/CMakeFiles/unit_tests.dir/test_keygen.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_keygen.cpp.o.d"
  "/root/repo/tests/test_low_mix_table.cpp" "tests/CMakeFiles/unit_tests.dir/test_low_mix_table.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_low_mix_table.cpp.o.d"
  "/root/repo/tests/test_parser_fuzz.cpp" "tests/CMakeFiles/unit_tests.dir/test_parser_fuzz.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_parser_fuzz.cpp.o.d"
  "/root/repo/tests/test_plan_io.cpp" "tests/CMakeFiles/unit_tests.dir/test_plan_io.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_plan_io.cpp.o.d"
  "/root/repo/tests/test_polymur_like.cpp" "tests/CMakeFiles/unit_tests.dir/test_polymur_like.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_polymur_like.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/unit_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_quad.cpp" "tests/CMakeFiles/unit_tests.dir/test_quad.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_quad.cpp.o.d"
  "/root/repo/tests/test_random_formats.cpp" "tests/CMakeFiles/unit_tests.dir/test_random_formats.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_random_formats.cpp.o.d"
  "/root/repo/tests/test_regex_parser.cpp" "tests/CMakeFiles/unit_tests.dir/test_regex_parser.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_regex_parser.cpp.o.d"
  "/root/repo/tests/test_regex_printer.cpp" "tests/CMakeFiles/unit_tests.dir/test_regex_printer.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_regex_printer.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/unit_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_synthesizer.cpp" "tests/CMakeFiles/unit_tests.dir/test_synthesizer.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_synthesizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sepe_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sepe_keygen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sepe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sepe_hashes.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sepe_gperf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sepe_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
