# Empty compiler generated dependencies file for unit_tests.
# This may be replaced when dependencies are built.
