//===- bench/ablation_skip_table.cpp - Ablation: constant skipping --------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation for Section 3.2.1/3.2.2: how much does skipping constant
/// subsequences actually buy? Compares Naive (loads every word) against
/// OffXor (skips constant words) hashing throughput as the constant
/// prefix of a URL-style key grows, holding the variable payload fixed
/// at 16 bytes. The OffXor curve should stay flat while Naive grows
/// linearly with the prefix.
///
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "core/executor.h"
#include "core/regex_parser.h"
#include "core/synthesizer.h"
#include "stats/pearson.h"

#include <chrono>

using namespace sepe;
using namespace sepe::bench;

namespace {

double hashNsPerKey(const SynthesizedHash &Hash,
                    const std::vector<std::string> &Keys, size_t Rounds) {
  uint64_t Sink = 0;
  const auto Start = std::chrono::steady_clock::now();
  for (size_t R = 0; R != Rounds; ++R)
    for (const std::string &Key : Keys)
      Sink += Hash(Key);
  const auto End = std::chrono::steady_clock::now();
  asm volatile("" : : "r"(Sink) : "memory");
  return std::chrono::duration<double, std::nano>(End - Start).count() /
         static_cast<double>(Rounds * Keys.size());
}

} // namespace

int main(int Argc, char **Argv) {
  const BenchOptions Options = parseBenchOptions(Argc, Argv);
  printHeader("Ablation - constant-subsequence skipping",
              "Naive vs OffXor as the constant prefix grows "
              "(16-byte payload)",
              Options);

  TextTable Table({"Prefix bytes", "Key bytes", "Naive (ns)",
                   "OffXor (ns)", "OffXor loads"});
  std::vector<double> Prefixes, NaiveTimes, OffXorTimes;
  const size_t Rounds = Options.Full ? 4000 : 1000;

  for (size_t Prefix : {8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    // 'Prefix' constant bytes followed by 16 digits.
    const std::string Regex =
        "(A){" + std::to_string(Prefix) + "}[0-9]{16}";
    Expected<FormatSpec> Spec = parseRegex(Regex);
    if (!Spec)
      std::abort();
    KeyGenerator Gen(*Spec, KeyDistribution::Uniform, Prefix);
    std::vector<std::string> Keys;
    for (int I = 0; I != 64; ++I)
      Keys.push_back(Gen.next());

    Expected<HashPlan> NaivePlan =
        synthesize(Spec->abstract(), HashFamily::Naive);
    Expected<HashPlan> OffXorPlan =
        synthesize(Spec->abstract(), HashFamily::OffXor);
    if (!NaivePlan || !OffXorPlan)
      std::abort();
    const SynthesizedHash Naive(NaivePlan.take());
    const SynthesizedHash OffXor(*OffXorPlan);

    const double NaiveNs = hashNsPerKey(Naive, Keys, Rounds);
    const double OffXorNs = hashNsPerKey(OffXor, Keys, Rounds);
    Prefixes.push_back(static_cast<double>(Prefix));
    NaiveTimes.push_back(NaiveNs);
    OffXorTimes.push_back(OffXorNs);
    Table.addRow({std::to_string(Prefix),
                  std::to_string(Prefix + 16),
                  formatDouble(NaiveNs, 2), formatDouble(OffXorNs, 2),
                  std::to_string(OffXorPlan->Steps.size())});
  }
  std::printf("%s\n", Table.str().c_str());
  std::printf("Pearson r vs prefix size: Naive %.4f (expected ~1: linear "
              "cost), OffXor %.4f (expected ~0: constant cost).\n",
              pearsonCorrelation(Prefixes, NaiveTimes),
              pearsonCorrelation(Prefixes, OffXorTimes));

  if (!Options.JsonPath.empty()) {
    std::FILE *F = openJsonReport(Options.JsonPath, "ablation_skip_table");
    if (!F)
      return 1;
    std::fprintf(F, "  \"unit\": \"ns_per_key\",\n  \"prefix_sweep\": [\n");
    for (size_t I = 0; I != Prefixes.size(); ++I)
      std::fprintf(F,
                   "    {\"prefix_bytes\": %.0f, \"naive\": %.2f, "
                   "\"offxor\": %.2f}%s\n",
                   Prefixes[I], NaiveTimes[I], OffXorTimes[I],
                   I + 1 == Prefixes.size() ? "" : ",");
    std::fprintf(F,
                 "  ],\n  \"pearson\": {\"naive\": %.4f, "
                 "\"offxor\": %.4f},\n",
                 pearsonCorrelation(Prefixes, NaiveTimes),
                 pearsonCorrelation(Prefixes, OffXorTimes));
    closeJsonReport(F);
    std::printf("wrote %s\n", Options.JsonPath.c_str());
  }
  return 0;
}
