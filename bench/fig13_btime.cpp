//===- bench/fig13_btime.cpp - Figure 13: B-Time boxplots -----------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 13 (RQ1): the distribution of full-benchmark
/// execution time (B-Time) for each hash function across the experiment
/// grid, x86 with hardware pext. Gperf is excluded from the plot (as in
/// the paper: two orders of magnitude slower) but its geomean is
/// reported below the figure.
///
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "stats/mann_whitney.h"

#include <map>

using namespace sepe;
using namespace sepe::bench;

int main(int Argc, char **Argv) {
  const BenchOptions Options = parseBenchOptions(Argc, Argv);
  printHeader("Figure 13 - B-Time per hash function (x86)",
              "RQ1: how fast are the synthetic functions end to end?",
              Options);

  std::map<HashKind, MetricSamples> Metrics;
  const std::vector<ExperimentConfig> Grid =
      standardGrid(Options.Affectations, Options.Spreads);

  for (PaperKey Key : Options.Keys) {
    const HashFunctionSet Set = HashFunctionSet::create(Key);
    for (const ExperimentConfig &Base : Grid) {
      for (size_t Sample = 0; Sample != Options.Samples; ++Sample) {
        ExperimentConfig Config = Base;
        Config.Seed = Base.Seed * 1000003 + Sample;
        const Workload Work = makeWorkload(Key, Config);
        for (HashKind Kind : AllHashKinds)
          Metrics[Kind].add(runExperiment(Work, Config, Kind, Set));
      }
    }
  }

  std::vector<std::string> Labels;
  std::vector<BoxStats> Boxes;
  for (HashKind Kind : AllHashKinds) {
    if (Kind == HashKind::Gperf)
      continue; // Excluded from the figure, as in the paper.
    Labels.push_back(hashKindName(Kind));
    Boxes.push_back(boxStats(Metrics[Kind].BTime));
  }
  std::printf("%s\n", renderBoxplots(Labels, Boxes).c_str());

  const double StlGeo = geometricMean(Metrics[HashKind::Stl].BTime);
  TextTable Table({"Function", "B-Time geomean (ms)", "vs STL"});
  for (HashKind Kind : AllHashKinds) {
    const double Geo = geometricMean(Metrics[Kind].BTime);
    Table.addRow({hashKindName(Kind), formatDouble(Geo),
                  formatDouble(100.0 * (StlGeo / Geo - 1.0), 2) + "%"});
  }
  std::printf("%s\n", Table.str().c_str());

  // The paper's significance claims.
  const auto PValue = [&](HashKind A, HashKind B) {
    return mannWhitneyU(Metrics[A].BTime, Metrics[B].BTime).PValue;
  };
  std::printf("Mann-Whitney U (B-Time):\n");
  for (HashKind Kind : SyntheticHashKinds)
    std::printf("  %-7s vs STL   p = %.4f\n", hashKindName(Kind),
                PValue(Kind, HashKind::Stl));
  std::printf("  OffXor  vs Naive p = %.4f (paper: 0.51, equivalent)\n",
              PValue(HashKind::OffXor, HashKind::Naive));
  std::printf("  City    vs STL   p = %.4f (paper: 0.44, equivalent)\n",
              PValue(HashKind::City, HashKind::Stl));

  std::printf("\nShape check (paper): synthetic functions fastest; STL ~ "
              "City; Abseil and FNV slower; Gperf off the chart "
              "(geomean %.3f ms).\n",
              geometricMean(Metrics[HashKind::Gperf].BTime));

  if (!Options.JsonPath.empty()) {
    std::FILE *F = openJsonReport(Options.JsonPath, "fig13_btime");
    if (!F)
      return 1;
    std::fprintf(F, "  \"unit\": \"ms\",\n  \"btime\": [\n");
    for (size_t I = 0; I != AllHashKinds.size(); ++I) {
      const HashKind Kind = AllHashKinds[I];
      std::fprintf(F,
                   "    {\"hash\": \"%s\", \"geomean\": %.4f, "
                   "\"stats\": %s}%s\n",
                   hashKindName(Kind),
                   geometricMean(Metrics[Kind].BTime),
                   boxStatsJson(boxStats(Metrics[Kind].BTime)).c_str(),
                   I + 1 == AllHashKinds.size() ? "" : ",");
    }
    std::fprintf(F, "  ],\n  \"mann_whitney_vs_stl\": {");
    for (size_t I = 0; I != SyntheticHashKinds.size(); ++I)
      std::fprintf(F, "%s\"%s\": %.4f", I == 0 ? "" : ", ",
                   hashKindName(SyntheticHashKinds[I]),
                   PValue(SyntheticHashKinds[I], HashKind::Stl));
    std::fprintf(F, "},\n");
    closeJsonReport(F);
    std::printf("wrote %s\n", Options.JsonPath.c_str());
  }
  return 0;
}
