//===- bench/fig14_collisions.cpp - Figure 14: bucket collisions ----------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 14 (RQ2): the distribution of bucket-collision
/// counts per hash function over the experiment grid, plus the
/// Mann-Whitney check that the synthetic functions are statistically
/// indistinguishable from STL — with Gperf the lone outlier.
///
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "stats/mann_whitney.h"

#include <map>

using namespace sepe;
using namespace sepe::bench;

int main(int Argc, char **Argv) {
  const BenchOptions Options = parseBenchOptions(Argc, Argv);
  printHeader("Figure 14 - bucket collisions per hash function",
              "RQ2: do the synthetic functions collide more in STL "
              "containers?",
              Options);

  std::map<HashKind, MetricSamples> Metrics;
  const std::vector<ExperimentConfig> Grid =
      standardGrid(Options.Affectations, Options.Spreads);

  for (PaperKey Key : Options.Keys) {
    const HashFunctionSet Set = HashFunctionSet::create(Key);
    for (const ExperimentConfig &Base : Grid) {
      // Collisions are deterministic per workload; one sample suffices.
      const Workload Work = makeWorkload(Key, Base);
      for (HashKind Kind : AllHashKinds)
        Metrics[Kind].add(runExperiment(Work, Base, Kind, Set));
    }
  }

  std::vector<std::string> Labels;
  std::vector<BoxStats> Boxes;
  for (HashKind Kind : AllHashKinds) {
    Labels.push_back(hashKindName(Kind));
    Boxes.push_back(boxStats(Metrics[Kind].BColl));
  }
  std::printf("%s\n", renderBoxplots(Labels, Boxes).c_str());

  std::printf("Mann-Whitney U (bucket collisions vs STL):\n");
  for (HashKind Kind : AllHashKinds) {
    if (Kind == HashKind::Stl)
      continue;
    const double P = mannWhitneyU(Metrics[Kind].BColl,
                                  Metrics[HashKind::Stl].BColl)
                         .PValue;
    std::printf("  %-7s p = %.4f%s\n", hashKindName(Kind), P,
                P < 0.05 ? "  (different)" : "  (equivalent)");
  }
  std::printf("\nShape check (paper): no meaningful difference between "
              "synthetic functions and STL; Gperf much higher.\n");

  if (!Options.JsonPath.empty()) {
    std::FILE *F = openJsonReport(Options.JsonPath, "fig14_collisions");
    if (!F)
      return 1;
    std::fprintf(F, "  \"unit\": \"bucket_collisions\",\n"
                 "  \"collisions\": [\n");
    for (size_t I = 0; I != AllHashKinds.size(); ++I) {
      const HashKind Kind = AllHashKinds[I];
      const double P =
          Kind == HashKind::Stl
              ? 1.0
              : mannWhitneyU(Metrics[Kind].BColl,
                             Metrics[HashKind::Stl].BColl)
                    .PValue;
      std::fprintf(F,
                   "    {\"hash\": \"%s\", \"p_vs_stl\": %.4f, "
                   "\"stats\": %s}%s\n",
                   hashKindName(Kind), P,
                   boxStatsJson(boxStats(Metrics[Kind].BColl)).c_str(),
                   I + 1 == AllHashKinds.size() ? "" : ",");
    }
    std::fprintf(F, "  ],\n");
    closeJsonReport(F);
    std::printf("wrote %s\n", Options.JsonPath.c_str());
  }
  return 0;
}
