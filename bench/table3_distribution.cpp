//===- bench/table3_distribution.cpp - Table 3: distribution impact -------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 3 (RQ5): geometric-mean B-Time and total true
/// collisions per hash function, broken down by key distribution
/// (incremental / normal / uniform).
///
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include <map>

using namespace sepe;
using namespace sepe::bench;

int main(int Argc, char **Argv) {
  const BenchOptions Options = parseBenchOptions(Argc, Argv);
  printHeader("Table 3 - key distribution impact",
              "RQ5: how does the key distribution shape time and "
              "collisions?",
              Options);

  struct Cell {
    std::vector<double> BTime;
    double TColl = 0;
  };
  std::map<HashKind, std::map<KeyDistribution, Cell>> Cells;
  // True collisions per key format, for the JSON breakdown: the table
  // sums across formats, which hides which format a family collides on.
  std::map<PaperKey,
           std::map<HashKind, std::map<KeyDistribution, uint64_t>>>
      PerFormat;

  const std::vector<ExperimentConfig> Grid =
      standardGrid(Options.Affectations, Options.Spreads);

  for (PaperKey Key : Options.Keys) {
    const HashFunctionSet Set = HashFunctionSet::create(Key);
    for (KeyDistribution Dist : AllKeyDistributions) {
      KeyGenerator Gen(paperKeyFormat(Key), Dist,
                       0xd157 + static_cast<uint64_t>(Key));
      const std::vector<std::string> Keys =
          Gen.distinct(Options.Full ? 10000 : 2000);
      for (HashKind Kind : AllHashKinds) {
        const uint64_t Collisions = countTrueCollisions(Keys, Kind, Set);
        Cells[Kind][Dist].TColl += static_cast<double>(Collisions);
        PerFormat[Key][Kind][Dist] = Collisions;
      }
    }
    for (const ExperimentConfig &Base : Grid) {
      for (size_t Sample = 0; Sample != Options.Samples; ++Sample) {
        ExperimentConfig Config = Base;
        Config.Seed = Base.Seed * 31337 + Sample;
        const Workload Work = makeWorkload(Key, Config);
        for (HashKind Kind : AllHashKinds)
          Cells[Kind][Config.Distribution].BTime.push_back(
              runExperiment(Work, Config, Kind, Set).BTimeMs);
      }
    }
  }

  TextTable Table({"Function", "Inc BT", "Inc TC", "Normal BT", "Normal TC",
                   "Uniform BT", "Uniform TC"});
  for (HashKind Kind : AllHashKinds) {
    std::vector<std::string> Row = {hashKindName(Kind)};
    for (KeyDistribution Dist : AllKeyDistributions) {
      const Cell &C = Cells[Kind][Dist];
      Row.push_back(formatDouble(geometricMean(C.BTime)));
      Row.push_back(formatDouble(C.TColl, 0));
    }
    Table.addRow(std::move(Row));
  }
  std::printf("%s\n", Table.str().c_str());

  std::printf("Shape check (paper Table 3): Pext has 0 collisions under "
              "every distribution; Gperf collides everywhere; uniform "
              "keys give the fastest bucket times; Gpt collides most "
              "under uniform keys.\n");

  if (!Options.JsonPath.empty()) {
    std::FILE *F = openJsonReport(Options.JsonPath, "table3_distribution");
    if (!F)
      return 1;
    std::fprintf(F, "  \"unit\": \"ms_and_true_collisions\",\n"
                 "  \"distributions\": [\n");
    for (size_t I = 0; I != AllHashKinds.size(); ++I) {
      const HashKind Kind = AllHashKinds[I];
      std::fprintf(F, "    {\"hash\": \"%s\"", hashKindName(Kind));
      for (KeyDistribution Dist : AllKeyDistributions) {
        const Cell &C = Cells[Kind][Dist];
        std::fprintf(F, ", \"%s_btime_ms\": %.4f, \"%s_tcoll\": %.0f",
                     distributionName(Dist), geometricMean(C.BTime),
                     distributionName(Dist), C.TColl);
      }
      std::fprintf(F, "}%s\n", I + 1 == AllHashKinds.size() ? "" : ",");
    }
    std::fprintf(F, "  ],\n  \"per_format\": [\n");
    size_t Row = 0;
    const size_t Rows = PerFormat.size() * AllHashKinds.size();
    for (const auto &[Key, ByKind] : PerFormat) {
      for (HashKind Kind : AllHashKinds) {
        std::fprintf(F, "    {\"format\": \"%s\", \"hash\": \"%s\"",
                     paperKeyName(Key), hashKindName(Kind));
        for (KeyDistribution Dist : AllKeyDistributions)
          std::fprintf(F, ", \"%s_tcoll\": %llu", distributionName(Dist),
                       static_cast<unsigned long long>(
                           ByKind.at(Kind).at(Dist)));
        std::fprintf(F, "}%s\n", ++Row == Rows ? "" : ",");
      }
    }
    std::fprintf(F, "  ],\n");
    closeJsonReport(F);
    std::printf("wrote %s\n", Options.JsonPath.c_str());
  }
  return 0;
}
