//===- bench/fig17_lowmix_buckets.cpp - Figure 17: low-mixing BC ----------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 17 (RQ7): bucket collisions in a low-mixing
/// container that indexes buckets with the 64-X most significant hash
/// bits, sweeping X (the number of discarded low bits) from 0 to 56.
///
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "container/low_mix_table.h"

#include <map>

using namespace sepe;
using namespace sepe::bench;

int main(int Argc, char **Argv) {
  BenchOptions Options = parseBenchOptions(Argc, Argv);
  const size_t KeyCount = Options.Full ? 10000 : 4000;
  printHeader("Figure 17 - bucket collisions vs discarded low bits",
              "RQ7: what happens in a container indexed by the most "
              "significant hash bits?",
              Options);

  const std::vector<unsigned> DiscardSweep = {0,  8,  16, 24, 32,
                                              40, 48, 56};

  std::vector<std::string> Headers = {"Function"};
  for (unsigned X : DiscardSweep)
    Headers.push_back("X=" + std::to_string(X));
  TextTable Table(Headers);

  // Aggregate across key types, as in the paper's "Aggregated BC".
  std::map<HashKind, std::map<unsigned, double>> Sweep;
  for (HashKind Kind : AllHashKinds) {
    std::map<unsigned, double> &Collisions = Sweep[Kind];
    for (PaperKey Key : Options.Keys) {
      const HashFunctionSet Set = HashFunctionSet::create(Key);
      KeyGenerator Gen(paperKeyFormat(Key), KeyDistribution::Uniform,
                       0xf19 + static_cast<uint64_t>(Key));
      const std::vector<std::string> Keys = Gen.distinct(KeyCount);
      for (unsigned X : DiscardSweep) {
        Set.visit(Kind, [&](const auto &Hasher) {
          LowMixTable<std::string, std::decay_t<decltype(Hasher)>> Table{
              Hasher, X, KeyCount * 2};
          for (const std::string &Text : Keys)
            Table.insert(Text);
          Collisions[X] += static_cast<double>(Table.bucketCollisions());
        });
      }
    }
    std::vector<std::string> Row = {hashKindName(Kind)};
    for (unsigned X : DiscardSweep)
      Row.push_back(formatDouble(
          Collisions[X] / static_cast<double>(Options.Keys.size()), 0));
    Table.addRow(std::move(Row));
  }
  std::printf("%s\n", Table.str().c_str());

  std::printf("Shape check (paper Figure 17): Naive and OffXor degrade "
              "sharply as X grows; Pext and Aes resist longer; the "
              "mixing baselines (STL, City, Abseil, FNV) stay flat.\n");

  if (!Options.JsonPath.empty()) {
    std::FILE *F = openJsonReport(Options.JsonPath, "fig17_lowmix_buckets");
    if (!F)
      return 1;
    std::fprintf(F, "  \"unit\": \"bucket_collisions_per_key_type\",\n"
                 "  \"key_count\": %zu,\n  \"sweep\": [\n",
                 KeyCount);
    for (size_t I = 0; I != AllHashKinds.size(); ++I) {
      const HashKind Kind = AllHashKinds[I];
      std::fprintf(F, "    {\"hash\": \"%s\"", hashKindName(Kind));
      for (unsigned X : DiscardSweep)
        std::fprintf(F, ", \"x%u\": %.0f", X,
                     Sweep[Kind][X] /
                         static_cast<double>(Options.Keys.size()));
      std::fprintf(F, "}%s\n", I + 1 == AllHashKinds.size() ? "" : ",");
    }
    std::fprintf(F, "  ],\n");
    closeJsonReport(F);
    std::printf("wrote %s\n", Options.JsonPath.c_str());
  }
  return 0;
}
