//===- bench/fig15_portable.cpp - Figure 15: aarch64 substitute -----------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 15 (RQ4). The paper measures a Jetson (aarch64)
/// that lacks `bext`, so the Pext family is excluded and the remaining
/// synthetic functions run without specialized bit-extraction hardware.
/// We substitute that machine with IsaLevel::NoBitExtract: software
/// bit gathering, hardware AES (the Jetson has the crypto extensions;
/// only bext is missing). See DESIGN.md, "Substitutions".
///
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "core/synthesizer.h"
#include "stats/mann_whitney.h"

#include <map>

using namespace sepe;
using namespace sepe::bench;

int main(int Argc, char **Argv) {
  const BenchOptions Options = parseBenchOptions(Argc, Argv);
  printHeader("Figure 15 - B-Time without bit-extraction hardware",
              "RQ4: does the advantage survive without pext hardware?",
              Options);

  // Pext is excluded, as on the paper's Jetson.
  const std::vector<HashKind> Kinds = {
      HashKind::Abseil, HashKind::Aes, HashKind::City,  HashKind::Fnv,
      HashKind::Gpt,    HashKind::Naive, HashKind::OffXor, HashKind::Stl};

  std::map<HashKind, MetricSamples> Metrics;
  const std::vector<ExperimentConfig> Grid =
      standardGrid(Options.Affectations, Options.Spreads);

  for (PaperKey Key : Options.Keys) {
    const HashFunctionSet Set =
        HashFunctionSet::create(Key, IsaLevel::NoBitExtract);
    for (const ExperimentConfig &Base : Grid) {
      for (size_t Sample = 0; Sample != Options.Samples; ++Sample) {
        ExperimentConfig Config = Base;
        Config.Seed = Base.Seed * 104729 + Sample;
        const Workload Work = makeWorkload(Key, Config);
        for (HashKind Kind : Kinds)
          Metrics[Kind].add(runExperiment(Work, Config, Kind, Set));
      }
    }
  }

  std::vector<std::string> Labels;
  std::vector<BoxStats> Boxes;
  for (HashKind Kind : Kinds) {
    Labels.push_back(hashKindName(Kind));
    Boxes.push_back(boxStats(Metrics[Kind].BTime));
  }
  std::printf("%s\n", renderBoxplots(Labels, Boxes).c_str());

  const auto PValue = [&](HashKind A, HashKind B) {
    return mannWhitneyU(Metrics[A].BTime, Metrics[B].BTime).PValue;
  };
  std::printf("Mann-Whitney U: Naive vs OffXor p = %.4f (paper: "
              "equivalent)\n",
              PValue(HashKind::Naive, HashKind::OffXor));
  std::printf("                OffXor vs STL  p = %.4f (paper: "
              "different)\n\n",
              PValue(HashKind::OffXor, HashKind::Stl));
  std::printf("Shape check (paper Figure 15): Aes/Naive/OffXor remain "
              "the fastest even without specialized hardware; Abseil and "
              "FNV close the gap relative to x86.\n");

  if (!Options.JsonPath.empty()) {
    std::FILE *F = openJsonReport(Options.JsonPath, "fig15_portable");
    if (!F)
      return 1;
    std::fprintf(F, "  \"unit\": \"ms\",\n  \"isa\": \"no_bit_extract\",\n"
                 "  \"btime\": [\n");
    for (size_t I = 0; I != Kinds.size(); ++I)
      std::fprintf(F,
                   "    {\"hash\": \"%s\", \"geomean\": %.4f, "
                   "\"stats\": %s}%s\n",
                   hashKindName(Kinds[I]),
                   geometricMean(Metrics[Kinds[I]].BTime),
                   boxStatsJson(boxStats(Metrics[Kinds[I]].BTime)).c_str(),
                   I + 1 == Kinds.size() ? "" : ",");
    std::fprintf(F,
                 "  ],\n  \"mann_whitney\": {\"naive_vs_offxor\": %.4f, "
                 "\"offxor_vs_stl\": %.4f},\n",
                 PValue(HashKind::Naive, HashKind::OffXor),
                 PValue(HashKind::OffXor, HashKind::Stl));
    closeJsonReport(F);
    std::printf("wrote %s\n", Options.JsonPath.c_str());
  }
  return 0;
}
