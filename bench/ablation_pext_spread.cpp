//===- bench/ablation_pext_spread.cpp - Ablation: Pext bit spreading ------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation for the design choice behind Figure 12's Step 3 (and the
/// RQ7 discussion): Pext hoists its final extracted chunk to the top of
/// the 64-bit range. This bench compares SpreadToTopBits on/off along
/// two axes:
///
///   - true collisions under a low-mixing (most-significant-bit)
///     container sweep — where spreading is supposed to help;
///   - bucket collisions in an ordinary modulo container — where
///     spreading must not hurt.
///
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "core/executor.h"
#include "core/synthesizer.h"

#include <unordered_set>

using namespace sepe;
using namespace sepe::bench;

namespace {

uint64_t truncatedCollisions(const SynthesizedHash &Hash,
                             const std::vector<std::string> &Keys,
                             unsigned Discard) {
  std::unordered_set<uint64_t> Seen;
  uint64_t Collisions = 0;
  for (const std::string &Key : Keys)
    if (!Seen.insert(static_cast<uint64_t>(Hash(Key)) >> Discard).second)
      ++Collisions;
  return Collisions;
}

uint64_t moduloBucketCollisions(const SynthesizedHash &Hash,
                                const std::vector<std::string> &Keys,
                                size_t Buckets) {
  std::vector<uint32_t> Counts(Buckets, 0);
  for (const std::string &Key : Keys)
    ++Counts[static_cast<uint64_t>(Hash(Key)) % Buckets];
  uint64_t Collisions = 0;
  for (uint32_t Count : Counts)
    if (Count > 1)
      Collisions += Count - 1;
  return Collisions;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Options = parseBenchOptions(Argc, Argv);
  const size_t KeyCount = Options.Full ? 10000 : 4000;
  printHeader("Ablation - Pext SpreadToTopBits",
              "Does hoisting the last chunk to the top bits pay off?",
              Options);

  const std::vector<unsigned> DiscardSweep = {16, 32, 48, 56};
  std::vector<std::string> Headers = {"Key", "Variant", "mod-buckets BC"};
  for (unsigned X : DiscardSweep)
    Headers.push_back("TC X=" + std::to_string(X));
  TextTable Table(Headers);

  struct VariantResult {
    PaperKey Key;
    bool Spread;
    uint64_t ModuloBc;
    std::vector<uint64_t> TruncatedTc;
  };
  std::vector<VariantResult> Rows;

  for (PaperKey Key : Options.Keys) {
    KeyGenerator Gen(paperKeyFormat(Key), KeyDistribution::Incremental,
                     0xab1a + static_cast<uint64_t>(Key));
    const std::vector<std::string> Keys = Gen.distinct(KeyCount);
    for (bool Spread : {true, false}) {
      SynthesisOptions Synthesis;
      Synthesis.SpreadToTopBits = Spread;
      Expected<HashPlan> Plan = synthesize(
          paperKeyFormat(Key).abstract(), HashFamily::Pext, Synthesis);
      if (!Plan)
        std::abort();
      const SynthesizedHash Hash(Plan.take());
      VariantResult Result{Key, Spread,
                           moduloBucketCollisions(Hash, Keys,
                                                  KeyCount * 2),
                           {}};
      for (unsigned X : DiscardSweep)
        Result.TruncatedTc.push_back(truncatedCollisions(Hash, Keys, X));
      std::vector<std::string> Row = {
          paperKeyName(Key), Spread ? "spread" : "packed",
          formatDouble(static_cast<double>(Result.ModuloBc), 0)};
      for (uint64_t Tc : Result.TruncatedTc)
        Row.push_back(formatDouble(static_cast<double>(Tc), 0));
      Table.addRow(std::move(Row));
      Rows.push_back(std::move(Result));
    }
  }
  std::printf("%s\n", Table.str().c_str());
  std::printf("Expected shape: identical modulo-bucket collisions (the "
              "low bits are untouched), but the spread variant survives "
              "larger X before its truncated hashes collapse.\n");

  if (!Options.JsonPath.empty()) {
    std::FILE *F = openJsonReport(Options.JsonPath, "ablation_pext_spread");
    if (!F)
      return 1;
    std::fprintf(F, "  \"key_count\": %zu,\n  \"variants\": [\n",
                 KeyCount);
    for (size_t I = 0; I != Rows.size(); ++I) {
      const VariantResult &R = Rows[I];
      std::fprintf(F,
                   "    {\"key\": \"%s\", \"variant\": \"%s\", "
                   "\"modulo_bc\": %llu",
                   paperKeyName(R.Key), R.Spread ? "spread" : "packed",
                   static_cast<unsigned long long>(R.ModuloBc));
      for (size_t X = 0; X != DiscardSweep.size(); ++X)
        std::fprintf(F, ", \"tc_x%u\": %llu", DiscardSweep[X],
                     static_cast<unsigned long long>(R.TruncatedTc[X]));
      std::fprintf(F, "}%s\n", I + 1 == Rows.size() ? "" : ",");
    }
    std::fprintf(F, "  ],\n");
    closeJsonReport(F);
    std::printf("wrote %s\n", Options.JsonPath.c_str());
  }
  return 0;
}
