//===- bench/micro_hash.cpp - google-benchmark hash throughput ------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Raw hash-throughput microbenchmarks (the H-Time axis of Table 1) on
/// google-benchmark: every (hash function x paper key format) pair, on
/// both the per-key path and the many-keys-per-call batch path.
///
/// Before the google-benchmark sweep, a self-timed pass writes
/// BENCH_micro_hash.json (override with --json=PATH, or skip the sweep
/// with --json-only): per hash and format, ns/key for the single and
/// batch paths plus the batch speedup — the perf trajectory future PRs
/// compare against.
///
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "driver/hash_registry.h"
#include "keygen/distributions.h"
#include "keygen/paper_formats.h"
#include "support/batch.h"

#include <benchmark/benchmark.h>

#include <array>
#include <chrono>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

using namespace sepe;

namespace {

constexpr size_t BenchKeyCount = 512;

std::vector<std::string> benchKeys(PaperKey Key) {
  KeyGenerator Gen(paperKeyFormat(Key), KeyDistribution::Uniform,
                   0xbe9c4 + static_cast<uint64_t>(Key));
  return Gen.distinct(BenchKeyCount);
}

const HashFunctionSet &setFor(PaperKey Key) {
  static std::array<HashFunctionSet, 8> Sets = [] {
    std::array<HashFunctionSet, 8> Result;
    for (PaperKey K : AllPaperKeys)
      Result[static_cast<size_t>(K)] = HashFunctionSet::create(K);
    return Result;
  }();
  return Sets[static_cast<size_t>(Key)];
}

const std::vector<std::string_view> &viewsFor(PaperKey Key) {
  static std::array<std::vector<std::string>, 8> Text;
  static std::array<std::vector<std::string_view>, 8> Views;
  auto &V = Views[static_cast<size_t>(Key)];
  if (V.empty()) {
    auto &T = Text[static_cast<size_t>(Key)];
    T = benchKeys(Key);
    V.assign(T.begin(), T.end());
  }
  return V;
}

void hashThroughput(benchmark::State &State, PaperKey Key, HashKind Kind) {
  const std::vector<std::string_view> &Keys = viewsFor(Key);
  const HashFunctionSet &Set = setFor(Key);
  size_t I = 0;
  Set.visit(Kind, [&](const auto &Hasher) {
    for (auto _ : State) {
      benchmark::DoNotOptimize(Hasher(Keys[I]));
      I = (I + 1) & (BenchKeyCount - 1);
    }
  });
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Keys.front().size()));
}

void hashThroughputBatch(benchmark::State &State, PaperKey Key,
                         HashKind Kind) {
  const std::vector<std::string_view> &Keys = viewsFor(Key);
  const HashFunctionSet &Set = setFor(Key);
  std::vector<uint64_t> Out(Keys.size());
  Set.visit(Kind, [&](const auto &Hasher) {
    for (auto _ : State) {
      hashBatch(Hasher, Keys.data(), Out.data(), Keys.size());
      benchmark::DoNotOptimize(Out.data());
      benchmark::ClobberMemory();
    }
  });
  // One iteration hashes the whole block; normalize to per-key bytes.
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Keys.size()) *
                          static_cast<int64_t>(Keys.front().size()));
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Keys.size()));
}

// --- Self-timed JSON pass -------------------------------------------------

double nowNs() {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-3 ns/key for \p Pass, where one call hashes \p KeysPerPass
/// keys; each repetition accumulates passes for at least 2 ms.
template <typename Fn> double nsPerKey(size_t KeysPerPass, Fn &&Pass) {
  Pass();
  double Best = 1e300;
  for (int Rep = 0; Rep != 3; ++Rep) {
    const double Start = nowNs();
    double Elapsed = 0;
    size_t Passes = 0;
    do {
      Pass();
      ++Passes;
      Elapsed = nowNs() - Start;
    } while (Elapsed < 2e6);
    const double PerKey =
        Elapsed / (static_cast<double>(Passes) *
                   static_cast<double>(KeysPerPass));
    Best = Best < PerKey ? Best : PerKey;
  }
  return Best;
}

struct JsonRow {
  PaperKey Key;
  HashKind Kind;
  double SingleNs = 0;
  double BatchNs = 0;
  /// The kernel family the default (Auto) batch dispatch ran — what
  /// actually executed on this host, not the compiled-in ceiling.
  std::string BatchPath = "scalar";
  /// For synthetic kinds: ns/key per forced dispatch rung this host can
  /// resolve, deduplicated by resolved name.
  std::vector<std::pair<std::string, double>> PathNs;
};

std::vector<JsonRow> measureAll() {
  std::vector<JsonRow> Rows;
  for (PaperKey Key : AllPaperKeys) {
    const std::vector<std::string_view> &Views = viewsFor(Key);
    const HashFunctionSet &Set = setFor(Key);
    std::vector<uint64_t> Out(Views.size());
    for (HashKind Kind : AllHashKinds) {
      JsonRow Row;
      Row.Key = Key;
      Row.Kind = Kind;
      Set.visit(Kind, [&](const auto &Hasher) {
        Row.SingleNs = nsPerKey(Views.size(), [&] {
          uint64_t Sink = 0;
          for (const std::string_view V : Views)
            Sink += static_cast<uint64_t>(Hasher(V));
          benchmark::DoNotOptimize(Sink);
        });
        Row.BatchNs = nsPerKey(Views.size(), [&] {
          hashBatch(Hasher, Views.data(), Out.data(), Views.size());
          benchmark::DoNotOptimize(Out.data());
          benchmark::ClobberMemory();
        });
        Row.BatchPath = batchPathOf(Hasher);
      });
      if (isSynthetic(Kind)) {
        const SynthesizedHash &Attached =
            Set.synthesized(syntheticFamily(Kind));
        for (BatchPath Preferred :
             {BatchPath::Scalar, BatchPath::Interleaved, BatchPath::Avx2,
              BatchPath::Jit}) {
          const SynthesizedHash Forced(Attached.plan(), IsaLevel::Native,
                                       Preferred);
          const std::string Path = Forced.batchPathName();
          bool Seen = false;
          for (const auto &[Name, Ns] : Row.PathNs)
            Seen = Seen || Name == Path;
          if (Seen)
            continue;
          const double Ns = nsPerKey(Views.size(), [&] {
            Forced.hashBatch(Views.data(), Out.data(), Views.size());
            benchmark::DoNotOptimize(Out.data());
            benchmark::ClobberMemory();
          });
          Row.PathNs.emplace_back(Path, Ns);
        }
      }
      Rows.push_back(Row);
    }
  }
  return Rows;
}

bool writeJson(const std::vector<JsonRow> &Rows, const std::string &Path) {
  std::FILE *F = sepe::bench::openJsonReport(Path, "micro_hash");
  if (!F)
    return false;
  std::fprintf(F, "  \"keys_per_batch\": %zu,\n", BenchKeyCount);
  std::fprintf(F, "  \"unit\": \"ns_per_key\",\n  \"results\": [\n");
  for (size_t I = 0; I != Rows.size(); ++I) {
    const JsonRow &R = Rows[I];
    std::fprintf(F,
                 "    {\"format\": \"%s\", \"hash\": \"%s\", "
                 "\"single_ns_per_key\": %.4f, \"batch_ns_per_key\": %.4f, "
                 "\"batch_speedup\": %.4f, \"batch_path\": \"%s\"",
                 paperKeyName(R.Key), hashKindName(R.Kind), R.SingleNs,
                 R.BatchNs, R.BatchNs > 0 ? R.SingleNs / R.BatchNs : 0.0,
                 R.BatchPath.c_str());
    if (!R.PathNs.empty()) {
      std::fprintf(F, ", \"paths_ns_per_key\": {");
      for (size_t P = 0; P != R.PathNs.size(); ++P)
        std::fprintf(F, "%s\"%s\": %.4f", P == 0 ? "" : ", ",
                     R.PathNs[P].first.c_str(), R.PathNs[P].second);
      std::fprintf(F, "}");
    }
    std::fprintf(F, "}%s\n", I + 1 == Rows.size() ? "" : ",");
  }
  std::fprintf(F, "  ],\n");
  sepe::bench::closeJsonReport(F);
  return true;
}

void printJsonSummary(const std::vector<JsonRow> &Rows,
                      const std::string &Path) {
  std::printf("wrote %s (%zu rows)\n", Path.c_str(), Rows.size());
  std::printf("batch speedup (single ns/key -> batch ns/key), synthetic "
              "families on fixed-length formats:\n");
  for (const JsonRow &R : Rows) {
    if (!isSynthetic(R.Kind))
      continue;
    if (R.Key != PaperKey::SSN && R.Key != PaperKey::MAC &&
        R.Key != PaperKey::IPv4)
      continue;
    std::printf("  %-4s %-6s %7.2f -> %6.2f  (%.2fx, %s)\n",
                paperKeyName(R.Key), hashKindName(R.Kind), R.SingleNs,
                R.BatchNs, R.BatchNs > 0 ? R.SingleNs / R.BatchNs : 0.0,
                R.BatchPath.c_str());
    double JitNs = 0, ScalarNs = 0;
    for (const auto &[Name, Ns] : R.PathNs) {
      if (Name != R.BatchPath)
        std::printf("  %-4s %-6s   %11s path: %6.2f\n", "", "",
                    Name.c_str(), Ns);
      if (Name == "jit")
        JitNs = Ns;
      else if (Name == "scalar")
        ScalarNs = Ns;
    }
    if (JitNs > 0 && ScalarNs > 0)
      std::printf("  %-4s %-6s   jit vs interpreted scalar: %.2fx\n", "",
                  "", ScalarNs / JitNs);
  }
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = "BENCH_micro_hash.json";
  bool JsonOnly = false;
  std::vector<char *> Args;
  Args.reserve(static_cast<size_t>(argc) + 1);
  Args.push_back(argv[0]);
  for (int I = 1; I != argc; ++I) {
    const std::string Arg = argv[I];
    if (Arg.rfind("--json=", 0) == 0)
      JsonPath = Arg.substr(7);
    else if (Arg == "--json-only")
      JsonOnly = true;
    else
      Args.push_back(argv[I]);
  }

  const std::vector<JsonRow> Rows = measureAll();
  if (!writeJson(Rows, JsonPath))
    return 1;
  printJsonSummary(Rows, JsonPath);
  if (JsonOnly)
    return 0;

  // Keep the default sweep quick: 160 benchmarks at the library default
  // min time would run for minutes; callers can still override.
  std::string MinTime = "--benchmark_min_time=0.05s";
  bool HasMinTime = false;
  for (char *A : Args)
    if (std::string(A).rfind("--benchmark_min_time", 0) == 0)
      HasMinTime = true;
  if (!HasMinTime)
    Args.push_back(MinTime.data());
  int Argc = static_cast<int>(Args.size());

  for (PaperKey Key : AllPaperKeys)
    for (HashKind Kind : AllHashKinds) {
      const std::string Base = std::string("Hash/") + paperKeyName(Key) +
                               "/" + hashKindName(Kind);
      benchmark::RegisterBenchmark(
          Base.c_str(), [Key, Kind](benchmark::State &State) {
            hashThroughput(State, Key, Kind);
          });
      benchmark::RegisterBenchmark(
          (Base + "/batch").c_str(), [Key, Kind](benchmark::State &State) {
            hashThroughputBatch(State, Key, Kind);
          });
    }
  benchmark::Initialize(&Argc, Args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
