//===- bench/micro_hash.cpp - google-benchmark hash throughput ------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Raw hash-throughput microbenchmarks (the H-Time axis of Table 1) on
/// google-benchmark: every (hash function x paper key format) pair.
///
//===----------------------------------------------------------------------===//

#include "driver/hash_registry.h"
#include "keygen/distributions.h"

#include <benchmark/benchmark.h>

using namespace sepe;

namespace {

std::vector<std::string> benchKeys(PaperKey Key) {
  KeyGenerator Gen(paperKeyFormat(Key), KeyDistribution::Uniform,
                   0xbe9c4 + static_cast<uint64_t>(Key));
  return Gen.distinct(512);
}

const HashFunctionSet &setFor(PaperKey Key) {
  static std::array<HashFunctionSet, 8> Sets = [] {
    std::array<HashFunctionSet, 8> Result;
    for (PaperKey K : AllPaperKeys)
      Result[static_cast<size_t>(K)] = HashFunctionSet::create(K);
    return Result;
  }();
  return Sets[static_cast<size_t>(Key)];
}

void hashThroughput(benchmark::State &State, PaperKey Key, HashKind Kind) {
  const std::vector<std::string> Keys = benchKeys(Key);
  const HashFunctionSet &Set = setFor(Key);
  size_t I = 0;
  Set.visit(Kind, [&](const auto &Hasher) {
    for (auto _ : State) {
      benchmark::DoNotOptimize(Hasher(Keys[I]));
      I = (I + 1) & 511;
    }
  });
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Keys.front().size()));
}

} // namespace

int main(int argc, char **argv) {
  // Keep the default sweep quick: 80 benchmarks at the library default
  // min time would run for minutes; callers can still override.
  std::vector<char *> Args(argv, argv + argc);
  std::string MinTime = "--benchmark_min_time=0.05s";
  bool HasMinTime = false;
  for (int I = 1; I != argc; ++I)
    if (std::string(argv[I]).rfind("--benchmark_min_time", 0) == 0)
      HasMinTime = true;
  if (!HasMinTime)
    Args.push_back(MinTime.data());
  int Argc = static_cast<int>(Args.size());

  for (PaperKey Key : AllPaperKeys)
    for (HashKind Kind : AllHashKinds) {
      const std::string Name = std::string("Hash/") + paperKeyName(Key) +
                               "/" + hashKindName(Kind);
      benchmark::RegisterBenchmark(
          Name.c_str(), [Key, Kind](benchmark::State &State) {
            hashThroughput(State, Key, Kind);
          });
    }
  benchmark::Initialize(&Argc, Args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
