//===- bench/table1_summary.cpp - Table 1: the four metrics ---------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 1: geometric-mean B-Time, total H-Time, bucket
/// collisions and true collisions per hash function under the normal
/// key distribution — the paper's headline comparison, including the
/// ~50x H-Time gap between OffXor and Abseil.
///
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include <map>

using namespace sepe;
using namespace sepe::bench;

int main(int Argc, char **Argv) {
  const BenchOptions Options = parseBenchOptions(Argc, Argv);
  printHeader("Table 1 - performance summary (normal distribution)",
              "RQ1/RQ2: B-Time, H-Time, B-Coll, T-Coll per function",
              Options);

  std::map<HashKind, MetricSamples> Metrics;
  std::vector<ExperimentConfig> Grid =
      standardGrid(Options.Affectations, Options.Spreads);
  std::erase_if(Grid, [](const ExperimentConfig &Config) {
    return Config.Distribution != KeyDistribution::Normal;
  });

  for (PaperKey Key : Options.Keys) {
    const HashFunctionSet Set = HashFunctionSet::create(Key);
    // T-Coll: the paper counts collisions over 10,000 keys per type.
    {
      KeyGenerator Gen(paperKeyFormat(Key), KeyDistribution::Normal,
                       0x7c011 + static_cast<uint64_t>(Key));
      const std::vector<std::string> Keys =
          Gen.distinct(Options.Full ? 10000 : 2000);
      for (HashKind Kind : AllHashKinds)
        Metrics[Kind].TColl += static_cast<double>(
            countTrueCollisions(Keys, Kind, Set));
    }
    for (const ExperimentConfig &Base : Grid) {
      for (size_t Sample = 0; Sample != Options.Samples; ++Sample) {
        ExperimentConfig Config = Base;
        Config.Seed = Base.Seed * 7919 + Sample;
        const Workload Work = makeWorkload(Key, Config);
        for (HashKind Kind : AllHashKinds)
          Metrics[Kind].add(runExperiment(Work, Config, Kind, Set));
      }
    }
  }

  TextTable Table(
      {"Function", "B-Time (ms)", "H-Time (ms)", "B-Coll", "T-Coll"});
  for (HashKind Kind : AllHashKinds) {
    const MetricSamples &M = Metrics.at(Kind);
    Table.addRow({hashKindName(Kind), formatDouble(geometricMean(M.BTime)),
                  formatDouble(geometricMean(M.HTime), 4),
                  formatDouble(mean(M.BColl), 1),
                  formatDouble(M.TColl, 0)});
  }
  std::printf("%s\n", Table.str().c_str());

  const auto HGeo = [&](HashKind Kind) {
    return geometricMean(Metrics.at(Kind).HTime);
  };
  std::printf("H-Time ratios (paper: OffXor ~4.2x faster than STL, ~49x "
              "faster than Abseil; Aes ~2x faster than City):\n");
  std::printf("  STL    / OffXor = %.1fx\n",
              HGeo(HashKind::Stl) / HGeo(HashKind::OffXor));
  std::printf("  Abseil / OffXor = %.1fx\n",
              HGeo(HashKind::Abseil) / HGeo(HashKind::OffXor));
  std::printf("  City   / Aes    = %.1fx\n",
              HGeo(HashKind::City) / HGeo(HashKind::Aes));
  std::printf("\nShape check (paper Table 1): synthetic B-Time < STL; "
              "Gperf B-Time worst despite lowest H-Time; Pext T-Coll = 0; "
              "Gpt T-Coll dominated by IPv4.\n");

  if (!Options.JsonPath.empty()) {
    std::FILE *F = openJsonReport(Options.JsonPath, "table1_summary");
    if (!F)
      return 1;
    std::fprintf(F, "  \"distribution\": \"normal\",\n  \"summary\": [\n");
    for (size_t I = 0; I != AllHashKinds.size(); ++I) {
      const HashKind Kind = AllHashKinds[I];
      const MetricSamples &M = Metrics.at(Kind);
      std::fprintf(F,
                   "    {\"hash\": \"%s\", \"btime_ms\": %.4f, "
                   "\"htime_ms\": %.5f, \"bcoll\": %.1f, "
                   "\"tcoll\": %.0f}%s\n",
                   hashKindName(Kind), geometricMean(M.BTime),
                   geometricMean(M.HTime), mean(M.BColl), M.TColl,
                   I + 1 == AllHashKinds.size() ? "" : ",");
    }
    std::fprintf(F, "  ],\n");
    closeJsonReport(F);
    std::printf("wrote %s\n", Options.JsonPath.c_str());
  }
  return 0;
}
