//===- bench/fig18_lowmix_true.cpp - Figure 18: low-mixing TC -------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 18 (RQ7): true collisions when only the 64-X most
/// significant hash bits survive, plus the four-digit-integer worst
/// case the paper closes RQ7 with (forced short-key specialization,
/// upper vs lower 32 bits).
///
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "core/executor.h"
#include "core/regex_parser.h"
#include "core/synthesizer.h"

#include <map>
#include <unordered_set>

using namespace sepe;
using namespace sepe::bench;

namespace {

/// Distinct keys whose hashes collide once the low \p Discard bits are
/// dropped.
template <typename Hasher>
uint64_t truncatedCollisions(const Hasher &Hash,
                             const std::vector<std::string> &Keys,
                             unsigned Discard) {
  std::unordered_set<uint64_t> Seen;
  uint64_t Collisions = 0;
  for (const std::string &Key : Keys)
    if (!Seen.insert(static_cast<uint64_t>(Hash(Key)) >> Discard).second)
      ++Collisions;
  return Collisions;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Options = parseBenchOptions(Argc, Argv);
  const size_t KeyCount = Options.Full ? 10000 : 4000;
  printHeader("Figure 18 - true collisions vs discarded low bits",
              "RQ7: collisions once only the most significant hash bits "
              "survive",
              Options);

  const std::vector<unsigned> DiscardSweep = {0,  8,  16, 24, 32,
                                              40, 48, 56};

  std::vector<std::string> Headers = {"Function"};
  for (unsigned X : DiscardSweep)
    Headers.push_back("X=" + std::to_string(X));
  TextTable Table(Headers);

  std::map<HashKind, std::map<unsigned, double>> Sweep;
  for (HashKind Kind : AllHashKinds) {
    std::map<unsigned, double> &Collisions = Sweep[Kind];
    for (PaperKey Key : Options.Keys) {
      const HashFunctionSet Set = HashFunctionSet::create(Key);
      KeyGenerator Gen(paperKeyFormat(Key), KeyDistribution::Uniform,
                       0xf18 + static_cast<uint64_t>(Key));
      const std::vector<std::string> Keys = Gen.distinct(KeyCount);
      for (unsigned X : DiscardSweep)
        Set.visit(Kind, [&](const auto &Hasher) {
          Collisions[X] +=
              static_cast<double>(truncatedCollisions(Hasher, Keys, X));
        });
    }
    std::vector<std::string> Row = {hashKindName(Kind)};
    for (unsigned X : DiscardSweep)
      Row.push_back(formatDouble(
          Collisions[X] / static_cast<double>(Options.Keys.size()), 0));
    Table.addRow(std::move(Row));
  }
  std::printf("%s\n", Table.str().c_str());

  // --- The four-digit worst case ------------------------------------------
  std::printf("Four-digit integers (forced specialization, %zu keys = "
              "the whole space):\n",
              size_t{10000});
  Expected<FormatSpec> Spec = parseRegex(R"(\d{4})");
  if (!Spec)
    std::abort();
  SynthesisOptions Force;
  Force.AllowShortKeys = true;
  Expected<HashPlan> Plan =
      synthesize(Spec->abstract(), HashFamily::Pext, Force);
  if (!Plan)
    std::abort();
  const SynthesizedHash Pext(Plan.take());
  const MurmurStlHash Stl;

  KeyGenerator Gen(*Spec, KeyDistribution::Incremental, 0);
  const std::vector<std::string> Digits = Gen.distinct(10000);

  TextTable Short({"Function", "upper 32 bits", "lower 32 bits"});
  const auto LowerCollisions = [&](const auto &Hash) {
    std::unordered_set<uint64_t> Seen;
    uint64_t Collisions = 0;
    for (const std::string &Key : Digits)
      if (!Seen.insert(static_cast<uint64_t>(Hash(Key)) & 0xffffffffULL)
               .second)
        ++Collisions;
    return Collisions;
  };
  Short.addRow({"STL",
                formatDouble(static_cast<double>(
                                 truncatedCollisions(Stl, Digits, 32)),
                             0),
                formatDouble(static_cast<double>(LowerCollisions(Stl)), 0)});
  Short.addRow({"Pext",
                formatDouble(static_cast<double>(
                                 truncatedCollisions(Pext, Digits, 32)),
                             0),
                formatDouble(static_cast<double>(LowerCollisions(Pext)),
                             0)});
  std::printf("%s\n", Short.str().c_str());

  std::printf("Shape check (paper): with upper bits, Pext collapses "
              "(paper: 9,999 TC vs STL 5,786); with lower bits the two "
              "behave alike. Pext/Aes resist the sweep longer than "
              "Naive/OffXor.\n");

  if (!Options.JsonPath.empty()) {
    std::FILE *F = openJsonReport(Options.JsonPath, "fig18_lowmix_true");
    if (!F)
      return 1;
    std::fprintf(F, "  \"unit\": \"true_collisions_per_key_type\",\n"
                 "  \"key_count\": %zu,\n  \"sweep\": [\n",
                 KeyCount);
    for (size_t I = 0; I != AllHashKinds.size(); ++I) {
      const HashKind Kind = AllHashKinds[I];
      std::fprintf(F, "    {\"hash\": \"%s\"", hashKindName(Kind));
      for (unsigned X : DiscardSweep)
        std::fprintf(F, ", \"x%u\": %.0f", X,
                     Sweep[Kind][X] /
                         static_cast<double>(Options.Keys.size()));
      std::fprintf(F, "}%s\n", I + 1 == AllHashKinds.size() ? "" : ",");
    }
    std::fprintf(
        F,
        "  ],\n  \"four_digit_worst_case\": {"
        "\"stl_upper32\": %llu, \"stl_lower32\": %llu, "
        "\"pext_upper32\": %llu, \"pext_lower32\": %llu},\n",
        static_cast<unsigned long long>(
            truncatedCollisions(Stl, Digits, 32)),
        static_cast<unsigned long long>(LowerCollisions(Stl)),
        static_cast<unsigned long long>(
            truncatedCollisions(Pext, Digits, 32)),
        static_cast<unsigned long long>(LowerCollisions(Pext)));
    closeJsonReport(F);
    std::printf("wrote %s\n", Options.JsonPath.c_str());
  }
  return 0;
}
