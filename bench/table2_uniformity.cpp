//===- bench/table2_uniformity.cpp - Table 2: hash uniformity -------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 2 (RQ3): Chi-square goodness-of-fit of each hash
/// function's value distribution over the 64-bit range, per key
/// distribution, normalized by the STL result. Methodology follows the
/// paper: generate keys, hash, histogram, Chi-square against uniform.
///
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "stats/chi_square.h"

#include <map>

using namespace sepe;
using namespace sepe::bench;

int main(int Argc, char **Argv) {
  BenchOptions Options = parseBenchOptions(Argc, Argv);
  const size_t KeyCount = Options.Full ? 100000 : 20000;
  printHeader("Table 2 - hash uniformity (Chi-square / STL)",
              "RQ3: how uniform are the hash value distributions?",
              Options);

  // Chi2[kind][distribution] accumulated across key types.
  std::map<HashKind, std::map<KeyDistribution, std::vector<double>>> Chi2;
  // Raw (un-normalized) chi2 per key format, for the JSON breakdown:
  // the aggregate table divides by STL, which hides which format a
  // synthetic family is actually skewed on.
  std::map<PaperKey,
           std::map<HashKind, std::map<KeyDistribution, double>>>
      PerFormat;

  for (PaperKey Key : Options.Keys) {
    const HashFunctionSet Set = HashFunctionSet::create(Key);
    for (KeyDistribution Dist : AllKeyDistributions) {
      KeyGenerator Gen(paperKeyFormat(Key), Dist,
                       0xdead + static_cast<uint64_t>(Key));
      std::vector<std::string> Keys;
      Keys.reserve(KeyCount);
      for (size_t I = 0; I != KeyCount; ++I)
        Keys.push_back(Gen.next());
      for (HashKind Kind : AllHashKinds) {
        std::vector<uint64_t> Hashes;
        Hashes.reserve(Keys.size());
        Set.visit(Kind, [&](const auto &Hasher) {
          for (const std::string &Text : Keys)
            Hashes.push_back(Hasher(Text));
        });
        const double Raw = hashUniformityChi2(Hashes, 64);
        Chi2[Kind][Dist].push_back(Raw);
        PerFormat[Key][Kind][Dist] = Raw;
      }
    }
  }

  TextTable Table({"Function", "Inc", "Normal", "Uniform"});
  for (HashKind Kind : AllHashKinds) {
    std::vector<std::string> Row = {hashKindName(Kind)};
    for (KeyDistribution Dist : AllKeyDistributions) {
      const double Ours = geometricMean(Chi2[Kind][Dist]);
      const double Stl = geometricMean(Chi2[HashKind::Stl][Dist]);
      Row.push_back(formatDouble(Ours / Stl, 2));
    }
    Table.addRow(std::move(Row));
  }
  std::printf("%s\n", Table.str().c_str());

  std::printf("Shape check (paper Table 2): Abseil/City/FNV ~ 1.0; "
              "synthetic functions orders of magnitude less uniform; Pext "
              "best among synthetics on incremental keys; Gperf/Gpt "
              "worst.\n");

  if (!Options.JsonPath.empty()) {
    std::FILE *F = openJsonReport(Options.JsonPath, "table2_uniformity");
    if (!F)
      return 1;
    std::fprintf(F, "  \"unit\": \"chi2_over_stl\",\n  \"key_count\": "
                 "%zu,\n  \"uniformity\": [\n",
                 KeyCount);
    for (size_t I = 0; I != AllHashKinds.size(); ++I) {
      const HashKind Kind = AllHashKinds[I];
      std::fprintf(F, "    {\"hash\": \"%s\"", hashKindName(Kind));
      for (KeyDistribution Dist : AllKeyDistributions)
        std::fprintf(F, ", \"%s\": %.4f", distributionName(Dist),
                     geometricMean(Chi2[Kind][Dist]) /
                         geometricMean(Chi2[HashKind::Stl][Dist]));
      std::fprintf(F, "}%s\n", I + 1 == AllHashKinds.size() ? "" : ",");
    }
    std::fprintf(F, "  ],\n  \"per_format\": [\n");
    size_t Row = 0;
    const size_t Rows = PerFormat.size() * AllHashKinds.size();
    for (const auto &[Key, ByKind] : PerFormat) {
      for (HashKind Kind : AllHashKinds) {
        std::fprintf(F, "    {\"format\": \"%s\", \"hash\": \"%s\"",
                     paperKeyName(Key), hashKindName(Kind));
        for (KeyDistribution Dist : AllKeyDistributions)
          std::fprintf(F, ", \"%s_chi2\": %.4f", distributionName(Dist),
                       ByKind.at(Kind).at(Dist));
        std::fprintf(F, "}%s\n", ++Row == Rows ? "" : ",");
      }
    }
    std::fprintf(F, "  ],\n");
    closeJsonReport(F);
    std::printf("wrote %s\n", Options.JsonPath.c_str());
  }
  return 0;
}
