//===- bench/fig20_containers.cpp - Figure 20: container impact -----------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 20 (RQ9, appendix): B-Time grouped by container
/// type, demonstrating that the Multi variants pay an extra indirection
/// and that the relative ordering of hash functions is container-
/// independent.
///
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "container/flat_index_map.h"

#include <chrono>
#include <map>

using namespace sepe;
using namespace sepe::bench;

namespace {

/// Replays the schedule against a FlatIndexMap (the specialized-storage
/// extension: keyless, SwissTable group probing); comparable to the
/// U-Map B-Time since the ops match one for one.
double flatIndexBTime(const Workload &Work, const SynthesizedHash &Pext) {
  FlatIndexMap<uint64_t> Map(Pext);
  uint64_t Sink = 0;
  const auto Start = std::chrono::steady_clock::now();
  for (const auto &[Op, Index] : Work.Schedule) {
    const std::string &Key = Work.Keys[Index];
    switch (Op) {
    case Workload::Op::Insert:
      Map.insert(Key, 1);
      break;
    case Workload::Op::Search:
      Sink += Map.contains(Key) ? 1 : 0;
      break;
    case Workload::Op::Erase:
      Map.erase(Key);
      break;
    }
  }
  const auto End = std::chrono::steady_clock::now();
  asm volatile("" : : "r"(Sink) : "memory");
  return std::chrono::duration<double, std::milli>(End - Start).count();
}

} // namespace

int main(int Argc, char **Argv) {
  const BenchOptions Options = parseBenchOptions(Argc, Argv);
  printHeader("Figure 20 - execution time per container",
              "RQ9: does the data structure change the ranking?",
              Options);

  std::map<ContainerKind, MetricSamples> PerContainer;
  std::map<ContainerKind, std::map<HashKind, std::vector<double>>>
      PerContainerHash;
  std::vector<double> FlatBTime, UMapPextBTime;

  const std::vector<ExperimentConfig> Grid =
      standardGrid(Options.Affectations, Options.Spreads);
  const std::vector<HashKind> Kinds = {HashKind::Stl, HashKind::OffXor,
                                       HashKind::Pext, HashKind::City,
                                       HashKind::Abseil};

  for (PaperKey Key : Options.Keys) {
    const HashFunctionSet Set = HashFunctionSet::create(Key);
    for (const ExperimentConfig &Base : Grid) {
      for (size_t Sample = 0; Sample != Options.Samples; ++Sample) {
        ExperimentConfig Config = Base;
        Config.Seed = Base.Seed * 65537 + Sample;
        const Workload Work = makeWorkload(Key, Config);
        for (HashKind Kind : Kinds) {
          const ExperimentResult Result =
              runExperiment(Work, Config, Kind, Set);
          PerContainer[Config.Container].BTime.push_back(Result.BTimeMs);
          PerContainerHash[Config.Container][Kind].push_back(
              Result.BTimeMs);
          // Fifth "container": the specialized FlatIndexMap, where the
          // bijective Pext image replaces the key outright. Paired with
          // the U-Map/Pext samples so the ratio isolates the storage.
          if (Kind == HashKind::Pext &&
              Config.Container == ContainerKind::Map &&
              Set.synthesized(HashFamily::Pext).plan().Bijective) {
            UMapPextBTime.push_back(Result.BTimeMs);
            FlatBTime.push_back(
                flatIndexBTime(Work, Set.synthesized(HashFamily::Pext)));
          }
        }
      }
    }
  }

  std::vector<std::string> Labels;
  std::vector<BoxStats> Boxes;
  for (ContainerKind Container : AllContainerKinds) {
    Labels.push_back(containerKindName(Container));
    Boxes.push_back(boxStats(PerContainer[Container].BTime));
  }
  std::printf("%s\n", renderBoxplots(Labels, Boxes).c_str());

  TextTable Table({"Container", "STL", "OffXor", "Pext", "City", "Abseil"});
  for (ContainerKind Container : AllContainerKinds) {
    std::vector<std::string> Row = {containerKindName(Container)};
    for (HashKind Kind : Kinds)
      Row.push_back(
          formatDouble(geometricMean(PerContainerHash[Container][Kind])));
    Table.addRow(std::move(Row));
  }
  std::printf("%s\n", Table.str().c_str());

  if (!FlatBTime.empty()) {
    const double Flat = geometricMean(FlatBTime);
    const double UMap = geometricMean(UMapPextBTime);
    std::printf("FlatIndexMap (SwissTable group probe, keyless) vs U-Map "
                "with the same Pext hash, bijective formats only:\n"
                "  U-Map B-Time %.3f ms  ->  FlatIndexMap %.3f ms  "
                "(%.2fx)\n\n",
                UMap, Flat, Flat > 0 ? UMap / Flat : 0.0);
  }

  std::printf("Shape check (paper Figure 20): Multi variants slower than "
              "Map/Set; the relative ordering of hash functions is the "
              "same in every container.\n");

  if (!Options.JsonPath.empty()) {
    std::FILE *F = openJsonReport(Options.JsonPath, "fig20_containers");
    if (!F)
      return 1;
    std::fprintf(F, "  \"unit\": \"ms\",\n  \"containers\": [\n");
    for (size_t I = 0; I != AllContainerKinds.size(); ++I) {
      const ContainerKind Container = AllContainerKinds[I];
      std::fprintf(F, "    {\"container\": \"%s\", \"stats\": %s",
                   containerKindName(Container),
                   boxStatsJson(boxStats(PerContainer[Container].BTime))
                       .c_str());
      for (HashKind Kind : Kinds)
        std::fprintf(
            F, ", \"%s\": %.4f", hashKindName(Kind),
            geometricMean(PerContainerHash[Container][Kind]));
      std::fprintf(F, "}%s\n",
                   I + 1 == AllContainerKinds.size() ? "" : ",");
    }
    std::fprintf(F, "  ],\n");
    if (!FlatBTime.empty())
      std::fprintf(F,
                   "  \"flat_index\": {\"umap_pext_ms\": %.4f, "
                   "\"flat_ms\": %.4f},\n",
                   geometricMean(UMapPextBTime), geometricMean(FlatBTime));
    closeJsonReport(F);
    std::printf("wrote %s\n", Options.JsonPath.c_str());
  }
  return 0;
}
