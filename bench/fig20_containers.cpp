//===- bench/fig20_containers.cpp - Figure 20: container impact -----------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 20 (RQ9, appendix): B-Time grouped by container
/// type, demonstrating that the Multi variants pay an extra indirection
/// and that the relative ordering of hash functions is container-
/// independent.
///
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include <map>

using namespace sepe;
using namespace sepe::bench;

int main(int Argc, char **Argv) {
  const BenchOptions Options = parseBenchOptions(Argc, Argv);
  printHeader("Figure 20 - execution time per container",
              "RQ9: does the data structure change the ranking?",
              Options);

  std::map<ContainerKind, MetricSamples> PerContainer;
  std::map<ContainerKind, std::map<HashKind, std::vector<double>>>
      PerContainerHash;

  const std::vector<ExperimentConfig> Grid =
      standardGrid(Options.Affectations, Options.Spreads);
  const std::vector<HashKind> Kinds = {HashKind::Stl, HashKind::OffXor,
                                       HashKind::Pext, HashKind::City,
                                       HashKind::Abseil};

  for (PaperKey Key : Options.Keys) {
    const HashFunctionSet Set = HashFunctionSet::create(Key);
    for (const ExperimentConfig &Base : Grid) {
      for (size_t Sample = 0; Sample != Options.Samples; ++Sample) {
        ExperimentConfig Config = Base;
        Config.Seed = Base.Seed * 65537 + Sample;
        const Workload Work = makeWorkload(Key, Config);
        for (HashKind Kind : Kinds) {
          const ExperimentResult Result =
              runExperiment(Work, Config, Kind, Set);
          PerContainer[Config.Container].BTime.push_back(Result.BTimeMs);
          PerContainerHash[Config.Container][Kind].push_back(
              Result.BTimeMs);
        }
      }
    }
  }

  std::vector<std::string> Labels;
  std::vector<BoxStats> Boxes;
  for (ContainerKind Container : AllContainerKinds) {
    Labels.push_back(containerKindName(Container));
    Boxes.push_back(boxStats(PerContainer[Container].BTime));
  }
  std::printf("%s\n", renderBoxplots(Labels, Boxes).c_str());

  TextTable Table({"Container", "STL", "OffXor", "Pext", "City", "Abseil"});
  for (ContainerKind Container : AllContainerKinds) {
    std::vector<std::string> Row = {containerKindName(Container)};
    for (HashKind Kind : Kinds)
      Row.push_back(
          formatDouble(geometricMean(PerContainerHash[Container][Kind])));
    Table.addRow(std::move(Row));
  }
  std::printf("%s\n", Table.str().c_str());

  std::printf("Shape check (paper Figure 20): Multi variants slower than "
              "Map/Set; the relative ordering of hash functions is the "
              "same in every container.\n");
  return 0;
}
