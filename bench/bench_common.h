//===- bench/bench_common.h - Shared bench-harness plumbing ----*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Flag parsing and aggregation shared by the per-figure bench
/// binaries. Every binary accepts:
///
///   --full              paper-sized run (10 samples x 10,000
///                       affectations x full spreads)
///   --samples=N         override sample count
///   --affectations=N    override affectations per experiment
///   --keys=A,B,...      restrict to some paper key types
///   --json=PATH         write a machine-readable report (binaries that
///                       support it)
///
/// JSON reports share one envelope (openJsonReport/closeJsonReport):
/// schema_version, the benchmark name, the resolved cpu_features
/// string, the binary's own payload keys, then a "resources" object
/// (peak RSS, user/sys CPU, wall clock of the whole run via
/// support/resource_usage.h) and a trailing "telemetry" object — the
/// full registry dump, which is `{"compiled_in": false, ...}` unless
/// built with -DSEPE_TELEMETRY=ON and enabled via
/// SEPE_TELEMETRY_ENABLED=1 (never auto-enabled here, so timers cannot
/// perturb the numbers being measured).
///
/// The default ("quick") configuration keeps every binary within tens
/// of seconds on one core while preserving the paper's shape.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_BENCH_BENCH_COMMON_H
#define SEPE_BENCH_BENCH_COMMON_H

#include "driver/experiment.h"
#include "driver/report.h"
#include "support/cpu_features.h"
#include "support/json.h"
#include "support/resource_usage.h"
#include "support/telemetry.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace sepe::bench {

/// Version of the shared bench-JSON envelope; bump when a key is
/// renamed or removed (additions are compatible).
constexpr int JsonSchemaVersion = 1;

struct BenchOptions {
  size_t Samples = 3;
  size_t Affectations = 2000;
  std::vector<size_t> Spreads = {500, 2000};
  std::vector<PaperKey> Keys{AllPaperKeys.begin(), AllPaperKeys.end()};
  bool Full = false;
  /// Empty means "no JSON report".
  std::string JsonPath;
};

inline PaperKey paperKeyByName(const std::string &Name, bool &Ok) {
  Ok = true;
  for (PaperKey Key : AllPaperKeys)
    if (Name == paperKeyName(Key))
      return Key;
  Ok = false;
  return PaperKey::SSN;
}

inline BenchOptions parseBenchOptions(int Argc, char **Argv) {
  BenchOptions Options;
  for (int I = 1; I != Argc; ++I) {
    const std::string Arg = Argv[I];
    if (Arg == "--full") {
      Options.Full = true;
      Options.Samples = 10;
      Options.Affectations = 10000;
      Options.Spreads = {500, 2000, 10000};
    } else if (Arg.rfind("--samples=", 0) == 0) {
      Options.Samples = std::stoul(Arg.substr(10));
    } else if (Arg.rfind("--affectations=", 0) == 0) {
      Options.Affectations = std::stoul(Arg.substr(15));
    } else if (Arg.rfind("--keys=", 0) == 0) {
      Options.Keys.clear();
      std::string List = Arg.substr(7);
      size_t Pos = 0;
      while (Pos != std::string::npos) {
        const size_t Comma = List.find(',', Pos);
        const std::string Name =
            List.substr(Pos, Comma == std::string::npos ? Comma
                                                        : Comma - Pos);
        bool Ok = false;
        const PaperKey Key = paperKeyByName(Name, Ok);
        if (Ok)
          Options.Keys.push_back(Key);
        else
          std::fprintf(stderr, "warning: unknown key type '%s'\n",
                       Name.c_str());
        Pos = Comma == std::string::npos ? Comma : Comma + 1;
      }
    } else if (Arg.rfind("--json=", 0) == 0) {
      Options.JsonPath = Arg.substr(7);
    } else if (Arg == "--help" || Arg == "-h") {
      std::fprintf(stderr,
                   "options: --full --samples=N --affectations=N "
                   "--keys=SSN,IPv4,... --json=PATH\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "warning: ignoring unknown option '%s'\n",
                   Arg.c_str());
    }
  }
  return Options;
}

inline void printHeader(const char *Artifact, const char *Question,
                        const BenchOptions &Options) {
  std::printf("== %s ==\n%s\n", Artifact, Question);
  std::printf("mode: %s (%zu samples, %zu affectations, %zu key types)\n\n",
              Options.Full ? "full (paper-sized)" : "quick",
              Options.Samples, Options.Affectations, Options.Keys.size());
}

/// Opens \p Path and writes the shared report envelope: the opening
/// brace, schema_version, the benchmark name, and the resolved
/// cpu_features string, leaving a trailing comma so the caller can
/// append its own payload keys (each terminated with ",\n") before
/// closeJsonReport(). Returns nullptr (with a diagnostic) on failure.
inline std::FILE *openJsonReport(const std::string &Path,
                                 const char *Benchmark) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
    return nullptr;
  }
  std::fprintf(F,
               "{\n  \"schema_version\": %d,\n  \"benchmark\": \"%s\",\n"
               "  \"cpu_features\": \"%s\",\n",
               JsonSchemaVersion, json::escapeString(Benchmark).c_str(),
               json::escapeString(cpuFeatureString()).c_str());
  return F;
}

/// Finishes a report started by openJsonReport(): appends the
/// process-level "resources" section (peak RSS, CPU, wall clock) and
/// the telemetry registry dump (always valid JSON, even compiled out)
/// as the final keys, then closes the file.
inline void closeJsonReport(std::FILE *F) {
  std::fprintf(F, "  \"resources\": %s,\n",
               ResourceUsage::sinceProcessStart().toJson().c_str());
  std::fprintf(F, "  \"telemetry\": %s\n}\n",
               telemetry::toJson().c_str());
  std::fclose(F);
}

/// One BoxStats as a JSON object — the shared shape for per-hash
/// sample summaries across the fig/table emitters.
inline std::string boxStatsJson(const BoxStats &Stats) {
  char Buffer[192];
  std::snprintf(Buffer, sizeof(Buffer),
                "{\"min\": %.4f, \"q1\": %.4f, \"median\": %.4f, "
                "\"q3\": %.4f, \"max\": %.4f, \"mean\": %.4f, "
                "\"count\": %zu}",
                Stats.Min, Stats.Q1, Stats.Median, Stats.Q3, Stats.Max,
                Stats.Mean, Stats.Count);
  return Buffer;
}

/// Per-hash accumulator across the experiment grid.
struct MetricSamples {
  std::vector<double> BTime;
  std::vector<double> HTime;
  std::vector<double> BColl;
  double TColl = 0;

  void add(const ExperimentResult &Result) {
    BTime.push_back(Result.BTimeMs);
    HTime.push_back(Result.HTimeMs);
    BColl.push_back(static_cast<double>(Result.BucketCollisions));
  }
};

} // namespace sepe::bench

#endif // SEPE_BENCH_BENCH_COMMON_H
