//===- bench/ablation_flat_index.cpp - Specialized storage extension ------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluates the future-work extension the paper's conclusion calls for
/// ("we see room for generating code for specialized data structures"):
/// FlatIndexMap stores only the bijective Pext image of each key — no
/// key strings, no string compares, identity indexing. Compares lookup
/// and insert throughput against std::unordered_map with (a) the same
/// Pext hash and (b) std::hash, across distributions.
///
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "container/flat_index_map.h"
#include "core/synthesizer.h"

#include <chrono>
#include <unordered_map>

using namespace sepe;
using namespace sepe::bench;

namespace {

template <typename InsertFn, typename LookupFn>
std::pair<double, double> measure(const std::vector<std::string> &Keys,
                                  size_t Rounds, InsertFn Insert,
                                  LookupFn Lookup) {
  const auto T0 = std::chrono::steady_clock::now();
  for (const std::string &Key : Keys)
    Insert(Key);
  const auto T1 = std::chrono::steady_clock::now();
  uint64_t Sink = 0;
  for (size_t R = 0; R != Rounds; ++R)
    for (const std::string &Key : Keys)
      Sink += Lookup(Key);
  const auto T2 = std::chrono::steady_clock::now();
  asm volatile("" : : "r"(Sink) : "memory");
  const double InsertNs =
      std::chrono::duration<double, std::nano>(T1 - T0).count() /
      static_cast<double>(Keys.size());
  const double LookupNs =
      std::chrono::duration<double, std::nano>(T2 - T1).count() /
      static_cast<double>(Rounds * Keys.size());
  return {InsertNs, LookupNs};
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Options = parseBenchOptions(Argc, Argv);
  const size_t KeyCount = Options.Full ? 100000 : 20000;
  const size_t Rounds = Options.Full ? 20 : 10;
  printHeader("Extension - specialized storage for bijective hashes",
              "FlatIndexMap (keyless, identity-indexed) vs "
              "std::unordered_map",
              Options);

  // Bijective formats only (<= 64 relevant bits).
  const std::vector<PaperKey> Keys = {PaperKey::SSN, PaperKey::CPF};

  struct JsonRow {
    PaperKey Key;
    KeyDistribution Dist;
    const char *Structure;
    double InsertNs;
    double LookupNs;
  };
  std::vector<JsonRow> JsonRows;

  TextTable Table({"Key", "Distribution", "Structure", "insert ns/key",
                   "lookup ns/key"});
  for (PaperKey Key : Keys) {
    Expected<HashPlan> Plan = synthesize(
        paperKeyFormat(Key).abstract(), HashFamily::Pext);
    if (!Plan || !Plan->Bijective)
      std::abort();
    const SynthesizedHash Pext(*Plan);

    for (KeyDistribution Dist :
         {KeyDistribution::Incremental, KeyDistribution::Uniform}) {
      KeyGenerator Gen(paperKeyFormat(Key), Dist,
                       0xf1a7 + static_cast<uint64_t>(Key));
      const std::vector<std::string> Pool = Gen.distinct(KeyCount);

      {
        FlatIndexMap<uint64_t> Map(Pext, KeyCount);
        const auto [Ins, Look] = measure(
            Pool, Rounds, [&](const std::string &K) { Map.insert(K, 1); },
            [&](const std::string &K) {
              return Map.find(K) != nullptr ? 1u : 0u;
            });
        Table.addRow({paperKeyName(Key), distributionName(Dist),
                      "FlatIndexMap", formatDouble(Ins, 1),
                      formatDouble(Look, 1)});
        JsonRows.push_back({Key, Dist, "FlatIndexMap", Ins, Look});
      }
      {
        std::unordered_map<std::string, uint64_t, SynthesizedHash> Map(
            16, Pext);
        const auto [Ins, Look] = measure(
            Pool, Rounds,
            [&](const std::string &K) { Map.emplace(K, 1); },
            [&](const std::string &K) { return Map.count(K); });
        Table.addRow({paperKeyName(Key), distributionName(Dist),
                      "u_map+Pext", formatDouble(Ins, 1),
                      formatDouble(Look, 1)});
        JsonRows.push_back({Key, Dist, "u_map+Pext", Ins, Look});
      }
      {
        std::unordered_map<std::string, uint64_t> Map;
        const auto [Ins, Look] = measure(
            Pool, Rounds,
            [&](const std::string &K) { Map.emplace(K, 1); },
            [&](const std::string &K) { return Map.count(K); });
        Table.addRow({paperKeyName(Key), distributionName(Dist),
                      "u_map+std::hash", formatDouble(Ins, 1),
                      formatDouble(Look, 1)});
        JsonRows.push_back({Key, Dist, "u_map+std::hash", Ins, Look});
      }
    }
  }
  std::printf("%s\n", Table.str().c_str());
  std::printf("Expected shape: FlatIndexMap fastest on both axes (no "
              "string storage or comparison); u_map+Pext beats "
              "u_map+std::hash by the hashing margin.\n");

  if (!Options.JsonPath.empty()) {
    std::FILE *F =
        openJsonReport(Options.JsonPath, "ablation_flat_index");
    if (!F)
      return 1;
    std::fprintf(F, "  \"keys\": %zu,\n  \"unit\": \"ns_per_key\",\n"
                 "  \"results\": [\n", KeyCount);
    for (size_t I = 0; I != JsonRows.size(); ++I) {
      const JsonRow &R = JsonRows[I];
      std::fprintf(F,
                   "    {\"format\": \"%s\", \"distribution\": \"%s\", "
                   "\"structure\": \"%s\", \"insert_ns_per_key\": %.2f, "
                   "\"lookup_ns_per_key\": %.2f}%s\n",
                   paperKeyName(R.Key), distributionName(R.Dist),
                   R.Structure, R.InsertNs, R.LookupNs,
                   I + 1 == JsonRows.size() ? "" : ",");
    }
    std::fprintf(F, "  ],\n");
    closeJsonReport(F);
    std::printf("wrote %s\n", Options.JsonPath.c_str());
  }
  return 0;
}
