//===- bench/fig19_hash_scaling.cpp - Figure 19: hashing complexity -------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 19 (RQ8, appendix): hashing time as the key size
/// grows in powers of two (2^4 .. 2^14 digit bytes), for Pext and the
/// baseline functions, plus Pearson correlations demonstrating
/// linearity.
///
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "core/executor.h"
#include "core/regex_parser.h"
#include "core/synthesizer.h"
#include "hashes/city.h"
#include "hashes/fnv.h"
#include "hashes/low_level_hash.h"
#include "hashes/murmur.h"
#include "stats/pearson.h"

#include <chrono>

using namespace sepe;
using namespace sepe::bench;

namespace {

template <typename Hasher>
double hashingNsPerKey(const Hasher &Hash,
                       const std::vector<std::string> &Keys,
                       size_t Rounds) {
  uint64_t Sink = 0;
  const auto Start = std::chrono::steady_clock::now();
  for (size_t R = 0; R != Rounds; ++R)
    for (const std::string &Key : Keys)
      Sink += Hash(Key);
  const auto End = std::chrono::steady_clock::now();
  asm volatile("" : : "r"(Sink) : "memory");
  const double Ns =
      std::chrono::duration<double, std::nano>(End - Start).count();
  return Ns / static_cast<double>(Rounds * Keys.size());
}

} // namespace

int main(int Argc, char **Argv) {
  const BenchOptions Options = parseBenchOptions(Argc, Argv);
  printHeader("Figure 19 - hashing time vs key size",
              "RQ8: are the hash functions linear in key length?",
              Options);

  const std::vector<const char *> Names = {"Pext",   "STL", "City",
                                           "Abseil", "FNV"};
  TextTable Table({"Key size", "Pext (ns)", "STL (ns)", "City (ns)",
                   "Abseil (ns)", "FNV (ns)"});
  std::vector<double> Sizes;
  std::vector<std::vector<double>> Times(Names.size());

  for (unsigned Exp = 4; Exp <= 14; ++Exp) {
    const size_t Size = size_t{1} << Exp;
    Expected<FormatSpec> Spec =
        parseRegex("[0-9]{" + std::to_string(Size) + "}");
    if (!Spec)
      std::abort();
    Expected<HashPlan> Plan =
        synthesize(Spec->abstract(), HashFamily::Pext);
    if (!Plan)
      std::abort();
    const SynthesizedHash Pext(Plan.take());

    KeyGenerator Gen(*Spec, KeyDistribution::Uniform, Exp);
    std::vector<std::string> Keys;
    for (int I = 0; I != 64; ++I)
      Keys.push_back(Gen.next());
    const size_t Rounds = Options.Full ? 2000 : 400;

    Sizes.push_back(static_cast<double>(Size));
    std::vector<std::string> Row = {std::to_string(Size)};
    const double Measured[] = {
        hashingNsPerKey(Pext, Keys, Rounds),
        hashingNsPerKey(MurmurStlHash{}, Keys, Rounds),
        hashingNsPerKey(CityHash{}, Keys, Rounds),
        hashingNsPerKey(LowLevelHashFn{}, Keys, Rounds),
        hashingNsPerKey(FnvHash{}, Keys, Rounds)};
    for (size_t F = 0; F != Names.size(); ++F) {
      Times[F].push_back(Measured[F]);
      Row.push_back(formatDouble(Measured[F], 1));
    }
    Table.addRow(std::move(Row));
  }
  std::printf("%s\n", Table.str().c_str());

  std::printf("Pearson correlation (time vs size; paper: >= 0.9979):\n");
  for (size_t F = 0; F != Names.size(); ++F)
    std::printf("  %-6s r = %.4f\n", Names[F],
                pearsonCorrelation(Sizes, Times[F]));
  std::printf("\nShape check (paper Figure 19): every function linear in "
              "the key length; FNV steepest (byte-at-a-time); Pext below "
              "the baselines throughout.\n");

  if (!Options.JsonPath.empty()) {
    std::FILE *F = openJsonReport(Options.JsonPath, "fig19_hash_scaling");
    if (!F)
      return 1;
    std::fprintf(F, "  \"unit\": \"ns_per_key\",\n  \"scaling\": [\n");
    for (size_t I = 0; I != Sizes.size(); ++I) {
      std::fprintf(F, "    {\"key_size_bytes\": %.0f", Sizes[I]);
      for (size_t N = 0; N != Names.size(); ++N)
        std::fprintf(F, ", \"%s\": %.2f", Names[N], Times[N][I]);
      std::fprintf(F, "}%s\n", I + 1 == Sizes.size() ? "" : ",");
    }
    std::fprintf(F, "  ],\n  \"pearson\": {");
    for (size_t N = 0; N != Names.size(); ++N)
      std::fprintf(F, "%s\"%s\": %.4f", N == 0 ? "" : ", ", Names[N],
                   pearsonCorrelation(Sizes, Times[N]));
    std::fprintf(F, "},\n");
    closeJsonReport(F);
    std::printf("wrote %s\n", Options.JsonPath.c_str());
  }
  return 0;
}
