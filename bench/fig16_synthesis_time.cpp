//===- bench/fig16_synthesis_time.cpp - Figure 16: synthesis cost ---------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 16 (RQ6): synthesis time for keys of 2^4 to 2^14
/// digit bytes with no constant subsequences (so nothing can be
/// skipped), for the OffXor / Aes / Pext families, plus the Pearson
/// correlation demonstrating linear asymptotic behavior. Pext includes
/// code emission, which the paper notes grows fastest because the loop
/// is fully unrolled.
///
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "core/codegen.h"
#include "core/regex_parser.h"
#include "core/synthesizer.h"
#include "stats/pearson.h"

#include <chrono>

using namespace sepe;
using namespace sepe::bench;

namespace {

double measureSynthesisMs(const FormatSpec &Spec, HashFamily Family,
                          size_t Repeats) {
  const auto Start = std::chrono::steady_clock::now();
  for (size_t I = 0; I != Repeats; ++I) {
    const KeyPattern Pattern = Spec.abstract();
    Expected<HashPlan> Plan = synthesize(Pattern, Family);
    if (!Plan)
      std::abort();
    // Code emission is part of synthesis cost (the paper's keysynth
    // prints the function).
    const std::string Code = emitHashFunction(*Plan);
    asm volatile("" : : "r"(Code.data()) : "memory");
  }
  const auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(End - Start).count() /
         static_cast<double>(Repeats);
}

} // namespace

int main(int Argc, char **Argv) {
  const BenchOptions Options = parseBenchOptions(Argc, Argv);
  printHeader("Figure 16 - synthesis time vs key size",
              "RQ6: is synthesis linear in the key length?", Options);

  const std::vector<HashFamily> Families = {
      HashFamily::OffXor, HashFamily::Aes, HashFamily::Pext};

  TextTable Table({"Key size (bytes)", "OffXor (ms)", "Aes (ms)",
                   "Pext (ms)"});
  std::vector<double> Sizes;
  std::vector<std::vector<double>> Times(Families.size());

  for (unsigned Exp = 4; Exp <= 14; ++Exp) {
    const size_t Size = size_t{1} << Exp;
    Expected<FormatSpec> Spec =
        parseRegex("[0-9]{" + std::to_string(Size) + "}");
    if (!Spec)
      std::abort();
    const size_t Repeats = Size <= 1024 ? 20 : 5;
    std::vector<std::string> Row = {std::to_string(Size)};
    Sizes.push_back(static_cast<double>(Size));
    for (size_t F = 0; F != Families.size(); ++F) {
      const double Ms = measureSynthesisMs(*Spec, Families[F], Repeats);
      Times[F].push_back(Ms);
      Row.push_back(formatDouble(Ms, 4));
    }
    Table.addRow(std::move(Row));
  }
  std::printf("%s\n", Table.str().c_str());

  std::printf("Pearson correlation (synthesis time vs key size; paper: "
              ">= 0.993 for all families):\n");
  const char *Names[] = {"OffXor", "Aes", "Pext"};
  for (size_t F = 0; F != Families.size(); ++F)
    std::printf("  %-6s r = %.4f\n", Names[F],
                pearsonCorrelation(Sizes, Times[F]));
  std::printf("\nShape check (paper Figure 16): all three curves linear; "
              "Pext steepest because its unrolled code emission grows "
              "with every load.\n");
  return 0;
}
