//===- bench/fig16_synthesis_time.cpp - Figure 16: synthesis cost ---------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 16 (RQ6): synthesis time for keys of 2^4 to 2^14
/// digit bytes with no constant subsequences (so nothing can be
/// skipped), for the OffXor / Aes / Pext families, plus the Pearson
/// correlation demonstrating linear asymptotic behavior. Pext includes
/// code emission, which the paper notes grows fastest because the loop
/// is fully unrolled.
///
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "core/codegen.h"
#include "core/regex_parser.h"
#include "core/synthesizer.h"
#include "stats/pearson.h"

#include <chrono>

using namespace sepe;
using namespace sepe::bench;

namespace {

double measureSynthesisMs(const FormatSpec &Spec, HashFamily Family,
                          size_t Repeats) {
  const auto Start = std::chrono::steady_clock::now();
  for (size_t I = 0; I != Repeats; ++I) {
    const KeyPattern Pattern = Spec.abstract();
    Expected<HashPlan> Plan = synthesize(Pattern, Family);
    if (!Plan)
      std::abort();
    // Code emission is part of synthesis cost (the paper's keysynth
    // prints the function).
    const std::string Code = emitHashFunction(*Plan);
    asm volatile("" : : "r"(Code.data()) : "memory");
  }
  const auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(End - Start).count() /
         static_cast<double>(Repeats);
}

} // namespace

int main(int Argc, char **Argv) {
  const BenchOptions Options = parseBenchOptions(Argc, Argv);
  printHeader("Figure 16 - synthesis time vs key size",
              "RQ6: is synthesis linear in the key length?", Options);

  const std::vector<HashFamily> Families = {
      HashFamily::OffXor, HashFamily::Aes, HashFamily::Pext};

  TextTable Table({"Key size (bytes)", "OffXor (ms)", "Aes (ms)",
                   "Pext (ms)"});
  std::vector<double> Sizes;
  std::vector<std::vector<double>> Times(Families.size());

  for (unsigned Exp = 4; Exp <= 14; ++Exp) {
    const size_t Size = size_t{1} << Exp;
    Expected<FormatSpec> Spec =
        parseRegex("[0-9]{" + std::to_string(Size) + "}");
    if (!Spec)
      std::abort();
    const size_t Repeats = Size <= 1024 ? 20 : 5;
    std::vector<std::string> Row = {std::to_string(Size)};
    Sizes.push_back(static_cast<double>(Size));
    for (size_t F = 0; F != Families.size(); ++F) {
      const double Ms = measureSynthesisMs(*Spec, Families[F], Repeats);
      Times[F].push_back(Ms);
      Row.push_back(formatDouble(Ms, 4));
    }
    Table.addRow(std::move(Row));
  }
  std::printf("%s\n", Table.str().c_str());

  std::printf("Pearson correlation (synthesis time vs key size; paper: "
              ">= 0.993 for all families):\n");
  const char *Names[] = {"OffXor", "Aes", "Pext"};
  for (size_t F = 0; F != Families.size(); ++F)
    std::printf("  %-6s r = %.4f\n", Names[F],
                pearsonCorrelation(Sizes, Times[F]));
  std::printf("\nShape check (paper Figure 16): all three curves linear; "
              "Pext steepest because its unrolled code emission grows "
              "with every load.\n");

  if (!Options.JsonPath.empty()) {
    std::FILE *F = openJsonReport(Options.JsonPath, "fig16_synthesis_time");
    if (!F)
      return 1;
    std::fprintf(F, "  \"unit\": \"ms_per_synthesis\",\n  \"results\": [\n");
    for (size_t I = 0; I != Sizes.size(); ++I)
      std::fprintf(F,
                   "    {\"key_size_bytes\": %zu, \"OffXor\": %.4f, "
                   "\"Aes\": %.4f, \"Pext\": %.4f}%s\n",
                   static_cast<size_t>(Sizes[I]), Times[0][I], Times[1][I],
                   Times[2][I], I + 1 == Sizes.size() ? "" : ",");
    std::fprintf(F, "  ],\n  \"pearson\": {");
    for (size_t F2 = 0; F2 != Families.size(); ++F2)
      std::fprintf(F, "%s\"%s\": %.4f", F2 == 0 ? "" : ", ", Names[F2],
                   pearsonCorrelation(Sizes, Times[F2]));
    std::fprintf(F, "},\n");
    closeJsonReport(F);
    std::printf("wrote %s\n", Options.JsonPath.c_str());
  }
  return 0;
}
