//===- driver/report.cpp - Plain-text table / boxplot reports ------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "driver/report.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

using namespace sepe;

TextTable::TextTable(std::vector<std::string> Headers)
    : Headers(std::move(Headers)) {}

void TextTable::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == Headers.size() && "row width mismatch");
  Rows.push_back(std::move(Cells));
}

std::string TextTable::str() const {
  std::vector<size_t> Widths(Headers.size());
  for (size_t I = 0; I != Headers.size(); ++I)
    Widths[I] = Headers[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I != Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());

  const auto RenderRow = [&](const std::vector<std::string> &Cells) {
    std::string Line;
    for (size_t I = 0; I != Cells.size(); ++I) {
      if (I != 0)
        Line += "  ";
      const size_t Pad = Widths[I] - Cells[I].size();
      if (I == 0) {
        Line += Cells[I];
        Line.append(Pad, ' ');
      } else {
        Line.append(Pad, ' ');
        Line += Cells[I];
      }
    }
    Line += '\n';
    return Line;
  };

  std::string Out = RenderRow(Headers);
  size_t Total = 0;
  for (size_t W : Widths)
    Total += W + 2;
  Out.append(Total > 2 ? Total - 2 : 0, '-');
  Out += '\n';
  for (const auto &Row : Rows)
    Out += RenderRow(Row);
  return Out;
}

std::string sepe::formatDouble(double Value, int Precision) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Precision, Value);
  return Buffer;
}

std::string sepe::formatBox(const BoxStats &Stats, int Precision) {
  std::string Out = formatDouble(Stats.Min, Precision);
  Out += " [" + formatDouble(Stats.Q1, Precision);
  Out += " | " + formatDouble(Stats.Median, Precision);
  Out += " | " + formatDouble(Stats.Q3, Precision) + "] ";
  Out += formatDouble(Stats.Max, Precision);
  Out += " (mean " + formatDouble(Stats.Mean, Precision) + ")";
  return Out;
}

std::string sepe::renderBoxplots(const std::vector<std::string> &Labels,
                                 const std::vector<BoxStats> &Stats,
                                 int Width) {
  assert(Labels.size() == Stats.size() && "one label per box");
  if (Stats.empty())
    return "";
  double Lo = Stats.front().Min, Hi = Stats.front().Max;
  size_t LabelWidth = 0;
  for (size_t I = 0; I != Stats.size(); ++I) {
    Lo = std::min(Lo, Stats[I].Min);
    Hi = std::max(Hi, Stats[I].Max);
    LabelWidth = std::max(LabelWidth, Labels[I].size());
  }
  if (Hi <= Lo)
    Hi = Lo + 1;

  const auto Col = [&](double V) {
    const double T = (V - Lo) / (Hi - Lo);
    int C = static_cast<int>(T * (Width - 1) + 0.5);
    return std::clamp(C, 0, Width - 1);
  };

  std::string Out;
  for (size_t I = 0; I != Stats.size(); ++I) {
    std::string Axis(static_cast<size_t>(Width), ' ');
    const BoxStats &S = Stats[I];
    for (int C = Col(S.Min); C <= Col(S.Max); ++C)
      Axis[static_cast<size_t>(C)] = '-';
    for (int C = Col(S.Q1); C <= Col(S.Q3); ++C)
      Axis[static_cast<size_t>(C)] = '=';
    Axis[static_cast<size_t>(Col(S.Median))] = '|';
    Axis[static_cast<size_t>(Col(S.Mean))] = '*';
    Out += Labels[I];
    Out.append(LabelWidth - Labels[I].size(), ' ');
    Out += " |";
    Out += Axis;
    Out += "| " + formatBox(S);
    Out += '\n';
  }
  return Out;
}
