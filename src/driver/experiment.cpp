//===- driver/experiment.cpp - The paper's benchmark driver --------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "driver/experiment.h"

#include "container/flat_index_map.h"
#include "support/batch.h"
#include "support/telemetry.h"

#include <algorithm>
#include <chrono>
#include <random>
#include <unordered_map>
#include <unordered_set>

using namespace sepe;

const char *sepe::containerKindName(ContainerKind Kind) {
  switch (Kind) {
  case ContainerKind::Map:
    return "U-Map";
  case ContainerKind::Set:
    return "U-Set";
  case ContainerKind::MultiMap:
    return "UM-Map";
  case ContainerKind::MultiSet:
    return "UM-Set";
  }
  return "<invalid>";
}

const char *sepe::execModeName(ExecMode Mode) {
  switch (Mode) {
  case ExecMode::Batched:
    return "Batched";
  case ExecMode::Inter70_20:
    return "Inter(0.7,0.2)";
  case ExecMode::Inter60_20:
    return "Inter(0.6,0.2)";
  case ExecMode::Inter40_30:
    return "Inter(0.4,0.3)";
  }
  return "<invalid>";
}

namespace {

/// Keeps a value alive past the optimizer.
inline void doNotOptimize(uint64_t Value) {
  asm volatile("" : : "r"(Value) : "memory");
}

double elapsedMs(std::chrono::steady_clock::time_point Start) {
  const auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(End - Start).count();
}

// Uniform adapters over the four unordered containers. All expose
// insert/search/erase on string keys plus bucket iteration.
template <typename Hasher> struct MapAdapter {
  std::unordered_map<std::string, uint64_t, Hasher> C;
  explicit MapAdapter(Hasher H) : C(16, std::move(H)) {}
  void insert(const std::string &K) { C.emplace(K, 1); }
  uint64_t search(const std::string &K) const { return C.count(K); }
  void erase(const std::string &K) { C.erase(K); }
  size_t bucketCount() const { return C.bucket_count(); }
  size_t bucketSize(size_t I) const { return C.bucket_size(I); }
};

template <typename Hasher> struct SetAdapter {
  std::unordered_set<std::string, Hasher> C;
  explicit SetAdapter(Hasher H) : C(16, std::move(H)) {}
  void insert(const std::string &K) { C.insert(K); }
  uint64_t search(const std::string &K) const { return C.count(K); }
  void erase(const std::string &K) { C.erase(K); }
  size_t bucketCount() const { return C.bucket_count(); }
  size_t bucketSize(size_t I) const { return C.bucket_size(I); }
};

template <typename Hasher> struct MultiMapAdapter {
  std::unordered_multimap<std::string, uint64_t, Hasher> C;
  explicit MultiMapAdapter(Hasher H) : C(16, std::move(H)) {}
  void insert(const std::string &K) { C.emplace(K, 1); }
  uint64_t search(const std::string &K) const { return C.count(K); }
  void erase(const std::string &K) { C.erase(K); }
  size_t bucketCount() const { return C.bucket_count(); }
  size_t bucketSize(size_t I) const { return C.bucket_size(I); }
};

template <typename Hasher> struct MultiSetAdapter {
  std::unordered_multiset<std::string, Hasher> C;
  explicit MultiSetAdapter(Hasher H) : C(16, std::move(H)) {}
  void insert(const std::string &K) { C.insert(K); }
  uint64_t search(const std::string &K) const { return C.count(K); }
  void erase(const std::string &K) { C.erase(K); }
  size_t bucketCount() const { return C.bucket_count(); }
  size_t bucketSize(size_t I) const { return C.bucket_size(I); }
};

template <typename Adapter>
double timeSchedule(Adapter &&A, const Workload &Work) {
  uint64_t Sink = 0;
  const auto Start = std::chrono::steady_clock::now();
  for (const auto &[Op, Index] : Work.Schedule) {
    const std::string &Key = Work.Keys[Index];
    switch (Op) {
    case Workload::Op::Insert:
      A.insert(Key);
      break;
    case Workload::Op::Search:
      Sink += A.search(Key);
      break;
    case Workload::Op::Erase:
      A.erase(Key);
      break;
    }
  }
  const double Ms = elapsedMs(Start);
  doNotOptimize(Sink);
  return Ms;
}

template <typename Hasher>
double timeHashing(const Hasher &Hash, const Workload &Work) {
  uint64_t Sink = 0;
  const auto Start = std::chrono::steady_clock::now();
  for (const auto &[Op, Index] : Work.Schedule)
    Sink += Hash(Work.Keys[Index]);
  const double Ms = elapsedMs(Start);
  doNotOptimize(Sink);
  return Ms;
}

/// H-Time through the batch API: the scheduled keys are materialized as
/// views once (outside the timed region — a serving path would already
/// hold them contiguously) and hashed many-per-call. Used for the
/// Batched execution mode; interweaved schedules keep the per-key loop
/// above, since their keys arrive one at a time by construction.
template <typename Hasher>
double timeHashingBatch(const Hasher &Hash, const Workload &Work) {
  std::vector<std::string_view> Views;
  Views.reserve(Work.Schedule.size());
  for (const auto &[Op, Index] : Work.Schedule)
    Views.push_back(Work.Keys[Index]);
  std::vector<uint64_t> Hashes(Views.size());

  const auto Start = std::chrono::steady_clock::now();
  hashBatch(Hash, Views.data(), Hashes.data(), Views.size());
  const double Ms = elapsedMs(Start);

  uint64_t Sink = 0;
  for (uint64_t H : Hashes)
    Sink += H;
  doNotOptimize(Sink);
  return Ms;
}

template <typename Adapter, typename Hasher>
uint64_t countBucketCollisions(Hasher Hash, const Workload &Work) {
  Adapter A{std::move(Hash)};
  for (const std::string &Key : Work.Keys)
    A.insert(Key);
  uint64_t Collisions = 0;
  for (size_t I = 0, E = A.bucketCount(); I != E; ++I) {
    const size_t Size = A.bucketSize(I);
    if (Size > 1)
      Collisions += Size - 1;
  }
  return Collisions;
}

template <typename Hasher>
ExperimentResult runWithHasher(const Hasher &Hash, const Workload &Work,
                               const ExperimentConfig &Config) {
  ExperimentResult Result;
  switch (Config.Container) {
  case ContainerKind::Map:
    Result.BTimeMs = timeSchedule(MapAdapter<Hasher>(Hash), Work);
    Result.BucketCollisions =
        countBucketCollisions<MapAdapter<Hasher>>(Hash, Work);
    break;
  case ContainerKind::Set:
    Result.BTimeMs = timeSchedule(SetAdapter<Hasher>(Hash), Work);
    Result.BucketCollisions =
        countBucketCollisions<SetAdapter<Hasher>>(Hash, Work);
    break;
  case ContainerKind::MultiMap:
    Result.BTimeMs = timeSchedule(MultiMapAdapter<Hasher>(Hash), Work);
    Result.BucketCollisions =
        countBucketCollisions<MultiMapAdapter<Hasher>>(Hash, Work);
    break;
  case ContainerKind::MultiSet:
    Result.BTimeMs = timeSchedule(MultiSetAdapter<Hasher>(Hash), Work);
    Result.BucketCollisions =
        countBucketCollisions<MultiSetAdapter<Hasher>>(Hash, Work);
    break;
  }
  Result.HTimeMs = Config.Mode == ExecMode::Batched
                       ? timeHashingBatch(Hash, Work)
                       : timeHashing(Hash, Work);

  std::vector<uint64_t> Hashes;
  Hashes.reserve(Work.Keys.size());
  for (const std::string &Key : Work.Keys)
    Hashes.push_back(Hash(Key));
  std::sort(Hashes.begin(), Hashes.end());
  uint64_t TrueColl = 0;
  for (size_t I = 1; I < Hashes.size(); ++I)
    if (Hashes[I] == Hashes[I - 1])
      ++TrueColl;
  Result.TrueCollisions = TrueColl;
  return Result;
}

} // namespace

Workload sepe::makeWorkload(PaperKey Key, const ExperimentConfig &Config) {
  Workload Work;
  KeyGenerator Gen(paperKeyFormat(Key), Config.Distribution, Config.Seed);
  Work.Keys = Gen.distinct(Config.Spread);

  std::mt19937_64 Rng(Config.Seed ^ 0xabcdef);
  const auto RandomIndex = [&] {
    return static_cast<uint32_t>(Rng() % Work.Keys.size());
  };
  Work.Schedule.reserve(Config.Affectations);

  if (Config.Mode == ExecMode::Batched) {
    // Insertions first, then searches, then eliminations; keys cycle in
    // distribution order.
    const size_t PerPhase = Config.Affectations / 3;
    for (size_t I = 0; I != PerPhase; ++I)
      Work.Schedule.emplace_back(Workload::Op::Insert,
                                 static_cast<uint32_t>(I % Work.Keys.size()));
    for (size_t I = 0; I != PerPhase; ++I)
      Work.Schedule.emplace_back(Workload::Op::Search,
                                 static_cast<uint32_t>(I % Work.Keys.size()));
    while (Work.Schedule.size() != Config.Affectations)
      Work.Schedule.emplace_back(
          Workload::Op::Erase,
          static_cast<uint32_t>(Work.Schedule.size() % Work.Keys.size()));
    return Work;
  }

  double Pi = 0.7, Ps = 0.2;
  if (Config.Mode == ExecMode::Inter60_20)
    Pi = 0.6;
  if (Config.Mode == ExecMode::Inter40_30) {
    Pi = 0.4;
    Ps = 0.3;
  }

  // First half: insertions. Second half: random mix per (Pi, Ps).
  const size_t Half = Config.Affectations / 2;
  for (size_t I = 0; I != Half; ++I)
    Work.Schedule.emplace_back(Workload::Op::Insert, RandomIndex());
  std::uniform_real_distribution<double> Coin(0.0, 1.0);
  while (Work.Schedule.size() != Config.Affectations) {
    const double P = Coin(Rng);
    Workload::Op Op = Workload::Op::Erase;
    if (P < Pi)
      Op = Workload::Op::Insert;
    else if (P < Pi + Ps)
      Op = Workload::Op::Search;
    Work.Schedule.emplace_back(Op, RandomIndex());
  }
  return Work;
}

ExperimentResult sepe::runExperiment(const Workload &Work,
                                     const ExperimentConfig &Config,
                                     HashKind Kind,
                                     const HashFunctionSet &Set) {
  SEPE_SPAN("driver.experiment");
  SEPE_COUNT("driver.experiment.count");
  return Set.visit(Kind, [&](const auto &Hasher) {
    return runWithHasher(Hasher, Work, Config);
  });
}

std::vector<BatchLadderTiming>
sepe::measureBatchLadder(const Workload &Work, HashKind Kind,
                         const HashFunctionSet &Set) {
  std::vector<BatchLadderTiming> Rungs;
  if (!isSynthetic(Kind)) {
    Set.visit(Kind, [&](const auto &Hasher) {
      Rungs.push_back({batchPathOf(Hasher), timeHashingBatch(Hasher, Work)});
    });
    return Rungs;
  }

  const SynthesizedHash &Attached =
      Set.synthesized(syntheticFamily(Kind));
  for (BatchPath Preferred : {BatchPath::Scalar, BatchPath::Interleaved,
                              BatchPath::Avx2, BatchPath::Jit}) {
    const SynthesizedHash Forced(Attached.plan(), Set.isa(), Preferred);
    const std::string Path = Forced.batchPathName();
    bool Seen = false;
    for (const BatchLadderTiming &R : Rungs)
      Seen = Seen || R.Path == Path;
    if (Seen)
      continue;
    Rungs.push_back({Path, timeHashingBatch(Forced, Work)});
  }
  return Rungs;
}

bool sepe::runFlatIndexProbe(const Workload &Work,
                             const HashFunctionSet &Set,
                             FlatIndexProbeResult &Result) {
  const SynthesizedHash &Pext = Set.synthesized(HashFamily::Pext);
  if (!Pext.valid() || !Pext.plan().Bijective)
    return false;
  SEPE_SPAN("driver.flat_index_probe");
  FlatIndexMap<uint64_t> Map(Pext, Work.Keys.size());
  uint64_t Sink = 0;
  const auto Start = std::chrono::steady_clock::now();
  for (const auto &[Op, Index] : Work.Schedule) {
    const std::string &Key = Work.Keys[Index];
    switch (Op) {
    case Workload::Op::Insert:
      Map.insert(Key, Index);
      break;
    case Workload::Op::Search:
      Sink += Map.find(Key) != nullptr ? 1 : 0;
      break;
    case Workload::Op::Erase:
      Map.erase(Key);
      break;
    }
  }
  Result.BTimeMs = elapsedMs(Start);
  doNotOptimize(Sink);
  Result.FinalSize = Map.size();
  Result.MaxProbeGroups = Map.maxProbeLength();
  Result.Tombstones = Map.tombstones();
  return true;
}

uint64_t sepe::countTrueCollisions(const std::vector<std::string> &Keys,
                                   HashKind Kind,
                                   const HashFunctionSet &Set) {
  std::vector<uint64_t> Hashes;
  Hashes.reserve(Keys.size());
  for (const std::string &Key : Keys)
    Hashes.push_back(Set.hash(Kind, Key));
  std::sort(Hashes.begin(), Hashes.end());
  uint64_t Collisions = 0;
  for (size_t I = 1; I < Hashes.size(); ++I)
    if (Hashes[I] == Hashes[I - 1])
      ++Collisions;
  return Collisions;
}

std::vector<ExperimentConfig>
sepe::standardGrid(size_t Affectations, const std::vector<size_t> &Spreads,
                   uint64_t Seed) {
  std::vector<ExperimentConfig> Grid;
  Grid.reserve(4 * 3 * Spreads.size() * 4);
  uint64_t Counter = 0;
  for (ContainerKind Container : AllContainerKinds)
    for (KeyDistribution Distribution : AllKeyDistributions)
      for (size_t Spread : Spreads)
        for (ExecMode Mode : AllExecModes) {
          ExperimentConfig Config;
          Config.Container = Container;
          Config.Distribution = Distribution;
          Config.Spread = Spread;
          Config.Mode = Mode;
          Config.Affectations = Affectations;
          Config.Seed = Seed + Counter++;
          Grid.push_back(Config);
        }
  return Grid;
}
