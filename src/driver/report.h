//===- driver/report.h - Plain-text table / boxplot reports ----*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal fixed-width table and text-boxplot rendering used by every
/// bench binary to print the paper's tables and figure series.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_DRIVER_REPORT_H
#define SEPE_DRIVER_REPORT_H

#include "stats/descriptive.h"

#include <string>
#include <vector>

namespace sepe {

/// A fixed-width text table: set headers, add rows, print.
class TextTable {
public:
  explicit TextTable(std::vector<std::string> Headers);

  void addRow(std::vector<std::string> Cells);

  /// Renders with column alignment; first column left-aligned, the rest
  /// right-aligned.
  std::string str() const;

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

/// Formats \p Value with \p Precision decimal places.
std::string formatDouble(double Value, int Precision = 3);

/// One-line textual boxplot: "min [q1 | median | q3] max (mean)".
std::string formatBox(const BoxStats &Stats, int Precision = 3);

/// Renders labelled boxplot rows scaled to a shared axis — the text
/// equivalent of the paper's boxplot figures.
std::string renderBoxplots(const std::vector<std::string> &Labels,
                           const std::vector<BoxStats> &Stats,
                           int Width = 60);

} // namespace sepe

#endif // SEPE_DRIVER_REPORT_H
