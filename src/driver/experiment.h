//===- driver/experiment.h - The paper's benchmark driver ------*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The experiment driver of Section 4 ("Benchmarks"): a workload is a
/// set of keys plus a schedule of affectations (insert / search /
/// erase); an experiment runs one schedule against one container type
/// under one hash function and reports the paper's four metrics:
///
///   B-Time  - wall time of the full schedule (container effects
///             included);
///   H-Time  - wall time of hashing every scheduled key; the Batched
///             execution mode hashes through the many-keys-per-call
///             batch API (support/batch.h), interweaved modes hash one
///             key per call as their schedules deliver them;
///   B-Coll  - bucket collisions after inserting the distinct keys;
///   T-Coll  - distinct keys sharing a 64-bit hash value.
///
/// The standard grid is the paper's 144-experiment parameterization:
/// 4 containers x 3 distributions x 3 spreads x 4 execution modes.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_DRIVER_EXPERIMENT_H
#define SEPE_DRIVER_EXPERIMENT_H

#include "driver/hash_registry.h"
#include "keygen/distributions.h"

#include <cstdint>
#include <string>
#include <vector>

namespace sepe {

/// The four STL containers of the driver.
enum class ContainerKind { Map, Set, MultiMap, MultiSet };

constexpr std::array<ContainerKind, 4> AllContainerKinds = {
    ContainerKind::Map, ContainerKind::Set, ContainerKind::MultiMap,
    ContainerKind::MultiSet};

/// "U-Map", "U-Set", "UM-Map", "UM-Set" (Figure 20's labels).
const char *containerKindName(ContainerKind Kind);

/// Batched or one of the three allowed interweaved probability pairs
/// (Pi, Ps).
enum class ExecMode { Batched, Inter70_20, Inter60_20, Inter40_30 };

constexpr std::array<ExecMode, 4> AllExecModes = {
    ExecMode::Batched, ExecMode::Inter70_20, ExecMode::Inter60_20,
    ExecMode::Inter40_30};

const char *execModeName(ExecMode Mode);

struct ExperimentConfig {
  ContainerKind Container = ContainerKind::Map;
  KeyDistribution Distribution = KeyDistribution::Normal;
  size_t Spread = 10000;
  ExecMode Mode = ExecMode::Batched;
  size_t Affectations = 10000;
  uint64_t Seed = 0x5e9e;
};

/// A reproducible workload: the same keys and schedule are replayed for
/// every hash function, so timing differences isolate the hash.
struct Workload {
  enum class Op : uint8_t { Insert, Search, Erase };

  std::vector<std::string> Keys;
  std::vector<std::pair<Op, uint32_t>> Schedule;
};

/// Builds the workload for one key format under one configuration.
Workload makeWorkload(PaperKey Key, const ExperimentConfig &Config);

struct ExperimentResult {
  double BTimeMs = 0;
  double HTimeMs = 0;
  uint64_t BucketCollisions = 0;
  uint64_t TrueCollisions = 0;
};

/// Replays \p Work against the configured container under one hash
/// function and measures all four metrics.
ExperimentResult runExperiment(const Workload &Work,
                               const ExperimentConfig &Config, HashKind Kind,
                               const HashFunctionSet &Set);

/// One rung of the executor's batch-kernel ladder, timed under the
/// Batched execution mode.
struct BatchLadderTiming {
  /// Resolved path name ("scalar" | "interleaved" | "avx2").
  std::string Path;
  double HTimeMs = 0;
};

/// Batched-mode H-Time for every batch kernel rung \p Kind can resolve
/// on this host: synthetic kinds are re-attached with each forced
/// BatchPath (rungs an unhonorable request resolves away from are
/// deduplicated, so a non-AVX2 host reports scalar + interleaved only);
/// baselines report the single path support/batch.h gives them. The
/// rows isolate kernel width under the exact scheduled key stream the
/// B-Time experiment replays.
std::vector<BatchLadderTiming> measureBatchLadder(const Workload &Work,
                                                  HashKind Kind,
                                                  const HashFunctionSet &Set);

/// The specialized-storage replay: the same schedule run against a
/// FlatIndexMap keyed by the bijective Pext image (the future-work
/// extension). This is the driver surface that exercises the
/// instrumented SwissTable probes, so a `sepedriver --metrics` run
/// fills the flat_index_map.* probe-length histograms; the struct also
/// reports the structural stats those histograms summarize.
struct FlatIndexProbeResult {
  double BTimeMs = 0;
  size_t FinalSize = 0;
  /// Longest probe sequence over the final contents, in 16-slot
  /// control groups (1 = every key in its home group).
  size_t MaxProbeGroups = 0;
  size_t Tombstones = 0;
};

/// Fills \p Result by replaying \p Work's schedule against a
/// FlatIndexMap; returns false untouched when the set's Pext plan is
/// not bijective (keyless storage would be unsound).
bool runFlatIndexProbe(const Workload &Work, const HashFunctionSet &Set,
                       FlatIndexProbeResult &Result);

/// Counts distinct keys whose 64-bit hash collides with an earlier key
/// (the paper's T-Coll).
uint64_t countTrueCollisions(const std::vector<std::string> &Keys,
                             HashKind Kind, const HashFunctionSet &Set);

/// The paper's 144-experiment grid, with the affectation count and the
/// spreads scalable so the default suite stays laptop-sized.
std::vector<ExperimentConfig>
standardGrid(size_t Affectations = 10000,
             const std::vector<size_t> &Spreads = {500, 2000, 10000},
             uint64_t Seed = 0x5e9e);

} // namespace sepe

#endif // SEPE_DRIVER_EXPERIMENT_H
