//===- driver/hash_registry.cpp - The ten hash functions of Sec. 4 -------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "driver/hash_registry.h"

#include "core/synthesizer.h"
#include "keygen/distributions.h"

#include <cstdlib>

using namespace sepe;

const char *sepe::hashKindName(HashKind Kind) {
  switch (Kind) {
  case HashKind::Abseil:
    return "Abseil";
  case HashKind::Aes:
    return "Aes";
  case HashKind::City:
    return "City";
  case HashKind::Fnv:
    return "FNV";
  case HashKind::Gperf:
    return "Gperf";
  case HashKind::Gpt:
    return "Gpt";
  case HashKind::Naive:
    return "Naive";
  case HashKind::OffXor:
    return "OffXor";
  case HashKind::Pext:
    return "Pext";
  case HashKind::Stl:
    return "STL";
  }
  return "<invalid>";
}

bool sepe::isSynthetic(HashKind Kind) {
  return Kind == HashKind::Naive || Kind == HashKind::OffXor ||
         Kind == HashKind::Aes || Kind == HashKind::Pext;
}

HashFamily sepe::syntheticFamily(HashKind Kind) {
  switch (Kind) {
  case HashKind::Naive:
    return HashFamily::Naive;
  case HashKind::OffXor:
    return HashFamily::OffXor;
  case HashKind::Aes:
    return HashFamily::Aes;
  case HashKind::Pext:
    return HashFamily::Pext;
  default:
    break;
  }
  unreachable("syntheticFamily requires a synthetic kind");
}

HashFunctionSet HashFunctionSet::create(PaperKey Key, IsaLevel Isa,
                                        BatchPath Preferred) {
  HashFunctionSet Set;
  Set.Key = Key;
  Set.Isa = Isa;

  const KeyPattern Pattern = paperKeyFormat(Key).abstract();
  Expected<std::array<HashPlan, 4>> Plans = synthesizeAllFamilies(Pattern);
  if (!Plans) {
    // The paper formats are all synthesizable; failure is a bug.
    std::abort();
  }
  for (size_t I = 0; I != 4; ++I)
    Set.Synthesized[I] = SynthesizedHash((*Plans)[I], Isa, Preferred);

  // Gperf is trained with 1000 random keys (Section 4, "Baseline Hash
  // Functions"), so it is perfect only on that sample.
  KeyGenerator Gen(paperKeyFormat(Key), KeyDistribution::Uniform,
                   /*Seed=*/0x9be5f + static_cast<uint64_t>(Key));
  Set.Gperf = buildPerfectHash(Gen.distinct(1000));
  return Set;
}

size_t HashFunctionSet::hash(HashKind Kind, std::string_view KeyText) const {
  return visit(Kind,
               [KeyText](const auto &Hasher) { return Hasher(KeyText); });
}

void HashFunctionSet::hashBatch(HashKind Kind, const std::string_view *Keys,
                                uint64_t *Out, size_t N) const {
  visit(Kind, [Keys, Out, N](const auto &Hasher) {
    sepe::hashBatch(Hasher, Keys, Out, N);
  });
}
