//===- driver/hash_registry.h - The ten hash functions of Sec. 4 *- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One place that knows all ten hash functions of the paper's
/// evaluation: the four synthetic families (Naive, OffXor, Aes, Pext),
/// and the six baselines (STL/Murmur, Abseil/LowLevelHash, FNV, City,
/// Gpt, Gperf). A HashFunctionSet instantiates the per-format functions
/// (synthesized plans, the Gpt specialization, a Gperf function trained
/// on 1000 random keys) and offers a static-dispatch visitor so the
/// benchmark loops run without type erasure.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_DRIVER_HASH_REGISTRY_H
#define SEPE_DRIVER_HASH_REGISTRY_H

#include "core/executor.h"
#include "gperf/perfect_hash.h"
#include "hashes/city.h"
#include "hashes/fnv.h"
#include "hashes/gpt_like.h"
#include "hashes/low_level_hash.h"
#include "hashes/murmur.h"
#include "keygen/paper_formats.h"
#include "support/batch.h"
#include "support/unreachable.h"

#include <array>

namespace sepe {

/// The ten functions of Table 1, alphabetical like the paper's tables.
enum class HashKind {
  Abseil,
  Aes,
  City,
  Fnv,
  Gperf,
  Gpt,
  Naive,
  OffXor,
  Pext,
  Stl,
};

constexpr std::array<HashKind, 10> AllHashKinds = {
    HashKind::Abseil, HashKind::Aes,    HashKind::City,  HashKind::Fnv,
    HashKind::Gperf,  HashKind::Gpt,    HashKind::Naive, HashKind::OffXor,
    HashKind::Pext,   HashKind::Stl};

/// The four synthetic kinds, in Figure 3's constraint order.
constexpr std::array<HashKind, 4> SyntheticHashKinds = {
    HashKind::Naive, HashKind::OffXor, HashKind::Aes, HashKind::Pext};

/// Table-heading name ("Abseil", "Aes", ..., "STL").
const char *hashKindName(HashKind Kind);

bool isSynthetic(HashKind Kind);

/// The plan family behind a synthetic kind; precondition:
/// isSynthetic(Kind).
HashFamily syntheticFamily(HashKind Kind);

/// All per-format hash functions, ready for benchmarking.
class HashFunctionSet {
public:
  /// Builds the set for one paper key format. \p Isa selects the
  /// executor paths; IsaLevel::NoBitExtract is the RQ4 aarch64
  /// substitute (AES hardware, no pext). \p Preferred pins the
  /// synthesized hashers' batch rung (sepedriver/sepebench --path=);
  /// Auto dispatches on plan shape and host as usual.
  static HashFunctionSet create(PaperKey Key, IsaLevel Isa = IsaLevel::Native,
                                BatchPath Preferred = BatchPath::Auto);

  PaperKey key() const { return Key; }

  /// The IsaLevel the set was created for; forced-path rebuilds of the
  /// synthesized hashers (driver/experiment.h's batch ladder) reuse it.
  IsaLevel isa() const { return Isa; }

  const SynthesizedHash &synthesized(HashFamily Family) const {
    return Synthesized[static_cast<size_t>(Family)];
  }

  /// Hashes through a runtime-dispatched call; convenient for collision
  /// counting, not for timing loops.
  size_t hash(HashKind Kind, std::string_view KeyText) const;

  /// Batch dispatch: Out[i] = hash(Kind, Keys[i]), resolved through the
  /// static-dispatch visitor so the per-kind dispatch happens once per
  /// call instead of once per key. Kinds with a native batch kernel
  /// (the synthetic families, STL/Murmur, FNV, Gperf) run it; the rest
  /// loop over the single-key functor.
  void hashBatch(HashKind Kind, const std::string_view *Keys, uint64_t *Out,
                 size_t N) const;

  /// Calls \p Fn with the concrete functor for \p Kind; the benchmark
  /// loops instantiate per functor type so the hash call stays direct.
  template <typename Fn> decltype(auto) visit(HashKind Kind, Fn &&F) const {
    switch (Kind) {
    case HashKind::Abseil:
      return F(LowLevelHashFn{});
    case HashKind::Aes:
      return F(synthesized(HashFamily::Aes));
    case HashKind::City:
      return F(CityHash{});
    case HashKind::Fnv:
      return F(FnvHash{});
    case HashKind::Gperf:
      return F(Gperf);
    case HashKind::Gpt:
      return F(GptHash{Key});
    case HashKind::Naive:
      return F(synthesized(HashFamily::Naive));
    case HashKind::OffXor:
      return F(synthesized(HashFamily::OffXor));
    case HashKind::Pext:
      return F(synthesized(HashFamily::Pext));
    case HashKind::Stl:
      return F(MurmurStlHash{});
    }
    unreachable("all hash kinds handled above");
  }

private:
  PaperKey Key = PaperKey::SSN;
  IsaLevel Isa = IsaLevel::Native;
  std::array<SynthesizedHash, 4> Synthesized;
  PerfectHashFunction Gperf;
};

} // namespace sepe

#endif // SEPE_DRIVER_HASH_REGISTRY_H
