//===- gperf/perfect_hash.h - Miniature GNU gperf ---------------*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A miniature re-implementation of the GNU perfect hash function
/// generator (gperf), the paper's "Gperf" baseline. Like gperf, the
/// generator (i) selects a small set of distinguishing key positions,
/// and (ii) searches per-position association tables so the training
/// keys map to distinct values:
///
///   hash(k) = len(k) + sum_i asso[i][k[pos_i]]
///
/// And like gperf fed with 1000 random keys (Section 4), the result is
/// only perfect on its training set: the association tables confine the
/// hash to a narrow integer range, so unseen keys collide heavily —
/// which is precisely the behavior the paper reports (lowest H-Time,
/// catastrophic B-Time).
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_GPERF_PERFECT_HASH_H
#define SEPE_GPERF_PERFECT_HASH_H

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace sepe {

struct GperfOptions {
  /// Maximum number of key positions examined by the hash.
  unsigned MaxPositions = 8;
  /// Association-table refinement rounds.
  unsigned MaxIterations = 600;
  uint64_t Seed = 0x6be5f;
};

/// The generated hash function. Copyable (shared tables).
class PerfectHashFunction {
public:
  PerfectHashFunction() = default;

  size_t operator()(std::string_view Key) const {
    uint64_t Hash = Key.size();
    for (size_t I = 0; I != Tables->Positions.size(); ++I) {
      const uint32_t Pos = Tables->Positions[I];
      if (Pos < Key.size())
        Hash += Tables->Asso[I][static_cast<uint8_t>(Key[Pos])];
    }
    return Hash;
  }

  /// Batch evaluation: Out[i] = (*this)(Keys[i]). Four keys run
  /// interleaved per association table so the dependent table lookups of
  /// different keys overlap.
  void hashBatch(const std::string_view *Keys, uint64_t *Out,
                 size_t N) const {
    const TableData &T = *Tables;
    size_t I = 0;
    for (; I + 4 <= N; I += 4) {
      const std::string_view K0 = Keys[I + 0];
      const std::string_view K1 = Keys[I + 1];
      const std::string_view K2 = Keys[I + 2];
      const std::string_view K3 = Keys[I + 3];
      uint64_t H0 = K0.size(), H1 = K1.size(), H2 = K2.size(),
               H3 = K3.size();
      for (size_t P = 0; P != T.Positions.size(); ++P) {
        const uint32_t Pos = T.Positions[P];
        const std::array<uint32_t, 256> &Asso = T.Asso[P];
        if (Pos < K0.size())
          H0 += Asso[static_cast<uint8_t>(K0[Pos])];
        if (Pos < K1.size())
          H1 += Asso[static_cast<uint8_t>(K1[Pos])];
        if (Pos < K2.size())
          H2 += Asso[static_cast<uint8_t>(K2[Pos])];
        if (Pos < K3.size())
          H3 += Asso[static_cast<uint8_t>(K3[Pos])];
      }
      Out[I + 0] = H0;
      Out[I + 1] = H1;
      Out[I + 2] = H2;
      Out[I + 3] = H3;
    }
    for (; I != N; ++I)
      Out[I] = (*this)(Keys[I]);
  }

  /// Key positions the hash inspects, ascending.
  const std::vector<uint32_t> &positions() const {
    return Tables->Positions;
  }

  /// Total association-table entries ("large lookup table").
  size_t tableSize() const { return Tables->Asso.size() * 256; }

  /// Colliding training keys remaining after refinement (0 means the
  /// function is perfect on its training set).
  size_t trainingCollisions() const { return Tables->TrainingCollisions; }

  /// gperf-style C source for the generated function.
  std::string emitC(const std::string &Name = "gperf_hash") const;

private:
  friend PerfectHashFunction
  buildPerfectHash(const std::vector<std::string> &Keys,
                   const GperfOptions &Options);

  struct TableData {
    std::vector<uint32_t> Positions;
    std::vector<std::array<uint32_t, 256>> Asso;
    size_t TrainingCollisions = 0;
  };
  std::shared_ptr<const TableData> Tables;
};

/// Generates a hash function for \p Keys (the gperf keyword file).
PerfectHashFunction buildPerfectHash(const std::vector<std::string> &Keys,
                                     const GperfOptions &Options = {});

} // namespace sepe

#endif // SEPE_GPERF_PERFECT_HASH_H
