//===- gperf/perfect_hash.cpp - Miniature GNU gperf ----------------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "gperf/perfect_hash.h"

#include <algorithm>
#include <cassert>
#include <random>
#include <unordered_map>

using namespace sepe;

namespace {

/// Greedy position selection: repeatedly add the position that best
/// splits the currently-colliding groups of training keys, mirroring
/// gperf's -k inference.
std::vector<uint32_t> selectPositions(const std::vector<std::string> &Keys,
                                      unsigned MaxPositions) {
  size_t MaxLen = 0;
  for (const std::string &Key : Keys)
    MaxLen = std::max(MaxLen, Key.size());

  std::vector<uint32_t> Positions;
  // Group id per key under the currently selected positions (plus
  // length, which the hash always includes).
  std::vector<uint32_t> Group(Keys.size());
  {
    std::unordered_map<size_t, uint32_t> ByLen;
    for (size_t I = 0; I != Keys.size(); ++I) {
      const auto [It, _] = ByLen.try_emplace(
          Keys[I].size(), static_cast<uint32_t>(ByLen.size()));
      Group[I] = It->second;
    }
  }

  const auto DistinctGroups = [&](uint32_t Candidate) {
    std::unordered_map<uint64_t, uint32_t> Refined;
    for (size_t I = 0; I != Keys.size(); ++I) {
      const uint8_t Byte = Candidate < Keys[I].size()
                               ? static_cast<uint8_t>(Keys[I][Candidate])
                               : 0;
      const uint64_t Id = (static_cast<uint64_t>(Group[I]) << 8) | Byte;
      Refined.try_emplace(Id, static_cast<uint32_t>(Refined.size()));
    }
    return Refined;
  };

  size_t CurrentGroups = 0;
  for (uint32_t G : Group)
    CurrentGroups = std::max<size_t>(CurrentGroups, G + 1);

  while (Positions.size() < MaxPositions && CurrentGroups < Keys.size()) {
    uint32_t Best = 0;
    size_t BestCount = CurrentGroups;
    for (uint32_t Candidate = 0; Candidate != MaxLen; ++Candidate) {
      if (std::find(Positions.begin(), Positions.end(), Candidate) !=
          Positions.end())
        continue;
      const size_t Count = DistinctGroups(Candidate).size();
      if (Count > BestCount) {
        BestCount = Count;
        Best = Candidate;
      }
    }
    if (BestCount == CurrentGroups)
      break; // No position separates anything further.
    std::unordered_map<uint64_t, uint32_t> Refined = DistinctGroups(Best);
    for (size_t I = 0; I != Keys.size(); ++I) {
      const uint8_t Byte = Best < Keys[I].size()
                               ? static_cast<uint8_t>(Keys[I][Best])
                               : 0;
      Group[I] = Refined[(static_cast<uint64_t>(Group[I]) << 8) | Byte];
    }
    CurrentGroups = BestCount;
    Positions.push_back(Best);
  }
  std::sort(Positions.begin(), Positions.end());
  return Positions;
}

} // namespace

PerfectHashFunction
sepe::buildPerfectHash(const std::vector<std::string> &Keys,
                       const GperfOptions &Options) {
  assert(!Keys.empty() && "gperf requires at least one keyword");
  auto Data = std::make_shared<PerfectHashFunction::TableData>();
  Data->Positions = selectPositions(Keys, Options.MaxPositions);
  Data->Asso.assign(Data->Positions.size(), {});

  PerfectHashFunction Fn;
  Fn.Tables = Data;

  // Iterative association-value search (gperf's core loop): find
  // colliding training keys and bump the association value of one of
  // their (position, byte) pairs. Small increments keep the hash range
  // dense, exactly like gperf's asso_values.
  std::mt19937_64 Rng(Options.Seed);
  size_t BestCollisions = Keys.size();
  std::vector<std::array<uint32_t, 256>> BestAsso = Data->Asso;

  // gperf bounds its association values (asso_max) so the hash range
  // stays dense — a handful of residual training collisions is accepted
  // over a sparse table. This narrow range is precisely why a function
  // trained on 1000 random keys collides heavily on the full key space
  // (Section 4.2's "imperfect lookup table").
  const uint32_t AssoCap = static_cast<uint32_t>(
      std::max<size_t>(Keys.size() / 2, 32));

  for (unsigned Iter = 0; Iter != Options.MaxIterations; ++Iter) {
    // Increments grow as the search ages so the association values can
    // spread far enough to separate large keyword sets (gperf keeps
    // raising asso_max the same way).
    const uint32_t MaxBump = std::min<uint32_t>(2 + Iter / 4, 16);
    std::unordered_map<uint64_t, size_t> Counts;
    Counts.reserve(Keys.size() * 2);
    for (const std::string &Key : Keys)
      ++Counts[Fn(Key)];
    size_t Collisions = 0;
    for (const auto &[Hash, Count] : Counts)
      Collisions += Count - 1;
    if (Collisions < BestCollisions) {
      BestCollisions = Collisions;
      BestAsso = Data->Asso;
    }
    if (Collisions == 0)
      break;

    // Perturb: for every key in a colliding bucket (except one
    // representative), bump one association entry.
    std::unordered_map<uint64_t, bool> SeenHash;
    for (const std::string &Key : Keys) {
      const uint64_t Hash = Fn(Key);
      auto [It, Inserted] = SeenHash.try_emplace(Hash, true);
      (void)It;
      if (Inserted)
        continue;
      if (Data->Positions.empty())
        break;
      const size_t Which = Rng() % Data->Positions.size();
      const uint32_t Pos = Data->Positions[Which];
      if (Pos >= Key.size())
        continue;
      uint32_t &Entry = Data->Asso[Which][static_cast<uint8_t>(Key[Pos])];
      Entry = (Entry + 1 + Rng() % MaxBump) % AssoCap;
    }
  }

  // Restore the best table found during the search.
  Data->Asso = BestAsso;
  Data->TrainingCollisions = BestCollisions;
  return Fn;
}

std::string PerfectHashFunction::emitC(const std::string &Name) const {
  std::string Out;
  Out += "/* Generated by sepe mini-gperf. */\n";
  Out += "#include <stddef.h>\n\n";
  for (size_t I = 0; I != Tables->Asso.size(); ++I) {
    Out += "static const unsigned asso" + std::to_string(I) + "[256] = {";
    for (size_t B = 0; B != 256; ++B) {
      if (B % 16 == 0)
        Out += "\n  ";
      Out += std::to_string(Tables->Asso[I][B]);
      Out += ",";
    }
    Out += "\n};\n";
  }
  Out += "\nsize_t " + Name + "(const char *Key, size_t Len) {\n";
  Out += "  size_t Hash = Len;\n";
  for (size_t I = 0; I != Tables->Positions.size(); ++I) {
    const std::string Pos = std::to_string(Tables->Positions[I]);
    Out += "  if (" + Pos + " < Len)\n";
    Out += "    Hash += asso" + std::to_string(I) +
           "[(unsigned char)Key[" + Pos + "]];\n";
  }
  Out += "  return Hash;\n}\n";
  return Out;
}
