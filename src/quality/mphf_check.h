//===- quality/mphf_check.h - MPHF structural verification ------*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The quality harness's structural check for the static-set tier: a
/// minimal perfect hash function must map its construction keys onto
/// [0, n) with zero collisions and exact coverage. measureMphf walks
/// the whole key set against a bitmap and reports every way the
/// bijection can fail, as a scorecard row the mphf-smoke CI job floors
/// on (Collisions == 0, Coverage == 1.0).
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_QUALITY_MPHF_CHECK_H
#define SEPE_QUALITY_MPHF_CHECK_H

#include "mphf/mphf.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sepe {
namespace quality {

/// One structural scorecard row for a built MPHF.
struct MphfReport {
  std::string Format; ///< Label (paper key name), set by the caller.
  std::string Tier;   ///< mphfTierName of the measured plan.

  uint64_t N = 0;          ///< Keys checked.
  uint64_t Collisions = 0; ///< Pairs of keys sharing an index.
  uint64_t OutOfRange = 0; ///< Keys mapped outside [0, n).
  uint64_t MaxIndex = 0;   ///< Largest index observed.
  /// Fraction of [0, n) hit by at least one key; 1.0 for a bijection.
  double Coverage = 0.0;
  double BitsPerKey = 0.0; ///< Storage cost of the pilot structures.

  /// True iff the function is minimal perfect on the checked set.
  bool perfect() const {
    return Collisions == 0 && OutOfRange == 0 && Coverage == 1.0;
  }

  /// One JSON object (one scorecard row).
  std::string toJson() const;
};

/// Checks \p F over \p N keys (normally its construction set).
MphfReport measureMphf(const Mphf &F, const std::string_view *Keys,
                       size_t N);

inline MphfReport measureMphf(const Mphf &F,
                              const std::vector<std::string> &Keys) {
  std::vector<std::string_view> Views(Keys.begin(), Keys.end());
  return measureMphf(F, Views.data(), Views.size());
}

} // namespace quality
} // namespace sepe

#endif // SEPE_QUALITY_MPHF_CHECK_H
