//===- quality/avalanche.cpp - Format-constrained SAC harness ------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
//
// The SAC pass flips one free bit at a time on in-format sample keys
// and accumulates a (free input bit x output bit) flip-count matrix;
// every derived score is a moment of that matrix. Flipping a free bit
// can land on a byte outside the position's class (digits span
// 0x30..0x39 but their free nibble covers 0x3a..0x3f too) — that is
// intentional: the free bit positions are exactly the bits a
// specialized plan reads and compresses, so the hash is judged on the
// full range of the bits it actually sees. The uniformity/collision
// pass, by contrast, uses only genuine format members, so the Pext
// bijectivity claim stays checkable.
//
//===----------------------------------------------------------------------===//

#include "quality/avalanche.h"

#include "core/charset.h"
#include "keygen/distributions.h"
#include "stats/chi_square.h"
#include "support/json.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdio>

using namespace sepe;
using namespace sepe::quality;

std::vector<uint8_t> quality::formatFreeMasks(const FormatSpec &Format) {
  std::vector<uint8_t> Masks(Format.maxLength(), 0);
  for (size_t P = 0; P != Masks.size(); ++P) {
    const CharSet &Class = Format.classAt(P);
    uint8_t And = 0xff, Or = 0;
    for (size_t R = 0; R != Class.size(); ++R) {
      const uint8_t B = Class.nth(R);
      And &= B;
      Or |= B;
    }
    Masks[P] = Class.size() == 0 ? 0 : static_cast<uint8_t>(And ^ Or);
  }
  return Masks;
}

namespace {

std::string formatDouble(double V) {
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  return Buf;
}

/// One free input bit: byte position and bit index within the byte.
struct FreeBit {
  uint32_t Pos;
  uint8_t Bit;
};

} // namespace

std::string QualityReport::toJson() const {
  std::string Out = "{";
  Out += "\"format\":\"" + json::escapeString(Format) + "\"";
  Out += ",\"family\":\"" + json::escapeString(Family) + "\"";
  Out += ",\"free_bits\":" + std::to_string(FreeBitCount);
  Out += ",\"sac_keys\":" + std::to_string(SacKeys);
  Out += ",\"uniform_keys\":" + std::to_string(UniformKeys);
  Out += ",\"sac_score\":" + formatDouble(SacScore);
  Out += ",\"mean_sac_bias\":" + formatDouble(MeanSacBias);
  Out += ",\"max_sac_bias\":" + formatDouble(MaxSacBias);
  Out += ",\"mean_output_bias\":" + formatDouble(MeanOutputBias);
  Out += ",\"max_output_bias\":" + formatDouble(MaxOutputBias);
  Out += ",\"max_pair_bias\":" + formatDouble(MaxPairBias);
  Out += ",\"chi2\":" + formatDouble(Chi2);
  Out += ",\"chi2_p_value\":" + formatDouble(Chi2PValue);
  Out += ",\"collisions\":" + std::to_string(Collisions);
  Out += ",\"free_bit_coverage\":" + formatDouble(FreeBitCoverage);
  Out += std::string(",\"bijective\":") + (Bijective ? "true" : "false");
  Out += "}";
  return Out;
}

QualityReport quality::measureQuality(const FormatSpec &Format,
                                      const SynthesizedHash &Hash,
                                      const QualityOptions &Options) {
  QualityReport R;
  R.Family = familyName(Hash.plan().Family);
  R.Bijective = Hash.plan().Bijective;

  const std::vector<uint8_t> Masks = formatFreeMasks(Format);
  std::vector<FreeBit> FreeBits;
  for (uint32_t P = 0; P != Masks.size(); ++P)
    for (uint8_t B = 0; B != 8; ++B)
      if ((Masks[P] >> B) & 1)
        FreeBits.push_back({P, B});
  R.FreeBitCount = static_cast<uint32_t>(FreeBits.size());

  KeyGenerator Gen(Format, KeyDistribution::Uniform, Options.Seed);
  const auto Cap = [&Gen](size_t N) {
    const KeyGenerator::Value Space = Gen.spaceSize();
    return Space < static_cast<KeyGenerator::Value>(N)
               ? static_cast<size_t>(Space)
               : N;
  };

  // --- SAC matrix + bit independence over format-constrained flips ---
  if (!FreeBits.empty() && Options.SacKeys != 0) {
    const size_t NumFree = FreeBits.size();
    std::vector<std::string> Pool = Gen.distinct(Cap(Options.SacKeys));
    std::vector<uint64_t> FlipCount(NumFree * 64, 0);
    std::vector<uint64_t> Trials(NumFree, 0);
    std::vector<uint64_t> Affected(NumFree, 0);
    std::vector<uint32_t> Joint(64 * 64, 0);
    std::vector<uint64_t> BicFlip(64, 0);
    uint64_t BicTrials = 0;

    for (size_t KI = 0; KI != Pool.size(); ++KI) {
      std::string &Key = Pool[KI];
      const uint64_t H0 = Hash(Key);
      const bool Bic = KI < Options.BicKeys;
      for (size_t F = 0; F != NumFree; ++F) {
        const FreeBit FB = FreeBits[F];
        // Variable-length formats: a position beyond this key's length
        // contributes no trial for this key.
        if (FB.Pos >= Key.size())
          continue;
        Key[FB.Pos] = static_cast<char>(Key[FB.Pos] ^ (1u << FB.Bit));
        const uint64_t Delta = H0 ^ Hash(Key);
        Key[FB.Pos] = static_cast<char>(Key[FB.Pos] ^ (1u << FB.Bit));
        ++Trials[F];
        Affected[F] |= Delta;
        for (uint64_t Bits = Delta; Bits != 0; Bits &= Bits - 1)
          ++FlipCount[F * 64 + static_cast<size_t>(std::countr_zero(Bits))];
        if (Bic) {
          ++BicTrials;
          if (Delta != 0) {
            for (unsigned J = 0; J != 64; ++J) {
              if (((Delta >> J) & 1) == 0)
                continue;
              ++BicFlip[J];
              for (unsigned K = J + 1; K != 64; ++K)
                Joint[J * 64 + K] +=
                    static_cast<uint32_t>((Delta >> K) & 1);
            }
          }
        }
      }
    }
    R.SacKeys = static_cast<uint32_t>(Pool.size());

    double SumBias = 0.0, MaxBias = 0.0;
    size_t Cells = 0, LiveRows = 0, CoveredRows = 0;
    for (size_t F = 0; F != NumFree; ++F) {
      if (Trials[F] == 0)
        continue;
      ++LiveRows;
      if (Affected[F] != 0)
        ++CoveredRows;
      for (unsigned J = 0; J != 64; ++J) {
        const double P =
            static_cast<double>(FlipCount[F * 64 + J]) /
            static_cast<double>(Trials[F]);
        const double Bias = std::abs(2.0 * P - 1.0);
        SumBias += Bias;
        MaxBias = std::max(MaxBias, Bias);
        ++Cells;
      }
    }
    if (Cells != 0) {
      R.MeanSacBias = SumBias / static_cast<double>(Cells);
      R.MaxSacBias = MaxBias;
      R.SacScore = 1.0 - R.MeanSacBias;
    }
    if (LiveRows != 0)
      R.FreeBitCoverage =
          static_cast<double>(CoveredRows) / static_cast<double>(LiveRows);

    if (BicTrials != 0) {
      const double N = static_cast<double>(BicTrials);
      double MaxPair = 0.0;
      for (unsigned J = 0; J != 64; ++J) {
        const double Pj = static_cast<double>(BicFlip[J]) / N;
        for (unsigned K = J + 1; K != 64; ++K) {
          const double Pk = static_cast<double>(BicFlip[K]) / N;
          const double Pjk =
              static_cast<double>(Joint[J * 64 + K]) / N;
          // Covariance of two fair output-bit flips peaks at 1/4; the
          // factor 4 normalizes onto [0,1] like the other biases.
          MaxPair = std::max(MaxPair, std::abs(4.0 * (Pjk - Pj * Pk)));
        }
      }
      R.MaxPairBias = MaxPair;
    }
  }

  // --- Uniformity, output balance, and exact collisions over genuine
  // format members ---
  if (Options.UniformKeys != 0) {
    const std::vector<std::string> Keys = Gen.distinct(Cap(Options.UniformKeys));
    std::vector<uint64_t> Hashes;
    Hashes.reserve(Keys.size());
    std::array<uint64_t, 64> Ones = {};
    for (const std::string &Key : Keys) {
      const uint64_t H = Hash(Key);
      Hashes.push_back(H);
      for (uint64_t Bits = H; Bits != 0; Bits &= Bits - 1)
        ++Ones[static_cast<size_t>(std::countr_zero(Bits))];
    }
    R.UniformKeys = static_cast<uint32_t>(Keys.size());
    if (!Hashes.empty()) {
      double SumBias = 0.0, MaxBias = 0.0;
      for (unsigned J = 0; J != 64; ++J) {
        const double P = static_cast<double>(Ones[J]) /
                         static_cast<double>(Hashes.size());
        const double Bias = std::abs(2.0 * P - 1.0);
        SumBias += Bias;
        MaxBias = std::max(MaxBias, Bias);
      }
      R.MeanOutputBias = SumBias / 64.0;
      R.MaxOutputBias = MaxBias;
      R.Chi2 = hashUniformityChi2(Hashes, Options.Buckets);
      R.Chi2PValue = chiSquarePValue(R.Chi2, Options.Buckets - 1);
      std::vector<uint64_t> Sorted = Hashes;
      std::sort(Sorted.begin(), Sorted.end());
      for (size_t I = 1; I < Sorted.size(); ++I)
        if (Sorted[I] == Sorted[I - 1])
          ++R.Collisions;
    }
  }
  return R;
}
