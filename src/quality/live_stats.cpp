//===- quality/live_stats.cpp - Latest live quality sample ---------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "quality/live_stats.h"

#include <cstdio>
#include <mutex>

using namespace sepe;
using namespace sepe::quality;

namespace {

struct Store {
  std::mutex Mutex;
  LiveQualitySample Latest;
};

Store &store() {
  static Store S;
  return S;
}

std::string formatDouble(double V) {
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  return Buf;
}

} // namespace

void quality::publishLiveSample(const LiveQualitySample &Sample) {
  Store &S = store();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  S.Latest = Sample;
}

LiveQualitySample quality::latestLiveSample() {
  Store &S = store();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  return S.Latest;
}

std::string quality::liveStatsPrometheus() {
  const LiveQualitySample L = latestLiveSample();
  if (L.SequenceNumber == 0)
    return "";
  std::string Out;
  Out += "# TYPE sepe_quality_generation gauge\n";
  Out += "sepe_quality_generation " + std::to_string(L.Generation) + "\n";
  Out += "# TYPE sepe_quality_samples counter\n";
  Out += "sepe_quality_samples " + std::to_string(L.SequenceNumber) + "\n";
  Out += "# TYPE sepe_quality_sample_keys gauge\n";
  Out += "sepe_quality_sample_keys " + std::to_string(L.SampleKeys) + "\n";
  Out += "# TYPE sepe_quality_duplicate_hashes gauge\n";
  Out += "sepe_quality_duplicate_hashes " +
         std::to_string(L.DuplicateHashes) + "\n";
  Out += "# TYPE sepe_quality_occupancy_skew gauge\n";
  Out += "sepe_quality_occupancy_skew " + formatDouble(L.OccupancySkew) +
         "\n";
  Out += "# TYPE sepe_quality_chi2 gauge\n";
  Out += "sepe_quality_chi2 " + formatDouble(L.Chi2) + "\n";
  return Out;
}

std::string quality::liveStatsJson() {
  const LiveQualitySample L = latestLiveSample();
  std::string Out = "{";
  Out += std::string("\"valid\":") + (L.Valid ? "true" : "false");
  Out += ",\"generation\":" + std::to_string(L.Generation);
  Out += ",\"sequence\":" + std::to_string(L.SequenceNumber);
  Out += ",\"sample_keys\":" + std::to_string(L.SampleKeys);
  Out += ",\"duplicate_hashes\":" + std::to_string(L.DuplicateHashes);
  Out += ",\"occupancy_skew\":" + formatDouble(L.OccupancySkew);
  Out += ",\"chi2\":" + formatDouble(L.Chi2);
  Out += "}\n";
  return Out;
}
