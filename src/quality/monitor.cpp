//===- quality/monitor.cpp - Live distribution-quality monitor -----------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "quality/monitor.h"

#include "container/flat_index_map.h"
#include "stats/chi_square.h"
#include "support/telemetry.h"
#include "support/trace.h"

#include <algorithm>
#include <array>
#include <vector>

using namespace sepe;
using namespace sepe::quality;

LiveQualitySample QualityMonitor::pump(size_t MinKeys) {
  const AdaptiveHash::Snapshot Snap = Hash.snapshot();
  LiveQualitySample S;
  S.Generation = Snap.Epoch;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    S.SequenceNumber = ++Seq;
  }

  // The reservoir can hold the same hot key several times; collisions
  // only mean anything across distinct keys.
  std::vector<std::string> Keys = Hash.sampledInFormatKeys();
  std::sort(Keys.begin(), Keys.end());
  Keys.erase(std::unique(Keys.begin(), Keys.end()), Keys.end());
  S.SampleKeys = Keys.size();

  if (Snap.Fast.valid() && Keys.size() >= MinKeys && MinKeys != 0) {
    std::vector<uint64_t> Hashes;
    Hashes.reserve(Keys.size());
    // Bucket through the same Fibonacci scramble FlatIndexMap probes
    // with, so skew here predicts probe clustering there.
    std::array<uint64_t, 64> Buckets = {};
    for (const std::string &Key : Keys) {
      const uint64_t H = Snap.Fast(Key);
      Hashes.push_back(H);
      ++Buckets[static_cast<size_t>(probe::scramble(H) >> 58)];
    }
    uint64_t MaxBucket = 0;
    for (uint64_t C : Buckets)
      MaxBucket = std::max(MaxBucket, C);
    const double Mean = static_cast<double>(Hashes.size()) / 64.0;
    S.OccupancySkew = static_cast<double>(MaxBucket) / Mean;
    S.Chi2 = chiSquareUniform(
        std::vector<uint64_t>(Buckets.begin(), Buckets.end()));
    std::sort(Hashes.begin(), Hashes.end());
    for (size_t I = 1; I < Hashes.size(); ++I)
      if (Hashes[I] == Hashes[I - 1])
        ++S.DuplicateHashes;
    S.Valid = true;
  }

  publishLiveSample(S);
  SEPE_RECORD("quality.live.sample_keys", S.SampleKeys);
  if (S.Valid) {
    SEPE_RECORD("quality.live.duplicates", S.DuplicateHashes);
    SEPE_RECORD("quality.live.skew_x1000",
                static_cast<uint64_t>(S.OccupancySkew * 1000.0));
  }
  SEPE_TRACE_INSTANT(QualitySample, S.Generation,
                     static_cast<uint64_t>(S.OccupancySkew * 1000.0));
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Latest = S;
  }
  return S;
}

LiveQualitySample QualityMonitor::latest() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Latest;
}
