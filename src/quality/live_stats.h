//===- quality/live_stats.h - Latest live quality sample -------*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-global slot for the most recent live quality sample. The
/// QualityMonitor (quality/monitor.h) computes samples from the
/// adaptive runtime's in-format key reservoir and publishes them here;
/// the Prometheus renderer (support/metrics_exporter.cpp) and the
/// sepeserve `/quality` endpoint read them back. Kept dependency-free
/// and compiled into sepe_core so the exporter can surface
/// `sepe_quality_*` gauges without linking the full quality harness.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_QUALITY_LIVE_STATS_H
#define SEPE_QUALITY_LIVE_STATS_H

#include <cstdint>
#include <string>

namespace sepe {
namespace quality {

/// One sampled estimate of how well the currently published plan is
/// distributing live traffic, stamped with the plan generation it was
/// computed against.
struct LiveQualitySample {
  /// AdaptiveHash epoch the sampled keys were hashed under.
  uint64_t Generation = 0;
  /// Monotone pump count; lets scrapers tell "new sample" from "same".
  uint64_t SequenceNumber = 0;
  /// Keys in the reservoir snapshot this sample was computed from.
  uint64_t SampleKeys = 0;
  /// Distinct sampled keys whose 64-bit hashes collided exactly.
  uint64_t DuplicateHashes = 0;
  /// Max-over-mean occupancy across 64 scrambled buckets (1.0 is
  /// perfectly even; a drifting plan skews upward before the drift
  /// detector trips).
  double OccupancySkew = 0.0;
  /// Chi-square statistic of the same 64-bucket occupancy (dof 63).
  double Chi2 = 0.0;
  /// False until the monitor has seen enough keys to say anything.
  bool Valid = false;
};

/// Publishes \p Sample as the process-wide latest. Thread-safe.
void publishLiveSample(const LiveQualitySample &Sample);

/// Latest published sample; SequenceNumber == 0 when none yet.
LiveQualitySample latestLiveSample();

/// `sepe_quality_*` gauge exposition appended to the Prometheus page.
/// Empty until the first publish so quiet processes scrape clean.
std::string liveStatsPrometheus();

/// JSON document served by `/quality`: the latest sample, generation
/// stamp included, `{"valid":false}`-shaped when nothing is published.
std::string liveStatsJson();

} // namespace quality
} // namespace sepe

#endif // SEPE_QUALITY_LIVE_STATS_H
