//===- quality/avalanche.h - Format-constrained SAC harness ----*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Offline statistical quality harness in the hash-prospector mold,
/// adapted to format-specialized hashing: the strict-avalanche-criterion
/// matrix, per-output-bit bias, bit-independence, and chi-square bucket
/// uniformity are all computed over *format-constrained* inputs. Only
/// the free bits of the format — the byte-position bits the class sets
/// leave variable, exactly the "relevant bits" of Section 4.2 that a
/// Pext plan compresses — are ever flipped, so a specialized plan is
/// judged on the bits it actually sees, not on input entropy the format
/// guarantees can never occur.
///
/// A general-purpose mixer is expected to score near 1.0 on SAC; the
/// paper's families are *not* — Naive/OffXor/Pext trade avalanche for
/// speed and (for Pext) provable bijectivity, and the harness exists to
/// quantify exactly that trade. The scorecard bench (sepebench
/// `quality/*`) runs this over every family x paper format.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_QUALITY_AVALANCHE_H
#define SEPE_QUALITY_AVALANCHE_H

#include "core/executor.h"
#include "core/format_spec.h"

#include <cstdint>
#include <string>
#include <vector>

namespace sepe {
namespace quality {

/// Per-byte-position free-bit masks for \p Format: bit b of entry p is
/// set iff byte position p can differ in that bit across format members
/// (the OR of the class's bytes xor their AND). Constant positions get
/// mask 0; the vector has maxLength() entries.
std::vector<uint8_t> formatFreeMasks(const FormatSpec &Format);

/// Sample sizes for one measurement. The defaults keep a full
/// family x format scorecard in the tens of milliseconds.
struct QualityOptions {
  /// Keys the SAC matrix averages over (each free bit is flipped once
  /// per key).
  size_t SacKeys = 256;
  /// Keys feeding the pairwise bit-independence accumulation (quadratic
  /// in output bits, so sampled more lightly).
  size_t BicKeys = 64;
  /// Distinct keys hashed for the chi-square / collision pass.
  size_t UniformKeys = 4096;
  /// Buckets for the chi-square occupancy test.
  size_t Buckets = 64;
  uint64_t Seed = 0x5ac5;
};

/// One scorecard row. Bias values are in [0,1]: 0 is ideal (every free
/// bit flips every output bit with probability exactly 1/2), 1 is a
/// bit that never or always flips.
struct QualityReport {
  std::string Format; ///< Label (paper key name), set by the caller.
  std::string Family; ///< familyName of the measured plan.

  uint32_t FreeBitCount = 0; ///< Free input bits the format exposes.
  uint32_t SacKeys = 0;      ///< Keys actually used for the SAC matrix.
  uint32_t UniformKeys = 0;  ///< Keys actually hashed for chi2/collisions.

  /// Strict avalanche: mean / max |2p - 1| over the (free input bit x
  /// output bit) flip-probability matrix, and the derived score
  /// 1 - MeanSacBias (1.0 = perfect avalanche).
  double SacScore = 0.0;
  double MeanSacBias = 0.0;
  double MaxSacBias = 0.0;

  /// Output-bit balance over unflipped in-format keys: |2p - 1| of each
  /// output bit being set.
  double MeanOutputBias = 0.0;
  double MaxOutputBias = 0.0;

  /// Bit independence: max over output-bit pairs of the normalized
  /// covariance |4 (P(i,j) - P(i) P(j))| of the pair flipping together.
  double MaxPairBias = 0.0;

  /// Chi-square of the scrambled top-bits bucket occupancy over
  /// UniformKeys distinct keys, and its p-value (dof = Buckets - 1).
  double Chi2 = 0.0;
  double Chi2PValue = 0.0;

  /// Exact 64-bit hash collisions among the UniformKeys distinct keys.
  uint64_t Collisions = 0;

  /// Fraction of free input bits whose flip ever changed any output
  /// bit. 1.0 means no free bit is dead; a bijective plan must be 1.0.
  double FreeBitCoverage = 0.0;

  /// Copied from the plan: provably collision-free on format members.
  bool Bijective = false;

  /// One JSON object (one scorecard row).
  std::string toJson() const;
};

/// Measures \p Hash over \p Format. \p Hash must be valid and built
/// from a plan synthesized for this format (the free-bit restriction
/// assumes the two agree). Report.Format is left empty for the caller.
QualityReport measureQuality(const FormatSpec &Format,
                             const SynthesizedHash &Hash,
                             const QualityOptions &Options = {});

} // namespace quality
} // namespace sepe

#endif // SEPE_QUALITY_AVALANCHE_H
