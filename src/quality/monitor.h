//===- quality/monitor.h - Live distribution-quality monitor ---*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sampled collision / occupancy-skew estimator over the adaptive
/// runtime. AdaptiveHash keeps a second reservoir of *admitted*
/// (in-format) keys (AdaptiveOptions::QualitySampleEvery); each pump()
/// takes a tear-free plan snapshot, re-hashes the reservoir under it,
/// and derives container-perspective statistics: exact duplicate
/// hashes among distinct sampled keys, max-over-mean occupancy of 64
/// Fibonacci-scrambled buckets (the same mix FlatIndexMap probes
/// with), and the chi-square of that occupancy. Results are stamped
/// with the plan generation and published to the process-global live
/// stats slot (Prometheus `sepe_quality_*`, the `/quality` endpoint),
/// telemetry histograms, and the trace flight recorder — so a plan
/// whose distribution degrades under drift is visible before the
/// drift detector trips.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_QUALITY_MONITOR_H
#define SEPE_QUALITY_MONITOR_H

#include "quality/live_stats.h"
#include "runtime/adaptive_hash.h"

#include <mutex>

namespace sepe {
namespace quality {

class QualityMonitor {
public:
  /// \p Hash must outlive the monitor. Enable in-format sampling on
  /// the hash (AdaptiveOptions::QualitySampleEvery) or every pump will
  /// come back empty.
  explicit QualityMonitor(const AdaptiveHash &Hash) : Hash(Hash) {}

  /// Recomputes statistics from the current reservoir snapshot and
  /// publishes them. Returns the sample; Valid is false when fewer
  /// than \p MinKeys distinct keys have been sampled or no specialized
  /// plan is live. Cheap enough for a maintenance-thread cadence: one
  /// guarded hash per sampled key plus a 64-bucket pass.
  LiveQualitySample pump(size_t MinKeys = 16);

  /// Most recent pump() result (whether or not it was Valid).
  LiveQualitySample latest() const;

private:
  const AdaptiveHash &Hash;
  mutable std::mutex Mutex;
  LiveQualitySample Latest;
  uint64_t Seq = 0;
};

} // namespace quality
} // namespace sepe

#endif // SEPE_QUALITY_MONITOR_H
