//===- quality/mphf_check.cpp - MPHF structural verification --------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "quality/mphf_check.h"

#include <algorithm>
#include <bit>
#include <cstdio>

using namespace sepe;
using namespace sepe::quality;

MphfReport quality::measureMphf(const Mphf &F, const std::string_view *Keys,
                                size_t N) {
  MphfReport Report;
  Report.Tier = F.valid() ? mphfTierName(F.plan().Tier) : "invalid";
  Report.N = N;
  if (!F.valid() || N == 0)
    return Report;
  Report.BitsPerKey = F.plan().bitsPerKey();

  const uint64_t Range = F.size();
  std::vector<uint64_t> Seen((Range + 63) / 64, 0);
  std::vector<uint64_t> Slots(std::min<size_t>(N, 4096));
  for (size_t At = 0; At < N;) {
    const size_t Chunk = std::min(Slots.size(), N - At);
    F.evalBatch(Keys + At, Slots.data(), Chunk);
    for (size_t I = 0; I != Chunk; ++I) {
      const uint64_t Slot = Slots[I];
      if (Slot >= Range) {
        ++Report.OutOfRange;
        Report.MaxIndex = std::max(Report.MaxIndex, Slot);
        continue;
      }
      Report.MaxIndex = std::max(Report.MaxIndex, Slot);
      if ((Seen[Slot / 64] >> (Slot % 64)) & 1)
        ++Report.Collisions;
      else
        Seen[Slot / 64] |= uint64_t{1} << (Slot % 64);
    }
    At += Chunk;
  }

  uint64_t Hit = 0;
  for (uint64_t Word : Seen)
    Hit += static_cast<uint64_t>(std::popcount(Word));
  Report.Coverage =
      Range == 0 ? 0.0 : static_cast<double>(Hit) / static_cast<double>(Range);
  return Report;
}

std::string MphfReport::toJson() const {
  char Buf[64];
  std::string Out = "{";
  Out += "\"format\":\"" + Format + "\"";
  Out += ",\"tier\":\"" + Tier + "\"";
  Out += ",\"n\":" + std::to_string(N);
  Out += ",\"collisions\":" + std::to_string(Collisions);
  Out += ",\"out_of_range\":" + std::to_string(OutOfRange);
  Out += ",\"max_index\":" + std::to_string(MaxIndex);
  std::snprintf(Buf, sizeof(Buf), "%.6f", Coverage);
  Out += ",\"coverage\":" + std::string(Buf);
  std::snprintf(Buf, sizeof(Buf), "%.4f", BitsPerKey);
  Out += ",\"bits_per_key\":" + std::string(Buf);
  Out += std::string(",\"perfect\":") + (perfect() ? "true" : "false");
  Out += "}";
  return Out;
}
