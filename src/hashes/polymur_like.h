//===- hashes/polymur_like.h - Length-specialized universal hash *- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A PolymurHash-style 64-bit universal hash with the three length
/// specializations the paper's Example 2.2 highlights (Figure 2):
/// short inputs (len <= 7), the common mid range (8 <= len < 50), and
/// long inputs (len >= 50). The core is polynomial evaluation over the
/// Mersenne prime 2^61 - 1, which gives an almost-universal family —
/// the "industrial-quality hand specialization" the paper contrasts
/// its synthesized functions against. Included as an additional
/// baseline for the microbenchmarks; not part of the paper's ten-way
/// comparison.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_HASHES_POLYMUR_LIKE_H
#define SEPE_HASHES_POLYMUR_LIKE_H

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sepe {

/// Parameters of one polymur-style function (the random polynomial
/// point and tweak, reduced into the field).
struct PolymurParams {
  uint64_t K = 0;     // polynomial evaluation point, in [2, 2^61 - 2]
  uint64_t Tweak = 0; // output whitening

  /// Derives usable parameters from an arbitrary 64-bit seed.
  static PolymurParams fromSeed(uint64_t Seed);
};

/// Hashes \p Len bytes at \p Ptr. Dispatches on length like Figure 2.
uint64_t polymurLikeHash(const void *Ptr, size_t Len,
                         const PolymurParams &Params);

/// Container-ready functor with fixed default parameters.
struct PolymurLikeHash {
  PolymurParams Params = PolymurParams::fromSeed(0x9e3779b97f4a7c15ULL);

  size_t operator()(std::string_view Key) const {
    return static_cast<size_t>(
        polymurLikeHash(Key.data(), Key.size(), Params));
  }
};

} // namespace sepe

#endif // SEPE_HASHES_POLYMUR_LIKE_H
