//===- hashes/polymur_like.cpp - Length-specialized universal hash -------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "hashes/polymur_like.h"

#include "support/bit_ops.h"

using namespace sepe;

namespace {

/// The Mersenne prime 2^61 - 1.
constexpr uint64_t P61 = 0x1FFFFFFFFFFFFFFFULL;

/// Reduces a 128-bit product modulo 2^61 - 1 (lazy: result < 2^62).
uint64_t mulmodP61(uint64_t A, uint64_t B) {
  uint64_t Lo, Hi;
  mul128(A, B, Lo, Hi);
  // x = Hi * 2^64 + Lo; 2^64 = 8 mod (2^61 - 1), folded in two steps.
  const uint64_t Folded = (Lo & P61) + (Lo >> 61) + (Hi << 3 & P61) +
                          (Hi >> 58);
  return (Folded & P61) + (Folded >> 61);
}

uint64_t addmodP61(uint64_t A, uint64_t B) {
  const uint64_t Sum = A + B;
  return (Sum & P61) + (Sum >> 61);
}

/// Polynomial accumulate: Acc = Acc * K + Term (mod 2^61 - 1, lazy).
uint64_t polyStep(uint64_t Acc, uint64_t K, uint64_t Term) {
  return addmodP61(mulmodP61(Acc, K), Term);
}

/// Final whitening: xor-shift the field element over the full 64-bit
/// range.
uint64_t finalize(uint64_t X, uint64_t Tweak) {
  X ^= Tweak;
  X ^= X >> 32;
  X *= 0xd6e8feb86659fd93ULL;
  X ^= X >> 32;
  return X;
}

} // namespace

PolymurParams PolymurParams::fromSeed(uint64_t Seed) {
  PolymurParams Params;
  // Scramble the seed and clamp into the field, avoiding 0 and 1.
  uint64_t X = Seed ^ 0x2545F4914F6CDD1DULL;
  X ^= X >> 33;
  X *= 0xff51afd7ed558ccdULL;
  X ^= X >> 33;
  Params.K = (X & P61) | 0x2; // >= 2, < 2^61
  if (Params.K >= P61 - 1)
    Params.K = 0x1b873593;
  Params.Tweak = X * 0xc2b2ae3d27d4eb4fULL;
  return Params;
}

uint64_t sepe::polymurLikeHash(const void *Data, size_t Len,
                               const PolymurParams &Params) {
  const char *Ptr = static_cast<const char *>(Data);
  const uint64_t K = Params.K;

  // Figure 2, first specialization: len <= 7 — a single partial word,
  // one multiply.
  if (Len <= 7) [[likely]] {
    const uint64_t Word = loadBytesLe(Ptr, Len) | (uint64_t{Len} << 56);
    return finalize(mulmodP61(Word & P61, K) + (Word >> 61),
                    Params.Tweak);
  }

  // Third specialization (checked second, as in Figure 2): long keys,
  // len >= 50 — a wider-stride loop over 16-byte blocks, two field
  // elements per block.
  if (Len >= 50) [[unlikely]] {
    uint64_t Acc = Len;
    const char *End = Ptr + Len - 16;
    const char *P = Ptr;
    for (; P <= End; P += 16) {
      const uint64_t A = loadU64Le(P);
      const uint64_t B = loadU64Le(P + 8);
      Acc = polyStep(Acc, K, A & P61);
      Acc = polyStep(Acc, K, ((A >> 61) | (B << 3)) & P61);
      Acc = polyStep(Acc, K, B >> 58);
    }
    // Final (possibly overlapping) block covers the tail.
    const uint64_t A = loadU64Le(Ptr + Len - 16);
    const uint64_t B = loadU64Le(Ptr + Len - 8);
    Acc = polyStep(Acc, K, A & P61);
    Acc = polyStep(Acc, K, B & P61);
    return finalize(Acc, Params.Tweak);
  }

  // Middle specialization: 8 <= len < 50 — word-at-a-time polynomial
  // with an overlapping final load. Each word contributes two field
  // elements (low 61 bits, high 3 bits) so no input bit is dropped.
  uint64_t Acc = Len;
  const char *End = Ptr + Len - 8;
  for (const char *P = Ptr; P < End; P += 8) {
    const uint64_t A = loadU64Le(P);
    Acc = polyStep(Acc, K, A & P61);
    Acc = polyStep(Acc, K, A >> 61);
  }
  Acc = polyStep(Acc, K, loadU64Le(End) & P61);
  Acc = polyStep(Acc, K, loadU64Le(End) >> 61);
  return finalize(Acc, Params.Tweak);
}
