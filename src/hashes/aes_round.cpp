//===- hashes/aes_round.cpp - One AES encryption round -------------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "hashes/aes_round.h"

#include <cstring>

#if defined(SEPE_HAVE_AESNI)
#include <immintrin.h>
#endif

using namespace sepe;

namespace {

/// Multiplication in GF(2^8) with the AES reduction polynomial x^8 +
/// x^4 + x^3 + x + 1 (0x11b).
constexpr uint8_t gmul(uint8_t A, uint8_t B) {
  uint8_t Product = 0;
  for (int I = 0; I != 8; ++I) {
    if (B & 1)
      Product ^= A;
    const bool Carry = (A & 0x80) != 0;
    A = static_cast<uint8_t>(A << 1);
    if (Carry)
      A ^= 0x1b;
    B >>= 1;
  }
  return Product;
}

/// Multiplicative inverse in GF(2^8): x^254 (0 maps to 0).
constexpr uint8_t ginv(uint8_t X) {
  // x^254 = x^(2+4+8+16+32+64+128); square-and-multiply.
  uint8_t Result = 1;
  uint8_t Power = X;     // x^(2^0)
  for (int Bit = 1; Bit != 8; ++Bit) {
    Power = gmul(Power, Power); // x^(2^Bit)
    Result = gmul(Result, Power);
  }
  return Result;
}

constexpr uint8_t rotl8(uint8_t X, int Shift) {
  return static_cast<uint8_t>((X << Shift) | (X >> (8 - Shift)));
}

constexpr std::array<uint8_t, 256> makeSBox() {
  std::array<uint8_t, 256> Box{};
  for (unsigned I = 0; I != 256; ++I) {
    const uint8_t Inv = ginv(static_cast<uint8_t>(I));
    Box[I] = static_cast<uint8_t>(Inv ^ rotl8(Inv, 1) ^ rotl8(Inv, 2) ^
                                  rotl8(Inv, 3) ^ rotl8(Inv, 4) ^ 0x63);
  }
  return Box;
}

constexpr std::array<uint8_t, 256> SBoxTable = makeSBox();
static_assert(SBoxTable[0x00] == 0x63, "AES S-box generation is wrong");
static_assert(SBoxTable[0x01] == 0x7c, "AES S-box generation is wrong");
static_assert(SBoxTable[0x53] == 0xed, "AES S-box generation is wrong");

void toBytes(Block128 Block, uint8_t Out[16]) {
  std::memcpy(Out, &Block.Lo, 8);
  std::memcpy(Out + 8, &Block.Hi, 8);
}

Block128 fromBytes(const uint8_t In[16]) {
  Block128 Block;
  std::memcpy(&Block.Lo, In, 8);
  std::memcpy(&Block.Hi, In + 8, 8);
  return Block;
}

} // namespace

const std::array<uint8_t, 256> sepe::AesSBox = SBoxTable;

Block128 sepe::aesEncRoundSoft(Block128 State, Block128 RoundKey) {
  // The AES state is column-major: flat byte I sits at row I%4 of
  // column I/4.
  uint8_t In[16];
  toBytes(State, In);

  // SubBytes + ShiftRows fused: output byte (R, C) reads the
  // substituted byte at (R, (C + R) % 4).
  uint8_t Shifted[16];
  for (int Col = 0; Col != 4; ++Col)
    for (int Row = 0; Row != 4; ++Row)
      Shifted[Row + 4 * Col] = SBoxTable[In[Row + 4 * ((Col + Row) % 4)]];

  // MixColumns: each column is multiplied by the circulant matrix
  // [2 3 1 1; 1 2 3 1; 1 1 2 3; 3 1 1 2] over GF(2^8).
  uint8_t Mixed[16];
  for (int Col = 0; Col != 4; ++Col) {
    const uint8_t *C = Shifted + 4 * Col;
    uint8_t *M = Mixed + 4 * Col;
    M[0] = static_cast<uint8_t>(gmul(C[0], 2) ^ gmul(C[1], 3) ^ C[2] ^ C[3]);
    M[1] = static_cast<uint8_t>(C[0] ^ gmul(C[1], 2) ^ gmul(C[2], 3) ^ C[3]);
    M[2] = static_cast<uint8_t>(C[0] ^ C[1] ^ gmul(C[2], 2) ^ gmul(C[3], 3));
    M[3] = static_cast<uint8_t>(gmul(C[0], 3) ^ C[1] ^ C[2] ^ gmul(C[3], 2));
  }

  return fromBytes(Mixed) ^ RoundKey;
}

Block128 sepe::aesEncRoundHw(Block128 State, Block128 RoundKey) {
#if defined(SEPE_HAVE_AESNI)
  const __m128i S = _mm_set_epi64x(static_cast<long long>(State.Hi),
                                   static_cast<long long>(State.Lo));
  const __m128i K = _mm_set_epi64x(static_cast<long long>(RoundKey.Hi),
                                   static_cast<long long>(RoundKey.Lo));
  const __m128i R = _mm_aesenc_si128(S, K);
  Block128 Result;
  Result.Lo = static_cast<uint64_t>(_mm_cvtsi128_si64(R));
  Result.Hi = static_cast<uint64_t>(
      _mm_cvtsi128_si64(_mm_unpackhi_epi64(R, R)));
  return Result;
#else
  return aesEncRoundSoft(State, RoundKey);
#endif
}
