//===- hashes/murmur.cpp - libstdc++ Murmur (Figure 1) -------------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "hashes/murmur.h"

#include "support/bit_ops.h"

using namespace sepe;

namespace {

inline size_t shiftMix(size_t V) { return V ^ (V >> 47); }

constexpr size_t MurmurMul =
    (size_t{0xc6a4a793UL} << 32UL) + size_t{0x5bd1e995UL};

} // namespace

size_t sepe::murmurHashBytes(const void *Ptr, size_t Len, size_t Seed) {
  static_assert(sizeof(size_t) == 8, "this port targets 64-bit size_t");
  constexpr size_t Mul = MurmurMul;
  const char *Buf = static_cast<const char *>(Ptr);

  // Remove the bytes not divisible by the word size so the main loop
  // processes the data as 64-bit integers.
  const size_t LenAligned = Len & ~size_t{0x7};
  const char *End = Buf + LenAligned;
  size_t Hash = Seed ^ (Len * Mul);
  for (const char *P = Buf; P != End; P += 8) {
    const size_t Data = shiftMix(loadU64Le(P) * Mul) * Mul;
    Hash ^= Data;
    Hash *= Mul;
  }
  if ((Len & 0x7) != 0) {
    const size_t Data = loadBytesLe(End, Len & 0x7);
    Hash ^= Data;
    Hash *= Mul;
  }
  Hash = shiftMix(Hash) * Mul;
  Hash = shiftMix(Hash);
  return Hash;
}

void sepe::murmurHashBatch(const std::string_view *Keys, uint64_t *Out,
                           size_t N, size_t Seed) {
  constexpr size_t Mul = MurmurMul;
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    const std::string_view K0 = Keys[I + 0];
    const std::string_view K1 = Keys[I + 1];
    const std::string_view K2 = Keys[I + 2];
    const std::string_view K3 = Keys[I + 3];
    const size_t Len = K0.size();
    if (K1.size() != Len || K2.size() != Len || K3.size() != Len) {
      // Mixed lengths: the per-key loop already handles each tail; no
      // interleaving is worth the bookkeeping here.
      for (size_t J = 0; J != 4; ++J)
        Out[I + J] =
            murmurHashBytes(Keys[I + J].data(), Keys[I + J].size(), Seed);
      continue;
    }
    const char *B0 = K0.data();
    const char *B1 = K1.data();
    const char *B2 = K2.data();
    const char *B3 = K3.data();
    const size_t LenAligned = Len & ~size_t{0x7};
    size_t H0 = Seed ^ (Len * Mul);
    size_t H1 = H0, H2 = H0, H3 = H0;
    for (size_t P = 0; P != LenAligned; P += 8) {
      H0 = (H0 ^ (shiftMix(loadU64Le(B0 + P) * Mul) * Mul)) * Mul;
      H1 = (H1 ^ (shiftMix(loadU64Le(B1 + P) * Mul) * Mul)) * Mul;
      H2 = (H2 ^ (shiftMix(loadU64Le(B2 + P) * Mul) * Mul)) * Mul;
      H3 = (H3 ^ (shiftMix(loadU64Le(B3 + P) * Mul) * Mul)) * Mul;
    }
    if ((Len & 0x7) != 0) {
      const size_t Tail = Len & 0x7;
      H0 = (H0 ^ loadBytesLe(B0 + LenAligned, Tail)) * Mul;
      H1 = (H1 ^ loadBytesLe(B1 + LenAligned, Tail)) * Mul;
      H2 = (H2 ^ loadBytesLe(B2 + LenAligned, Tail)) * Mul;
      H3 = (H3 ^ loadBytesLe(B3 + LenAligned, Tail)) * Mul;
    }
    Out[I + 0] = shiftMix(shiftMix(H0) * Mul);
    Out[I + 1] = shiftMix(shiftMix(H1) * Mul);
    Out[I + 2] = shiftMix(shiftMix(H2) * Mul);
    Out[I + 3] = shiftMix(shiftMix(H3) * Mul);
  }
  for (; I != N; ++I)
    Out[I] = murmurHashBytes(Keys[I].data(), Keys[I].size(), Seed);
}
