//===- hashes/murmur.cpp - libstdc++ Murmur (Figure 1) -------------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "hashes/murmur.h"

#include "support/bit_ops.h"

using namespace sepe;

namespace {

inline size_t shiftMix(size_t V) { return V ^ (V >> 47); }

} // namespace

size_t sepe::murmurHashBytes(const void *Ptr, size_t Len, size_t Seed) {
  static_assert(sizeof(size_t) == 8, "this port targets 64-bit size_t");
  constexpr size_t Mul =
      (size_t{0xc6a4a793UL} << 32UL) + size_t{0x5bd1e995UL};
  const char *Buf = static_cast<const char *>(Ptr);

  // Remove the bytes not divisible by the word size so the main loop
  // processes the data as 64-bit integers.
  const size_t LenAligned = Len & ~size_t{0x7};
  const char *End = Buf + LenAligned;
  size_t Hash = Seed ^ (Len * Mul);
  for (const char *P = Buf; P != End; P += 8) {
    const size_t Data = shiftMix(loadU64Le(P) * Mul) * Mul;
    Hash ^= Data;
    Hash *= Mul;
  }
  if ((Len & 0x7) != 0) {
    const size_t Data = loadBytesLe(End, Len & 0x7);
    Hash ^= Data;
    Hash *= Mul;
  }
  Hash = shiftMix(Hash) * Mul;
  Hash = shiftMix(Hash);
  return Hash;
}
