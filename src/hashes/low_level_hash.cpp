//===- hashes/low_level_hash.cpp - Abseil-style LowLevelHash -------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "hashes/low_level_hash.h"

#include "support/bit_ops.h"

using namespace sepe;

namespace {

/// The salt constants of Abseil's LowLevelHash (originally the wyhash
/// primes).
constexpr uint64_t Salt[5] = {
    0xa0761d6478bd642fULL, 0xe7037ed1a0b428dbULL, 0x8ebc6af09c88c6e3ULL,
    0x589965cc75374cc3ULL, 0x1d8e4e27c47d124fULL};

uint64_t mix(uint64_t V0, uint64_t V1) { return mulFold(V0, V1); }

} // namespace

uint64_t sepe::lowLevelHash(const void *Data, size_t Len, uint64_t Seed) {
  const auto *Ptr = static_cast<const unsigned char *>(Data);
  const uint64_t StartingLength = Len;
  uint64_t State = Seed ^ Salt[0];

  if (Len > 64) {
    // Two interleaved 64-byte lanes to extract instruction parallelism.
    uint64_t DuplicatedState = State;
    do {
      const uint64_t A = loadU64Le(Ptr);
      const uint64_t B = loadU64Le(Ptr + 8);
      const uint64_t C = loadU64Le(Ptr + 16);
      const uint64_t D = loadU64Le(Ptr + 24);
      const uint64_t E = loadU64Le(Ptr + 32);
      const uint64_t F = loadU64Le(Ptr + 40);
      const uint64_t G = loadU64Le(Ptr + 48);
      const uint64_t H = loadU64Le(Ptr + 56);

      const uint64_t Cs0 = mix(A ^ Salt[1], B ^ State);
      const uint64_t Cs1 = mix(C ^ Salt[2], D ^ State);
      State = Cs0 ^ Cs1;

      const uint64_t Ds0 = mix(E ^ Salt[3], F ^ DuplicatedState);
      const uint64_t Ds1 = mix(G ^ Salt[4], H ^ DuplicatedState);
      DuplicatedState = Ds0 ^ Ds1;

      Ptr += 64;
      Len -= 64;
    } while (Len > 64);
    State ^= DuplicatedState;
  }

  while (Len > 16) {
    const uint64_t A = loadU64Le(Ptr);
    const uint64_t B = loadU64Le(Ptr + 8);
    State = mix(A ^ Salt[1], B ^ State);
    Ptr += 16;
    Len -= 16;
  }

  uint64_t A = 0;
  uint64_t B = 0;
  if (Len > 8) {
    A = loadU64Le(Ptr);
    B = loadU64Le(Ptr + Len - 8);
  } else if (Len > 3) {
    A = loadU32Le(Ptr);
    B = loadU32Le(Ptr + Len - 4);
  } else if (Len > 0) {
    A = (static_cast<uint64_t>(Ptr[0]) << 16) |
        (static_cast<uint64_t>(Ptr[Len >> 1]) << 8) |
        static_cast<uint64_t>(Ptr[Len - 1]);
  }

  const uint64_t W = mix(A ^ Salt[1], B ^ State);
  const uint64_t Z = Salt[1] ^ StartingLength;
  return mix(W, Z);
}
