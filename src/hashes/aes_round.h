//===- hashes/aes_round.h - One AES encryption round ------------*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A single AES encryption round with the exact semantics of x86's
/// `aesenc` instruction: MixColumns(ShiftRows(SubBytes(state))) ^ key.
/// The Aes family of synthesized hashes uses this as its combiner
/// (Section 4, "Synthetic Hash Functions"). Two implementations are
/// provided: the AES-NI instruction (when compiled in) and a bit-exact
/// software round built from a constexpr-generated S-box — the code path
/// a pext-less / AES-less target would execute. The test suite proves
/// the two agree on random states.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_HASHES_AES_ROUND_H
#define SEPE_HASHES_AES_ROUND_H

#include <array>
#include <cstdint>

namespace sepe {

/// A 128-bit value as two little-endian 64-bit lanes; lane 0 holds
/// bytes 0-7.
struct Block128 {
  uint64_t Lo = 0;
  uint64_t Hi = 0;

  friend Block128 operator^(Block128 A, Block128 B) {
    return Block128{A.Lo ^ B.Lo, A.Hi ^ B.Hi};
  }
  friend bool operator==(Block128 A, Block128 B) {
    return A.Lo == B.Lo && A.Hi == B.Hi;
  }
};

/// The AES forward S-box, generated at compile time from the GF(2^8)
/// inverse and the affine transform.
extern const std::array<uint8_t, 256> AesSBox;

/// Software `aesenc`: one full AES encryption round.
Block128 aesEncRoundSoft(Block128 State, Block128 RoundKey);

/// Hardware `aesenc` when compiled with AES-NI; falls back to the
/// software round otherwise.
Block128 aesEncRoundHw(Block128 State, Block128 RoundKey);

/// True when aesEncRoundHw executes the AES-NI instruction.
constexpr bool hasHardwareAes() {
#if defined(SEPE_HAVE_AESNI)
  return true;
#else
  return false;
#endif
}

} // namespace sepe

#endif // SEPE_HASHES_AES_ROUND_H
