//===- hashes/fnv.cpp - Fowler-Noll-Vo hashes ----------------------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "hashes/fnv.h"

using namespace sepe;

uint64_t sepe::fnv1aHashBytes(const void *Ptr, size_t Len, uint64_t Seed) {
  const auto *Bytes = static_cast<const unsigned char *>(Ptr);
  uint64_t Hash = Seed;
  for (size_t I = 0; I != Len; ++I) {
    Hash ^= Bytes[I];
    Hash *= FnvPrime64;
  }
  return Hash;
}

void sepe::fnv1aHashBatch(const std::string_view *Keys, uint64_t *Out,
                          size_t N, uint64_t Seed) {
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    const std::string_view K0 = Keys[I + 0];
    const std::string_view K1 = Keys[I + 1];
    const std::string_view K2 = Keys[I + 2];
    const std::string_view K3 = Keys[I + 3];
    const size_t Len = K0.size();
    if (K1.size() != Len || K2.size() != Len || K3.size() != Len) {
      // Mixed lengths in this group: the interleaved loop would need
      // per-byte bounds checks, which costs more than it overlaps.
      for (size_t J = 0; J != 4; ++J)
        Out[I + J] =
            fnv1aHashBytes(Keys[I + J].data(), Keys[I + J].size(), Seed);
      continue;
    }
    const auto *B0 = reinterpret_cast<const unsigned char *>(K0.data());
    const auto *B1 = reinterpret_cast<const unsigned char *>(K1.data());
    const auto *B2 = reinterpret_cast<const unsigned char *>(K2.data());
    const auto *B3 = reinterpret_cast<const unsigned char *>(K3.data());
    uint64_t H0 = Seed, H1 = Seed, H2 = Seed, H3 = Seed;
    for (size_t J = 0; J != Len; ++J) {
      H0 = (H0 ^ B0[J]) * FnvPrime64;
      H1 = (H1 ^ B1[J]) * FnvPrime64;
      H2 = (H2 ^ B2[J]) * FnvPrime64;
      H3 = (H3 ^ B3[J]) * FnvPrime64;
    }
    Out[I + 0] = H0;
    Out[I + 1] = H1;
    Out[I + 2] = H2;
    Out[I + 3] = H3;
  }
  for (; I != N; ++I)
    Out[I] = fnv1aHashBytes(Keys[I].data(), Keys[I].size(), Seed);
}
