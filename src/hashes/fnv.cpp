//===- hashes/fnv.cpp - Fowler-Noll-Vo hashes ----------------------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "hashes/fnv.h"

using namespace sepe;

uint64_t sepe::fnv1aHashBytes(const void *Ptr, size_t Len, uint64_t Seed) {
  const auto *Bytes = static_cast<const unsigned char *>(Ptr);
  uint64_t Hash = Seed;
  for (size_t I = 0; I != Len; ++I) {
    Hash ^= Bytes[I];
    Hash *= FnvPrime64;
  }
  return Hash;
}
