//===- hashes/city.cpp - CityHash64 reimplementation ---------------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "hashes/city.h"

#include "support/bit_ops.h"

#include <utility>

using namespace sepe;

namespace {

constexpr uint64_t K0 = 0xc3a5c85c97cb3127ULL;
constexpr uint64_t K1 = 0xb492b66fbe98f273ULL;
constexpr uint64_t K2 = 0x9ae16a3b2f90404fULL;

uint64_t fetch64(const char *P) { return loadU64Le(P); }
uint64_t fetch32(const char *P) { return loadU32Le(P); }

uint64_t rotate(uint64_t Val, int Shift) {
  return Shift == 0 ? Val : (Val >> Shift) | (Val << (64 - Shift));
}

uint64_t shiftMix(uint64_t Val) { return Val ^ (Val >> 47); }

uint64_t bswap64(uint64_t Val) { return __builtin_bswap64(Val); }

uint64_t hashLen16(uint64_t U, uint64_t V, uint64_t Mul) {
  uint64_t A = (U ^ V) * Mul;
  A ^= A >> 47;
  uint64_t B = (V ^ A) * Mul;
  B ^= B >> 47;
  B *= Mul;
  return B;
}

uint64_t hashLen16(uint64_t U, uint64_t V) {
  constexpr uint64_t KMul = 0x9ddfea08eb382d69ULL;
  return hashLen16(U, V, KMul);
}

uint64_t hashLen0to16(const char *S, size_t Len) {
  if (Len >= 8) {
    const uint64_t Mul = K2 + Len * 2;
    const uint64_t A = fetch64(S) + K2;
    const uint64_t B = fetch64(S + Len - 8);
    const uint64_t C = rotate(B, 37) * Mul + A;
    const uint64_t D = (rotate(A, 25) + B) * Mul;
    return hashLen16(C, D, Mul);
  }
  if (Len >= 4) {
    const uint64_t Mul = K2 + Len * 2;
    const uint64_t A = fetch32(S);
    return hashLen16(Len + (A << 3), fetch32(S + Len - 4), Mul);
  }
  if (Len > 0) {
    const uint8_t A = static_cast<uint8_t>(S[0]);
    const uint8_t B = static_cast<uint8_t>(S[Len >> 1]);
    const uint8_t C = static_cast<uint8_t>(S[Len - 1]);
    const uint32_t Y = A + (static_cast<uint32_t>(B) << 8);
    const uint32_t Z = static_cast<uint32_t>(Len) +
                       (static_cast<uint32_t>(C) << 2);
    return shiftMix(Y * K2 ^ Z * K0) * K2;
  }
  return K2;
}

uint64_t hashLen17to32(const char *S, size_t Len) {
  const uint64_t Mul = K2 + Len * 2;
  const uint64_t A = fetch64(S) * K1;
  const uint64_t B = fetch64(S + 8);
  const uint64_t C = fetch64(S + Len - 8) * Mul;
  const uint64_t D = fetch64(S + Len - 16) * K2;
  return hashLen16(rotate(A + B, 43) + rotate(C, 30) + D,
                   A + rotate(B + K2, 18) + C, Mul);
}

std::pair<uint64_t, uint64_t>
weakHashLen32WithSeeds(uint64_t W, uint64_t X, uint64_t Y, uint64_t Z,
                       uint64_t A, uint64_t B) {
  A += W;
  B = rotate(B + A + Z, 21);
  const uint64_t C = A;
  A += X;
  A += Y;
  B += rotate(A, 44);
  return {A + Z, B + C};
}

std::pair<uint64_t, uint64_t>
weakHashLen32WithSeeds(const char *S, uint64_t A, uint64_t B) {
  return weakHashLen32WithSeeds(fetch64(S), fetch64(S + 8), fetch64(S + 16),
                                fetch64(S + 24), A, B);
}

uint64_t hashLen33to64(const char *S, size_t Len) {
  const uint64_t Mul = K2 + Len * 2;
  uint64_t A = fetch64(S) * K2;
  uint64_t B = fetch64(S + 8);
  const uint64_t C = fetch64(S + Len - 24);
  const uint64_t D = fetch64(S + Len - 32);
  const uint64_t E = fetch64(S + 16) * K2;
  const uint64_t F = fetch64(S + 24) * 9;
  const uint64_t G = fetch64(S + Len - 8);
  const uint64_t H = fetch64(S + Len - 16) * Mul;
  const uint64_t U = rotate(A + G, 43) + (rotate(B, 30) + C) * 9;
  const uint64_t V = ((A + G) ^ D) + F + 1;
  const uint64_t W = bswap64((U + V) * Mul) + H;
  const uint64_t X = rotate(E + F, 42) + C;
  const uint64_t Y = (bswap64((V + W) * Mul) + G) * Mul;
  const uint64_t Z = E + F + C;
  A = bswap64((X + Z) * Mul + Y) + B;
  B = shiftMix((Z + A) * Mul + D + H) * Mul;
  return B + X;
}

} // namespace

uint64_t sepe::cityHash64(const char *S, size_t Len) {
  if (Len <= 32)
    return Len <= 16 ? hashLen0to16(S, Len) : hashLen17to32(S, Len);
  if (Len <= 64)
    return hashLen33to64(S, Len);

  // For long strings: a 56-byte rolling state updated in 64-byte chunks.
  uint64_t X = fetch64(S + Len - 40);
  uint64_t Y = fetch64(S + Len - 16) + fetch64(S + Len - 56);
  uint64_t Z = hashLen16(fetch64(S + Len - 48) + Len, fetch64(S + Len - 24));
  std::pair<uint64_t, uint64_t> V =
      weakHashLen32WithSeeds(S + Len - 64, Len, Z);
  std::pair<uint64_t, uint64_t> W =
      weakHashLen32WithSeeds(S + Len - 32, Y + K1, X);
  X = X * K1 + fetch64(S);

  Len = (Len - 1) & ~static_cast<size_t>(63);
  do {
    X = rotate(X + Y + V.first + fetch64(S + 8), 37) * K1;
    Y = rotate(Y + V.second + fetch64(S + 48), 42) * K1;
    X ^= W.second;
    Y += V.first + fetch64(S + 40);
    Z = rotate(Z + W.first, 33) * K1;
    V = weakHashLen32WithSeeds(S, V.second * K1, X + W.first);
    W = weakHashLen32WithSeeds(S + 32, Z + W.second, Y + fetch64(S + 16));
    std::swap(Z, X);
    S += 64;
    Len -= 64;
  } while (Len != 0);

  return hashLen16(hashLen16(V.first, W.first) + shiftMix(Y) * K1 + Z,
                   hashLen16(V.second, W.second) + X);
}
