//===- hashes/low_level_hash.h - Abseil-style LowLevelHash ------*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Re-implementation of Abseil's LowLevelHash (the wyhash-derived mixer
/// behind absl::Hash, absl/hash/internal/low_level_hash.cc) — the
/// paper's "Abseil" baseline. The core primitive is a 128-bit multiply
/// folded by xor.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_HASHES_LOW_LEVEL_HASH_H
#define SEPE_HASHES_LOW_LEVEL_HASH_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace sepe {

/// LowLevelHash of \p Len bytes at \p Ptr under \p Seed.
uint64_t lowLevelHash(const void *Ptr, size_t Len, uint64_t Seed);

/// The paper's Abseil baseline as a container-ready functor.
struct LowLevelHashFn {
  size_t operator()(std::string_view Key) const {
    return static_cast<size_t>(lowLevelHash(Key.data(), Key.size(), 0));
  }
};

} // namespace sepe

#endif // SEPE_HASHES_LOW_LEVEL_HASH_H
