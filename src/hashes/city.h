//===- hashes/city.h - CityHash64 reimplementation --------------*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Re-implementation of Google's CityHash64 (Pike & Alakuijala), the
/// paper's "City" baseline — the string-specialized hash that Abseil
/// bundles as absl/hash/internal/city.cc. Written from the published
/// algorithm description; the test suite checks structural invariants
/// (determinism, avalanche, length sensitivity) rather than external
/// vectors.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_HASHES_CITY_H
#define SEPE_HASHES_CITY_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace sepe {

/// CityHash64 of \p Len bytes at \p Ptr.
uint64_t cityHash64(const char *Ptr, size_t Len);

/// The paper's City baseline as a container-ready functor.
struct CityHash {
  size_t operator()(std::string_view Key) const {
    return static_cast<size_t>(cityHash64(Key.data(), Key.size()));
  }
};

} // namespace sepe

#endif // SEPE_HASHES_CITY_H
