//===- hashes/gpt_like.cpp - Simulated LLM-written hashes ----------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "hashes/gpt_like.h"

#include <cassert>
#include <cstdint>

using namespace sepe;

namespace {

uint64_t digitAt(std::string_view Key, size_t I) {
  return static_cast<uint64_t>(Key[I] - '0');
}

uint64_t hexAt(std::string_view Key, size_t I) {
  const char C = Key[I];
  if (C >= '0' && C <= '9')
    return static_cast<uint64_t>(C - '0');
  if (C >= 'a' && C <= 'f')
    return static_cast<uint64_t>(C - 'a' + 10);
  return static_cast<uint64_t>(C - 'A' + 10);
}

/// "ddd-dd-dddd": the nine digits as one integer.
uint64_t hashSsn(std::string_view Key) {
  uint64_t Value = 0;
  for (size_t I : {0, 1, 2, 4, 5, 7, 8, 9, 10})
    Value = Value * 10 + digitAt(Key, I);
  return Value;
}

/// "ddd.ddd.ddd-dd": the eleven digits as one integer.
uint64_t hashCpf(std::string_view Key) {
  uint64_t Value = 0;
  for (size_t I : {0, 1, 2, 4, 5, 6, 8, 9, 10, 12, 13})
    Value = Value * 10 + digitAt(Key, I);
  return Value;
}

/// "XX-XX-XX-XX-XX-XX": the 48-bit address itself.
uint64_t hashMac(std::string_view Key) {
  uint64_t Value = 0;
  for (size_t I : {0, 1, 3, 4, 6, 7, 9, 10, 12, 13, 15, 16})
    Value = (Value << 4) | hexAt(Key, I);
  return Value;
}

/// "ddd.ddd.ddd.ddd": octets summed then scaled — the commutative
/// mistake that dominates the Gpt baseline's collision count.
uint64_t hashIpv4(std::string_view Key) {
  uint64_t Sum = 0;
  for (size_t Group = 0; Group != 4; ++Group) {
    const size_t Base = Group * 4;
    const uint64_t Octet = digitAt(Key, Base) * 100 +
                           digitAt(Key, Base + 1) * 10 +
                           digitAt(Key, Base + 2);
    Sum += Octet;
  }
  return Sum * 2654435761ULL;
}

/// "hhhh:hhhh:...": 31-polynomial over the eight 16-bit groups.
uint64_t hashIpv6(std::string_view Key) {
  uint64_t Hash = 0;
  for (size_t Group = 0; Group != 8; ++Group) {
    const size_t Base = Group * 5;
    uint64_t Word = 0;
    for (size_t I = 0; I != 4; ++I)
      Word = (Word << 4) | hexAt(Key, Base + I);
    Hash = Hash * 31 + Word;
  }
  return Hash;
}

/// 131-polynomial over a character range.
uint64_t hashPoly(std::string_view Key, size_t Begin, size_t End) {
  uint64_t Hash = 0;
  for (size_t I = Begin; I != End; ++I)
    Hash = Hash * 131 + static_cast<uint8_t>(Key[I]);
  return Hash;
}

} // namespace

size_t sepe::gptLikeHash(PaperKey Format, std::string_view Key) {
  switch (Format) {
  case PaperKey::SSN:
    assert(Key.size() == 11 && "malformed SSN key");
    return hashSsn(Key);
  case PaperKey::CPF:
    assert(Key.size() == 14 && "malformed CPF key");
    return hashCpf(Key);
  case PaperKey::MAC:
    assert(Key.size() == 17 && "malformed MAC key");
    return hashMac(Key);
  case PaperKey::IPv4:
    assert(Key.size() == 15 && "malformed IPv4 key");
    return hashIpv4(Key);
  case PaperKey::IPv6:
    assert(Key.size() == 39 && "malformed IPv6 key");
    return hashIpv6(Key);
  case PaperKey::INTS:
    assert(Key.size() == 100 && "malformed INTS key");
    return hashPoly(Key, 0, Key.size());
  case PaperKey::URL1:
    // Skip the 23 constant prefix characters; hash the slug and suffix.
    assert(Key.size() == 48 && "malformed URL1 key");
    return hashPoly(Key, 23, 43);
  case PaperKey::URL2:
    assert(Key.size() == 61 && "malformed URL2 key");
    return hashPoly(Key, 36, 56);
  }
  assert(false && "unreachable: all formats handled");
  return 0;
}
