//===- hashes/murmur.h - libstdc++ Murmur (Figure 1) ------------*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// From-scratch implementation of the Murmur-derived hash used by
/// libstdc++'s std::hash for strings (_Hash_bytes, hash_bytes.cc:138;
/// Figure 1 of the paper). This is the paper's "STL" baseline. The test
/// suite verifies bit-exact agreement with this platform's
/// std::hash<std::string>.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_HASHES_MURMUR_H
#define SEPE_HASHES_MURMUR_H

#include <cstddef>
#include <string>
#include <string_view>

namespace sepe {

/// The seed libstdc++ passes to _Hash_bytes for std::hash.
constexpr size_t StlHashSeed = 0xc70f6907UL;

/// Murmur-style hash of \p Len bytes at \p Ptr (Figure 1).
size_t murmurHashBytes(const void *Ptr, size_t Len, size_t Seed);

/// Batch Murmur: Out[i] = murmurHashBytes(Keys[i], ..., Seed). The
/// word-serial multiply chain is latency-bound, so groups of four
/// equal-length keys run interleaved (four independent chains).
void murmurHashBatch(const std::string_view *Keys, uint64_t *Out, size_t N,
                     size_t Seed);

/// Drop-in functor equivalent to std::hash<std::string> on platforms
/// using libstdc++; the paper's "STL" baseline.
struct MurmurStlHash {
  size_t operator()(std::string_view Key) const {
    return murmurHashBytes(Key.data(), Key.size(), StlHashSeed);
  }

  void hashBatch(const std::string_view *Keys, uint64_t *Out,
                 size_t N) const {
    murmurHashBatch(Keys, Out, N, StlHashSeed);
  }
};

} // namespace sepe

#endif // SEPE_HASHES_MURMUR_H
