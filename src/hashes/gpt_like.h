//===- hashes/gpt_like.h - Simulated LLM-written hashes ---------*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's "Gpt" baseline: per-format hash functions in the style
/// ChatGPT-3.5 produces for the paper's prompts — unrolled, skipping the
/// constant separators, no std::hash. With no LLM available offline,
/// these are handwritten to the same brief (see DESIGN.md,
/// "Substitutions"), including the commutative octet mixing that makes
/// the paper's Gpt function collide heavily on IPv4 keys (Section 4.2:
/// 7,857 of its 7,865 collisions are IPv4).
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_HASHES_GPT_LIKE_H
#define SEPE_HASHES_GPT_LIKE_H

#include "keygen/paper_formats.h"

#include <cstddef>
#include <string>
#include <string_view>

namespace sepe {

/// Hashes \p Key, which must conform to \p Format.
size_t gptLikeHash(PaperKey Format, std::string_view Key);

/// Container-ready functor for one paper key format.
struct GptHash {
  PaperKey Format = PaperKey::SSN;

  size_t operator()(std::string_view Key) const {
    return gptLikeHash(Format, Key);
  }
};

} // namespace sepe

#endif // SEPE_HASHES_GPT_LIKE_H
