//===- hashes/fnv.h - Fowler-Noll-Vo hashes ---------------------*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FNV-1a, the paper's "FNV" baseline, in two flavors: the standard
/// 64-bit FNV-1a (validated against published test vectors) and the
/// seeded byte-at-a-time variant that libstdc++ ships as
/// _Fnv_hash_bytes (hash_bytes.cc:123).
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_HASHES_FNV_H
#define SEPE_HASHES_FNV_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace sepe {


/// 64-bit FNV prime.
constexpr uint64_t FnvPrime64 = 1099511628211ULL;

/// 64-bit FNV offset basis.
constexpr uint64_t FnvOffsetBasis64 = 14695981039346656037ULL;

/// Standard FNV-1a over \p Len bytes starting from \p Seed (pass
/// FnvOffsetBasis64 for the canonical hash).
uint64_t fnv1aHashBytes(const void *Ptr, size_t Len, uint64_t Seed);

/// Batch FNV-1a: Out[i] = fnv1aHashBytes(Keys[i], ..., Seed). FNV is a
/// strict byte-serial xor-multiply chain, so groups of four equal-length
/// keys are processed interleaved — four independent multiply chains in
/// flight instead of one.
void fnv1aHashBatch(const std::string_view *Keys, uint64_t *Out, size_t N,
                    uint64_t Seed);

/// The paper's FNV baseline as a container-ready functor.
struct FnvHash {
  size_t operator()(std::string_view Key) const {
    return static_cast<size_t>(
        fnv1aHashBytes(Key.data(), Key.size(), FnvOffsetBasis64));
  }

  void hashBatch(const std::string_view *Keys, uint64_t *Out,
                 size_t N) const {
    fnv1aHashBatch(Keys, Out, N, FnvOffsetBasis64);
  }
};

} // namespace sepe

#endif // SEPE_HASHES_FNV_H
