//===- container/flat_index_map.h - Learned-index style map -----*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's future-work direction made concrete ("our techniques
/// specialize hashing, but not storage and retrieval. Thus, we see room
/// for generating code for specialized data structures"), following the
/// Kraska et al. quote the paper leans on: when the synthesized Pext
/// function is a *bijection* from format keys to 64-bit integers, the
/// hash IS the key. A map can then:
///
///   - store only the 64-bit image, never the key string (no string
///     compares, no per-node allocation);
///   - probe by a Fibonacci-scrambled slot of the image (open
///     addressing with linear probing over a power-of-two table; the
///     multiply spreads images whose entropy sits in arbitrary bit
///     ranges, since the pext packing is not monotone in the key);
///   - rely on the bijection for exactness: equal image <=> equal key.
///
/// The container refuses construction from a non-bijective plan, since
/// dropping the key string would otherwise be unsound.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_CONTAINER_FLAT_INDEX_MAP_H
#define SEPE_CONTAINER_FLAT_INDEX_MAP_H

#include "core/executor.h"

#include <bit>
#include <cassert>
#include <cstdint>
#include <string_view>
#include <vector>

namespace sepe {

/// Open-addressed map from format keys to \p Value, keyed by the image
/// of a bijective synthesized hash.
template <typename Value> class FlatIndexMap {
public:
  /// \p Hash must carry a plan with Bijective == true.
  explicit FlatIndexMap(SynthesizedHash Hash, size_t InitialCapacity = 16)
      : Hash(std::move(Hash)) {
    assert(this->Hash.valid() && "FlatIndexMap requires a hash");
    assert(this->Hash.plan().Bijective &&
           "FlatIndexMap is only sound for bijective plans");
    size_t Capacity = 16;
    while (Capacity < InitialCapacity * 2)
      Capacity *= 2;
    States.assign(Capacity, Empty);
    Slots.resize(Capacity);
  }

  size_t size() const { return Elements; }
  bool empty() const { return Elements == 0; }
  size_t capacity() const { return Slots.size(); }

  /// The bijective hash this map is keyed by; lets callers batch-hash
  /// key blocks (SynthesizedHash::hashBatch) and then use the *Hashed
  /// entry points below without re-hashing.
  const SynthesizedHash &hasher() const { return Hash; }

  /// Inserts (key, value); returns false (and leaves the old value)
  /// when the key is already present.
  bool insert(std::string_view Key, Value V) {
    return insertHashed(Hash(Key), std::move(V));
  }

  /// Inserts by precomputed image (== hasher()(Key)); since the plan is
  /// a bijection the image *is* the key, so no key text is needed.
  bool insertHashed(uint64_t Image, Value V) {
    maybeGrow();
    return insertImage(Image, std::move(V));
  }

  /// Inserts \p N (key, value) pairs, hashing the keys through the
  /// plan's batch kernel in blocks; the fast path for bulk loads.
  size_t insertBatch(const std::string_view *Keys, const Value *Values,
                     size_t N) {
    uint64_t Images[BatchBlock];
    size_t Inserted = 0;
    for (size_t I = 0; I < N; I += BatchBlock) {
      const size_t Count = N - I < BatchBlock ? N - I : BatchBlock;
      Hash.hashBatch(Keys + I, Images, Count);
      for (size_t J = 0; J != Count; ++J)
        Inserted += insertHashed(Images[J], Values[I + J]) ? 1 : 0;
    }
    return Inserted;
  }

  /// Pointer to the value for \p Key, or nullptr.
  Value *find(std::string_view Key) { return findImage(Hash(Key)); }
  const Value *find(std::string_view Key) const {
    return const_cast<FlatIndexMap *>(this)->findImage(Hash(Key));
  }

  /// Lookup by precomputed image (== hasher()(Key)).
  Value *findHashed(uint64_t Image) { return findImage(Image); }
  const Value *findHashed(uint64_t Image) const {
    return const_cast<FlatIndexMap *>(this)->findImage(Image);
  }

  bool contains(std::string_view Key) const { return find(Key) != nullptr; }
  bool containsHashed(uint64_t Image) const {
    return findHashed(Image) != nullptr;
  }

  /// Removes \p Key; returns false when absent. Uses backward-shift
  /// deletion, so no tombstones accumulate.
  bool erase(std::string_view Key) { return eraseHashed(Hash(Key)); }

  /// Removal by precomputed image (== hasher()(Key)).
  bool eraseHashed(uint64_t Image) {
    const size_t Mask = Slots.size() - 1;
    size_t I = homeSlot(Image);
    while (true) {
      if (States[I] == Empty)
        return false;
      if (Slots[I].Image == Image)
        break;
      I = (I + 1) & Mask;
    }
    // Backward-shift: pull subsequent displaced entries into the hole.
    size_t Hole = I;
    size_t Next = (Hole + 1) & Mask;
    while (States[Next] == Full) {
      const size_t Home = homeSlot(Slots[Next].Image);
      // The entry can move into the hole only if the hole does not lie
      // before its home bucket in probe order.
      if (!between(Home, Hole, Next)) {
        Next = (Next + 1) & Mask;
        continue;
      }
      Slots[Hole] = std::move(Slots[Next]);
      Hole = Next;
      Next = (Hole + 1) & Mask;
    }
    States[Hole] = Empty;
    --Elements;
    return true;
  }

  /// Longest probe sequence observed for the current contents; the
  /// metric the specialized layout is supposed to keep small.
  size_t maxProbeLength() const {
    const size_t Mask = Slots.size() - 1;
    size_t Max = 0;
    for (size_t I = 0; I != Slots.size(); ++I) {
      if (States[I] != Full)
        continue;
      const size_t Home = homeSlot(Slots[I].Image);
      const size_t Probe = (I + Slots.size() - Home) & Mask;
      Max = std::max(Max, Probe + 1);
    }
    return Max;
  }

private:
  enum SlotState : uint8_t { Empty = 0, Full = 1 };

  /// Keys per hashBatch call in insertBatch: big enough to amortize the
  /// dispatch, small enough to stay on the stack and in L1.
  static constexpr size_t BatchBlock = 256;

  struct Slot {
    uint64_t Image = 0;
    Value V{};
  };

  /// Fibonacci slot mapping: one multiply spreads the image's entropy
  /// into the top bits, which index the power-of-two table.
  size_t homeSlot(uint64_t Image) const {
    const unsigned Log2 =
        static_cast<unsigned>(std::countr_zero(Slots.size()));
    return static_cast<size_t>((Image * 0x9E3779B97F4A7C15ULL) >>
                               (64 - Log2));
  }

  /// True when \p X lies in the half-open circular range (From, To].
  static bool between(size_t Home, size_t Hole, size_t Current) {
    // The displaced entry at Current may fill Hole iff its Home bucket
    // is circularly "at or before" the hole, i.e. the hole lies within
    // [Home, Current].
    if (Home <= Current)
      return Home <= Hole && Hole <= Current;
    return Hole >= Home || Hole <= Current;
  }

  void maybeGrow() {
    if ((Elements + 1) * 10 < Slots.size() * 9)
      return;
    std::vector<SlotState> OldStates = std::move(States);
    std::vector<Slot> OldSlots = std::move(Slots);
    States.assign(OldSlots.size() * 2, Empty);
    Slots.clear();
    Slots.resize(OldStates.size() * 2);
    Elements = 0;
    for (size_t I = 0; I != OldSlots.size(); ++I)
      if (OldStates[I] == Full)
        insertImage(OldSlots[I].Image, std::move(OldSlots[I].V));
  }

  bool insertImage(uint64_t Image, Value V) {
    const size_t Mask = Slots.size() - 1;
    size_t I = homeSlot(Image);
    while (States[I] == Full) {
      if (Slots[I].Image == Image)
        return false;
      I = (I + 1) & Mask;
    }
    States[I] = Full;
    Slots[I].Image = Image;
    Slots[I].V = std::move(V);
    ++Elements;
    return true;
  }

  Value *findImage(uint64_t Image) {
    const size_t Mask = Slots.size() - 1;
    size_t I = homeSlot(Image);
    while (States[I] == Full) {
      if (Slots[I].Image == Image)
        return &Slots[I].V;
      I = (I + 1) & Mask;
    }
    return nullptr;
  }

  SynthesizedHash Hash;
  std::vector<SlotState> States;
  std::vector<Slot> Slots;
  size_t Elements = 0;
};

} // namespace sepe

#endif // SEPE_CONTAINER_FLAT_INDEX_MAP_H
