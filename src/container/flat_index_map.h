//===- container/flat_index_map.h - Learned-index style map -----*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's future-work direction made concrete ("our techniques
/// specialize hashing, but not storage and retrieval. Thus, we see room
/// for generating code for specialized data structures"), following the
/// Kraska et al. quote the paper leans on: when the synthesized Pext
/// function is a *bijection* from format keys to 64-bit integers, the
/// hash IS the key. A map can then:
///
///   - store only the 64-bit image, never the key string (no string
///     compares, no per-node allocation);
///   - probe SwissTable-style: a separate one-byte control array holds
///     a 7-bit tag per slot, and a probe inspects sixteen slots at a
///     time with one SSE2 compare + movemask (a portable bit-twiddling
///     fallback covers non-SSE2 builds), so a lookup usually touches
///     one 16-byte control group and at most one slot;
///   - derive both the group index and the tag from one
///     Fibonacci-scrambled multiply of the image (the multiply spreads
///     images whose entropy sits in arbitrary bit ranges, since the
///     pext packing is not monotone in the key);
///   - rely on the bijection for exactness: equal image <=> equal key.
///
/// Deletion marks slots with a tombstone tag unless the group still has
/// an empty slot (then the slot reverts straight to empty — probes for
/// other keys never continued past a group containing an empty, so
/// nothing can be orphaned). Tombstones count toward the 7/8 load bound
/// and are dropped by the next rehash, which reuses the current
/// capacity when the live elements still fit.
///
/// The container refuses construction from a non-bijective plan, since
/// dropping the key string would otherwise be unsound.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_CONTAINER_FLAT_INDEX_MAP_H
#define SEPE_CONTAINER_FLAT_INDEX_MAP_H

#include "core/executor.h"
#include "support/telemetry.h"

#include <bit>
#include <cassert>
#include <cstdint>
#include <string_view>
#include <vector>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace sepe {

/// SwissTable-style control-group primitives. A group is sixteen
/// consecutive control bytes, one per slot: a full slot stores the
/// key's 7-bit tag (values 0..127), an empty or deleted slot one of the
/// negative sentinels. Each matcher returns a 16-bit mask with bit I
/// set when slot I of the group matches. The *Scalar variants are the
/// always-compiled portable reference; the unsuffixed entry points pick
/// SSE2 when the build has it. Both are exposed so tests can pin the
/// vector path against the scalar one on hosts that have both.
namespace swiss {

inline constexpr size_t GroupSize = 16;
inline constexpr int8_t CtrlEmpty = -128;  // 0b10000000
inline constexpr int8_t CtrlDeleted = -2;  // 0b11111110

inline uint32_t matchTagScalar(const int8_t *Ctrl, int8_t Tag) {
  uint32_t Mask = 0;
  for (size_t I = 0; I != GroupSize; ++I)
    Mask |= static_cast<uint32_t>(Ctrl[I] == Tag) << I;
  return Mask;
}

inline uint32_t matchEmptyScalar(const int8_t *Ctrl) {
  return matchTagScalar(Ctrl, CtrlEmpty);
}

/// Only the sentinels have the sign bit set, so "empty or deleted" is
/// exactly "negative".
inline uint32_t matchEmptyOrDeletedScalar(const int8_t *Ctrl) {
  uint32_t Mask = 0;
  for (size_t I = 0; I != GroupSize; ++I)
    Mask |= static_cast<uint32_t>(Ctrl[I] < 0) << I;
  return Mask;
}

#if defined(__SSE2__)
inline uint32_t matchTag(const int8_t *Ctrl, int8_t Tag) {
  const __m128i Group =
      _mm_loadu_si128(reinterpret_cast<const __m128i *>(Ctrl));
  return static_cast<uint32_t>(
      _mm_movemask_epi8(_mm_cmpeq_epi8(Group, _mm_set1_epi8(Tag))));
}

inline uint32_t matchEmpty(const int8_t *Ctrl) {
  return matchTag(Ctrl, CtrlEmpty);
}

inline uint32_t matchEmptyOrDeleted(const int8_t *Ctrl) {
  // movemask collects the sign bits, which is the sentinel test.
  const __m128i Group =
      _mm_loadu_si128(reinterpret_cast<const __m128i *>(Ctrl));
  return static_cast<uint32_t>(_mm_movemask_epi8(Group));
}
#else
inline uint32_t matchTag(const int8_t *Ctrl, int8_t Tag) {
  return matchTagScalar(Ctrl, Tag);
}
inline uint32_t matchEmpty(const int8_t *Ctrl) {
  return matchEmptyScalar(Ctrl);
}
inline uint32_t matchEmptyOrDeleted(const int8_t *Ctrl) {
  return matchEmptyOrDeletedScalar(Ctrl);
}
#endif

} // namespace swiss

/// The slot-mapping arithmetic FlatIndexMap probes with, exposed so
/// composing containers (container/sharded_index_map.h) can route by
/// the same image without re-deriving the constants. Shard selection
/// deliberately uses a *different* odd multiplier than the in-map group
/// mapping: if both read the top bits of the same product, every key of
/// one shard would share its leading group bits and collapse into a
/// fraction of that shard's groups.
namespace probe {

/// Fibonacci scramble: one multiply spreads the image's entropy across
/// the word. FlatIndexMap reads the group index from the top bits and
/// the 7-bit tag from the bottom bits, so the two stay independent.
inline uint64_t scramble(uint64_t Image) {
  return Image * 0x9E3779B97F4A7C15ULL;
}

/// Independent mix for shard routing (a distinct odd constant,
/// splitmix64's second round), decorrelated from scramble() above.
inline uint64_t shardScramble(uint64_t Image) {
  return Image * 0xBF58476D1CE4E5B9ULL;
}

/// Shard index for an image in a 2^ShardBits-way sharded container:
/// the top bits of the shard scramble. ShardBits == 0 is a single
/// shard (a shift by 64 would be UB).
inline size_t shardOf(uint64_t Image, unsigned ShardBits) {
  return ShardBits == 0
             ? 0
             : static_cast<size_t>(shardScramble(Image) >> (64 - ShardBits));
}

} // namespace probe

/// Open-addressed map from format keys to \p Value, keyed by the image
/// of a bijective synthesized hash.
template <typename Value> class FlatIndexMap {
public:
  /// \p Hash must carry a plan with Bijective == true.
  explicit FlatIndexMap(SynthesizedHash Hash, size_t InitialCapacity = 16)
      : Hash(std::move(Hash)) {
    assert(this->Hash.valid() && "FlatIndexMap requires a hash");
    assert(this->Hash.plan().Bijective &&
           "FlatIndexMap is only sound for bijective plans");
    size_t Capacity = 16;
    while (Capacity < InitialCapacity * 2)
      Capacity *= 2;
    Ctrl.assign(Capacity, swiss::CtrlEmpty);
    Slots.resize(Capacity);
  }

  size_t size() const { return Elements; }
  bool empty() const { return Elements == 0; }
  size_t capacity() const { return Slots.size(); }

  /// The bijective hash this map is keyed by; lets callers batch-hash
  /// key blocks (SynthesizedHash::hashBatch) and then use the *Hashed
  /// entry points below without re-hashing.
  const SynthesizedHash &hasher() const { return Hash; }

  /// Inserts (key, value); returns false (and leaves the old value)
  /// when the key is already present.
  bool insert(std::string_view Key, Value V) {
    return insertHashed(Hash(Key), std::move(V));
  }

  /// Inserts by precomputed image (== hasher()(Key)); since the plan is
  /// a bijection the image *is* the key, so no key text is needed.
  bool insertHashed(uint64_t Image, Value V) {
    maybeGrow();
    return insertImage(Image, std::move(V));
  }

  /// Inserts \p N (key, value) pairs, hashing the keys through the
  /// plan's batch kernel in blocks; the fast path for bulk loads.
  size_t insertBatch(const std::string_view *Keys, const Value *Values,
                     size_t N) {
    uint64_t Images[BatchBlock];
    size_t Inserted = 0;
    for (size_t I = 0; I < N; I += BatchBlock) {
      const size_t Count = N - I < BatchBlock ? N - I : BatchBlock;
      Hash.hashBatch(Keys + I, Images, Count);
      for (size_t J = 0; J != Count; ++J)
        Inserted += insertHashed(Images[J], Values[I + J]) ? 1 : 0;
    }
    return Inserted;
  }

  /// Pointer to the value for \p Key, or nullptr.
  Value *find(std::string_view Key) { return findImage(Hash(Key)); }
  const Value *find(std::string_view Key) const {
    return const_cast<FlatIndexMap *>(this)->findImage(Hash(Key));
  }

  /// Lookup by precomputed image (== hasher()(Key)).
  Value *findHashed(uint64_t Image) { return findImage(Image); }
  const Value *findHashed(uint64_t Image) const {
    return const_cast<FlatIndexMap *>(this)->findImage(Image);
  }

  bool contains(std::string_view Key) const { return find(Key) != nullptr; }
  bool containsHashed(uint64_t Image) const {
    return findHashed(Image) != nullptr;
  }

  /// Removes \p Key; returns false when absent.
  bool erase(std::string_view Key) { return eraseHashed(Hash(Key)); }

  /// Removal by precomputed image (== hasher()(Key)). The slot reverts
  /// to empty when its group still has another empty slot (no probe for
  /// a different key ever continued past such a group, so none can be
  /// orphaned); otherwise it becomes a tombstone that the next rehash
  /// sweeps out.
  bool eraseHashed(uint64_t Image) {
    const uint64_t Scrambled = scramble(Image);
    const int8_t Tag = tagOf(Scrambled);
    const size_t GroupMask = groupCount() - 1;
    size_t G = homeGroup(Scrambled);
    SEPE_TELEMETRY_ONLY(size_t ScannedGroups = 1;)
    while (true) {
      const int8_t *GroupCtrl = Ctrl.data() + G * swiss::GroupSize;
      uint32_t Match = swiss::matchTag(GroupCtrl, Tag);
      while (Match != 0) {
        const size_t S =
            G * swiss::GroupSize + static_cast<size_t>(std::countr_zero(Match));
        if (Slots[S].Image == Image) {
          SEPE_RECORD("flat_index_map.probe_groups.erase", ScannedGroups);
          if (swiss::matchEmpty(GroupCtrl) != 0) {
            Ctrl[S] = swiss::CtrlEmpty;
          } else {
            Ctrl[S] = swiss::CtrlDeleted;
            ++Tombstones;
            SEPE_COUNT("flat_index_map.tombstones.created");
          }
          --Elements;
          return true;
        }
        Match &= Match - 1;
      }
      if (swiss::matchEmpty(GroupCtrl) != 0) {
        SEPE_RECORD("flat_index_map.probe_groups.erase", ScannedGroups);
        return false;
      }
      G = (G + 1) & GroupMask;
      SEPE_TELEMETRY_ONLY(++ScannedGroups;)
    }
  }

  /// Rehashes now if inserting up to \p ExpectedElements total elements
  /// would otherwise trigger a growth mid-stream; the bulk-load
  /// companion to insertBatch.
  void reserve(size_t ExpectedElements) {
    if ((ExpectedElements + Tombstones) * 8 >= capacity() * 7)
      rehash(ExpectedElements);
  }

  /// Longest probe sequence observed for the current contents, in
  /// *groups* (a probe step inspects a whole 16-slot group); the metric
  /// the specialized layout is supposed to keep small. 1 means every
  /// key sits in its home group.
  size_t maxProbeLength() const {
    const size_t GroupMask = groupCount() - 1;
    size_t Max = 0;
    for (size_t S = 0; S != Slots.size(); ++S) {
      if (Ctrl[S] < 0)
        continue;
      const size_t Home = homeGroup(scramble(Slots[S].Image));
      const size_t G = S / swiss::GroupSize;
      const size_t Probe = (G + groupCount() - Home) & GroupMask;
      Max = std::max(Max, Probe + 1);
    }
    return Max;
  }

  /// Tombstones currently pending a rehash sweep; exposed for the churn
  /// tests and the ablation benchmark.
  size_t tombstones() const { return Tombstones; }

  /// Dense probe over pre-hashed images: Out[I] = findHashed(Images[I])
  /// (nullptr when absent). The shard-composable form of the lookup —
  /// ShardedIndexMap partitions a batch-hashed chunk by shard and runs
  /// each shard's dense group through this under one lock acquisition.
  void findHashedBatch(const uint64_t *Images, Value **Out, size_t N) {
    for (size_t I = 0; I != N; ++I)
      Out[I] = findImage(Images[I]);
  }

  /// Visits every live (image, value) mapping; \p Fn is called as
  /// Fn(uint64_t Image, const Value &V). The enumeration primitive the
  /// sharded migration copies a sealed shard with (the map stores no
  /// key text, so images are all there is to enumerate).
  template <typename Fn> void forEachEntry(Fn &&F) const {
    for (size_t S = 0; S != Slots.size(); ++S)
      if (Ctrl[S] >= 0)
        F(Slots[S].Image, Slots[S].V);
  }

  /// Migration across a hash swap (runtime/adaptive_hash.h): builds a
  /// new map keyed by \p NewHash holding exactly this map's key->value
  /// mappings. Because this container stores only images, the caller
  /// must supply the key universe (\p Keys, \p N) — any superset of the
  /// stored format keys works; keys absent from this map are skipped and
  /// duplicates are harmless. Both hashes run through their batch
  /// kernels, so migration costs two batched hash sweeps plus the
  /// inserts. The build is entirely off to the side: readers of *this*
  /// are untouched until the caller publishes the returned map (the
  /// epoch-swap pattern the adaptive runtime uses), which is what makes
  /// the swap safe under concurrent readers of the old map. Asserts that
  /// the keys covered every stored mapping; \p NewHash must be
  /// bijective.
  FlatIndexMap rehashWith(SynthesizedHash NewHash,
                          const std::string_view *Keys, size_t N) const {
    SEPE_COUNT("flat_index_map.rehash_with");
    FlatIndexMap NewMap(std::move(NewHash), Elements + 1);
    uint64_t OldImages[BatchBlock];
    uint64_t NewImages[BatchBlock];
    for (size_t I = 0; I < N; I += BatchBlock) {
      const size_t Count = N - I < BatchBlock ? N - I : BatchBlock;
      Hash.hashBatch(Keys + I, OldImages, Count);
      NewMap.Hash.hashBatch(Keys + I, NewImages, Count);
      for (size_t J = 0; J != Count; ++J)
        if (const Value *V = findHashed(OldImages[J]))
          NewMap.insertHashed(NewImages[J], *V);
    }
    assert(NewMap.size() == size() &&
           "rehashWith keys must cover every stored mapping");
    return NewMap;
  }

private:
  /// Keys per hashBatch call in insertBatch: big enough to amortize the
  /// dispatch, small enough to stay on the stack and in L1.
  static constexpr size_t BatchBlock = 256;

  struct Slot {
    uint64_t Image = 0;
    Value V{};
  };

  static uint64_t scramble(uint64_t Image) { return probe::scramble(Image); }

  static int8_t tagOf(uint64_t Scrambled) {
    return static_cast<int8_t>(Scrambled & 0x7F);
  }

  size_t groupCount() const { return Slots.size() / swiss::GroupSize; }

  size_t homeGroup(uint64_t Scrambled) const {
    const unsigned Log2 =
        static_cast<unsigned>(std::countr_zero(groupCount()));
    // A one-group table would need a shift by 64 (UB); its answer is 0.
    return Log2 == 0 ? 0 : static_cast<size_t>(Scrambled >> (64 - Log2));
  }

  /// Grows (or sweeps tombstones at the same capacity) when the next
  /// insert would push full + deleted slots past 7/8 of capacity —
  /// the bound that guarantees every probe chain reaches an empty slot.
  void maybeGrow() {
    if ((Elements + Tombstones + 1) * 8 < capacity() * 7)
      return;
    rehash(Elements + 1);
  }

  void rehash(size_t MinElements) {
    size_t NewCapacity = 16;
    while (MinElements * 8 >= NewCapacity * 7)
      NewCapacity *= 2;
    // Never shrink; when the live elements still fit the current
    // capacity this is the tombstone-dropping same-size rehash.
    NewCapacity = std::max(NewCapacity, capacity());
    if (NewCapacity == capacity())
      SEPE_COUNT("flat_index_map.rehash.tombstone_sweep");
    else
      SEPE_COUNT("flat_index_map.rehash.grow");
    std::vector<int8_t> OldCtrl = std::move(Ctrl);
    std::vector<Slot> OldSlots = std::move(Slots);
    Ctrl.assign(NewCapacity, swiss::CtrlEmpty);
    Slots.clear();
    Slots.resize(NewCapacity);
    Elements = 0;
    Tombstones = 0;
    for (size_t S = 0; S != OldSlots.size(); ++S)
      if (OldCtrl[S] >= 0)
        insertImage(OldSlots[S].Image, std::move(OldSlots[S].V));
  }

  bool insertImage(uint64_t Image, Value V) {
    const uint64_t Scrambled = scramble(Image);
    const int8_t Tag = tagOf(Scrambled);
    const size_t GroupMask = groupCount() - 1;
    size_t G = homeGroup(Scrambled);
    size_t Candidate = SIZE_MAX;
    SEPE_TELEMETRY_ONLY(size_t ScannedGroups = 1;)
    while (true) {
      const int8_t *GroupCtrl = Ctrl.data() + G * swiss::GroupSize;
      uint32_t Match = swiss::matchTag(GroupCtrl, Tag);
      while (Match != 0) {
        const size_t S =
            G * swiss::GroupSize + static_cast<size_t>(std::countr_zero(Match));
        if (Slots[S].Image == Image) {
          SEPE_RECORD("flat_index_map.probe_groups.insert", ScannedGroups);
          return false;
        }
        Match &= Match - 1;
      }
      // Remember the first reusable slot (tombstones included) but keep
      // probing until a group with an empty slot proves the key absent.
      if (Candidate == SIZE_MAX) {
        const uint32_t Avail = swiss::matchEmptyOrDeleted(GroupCtrl);
        if (Avail != 0)
          Candidate = G * swiss::GroupSize +
                      static_cast<size_t>(std::countr_zero(Avail));
      }
      if (swiss::matchEmpty(GroupCtrl) != 0)
        break;
      G = (G + 1) & GroupMask;
      SEPE_TELEMETRY_ONLY(++ScannedGroups;)
    }
    SEPE_RECORD("flat_index_map.probe_groups.insert", ScannedGroups);
    assert(Candidate != SIZE_MAX && "load bound guarantees a free slot");
    if (Ctrl[Candidate] == swiss::CtrlDeleted)
      --Tombstones;
    Ctrl[Candidate] = Tag;
    Slots[Candidate].Image = Image;
    Slots[Candidate].V = std::move(V);
    ++Elements;
    return true;
  }

  Value *findImage(uint64_t Image) {
    const uint64_t Scrambled = scramble(Image);
    const int8_t Tag = tagOf(Scrambled);
    const size_t GroupMask = groupCount() - 1;
    size_t G = homeGroup(Scrambled);
    SEPE_TELEMETRY_ONLY(size_t ScannedGroups = 1;)
    while (true) {
      const int8_t *GroupCtrl = Ctrl.data() + G * swiss::GroupSize;
      uint32_t Match = swiss::matchTag(GroupCtrl, Tag);
      while (Match != 0) {
        const size_t S =
            G * swiss::GroupSize + static_cast<size_t>(std::countr_zero(Match));
        if (Slots[S].Image == Image) {
          SEPE_RECORD("flat_index_map.probe_groups.find", ScannedGroups);
          SEPE_COUNT("flat_index_map.find.hit");
          return &Slots[S].V;
        }
        Match &= Match - 1;
      }
      if (swiss::matchEmpty(GroupCtrl) != 0) {
        SEPE_RECORD("flat_index_map.probe_groups.find", ScannedGroups);
        SEPE_COUNT("flat_index_map.find.miss");
        return nullptr;
      }
      G = (G + 1) & GroupMask;
      SEPE_TELEMETRY_ONLY(++ScannedGroups;)
    }
  }

  SynthesizedHash Hash;
  std::vector<int8_t> Ctrl;
  std::vector<Slot> Slots;
  size_t Elements = 0;
  size_t Tombstones = 0;
};

} // namespace sepe

#endif // SEPE_CONTAINER_FLAT_INDEX_MAP_H
