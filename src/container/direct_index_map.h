//===- container/direct_index_map.h - MPHF-backed static map ----*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving container of the static-set tier: a minimal perfect
/// hash function (mphf/mphf.h) turns lookups into values[mphf(key)] —
/// one direct array load, no probe sequence, no stored keys. Because
/// an MPHF maps *every* key (in-set or not) to some index in [0, n),
/// membership is checked with a per-slot fingerprint: the low FpBits
/// bits of the MPHF's final slot-hash word, which the slot derivation
/// discards (fastRange keeps the high product bits), so the check
/// costs no extra mixing. Out-of-set keys are rejected with
/// probability ~1 - 2^-FpBits; the map never returns a wrong value
/// for an in-set key.
///
/// Compared to FlatIndexMap this trades mutability (the key set is
/// sealed at construction) for a shorter dependency chain per lookup
/// and a footprint of sizeof(Value) + FpBits/8 bytes per key — the
/// keys themselves are not stored at all.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_CONTAINER_DIRECT_INDEX_MAP_H
#define SEPE_CONTAINER_DIRECT_INDEX_MAP_H

#include "mphf/mphf.h"
#include "support/telemetry.h"

#include <cstdint>
#include <string_view>
#include <type_traits>
#include <vector>

namespace sepe {

/// A sealed key -> Value map over the construction key set of an Mphf.
/// FpBits selects the membership fingerprint width (8 or 16).
template <typename Value, unsigned FpBits = 8> class DirectIndexMap {
  static_assert(FpBits == 8 || FpBits == 16,
                "fingerprints are stored as one byte or one half-word");
  using Fp = std::conditional_t<FpBits == 8, uint8_t, uint16_t>;

public:
  DirectIndexMap() = default;

  /// Seals \p N (key, value) pairs behind \p F. \p F must have been
  /// built over exactly these keys; construction re-walks the
  /// bijection and leaves the map invalid() on any mismatch, so a
  /// stale or foreign MPHF cannot produce a silently-wrong map.
  DirectIndexMap(Mphf F, const std::string_view *Keys, const Value *Vals,
                 size_t N)
      : F(std::move(F)) {
    if (!this->F.valid() || this->F.size() != N || N == 0)
      return;
    Values.resize(N);
    Fingerprints.assign(N, 0);
    std::vector<uint64_t> Seen((N + 63) / 64, 0);
    std::vector<uint64_t> Bases(std::min<size_t>(N, 4096));
    for (size_t At = 0; At < N;) {
      const size_t Chunk = std::min(Bases.size(), N - At);
      this->F.baseBatch(Keys + At, Bases.data(), Chunk);
      for (size_t I = 0; I != Chunk; ++I) {
        const Mphf::SlotFp SF = this->F.slotFpFromBase(Bases[I]);
        const uint64_t Slot = SF.Slot;
        if (Slot >= N || ((Seen[Slot / 64] >> (Slot % 64)) & 1))
          return; // not a bijection over these keys
        Seen[Slot / 64] |= uint64_t{1} << (Slot % 64);
        Values[Slot] = Vals[At + I];
        Fingerprints[Slot] = static_cast<Fp>(SF.FpWord);
      }
      At += Chunk;
    }
    Sealed = true;
  }

  DirectIndexMap(Mphf F, const std::vector<std::string_view> &Keys,
                 const std::vector<Value> &Vals)
      : DirectIndexMap(std::move(F), Keys.data(), Vals.data(),
                       Keys.size()) {}

  /// False when construction detected an MPHF/key-set mismatch; an
  /// invalid map rejects every lookup.
  bool valid() const { return Sealed; }
  size_t size() const { return Sealed ? Values.size() : 0; }

  static constexpr unsigned fingerprintBits() { return FpBits; }

  const Mphf &mphf() const { return F; }

  /// Pointer to the value sealed under \p Key, or nullptr when the
  /// fingerprint rejects it (always, for in-set keys: never nullptr;
  /// for out-of-set keys: nullptr except with probability ~2^-FpBits).
  const Value *find(std::string_view Key) const {
    if (!Sealed)
      return nullptr;
    const Mphf::SlotFp SF = F.slotFpFromBase(F.baseImage(Key));
    if (Fingerprints[SF.Slot] != static_cast<Fp>(SF.FpWord)) {
      SEPE_COUNT("direct_index.find.reject");
      return nullptr;
    }
    SEPE_COUNT("direct_index.find.hit");
    return &Values[SF.Slot];
  }

  bool contains(std::string_view Key) const { return find(Key) != nullptr; }

  /// Batch lookup: Out[i] = find(Keys[i]). Uses the extraction plan's
  /// batch kernels for the base images, then staged passes per chunk —
  /// prefetch bucket metadata, compute slots while prefetching the
  /// fingerprint/value lines, resolve — so a table bigger than L2
  /// overlaps its cache misses across keys instead of paying them one
  /// dependent chain at a time. Returns the number of hits.
  size_t findBatch(const std::string_view *Keys, const Value **Out,
                   size_t N) const {
    if (!Sealed) {
      for (size_t I = 0; I != N; ++I)
        Out[I] = nullptr;
      return 0;
    }
    size_t Hits = 0;
    // Prefetch passes only pay for themselves once the table has
    // outgrown mid-level cache; below that the misses they would hide
    // do not exist and the extra bucket-hash recompute is pure cost.
    const bool Staged = Values.size() * sizeof(Value) +
                            Fingerprints.size() * sizeof(Fp) >
                        (size_t{256} << 10);
    uint64_t Bases[256];
    uint32_t Slots[256];
    uint64_t FpWords[256];
    for (size_t At = 0; At < N;) {
      const size_t Chunk = std::min<size_t>(256, N - At);
      F.baseBatch(Keys + At, Bases, Chunk);
      if (Staged)
        for (size_t I = 0; I != Chunk; ++I)
          F.prefetchSlot(Bases[I]);
      for (size_t I = 0; I != Chunk; ++I) {
        const Mphf::SlotFp SF = F.slotFpFromBase(Bases[I]);
        Slots[I] = static_cast<uint32_t>(SF.Slot);
        FpWords[I] = SF.FpWord;
        if (Staged) {
          prefetchRead(&Fingerprints[SF.Slot]);
          prefetchRead(&Values[SF.Slot]);
        }
      }
      for (size_t I = 0; I != Chunk; ++I) {
        const uint32_t Slot = Slots[I];
        if (Fingerprints[Slot] == static_cast<Fp>(FpWords[I])) {
          Out[At + I] = &Values[Slot];
          ++Hits;
        } else {
          Out[At + I] = nullptr;
        }
      }
      At += Chunk;
    }
    return Hits;
  }

  /// Container footprint: values + fingerprints + the MPHF's pilot and
  /// offset structures (keys are not stored).
  size_t bytesUsed() const {
    return Values.size() * sizeof(Value) +
           Fingerprints.size() * sizeof(Fp) +
           (F.valid() ? F.plan().bytesUsed() : 0);
  }

private:
  Mphf F;
  std::vector<Value> Values;
  std::vector<Fp> Fingerprints;
  bool Sealed = false;
};

} // namespace sepe

#endif // SEPE_CONTAINER_DIRECT_INDEX_MAP_H
