//===- container/low_mix_table.h - Low-mixing hash table --------*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A chained hash table whose bucket index is computed as
/// ((hash >> DiscardBits) % BucketCount) — the "low-mixing container" of
/// RQ7, which indexes buckets by the most significant bits of the hash
/// value and therefore punishes hash functions whose entropy lives in
/// the low bits. DiscardBits = 0 recovers the ordinary modulo policy of
/// libstdc++'s unordered containers.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_CONTAINER_LOW_MIX_TABLE_H
#define SEPE_CONTAINER_LOW_MIX_TABLE_H

#include "support/telemetry.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

namespace sepe {

/// Chained hash set with a configurable bucket-indexing policy.
template <typename Key, typename Hasher> class LowMixTable {
public:
  /// \p DiscardBits low bits of every hash are dropped before the
  /// bucket modulo; must be < 64.
  explicit LowMixTable(Hasher Hash, unsigned DiscardBits = 0,
                       size_t InitialBuckets = 16)
      : Hash(std::move(Hash)), DiscardBits(DiscardBits),
        Buckets(std::max<size_t>(InitialBuckets, 1)) {
    assert(DiscardBits < 64 && "cannot discard the whole hash");
  }

  /// Inserts \p K; returns false when already present.
  bool insert(const Key &K) { return insertHashed(K, hashOf(K)); }

  /// Inserts \p K given its precomputed hash \p H (== Hasher(K)); entry
  /// point for callers that batch-hash keys up front (support/batch.h)
  /// and must not pay a second per-key hash here.
  bool insertHashed(const Key &K, uint64_t H) {
    if (Elements + 1 > Buckets.size())
      rehash(Buckets.size() * 2);
    std::vector<Key> &Bucket = Buckets[indexForHash(H)];
    SEPE_RECORD("low_mix_table.chain_len.insert", Bucket.size());
    if (std::find(Bucket.begin(), Bucket.end(), K) != Bucket.end())
      return false;
    Bucket.push_back(K);
    ++Elements;
    return true;
  }

  bool contains(const Key &K) const {
    return containsHashed(K, hashOf(K));
  }

  /// Membership given the precomputed hash \p H (== Hasher(K)).
  bool containsHashed(const Key &K, uint64_t H) const {
    const std::vector<Key> &Bucket = Buckets[indexForHash(H)];
    SEPE_RECORD("low_mix_table.chain_len.lookup", Bucket.size());
    return std::find(Bucket.begin(), Bucket.end(), K) != Bucket.end();
  }

  /// Removes \p K; returns false when absent.
  bool erase(const Key &K) { return eraseHashed(K, hashOf(K)); }

  /// Removal given the precomputed hash \p H (== Hasher(K)).
  bool eraseHashed(const Key &K, uint64_t H) {
    std::vector<Key> &Bucket = Buckets[indexForHash(H)];
    auto It = std::find(Bucket.begin(), Bucket.end(), K);
    if (It == Bucket.end())
      return false;
    Bucket.erase(It);
    --Elements;
    return true;
  }

  size_t size() const { return Elements; }
  bool empty() const { return Elements == 0; }
  size_t bucketCount() const { return Buckets.size(); }
  unsigned discardBits() const { return DiscardBits; }

  /// Total bucket collisions: sum over buckets of max(0, size - 1) —
  /// the "BC" metric of Figures 17/18.
  size_t bucketCollisions() const {
    size_t Collisions = 0;
    for (const std::vector<Key> &Bucket : Buckets)
      if (Bucket.size() > 1)
        Collisions += Bucket.size() - 1;
    return Collisions;
  }

  /// Longest chain; the worst-case probe length.
  size_t maxBucketSize() const {
    size_t Max = 0;
    for (const std::vector<Key> &Bucket : Buckets)
      Max = std::max(Max, Bucket.size());
    return Max;
  }

  /// Number of non-empty buckets.
  size_t occupiedBuckets() const {
    size_t Occupied = 0;
    for (const std::vector<Key> &Bucket : Buckets)
      if (!Bucket.empty())
        ++Occupied;
    return Occupied;
  }

  void rehash(size_t NewBucketCount) {
    SEPE_COUNT("low_mix_table.rehash");
    NewBucketCount = std::max<size_t>(NewBucketCount, 1);
    std::vector<std::vector<Key>> Old = std::move(Buckets);
    Buckets.assign(NewBucketCount, {});
    for (std::vector<Key> &Bucket : Old)
      for (Key &K : Bucket)
        bucketFor(K).push_back(std::move(K));
  }

  /// Swaps in \p NewHash and re-buckets every stored key under it — the
  /// container half of an adaptive hot swap (runtime/adaptive_hash.h):
  /// after the runtime publishes a resynthesized function, a table keyed
  /// by the retired generation migrates in one call with every
  /// membership preserved.
  void rehashWith(Hasher NewHash) {
    SEPE_COUNT("low_mix_table.rehash_with");
    Hash = std::move(NewHash);
    rehash(Buckets.size());
  }

private:
  uint64_t hashOf(const Key &K) const {
    return static_cast<uint64_t>(Hash(K));
  }
  size_t indexForHash(uint64_t H) const {
    return static_cast<size_t>((H >> DiscardBits) % Buckets.size());
  }
  std::vector<Key> &bucketFor(const Key &K) {
    return Buckets[indexForHash(hashOf(K))];
  }
  const std::vector<Key> &bucketFor(const Key &K) const {
    return Buckets[indexForHash(hashOf(K))];
  }

  Hasher Hash;
  unsigned DiscardBits;
  std::vector<std::vector<Key>> Buckets;
  size_t Elements = 0;
};

} // namespace sepe

#endif // SEPE_CONTAINER_LOW_MIX_TABLE_H
