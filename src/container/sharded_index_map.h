//===- container/sharded_index_map.h - Concurrent sharded map ---*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concurrent serving front end over FlatIndexMap: a power-of-two
/// array of shards, each an independent FlatIndexMap behind its own
/// shared_mutex, routed by the high bits of an independent scramble of
/// the synthesized image (container/flat_index_map.h probe::shardOf —
/// a *different* odd multiplier than the in-shard group mapping, so
/// shard index and home group stay decorrelated).
///
/// Batch entry points hash a 64-key chunk densely first (one
/// SynthesizedHash::hashBatch call, so the AVX2 wide kernels run at
/// full width), then counting-sort the chunk's indices by shard and
/// probe each shard's dense group under a single lock acquisition —
/// lock traffic amortizes over the group instead of paying one
/// acquisition per key.
///
/// Hot swap across a re-synthesis is epoch-based, RCU-style: all state
/// a reader consults (hash, guard pattern, shard array, epoch number)
/// lives in one immutable-after-publish Table reached through a single
/// acquire load, so epochs cannot tear. migrate() builds the successor
/// table incrementally, one shard at a time, under that shard's write
/// lock — no global stop-the-world:
///
///   1. The successor pointer is stored into the old table, then each
///      shard is *sealed* (flag flipped under its write lock) and its
///      live entries copied through old-hash/new-hash batch sweeps into
///      the successor's shards (keys scatter: a new plan images a key
///      into a new shard).
///   2. Writers that find their shard sealed dual-write: the mutation
///      applies to the old table and is replayed against the successor
///      (re-hashed with the successor's plan). Seal + successor are
///      observed under the shard lock the migrator published them
///      under, so the handoff is race-free, and the copy loop holds the
///      old shard's write lock across its successor inserts so an
///      erase can never be resurrected by a stale copy.
///   3. Once every shard is sealed and copied, the successor is
///      published as the active table. Readers that loaded the old
///      table finish on it — dual-writes kept it current — and retired
///      tables stay alive until the map is destroyed, so in-flight
///      probes never touch freed memory.
///
/// Locks nest old-shard -> successor-shard only, and the old shards
/// held are always distinct across threads, so the order is acyclic.
///
/// FlatIndexMap stores images, not key text, so each shard keeps a
/// journal of inserted keys (appended under the write lock); the
/// journal is the key universe the migration sweep re-hashes, and is
/// compacted to the live keyset as a side effect of every migration.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_CONTAINER_SHARDED_INDEX_MAP_H
#define SEPE_CONTAINER_SHARDED_INDEX_MAP_H

#include "container/flat_index_map.h"
#include "core/key_pattern.h"
#include "support/telemetry.h"
#include "support/trace.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sepe {

namespace shard {

/// Keys per dense batch chunk: hashed in one hashBatch call, then
/// partitioned by shard. 64 keeps the images, shard ids and order
/// permutation on the stack while still filling the 8-wide AVX2
/// kernels many times over.
inline constexpr size_t ChunkSize = 64;

/// Stable counting-sort partition of \p N (<= ChunkSize) images by
/// shard. On return Order[Offsets[S] .. Offsets[S+1]) are the chunk
/// indices whose image routes to shard S, in input order; \p Offsets
/// must hold (1 << ShardBits) + 1 entries and ShardBits must be <= 8
/// (ShardedIndexMap clamps its shard count to 256 for this reason). The partition is definitionally
/// equivalent to probe::shardOf per key — the property the partition
/// tests pin across formats and ISA levels.
inline void partitionChunk(const uint64_t *Images, size_t N,
                           unsigned ShardBits, uint16_t *Order,
                           uint32_t *Offsets) {
  const size_t NumShards = size_t{1} << ShardBits;
  for (size_t S = 0; S != NumShards + 1; ++S)
    Offsets[S] = 0;
  uint8_t ShardOf[ChunkSize];
  for (size_t I = 0; I != N; ++I) {
    const size_t S = probe::shardOf(Images[I], ShardBits);
    ShardOf[I] = static_cast<uint8_t>(S);
    ++Offsets[S + 1];
  }
  for (size_t S = 0; S != NumShards; ++S)
    Offsets[S + 1] += Offsets[S];
  uint32_t Cursor[256 + 1];
  for (size_t S = 0; S != NumShards; ++S)
    Cursor[S] = Offsets[S];
  for (size_t I = 0; I != N; ++I)
    Order[Cursor[ShardOf[I]]++] = static_cast<uint16_t>(I);
}

} // namespace shard

/// Outcome of a probe through the labeled / guarded entry points.
/// Stale: the caller's images were computed against a different epoch
/// than the active table (a migration landed in between) — nothing was
/// read or written; redo through a guarded entry point. NotAdmitted:
/// the key does not conform to the active generation's pattern, so an
/// image-keyed probe would be unsound (FlatIndexMap's bijectivity only
/// covers conforming keys) — route it to a spill lane instead.
enum class ProbeResult { Hit, Miss, NotAdmitted, Stale };

/// Concurrent sharded map from format keys to \p Value. Each shard is
/// a FlatIndexMap (so the plan must be bijective); any number of
/// threads may call any entry point concurrently, with at most one
/// migrate() in flight (further calls serialize).
template <typename Value> class ShardedIndexMap {
public:
  /// Per-shard health snapshot for telemetry/reporting.
  struct ShardStats {
    size_t Size = 0;
    size_t Capacity = 0;
    size_t Tombstones = 0;
    size_t JournalLen = 0;
  };

  /// \p Hash must be bijective (FlatIndexMap's soundness condition).
  /// \p Pattern is the generation's guard: the unguarded entry points
  /// never check it (keys are preconditioned to conform, as everywhere
  /// in the executor), the *Guarded ones do. \p EpochLabel is an opaque
  /// generation tag the labeled entry points validate images against —
  /// the serving layer labels each table with the AdaptiveHash epoch
  /// whose plan keys it. \p ShardCountHint rounds up to a power of two,
  /// clamped to [1, 256].
  explicit ShardedIndexMap(SynthesizedHash Hash, KeyPattern Pattern = {},
                           uint64_t EpochLabel = 0,
                           size_t ShardCountHint = 16,
                           size_t InitialCapacityPerShard = 16) {
    size_t Count = std::bit_ceil(std::max<size_t>(1, ShardCountHint));
    Count = std::min<size_t>(Count, 256);
    Bits = static_cast<unsigned>(std::countr_zero(Count));
    auto T = std::make_unique<Table>(std::move(Hash), std::move(Pattern),
                                     EpochLabel, Count,
                                     InitialCapacityPerShard);
    Active.store(T.get(), std::memory_order_release);
    Tables.push_back(std::move(T));
  }

  ShardedIndexMap(const ShardedIndexMap &) = delete;
  ShardedIndexMap &operator=(const ShardedIndexMap &) = delete;

  size_t shardCount() const { return size_t{1} << Bits; }
  unsigned shardBits() const { return Bits; }

  /// Label of the active table (the EpochLabel it was constructed or
  /// migrated with). Label, hash and pattern live in one published
  /// Table object, so a reader can never observe a new epoch with an
  /// old hash or vice versa.
  uint64_t epoch() const { return active()->Epoch; }

  /// The active generation's hash (cheap: shared plan ownership).
  SynthesizedHash hasher() const { return active()->Hash; }

  /// The active generation's guard pattern (copy).
  KeyPattern pattern() const { return active()->Pattern; }

  /// Migrations completed since construction.
  uint64_t migrations() const {
    return Migrations.load(std::memory_order_relaxed);
  }

  /// Live elements across all shards. Takes every shard's read lock in
  /// turn, so under concurrent writers the result is a moment-in-time
  /// per shard, not a global snapshot.
  size_t size() const {
    const Table *T = active();
    size_t Total = 0;
    for (const auto &S : T->Shards) {
      std::shared_lock<std::shared_mutex> Lock(S->Mutex);
      Total += S->Map.size();
    }
    return Total;
  }

  ShardStats shardStats(size_t Index) const {
    const Table *T = active();
    const Shard &S = *T->Shards[Index & (shardCount() - 1)];
    std::shared_lock<std::shared_mutex> Lock(S.Mutex);
    return {S.Map.size(), S.Map.capacity(), S.Map.tombstones(),
            S.Journal.size()};
  }

  /// Per-shard lock-contention counters: how many read/write lock
  /// acquisitions the shard saw and how many of them had to wait
  /// (try-lock failed first). Counted relaxed by the acquire helpers —
  /// the numbers are measurements, they order nothing. The counters
  /// live on the *active* generation's shards: a migration publishes
  /// fresh shards, so each epoch's numbers describe lock pressure
  /// since that epoch was published.
  struct ShardContention {
    uint64_t SharedAcquires = 0;
    uint64_t SharedContended = 0;
    uint64_t UniqueAcquires = 0;
    uint64_t UniqueContended = 0;
  };

  ShardContention shardContention(size_t Index) const {
    const Table *T = active();
    const Shard &S = *T->Shards[Index & (shardCount() - 1)];
    return {S.SharedAcquires.load(std::memory_order_relaxed),
            S.SharedContended.load(std::memory_order_relaxed),
            S.UniqueAcquires.load(std::memory_order_relaxed),
            S.UniqueContended.load(std::memory_order_relaxed)};
  }

  /// The contention histogram as JSON — one row per shard plus totals,
  /// keyed by the active epoch. The shape sepeserve prints and the
  /// bench reports embed, so the jit dispatch ladder can be read
  /// against the lock pressure it ran under.
  std::string contentionJson() const {
    ShardContention Sum;
    std::string Json = "{\"epoch\": " + std::to_string(epoch()) +
                       ", \"shards\": [";
    for (size_t I = 0; I != shardCount(); ++I) {
      const ShardContention C = shardContention(I);
      Sum.SharedAcquires += C.SharedAcquires;
      Sum.SharedContended += C.SharedContended;
      Sum.UniqueAcquires += C.UniqueAcquires;
      Sum.UniqueContended += C.UniqueContended;
      if (I != 0)
        Json += ", ";
      Json += "{\"shared_acquires\": " + std::to_string(C.SharedAcquires) +
              ", \"shared_contended\": " + std::to_string(C.SharedContended) +
              ", \"unique_acquires\": " + std::to_string(C.UniqueAcquires) +
              ", \"unique_contended\": " + std::to_string(C.UniqueContended) +
              "}";
    }
    Json += "], \"totals\": {\"shared_acquires\": " +
            std::to_string(Sum.SharedAcquires) +
            ", \"shared_contended\": " + std::to_string(Sum.SharedContended) +
            ", \"unique_acquires\": " + std::to_string(Sum.UniqueAcquires) +
            ", \"unique_contended\": " + std::to_string(Sum.UniqueContended) +
            "}}";
    return Json;
  }

  /// Mirrors the per-shard counters into telemetry histograms — one
  /// sample per shard, so the exported histogram is the cross-shard
  /// distribution (a hot shard shows up as a long tail). No-op without
  /// -DSEPE_TELEMETRY=ON.
  void recordContentionTelemetry() const {
#if defined(SEPE_TELEMETRY)
    for (size_t I = 0; I != shardCount(); ++I) {
      const ShardContention C = shardContention(I);
      SEPE_RECORD("sharded_index_map.shard.shared_acquires",
                  C.SharedAcquires);
      SEPE_RECORD("sharded_index_map.shard.shared_contended",
                  C.SharedContended);
      SEPE_RECORD("sharded_index_map.shard.unique_acquires",
                  C.UniqueAcquires);
      SEPE_RECORD("sharded_index_map.shard.unique_contended",
                  C.UniqueContended);
    }
#endif
  }

  /// Inserts (key, value); returns false (keeping the old value) when
  /// present. Precondition: \p Key conforms to the active plan's
  /// format.
  bool put(std::string_view Key, Value V) {
    Table *T = activeMutable();
    const uint64_t Image = T->Hash(Key);
    Shard &S = T->shardFor(Image);
    std::unique_lock<std::shared_mutex> Lock(acquireUnique(S),
                                             std::adopt_lock);
    return putLocked(*T, S, Key, Image, std::move(V));
  }

  /// Removes \p Key; returns false when absent.
  bool erase(std::string_view Key) {
    Table *T = activeMutable();
    const uint64_t Image = T->Hash(Key);
    Shard &S = T->shardFor(Image);
    std::unique_lock<std::shared_mutex> Lock(acquireUnique(S),
                                             std::adopt_lock);
    const bool Erased = S.Map.eraseHashed(Image);
    if (S.Sealed && Erased)
      replayErase(*T, Key);
    return Erased;
  }

  /// Copies the value for \p Key into \p Out; false when absent. A
  /// copy, not a pointer: a pointer into a shard would dangle the
  /// moment the lock drops under concurrent writers.
  bool get(std::string_view Key, Value &Out) const {
    const Table *T = active();
    const uint64_t Image = T->Hash(Key);
    const Shard &S = T->shardFor(Image);
    std::shared_lock<std::shared_mutex> Lock(acquireShared(S),
                                             std::adopt_lock);
    if (const Value *V = S.Map.findHashed(Image)) {
      SEPE_COUNT("sharded_index_map.get.hit");
      Out = *V;
      return true;
    }
    SEPE_COUNT("sharded_index_map.get.miss");
    return false;
  }

  bool contains(std::string_view Key) const {
    Value Scratch;
    return get(Key, Scratch);
  }

  /// Batch lookup: Found[I] = 1 and Out[I] = value when Keys[I] is
  /// present, else Found[I] = 0 (Out[I] untouched). Returns the hit
  /// count. Hashes each 64-key chunk densely (AVX2 batch kernel), then
  /// partitions by shard and probes every shard's group under one read
  /// lock.
  size_t getBatch(const std::string_view *Keys, Value *Out, uint8_t *Found,
                  size_t N) const {
    const Table *T = active();
    size_t Hits = 0;
    uint64_t Images[shard::ChunkSize];
    uint16_t Order[shard::ChunkSize];
    uint32_t Offsets[256 + 1];
    for (size_t Base = 0; Base < N; Base += shard::ChunkSize) {
      const size_t Count = std::min(shard::ChunkSize, N - Base);
      T->Hash.hashBatch(Keys + Base, Images, Count);
      shard::partitionChunk(Images, Count, Bits, Order, Offsets);
      for (size_t S = 0; S != shardCount(); ++S) {
        if (Offsets[S] == Offsets[S + 1])
          continue;
        const Shard &Sh = *T->Shards[S];
        std::shared_lock<std::shared_mutex> Lock(acquireShared(Sh),
                                                 std::adopt_lock);
        for (uint32_t I = Offsets[S]; I != Offsets[S + 1]; ++I) {
          const size_t K = Base + Order[I];
          if (const Value *V = Sh.Map.findHashed(Images[Order[I]])) {
            Out[K] = *V;
            Found[K] = 1;
            ++Hits;
          } else {
            Found[K] = 0;
          }
        }
      }
    }
    SEPE_COUNT_N("sharded_index_map.get.hit", Hits);
    SEPE_COUNT_N("sharded_index_map.get.miss", N - Hits);
    return Hits;
  }

  /// Batch insert; returns the number of keys actually inserted. Same
  /// dense-hash-then-partition structure as getBatch, with each shard
  /// group applied under one write lock.
  size_t putBatch(const std::string_view *Keys, const Value *Values,
                  size_t N) {
    Table *T = activeMutable();
    size_t Inserted = 0;
    uint64_t Images[shard::ChunkSize];
    uint16_t Order[shard::ChunkSize];
    uint32_t Offsets[256 + 1];
    for (size_t Base = 0; Base < N; Base += shard::ChunkSize) {
      const size_t Count = std::min(shard::ChunkSize, N - Base);
      T->Hash.hashBatch(Keys + Base, Images, Count);
      shard::partitionChunk(Images, Count, Bits, Order, Offsets);
      for (size_t S = 0; S != shardCount(); ++S) {
        if (Offsets[S] == Offsets[S + 1])
          continue;
        Shard &Sh = *T->Shards[S];
        std::unique_lock<std::shared_mutex> Lock(acquireUnique(Sh),
                                                 std::adopt_lock);
        for (uint32_t I = Offsets[S]; I != Offsets[S + 1]; ++I) {
          const size_t K = Base + Order[I];
          Inserted +=
              putLocked(*T, Sh, Keys[K], Images[Order[I]], Values[K]) ? 1 : 0;
        }
      }
    }
    return Inserted;
  }

  /// Labeled probe: \p Image must be this map's active hash applied to
  /// the key, computed under generation \p EpochLabel. Returns Stale
  /// (nothing probed) when a migration has moved the map to a different
  /// generation since the caller hashed — the caller redoes the
  /// operation through a guarded entry point. The table is loaded once,
  /// so label check and probe cannot straddle a swap.
  ProbeResult getHashed(uint64_t Image, uint64_t EpochLabel,
                        Value &Out) const {
    const Table *T = active();
    if (T->Epoch != EpochLabel) {
      SEPE_COUNT("sharded_index_map.stale_epoch");
      return ProbeResult::Stale;
    }
    const Shard &S = T->shardFor(Image);
    std::shared_lock<std::shared_mutex> Lock(acquireShared(S),
                                             std::adopt_lock);
    if (const Value *V = S.Map.findHashed(Image)) {
      SEPE_COUNT("sharded_index_map.get.hit");
      Out = *V;
      return ProbeResult::Hit;
    }
    SEPE_COUNT("sharded_index_map.get.miss");
    return ProbeResult::Miss;
  }

  /// Labeled insert; false (nothing written) when \p EpochLabel no
  /// longer matches the active table. \p Key is journaled for future
  /// migrations, so it must be the preimage of \p Image.
  bool putHashed(std::string_view Key, uint64_t Image, uint64_t EpochLabel,
                 Value V, bool &Inserted) {
    Table *T = activeMutable();
    if (T->Epoch != EpochLabel) {
      SEPE_COUNT("sharded_index_map.stale_epoch");
      return false;
    }
    Shard &S = T->shardFor(Image);
    std::unique_lock<std::shared_mutex> Lock(acquireUnique(S),
                                             std::adopt_lock);
    Inserted = putLocked(*T, S, Key, Image, std::move(V));
    return true;
  }

  /// Labeled erase; false (nothing erased) on label mismatch.
  bool eraseHashed(std::string_view Key, uint64_t Image,
                   uint64_t EpochLabel, bool &Erased) {
    Table *T = activeMutable();
    if (T->Epoch != EpochLabel) {
      SEPE_COUNT("sharded_index_map.stale_epoch");
      return false;
    }
    Shard &S = T->shardFor(Image);
    std::unique_lock<std::shared_mutex> Lock(acquireUnique(S),
                                             std::adopt_lock);
    Erased = S.Map.eraseHashed(Image);
    if (S.Sealed && Erased)
      replayErase(*T, Key);
    return true;
  }

  /// Labeled batch lookup over pre-hashed images (same contract as
  /// getBatch otherwise); false and untouched outputs on label
  /// mismatch.
  bool getBatchHashed(const uint64_t *Images, uint64_t EpochLabel,
                      Value *Out, uint8_t *Found, size_t N,
                      size_t &Hits) const {
    const Table *T = active();
    if (T->Epoch != EpochLabel) {
      SEPE_COUNT("sharded_index_map.stale_epoch");
      return false;
    }
    Hits = 0;
    uint16_t Order[shard::ChunkSize];
    uint32_t Offsets[256 + 1];
    for (size_t Base = 0; Base < N; Base += shard::ChunkSize) {
      const size_t Count = std::min(shard::ChunkSize, N - Base);
      shard::partitionChunk(Images + Base, Count, Bits, Order, Offsets);
      for (size_t S = 0; S != shardCount(); ++S) {
        if (Offsets[S] == Offsets[S + 1])
          continue;
        const Shard &Sh = *T->Shards[S];
        std::shared_lock<std::shared_mutex> Lock(acquireShared(Sh),
                                                 std::adopt_lock);
        for (uint32_t I = Offsets[S]; I != Offsets[S + 1]; ++I) {
          const size_t K = Base + Order[I];
          if (const Value *V = Sh.Map.findHashed(Images[K])) {
            Out[K] = *V;
            Found[K] = 1;
            ++Hits;
          } else {
            Found[K] = 0;
          }
        }
      }
    }
    SEPE_COUNT_N("sharded_index_map.get.hit", Hits);
    SEPE_COUNT_N("sharded_index_map.get.miss", N - Hits);
    return true;
  }

  /// Labeled batch insert over pre-hashed images; false and nothing
  /// written on label mismatch.
  bool putBatchHashed(const std::string_view *Keys, const uint64_t *Images,
                      const Value *Values, size_t N, uint64_t EpochLabel,
                      size_t &Inserted) {
    Table *T = activeMutable();
    if (T->Epoch != EpochLabel) {
      SEPE_COUNT("sharded_index_map.stale_epoch");
      return false;
    }
    Inserted = 0;
    uint16_t Order[shard::ChunkSize];
    uint32_t Offsets[256 + 1];
    for (size_t Base = 0; Base < N; Base += shard::ChunkSize) {
      const size_t Count = std::min(shard::ChunkSize, N - Base);
      shard::partitionChunk(Images + Base, Count, Bits, Order, Offsets);
      for (size_t S = 0; S != shardCount(); ++S) {
        if (Offsets[S] == Offsets[S + 1])
          continue;
        Shard &Sh = *T->Shards[S];
        std::unique_lock<std::shared_mutex> Lock(acquireUnique(Sh),
                                                 std::adopt_lock);
        for (uint32_t I = Offsets[S]; I != Offsets[S + 1]; ++I) {
          const size_t K = Base + Order[I];
          Inserted +=
              putLocked(*T, Sh, Keys[K], Images[K], Values[K]) ? 1 : 0;
        }
      }
    }
    return true;
  }

  /// Guarded probe: checks the key against the active generation's own
  /// pattern before hashing with that generation's plan — table,
  /// pattern and hash come from one load, so this is the always-correct
  /// (if slower) path the serving layer falls back to around a
  /// migration, and the soundness gate for keys of unknown provenance:
  /// a non-conforming key never reaches an image probe.
  ProbeResult getGuarded(std::string_view Key, Value &Out) const {
    const Table *T = active();
    if (!T->Pattern.matches(Key)) {
      SEPE_TRACE_INSTANT(GuardReject, T->Epoch, 0);
      return ProbeResult::NotAdmitted;
    }
    const uint64_t Image = T->Hash(Key);
    const Shard &S = T->shardFor(Image);
    std::shared_lock<std::shared_mutex> Lock(acquireShared(S),
                                             std::adopt_lock);
    if (const Value *V = S.Map.findHashed(Image)) {
      Out = *V;
      return ProbeResult::Hit;
    }
    return ProbeResult::Miss;
  }

  /// Guarded insert: false when the key is not admitted by the active
  /// pattern (nothing written); \p Inserted reports the insert outcome
  /// otherwise.
  bool putGuarded(std::string_view Key, Value V, bool &Inserted) {
    Table *T = activeMutable();
    if (!T->Pattern.matches(Key)) {
      SEPE_TRACE_INSTANT(GuardReject, T->Epoch, 1);
      return false;
    }
    const uint64_t Image = T->Hash(Key);
    Shard &S = T->shardFor(Image);
    std::unique_lock<std::shared_mutex> Lock(acquireUnique(S),
                                             std::adopt_lock);
    Inserted = putLocked(*T, S, Key, Image, std::move(V));
    return true;
  }

  /// Guarded erase: false when not admitted; \p Erased reports the
  /// erase outcome otherwise.
  bool eraseGuarded(std::string_view Key, bool &Erased) {
    Table *T = activeMutable();
    if (!T->Pattern.matches(Key)) {
      SEPE_TRACE_INSTANT(GuardReject, T->Epoch, 2);
      return false;
    }
    const uint64_t Image = T->Hash(Key);
    Shard &S = T->shardFor(Image);
    std::unique_lock<std::shared_mutex> Lock(acquireUnique(S),
                                             std::adopt_lock);
    Erased = S.Map.eraseHashed(Image);
    if (S.Sealed && Erased)
      replayErase(*T, Key);
    return true;
  }

  /// Hot swap to \p NewHash / \p NewPattern under generation label
  /// \p NewLabel: builds the successor table shard by shard under each
  /// old shard's write lock (see the file comment for the
  /// seal/dual-write protocol), then publishes it. Readers and writers
  /// stay live throughout; concurrent migrate() calls serialize.
  /// \p NewHash must be bijective.
  void migrate(SynthesizedHash NewHash, KeyPattern NewPattern,
               uint64_t NewLabel) {
    SEPE_SPAN("sharded_index_map.migrate");
    SEPE_TRACE_SPAN(TraceSpan, MigrateShards, NewLabel);
    std::lock_guard<std::mutex> MigrateLock(MigrateMutex);
    Table *Old = activeMutable();
    auto Next = std::make_unique<Table>(
        std::move(NewHash), std::move(NewPattern), NewLabel,
        shardCount(), /*InitialCapacityPerShard=*/16);
    // Publish the successor pointer *before* any seal: a writer reads
    // it only after observing Sealed under a shard lock the migrator
    // released after this store, so the mutex ordering carries it over.
    Old->Successor = Next.get();
    size_t Copied = 0;
    for (size_t I = 0; I != Old->Shards.size(); ++I) {
      Shard &S = *Old->Shards[I];
      std::unique_lock<std::shared_mutex> Lock(S.Mutex);
      SEPE_TRACE_INSTANT(ShardSeal, NewLabel, I);
      S.Sealed = true;
      SEPE_TRACE_SPAN(CopySpan, ShardCopy, NewLabel);
      CopySpan.setArg(I);
      Copied += copyShardLocked(S, *Old, *Next);
    }
    SEPE_COUNT_N("sharded_index_map.migrate.entries", Copied);
    SEPE_COUNT("sharded_index_map.migrate.completed");
    Active.store(Next.get(), std::memory_order_release);
    SEPE_TRACE_INSTANT(MigratePublish, NewLabel, Copied);
    TraceSpan.setArg(Copied);
    Migrations.fetch_add(1, std::memory_order_relaxed);
    Tables.push_back(std::move(Next));
  }

private:
  /// One shard: an independent FlatIndexMap behind a shared_mutex,
  /// plus the inserted-key journal migrations re-hash. Cache-line
  /// aligned so two shards' mutexes never share a line.
  struct alignas(64) Shard {
    explicit Shard(const SynthesizedHash &Hash, size_t InitialCapacity)
        : Map(Hash, InitialCapacity) {}
    mutable std::shared_mutex Mutex;
    /// Per-shard lock pressure, counted by the acquire helpers
    /// (relaxed — the counts order nothing, they are measurements).
    /// Mutable for the same reason Mutex is: read paths count too.
    mutable std::atomic<uint64_t> SharedAcquires{0};
    mutable std::atomic<uint64_t> SharedContended{0};
    mutable std::atomic<uint64_t> UniqueAcquires{0};
    mutable std::atomic<uint64_t> UniqueContended{0};
    FlatIndexMap<Value> Map;
    /// Keys inserted into this shard, appended under the write lock.
    /// May hold erased keys (skipped at migration) and re-inserted
    /// duplicates (harmless there); compacted by each migration.
    std::vector<std::string> Journal;
    /// True once a migration has copied (or is copying) this shard;
    /// writers must replay their mutation against Successor. Guarded
    /// by Mutex.
    bool Sealed = false;
  };

  /// One epoch of the map. Immutable after publish except through the
  /// shard locks; readers reach the whole generation — hash, pattern,
  /// epoch, shards — through one acquire load of Active.
  struct Table {
    Table(SynthesizedHash Hash, KeyPattern Pattern, uint64_t Epoch,
          size_t ShardCount, size_t InitialCapacityPerShard)
        : Hash(std::move(Hash)), Pattern(std::move(Pattern)), Epoch(Epoch) {
      Shards.reserve(ShardCount);
      for (size_t I = 0; I != ShardCount; ++I)
        Shards.push_back(
            std::make_unique<Shard>(this->Hash, InitialCapacityPerShard));
    }

    Shard &shardFor(uint64_t Image) const {
      return *Shards[probe::shardOf(
          Image, static_cast<unsigned>(std::countr_zero(Shards.size())))];
    }

    SynthesizedHash Hash;
    KeyPattern Pattern;
    uint64_t Epoch = 0;
    std::vector<std::unique_ptr<Shard>> Shards;
    /// Set (before any seal) by the migration that retires this table;
    /// read by writers that find their shard sealed.
    Table *Successor = nullptr;
  };

  const Table *active() const { return Active.load(std::memory_order_acquire); }
  Table *activeMutable() { return Active.load(std::memory_order_acquire); }

  /// try-lock-first acquisition so contended acquisitions are counted
  /// — globally in telemetry and per shard in the Shard's own relaxed
  /// counters (shardContention/contentionJson read them back); returns
  /// the (locked) mutex for std::adopt_lock guards.
  static std::shared_mutex &acquireShared(const Shard &S) {
    S.SharedAcquires.fetch_add(1, std::memory_order_relaxed);
    if (!S.Mutex.try_lock_shared()) {
      S.SharedContended.fetch_add(1, std::memory_order_relaxed);
      SEPE_COUNT("sharded_index_map.lock.contended_read");
      S.Mutex.lock_shared();
    }
    return S.Mutex;
  }
  static std::shared_mutex &acquireUnique(const Shard &S) {
    S.UniqueAcquires.fetch_add(1, std::memory_order_relaxed);
    if (!S.Mutex.try_lock()) {
      S.UniqueContended.fetch_add(1, std::memory_order_relaxed);
      SEPE_COUNT("sharded_index_map.lock.contended_write");
      S.Mutex.lock();
    }
    return S.Mutex;
  }

  /// Insert under \p S's write lock, journaling and (when sealed)
  /// replaying against the successor.
  bool putLocked(Table &T, Shard &S, std::string_view Key, uint64_t Image,
                 Value V) {
    const bool Inserted = S.Map.insertHashed(Image, V);
    if (Inserted)
      S.Journal.emplace_back(Key);
    if (S.Sealed && Inserted)
      replayPut(T, Key, std::move(V));
    return Inserted;
  }

  /// Dual-write lane: re-applies a mutation against the successor
  /// table, re-hashed with its plan. Caller holds an *old* shard's
  /// write lock; successor shard locks nest strictly inside old ones,
  /// and no thread ever holds two old shard locks, so the order is
  /// acyclic.
  void replayPut(Table &T, std::string_view Key, Value V) {
    SEPE_COUNT("sharded_index_map.dual_write");
    Table &Next = *T.Successor;
    SEPE_TRACE_INSTANT(DualWrite, Next.Epoch, 0);
    const uint64_t Image = Next.Hash(Key);
    Shard &S = Next.shardFor(Image);
    std::unique_lock<std::shared_mutex> Lock(acquireUnique(S),
                                             std::adopt_lock);
    if (S.Map.insertHashed(Image, std::move(V)))
      S.Journal.emplace_back(Key);
  }

  void replayErase(Table &T, std::string_view Key) {
    SEPE_COUNT("sharded_index_map.dual_write");
    Table &Next = *T.Successor;
    SEPE_TRACE_INSTANT(DualWrite, Next.Epoch, 1);
    const uint64_t Image = Next.Hash(Key);
    Shard &S = Next.shardFor(Image);
    std::unique_lock<std::shared_mutex> Lock(acquireUnique(S),
                                             std::adopt_lock);
    S.Map.eraseHashed(Image);
  }

  /// Copies shard \p S's live entries into \p Next, re-hashed through
  /// both plans' batch kernels. Runs with S's write lock held — also
  /// across the successor inserts, so a concurrent erase (which needs
  /// this same lock before it can dual-write) can never be undone by a
  /// stale copy landing after it. Returns the number of live entries
  /// copied.
  size_t copyShardLocked(Shard &S, Table &Old, Table &Next) {
    size_t Copied = 0;
    uint64_t OldImages[shard::ChunkSize];
    uint64_t NewImages[shard::ChunkSize];
    std::string_view KeyViews[shard::ChunkSize];
    for (size_t Base = 0; Base < S.Journal.size();
         Base += shard::ChunkSize) {
      const size_t Count =
          std::min(shard::ChunkSize, S.Journal.size() - Base);
      for (size_t I = 0; I != Count; ++I)
        KeyViews[I] = S.Journal[Base + I];
      Old.Hash.hashBatch(KeyViews, OldImages, Count);
      Next.Hash.hashBatch(KeyViews, NewImages, Count);
      for (size_t I = 0; I != Count; ++I) {
        const Value *V = S.Map.findHashed(OldImages[I]);
        if (!V)
          continue; // Erased since it was journaled.
        Shard &Dest = Next.shardFor(NewImages[I]);
        std::unique_lock<std::shared_mutex> Lock(acquireUnique(Dest),
                                                 std::adopt_lock);
        if (Dest.Map.insertHashed(NewImages[I], *V)) {
          Dest.Journal.emplace_back(KeyViews[I]);
          ++Copied;
        }
        // Insert returning false means a journal duplicate (erase +
        // re-insert of the same key); the live value was already
        // copied by the first occurrence's lookup of the *current*
        // map state, so dropping the duplicate is correct.
      }
    }
    return Copied;
  }

  unsigned Bits = 0;
  std::atomic<Table *> Active{nullptr};
  /// Every table ever published, in epoch order; retired tables stay
  /// alive until destruction so readers parked on an old epoch never
  /// touch freed memory (the AdaptiveHash generation idiom).
  std::vector<std::unique_ptr<Table>> Tables;
  std::mutex MigrateMutex;
  std::atomic<uint64_t> Migrations{0};
};

} // namespace sepe

#endif // SEPE_CONTAINER_SHARDED_INDEX_MAP_H
