//===- keygen/paper_formats.cpp - The eight key formats of Sec. 4 --------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "keygen/paper_formats.h"

#include "core/regex_parser.h"

#include <cstdlib>

using namespace sepe;

const char *sepe::paperKeyName(PaperKey Key) {
  switch (Key) {
  case PaperKey::SSN:
    return "SSN";
  case PaperKey::CPF:
    return "CPF";
  case PaperKey::MAC:
    return "MAC";
  case PaperKey::IPv4:
    return "IPv4";
  case PaperKey::IPv6:
    return "IPv6";
  case PaperKey::INTS:
    return "INTS";
  case PaperKey::URL1:
    return "URL1";
  case PaperKey::URL2:
    return "URL2";
  }
  return "<invalid>";
}

const char *sepe::paperKeyRegex(PaperKey Key) {
  switch (Key) {
  case PaperKey::SSN:
    return R"(\d{3}-\d{2}-\d{4})";
  case PaperKey::CPF:
    return R"(\d{3}\.\d{3}\.\d{3}-\d{2})";
  case PaperKey::MAC:
    return R"(([0-9a-fA-F]{2}-){5}[0-9a-fA-F]{2})";
  case PaperKey::IPv4:
    // The paper's fixed-width dotted-decimal form: ddd.ddd.ddd.ddd.
    return R"((([0-9]{3})\.){3}[0-9]{3})";
  case PaperKey::IPv6:
    return R"(([0-9a-f]{4}:){7}[0-9a-f]{4})";
  case PaperKey::INTS:
    return R"([0-9]{100})";
  case PaperKey::URL1:
    // 23 constant characters plus a 20-character [a-z0-9] slug and the
    // ".html" suffix (Section 4).
    return R"(https://example\.com/go/[a-z0-9]{20}\.html)";
  case PaperKey::URL2:
    // 36 constant characters plus the same suffix.
    return R"(https://www\.example\.com/en/articles/[a-z0-9]{20}\.html)";
  }
  return "";
}

const FormatSpec &sepe::paperKeyFormat(PaperKey Key) {
  static const std::array<FormatSpec, 8> Formats = [] {
    std::array<FormatSpec, 8> Result;
    for (PaperKey K : AllPaperKeys) {
      Expected<FormatSpec> Parsed = parseRegex(paperKeyRegex(K));
      if (!Parsed) {
        // The built-in regexes are fixed; a parse failure is a bug.
        std::abort();
      }
      Result[static_cast<size_t>(K)] = Parsed.take();
    }
    return Result;
  }();
  return Formats[static_cast<size_t>(Key)];
}
