//===- keygen/paper_formats.h - The eight key formats of Sec. 4 -*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The eight key types of the paper's evaluation (Section 4,
/// "Benchmarks"): SSN, CPF, MAC, IPv4, IPv6, INTS, URL1 and URL2, each
/// defined by the regex the paper gives and exposed as a parsed
/// FormatSpec.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_KEYGEN_PAPER_FORMATS_H
#define SEPE_KEYGEN_PAPER_FORMATS_H

#include "core/format_spec.h"

#include <array>

namespace sepe {

/// The paper's key types, in the order of Section 4.
enum class PaperKey { SSN, CPF, MAC, IPv4, IPv6, INTS, URL1, URL2 };

constexpr std::array<PaperKey, 8> AllPaperKeys = {
    PaperKey::SSN,  PaperKey::CPF,  PaperKey::MAC,  PaperKey::IPv4,
    PaperKey::IPv6, PaperKey::INTS, PaperKey::URL1, PaperKey::URL2};

/// "SSN", "CPF", ...
const char *paperKeyName(PaperKey Key);

/// The regex of Section 4, in this library's restricted dialect.
const char *paperKeyRegex(PaperKey Key);

/// The parsed format (cached; parsing the fixed regexes cannot fail).
const FormatSpec &paperKeyFormat(PaperKey Key);

} // namespace sepe

#endif // SEPE_KEYGEN_PAPER_FORMATS_H
