//===- keygen/distributions.h - Key streams per distribution ---*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic key generation for the three distributions of the
/// paper's driver (Section 4, "Benchmarks"): incremental/ascending,
/// uniform and normal. A fixed-length FormatSpec induces a mixed-radix
/// value space over its variable positions; the incremental distribution
/// walks it in ascending ASCII order (exactly the '000-00-0000',
/// '000-00-0001', ... sequence of RQ3), uniform draws every variable
/// position independently, and normal draws a value from a bell curve
/// centered in the (capped) value space.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_KEYGEN_DISTRIBUTIONS_H
#define SEPE_KEYGEN_DISTRIBUTIONS_H

#include "core/format_spec.h"

#include <array>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace sepe {

/// Key-value distributions of the paper's driver.
enum class KeyDistribution { Incremental, Uniform, Normal };

constexpr std::array<KeyDistribution, 3> AllKeyDistributions = {
    KeyDistribution::Incremental, KeyDistribution::Uniform,
    KeyDistribution::Normal};

/// "Inc", "Uniform", "Normal" (the paper's table headings).
const char *distributionName(KeyDistribution D);

/// Generates keys of one fixed-length format under one distribution.
/// Deterministic for a given (format, distribution, seed) triple.
class KeyGenerator {
public:
  using Value = unsigned __int128;

  KeyGenerator(const FormatSpec &Format, KeyDistribution Distribution,
               uint64_t Seed = 0x5eed5eed);

  /// Number of keys in the format (capped at 2^127 - 1).
  Value spaceSize() const { return Space; }

  /// The key whose mixed-radix index is \p V (indices wrap modulo the
  /// space). Ascending V yields keys in ascending ASCII order.
  std::string keyForValue(Value V) const;

  /// The mixed-radix index of \p Key; inverse of keyForValue.
  /// Precondition: the key belongs to the format.
  Value valueForKey(const std::string &Key) const;

  /// The next key in the stream (may repeat under uniform/normal).
  std::string next();

  /// \p N distinct keys of the distribution. Requires N <= spaceSize().
  /// For uniform/normal this rejects duplicates; when the space is
  /// small it falls back to enumerating and shuffling so the call always
  /// terminates.
  std::vector<std::string> distinct(size_t N);

private:
  Value nextValue();

  FormatSpec Format; // Owned copy: generators outlive their spec source.
  KeyDistribution Distribution;
  std::mt19937_64 Rng;
  std::string Base;                 // constant positions pre-filled
  std::vector<size_t> VarPositions; // ascending
  std::vector<uint32_t> Radices;    // alphabet size per variable position
  Value Space;                      // capped product of radices
  uint64_t SpaceCapped;             // min(space, 2^62), drives normal/inc
  Value Counter = 0;                // incremental cursor
  double NormalMean, NormalSigma;
};

} // namespace sepe

#endif // SEPE_KEYGEN_DISTRIBUTIONS_H
