//===- keygen/distributions.cpp - Key streams per distribution -----------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "keygen/distributions.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

using namespace sepe;

const char *sepe::distributionName(KeyDistribution D) {
  switch (D) {
  case KeyDistribution::Incremental:
    return "Inc";
  case KeyDistribution::Uniform:
    return "Uniform";
  case KeyDistribution::Normal:
    return "Normal";
  }
  return "<invalid>";
}

KeyGenerator::KeyGenerator(const FormatSpec &Format,
                           KeyDistribution Distribution, uint64_t Seed)
    : Format(Format), Distribution(Distribution), Rng(Seed) {
  assert(Format.isFixedLength() &&
         "the paper's driver generates fixed-length keys");
  Base.resize(Format.maxLength());
  for (size_t I = 0; I != Format.maxLength(); ++I)
    Base[I] = static_cast<char>(Format.classAt(I).min());
  VarPositions = Format.variablePositions();
  Radices.reserve(VarPositions.size());
  for (size_t P : VarPositions)
    Radices.push_back(static_cast<uint32_t>(Format.classAt(P).size()));

  // Capped product of radices; saturates at 2^127 - 1.
  constexpr Value Cap = (~Value{0}) >> 1;
  Space = 1;
  for (uint32_t R : Radices) {
    if (Space > Cap / R) {
      Space = Cap;
      break;
    }
    Space *= R;
  }
  constexpr uint64_t Cap62 = uint64_t{1} << 62;
  SpaceCapped = Space > Cap62 ? Cap62 : static_cast<uint64_t>(Space);

  // A bell curve centered in the (capped) space, wide enough that large
  // spreads still find distinct keys, narrow enough to be visibly
  // non-uniform.
  NormalMean = static_cast<double>(SpaceCapped) / 2.0;
  NormalSigma = static_cast<double>(SpaceCapped) / 8.0;
}

std::string KeyGenerator::keyForValue(Value V) const {
  std::string Key = Base;
  // Least significant digit at the last variable position, so ascending
  // values sort ascending as strings.
  for (size_t I = VarPositions.size(); I-- > 0;) {
    const uint32_t Radix = Radices[I];
    const auto Digit = static_cast<size_t>(V % Radix);
    V /= Radix;
    Key[VarPositions[I]] =
        static_cast<char>(Format.classAt(VarPositions[I]).nth(Digit));
  }
  return Key;
}

KeyGenerator::Value KeyGenerator::valueForKey(const std::string &Key) const {
  assert(Format.matches(Key) && "key does not belong to the format");
  Value V = 0;
  for (size_t I = 0; I != VarPositions.size(); ++I) {
    const size_t P = VarPositions[I];
    V = V * Radices[I] +
        Format.classAt(P).rankOf(static_cast<uint8_t>(Key[P]));
  }
  return V;
}

KeyGenerator::Value KeyGenerator::nextValue() {
  switch (Distribution) {
  case KeyDistribution::Incremental:
    return Counter++;
  case KeyDistribution::Uniform: {
    // Every variable position drawn independently: uniform over the
    // whole space even when it exceeds 2^64.
    Value V = 0;
    for (uint32_t Radix : Radices)
      V = V * Radix + (Rng() % Radix);
    return V;
  }
  case KeyDistribution::Normal: {
    std::normal_distribution<double> Dist(NormalMean, NormalSigma);
    double Draw = Dist(Rng);
    if (Draw < 0)
      Draw = 0;
    const double Max = static_cast<double>(SpaceCapped) - 1;
    if (Draw > Max)
      Draw = Max;
    return static_cast<Value>(static_cast<uint64_t>(Draw));
  }
  }
  assert(false && "unreachable: all distributions handled");
  return 0;
}

std::string KeyGenerator::next() { return keyForValue(nextValue()); }

std::vector<std::string> KeyGenerator::distinct(size_t N) {
  assert(Space >= N && "format space too small for the requested spread");
  std::vector<std::string> Keys;
  Keys.reserve(N);

  if (Distribution == KeyDistribution::Incremental) {
    for (size_t I = 0; I != N; ++I)
      Keys.push_back(keyForValue(Counter++));
    return Keys;
  }

  // When the request covers most of a small space, rejection sampling
  // stalls; enumerate and shuffle instead (uniform) or take the densest
  // slots around the mean (normal).
  const bool SmallSpace = Space <= static_cast<Value>(N) * 4;
  if (SmallSpace) {
    std::vector<uint64_t> All(static_cast<size_t>(Space));
    for (size_t I = 0; I != All.size(); ++I)
      All[I] = I;
    if (Distribution == KeyDistribution::Uniform) {
      std::shuffle(All.begin(), All.end(), Rng);
    } else {
      const double Mean = NormalMean;
      std::sort(All.begin(), All.end(), [Mean](uint64_t A, uint64_t B) {
        return std::abs(static_cast<double>(A) - Mean) <
               std::abs(static_cast<double>(B) - Mean);
      });
    }
    for (size_t I = 0; I != N; ++I)
      Keys.push_back(keyForValue(All[I]));
    return Keys;
  }

  std::unordered_set<std::string> Seen;
  Seen.reserve(N * 2);
  while (Keys.size() != N) {
    std::string Key = next();
    if (Seen.insert(Key).second)
      Keys.push_back(std::move(Key));
  }
  return Keys;
}
