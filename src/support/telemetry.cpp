//===- support/telemetry.cpp - Metric registry + JSON export -------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "support/telemetry.h"

#if defined(SEPE_TELEMETRY)
#include "support/json.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#endif

using namespace sepe;

#if defined(SEPE_TELEMETRY)

namespace {

/// Name -> metric maps. std::map because its nodes never move: the
/// references handed out by counter()/histogram()/span() must stay
/// valid for the process lifetime (instrumentation sites cache them in
/// function-local statics).
struct Registry {
  std::mutex Mutex;
  std::map<std::string, telemetry::Counter> Counters;
  std::map<std::string, telemetry::Histogram> Histograms;
  std::map<std::string, telemetry::Histogram> Spans;
};

Registry &registry() {
  static Registry R;
  return R;
}

bool envEnabled() {
  const char *Env = std::getenv("SEPE_TELEMETRY_ENABLED");
  return Env != nullptr && Env[0] != '\0' && Env[0] != '0';
}

void appendEscaped(std::string &Out, const std::string &S) {
  // Full RFC 8259 escaping (shared with the sampled-key exporters):
  // metric names are ASCII today, but the registry is open to any
  // literal an instrumentation site passes.
  Out += json::escapeString(S);
}

void appendDouble(std::string &Out, double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  Out += Buf;
}

/// One histogram as {"count":..,"sum":..,"max":..,"p50":..,"p90":..,
/// "p99":..,"p999":..,"buckets":[..]} — the percentiles are estimates
/// interpolated from the log2 bucket boundaries (Histogram::percentile)
/// and the bucket array is trimmed to the highest non-zero bucket (the
/// fixed 65-bucket layout is part of the schema, so readers can
/// reconstruct the ranges from the index alone).
void appendHistogram(std::string &Out, const telemetry::Histogram &H) {
  Out += "{\"count\":" + std::to_string(H.count());
  Out += ",\"sum\":" + std::to_string(H.sum());
  Out += ",\"max\":" + std::to_string(H.max());
  Out += ",\"p50\":";
  appendDouble(Out, H.percentile(0.50));
  Out += ",\"p90\":";
  appendDouble(Out, H.percentile(0.90));
  Out += ",\"p99\":";
  appendDouble(Out, H.percentile(0.99));
  Out += ",\"p999\":";
  appendDouble(Out, H.percentile(0.999));
  Out += ",\"buckets\":[";
  size_t Last = 0;
  for (size_t I = 0; I != telemetry::Histogram::NumBuckets; ++I)
    if (H.bucket(I) != 0)
      Last = I;
  for (size_t I = 0; I <= Last; ++I) {
    if (I != 0)
      Out += ',';
    Out += std::to_string(H.bucket(I));
  }
  Out += "]}";
}

void appendHistogramMap(std::string &Out, const char *Section,
                        const std::map<std::string, telemetry::Histogram> &M) {
  Out += '"';
  Out += Section;
  Out += "\":{";
  bool First = true;
  for (const auto &[Name, H] : M) {
    if (!First)
      Out += ',';
    First = false;
    Out += '"';
    appendEscaped(Out, Name);
    Out += "\":";
    appendHistogram(Out, H);
  }
  Out += '}';
}

} // namespace

std::atomic<bool> telemetry::detail::EnabledFlag{envEnabled()};

bool telemetry::compiledIn() { return true; }

void telemetry::setEnabled(bool On) {
  detail::EnabledFlag.store(On, std::memory_order_relaxed);
}

telemetry::Counter &telemetry::counter(const char *Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  return R.Counters[Name];
}

telemetry::Histogram &telemetry::histogram(const char *Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  return R.Histograms[Name];
}

telemetry::Histogram &telemetry::span(const char *Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  return R.Spans[Name];
}

std::string telemetry::toJson() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  std::string Out = "{\"schema_version\":1,\"compiled_in\":true,";
  Out += std::string("\"enabled\":") + (enabled() ? "true" : "false") + ",";
  Out += "\"counters\":{";
  bool First = true;
  for (const auto &[Name, C] : R.Counters) {
    if (!First)
      Out += ',';
    First = false;
    Out += '"';
    appendEscaped(Out, Name);
    Out += "\":" + std::to_string(C.value());
  }
  Out += "},";
  appendHistogramMap(Out, "histograms", R.Histograms);
  Out += ',';
  appendHistogramMap(Out, "spans", R.Spans);
  Out += '}';
  return Out;
}

void telemetry::resetAll() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  for (auto &[Name, C] : R.Counters)
    C.reset();
  for (auto &[Name, H] : R.Histograms)
    H.reset();
  for (auto &[Name, H] : R.Spans)
    H.reset();
}

namespace {

/// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*; the
/// registry's dotted paths (and any future dynamically-built name)
/// are flattened onto that alphabet and prefixed.
std::string promName(const std::string &Name, const char *Suffix = "") {
  std::string Out = "sepe_";
  for (char C : Name) {
    const bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
                    (C >= '0' && C <= '9') || C == '_' || C == ':';
    Out += Ok ? C : '_';
  }
  Out += Suffix;
  return Out;
}

void appendPromSummary(std::string &Out, const std::string &Name,
                       const telemetry::Histogram &H) {
  Out += "# TYPE " + Name + " summary\n";
  static constexpr struct {
    const char *Label;
    double Q;
  } Quantiles[] = {
      {"0.5", 0.50}, {"0.9", 0.90}, {"0.99", 0.99}, {"0.999", 0.999}};
  for (const auto &[Label, Q] : Quantiles) {
    Out += Name + "{quantile=\"" + Label + "\"} ";
    appendDouble(Out, H.percentile(Q));
    Out += '\n';
  }
  Out += Name + "_sum " + std::to_string(H.sum()) + '\n';
  Out += Name + "_count " + std::to_string(H.count()) + '\n';
}

} // namespace

std::string telemetry::toPrometheus() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  std::string Out;
  for (const auto &[Name, C] : R.Counters) {
    const std::string N = promName(Name);
    Out += "# TYPE " + N + " counter\n";
    Out += N + " " + std::to_string(C.value()) + '\n';
  }
  for (const auto &[Name, H] : R.Histograms)
    appendPromSummary(Out, promName(Name), H);
  for (const auto &[Name, H] : R.Spans)
    appendPromSummary(Out, promName(Name, "_ns"), H);
  return Out;
}

#else // !SEPE_TELEMETRY

bool telemetry::compiledIn() { return false; }

std::string telemetry::toJson() {
  return "{\"schema_version\":1,\"compiled_in\":false,\"enabled\":false,"
         "\"counters\":{},\"histograms\":{},\"spans\":{}}";
}

void telemetry::resetAll() {}

std::string telemetry::toPrometheus() {
  return "# sepe telemetry compiled out (-DSEPE_TELEMETRY=OFF)\n";
}

#endif // SEPE_TELEMETRY
