//===- support/telemetry.cpp - Metric registry + JSON export -------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "support/telemetry.h"

#if defined(SEPE_TELEMETRY)
#include "support/json.h"

#include <cstdlib>
#include <map>
#include <mutex>
#endif

using namespace sepe;

#if defined(SEPE_TELEMETRY)

namespace {

/// Name -> metric maps. std::map because its nodes never move: the
/// references handed out by counter()/histogram()/span() must stay
/// valid for the process lifetime (instrumentation sites cache them in
/// function-local statics).
struct Registry {
  std::mutex Mutex;
  std::map<std::string, telemetry::Counter> Counters;
  std::map<std::string, telemetry::Histogram> Histograms;
  std::map<std::string, telemetry::Histogram> Spans;
};

Registry &registry() {
  static Registry R;
  return R;
}

bool envEnabled() {
  const char *Env = std::getenv("SEPE_TELEMETRY_ENABLED");
  return Env != nullptr && Env[0] != '\0' && Env[0] != '0';
}

void appendEscaped(std::string &Out, const std::string &S) {
  // Full RFC 8259 escaping (shared with the sampled-key exporters):
  // metric names are ASCII today, but the registry is open to any
  // literal an instrumentation site passes.
  Out += json::escapeString(S);
}

/// One histogram as {"count":..,"sum":..,"max":..,"buckets":[..]} with
/// the bucket array trimmed to the highest non-zero bucket (the fixed
/// 65-bucket layout is part of the schema, so readers can reconstruct
/// the ranges from the index alone).
void appendHistogram(std::string &Out, const telemetry::Histogram &H) {
  Out += "{\"count\":" + std::to_string(H.count());
  Out += ",\"sum\":" + std::to_string(H.sum());
  Out += ",\"max\":" + std::to_string(H.max());
  Out += ",\"buckets\":[";
  size_t Last = 0;
  for (size_t I = 0; I != telemetry::Histogram::NumBuckets; ++I)
    if (H.bucket(I) != 0)
      Last = I;
  for (size_t I = 0; I <= Last; ++I) {
    if (I != 0)
      Out += ',';
    Out += std::to_string(H.bucket(I));
  }
  Out += "]}";
}

void appendHistogramMap(std::string &Out, const char *Section,
                        const std::map<std::string, telemetry::Histogram> &M) {
  Out += '"';
  Out += Section;
  Out += "\":{";
  bool First = true;
  for (const auto &[Name, H] : M) {
    if (!First)
      Out += ',';
    First = false;
    Out += '"';
    appendEscaped(Out, Name);
    Out += "\":";
    appendHistogram(Out, H);
  }
  Out += '}';
}

} // namespace

std::atomic<bool> telemetry::detail::EnabledFlag{envEnabled()};

bool telemetry::compiledIn() { return true; }

void telemetry::setEnabled(bool On) {
  detail::EnabledFlag.store(On, std::memory_order_relaxed);
}

telemetry::Counter &telemetry::counter(const char *Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  return R.Counters[Name];
}

telemetry::Histogram &telemetry::histogram(const char *Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  return R.Histograms[Name];
}

telemetry::Histogram &telemetry::span(const char *Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  return R.Spans[Name];
}

std::string telemetry::toJson() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  std::string Out = "{\"schema_version\":1,\"compiled_in\":true,";
  Out += std::string("\"enabled\":") + (enabled() ? "true" : "false") + ",";
  Out += "\"counters\":{";
  bool First = true;
  for (const auto &[Name, C] : R.Counters) {
    if (!First)
      Out += ',';
    First = false;
    Out += '"';
    appendEscaped(Out, Name);
    Out += "\":" + std::to_string(C.value());
  }
  Out += "},";
  appendHistogramMap(Out, "histograms", R.Histograms);
  Out += ',';
  appendHistogramMap(Out, "spans", R.Spans);
  Out += '}';
  return Out;
}

void telemetry::resetAll() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  for (auto &[Name, C] : R.Counters)
    C.reset();
  for (auto &[Name, H] : R.Histograms)
    H.reset();
  for (auto &[Name, H] : R.Spans)
    H.reset();
}

#else // !SEPE_TELEMETRY

bool telemetry::compiledIn() { return false; }

std::string telemetry::toJson() {
  return "{\"schema_version\":1,\"compiled_in\":false,\"enabled\":false,"
         "\"counters\":{},\"histograms\":{},\"spans\":{}}";
}

void telemetry::resetAll() {}

#endif // SEPE_TELEMETRY
