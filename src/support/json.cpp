//===- support/json.cpp - Minimal JSON document parser -------------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "support/json.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace sepe;
using json::Value;

namespace {

class Parser {
public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  Expected<Value> run() {
    skipWhitespace();
    Expected<Value> Result = parseValue(/*Depth=*/0);
    if (!Result)
      return Result;
    skipWhitespace();
    if (Pos != Text.size())
      return fail("trailing characters after JSON document");
    return Result;
  }

private:
  // Deep enough for every report this repo writes; bounds the stack on
  // hostile input.
  static constexpr int MaxDepth = 64;

  std::string_view Text;
  size_t Pos = 0;

  Error fail(std::string Message) const {
    return Error::at(Pos, std::move(Message));
  }

  void skipWhitespace() {
    while (Pos != Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos != Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool consumeWord(const char *Word) {
    const size_t Len = std::strlen(Word);
    if (Text.substr(Pos, Len) == Word) {
      Pos += Len;
      return true;
    }
    return false;
  }

  Expected<Value> parseValue(int Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    if (Pos == Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case '{':
      return parseObject(Depth);
    case '[':
      return parseArray(Depth);
    case '"': {
      Expected<std::string> S = parseString();
      if (!S)
        return S.error();
      return Value::makeString(S.take());
    }
    case 't':
      if (consumeWord("true"))
        return Value::makeBool(true);
      return fail("invalid literal");
    case 'f':
      if (consumeWord("false"))
        return Value::makeBool(false);
      return fail("invalid literal");
    case 'n':
      if (consumeWord("null"))
        return Value::makeNull();
      return fail("invalid literal");
    default:
      return parseNumber();
    }
  }

  Expected<Value> parseObject(int Depth) {
    consume('{');
    Value Result = Value::makeObject();
    skipWhitespace();
    if (consume('}'))
      return Result;
    while (true) {
      skipWhitespace();
      if (Pos == Text.size() || Text[Pos] != '"')
        return fail("expected object key string");
      Expected<std::string> Key = parseString();
      if (!Key)
        return Key.error();
      skipWhitespace();
      if (!consume(':'))
        return fail("expected ':' after object key");
      skipWhitespace();
      Expected<Value> Member = parseValue(Depth + 1);
      if (!Member)
        return Member;
      Result.objectMut().emplace_back(Key.take(), Member.take());
      skipWhitespace();
      if (consume(','))
        continue;
      if (consume('}'))
        return Result;
      return fail("expected ',' or '}' in object");
    }
  }

  Expected<Value> parseArray(int Depth) {
    consume('[');
    Value Result = Value::makeArray();
    skipWhitespace();
    if (consume(']'))
      return Result;
    while (true) {
      skipWhitespace();
      Expected<Value> Element = parseValue(Depth + 1);
      if (!Element)
        return Element;
      Result.arrayMut().push_back(Element.take());
      skipWhitespace();
      if (consume(','))
        continue;
      if (consume(']'))
        return Result;
      return fail("expected ',' or ']' in array");
    }
  }

  Expected<std::string> parseString() {
    consume('"');
    std::string Out;
    while (true) {
      if (Pos == Text.size())
        return fail("unterminated string");
      const char C = Text[Pos++];
      if (C == '"')
        return Out;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos == Text.size())
        return fail("unterminated escape");
      const char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I != 4; ++I) {
          const char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("invalid \\u escape digit");
        }
        // escapeString() emits every non-ASCII byte as \u00XX, so code
        // points through U+00FF decode back to the raw byte (the
        // round-trip contract); anything beyond one byte degrades.
        Out += Code < 0x100 ? static_cast<char>(Code) : '?';
        break;
      }
      default:
        return fail("unknown escape character");
      }
    }
  }

  Expected<Value> parseNumber() {
    const size_t Start = Pos;
    consume('-');
    // RFC 8259: no leading zeros ("01" is two tokens, i.e. malformed).
    if (Pos + 1 < Text.size() && Text[Pos] == '0' &&
        Text[Pos + 1] >= '0' && Text[Pos + 1] <= '9')
      return fail("leading zero in number");
    while (Pos != Text.size() &&
           ((Text[Pos] >= '0' && Text[Pos] <= '9') || Text[Pos] == '.' ||
            Text[Pos] == 'e' || Text[Pos] == 'E' || Text[Pos] == '+' ||
            Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return fail("expected a value");
    const std::string Token(Text.substr(Start, Pos - Start));
    char *End = nullptr;
    const double Num = std::strtod(Token.c_str(), &End);
    if (End == nullptr || *End != '\0') {
      Pos = Start;
      return fail("malformed number");
    }
    return Value::makeNumber(Num);
  }
};

} // namespace

std::string json::escapeString(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (const char C : S) {
    const auto Byte = static_cast<unsigned char>(C);
    switch (C) {
    case '"':
      Out += "\\\"";
      continue;
    case '\\':
      Out += "\\\\";
      continue;
    case '\b':
      Out += "\\b";
      continue;
    case '\f':
      Out += "\\f";
      continue;
    case '\n':
      Out += "\\n";
      continue;
    case '\r':
      Out += "\\r";
      continue;
    case '\t':
      Out += "\\t";
      continue;
    default:
      break;
    }
    if (Byte < 0x20 || Byte > 0x7E) {
      // Control bytes must be escaped per RFC 8259; non-ASCII bytes are
      // escaped too so the document stays pure ASCII regardless of what
      // encoding the sampled keys were in.
      static const char Hex[] = "0123456789abcdef";
      Out += "\\u00";
      Out += Hex[Byte >> 4];
      Out += Hex[Byte & 0xF];
    } else {
      Out += C;
    }
  }
  return Out;
}

Expected<Value> json::parse(std::string_view Text) {
  return Parser(Text).run();
}

Expected<Value> json::parseFile(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return Error{"cannot open " + Path, std::string::npos};
  std::string Text;
  char Buffer[4096];
  size_t Got = 0;
  while ((Got = std::fread(Buffer, 1, sizeof(Buffer), F)) != 0)
    Text.append(Buffer, Got);
  std::fclose(F);
  return parse(Text);
}
