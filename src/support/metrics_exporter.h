//===- support/metrics_exporter.h - Live metrics egress ---------*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pulls the passive observability layers (telemetry registry, trace
/// flight recorder) out of the process while it runs, in Prometheus
/// text-exposition format, through two transports:
///
///   - MetricsServer: a minimal single-threaded HTTP listener on a
///     plain blocking socket (poll + accept, loopback by default, zero
///     dependencies). "/" and "/metrics" answer 200 with the current
///     exposition; additional GET paths can be registered before
///     start() (sepeserve mounts "/plan" and "/quality" this way);
///     anything else gets a 404 with a text body;
///   - SnapshotWriter: a background thread rewriting the same
///     exposition to a file on a fixed interval, for environments
///     where opening a socket is not an option (CI sandboxes,
///     containers without port mappings).
///
/// Both render through renderPrometheus(), which appends
/// flight-recorder gauges (emitted/dropped/occupancy), the live
/// quality gauges (quality/live_stats.h, present once a monitor has
/// published), and an optional caller-supplied block — sepeserve uses
/// that hook for its shard contention lines — to
/// telemetry::toPrometheus(). Rendering reads only atomics and the
/// registry mutex, so a scrape never blocks the serving path.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_SUPPORT_METRICS_EXPORTER_H
#define SEPE_SUPPORT_METRICS_EXPORTER_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

namespace sepe::metrics {

/// Extra exposition lines appended per render; must already be valid
/// Prometheus text format (or empty).
using ExtraFn = std::function<std::string()>;

/// telemetry::toPrometheus() + sepe_trace_{emitted,dropped,occupancy}
/// gauges + \p Extra's output (if set).
std::string renderPrometheus(const ExtraFn &Extra = nullptr);

/// One-thread HTTP/1.1 metrics endpoint. start() binds and spawns the
/// accept loop; stop() (or destruction) joins it. Responses are
/// rendered per request, so the endpoint always reflects live state.
class MetricsServer {
public:
  MetricsServer() = default;
  ~MetricsServer() { stop(); }
  MetricsServer(const MetricsServer &) = delete;
  MetricsServer &operator=(const MetricsServer &) = delete;

  /// Binds 127.0.0.1:\p Port (Port 0 lets the kernel pick; see port())
  /// and starts serving. Returns false if the socket can't be set up —
  /// the caller decides whether that is fatal.
  bool start(uint16_t Port, ExtraFn Extra = nullptr);
  void stop();

  /// Mounts a GET endpoint at \p Path (e.g. "/quality"). \p Body is
  /// invoked per request on the serve thread; \p ContentType is sent
  /// verbatim. Must be called before start() — the handler table is
  /// read without locking once the serve loop runs. Registering "/"
  /// or "/metrics" overrides the built-in exposition.
  void registerHandler(std::string Path, std::string ContentType,
                       std::function<std::string()> Body);

  bool running() const { return Running.load(std::memory_order_acquire); }
  /// The bound port (useful with Port 0), 0 when not running.
  uint16_t port() const { return BoundPort; }
  uint64_t requestsServed() const {
    return Served.load(std::memory_order_relaxed);
  }

private:
  struct Endpoint {
    std::string Path;
    std::string ContentType;
    std::function<std::string()> Body;
  };

  void serveLoop();

  std::thread Thread;
  ExtraFn Extra;
  std::vector<Endpoint> Endpoints;
  std::atomic<bool> Running{false};
  std::atomic<bool> StopFlag{false};
  std::atomic<uint64_t> Served{0};
  int ListenFd = -1;
  uint16_t BoundPort = 0;
};

/// Periodic exposition-to-file writer. The file is rewritten in place
/// every interval and once more on stop(), so the last snapshot always
/// reflects the final state of the run.
class SnapshotWriter {
public:
  SnapshotWriter() = default;
  ~SnapshotWriter() { stop(); }
  SnapshotWriter(const SnapshotWriter &) = delete;
  SnapshotWriter &operator=(const SnapshotWriter &) = delete;

  /// Starts rewriting \p Path every \p IntervalSec (clamped to >= 50ms).
  void start(std::string Path, double IntervalSec, ExtraFn Extra = nullptr);
  void stop();

  uint64_t snapshotsWritten() const {
    return Written.load(std::memory_order_relaxed);
  }

private:
  void writeLoop(double IntervalSec);
  bool writeOnce();

  std::thread Thread;
  std::string Path;
  ExtraFn Extra;
  std::atomic<bool> Running{false};
  std::atomic<bool> StopFlag{false};
  std::atomic<uint64_t> Written{0};
};

} // namespace sepe::metrics

#endif // SEPE_SUPPORT_METRICS_EXPORTER_H
