//===- support/expected.h - Lightweight error-or-value type -----*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal Expected<T> in the spirit of llvm::Expected, used by the
/// regex parser and the synthesizer to report recoverable user errors
/// (malformed regexes, unsupported constructs) without exceptions.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_SUPPORT_EXPECTED_H
#define SEPE_SUPPORT_EXPECTED_H

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace sepe {

/// A recoverable error: a human-readable message plus the input position
/// it refers to (or npos when not applicable).
struct Error {
  std::string Message;
  size_t Pos = std::string::npos;

  static Error at(size_t Pos, std::string Message) {
    return Error{std::move(Message), Pos};
  }
};

/// Either a value of type T or an Error. Callers must test before
/// dereferencing.
template <typename T> class Expected {
public:
  Expected(T Value) : Storage(std::move(Value)) {}
  Expected(Error Err) : Storage(std::move(Err)) {}

  explicit operator bool() const { return std::holds_alternative<T>(Storage); }

  T &operator*() {
    assert(*this && "dereferencing an Expected in error state");
    return std::get<T>(Storage);
  }
  const T &operator*() const {
    assert(*this && "dereferencing an Expected in error state");
    return std::get<T>(Storage);
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }

  const Error &error() const {
    assert(!*this && "no error stored");
    return std::get<Error>(Storage);
  }

  /// Moves the value out; only valid in the success state.
  T take() {
    assert(*this && "taking from an Expected in error state");
    return std::move(std::get<T>(Storage));
  }

private:
  std::variant<T, Error> Storage;
};

} // namespace sepe

#endif // SEPE_SUPPORT_EXPECTED_H
