//===- support/resource_usage.h - Process resource reporting ---*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-process resource accounting for report footers: peak RSS and
/// user/system CPU time via getrusage(RUSAGE_SELF), plus wall clock
/// since static initialization (close enough to process start for a
/// report epilogue). Header-only; on platforms without <sys/resource.h>
/// the rusage fields read 0 and only wall time is reported.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_SUPPORT_RESOURCE_USAGE_H
#define SEPE_SUPPORT_RESOURCE_USAGE_H

#include <chrono>
#include <cstdio>
#include <string>

#if __has_include(<sys/resource.h>)
#define SEPE_HAVE_RUSAGE 1
#include <sys/resource.h>
#endif

namespace sepe {

namespace detail {
/// ODR-merged across TUs; initialized during static init of the first
/// TU that includes this header — i.e. at (or negligibly after)
/// process start.
inline const std::chrono::steady_clock::time_point ProcessStart =
    std::chrono::steady_clock::now();
} // namespace detail

struct ResourceUsage {
  double UserSec = 0;
  double SysSec = 0;
  double WallSec = 0;
  /// ru_maxrss: kilobytes on Linux; 0 when rusage is unavailable.
  long PeakRssKb = 0;

  static ResourceUsage sinceProcessStart() {
    ResourceUsage Usage;
    Usage.WallSec = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() -
                        detail::ProcessStart)
                        .count();
#if defined(SEPE_HAVE_RUSAGE)
    rusage Self{};
    if (getrusage(RUSAGE_SELF, &Self) == 0) {
      Usage.UserSec = static_cast<double>(Self.ru_utime.tv_sec) +
                      static_cast<double>(Self.ru_utime.tv_usec) * 1e-6;
      Usage.SysSec = static_cast<double>(Self.ru_stime.tv_sec) +
                     static_cast<double>(Self.ru_stime.tv_usec) * 1e-6;
      Usage.PeakRssKb = Self.ru_maxrss;
    }
#endif
    return Usage;
  }

  std::string toJson() const {
    char Buffer[160];
    std::snprintf(Buffer, sizeof(Buffer),
                  "{\"peak_rss_kb\":%ld,\"user_sec\":%.3f,"
                  "\"sys_sec\":%.3f,\"wall_sec\":%.3f}",
                  PeakRssKb, UserSec, SysSec, WallSec);
    return Buffer;
  }
};

} // namespace sepe

#endif // SEPE_SUPPORT_RESOURCE_USAGE_H
