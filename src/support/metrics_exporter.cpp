//===- support/metrics_exporter.cpp - Prometheus egress ------------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
//
// The HTTP side is deliberately primitive: one blocking listener
// polled with a short timeout so stop() is prompt, one request served
// at a time, request bytes read once. Only the request line's path is
// parsed — enough to route "/", "/metrics", and the registered
// endpoints, and to give everything else an honest 404. Still no event
// loop, no framework, and no failure modes beyond the socket calls
// themselves.
//
//===----------------------------------------------------------------------===//

#include "support/metrics_exporter.h"

#include "quality/live_stats.h"
#include "support/telemetry.h"
#include "support/trace.h"

#include <chrono>
#include <cstdio>
#include <string_view>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace sepe;

std::string metrics::renderPrometheus(const ExtraFn &Extra) {
  std::string Out = telemetry::toPrometheus();
  Out += "# TYPE sepe_trace_emitted counter\n";
  Out += "sepe_trace_emitted " + std::to_string(trace::emitted()) + "\n";
  Out += "# TYPE sepe_trace_dropped counter\n";
  Out += "sepe_trace_dropped " + std::to_string(trace::dropped()) + "\n";
  Out += "# TYPE sepe_trace_occupancy gauge\n";
  Out += "sepe_trace_occupancy " + std::to_string(trace::occupancy()) + "\n";
  Out += quality::liveStatsPrometheus();
  if (Extra)
    Out += Extra();
  return Out;
}

// --- MetricsServer ----------------------------------------------------------

bool metrics::MetricsServer::start(uint16_t Port, ExtraFn ExtraIn) {
  if (running())
    return false;

  const int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return false;
  const int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, 8) != 0) {
    ::close(Fd);
    return false;
  }

  socklen_t Len = sizeof(Addr);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len) == 0)
    BoundPort = ntohs(Addr.sin_port);
  else
    BoundPort = Port;

  ListenFd = Fd;
  Extra = std::move(ExtraIn);
  StopFlag.store(false, std::memory_order_release);
  Running.store(true, std::memory_order_release);
  Thread = std::thread([this] { serveLoop(); });
  return true;
}

void metrics::MetricsServer::registerHandler(
    std::string Path, std::string ContentType,
    std::function<std::string()> Body) {
  Endpoints.push_back({std::move(Path), std::move(ContentType),
                       std::move(Body)});
}

namespace {

/// Extracts the request path from "METHOD /path[?query] HTTP/1.x...".
/// Empty string when the request line does not parse.
std::string requestPath(const char *Buf, size_t Len) {
  const std::string_view Request(Buf, Len);
  const size_t FirstSpace = Request.find(' ');
  if (FirstSpace == std::string_view::npos)
    return "";
  const size_t PathEnd = Request.find_first_of(" \r\n", FirstSpace + 1);
  if (PathEnd == std::string_view::npos)
    return "";
  std::string_view Path =
      Request.substr(FirstSpace + 1, PathEnd - FirstSpace - 1);
  const size_t Query = Path.find('?');
  if (Query != std::string_view::npos)
    Path = Path.substr(0, Query);
  return std::string(Path);
}

} // namespace

void metrics::MetricsServer::serveLoop() {
  while (!StopFlag.load(std::memory_order_acquire)) {
    pollfd Pfd{ListenFd, POLLIN, 0};
    const int Ready = ::poll(&Pfd, 1, /*timeout_ms=*/200);
    if (Ready <= 0 || (Pfd.revents & POLLIN) == 0)
      continue;
    const int Client = ::accept(ListenFd, nullptr, nullptr);
    if (Client < 0)
      continue;

    // One read is enough for the request line; the headers behind it
    // never change the routing decision.
    char Buf[1024];
    const ssize_t Got = ::recv(Client, Buf, sizeof(Buf), 0);
    const std::string Path =
        Got > 0 ? requestPath(Buf, static_cast<size_t>(Got)) : "";

    std::string Status = "200 OK";
    std::string ContentType = "text/plain; version=0.0.4; charset=utf-8";
    std::string Body;
    const Endpoint *Mounted = nullptr;
    for (const Endpoint &E : Endpoints)
      if (E.Path == Path) {
        Mounted = &E;
        break;
      }
    if (Mounted != nullptr) {
      ContentType = Mounted->ContentType;
      Body = Mounted->Body ? Mounted->Body() : "";
    } else if (Path == "/" || Path == "/metrics") {
      Body = renderPrometheus(Extra);
    } else {
      Status = "404 Not Found";
      ContentType = "text/plain; charset=utf-8";
      Body = "404 not found: " + (Path.empty() ? "<bad request>" : Path) +
             "\nknown paths: /metrics";
      for (const Endpoint &E : Endpoints)
        Body += " " + E.Path;
      Body += "\n";
    }

    std::string Response = "HTTP/1.1 " + Status +
                           "\r\n"
                           "Content-Type: " +
                           ContentType +
                           "\r\n"
                           "Content-Length: " +
                           std::to_string(Body.size()) +
                           "\r\n"
                           "Connection: close\r\n\r\n" +
                           Body;
    size_t Off = 0;
    while (Off < Response.size()) {
      const ssize_t N =
          ::send(Client, Response.data() + Off, Response.size() - Off,
                 MSG_NOSIGNAL);
      if (N <= 0)
        break;
      Off += static_cast<size_t>(N);
    }
    ::close(Client);
    Served.fetch_add(1, std::memory_order_relaxed);
  }
}

void metrics::MetricsServer::stop() {
  if (!running())
    return;
  StopFlag.store(true, std::memory_order_release);
  if (Thread.joinable())
    Thread.join();
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  BoundPort = 0;
  Running.store(false, std::memory_order_release);
}

// --- SnapshotWriter ---------------------------------------------------------

void metrics::SnapshotWriter::start(std::string PathIn, double IntervalSec,
                                    ExtraFn ExtraIn) {
  if (Running.load(std::memory_order_acquire))
    return;
  Path = std::move(PathIn);
  Extra = std::move(ExtraIn);
  StopFlag.store(false, std::memory_order_release);
  Running.store(true, std::memory_order_release);
  Thread = std::thread([this, IntervalSec] { writeLoop(IntervalSec); });
}

bool metrics::SnapshotWriter::writeOnce() {
  const std::string Body = renderPrometheus(Extra);
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (F == nullptr)
    return false;
  const bool Wrote = std::fwrite(Body.data(), 1, Body.size(), F) ==
                     Body.size();
  const bool Ok = (std::fclose(F) == 0) && Wrote;
  if (Ok)
    Written.fetch_add(1, std::memory_order_relaxed);
  return Ok;
}

void metrics::SnapshotWriter::writeLoop(double IntervalSec) {
  using namespace std::chrono;
  const auto Interval =
      duration_cast<steady_clock::duration>(duration<double>(
          IntervalSec < 0.05 ? 0.05 : IntervalSec));
  auto Next = steady_clock::now() + Interval;
  while (!StopFlag.load(std::memory_order_acquire)) {
    // Sleep in short slices so stop() never waits a full interval.
    std::this_thread::sleep_for(milliseconds(20));
    if (steady_clock::now() < Next)
      continue;
    (void)writeOnce();
    Next = steady_clock::now() + Interval;
  }
}

void metrics::SnapshotWriter::stop() {
  if (!Running.load(std::memory_order_acquire))
    return;
  StopFlag.store(true, std::memory_order_release);
  if (Thread.joinable())
    Thread.join();
  (void)writeOnce(); // final snapshot reflects end-of-run state
  Running.store(false, std::memory_order_release);
}
