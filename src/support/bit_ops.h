//===- support/bit_ops.h - Low-level bit utilities --------------*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Endian-safe unaligned loads, parallel bit extraction (hardware pext when
/// compiled for BMI2 plus a bit-exact software fallback), and 128-bit
/// multiply folding. Every synthesized hash function bottoms out in these
/// primitives.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_SUPPORT_BIT_OPS_H
#define SEPE_SUPPORT_BIT_OPS_H

#include <bit>
#include <cassert>
#include <cstdint>
#include <cstring>

#if defined(SEPE_HAVE_BMI2)
#include <immintrin.h>
#endif

namespace sepe {

/// Loads a 64-bit little-endian word from \p Ptr without alignment
/// requirements.
inline uint64_t loadU64Le(const void *Ptr) {
  uint64_t Value;
  std::memcpy(&Value, Ptr, sizeof(Value));
  if constexpr (std::endian::native == std::endian::big)
    Value = __builtin_bswap64(Value);
  return Value;
}

/// Loads a 32-bit little-endian word from \p Ptr.
inline uint32_t loadU32Le(const void *Ptr) {
  uint32_t Value;
  std::memcpy(&Value, Ptr, sizeof(Value));
  if constexpr (std::endian::native == std::endian::big)
    Value = __builtin_bswap32(Value);
  return Value;
}

/// Loads the \p Len least significant bytes (0 <= Len <= 8) starting at
/// \p Ptr, zero-extending the rest. Mirrors libstdc++'s load_bytes helper.
inline uint64_t loadBytesLe(const void *Ptr, size_t Len) {
  assert(Len <= 8 && "loadBytesLe only handles up to one machine word");
  uint64_t Value = 0;
  const auto *Bytes = static_cast<const unsigned char *>(Ptr);
  for (size_t I = 0; I != Len; ++I)
    Value |= static_cast<uint64_t>(Bytes[I]) << (8 * I);
  return Value;
}

/// Software parallel bit extraction with the exact semantics of x86's
/// pext instruction (Figure 11 of the paper): every bit of \p Src selected
/// by \p Mask is compressed into the contiguous low-order bits of the
/// result.
inline uint64_t pextSoft(uint64_t Src, uint64_t Mask) {
  uint64_t Result = 0;
  for (unsigned K = 0; Mask != 0; Mask &= Mask - 1, ++K) {
    const uint64_t LowBit = Mask & -Mask;
    if (Src & LowBit)
      Result |= uint64_t{1} << K;
  }
  return Result;
}

/// Hardware pext when available; falls back to the software routine.
inline uint64_t pextHw(uint64_t Src, uint64_t Mask) {
#if defined(SEPE_HAVE_BMI2)
  return _pext_u64(Src, Mask);
#else
  return pextSoft(Src, Mask);
#endif
}

/// True when this binary was compiled with BMI2 enabled, i.e. pextHw maps
/// onto a single instruction.
constexpr bool hasHardwarePext() {
#if defined(SEPE_HAVE_BMI2)
  return true;
#else
  return false;
#endif
}

/// A precompiled shift-mask compaction network with the exact semantics
/// of pext(Src, Mask): Hacker's Delight's compress (7-4), split into a
/// per-mask compile step and a cheap apply step. Compiling costs ~60
/// scalar ops; applying costs at most six rounds of and/xor/or/shift —
/// branch-free, data-independent, and therefore directly liftable onto
/// 64-bit SIMD lanes. The executor's AVX2 wide kernels apply one
/// network per plan step across four keys per register, and the
/// software-pext batch kernels use the scalar apply to replace the
/// bit-at-a-time pextSoft loop on the hot path (the masks of a plan are
/// fixed, so the compile step amortizes over the whole batch).
struct PextNetwork {
  /// Bits still selected before each round; Round I moves the bits in
  /// Move[I] right by 1 << I.
  uint64_t Move[6] = {0, 0, 0, 0, 0, 0};
  /// The original extraction mask.
  uint64_t SourceMask = 0;
  /// Number of leading non-identity rounds; trailing rounds with
  /// Move[I] == 0 are dropped at compile time.
  int Rounds = 0;

  static PextNetwork compile(uint64_t Mask) {
    PextNetwork Net;
    Net.SourceMask = Mask;
    uint64_t M = Mask;
    uint64_t Mk = ~M << 1; // Bits to the left of each selected bit.
    for (int I = 0; I != 6; ++I) {
      // Parallel prefix (xor) of Mk: Mp identifies the selected bits
      // that must move in this round.
      uint64_t Mp = Mk ^ (Mk << 1);
      Mp ^= Mp << 2;
      Mp ^= Mp << 4;
      Mp ^= Mp << 8;
      Mp ^= Mp << 16;
      Mp ^= Mp << 32;
      const uint64_t Mv = Mp & M;
      Net.Move[I] = Mv;
      if (Mv != 0)
        Net.Rounds = I + 1;
      M = (M ^ Mv) | (Mv >> (1u << I));
      Mk &= ~Mp;
    }
    return Net;
  }

  /// Bit-identical to pextSoft(Src, SourceMask).
  uint64_t apply(uint64_t Src) const {
    uint64_t X = Src & SourceMask;
    for (int I = 0; I != Rounds; ++I) {
      const uint64_t T = X & Move[I];
      X = (X ^ T) | (T >> (1u << I));
    }
    return X;
  }
};

/// Lane-wise parallel bit extraction: compresses eight independent
/// 16-bit lanes at once, Out[L] = pext(Src[L], Mask[L]) packed at each
/// lane's bottom. This is the portable, bit-exact reference for one
/// 128-bit register's worth of lanes in the wide kernels' shift-mask
/// compaction, shared by the tests that pin the vector path down and by
/// anything that wants sub-word compaction without a full 64-bit
/// network per lane.
inline void pext16x8(const uint16_t Src[8], const uint16_t Mask[8],
                     uint16_t Out[8]) {
  for (int L = 0; L != 8; ++L)
    Out[L] = static_cast<uint16_t>(pextSoft(Src[L], Mask[L]));
}

/// Software parallel bit deposit (inverse of pext); used by tests to prove
/// that Pext plans are bijections.
inline uint64_t pdepSoft(uint64_t Src, uint64_t Mask) {
  uint64_t Result = 0;
  for (unsigned K = 0; Mask != 0; Mask &= Mask - 1, ++K) {
    const uint64_t LowBit = Mask & -Mask;
    if (Src & (uint64_t{1} << K))
      Result |= LowBit;
  }
  return Result;
}

/// 128-bit multiply returning (low, high); the mixing primitive of
/// wyhash-style hashes such as Abseil's LowLevelHash.
inline void mul128(uint64_t A, uint64_t B, uint64_t &Lo, uint64_t &Hi) {
  const unsigned __int128 Product =
      static_cast<unsigned __int128>(A) * static_cast<unsigned __int128>(B);
  Lo = static_cast<uint64_t>(Product);
  Hi = static_cast<uint64_t>(Product >> 64);
}

/// Folds a 128-bit product into 64 bits by xoring its halves.
inline uint64_t mulFold(uint64_t A, uint64_t B) {
  uint64_t Lo, Hi;
  mul128(A, B, Lo, Hi);
  return Lo ^ Hi;
}

/// Rotates \p Value right by \p Shift bits.
inline uint64_t rotr64(uint64_t Value, unsigned Shift) {
  return std::rotr(Value, static_cast<int>(Shift));
}

/// Hints the cache hierarchy to pull the line holding \p Ptr for a
/// read. Batch lookup loops issue these a pass ahead of the dependent
/// loads so out-of-cache tables overlap their misses.
inline void prefetchRead(const void *Ptr) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(Ptr, /*rw=*/0, /*locality=*/1);
#else
  (void)Ptr;
#endif
}

} // namespace sepe

#endif // SEPE_SUPPORT_BIT_OPS_H
