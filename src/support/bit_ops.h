//===- support/bit_ops.h - Low-level bit utilities --------------*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Endian-safe unaligned loads, parallel bit extraction (hardware pext when
/// compiled for BMI2 plus a bit-exact software fallback), and 128-bit
/// multiply folding. Every synthesized hash function bottoms out in these
/// primitives.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_SUPPORT_BIT_OPS_H
#define SEPE_SUPPORT_BIT_OPS_H

#include <bit>
#include <cassert>
#include <cstdint>
#include <cstring>

#if defined(SEPE_HAVE_BMI2)
#include <immintrin.h>
#endif

namespace sepe {

/// Loads a 64-bit little-endian word from \p Ptr without alignment
/// requirements.
inline uint64_t loadU64Le(const void *Ptr) {
  uint64_t Value;
  std::memcpy(&Value, Ptr, sizeof(Value));
  if constexpr (std::endian::native == std::endian::big)
    Value = __builtin_bswap64(Value);
  return Value;
}

/// Loads a 32-bit little-endian word from \p Ptr.
inline uint32_t loadU32Le(const void *Ptr) {
  uint32_t Value;
  std::memcpy(&Value, Ptr, sizeof(Value));
  if constexpr (std::endian::native == std::endian::big)
    Value = __builtin_bswap32(Value);
  return Value;
}

/// Loads the \p Len least significant bytes (0 <= Len <= 8) starting at
/// \p Ptr, zero-extending the rest. Mirrors libstdc++'s load_bytes helper.
inline uint64_t loadBytesLe(const void *Ptr, size_t Len) {
  assert(Len <= 8 && "loadBytesLe only handles up to one machine word");
  uint64_t Value = 0;
  const auto *Bytes = static_cast<const unsigned char *>(Ptr);
  for (size_t I = 0; I != Len; ++I)
    Value |= static_cast<uint64_t>(Bytes[I]) << (8 * I);
  return Value;
}

/// Software parallel bit extraction with the exact semantics of x86's
/// pext instruction (Figure 11 of the paper): every bit of \p Src selected
/// by \p Mask is compressed into the contiguous low-order bits of the
/// result.
inline uint64_t pextSoft(uint64_t Src, uint64_t Mask) {
  uint64_t Result = 0;
  for (unsigned K = 0; Mask != 0; Mask &= Mask - 1, ++K) {
    const uint64_t LowBit = Mask & -Mask;
    if (Src & LowBit)
      Result |= uint64_t{1} << K;
  }
  return Result;
}

/// Hardware pext when available; falls back to the software routine.
inline uint64_t pextHw(uint64_t Src, uint64_t Mask) {
#if defined(SEPE_HAVE_BMI2)
  return _pext_u64(Src, Mask);
#else
  return pextSoft(Src, Mask);
#endif
}

/// True when this binary was compiled with BMI2 enabled, i.e. pextHw maps
/// onto a single instruction.
constexpr bool hasHardwarePext() {
#if defined(SEPE_HAVE_BMI2)
  return true;
#else
  return false;
#endif
}

/// Software parallel bit deposit (inverse of pext); used by tests to prove
/// that Pext plans are bijections.
inline uint64_t pdepSoft(uint64_t Src, uint64_t Mask) {
  uint64_t Result = 0;
  for (unsigned K = 0; Mask != 0; Mask &= Mask - 1, ++K) {
    const uint64_t LowBit = Mask & -Mask;
    if (Src & (uint64_t{1} << K))
      Result |= LowBit;
  }
  return Result;
}

/// 128-bit multiply returning (low, high); the mixing primitive of
/// wyhash-style hashes such as Abseil's LowLevelHash.
inline void mul128(uint64_t A, uint64_t B, uint64_t &Lo, uint64_t &Hi) {
  const unsigned __int128 Product =
      static_cast<unsigned __int128>(A) * static_cast<unsigned __int128>(B);
  Lo = static_cast<uint64_t>(Product);
  Hi = static_cast<uint64_t>(Product >> 64);
}

/// Folds a 128-bit product into 64 bits by xoring its halves.
inline uint64_t mulFold(uint64_t A, uint64_t B) {
  uint64_t Lo, Hi;
  mul128(A, B, Lo, Hi);
  return Lo ^ Hi;
}

/// Rotates \p Value right by \p Shift bits.
inline uint64_t rotr64(uint64_t Value, unsigned Shift) {
  return std::rotr(Value, static_cast<int>(Shift));
}

} // namespace sepe

#endif // SEPE_SUPPORT_BIT_OPS_H
