//===- support/unreachable.h - Unreachable-path annotation ------*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// sepe::unreachable marks control paths that are impossible by
/// construction (exhaustive switches over enums, validated invariants).
/// Builds with assertions abort loudly with the message; NDEBUG builds
/// tell the optimizer the path is dead instead of silently falling
/// through to a wrong-but-plausible default such as hashing with the
/// wrong function.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_SUPPORT_UNREACHABLE_H
#define SEPE_SUPPORT_UNREACHABLE_H

#ifndef NDEBUG
#include <cstdio>
#include <cstdlib>
#endif

namespace sepe {

[[noreturn]] inline void unreachable(const char *Msg) {
#ifndef NDEBUG
  std::fprintf(stderr, "unreachable executed: %s\n", Msg);
  std::abort();
#else
  __builtin_unreachable();
#endif
}

} // namespace sepe

#endif // SEPE_SUPPORT_UNREACHABLE_H
