//===- support/batch.h - Many-keys-per-call hashing adapter -----*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Uniform batch entry point over every hasher in the project. Hashers
/// that implement a native
///
///   void hashBatch(const std::string_view *Keys, uint64_t *Out,
///                  size_t N) const
///
/// member (the synthesized executor's fused kernels, the interleaved
/// FNV/Murmur/Gperf specializations) are dispatched to it directly;
/// everything else gets the loop-over-single fallback, so callers can
/// hash through one interface without caring which hashers have been
/// specialized yet. The batch contract is always the same: Out[i] ==
/// Hasher(Keys[i]) bit-for-bit, for every i < N.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_SUPPORT_BATCH_H
#define SEPE_SUPPORT_BATCH_H

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sepe {

/// True for hashers carrying a native many-keys-per-call kernel.
template <typename Hasher>
concept HasNativeBatch = requires(const Hasher &H,
                                  const std::string_view *Keys,
                                  uint64_t *Out, size_t N) {
  { H.hashBatch(Keys, Out, N) };
};

/// Hashes \p N keys in one call: Out[i] = H(Keys[i]). Uses the hasher's
/// native batch kernel when it has one, a per-key loop otherwise.
template <typename Hasher>
inline void hashBatch(const Hasher &H, const std::string_view *Keys,
                      uint64_t *Out, size_t N) {
  if constexpr (HasNativeBatch<Hasher>) {
    H.hashBatch(Keys, Out, N);
  } else {
    for (size_t I = 0; I != N; ++I)
      Out[I] = static_cast<uint64_t>(H(Keys[I]));
  }
}

/// True for hashers that report which batch kernel family they resolved
/// to (the synthesized executor's dispatch ladder).
template <typename Hasher>
concept ReportsBatchPath = requires(const Hasher &H) {
  { H.batchPathName() } -> std::convertible_to<const char *>;
};

/// The batch kernel family hashBatch(H, ...) runs for \p H, as the
/// lower-case name the benchmarks record: hashers that expose the
/// executor's resolved path report it; other native batch kernels (the
/// interleaved FNV/Murmur/Gperf specializations) are "interleaved"; the
/// loop-over-single fallback is "scalar".
template <typename Hasher> inline const char *batchPathOf(const Hasher &H) {
  if constexpr (ReportsBatchPath<Hasher>)
    return H.batchPathName();
  else if constexpr (HasNativeBatch<Hasher>)
    return "interleaved";
  else
    return "scalar";
}

} // namespace sepe

#endif // SEPE_SUPPORT_BATCH_H
