//===- support/telemetry.h - Zero-overhead-when-off metrics ----*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability substrate: atomic counters, fixed-bucket log2
/// histograms, and RAII scoped timers, all reachable by name through a
/// process-wide registry that serializes to JSON. Instrumentation sites
/// use the SEPE_COUNT / SEPE_RECORD / SEPE_SPAN macros, which cache the
/// registry lookup in a function-local static so the steady-state cost
/// of a hot-path metric is one relaxed atomic op.
///
/// Two gates, by design:
///
///   - compile time: without -DSEPE_TELEMETRY the macros expand to
///     nothing and the metric types become empty shims, so every call
///     site compiles to zero instructions — the default for release
///     builds and the reason the batch kernels can be instrumented at
///     all;
///   - runtime: with telemetry compiled in, recording is further gated
///     on an atomic enabled flag (off unless setEnabled(true) is called
///     or SEPE_TELEMETRY_ENABLED is set in the environment), so an
///     instrumented binary pays one predictable branch per site until a
///     caller asks for metrics.
///
/// Registered metrics live for the process lifetime; resetAll() zeroes
/// values but never unregisters, so cached references stay valid.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_SUPPORT_TELEMETRY_H
#define SEPE_SUPPORT_TELEMETRY_H

#include <cstdint>
#include <string>

#if defined(SEPE_TELEMETRY)
#include <atomic>
#include <bit>
#include <chrono>
#endif

namespace sepe::telemetry {

/// True when the library was built with -DSEPE_TELEMETRY; lets tests
/// and tools branch on whether recorded values can be non-zero.
bool compiledIn();

/// Serializes every registered metric to one JSON object (see
/// DESIGN.md "Observability" for the schema). Always valid JSON — a
/// compiled-out build reports {"compiled_in": false, ...} with empty
/// sections, so BENCH_*.json embedding never needs to special-case.
std::string toJson();

/// Zeroes every registered counter, histogram, and span in place.
void resetAll();

/// Serializes every registered metric in Prometheus text-exposition
/// format (counters as `counter`, histograms and spans as `summary`
/// with p50/p90/p99/p99.9 quantile lines estimated from the log2
/// buckets; span names get an `_ns` unit suffix). Metric names are
/// sanitized to [a-zA-Z0-9_:] and prefixed `sepe_`. A compiled-out
/// build emits only a comment line, so scrapers see a valid page
/// either way.
std::string toPrometheus();

#if defined(SEPE_TELEMETRY)

namespace detail {
/// The runtime gate. Out-of-line initialization (telemetry.cpp) seeds
/// it from the SEPE_TELEMETRY_ENABLED environment variable.
extern std::atomic<bool> EnabledFlag;
} // namespace detail

inline bool enabled() {
  return detail::EnabledFlag.load(std::memory_order_relaxed);
}
void setEnabled(bool On);

/// Monotonic event count. Thread-safe; relaxed ordering is enough since
/// metrics are only read at serialization points.
class Counter {
public:
  void add(uint64_t N = 1) {
    if (enabled())
      Value.fetch_add(N, std::memory_order_relaxed);
  }
  uint64_t value() const { return Value.load(std::memory_order_relaxed); }
  void reset() { Value.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> Value{0};
};

/// Fixed-bucket log2 histogram of uint64 samples: bucket 0 holds the
/// value 0, bucket i (i >= 1) the range [2^(i-1), 2^i). 65 buckets
/// cover the full domain, so record() never clamps and never allocates.
class Histogram {
public:
  static constexpr size_t NumBuckets = 65;

  static size_t bucketOf(uint64_t V) {
    return static_cast<size_t>(std::bit_width(V));
  }

  /// Lowest value bucket \p I can hold (the inclusive bucket floor).
  static uint64_t bucketFloor(size_t I) {
    return I == 0 ? 0 : uint64_t{1} << (I - 1);
  }

  void record(uint64_t V) {
    if (!enabled())
      return;
    Buckets[bucketOf(V)].fetch_add(1, std::memory_order_relaxed);
    Count.fetch_add(1, std::memory_order_relaxed);
    Sum.fetch_add(V, std::memory_order_relaxed);
    uint64_t Prev = Max.load(std::memory_order_relaxed);
    while (V > Prev &&
           !Max.compare_exchange_weak(Prev, V, std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  uint64_t max() const { return Max.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t I) const {
    return Buckets[I].load(std::memory_order_relaxed);
  }

  /// Estimated \p Q-quantile (Q in [0, 1]) from the log2 layout: walk
  /// the buckets until the cumulative count crosses Q*count, then
  /// interpolate linearly inside that bucket's [floor, next-floor)
  /// range, clamped to the observed max. An estimate — exact only at
  /// bucket boundaries — but monotone in Q and never outside
  /// [0, max()], which is all the exporters need.
  double percentile(double Q) const {
    const uint64_t N = count();
    if (N == 0)
      return 0.0;
    Q = Q < 0.0 ? 0.0 : (Q > 1.0 ? 1.0 : Q);
    const double Target = Q * static_cast<double>(N);
    const double M = static_cast<double>(max());
    double Cum = 0.0;
    for (size_t I = 0; I != NumBuckets; ++I) {
      const uint64_t B = bucket(I);
      if (B == 0)
        continue;
      Cum += static_cast<double>(B);
      if (Cum < Target)
        continue;
      const double Lo = static_cast<double>(bucketFloor(I));
      double Hi = I + 1 == NumBuckets ? M
                                      : static_cast<double>(bucketFloor(I + 1));
      if (Hi > M)
        Hi = M; // the top bucket ends at the observed max
      if (Hi < Lo)
        Hi = Lo;
      double Frac = (Target - (Cum - static_cast<double>(B))) /
                    static_cast<double>(B);
      Frac = Frac < 0.0 ? 0.0 : (Frac > 1.0 ? 1.0 : Frac);
      return Lo + Frac * (Hi - Lo);
    }
    return M;
  }

  void reset() {
    for (std::atomic<uint64_t> &B : Buckets)
      B.store(0, std::memory_order_relaxed);
    Count.store(0, std::memory_order_relaxed);
    Sum.store(0, std::memory_order_relaxed);
    Max.store(0, std::memory_order_relaxed);
  }

private:
  std::atomic<uint64_t> Buckets[NumBuckets]{};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Max{0};
};

/// Times a scope and records the elapsed nanoseconds into a span
/// histogram on destruction. When telemetry is runtime-disabled the
/// clock is never read.
class ScopedTimer {
public:
  explicit ScopedTimer(Histogram &Span)
      : Span(enabled() ? &Span : nullptr) {
    if (this->Span)
      Start = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (Span)
      Span->record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - Start)
              .count()));
  }
  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

private:
  Histogram *Span;
  std::chrono::steady_clock::time_point Start;
};

/// Registry lookups: return the metric registered under \p Name,
/// creating it on first use. References are stable for the process
/// lifetime. Names are dotted lowercase paths ("layer.object.event").
Counter &counter(const char *Name);
Histogram &histogram(const char *Name);
/// Like histogram() but serialized under "spans" with ns units.
Histogram &span(const char *Name);

#else // !SEPE_TELEMETRY

// Compiled-out shims: same API surface so non-macro callers (tests,
// tools) build unchanged; every member is an empty inline the optimizer
// deletes.

inline bool enabled() { return false; }
inline void setEnabled(bool) {}

class Counter {
public:
  void add(uint64_t = 1) {}
  uint64_t value() const { return 0; }
  void reset() {}
};

class Histogram {
public:
  static constexpr size_t NumBuckets = 65;
  static size_t bucketOf(uint64_t) { return 0; }
  static uint64_t bucketFloor(size_t) { return 0; }
  void record(uint64_t) {}
  uint64_t count() const { return 0; }
  uint64_t sum() const { return 0; }
  uint64_t max() const { return 0; }
  uint64_t bucket(size_t) const { return 0; }
  double percentile(double) const { return 0.0; }
  void reset() {}
};

class ScopedTimer {
public:
  explicit ScopedTimer(Histogram &) {}
  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;
};

inline Counter &counter(const char *) {
  static Counter Dummy;
  return Dummy;
}
inline Histogram &histogram(const char *) {
  static Histogram Dummy;
  return Dummy;
}
inline Histogram &span(const char *) {
  static Histogram Dummy;
  return Dummy;
}

#endif // SEPE_TELEMETRY

} // namespace sepe::telemetry

// --- Instrumentation-site macros -------------------------------------------
//
// NAME must be a string literal (it is the registry key and is cached in
// a function-local static on first execution). In compiled-out builds
// every macro expands to nothing; SEPE_TELEMETRY_ONLY(...) guards the
// occasional helper statement (a probe-length local, say) that only
// exists to feed a metric.

#if defined(SEPE_TELEMETRY)

#define SEPE_TELEMETRY_CAT2(A, B) A##B
#define SEPE_TELEMETRY_CAT(A, B) SEPE_TELEMETRY_CAT2(A, B)

#define SEPE_COUNT_N(NAME, N)                                               \
  do {                                                                      \
    static ::sepe::telemetry::Counter &SepeTelemetrySiteCounter =           \
        ::sepe::telemetry::counter(NAME);                                   \
    SepeTelemetrySiteCounter.add(N);                                        \
  } while (0)
#define SEPE_COUNT(NAME) SEPE_COUNT_N(NAME, 1)

#define SEPE_RECORD(NAME, V)                                                \
  do {                                                                      \
    static ::sepe::telemetry::Histogram &SepeTelemetrySiteHistogram =       \
        ::sepe::telemetry::histogram(NAME);                                 \
    SepeTelemetrySiteHistogram.record(V);                                   \
  } while (0)

#define SEPE_SPAN(NAME)                                                     \
  static ::sepe::telemetry::Histogram &SEPE_TELEMETRY_CAT(                  \
      SepeTelemetrySiteSpan, __LINE__) = ::sepe::telemetry::span(NAME);     \
  ::sepe::telemetry::ScopedTimer SEPE_TELEMETRY_CAT(SepeTelemetrySiteTimer, \
                                                    __LINE__)(              \
      SEPE_TELEMETRY_CAT(SepeTelemetrySiteSpan, __LINE__))

#define SEPE_TELEMETRY_ONLY(...) __VA_ARGS__

#else // !SEPE_TELEMETRY

#define SEPE_COUNT_N(NAME, N)                                               \
  do {                                                                      \
  } while (0)
#define SEPE_COUNT(NAME)                                                    \
  do {                                                                      \
  } while (0)
#define SEPE_RECORD(NAME, V)                                                \
  do {                                                                      \
  } while (0)
#define SEPE_SPAN(NAME)                                                     \
  do {                                                                      \
  } while (0)
#define SEPE_TELEMETRY_ONLY(...)

#endif // SEPE_TELEMETRY

#endif // SEPE_SUPPORT_TELEMETRY_H
