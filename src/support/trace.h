//===- support/trace.h - Lock-free flight recorder --------------*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tracing plane: a per-thread ring-buffer flight recorder for the
/// adaptive runtime's control-plane events. Where telemetry.h answers
/// "how many / how long on aggregate", this layer answers "what
/// happened, in what order, on which thread" — each event carries a
/// monotonic timestamp, the emitting thread, an event kind, the plan
/// generation it concerns, and (for spans) a duration, so a drift trip
/// can be causally followed through re-synthesis, hot swap, shard
/// migration, and JIT code retirement across threads.
///
/// The gate design mirrors telemetry.h exactly:
///
///   - compile time: without -DSEPE_TRACE the SEPE_TRACE_* macros drop
///     their arguments unexpanded and every API becomes an empty inline
///     shim, so instrumented hot paths (dual writes, guard rejections)
///     compile to zero instructions;
///   - runtime: with tracing compiled in, emission is gated on an
///     atomic enabled flag (off unless setEnabled(true) is called or
///     SEPE_TRACE_ENABLED is set in the environment), so an
///     instrumented binary pays one relaxed load + predictable branch
///     per site until a caller asks for a trace.
///
/// Memory is bounded: each thread owns a fixed-capacity ring
/// (setRingCapacity, default 8192 events) and a writer that catches up
/// to the read cursor overwrites the OLDEST unread event and counts the
/// drop — the recorder never blocks and never allocates on the emit
/// path after the ring exists. Rings are seqlock-guarded slots of
/// relaxed atomics, so concurrent drain() is race-free (TSan-clean):
/// the drain merges every thread's unread events into one
/// timestamp-ordered vector and consumes them. Torn slots (overwritten
/// mid-read) are detected by the sequence word and skipped — a skipped
/// slot counts as dropped, never as a corrupt event.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_SUPPORT_TRACE_H
#define SEPE_SUPPORT_TRACE_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#if defined(SEPE_TRACE)
#include <atomic>
#endif

namespace sepe::trace {

/// What happened. The numeric value is stable within a build only; the
/// exported name (eventKindName) is the schema. Kinds marked (span)
/// are emitted with a duration by trace::Span; the rest are instants.
enum class EventKind : uint16_t {
  DriftTripped = 0, ///< DriftDetector window closed over threshold
                    ///  (arg = miss ratio in ppm).
  DriftReset,       ///< Detector state cleared after a swap.
  SamplerSnapshot,  ///< KeySampler reservoir copied (arg = sample count).
  SamplerDrain,     ///< KeySampler reservoir consumed (arg = sample count).
  ResynthJob,       ///< (span) One queued job on the resynthesizer worker.
  ResynthAttempt,   ///< (span) performResynthesis body (arg = outcome,
                    ///  see ResynthOutcome).
  SwapPublish,      ///< New generation published (gen = new epoch).
  PlanRetired,      ///< Old generation moved to the retire list
                    ///  (gen = retired epoch).
  MigrateShards,    ///< (span) Whole-table migration (gen = new epoch,
                    ///  arg = entries copied).
  ShardSeal,        ///< One shard sealed for dual-write (arg = shard).
  ShardCopy,        ///< (span) One shard re-hashed into the successor
                    ///  (arg = shard).
  MigratePublish,   ///< Successor table swapped in (gen = new epoch).
  DualWrite,        ///< Sealed-shard mutation replayed into successor.
  GuardReject,      ///< Guarded probe refused a non-conforming key.
  LaneCreate,       ///< ServingTable built a fast lane (gen = epoch).
  SpillSweep,       ///< (span) Spill lane swept back into the fast lane
                    ///  (arg = entries moved).
  JitCompile,       ///< (span) Machine code emitted (arg = code bytes).
  JitRegister,      ///< Compiled program attached to an executor
                    ///  (arg = code bytes).
  JitRetire,        ///< Program destroyed, code unmapped (arg = code
                    ///  bytes).
  QualitySample,    ///< Live quality monitor pumped (gen = plan epoch,
                    ///  arg = occupancy skew x1000).
  StaticSeal,       ///< ServingTable sealed a static MPHF lane
                    ///  (gen = keys sealed).
  NumKinds
};

/// Outcome codes carried in the ResynthAttempt arg.
enum class ResynthOutcome : uint64_t {
  Swapped = 0,
  SkippedCooldown,
  SkippedFewSamples,
  SkippedUnchanged,
  SynthesisFailed,
};

/// Dotted schema name for \p K ("adaptive.drift.tripped", ...). Stable
/// across builds; also the Chrome-trace event name.
const char *eventKindName(EventKind K);

/// One drained event. TimeNs is nanoseconds since an arbitrary
/// process-local monotonic epoch; for spans it is the START of the
/// scope and DurNs its length (instants carry DurNs == 0).
struct Event {
  uint64_t TimeNs = 0;
  uint64_t DurNs = 0;
  uint64_t Gen = 0;
  uint64_t Arg = 0;
  uint32_t Tid = 0;
  EventKind Kind = EventKind::NumKinds;
  bool IsSpan = false;
};

/// True when the library was built with -DSEPE_TRACE.
bool compiledIn();

/// Merges every thread's unread events into timestamp order and
/// consumes them (a second drain returns only newer events). Safe to
/// call concurrently with emitters and with other drains.
std::vector<Event> drain();

/// Total events successfully recorded since process start.
uint64_t emitted();
/// Events lost to ring wrap (drop-oldest) or torn-slot skips.
uint64_t dropped();
/// Events currently buffered across all rings, awaiting drain.
uint64_t occupancy();

/// Ring size (events per thread) for rings created AFTER the call;
/// existing rings keep their capacity. Rounded up to a power of two,
/// minimum 8. Intended for tests; the default is 8192.
void setRingCapacity(size_t Events);

/// Drains the recorder and writes Chrome tracing / Perfetto JSON
/// ({"traceEvents":[...]}, "ph":"X" complete events for spans,
/// "ph":"i" instants, ts/dur in microseconds relative to the first
/// event). Always writes a valid document — a compiled-out or empty
/// recorder yields an empty traceEvents array. Returns false only on
/// I/O failure.
bool writeChromeTrace(const std::string &Path);

#if defined(SEPE_TRACE)

namespace detail {
/// The runtime gate, seeded from SEPE_TRACE_ENABLED (trace.cpp).
extern std::atomic<bool> EnabledFlag;
uint64_t nowNs();
void emitImpl(EventKind K, uint64_t Gen, uint64_t Arg);
void emitSpanImpl(EventKind K, uint64_t StartNs, uint64_t DurNs,
                  uint64_t Gen, uint64_t Arg);
} // namespace detail

inline bool enabled() {
  return detail::EnabledFlag.load(std::memory_order_relaxed);
}
void setEnabled(bool On);

/// Records an instant event on the calling thread's ring. The disabled
/// path is one relaxed load and a branch; the clock is never read.
inline void emit(EventKind K, uint64_t Gen = 0, uint64_t Arg = 0) {
  if (enabled())
    detail::emitImpl(K, Gen, Arg);
}

/// RAII duration event: stamps the start on construction, emits on
/// destruction with the elapsed time. setArg/setGen let the scope
/// attach results discovered mid-flight (entries copied, code bytes,
/// the epoch a resynthesis ended up publishing). Inactive — no clock
/// reads, no emission — when tracing is disabled at construction.
class Span {
public:
  explicit Span(EventKind K, uint64_t Gen = 0)
      : Kind(K), Gen(Gen), Active(enabled()) {
    if (Active)
      StartNs = detail::nowNs();
  }
  ~Span() {
    if (Active)
      detail::emitSpanImpl(Kind, StartNs, detail::nowNs() - StartNs, Gen,
                           Arg);
  }
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  void setArg(uint64_t A) { Arg = A; }
  void setGen(uint64_t G) { Gen = G; }

private:
  EventKind Kind;
  uint64_t Gen;
  uint64_t Arg = 0;
  uint64_t StartNs = 0;
  bool Active;
};

#else // !SEPE_TRACE

// Compiled-out shims: same API surface so non-macro callers (tools,
// tests) build unchanged; every member is an empty inline the
// optimizer deletes.

inline bool enabled() { return false; }
inline void setEnabled(bool) {}
inline void emit(EventKind, uint64_t = 0, uint64_t = 0) {}

class Span {
public:
  Span() = default;
  explicit Span(EventKind, uint64_t = 0) {}
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;
  void setArg(uint64_t) {}
  void setGen(uint64_t) {}
};

#endif // SEPE_TRACE

} // namespace sepe::trace

// --- Instrumentation-site macros -------------------------------------------
//
// KIND is a bare EventKind enumerator name. In compiled-out builds the
// macros drop GEN/ARG unexpanded — the expressions are never evaluated,
// so sites must not rely on their side effects.

#if defined(SEPE_TRACE)

#define SEPE_TRACE_INSTANT(KIND, GEN, ARG)                                   \
  ::sepe::trace::emit(::sepe::trace::EventKind::KIND, (GEN), (ARG))

#define SEPE_TRACE_SPAN(VAR, KIND, GEN)                                      \
  ::sepe::trace::Span VAR(::sepe::trace::EventKind::KIND, (GEN))

#else // !SEPE_TRACE

#define SEPE_TRACE_INSTANT(KIND, GEN, ARG)                                   \
  do {                                                                       \
  } while (0)

#define SEPE_TRACE_SPAN(VAR, KIND, GEN)                                      \
  [[maybe_unused]] ::sepe::trace::Span VAR

#endif // SEPE_TRACE

#endif // SEPE_SUPPORT_TRACE_H
