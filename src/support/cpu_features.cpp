//===- support/cpu_features.cpp - Runtime ISA feature probe ---------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "support/cpu_features.h"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

using namespace sepe;

namespace {

CpuFeatures probe() {
  CpuFeatures Features;
#if defined(__x86_64__) || defined(__i386__)
  unsigned Eax = 0, Ebx = 0, Ecx = 0, Edx = 0;
  if (__get_cpuid(1, &Eax, &Ebx, &Ecx, &Edx)) {
    Features.Sse2 = (Edx & (1u << 26)) != 0;
    Features.Ssse3 = (Ecx & (1u << 9)) != 0;
    Features.Aesni = (Ecx & (1u << 25)) != 0;

    // AVX2 additionally requires the OS to save/restore the ymm state:
    // OSXSAVE plus XCR0 bits 1-2 (XMM and YMM), the standard dance.
    const bool OsXsave = (Ecx & (1u << 27)) != 0;
    const bool Avx = (Ecx & (1u << 28)) != 0;
    bool YmmEnabled = false;
    if (OsXsave && Avx) {
      unsigned XcrLo = 0, XcrHi = 0;
      __asm__ volatile("xgetbv" : "=a"(XcrLo), "=d"(XcrHi) : "c"(0));
      YmmEnabled = (XcrLo & 0x6) == 0x6;
    }

    unsigned Eax7 = 0, Ebx7 = 0, Ecx7 = 0, Edx7 = 0;
    if (__get_cpuid_count(7, 0, &Eax7, &Ebx7, &Ecx7, &Edx7)) {
      Features.Avx2 = YmmEnabled && (Ebx7 & (1u << 5)) != 0;
      Features.Bmi2 = (Ebx7 & (1u << 8)) != 0;
    }
  }
#endif
  return Features;
}

} // namespace

const CpuFeatures &sepe::cpuFeatures() {
  static const CpuFeatures Features = probe();
  return Features;
}

std::string sepe::cpuFeatureString() {
  const CpuFeatures &F = cpuFeatures();
  std::string Out;
  const auto Append = [&Out](bool Present, const char *Name) {
    if (!Present)
      return;
    if (!Out.empty())
      Out += '+';
    Out += Name;
  };
  Append(F.Sse2, "sse2");
  Append(F.Ssse3, "ssse3");
  Append(F.Avx2, "avx2");
  Append(F.Bmi2, "bmi2");
  Append(F.Aesni, "aesni");
  return Out.empty() ? "none" : Out;
}

bool sepe::avx2BatchAvailable() {
#if defined(__AVX2__) && !defined(SEPE_DISABLE_AVX2)
  return cpuFeatures().Avx2;
#else
  return false;
#endif
}
