//===- support/perf_counters.cpp - perf_event_open PMU groups ------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "support/perf_counters.h"

#include "support/telemetry.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define SEPE_PERF_LINUX 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

using namespace sepe;
using perf::CounterGroup;
using perf::CounterReading;

namespace {

/// The six logical events, in read-buffer priority order. Cycles and
/// instructions lead because most hosts back them with fixed counters,
/// so they survive even when the programmable PMCs are contended.
struct EventSpec {
  const char *Name;
  uint64_t Config;
};

#if defined(SEPE_PERF_LINUX)
constexpr EventSpec Events[] = {
    {"cycles", PERF_COUNT_HW_CPU_CYCLES},
    {"instructions", PERF_COUNT_HW_INSTRUCTIONS},
    {"branches", PERF_COUNT_HW_BRANCH_INSTRUCTIONS},
    {"branch_misses", PERF_COUNT_HW_BRANCH_MISSES},
    {"cache_references", PERF_COUNT_HW_CACHE_REFERENCES},
    {"cache_misses", PERF_COUNT_HW_CACHE_MISSES},
};

int openEvent(uint64_t Config, int GroupFd) {
  perf_event_attr Attr;
  std::memset(&Attr, 0, sizeof(Attr));
  Attr.type = PERF_TYPE_HARDWARE;
  Attr.size = sizeof(Attr);
  Attr.config = Config;
  Attr.disabled = GroupFd < 0 ? 1 : 0;
  // User-space only: works under perf_event_paranoid <= 2 (the usual
  // unprivileged ceiling) and matches what we measure — the kernels,
  // not the kernel.
  Attr.exclude_kernel = 1;
  Attr.exclude_hv = 1;
  Attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(syscall(SYS_perf_event_open, &Attr, /*pid=*/0,
                                  /*cpu=*/-1, GroupFd, /*flags=*/0UL));
}
#endif

struct Availability {
  bool Available = false;
  std::string Reason;
};

/// One probe per process: try to open the cycle counter and translate
/// the errno into a stable diagnostic.
const Availability &probe() {
  static const Availability Cached = [] {
    Availability A;
#if !defined(SEPE_PERF_LINUX)
    A.Reason = "perf_event_open not built in (not a Linux build)";
#else
    const int Fd = openEvent(PERF_COUNT_HW_CPU_CYCLES, -1);
    if (Fd >= 0) {
      close(Fd);
      A.Available = true;
      A.Reason = "available";
      return A;
    }
    switch (errno) {
    case EACCES:
    case EPERM:
      A.Reason = "perf_event_open denied (perf_event_paranoid or "
                 "seccomp); counters disabled";
      break;
    case ENOSYS:
      A.Reason = "perf_event_open not implemented on this kernel";
      break;
    case ENOENT:
    case ENODEV:
    case EOPNOTSUPP:
      A.Reason = "no hardware PMU events on this host (VM?)";
      break;
    default:
      A.Reason = std::string("perf_event_open failed: ") +
                 std::strerror(errno);
    }
#endif
    return A;
  }();
  return Cached;
}

void appendMetric(std::string &Out, const char *Name, double Value) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "\"%s\":%.6g", Name, Value);
  Out += Buffer;
}

} // namespace

bool perf::available() { return probe().Available; }

const std::string &perf::unavailableReason() { return probe().Reason; }

double CounterReading::ipc() const {
  if (!Valid || Cycles == 0)
    return 0;
  return static_cast<double>(Instructions) / static_cast<double>(Cycles);
}

double CounterReading::cyclesPer(double Units) const {
  if (!Valid || Units <= 0)
    return 0;
  return static_cast<double>(Cycles) / Units;
}

double CounterReading::instructionsPer(double Units) const {
  if (!Valid || Units <= 0)
    return 0;
  return static_cast<double>(Instructions) / Units;
}

double CounterReading::branchMissRate() const {
  if (!Valid || Branches == 0)
    return 0;
  return static_cast<double>(BranchMisses) / static_cast<double>(Branches);
}

double CounterReading::cacheMissRate() const {
  if (!Valid || CacheReferences == 0)
    return 0;
  return static_cast<double>(CacheMisses) /
         static_cast<double>(CacheReferences);
}

std::string CounterReading::toJson(double Units) const {
  if (!Valid) {
    std::string Out = "{\"available\":false,\"reason\":\"";
    for (char C : unavailableReason()) {
      if (C == '"' || C == '\\')
        Out += '\\';
      Out += C;
    }
    Out += "\"}";
    return Out;
  }
  std::string Out = "{\"available\":true,\"multiplexed\":";
  Out += Multiplexed ? "true" : "false";
  Out += ",\"cycles\":" + std::to_string(Cycles);
  Out += ",\"instructions\":" + std::to_string(Instructions);
  Out += ",\"branches\":" + std::to_string(Branches);
  Out += ",\"branch_misses\":" + std::to_string(BranchMisses);
  Out += ",\"cache_references\":" + std::to_string(CacheReferences);
  Out += ",\"cache_misses\":" + std::to_string(CacheMisses);
  Out += ",\"time_enabled_ns\":" + std::to_string(TimeEnabledNs);
  Out += ",\"time_running_ns\":" + std::to_string(TimeRunningNs);
  Out += ',';
  appendMetric(Out, "ipc", ipc());
  Out += ',';
  appendMetric(Out, "branch_miss_rate", branchMissRate());
  Out += ',';
  appendMetric(Out, "cache_miss_rate", cacheMissRate());
  if (Units > 0) {
    Out += ',';
    appendMetric(Out, "cycles_per_unit", cyclesPer(Units));
    Out += ',';
    appendMetric(Out, "instructions_per_unit", instructionsPer(Units));
  }
  Out += '}';
  return Out;
}

CounterGroup::CounterGroup() {
#if defined(SEPE_PERF_LINUX)
  if (!probe().Available)
    return;
  for (int I = 0; I != NumEvents; ++I) {
    const int Fd = openEvent(Events[I].Config, LeaderFd);
    if (Fd < 0)
      continue; // This event is missing on the host; read as 0.
    if (LeaderFd < 0)
      LeaderFd = Fd;
    Fds[I] = Fd;
    ValueIndex[I] = OpenCount++;
  }
#endif
}

CounterGroup::~CounterGroup() {
#if defined(SEPE_PERF_LINUX)
  for (int I = NumEvents - 1; I >= 0; --I)
    if (Fds[I] >= 0)
      close(Fds[I]);
#endif
}

void CounterGroup::start() {
#if defined(SEPE_PERF_LINUX)
  if (!live())
    return;
  ioctl(LeaderFd, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(LeaderFd, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
#endif
}

CounterReading CounterGroup::read() const {
  CounterReading Reading;
#if defined(SEPE_PERF_LINUX)
  if (!live())
    return Reading;
  // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, values[].
  uint64_t Buffer[3 + NumEvents] = {};
  const ssize_t Want =
      static_cast<ssize_t>((3 + OpenCount) * sizeof(uint64_t));
  if (::read(LeaderFd, Buffer, sizeof(Buffer)) < Want)
    return Reading;
  if (Buffer[0] != static_cast<uint64_t>(OpenCount))
    return Reading;
  Reading.Valid = true;
  Reading.TimeEnabledNs = Buffer[1];
  Reading.TimeRunningNs = Buffer[2];
  double Scale = 1.0;
  if (Reading.TimeRunningNs != 0 &&
      Reading.TimeRunningNs < Reading.TimeEnabledNs) {
    Reading.Multiplexed = true;
    Scale = static_cast<double>(Reading.TimeEnabledNs) /
            static_cast<double>(Reading.TimeRunningNs);
  }
  uint64_t *Counts[NumEvents] = {
      &Reading.Cycles,         &Reading.Instructions,
      &Reading.Branches,       &Reading.BranchMisses,
      &Reading.CacheReferences, &Reading.CacheMisses};
  for (int I = 0; I != NumEvents; ++I)
    if (ValueIndex[I] >= 0)
      *Counts[I] = static_cast<uint64_t>(
          static_cast<double>(Buffer[3 + ValueIndex[I]]) * Scale);
#endif
  return Reading;
}

CounterReading CounterGroup::stop() {
#if defined(SEPE_PERF_LINUX)
  if (live())
    ioctl(LeaderFd, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
#endif
  return read();
}

void perf::recordToTelemetry(const char *Prefix,
                             const CounterReading &Reading) {
  if (!Reading.Valid)
    return;
  const std::string Base = std::string("pmu.") + Prefix + ".";
  const std::pair<const char *, uint64_t> Values[] = {
      {"cycles", Reading.Cycles},
      {"instructions", Reading.Instructions},
      {"branches", Reading.Branches},
      {"branch_misses", Reading.BranchMisses},
      {"cache_references", Reading.CacheReferences},
      {"cache_misses", Reading.CacheMisses},
  };
  for (const auto &[Name, Value] : Values)
    telemetry::counter((Base + Name).c_str()).add(Value);
}
