//===- support/perf_counters.h - perf_event_open PMU groups ----*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hardware performance-counter groups over `perf_event_open`: one
/// CounterGroup opens cycles, instructions, branches, branch-misses,
/// cache-references and cache-misses as a single scheduled group, so a
/// start()/stop() pair yields a consistent snapshot from which the
/// derived metrics the hash-kernel literature leans on (IPC,
/// cycles/key, branch- and cache-miss rates) fall out directly.
///
/// Degradation is part of the contract, not an error path: when the
/// syscall is unavailable (non-Linux), denied (`perf_event_paranoid`,
/// seccomp-filtered containers — the common CI case), or the PMU has no
/// hardware events (some VMs), the group silently becomes a no-op whose
/// readings carry `Valid == false` and serialize as
/// `{"available": false, "reason": ...}`. Callers never branch on the
/// platform — only on `CounterReading::Valid`.
///
/// Counter values scale by time_enabled/time_running when the kernel
/// multiplexed the group (more events than hardware counters); such
/// readings are flagged `Multiplexed` so consumers can discount them.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_SUPPORT_PERF_COUNTERS_H
#define SEPE_SUPPORT_PERF_COUNTERS_H

#include <cstdint>
#include <string>

namespace sepe::perf {

/// One snapshot of the group. All values are cumulative since the last
/// start() (stop()/read() do not reset).
struct CounterReading {
  /// False when the backend is unavailable or the read failed; every
  /// count is then 0 and every derived metric returns 0.
  bool Valid = false;
  /// True when the kernel time-shared the group onto the PMU and the
  /// counts are extrapolated (time_running < time_enabled).
  bool Multiplexed = false;

  uint64_t Cycles = 0;
  uint64_t Instructions = 0;
  uint64_t Branches = 0;
  uint64_t BranchMisses = 0;
  uint64_t CacheReferences = 0;
  uint64_t CacheMisses = 0;
  uint64_t TimeEnabledNs = 0;
  uint64_t TimeRunningNs = 0;

  /// Instructions per cycle; 0 when invalid or no cycles counted.
  double ipc() const;
  /// Cycles per work unit (key, op, ...); 0 when invalid or Units <= 0.
  double cyclesPer(double Units) const;
  double instructionsPer(double Units) const;
  /// Branch misses / branches, in [0, 1]; 0 when undefined.
  double branchMissRate() const;
  /// Cache misses / cache references, in [0, 1]; 0 when undefined.
  double cacheMissRate() const;

  /// Always-valid JSON: the full counter section, or
  /// {"available": false, "reason": "..."} for an invalid reading.
  /// \p Units > 0 additionally emits cycles_per_unit /
  /// instructions_per_unit.
  std::string toJson(double Units = 0) const;
};

/// Whether this process can open hardware counters at all (probed once,
/// cached). A true result does not guarantee every event exists.
bool available();

/// Human-readable explanation when available() is false ("perf_event
/// _paranoid or seccomp denies ...", "not built for Linux", ...);
/// "available" otherwise.
const std::string &unavailableReason();

/// An opened perf-event group. Construction opens the six hardware
/// events with the first successful one as leader; events the host
/// cannot provide are skipped and read as 0. Not thread-safe; counts
/// this thread's user-space execution only (exclude_kernel).
class CounterGroup {
public:
  CounterGroup();
  ~CounterGroup();
  CounterGroup(const CounterGroup &) = delete;
  CounterGroup &operator=(const CounterGroup &) = delete;

  /// True when at least one hardware event opened.
  bool live() const { return LeaderFd >= 0; }

  /// Zeroes the group and starts counting.
  void start();
  /// Stops counting and returns the snapshot.
  CounterReading stop();
  /// Reads without stopping; successive read()s are monotonic while
  /// the group runs.
  CounterReading read() const;

private:
  static constexpr int NumEvents = 6;
  int LeaderFd = -1;
  /// Per logical event: its index into the group read buffer, or -1
  /// when the event failed to open.
  int ValueIndex[NumEvents] = {-1, -1, -1, -1, -1, -1};
  int Fds[NumEvents] = {-1, -1, -1, -1, -1, -1};
  int OpenCount = 0;
};

/// RAII: start() on construction, stop() into \p Out on destruction.
class ScopedCounters {
public:
  ScopedCounters(CounterGroup &Group, CounterReading &Out)
      : Group(Group), Out(Out) {
    Group.start();
  }
  ~ScopedCounters() { Out = Group.stop(); }
  ScopedCounters(const ScopedCounters &) = delete;
  ScopedCounters &operator=(const ScopedCounters &) = delete;

private:
  CounterGroup &Group;
  CounterReading &Out;
};

/// Feeds a reading into the telemetry registry as counters named
/// "pmu.<prefix>.{cycles,instructions,branches,branch_misses,
/// cache_references,cache_misses}", so `sepedriver --metrics` dumps and
/// bench-envelope telemetry sections carry PMU data alongside spans.
/// No-op for invalid readings or when telemetry is off.
void recordToTelemetry(const char *Prefix, const CounterReading &Reading);

} // namespace sepe::perf

#endif // SEPE_SUPPORT_PERF_COUNTERS_H
