//===- support/bench_compare.cpp - Noise-aware perf report diff ----------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "support/bench_compare.h"

#include "support/json.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

using namespace sepe;
using bench::CompareReport;
using bench::CompareThresholds;
using bench::DeltaVerdict;
using bench::WorkloadDelta;

namespace {

struct WorkloadStats {
  std::string Unit;
  double Median = 0;
  double Mad = 0;
};

/// Extracts name -> {unit, median, mad} from one parsed report;
/// workload entries without a name or median are skipped rather than
/// failing the whole comparison (a half-written row must not mask a
/// regression elsewhere).
Expected<std::map<std::string, WorkloadStats>>
extractWorkloads(const json::Value &Doc) {
  const json::Value *Workloads = Doc.find("workloads");
  if (Workloads == nullptr || !Workloads->isArray())
    return Error{"report has no \"workloads\" array", std::string::npos};
  std::map<std::string, WorkloadStats> Result;
  for (const json::Value &Entry : Workloads->array()) {
    if (!Entry.isObject())
      continue;
    const std::string Name = Entry.stringOr("name", "");
    const json::Value *Median = Entry.find("median");
    if (Name.empty() || Median == nullptr || !Median->isNumber())
      continue;
    WorkloadStats Stats;
    Stats.Unit = Entry.stringOr("unit", "");
    Stats.Median = Median->number();
    Stats.Mad = Entry.numberOr("mad", 0);
    Result.emplace(Name, Stats);
  }
  return Result;
}

} // namespace

const char *bench::deltaVerdictName(DeltaVerdict Verdict) {
  switch (Verdict) {
  case DeltaVerdict::Unchanged:
    return "unchanged";
  case DeltaVerdict::Improvement:
    return "improvement";
  case DeltaVerdict::Regression:
    return "REGRESSION";
  case DeltaVerdict::Added:
    return "added";
  case DeltaVerdict::Removed:
    return "removed";
  }
  return "?";
}

std::string CompareReport::render() const {
  std::string Out;
  char Line[256];
  for (const WorkloadDelta &Delta : Deltas) {
    if (Delta.Verdict == DeltaVerdict::Unchanged)
      continue;
    if (Delta.Verdict == DeltaVerdict::Added ||
        Delta.Verdict == DeltaVerdict::Removed) {
      std::snprintf(Line, sizeof(Line), "  %-11s %s\n",
                    deltaVerdictName(Delta.Verdict), Delta.Name.c_str());
    } else {
      std::snprintf(Line, sizeof(Line),
                    "  %-11s %-40s %10.4f -> %10.4f %s (%+.1f%%, noise "
                    "band %.4f)\n",
                    deltaVerdictName(Delta.Verdict), Delta.Name.c_str(),
                    Delta.BaseMedian, Delta.NewMedian, Delta.Unit.c_str(),
                    Delta.DeltaPct, Delta.NoiseBand);
    }
    Out += Line;
  }
  std::snprintf(Line, sizeof(Line),
                "%zu workload(s) compared: %zu regression(s), %zu "
                "improvement(s), %zu within noise\n",
                Deltas.size(), Regressions, Improvements,
                Deltas.size() - Regressions - Improvements);
  Out += Line;
  return Out;
}

Expected<CompareReport>
bench::compareSuiteReports(const std::string &BaseText,
                           const std::string &NewText,
                           const CompareThresholds &Thresholds) {
  Expected<json::Value> Base = json::parse(BaseText);
  if (!Base)
    return Error{"base report: " + Base.error().Message,
                 Base.error().Pos};
  Expected<json::Value> New = json::parse(NewText);
  if (!New)
    return Error{"new report: " + New.error().Message, New.error().Pos};

  const double BaseSchema = Base->numberOr("schema_version", -1);
  const double NewSchema = New->numberOr("schema_version", -1);
  if (BaseSchema < 0 || NewSchema < 0)
    return Error{"report is missing schema_version", std::string::npos};
  if (BaseSchema != NewSchema)
    return Error{"schema_version mismatch: base " +
                     std::to_string(static_cast<int>(BaseSchema)) +
                     " vs new " +
                     std::to_string(static_cast<int>(NewSchema)),
                 std::string::npos};

  Expected<std::map<std::string, WorkloadStats>> BaseWork =
      extractWorkloads(*Base);
  if (!BaseWork)
    return Error{"base " + BaseWork.error().Message, std::string::npos};
  Expected<std::map<std::string, WorkloadStats>> NewWork =
      extractWorkloads(*New);
  if (!NewWork)
    return Error{"new " + NewWork.error().Message, std::string::npos};

  CompareReport Report;
  Report.SchemaVersion = static_cast<int>(BaseSchema);

  for (const auto &[Name, BaseStats] : *BaseWork) {
    WorkloadDelta Delta;
    Delta.Name = Name;
    Delta.Unit = BaseStats.Unit;
    Delta.BaseMedian = BaseStats.Median;
    const auto NewIt = NewWork->find(Name);
    if (NewIt == NewWork->end()) {
      Delta.Verdict = DeltaVerdict::Removed;
      Report.Deltas.push_back(std::move(Delta));
      continue;
    }
    const WorkloadStats &NewStats = NewIt->second;
    Delta.NewMedian = NewStats.Median;
    Delta.NoiseBand =
        std::max(Thresholds.AbsFloor,
                 Thresholds.NoiseK * std::max(BaseStats.Mad, NewStats.Mad));
    const double Diff = NewStats.Median - BaseStats.Median;
    Delta.DeltaPct =
        BaseStats.Median != 0 ? 100.0 * Diff / BaseStats.Median : 0;
    const bool BeyondNoise =
        std::fabs(Diff) > Delta.NoiseBand &&
        std::fabs(Diff) > Thresholds.RelFloor * std::fabs(BaseStats.Median);
    if (!BeyondNoise)
      Delta.Verdict = DeltaVerdict::Unchanged;
    else if (Diff > 0) {
      Delta.Verdict = DeltaVerdict::Regression;
      ++Report.Regressions;
    } else {
      Delta.Verdict = DeltaVerdict::Improvement;
      ++Report.Improvements;
    }
    Report.Deltas.push_back(std::move(Delta));
  }
  for (const auto &[Name, NewStats] : *NewWork) {
    if (BaseWork->count(Name) != 0)
      continue;
    WorkloadDelta Delta;
    Delta.Name = Name;
    Delta.Unit = NewStats.Unit;
    Delta.NewMedian = NewStats.Median;
    Delta.Verdict = DeltaVerdict::Added;
    Report.Deltas.push_back(std::move(Delta));
  }
  return Report;
}
