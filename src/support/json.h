//===- support/json.h - Minimal JSON document parser ------------*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small recursive-descent JSON reader for the repo's own report
/// files (BENCH_*.json, sepedriver --metrics dumps): enough of RFC 8259
/// to round-trip what the writers in bench_common.h / telemetry.cpp
/// emit, with positioned Expected<> errors instead of exceptions. The
/// DOM is deliberately naive — one Value type holding all alternatives
/// — because the consumers (the perf comparator, tests) read documents
/// of a few hundred kilobytes at most.
///
/// Object members preserve insertion order; duplicate keys keep the
/// first occurrence (find() returns the earliest match).
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_SUPPORT_JSON_H
#define SEPE_SUPPORT_JSON_H

#include "support/expected.h"

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sepe::json {

class Value {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool boolean() const { return B; }
  double number() const { return Num; }
  const std::string &string() const { return Str; }
  const std::vector<Value> &array() const { return Arr; }
  const std::vector<std::pair<std::string, Value>> &object() const {
    return Obj;
  }

  /// Object member lookup; nullptr when not an object or key absent.
  const Value *find(std::string_view Key) const {
    if (K != Kind::Object)
      return nullptr;
    for (const auto &[Name, V] : Obj)
      if (Name == Key)
        return &V;
    return nullptr;
  }

  /// The member's number, or \p Default when absent / not a number.
  double numberOr(std::string_view Key, double Default) const {
    const Value *V = find(Key);
    return V != nullptr && V->isNumber() ? V->Num : Default;
  }

  /// The member's string, or \p Default when absent / not a string.
  std::string stringOr(std::string_view Key, std::string Default) const {
    const Value *V = find(Key);
    return V != nullptr && V->isString() ? V->Str : std::move(Default);
  }

  static Value makeNull() { return Value(); }
  static Value makeBool(bool B) {
    Value V;
    V.K = Kind::Bool;
    V.B = B;
    return V;
  }
  static Value makeNumber(double N) {
    Value V;
    V.K = Kind::Number;
    V.Num = N;
    return V;
  }
  static Value makeString(std::string S) {
    Value V;
    V.K = Kind::String;
    V.Str = std::move(S);
    return V;
  }
  static Value makeArray() {
    Value V;
    V.K = Kind::Array;
    return V;
  }
  static Value makeObject() {
    Value V;
    V.K = Kind::Object;
    return V;
  }

  std::vector<Value> &arrayMut() { return Arr; }
  std::vector<std::pair<std::string, Value>> &objectMut() { return Obj; }

private:
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<Value> Arr;
  std::vector<std::pair<std::string, Value>> Obj;
};

/// Escapes \p S for embedding between the quotes of a JSON string
/// literal: '"' and '\\' get a backslash, the short escapes cover
/// \b \f \n \r \t, and every other control byte plus every non-ASCII
/// byte becomes \u00XX. The input is treated as raw bytes (sampled keys
/// in --metrics dumps are arbitrary binary), and parse() decodes
/// \u0000..\u00FF back to single bytes, so escapeString -> parse
/// round-trips any byte string exactly.
std::string escapeString(std::string_view S);

/// Parses one JSON document; trailing non-whitespace is an error. The
/// Error position is a byte offset into \p Text.
Expected<Value> parse(std::string_view Text);

/// Convenience: reads \p Path fully and parses it; file-system errors
/// come back as Expected errors too (Pos = npos).
Expected<Value> parseFile(const std::string &Path);

} // namespace sepe::json

#endif // SEPE_SUPPORT_JSON_H
