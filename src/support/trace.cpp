//===- support/trace.cpp - Ring registry + Chrome-trace export -----------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
//
// The recorder proper. Each thread lazily claims one Ring — a
// power-of-two array of seqlock slots — and is its only writer, so the
// emit path is wait-free: invalidate the slot's sequence word, store
// the payload with relaxed atomics, then release-publish the sequence.
// drain() can run from any thread (or several) concurrently with the
// writers; a slot whose sequence word does not match its expected
// position before AND after the payload read was overwritten mid-read
// and is skipped, never mis-decoded. The ring registry keeps every
// Ring alive for the process lifetime, so events emitted by a thread
// that has since exited still appear in the next drain.
//
//===----------------------------------------------------------------------===//

#include "support/trace.h"

#include "support/json.h"

#include <algorithm>
#include <cstdio>
#include <string>

#if defined(SEPE_TRACE)
#include <bit>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#endif

using namespace sepe;

const char *trace::eventKindName(EventKind K) {
  switch (K) {
  case EventKind::DriftTripped:
    return "adaptive.drift.tripped";
  case EventKind::DriftReset:
    return "adaptive.drift.reset";
  case EventKind::SamplerSnapshot:
    return "adaptive.sampler.snapshot";
  case EventKind::SamplerDrain:
    return "adaptive.sampler.drain";
  case EventKind::ResynthJob:
    return "adaptive.resynth.job";
  case EventKind::ResynthAttempt:
    return "adaptive.resynth.attempt";
  case EventKind::SwapPublish:
    return "adaptive.swap.publish";
  case EventKind::PlanRetired:
    return "adaptive.plan.retired";
  case EventKind::MigrateShards:
    return "sharded.migrate";
  case EventKind::ShardSeal:
    return "sharded.shard.seal";
  case EventKind::ShardCopy:
    return "sharded.shard.copy";
  case EventKind::MigratePublish:
    return "sharded.migrate.publish";
  case EventKind::DualWrite:
    return "sharded.dual_write";
  case EventKind::GuardReject:
    return "sharded.guard.reject";
  case EventKind::LaneCreate:
    return "serving.lane.create";
  case EventKind::SpillSweep:
    return "serving.spill.sweep";
  case EventKind::JitCompile:
    return "jit.compile";
  case EventKind::JitRegister:
    return "jit.register";
  case EventKind::JitRetire:
    return "jit.retire";
  case EventKind::QualitySample:
    return "quality.live.sample";
  case EventKind::StaticSeal:
    return "serving.static.seal";
  case EventKind::NumKinds:
    break;
  }
  return "unknown";
}

#if defined(SEPE_TRACE)

namespace {

constexpr size_t DefaultRingCapacity = 8192;
constexpr size_t MinRingCapacity = 8;

/// One recorded event, seqlock-guarded. Seq holds AbsolutePos + 1 once
/// the payload at that position is fully written, 0 while a write is
/// in flight. All words are relaxed atomics so a racing drain is
/// data-race-free; the Seq protocol makes it also tear-free.
struct alignas(64) Slot {
  std::atomic<uint64_t> Seq{0};
  std::atomic<uint64_t> TimeNs{0};
  std::atomic<uint64_t> DurNs{0};
  std::atomic<uint64_t> Gen{0};
  std::atomic<uint64_t> Arg{0};
  std::atomic<uint64_t> KindWord{0}; ///< kind | (IsSpan << 32)
};

/// Single-writer ring. Written is the writer's absolute position (only
/// the owning thread advances it); ReadCursor is advanced by drains and
/// by the writer when it must drop the oldest unread slot to make room.
struct Ring {
  explicit Ring(uint32_t Tid, size_t Capacity)
      : Tid(Tid), Capacity(Capacity), Mask(Capacity - 1),
        Slots(new Slot[Capacity]) {}

  const uint32_t Tid;
  const size_t Capacity;
  const size_t Mask;
  std::unique_ptr<Slot[]> Slots;
  std::atomic<uint64_t> Written{0};
  std::atomic<uint64_t> ReadCursor{0};
  std::atomic<uint64_t> Dropped{0};
};

struct RingRegistry {
  std::mutex Mutex;
  std::vector<std::unique_ptr<Ring>> Rings;
  std::atomic<size_t> NextCapacity{DefaultRingCapacity};
  std::atomic<uint64_t> Emitted{0};
};

RingRegistry &registry() {
  static RingRegistry R;
  return R;
}

bool envEnabled() {
  const char *Env = std::getenv("SEPE_TRACE_ENABLED");
  return Env != nullptr && Env[0] != '\0' && Env[0] != '0';
}

Ring &myRing() {
  thread_local Ring *Mine = [] {
    RingRegistry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mutex);
    size_t Cap = std::max(
        MinRingCapacity,
        std::bit_ceil(R.NextCapacity.load(std::memory_order_relaxed)));
    R.Rings.push_back(
        std::make_unique<Ring>(static_cast<uint32_t>(R.Rings.size()), Cap));
    return R.Rings.back().get();
  }();
  return *Mine;
}

void writeSlot(Ring &Ring, trace::EventKind K, uint64_t TimeNs,
               uint64_t DurNs, uint64_t Gen, uint64_t Arg, bool IsSpan) {
  const uint64_t Pos = Ring.Written.load(std::memory_order_relaxed);

  // Drop-oldest: if the ring is full, push the read cursor past the
  // slot about to be overwritten. CAS because a concurrent drain may
  // advance it first — whoever wins, the slot is claimed exactly once.
  uint64_t Read = Ring.ReadCursor.load(std::memory_order_acquire);
  while (Pos - Read >= Ring.Capacity) {
    if (Ring.ReadCursor.compare_exchange_weak(Read, Read + 1,
                                              std::memory_order_acq_rel)) {
      Ring.Dropped.fetch_add(1, std::memory_order_relaxed);
      Read += 1;
    }
  }

  Slot &S = Ring.Slots[Pos & Ring.Mask];
  S.Seq.store(0, std::memory_order_release);
  S.TimeNs.store(TimeNs, std::memory_order_relaxed);
  S.DurNs.store(DurNs, std::memory_order_relaxed);
  S.Gen.store(Gen, std::memory_order_relaxed);
  S.Arg.store(Arg, std::memory_order_relaxed);
  S.KindWord.store(static_cast<uint64_t>(K) |
                       (uint64_t{IsSpan ? 1u : 0u} << 32),
                   std::memory_order_relaxed);
  S.Seq.store(Pos + 1, std::memory_order_release);
  Ring.Written.store(Pos + 1, std::memory_order_release);
  registry().Emitted.fetch_add(1, std::memory_order_relaxed);
}

/// Reads the unread range of \p Ring into \p Out and consumes it.
/// Slots overwritten while being read fail the before/after sequence
/// check and count as drops.
void drainRing(Ring &Ring, std::vector<trace::Event> &Out) {
  const uint64_t End = Ring.Written.load(std::memory_order_acquire);
  uint64_t Begin = Ring.ReadCursor.load(std::memory_order_acquire);
  // Claim [Begin, End) up front so concurrent drains partition the
  // range instead of double-reporting it.
  while (Begin < End) {
    if (Ring.ReadCursor.compare_exchange_weak(Begin, End,
                                              std::memory_order_acq_rel))
      break;
  }
  for (uint64_t Pos = Begin; Pos < End; ++Pos) {
    Slot &S = Ring.Slots[Pos & Ring.Mask];
    if (S.Seq.load(std::memory_order_acquire) != Pos + 1) {
      Ring.Dropped.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    trace::Event E;
    E.TimeNs = S.TimeNs.load(std::memory_order_relaxed);
    E.DurNs = S.DurNs.load(std::memory_order_relaxed);
    E.Gen = S.Gen.load(std::memory_order_relaxed);
    E.Arg = S.Arg.load(std::memory_order_relaxed);
    const uint64_t KindWord = S.KindWord.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (S.Seq.load(std::memory_order_relaxed) != Pos + 1) {
      Ring.Dropped.fetch_add(1, std::memory_order_relaxed);
      continue; // overwritten mid-read
    }
    E.Tid = Ring.Tid;
    E.Kind = static_cast<trace::EventKind>(KindWord & 0xffffffffu);
    E.IsSpan = (KindWord >> 32) != 0;
    Out.push_back(E);
  }
}

} // namespace

std::atomic<bool> trace::detail::EnabledFlag{envEnabled()};

bool trace::compiledIn() { return true; }

void trace::setEnabled(bool On) {
  detail::EnabledFlag.store(On, std::memory_order_relaxed);
}

uint64_t trace::detail::nowNs() {
  // One process-local epoch so timestamps are small, positive, and
  // directly comparable across threads.
  static const std::chrono::steady_clock::time_point Epoch =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Epoch)
          .count());
}

void trace::detail::emitImpl(EventKind K, uint64_t Gen, uint64_t Arg) {
  writeSlot(myRing(), K, nowNs(), 0, Gen, Arg, /*IsSpan=*/false);
}

void trace::detail::emitSpanImpl(EventKind K, uint64_t StartNs,
                                 uint64_t DurNs, uint64_t Gen,
                                 uint64_t Arg) {
  writeSlot(myRing(), K, StartNs, DurNs, Gen, Arg, /*IsSpan=*/true);
}

std::vector<trace::Event> trace::drain() {
  std::vector<Event> Out;
  RingRegistry &R = registry();
  {
    std::lock_guard<std::mutex> Lock(R.Mutex);
    for (std::unique_ptr<Ring> &Ring : R.Rings)
      drainRing(*Ring, Out);
  }
  std::stable_sort(Out.begin(), Out.end(),
                   [](const Event &A, const Event &B) {
                     return A.TimeNs < B.TimeNs;
                   });
  return Out;
}

uint64_t trace::emitted() {
  return registry().Emitted.load(std::memory_order_relaxed);
}

uint64_t trace::dropped() {
  RingRegistry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  uint64_t Total = 0;
  for (std::unique_ptr<Ring> &Ring : R.Rings)
    Total += Ring->Dropped.load(std::memory_order_relaxed);
  return Total;
}

uint64_t trace::occupancy() {
  RingRegistry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  uint64_t Total = 0;
  for (std::unique_ptr<Ring> &Ring : R.Rings) {
    const uint64_t W = Ring->Written.load(std::memory_order_acquire);
    const uint64_t C = Ring->ReadCursor.load(std::memory_order_acquire);
    Total += std::min<uint64_t>(W - C, Ring->Capacity);
  }
  return Total;
}

void trace::setRingCapacity(size_t Events) {
  registry().NextCapacity.store(std::max(MinRingCapacity, Events),
                                std::memory_order_relaxed);
}

#else // !SEPE_TRACE

bool trace::compiledIn() { return false; }

std::vector<trace::Event> trace::drain() { return {}; }

uint64_t trace::emitted() { return 0; }
uint64_t trace::dropped() { return 0; }
uint64_t trace::occupancy() { return 0; }

void trace::setRingCapacity(size_t) {}

#endif // SEPE_TRACE

// --- Chrome-trace export ----------------------------------------------------
//
// Built in both flavors: a compiled-out binary handed --trace= still
// writes the valid empty document, so downstream tooling never has to
// special-case the build.

namespace {

/// Microseconds with sub-microsecond precision, as Chrome expects.
std::string formatMicros(uint64_t Ns) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%llu.%03llu",
                static_cast<unsigned long long>(Ns / 1000),
                static_cast<unsigned long long>(Ns % 1000));
  return Buf;
}

} // namespace

bool trace::writeChromeTrace(const std::string &Path) {
  std::vector<Event> Events = drain();
  const uint64_t Base = Events.empty() ? 0 : Events.front().TimeNs;

  std::string Out;
  Out.reserve(128 + Events.size() * 128);
  Out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{";
  Out += "\"generator\":\"sepe-trace\"";
  Out += ",\"compiled_in\":";
  Out += compiledIn() ? "true" : "false";
  Out += ",\"emitted\":" + std::to_string(emitted());
  Out += ",\"dropped\":" + std::to_string(dropped());
  Out += "},\"traceEvents\":[";
  bool First = true;
  for (const Event &E : Events) {
    if (!First)
      Out += ',';
    First = false;
    Out += "{\"name\":\"";
    // Names are compile-time literals today, but route them through the
    // shared escaper so the emitter can never produce invalid JSON.
    Out += json::escapeString(eventKindName(E.Kind));
    Out += "\",\"cat\":\"sepe\",\"ph\":\"";
    Out += E.IsSpan ? 'X' : 'i';
    Out += "\",\"ts\":" + formatMicros(E.TimeNs - Base);
    if (E.IsSpan)
      Out += ",\"dur\":" + formatMicros(E.DurNs);
    else
      Out += ",\"s\":\"t\"";
    Out += ",\"pid\":1,\"tid\":" + std::to_string(E.Tid);
    Out += ",\"args\":{\"gen\":" + std::to_string(E.Gen);
    Out += ",\"arg\":" + std::to_string(E.Arg);
    Out += "}}";
  }
  Out += "]}";

  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (F == nullptr)
    return false;
  const bool Wrote = std::fwrite(Out.data(), 1, Out.size(), F) == Out.size();
  return (std::fclose(F) == 0) && Wrote;
}
