//===- support/bench_compare.h - Noise-aware perf report diff --*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The perf-regression gate behind `sepebench --compare=BASE,NEW`:
/// diffs two suite reports (the BENCH_suite.json shape sepebench
/// emits — an envelope with a "workloads" array of
/// {name, unit, median, mad} entries) and classifies every workload's
/// delta against a noise band instead of a bare percentage, because a
/// hash-kernel median on a shared CI runner routinely jitters by more
/// than any interesting regression.
///
/// A workload regresses only when its median moved by more than
/// max(AbsFloor, NoiseK * max(base MAD, new MAD)) AND by more than
/// RelFloor of the base median — both conditions, so a 0.01 ns wobble
/// on a 0.1 ns workload and a 2 ns wobble on a noisy 500 ns workload
/// are equally ignored. All sepebench units are time-per-unit, so lower
/// is always better. Workloads present in only one report are flagged
/// Added/Removed but never gate.
///
/// A schema_version mismatch between the reports is an error, not a
/// comparison: thresholds tuned for one schema must not silently judge
/// another.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_SUPPORT_BENCH_COMPARE_H
#define SEPE_SUPPORT_BENCH_COMPARE_H

#include "support/expected.h"

#include <cstddef>
#include <string>
#include <vector>

namespace sepe::bench {

struct CompareThresholds {
  /// Noise-band multiplier on the larger of the two MADs.
  double NoiseK = 3.0;
  /// Absolute floor in the workload's own unit (ns or ms); deltas
  /// below it never gate regardless of how tight the MADs are.
  double AbsFloor = 0.05;
  /// Relative floor: |delta| must also exceed this fraction of the
  /// base median. 5% because cross-run medians on shared runners
  /// drift a few percent even when every within-run MAD is tight.
  double RelFloor = 0.05;
};

enum class DeltaVerdict { Unchanged, Improvement, Regression, Added, Removed };

const char *deltaVerdictName(DeltaVerdict Verdict);

struct WorkloadDelta {
  std::string Name;
  std::string Unit;
  double BaseMedian = 0;
  double NewMedian = 0;
  /// (new - base) / base * 100; 0 for Added/Removed.
  double DeltaPct = 0;
  /// The noise band the delta was judged against.
  double NoiseBand = 0;
  DeltaVerdict Verdict = DeltaVerdict::Unchanged;
};

struct CompareReport {
  int SchemaVersion = 0;
  std::vector<WorkloadDelta> Deltas;
  size_t Regressions = 0;
  size_t Improvements = 0;

  bool hasRegression() const { return Regressions != 0; }

  /// Plain-text rendering: one line per workload that moved (or
  /// appeared/disappeared), then a summary line.
  std::string render() const;
};

/// Compares two suite-report JSON documents. Errors (malformed JSON,
/// missing workloads array, schema_version mismatch) come back as
/// Expected errors.
Expected<CompareReport>
compareSuiteReports(const std::string &BaseText, const std::string &NewText,
                    const CompareThresholds &Thresholds = {});

} // namespace sepe::bench

#endif // SEPE_SUPPORT_BENCH_COMPARE_H
