//===- support/cpu_features.h - Runtime ISA feature probe -------*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One cpuid probe, cached for the process lifetime. The executor's
/// kernel selection is layered: the IsaLevel override (Portable /
/// NoBitExtract) decides which *algorithms* may run, and this probe
/// decides which *instruction sets* the Native level may actually
/// dispatch to on the running machine — so a binary compiled with
/// -mavx2 still degrades gracefully to the interleaved scalar kernels
/// on a host without AVX2 instead of faulting.
///
/// On non-x86 builds every optional bit reports false and the portable
/// paths are selected, which is exactly the aarch64 story of RQ4.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_SUPPORT_CPU_FEATURES_H
#define SEPE_SUPPORT_CPU_FEATURES_H

#include <string>

namespace sepe {

/// The instruction-set extensions the executor and containers care
/// about. Sse2 is baseline on x86-64 but probed anyway so the group
/// scan in FlatIndexMap can document its fallback honestly.
struct CpuFeatures {
  bool Sse2 = false;
  bool Ssse3 = false;
  bool Avx2 = false;
  bool Bmi2 = false;
  bool Aesni = false;
};

/// The host CPU's features, probed once via cpuid (x86) and cached.
const CpuFeatures &cpuFeatures();

/// True when the AVX2 wide batch kernels are both compiled into this
/// binary (built with -mavx2, not disabled with SEPE_DISABLE_AVX2) and
/// supported by the running CPU. The single gate every AVX2 dispatch
/// decision goes through.
bool avx2BatchAvailable();

/// The probed host features as one self-describing string, e.g.
/// "sse2+ssse3+avx2+bmi2+aesni" ("none" when no optional set is
/// present — the non-x86 case). What sepedriver prints in its report
/// header and BENCH_*.json records as "cpu_features", so trajectory
/// files name the hardware they were measured on.
std::string cpuFeatureString();

} // namespace sepe

#endif // SEPE_SUPPORT_CPU_FEATURES_H
