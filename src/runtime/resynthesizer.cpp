//===- runtime/resynthesizer.cpp - Background resynthesis worker ----------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "runtime/resynthesizer.h"

#include "support/trace.h"

#include <utility>

namespace sepe {

Resynthesizer::Resynthesizer(Work Fn)
    : Fn(std::move(Fn)), Worker([this] { run(); }) {}

Resynthesizer::~Resynthesizer() { stop(); }

void Resynthesizer::trigger() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Stopping)
      return;
    Pending = true;
  }
  Cond.notify_one();
}

void Resynthesizer::stop() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Stopping && !Worker.joinable())
      return;
    Stopping = true;
    Pending = false;
  }
  Cond.notify_one();
  if (Worker.joinable())
    Worker.join();
}

void Resynthesizer::run() {
  std::unique_lock<std::mutex> Lock(Mutex);
  while (true) {
    Cond.wait(Lock, [this] { return Pending || Stopping; });
    if (Stopping)
      return;
    Pending = false;
    // Run the callback unlocked so trigger() (and stop()) never wait on
    // a synthesis in flight; a trigger landing meanwhile re-raises
    // Pending and the loop runs the callback again.
    Lock.unlock();
    {
      SEPE_TRACE_SPAN(JobSpan, ResynthJob, 0);
      Fn();
    }
    Lock.lock();
  }
}

} // namespace sepe
