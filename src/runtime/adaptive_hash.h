//===- runtime/adaptive_hash.h - Guarded dispatch + hot re-synthesis ------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The adaptive runtime around a SynthesizedHash: a guarded dispatcher
/// whose fast path runs the specialized kernel behind a word-at-a-time
/// KeyPattern membership check. Keys the guard rejects are hashed with
/// a generic fallback (so callers always get a value), fed into a
/// reservoir sampler, and counted by a sliding-window drift detector.
/// When the mismatch ratio of a window crosses threshold, a background
/// resynthesizer joins the sampled keys into the current pattern (the
/// quad join is monotone, so the new pattern still admits every key the
/// old one did), synthesizes a fresh plan, and hot-swaps it in with an
/// RCU-style atomic publish: readers load one acquire pointer per batch
/// and never block, retired generations stay alive until the
/// AdaptiveHash is destroyed, and a cooldown keeps a noisy stream from
/// thrashing the synthesizer.
///
/// Hash values change across a swap (a different plan is a different
/// function). Containers keyed through an AdaptiveHash must watch
/// epoch() and migrate with their rehashWith entry points
/// (container/flat_index_map.h, container/low_mix_table.h) — exactly
/// the contract of the paper's offline workflow, moved online.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_RUNTIME_ADAPTIVE_HASH_H
#define SEPE_RUNTIME_ADAPTIVE_HASH_H

#include "core/executor.h"
#include "core/key_pattern.h"
#include "core/plan.h"
#include "runtime/drift_detector.h"
#include "runtime/key_sampler.h"
#include "runtime/resynthesizer.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

namespace sepe {

/// Generic hash used for keys the guard rejects.
enum class FallbackKind { City, LowLevel };

/// A single-byte mutation \p Pattern is guaranteed to reject: write
/// Byte at position Pos of an in-format key and the guard turns it
/// away. Drift injection (tests, sepedriver --adaptive, the bench
/// recovery workloads) must route through this instead of blindly
/// mutating position 0: the quad lattice is bit-pair-granular, so a
/// position whose alphabet spans both digit and letter ranges (the hex
/// positions of MAC/IPv6) abstracts to top and admits any byte.
/// Valid is false when every probe byte is admitted at every position
/// (an all-top pattern cannot be drifted out of).
struct DriftProbe {
  size_t Pos = 0;
  char Byte = 0;
  bool Valid = false;
};

DriftProbe findDriftProbe(const KeyPattern &Pattern);

/// Tunables for the adaptive runtime.
struct AdaptiveOptions {
  /// Family synthesized for each generation.
  HashFamily Family = HashFamily::OffXor;
  IsaLevel Isa = IsaLevel::Native;
  BatchPath Preferred = BatchPath::Auto;
  FallbackKind Fallback = FallbackKind::LowLevel;

  /// Reservoir capacity for out-of-format keys.
  size_t SamplerCapacity = 512;

  /// Keys per drift window.
  size_t DriftWindow = 2048;

  /// Mismatch ratio that trips a window.
  double DriftThreshold = 0.02;

  /// Minimum time between hot swaps; trips landing inside it are
  /// ignored (anti-thrash).
  std::chrono::milliseconds Cooldown{250};

  /// Sampled keys required before a resynthesis is attempted.
  size_t MinSamples = 16;

  /// Sample one admitted (in-format) key out of every N into a second
  /// reservoir for the live quality monitor (quality/monitor.h); 0
  /// disables the sampling entirely (the default — the extra relaxed
  /// counter bump never runs on the hot path unless asked for).
  size_t QualitySampleEvery = 0;

  /// True: tripped windows trigger the background worker thread.
  /// False: trips only latch resynthesisPending() and the owner drives
  /// the swap with pumpResynthesis() — the deterministic mode the tests
  /// and benchmarks use.
  bool Background = true;
};

/// A hash functor that survives key-distribution drift. Thread-safe:
/// any number of threads may hash concurrently with at most one
/// resynthesis in flight.
class AdaptiveHash {
public:
  /// Starts from \p Pattern (synthesizing its first generation when the
  /// pattern is non-trivial). An empty pattern cold-starts: every key
  /// takes the fallback lane until enough samples accumulate to infer a
  /// pattern from scratch.
  explicit AdaptiveHash(KeyPattern Pattern, AdaptiveOptions Options = {});

  /// Joins the worker and releases every retired generation. All reader
  /// threads must have quiesced.
  ~AdaptiveHash();

  AdaptiveHash(const AdaptiveHash &) = delete;
  AdaptiveHash &operator=(const AdaptiveHash &) = delete;

  /// Hashes one key: specialized kernel when the guard admits it,
  /// fallback otherwise (the miss is sampled and counted).
  uint64_t operator()(std::string_view Key) const;

  /// Batch form: Out[I] = (*this)(Keys[I]). Guard sweep + specialized
  /// batch kernel for admitted keys, fallback lane for the rest; one
  /// drift observation per call.
  void hashBatch(const std::string_view *Keys, uint64_t *Out,
                 size_t N) const;

  /// Generation counter; bumps on every hot swap. Containers compare it
  /// against the epoch they built at and rehashWith on mismatch.
  uint64_t epoch() const;

  /// Pattern guarding the current generation.
  KeyPattern pattern() const;

  /// The current generation's specialized hash (invalid during a
  /// cold start). A copy: safe to hold across swaps.
  SynthesizedHash specialized() const;

  /// One internally consistent view of a published generation. epoch(),
  /// pattern() and specialized() are three separate acquire loads — a
  /// hot swap between them hands the caller epoch N with generation
  /// N+1's plan, which is exactly the tear a shard migration must not
  /// build on. snapshot() reads the generation pointer once.
  struct Snapshot {
    uint64_t Epoch = 0;
    KeyPattern Pattern;
    SynthesizedHash Fast; ///< Invalid during a cold start.
  };
  Snapshot snapshot() const;

  /// Lane decision + hash for one key: Admitted means the guard passed
  /// and Hash came from the specialized kernel of generation Epoch;
  /// otherwise Hash is the fallback value. The sharded serving layer
  /// routes on this — admitted keys into the image-keyed fast lane,
  /// the rest into the spill lane — so it must know which lane
  /// produced the value, which operator() deliberately hides.
  struct Routed {
    uint64_t Hash = 0;
    uint64_t Epoch = 0;
    bool Admitted = false;
  };
  Routed route(std::string_view Key) const;

  /// Batch form of route(): Out[I] receives the hash, the indices of
  /// guard-rejected keys land in MissIdx (caller provides capacity for
  /// N) and the generation epoch all admitted hashes came from is
  /// stored in Epoch. Returns the miss count. Drift observation and
  /// sampling happen exactly as in hashBatch.
  size_t routeBatch(const std::string_view *Keys, uint64_t *Out, size_t N,
                    uint32_t *MissIdx, uint64_t &Epoch) const;

  /// Registers \p Listener to run after every hot swap publish, on the
  /// publishing thread, outside SwapMutex (so a listener may call back
  /// into the AdaptiveHash). The serving layer uses it to kick shard
  /// migration instead of polling epoch(). Must be set before
  /// concurrent hashing starts; one listener at a time.
  void setSwapListener(std::function<void(uint64_t NewEpoch)> Listener);

  /// Hot swaps completed.
  uint64_t swaps() const { return Swaps.load(std::memory_order_relaxed); }

  /// Keys admitted / rejected by the guard since construction.
  uint64_t guardPasses() const {
    return Detector.observedTotal() - Detector.mismatchedTotal();
  }
  uint64_t guardMisses() const { return Detector.mismatchedTotal(); }

  /// Mismatch ratio of the last closed drift window.
  double windowMismatchRatio() const { return Detector.lastRatio(); }

  /// True when a tripped window is waiting for pumpResynthesis()
  /// (manual mode) or the worker (background mode).
  bool resynthesisPending() const {
    return Pending.load(std::memory_order_acquire);
  }

  /// Runs one resynthesis attempt on the calling thread, bypassing the
  /// cooldown (deterministic driver for tests/benchmarks; works in
  /// either mode). Returns true when a new generation was published.
  bool pumpResynthesis();

  /// Copy of the currently sampled out-of-format keys.
  std::vector<std::string> sampledKeys() const { return Sampler.snapshot(); }

  /// Copy of the currently sampled admitted (in-format) keys; empty
  /// unless AdaptiveOptions::QualitySampleEvery is set.
  std::vector<std::string> sampledInFormatKeys() const {
    return InFormatSampler.snapshot();
  }

private:
  /// One published (pattern, hash) pair. Immutable after publish;
  /// readers reach it through one acquire load.
  struct Generation {
    KeyPattern Pattern;
    SynthesizedHash Fast; ///< Invalid during a cold start.
    /// Pattern compiled against Fast's load schedule so the batch path
    /// guards on words the kernel already loads (executor.h BatchGuard).
    BatchGuard Guard;
    uint64_t Epoch = 0;
  };

  const Generation *active() const {
    return Active.load(std::memory_order_acquire);
  }

  void publish(std::unique_ptr<const Generation> G);
  void onTripped() const;
  bool performResynthesis(bool RespectCooldown);
  uint64_t fallbackHash(std::string_view Key) const;

  /// Every-Nth sampling of admitted keys (single-key path: the key is
  /// known in-format already).
  void maybeSampleInFormat(std::string_view Key) const {
    const size_t Every = Options.QualitySampleEvery;
    if (Every == 0)
      return;
    if (InFormatTick.fetch_add(1, std::memory_order_relaxed) % Every == 0)
      InFormatSampler.offer(Key);
  }

  /// Batch form: advances the tick by the admitted count and offers one
  /// candidate per crossed boundary, membership-checked against \p G's
  /// pattern so a guard-missed key never pollutes the quality reservoir.
  void sampleInFormatBatch(const Generation *G, const std::string_view *Keys,
                           size_t N, size_t Misses) const;

  AdaptiveOptions Options;

  /// RCU-style publish point. A raw atomic pointer, not
  /// atomic<shared_ptr> (libstdc++ implements the latter with a
  /// spinlock pool, which would serialize readers). Retired
  /// generations park in Retired until destruction — the swap cooldown
  /// bounds their number, and readers may still hold a pointer into an
  /// arbitrarily old generation.
  std::atomic<const Generation *> Active{nullptr};
  std::vector<std::unique_ptr<const Generation>> Retired;

  /// Serializes resynthesis + publish (never taken by readers).
  std::mutex SwapMutex;

  /// Post-swap hook (setSwapListener); invoked outside SwapMutex.
  std::function<void(uint64_t)> SwapListener;

  mutable KeySampler Sampler;
  mutable KeySampler InFormatSampler;
  mutable std::atomic<uint64_t> InFormatTick{0};
  mutable DriftDetector Detector;
  std::atomic<uint64_t> Swaps{0};
  mutable std::atomic<bool> Pending{false};
  std::atomic<int64_t> LastSwapNs{0};
  std::atomic<uint64_t> FailedSyntheses{0};

  /// Constructed last so the worker never observes a half-built *this;
  /// null in manual mode.
  std::unique_ptr<Resynthesizer> Worker;
};

} // namespace sepe

#endif // SEPE_RUNTIME_ADAPTIVE_HASH_H
