//===- runtime/resynthesizer.h - Background resynthesis worker --*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A single background thread that runs a resynthesis callback whenever
/// triggered. Triggers coalesce: any number of trigger() calls while the
/// callback runs collapse into one more run, so a burst of tripped drift
/// windows costs one synthesis, not one per window. The hashing fast
/// path never blocks on this thread — trigger() takes the mutex only
/// long enough to flip a flag, and only the (already slow) tripped-
/// window path calls it.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_RUNTIME_RESYNTHESIZER_H
#define SEPE_RUNTIME_RESYNTHESIZER_H

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

namespace sepe {

/// Owns one worker thread running a user callback on demand.
class Resynthesizer {
public:
  using Work = std::function<void()>;

  /// Starts the worker; \p Fn runs on it after each trigger().
  explicit Resynthesizer(Work Fn);

  /// Stops and joins the worker (equivalent to stop()).
  ~Resynthesizer();

  /// Requests one more callback run. Never blocks on the callback;
  /// triggers arriving while it runs coalesce into a single rerun.
  void trigger();

  /// Stops the worker after any in-flight callback finishes and joins
  /// it. Idempotent. Pending (coalesced) triggers are dropped.
  void stop();

private:
  void run();

  Work Fn;
  std::mutex Mutex;
  std::condition_variable Cond;
  bool Pending = false;
  bool Stopping = false;
  std::thread Worker;
};

} // namespace sepe

#endif // SEPE_RUNTIME_RESYNTHESIZER_H
