//===- runtime/adaptive_hash.cpp - Guarded dispatch + hot re-synthesis ----===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "runtime/adaptive_hash.h"

#include "core/inference.h"
#include "core/synthesizer.h"
#include "hashes/city.h"
#include "hashes/low_level_hash.h"
#include "support/telemetry.h"
#include "support/trace.h"

#include <utility>

namespace sepe {

namespace {

int64_t nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

} // namespace

DriftProbe findDriftProbe(const KeyPattern &Pattern) {
  for (size_t I = 0; I != Pattern.minLength(); ++I)
    for (const uint8_t Candidate : {uint8_t{0xFF}, uint8_t{'X'},
                                    uint8_t{'!'}})
      if (!Pattern.byteAt(I).matches(Candidate))
        return {I, static_cast<char>(Candidate), true};
  return {};
}

AdaptiveHash::AdaptiveHash(KeyPattern Pattern, AdaptiveOptions Opts)
    : Options(Opts), Sampler(Opts.SamplerCapacity),
      InFormatSampler(Opts.SamplerCapacity, 0x1f5a),
      Detector(Opts.DriftWindow, Opts.DriftThreshold) {
  auto G = std::make_unique<Generation>();
  G->Pattern = std::move(Pattern);
  G->Epoch = 0;
  if (!G->Pattern.empty()) {
    Expected<HashPlan> Plan = synthesize(G->Pattern, Options.Family);
    if (Plan) {
      G->Fast = SynthesizedHash(Plan.take(), Options.Isa, Options.Preferred);
      G->Guard = G->Fast.compileGuard(G->Pattern);
    }
    // A pattern the synthesizer rejects (e.g. all-constant) cold-starts
    // on the fallback lane like an empty one.
  }
  {
    std::lock_guard<std::mutex> Lock(SwapMutex);
    publish(std::move(G));
  }
  if (Options.Background)
    Worker = std::make_unique<Resynthesizer>(
        [this] { performResynthesis(/*RespectCooldown=*/true); });
}

AdaptiveHash::~AdaptiveHash() {
  if (Worker)
    Worker->stop();
}

void AdaptiveHash::publish(std::unique_ptr<const Generation> G) {
  // Callers hold SwapMutex. Release order pairs with the acquire load
  // in active(): a reader that sees the new pointer sees the fully
  // constructed generation behind it.
  const Generation *Prev = Active.load(std::memory_order_relaxed);
  const Generation *Raw = G.get();
  Retired.push_back(std::move(G));
  Active.store(Raw, std::memory_order_release);
  SEPE_TRACE_INSTANT(SwapPublish, Raw->Epoch, 0);
  if (Prev != nullptr)
    SEPE_TRACE_INSTANT(PlanRetired, Prev->Epoch, 0);
}

uint64_t AdaptiveHash::fallbackHash(std::string_view Key) const {
  return Options.Fallback == FallbackKind::City
             ? cityHash64(Key.data(), Key.size())
             : lowLevelHash(Key.data(), Key.size(), 0);
}

void AdaptiveHash::onTripped() const {
  SEPE_COUNT("adaptive.window.tripped");
  SEPE_TRACE_INSTANT(DriftTripped, active()->Epoch,
                     static_cast<uint64_t>(Detector.lastRatio() * 1e6));
  Pending.store(true, std::memory_order_release);
  if (Worker)
    Worker->trigger();
}

void AdaptiveHash::sampleInFormatBatch(const Generation *G,
                                       const std::string_view *Keys,
                                       size_t N, size_t Misses) const {
  const size_t Every = Options.QualitySampleEvery;
  if (Every == 0 || !G->Fast.valid() || Misses >= N)
    return;
  const uint64_t Admitted = N - Misses;
  const uint64_t Before =
      InFormatTick.fetch_add(Admitted, std::memory_order_relaxed);
  // One candidate per Every-boundary this batch's admitted keys cross.
  // The candidate index walks the batch with the tick; the membership
  // check keeps guard-missed keys out of the quality reservoir without
  // paying for a per-key scan.
  for (uint64_t T = Before + (Every - Before % Every) % Every;
       T < Before + Admitted; T += Every) {
    const std::string_view Key = Keys[static_cast<size_t>(T % N)];
    if (G->Pattern.matches(Key))
      InFormatSampler.offer(Key);
  }
}

uint64_t AdaptiveHash::operator()(std::string_view Key) const {
  const Generation *G = active();
  if (G->Fast.valid() && G->Pattern.matches(Key)) {
    const uint64_t H = G->Fast(Key);
    maybeSampleInFormat(Key);
    if (Detector.observe(1, 0) == DriftDetector::Window::Tripped)
      onTripped();
    return H;
  }
  SEPE_COUNT("adaptive.guard.miss_keys");
  Sampler.offer(Key);
  if (Detector.observe(1, 1) == DriftDetector::Window::Tripped)
    onTripped();
  return fallbackHash(Key);
}

void AdaptiveHash::hashBatch(const std::string_view *Keys, uint64_t *Out,
                             size_t N) const {
  const Generation *G = active();
  size_t Misses = 0;
  if (!G->Fast.valid()) {
    // Cold start: everything takes the fallback lane and is sampled.
    for (size_t I = 0; I != N; ++I) {
      Out[I] = fallbackHash(Keys[I]);
      Sampler.offer(Keys[I]);
    }
    Misses = N;
  } else {
    constexpr size_t Block = 1024;
    uint32_t MissIdx[Block];
    for (size_t Base = 0; Base < N; Base += Block) {
      const size_t Count = N - Base < Block ? N - Base : Block;
      const size_t M = G->Fast.hashBatchGuarded(
          G->Pattern, G->Guard, Keys + Base, Out + Base, Count, MissIdx);
      for (size_t I = 0; I != M; ++I) {
        const size_t K = Base + MissIdx[I];
        Out[K] = fallbackHash(Keys[K]);
        Sampler.offer(Keys[K]);
      }
      Misses += M;
    }
  }
  sampleInFormatBatch(G, Keys, N, Misses);
  SEPE_COUNT_N("adaptive.guard.pass_keys", N - Misses);
  SEPE_COUNT_N("adaptive.guard.miss_keys", Misses);
  if (Detector.observe(N, Misses) == DriftDetector::Window::Tripped) {
    SEPE_RECORD("adaptive.window.mismatch_ppm",
                static_cast<uint64_t>(Detector.lastRatio() * 1e6));
    onTripped();
  }
}

AdaptiveHash::Routed AdaptiveHash::route(std::string_view Key) const {
  const Generation *G = active();
  if (G->Fast.valid() && G->Pattern.matches(Key)) {
    const uint64_t H = G->Fast(Key);
    maybeSampleInFormat(Key);
    if (Detector.observe(1, 0) == DriftDetector::Window::Tripped)
      onTripped();
    return {H, G->Epoch, true};
  }
  SEPE_COUNT("adaptive.guard.miss_keys");
  Sampler.offer(Key);
  if (Detector.observe(1, 1) == DriftDetector::Window::Tripped)
    onTripped();
  return {fallbackHash(Key), G->Epoch, false};
}

size_t AdaptiveHash::routeBatch(const std::string_view *Keys, uint64_t *Out,
                                size_t N, uint32_t *MissIdx,
                                uint64_t &Epoch) const {
  const Generation *G = active();
  Epoch = G->Epoch;
  size_t Misses = 0;
  if (!G->Fast.valid()) {
    for (size_t I = 0; I != N; ++I) {
      Out[I] = fallbackHash(Keys[I]);
      Sampler.offer(Keys[I]);
      MissIdx[Misses++] = static_cast<uint32_t>(I);
    }
  } else {
    constexpr size_t Block = 1024;
    uint32_t Local[Block];
    for (size_t Base = 0; Base < N; Base += Block) {
      const size_t Count = N - Base < Block ? N - Base : Block;
      const size_t M = G->Fast.hashBatchGuarded(
          G->Pattern, G->Guard, Keys + Base, Out + Base, Count, Local);
      for (size_t I = 0; I != M; ++I) {
        const size_t K = Base + Local[I];
        Out[K] = fallbackHash(Keys[K]);
        Sampler.offer(Keys[K]);
        MissIdx[Misses++] = static_cast<uint32_t>(K);
      }
    }
    sampleInFormatBatch(G, Keys, N, Misses);
  }
  SEPE_COUNT_N("adaptive.guard.pass_keys", N - Misses);
  SEPE_COUNT_N("adaptive.guard.miss_keys", Misses);
  if (Detector.observe(N, Misses) == DriftDetector::Window::Tripped) {
    SEPE_RECORD("adaptive.window.mismatch_ppm",
                static_cast<uint64_t>(Detector.lastRatio() * 1e6));
    onTripped();
  }
  return Misses;
}

uint64_t AdaptiveHash::epoch() const { return active()->Epoch; }

KeyPattern AdaptiveHash::pattern() const { return active()->Pattern; }

SynthesizedHash AdaptiveHash::specialized() const { return active()->Fast; }

AdaptiveHash::Snapshot AdaptiveHash::snapshot() const {
  const Generation *G = active();
  return {G->Epoch, G->Pattern, G->Fast};
}

void AdaptiveHash::setSwapListener(
    std::function<void(uint64_t)> Listener) {
  std::lock_guard<std::mutex> Lock(SwapMutex);
  SwapListener = std::move(Listener);
}

bool AdaptiveHash::pumpResynthesis() {
  return performResynthesis(/*RespectCooldown=*/false);
}

bool AdaptiveHash::performResynthesis(bool RespectCooldown) {
  SEPE_SPAN("adaptive.resynthesis");
  SEPE_TRACE_SPAN(TraceSpan, ResynthAttempt, epoch());
  uint64_t NewEpoch = 0;
  std::function<void(uint64_t)> Listener;
  {
    std::lock_guard<std::mutex> Lock(SwapMutex);
    Pending.store(false, std::memory_order_release);
    if (RespectCooldown) {
      const int64_t Last = LastSwapNs.load(std::memory_order_relaxed);
      const int64_t CooldownNs =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              Options.Cooldown)
              .count();
      if (Last != 0 && nowNs() - Last < CooldownNs) {
        SEPE_COUNT("adaptive.resynthesis.skipped_cooldown");
        TraceSpan.setArg(
            static_cast<uint64_t>(trace::ResynthOutcome::SkippedCooldown));
        return false;
      }
    }
    if (Sampler.size() < Options.MinSamples) {
      SEPE_COUNT("adaptive.resynthesis.skipped_few_samples");
      TraceSpan.setArg(
          static_cast<uint64_t>(trace::ResynthOutcome::SkippedFewSamples));
      return false;
    }
    const Generation *Cur = Active.load(std::memory_order_relaxed);
    const std::vector<std::string> Samples = Sampler.drain();
    const KeyPattern Sampled = inferPattern(Samples);
    // Cold start joins nothing: joining with an empty pattern would widen
    // MinLen to 0 and every position to near-top, destroying the structure
    // the samples just revealed.
    const KeyPattern Joined = (!Cur->Fast.valid() && Cur->Pattern.empty())
                                  ? Sampled
                                  : join(Cur->Pattern, Sampled);
    if (Joined == Cur->Pattern) {
      SEPE_COUNT("adaptive.resynthesis.skipped_unchanged");
      TraceSpan.setArg(
          static_cast<uint64_t>(trace::ResynthOutcome::SkippedUnchanged));
      return false;
    }
    Expected<HashPlan> Plan = synthesize(Joined, Options.Family);
    if (!Plan) {
      SEPE_COUNT("adaptive.resynthesis.synthesis_failed");
      TraceSpan.setArg(
          static_cast<uint64_t>(trace::ResynthOutcome::SynthesisFailed));
      FailedSyntheses.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    auto G = std::make_unique<Generation>();
    G->Pattern = Joined;
    G->Fast = SynthesizedHash(Plan.take(), Options.Isa, Options.Preferred);
    G->Guard = G->Fast.compileGuard(G->Pattern);
    G->Epoch = Cur->Epoch + 1;
    NewEpoch = G->Epoch;
    publish(std::move(G));
    Swaps.fetch_add(1, std::memory_order_relaxed);
    LastSwapNs.store(nowNs(), std::memory_order_relaxed);
    Detector.reset(NewEpoch);
    SEPE_COUNT("adaptive.swap");
    TraceSpan.setGen(NewEpoch);
    TraceSpan.setArg(static_cast<uint64_t>(trace::ResynthOutcome::Swapped));
    Listener = SwapListener;
  }
  // Outside SwapMutex so a listener may call back into the hash (e.g.
  // pump again, or read snapshot()) without self-deadlocking.
  if (Listener)
    Listener(NewEpoch);
  return true;
}

} // namespace sepe
