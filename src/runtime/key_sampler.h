//===- runtime/key_sampler.h - Reservoir sampler for drifted keys *- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded reservoir of out-of-format keys, filled by the adaptive
/// dispatcher's fallback lane and drained by the resynthesizer. Vitter's
/// Algorithm R keeps a uniform sample of everything ever offered, so the
/// re-learned pattern reflects the whole drifted stream, not just its
/// most recent burst. Mutex-protected: offers only happen on the guard
/// *miss* path, which already left the specialized fast path, so a lock
/// here never taxes in-format traffic.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_RUNTIME_KEY_SAMPLER_H
#define SEPE_RUNTIME_KEY_SAMPLER_H

#include "support/trace.h"

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sepe {

/// Thread-safe uniform reservoir of key strings.
class KeySampler {
public:
  explicit KeySampler(size_t Capacity, uint64_t Seed = 0x5a3b1e)
      : Capacity(Capacity ? Capacity : 1), Rng(Seed | 1) {
    Reservoir.reserve(this->Capacity);
  }

  /// Offers one key; kept with probability Capacity / offered-so-far
  /// (Algorithm R), so the reservoir stays a uniform sample.
  void offer(std::string_view Key) {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Count;
    if (Reservoir.size() < Capacity) {
      Reservoir.emplace_back(Key);
      return;
    }
    const uint64_t Slot = nextRandom() % Count;
    if (Slot < Capacity)
      Reservoir[static_cast<size_t>(Slot)].assign(Key.data(), Key.size());
  }

  /// Moves the reservoir out and resets the offered count; what the
  /// resynthesizer consumes, so one drifted burst is never re-learned
  /// twice.
  std::vector<std::string> drain() {
    std::lock_guard<std::mutex> Lock(Mutex);
    std::vector<std::string> Out = std::move(Reservoir);
    Reservoir.clear();
    Reservoir.reserve(Capacity);
    Count = 0;
    SEPE_TRACE_INSTANT(SamplerDrain, 0, Out.size());
    return Out;
  }

  /// Copy of the current reservoir without resetting; feeds the
  /// sampled-key section of --metrics dumps.
  std::vector<std::string> snapshot() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    SEPE_TRACE_INSTANT(SamplerSnapshot, 0, Reservoir.size());
    return Reservoir;
  }

  /// Keys currently held (<= capacity()).
  size_t size() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Reservoir.size();
  }

  /// Keys offered since construction or the last drain.
  uint64_t offered() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Count;
  }

  size_t capacity() const { return Capacity; }

private:
  /// xorshift64*: cheap, seedable, and good enough for reservoir slot
  /// selection (no adversary controls the stream order here).
  uint64_t nextRandom() {
    Rng ^= Rng >> 12;
    Rng ^= Rng << 25;
    Rng ^= Rng >> 27;
    return Rng * 0x2545F4914F6CDD1DULL;
  }

  mutable std::mutex Mutex;
  std::vector<std::string> Reservoir;
  size_t Capacity;
  uint64_t Count = 0;
  uint64_t Rng;
};

} // namespace sepe

#endif // SEPE_RUNTIME_KEY_SAMPLER_H
