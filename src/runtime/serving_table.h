//===- runtime/serving_table.h - Adaptive sharded serving layer -*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end serving story: an AdaptiveHash (guarded dispatch,
/// drift detection, hot re-synthesis) in front of a ShardedIndexMap
/// (the image-keyed concurrent fast lane), plus a small sharded spill
/// lane for keys the guard rejects — out-of-format traffic is served
/// from an ordinary string-keyed map until a re-synthesis widens the
/// pattern, at which point maintain() migrates the fast lane to the new
/// plan and sweeps newly admitted spill keys into it.
///
/// Routing discipline (the part that makes hot swaps lossless):
///
///   - The steady-state path uses AdaptiveHash::routeBatch images and
///     the fast lane's *labeled* entry points: every probe validates
///     that the image's generation still keys the active table, inside
///     one table load, so a migration landing between hash and probe is
///     detected, never silently probed across (ProbeResult::Stale).
///   - Stale probes redo through the fast lane's *guarded* entry points
///     (pattern check + hash + probe against one table load).
///   - A key the guard rejects lives in the spill lane. Pattern updates
///     only ever widen (the quad join is monotone), so a rejected key
///     cannot be sitting in the fast lane — no double bookkeeping.
///   - Lookups that miss the fast lane check the spill lane and then
///     retry the fast lane once: a concurrent sweep moves keys
///     spill -> fast (insert first, then remove, under the spill shard
///     lock), so a racing reader that misses both lanes mid-move finds
///     the key on the retry. Erase takes the lanes in the opposite
///     order (spill first), which closes the symmetric race.
///
/// The acceptance property — a hot swap under full read/write/drift
/// traffic completes with zero failed lookups for keys that are present
/// throughout — follows: every present key is in the old fast table
/// (kept current by the container's dual-write protocol), the successor
/// table (seal copy), or the spill lane at every instant, and the probe
/// order above visits whichever lane it can be in.
///
/// Sealed shards can go one step further: sealStatic() snapshots the
/// present subset of a key list into a synthesized minimal perfect
/// hash (mphf/mphf.h) and serves those keys as values[mphf(key)] —
/// one fingerprint check plus one key compare, no probing, no locks.
/// The static lane is a pure cache in front of the dynamic lanes:
/// out-of-set keys fall through (the key compare keeps the table
/// exact even on a fingerprint false positive), puts of new keys
/// simply miss it, and put() never overwrites a present key, so the
/// only mutation that can make a sealed value stale is erase() of a
/// sealed key — which atomically invalidates the whole lane.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_RUNTIME_SERVING_TABLE_H
#define SEPE_RUNTIME_SERVING_TABLE_H

#include "container/sharded_index_map.h"
#include "mphf/mphf.h"
#include "runtime/adaptive_hash.h"
#include "support/telemetry.h"
#include "support/trace.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace sepe {

/// Concurrent key-value table served through an adaptive synthesized
/// hash. Any number of threads may call get/put/erase/getBatch/putBatch
/// concurrently; maintain() may run concurrently with all of them (at
/// most one maintain() makes progress at a time). Destruction requires
/// external quiescence, like AdaptiveHash.
template <typename Value> class ServingTable {
public:
  struct Stats {
    size_t FastSize = 0;
    size_t SpillSize = 0;
    size_t StaticSize = 0;
    uint64_t FastEpoch = 0;
    uint64_t AdaptiveEpoch = 0;
    uint64_t Migrations = 0;
    uint64_t SweptKeys = 0;
    bool FastLane = false;
    bool StaticActive = false;
  };

  /// \p Pattern seeds the adaptive hash (empty cold-starts on the spill
  /// lane). The fast lane appears as soon as a generation's plan is
  /// bijective — FlatIndexMap's soundness condition — which in practice
  /// means AdaptiveOptions::Family should be a bijective family
  /// (HashFamily::Pext) for the fast lane to engage.
  explicit ServingTable(KeyPattern Pattern, AdaptiveOptions Options = {},
                        size_t ShardCountHint = 16)
      : ShardHint(ShardCountHint), Adaptive(std::move(Pattern), Options) {
    const AdaptiveHash::Snapshot Snap = Adaptive.snapshot();
    if (Snap.Fast.valid() && Snap.Fast.plan().Bijective) {
      FastStorage = std::make_unique<ShardedIndexMap<Value>>(
          Snap.Fast, Snap.Pattern, Snap.Epoch, ShardHint);
      FastPtr.store(FastStorage.get(), std::memory_order_release);
    }
  }

  ServingTable(const ServingTable &) = delete;
  ServingTable &operator=(const ServingTable &) = delete;

  /// The adaptive hash driving lane routing; exposed so callers can
  /// pump re-synthesis deterministically and read drift statistics.
  AdaptiveHash &adaptive() { return Adaptive; }
  const AdaptiveHash &adaptive() const { return Adaptive; }

  bool hasFastLane() const { return fast() != nullptr; }

  /// True while a sealed static lane is serving.
  bool staticLaneActive() const { return staticLane() != nullptr; }

  /// Seals the *present* subset of \p Keys (distinct) into a static
  /// MPHF-backed lane probed before every dynamic lane: one array load
  /// gated by a fingerprint check and an exact key compare. The
  /// extraction front-end reuses the adaptive hash's current bijective
  /// plan when one exists, so the MPHF distinguishes exactly the
  /// format's varying bits. Returns the number of keys sealed; 0 when
  /// none were present or MPHF construction failed (the table keeps
  /// serving from the dynamic lanes either way). Concurrent gets/puts
  /// are safe during the call; concurrent erases of the keys being
  /// sealed are not — seal quiescent shards.
  size_t sealStatic(const std::string_view *Keys, size_t N) {
    std::lock_guard<std::mutex> Lock(MaintainMutex);
    std::vector<std::string> SealedKeys;
    std::vector<Value> SealedValues;
    SealedKeys.reserve(N);
    SealedValues.reserve(N);
    for (size_t I = 0; I != N; ++I) {
      Value V;
      if (getDynamic(Keys[I], V)) {
        SealedKeys.emplace_back(Keys[I]);
        SealedValues.push_back(std::move(V));
      }
    }
    if (SealedKeys.empty())
      return 0;
    MphfBuildOptions Options;
    const AdaptiveHash::Snapshot Snap = Adaptive.snapshot();
    if (Snap.Fast.valid() && Snap.Fast.plan().Bijective)
      Options.Extract = std::make_shared<const HashPlan>(Snap.Fast.plan());
    std::vector<std::string_view> Views(SealedKeys.begin(),
                                        SealedKeys.end());
    Expected<Mphf> F = buildMphf(Views, Options);
    if (!F) {
      SEPE_COUNT("serving_table.static.seal_failed");
      return 0;
    }
    auto Lane = std::make_unique<StaticLane>();
    Lane->F = F.take();
    const size_t Count = SealedKeys.size();
    Lane->Fp.assign(Count, 0);
    Lane->Keys.resize(Count);
    Lane->Values.resize(Count);
    for (size_t I = 0; I != Count; ++I) {
      const Mphf::SlotFp SF =
          Lane->F.slotFpFromBase(Lane->F.baseImage(SealedKeys[I]));
      Lane->Fp[SF.Slot] = static_cast<uint8_t>(SF.FpWord);
      Lane->Keys[SF.Slot] = std::move(SealedKeys[I]);
      Lane->Values[SF.Slot] = std::move(SealedValues[I]);
    }
    StaticPtr.store(Lane.get(), std::memory_order_release);
    StaticStorage.push_back(std::move(Lane));
    SEPE_COUNT("serving_table.static.sealed");
    SEPE_TRACE_INSTANT(StaticSeal, Count, 0);
    return Count;
  }

  size_t sealStatic(const std::vector<std::string_view> &Keys) {
    return sealStatic(Keys.data(), Keys.size());
  }

  /// Unpublishes the static lane; dynamic lanes keep serving every
  /// key. Retired lane storage is freed at destruction, not here, so
  /// in-flight readers stay safe.
  void dropStatic() {
    std::lock_guard<std::mutex> Lock(MaintainMutex);
    StaticPtr.store(nullptr, std::memory_order_release);
  }

  /// Copies the value for \p Key into \p Out; false when absent.
  bool get(std::string_view Key, Value &Out) const {
    if (const StaticLane *S = staticLane(); S && S->find(Key, Out)) {
      SEPE_COUNT("serving_table.static.hit");
      return true;
    }
    return getDynamic(Key, Out);
  }

  /// The dynamic-lane probe path (fast -> spill -> guarded retry);
  /// get() puts the static lane in front of this.
  bool getDynamic(std::string_view Key, Value &Out) const {
    const AdaptiveHash::Routed R = Adaptive.route(Key);
    const ShardedIndexMap<Value> *F = fast();
    if (F && R.Admitted) {
      switch (F->getHashed(R.Hash, R.Epoch, Out)) {
      case ProbeResult::Hit:
        return true;
      case ProbeResult::Stale:
        if (F->getGuarded(Key, Out) == ProbeResult::Hit)
          return true;
        break;
      default:
        break;
      }
    }
    if (spillFind(Key, Out))
      return true;
    // A concurrent spill->fast sweep may have moved the key after our
    // fast probe and before our spill probe; one guarded retry closes
    // the window (moves only ever go in that direction). The retry must
    // NOT be gated on R.Admitted: admission was judged by the (possibly
    // retired) generation route() saw, while the sweep moves exactly
    // the keys the *new* generation admits — getGuarded re-judges
    // against the current pattern internally. Reload the lane pointer
    // too, for the cold-start case where maintain() created it
    // mid-call.
    if (const ShardedIndexMap<Value> *F2 = fast();
        F2 && F2->getGuarded(Key, Out) == ProbeResult::Hit) {
      SEPE_COUNT("serving_table.get.retry_hit");
      return true;
    }
    return false;
  }

  /// Inserts (key, value); returns false (keeping the old value) when
  /// already present.
  bool put(std::string_view Key, Value V) {
    const AdaptiveHash::Routed R = Adaptive.route(Key);
    ShardedIndexMap<Value> *F = fast();
    if (F) {
      bool Inserted = false;
      if (R.Admitted && F->putHashed(Key, R.Hash, R.Epoch, V, Inserted))
        return Inserted;
      // Stale epoch, or route()'s admission verdict came from a retired
      // generation: let the fast lane re-judge against its own current
      // pattern. A key it rejects spills until a widened generation's
      // sweep picks it up; probing even when R.Admitted is false keeps a
      // re-put of an already-swept key out of the spill lane.
      if (F->putGuarded(Key, V, Inserted))
        return Inserted;
    }
    return spillInsert(Key, std::move(V));
  }

  /// Removes \p Key; returns false when absent. Spill lane first: the
  /// sweep moves keys spill -> fast under the spill shard lock, so
  /// probing spill before fast guarantees one of the two sees the key
  /// wherever the move is.
  bool erase(std::string_view Key) {
    const AdaptiveHash::Routed R = Adaptive.route(Key);
    const bool SpillErased = spillErase(Key);
    bool FastErased = false;
    ShardedIndexMap<Value> *F = fast();
    if (F) {
      // Probe the fast lane even when route() said not-admitted: the
      // verdict may predate a swap whose sweep moved this key into the
      // fast lane (eraseGuarded re-judges against the current pattern).
      bool Erased = false;
      if (R.Admitted && F->eraseHashed(Key, R.Hash, R.Epoch, Erased))
        FastErased = Erased;
      else if (F->eraseGuarded(Key, Erased))
        FastErased = Erased;
    }
    const bool Erased = FastErased || SpillErased;
    // put() never overwrites a present key, so erasing a sealed key is
    // the only way a static-lane value can go stale: drop the lane
    // before returning, so a get() ordered after this erase cannot be
    // served the sealed copy. Storage is retired, not freed.
    if (Erased) {
      if (const StaticLane *S = staticLane(); S && S->contains(Key)) {
        StaticPtr.store(nullptr, std::memory_order_release);
        SEPE_COUNT("serving_table.static.invalidated");
      }
    }
    return Erased;
  }

  /// Batch lookup: Found[I] = 1 and Out[I] = value when present.
  /// Returns the hit count. Admitted keys run the dense
  /// hash -> partition -> per-shard probe pipeline; guard misses and
  /// fast-lane misses fall through to the spill lane per key.
  size_t getBatch(const std::string_view *Keys, Value *Out, uint8_t *Found,
                  size_t N) const {
    // Sealed tables serve most traffic from the static lane: batch the
    // base images through the MPHF's fused kernels and let only the
    // residue (out-of-set keys, unsealed inserts) take the dynamic
    // path per key.
    if (const StaticLane *S = staticLane()) {
      uint64_t Bases[RouteBlock];
      size_t Hits = 0;
      for (size_t Base = 0; Base < N; Base += RouteBlock) {
        const size_t Count = std::min(RouteBlock, N - Base);
        S->F.baseBatch(Keys + Base, Bases, Count);
        for (size_t I = 0; I != Count; ++I) {
          const size_t K = Base + I;
          if (S->findFromBase(Bases[I], Keys[K], Out[K])) {
            SEPE_COUNT("serving_table.static.hit");
            Found[K] = 1;
            ++Hits;
          } else if (getDynamic(Keys[K], Out[K])) {
            Found[K] = 1;
            ++Hits;
          } else {
            Found[K] = 0;
          }
        }
      }
      return Hits;
    }
    const ShardedIndexMap<Value> *F = fast();
    size_t Hits = 0;
    uint64_t Hashes[RouteBlock];
    uint32_t MissIdx[RouteBlock];
    uint16_t AdmIdx[RouteBlock];
    uint64_t AdmImages[RouteBlock];
    Value AdmOut[RouteBlock];
    uint8_t AdmFound[RouteBlock];
    for (size_t Base = 0; Base < N; Base += RouteBlock) {
      const size_t Count = std::min(RouteBlock, N - Base);
      uint64_t Epoch = 0;
      const size_t Misses =
          Adaptive.routeBatch(Keys + Base, Hashes, Count, MissIdx, Epoch);
      for (size_t I = 0; I != Count; ++I)
        Found[Base + I] = 2; // Sentinel: undecided.
      for (size_t I = 0; I != Misses; ++I)
        Found[Base + MissIdx[I]] = 0;
      size_t Admitted = 0;
      for (size_t I = 0; I != Count; ++I)
        if (Found[Base + I] == 2) {
          AdmIdx[Admitted] = static_cast<uint16_t>(I);
          AdmImages[Admitted] = Hashes[I];
          ++Admitted;
        }
      size_t FastHits = 0;
      if (F && Admitted != 0 &&
          F->getBatchHashed(AdmImages, Epoch, AdmOut, AdmFound, Admitted,
                            FastHits)) {
        for (size_t I = 0; I != Admitted; ++I) {
          const size_t K = Base + AdmIdx[I];
          if (AdmFound[I]) {
            Out[K] = AdmOut[I];
            Found[K] = 1;
          } else {
            Found[K] = 0;
          }
        }
      } else if (F && Admitted != 0) {
        // Stale epoch (migration window): guarded per-key redo.
        for (size_t I = 0; I != Admitted; ++I) {
          const size_t K = Base + AdmIdx[I];
          Found[K] =
              F->getGuarded(Keys[K], Out[K]) == ProbeResult::Hit ? 1 : 0;
        }
      } else {
        for (size_t I = 0; I != Admitted; ++I)
          Found[Base + AdmIdx[I]] = 0;
      }
      // Spill lane + sweep-race retry for everything still unresolved
      // (reload the lane pointer: see get() on why the retry must not
      // depend on the admission verdict or the lane snapshot).
      for (size_t I = 0; I != Count; ++I) {
        const size_t K = Base + I;
        if (Found[K] == 1) {
          ++Hits;
          continue;
        }
        if (spillFind(Keys[K], Out[K])) {
          Found[K] = 1;
          ++Hits;
          continue;
        }
        // Loaded after the spill miss so a lane created mid-call is
        // still seen.
        const ShardedIndexMap<Value> *F2 = fast();
        if (F2 && F2->getGuarded(Keys[K], Out[K]) == ProbeResult::Hit) {
          SEPE_COUNT("serving_table.get.retry_hit");
          Found[K] = 1;
          ++Hits;
        }
      }
    }
    return Hits;
  }

  /// Batch insert; returns the number of keys newly inserted.
  size_t putBatch(const std::string_view *Keys, const Value *Values,
                  size_t N) {
    ShardedIndexMap<Value> *F = fast();
    size_t Inserted = 0;
    uint64_t Hashes[RouteBlock];
    uint32_t MissIdx[RouteBlock];
    uint64_t AdmImages[RouteBlock];
    std::string_view AdmKeys[RouteBlock];
    Value AdmValues[RouteBlock];
    uint8_t IsMiss[RouteBlock];
    for (size_t Base = 0; Base < N; Base += RouteBlock) {
      const size_t Count = std::min(RouteBlock, N - Base);
      uint64_t Epoch = 0;
      const size_t Misses =
          Adaptive.routeBatch(Keys + Base, Hashes, Count, MissIdx, Epoch);
      for (size_t I = 0; I != Count; ++I)
        IsMiss[I] = 0;
      for (size_t I = 0; I != Misses; ++I)
        IsMiss[MissIdx[I]] = 1;
      size_t Admitted = 0;
      for (size_t I = 0; I != Count; ++I)
        if (!IsMiss[I]) {
          AdmImages[Admitted] = Hashes[I];
          AdmKeys[Admitted] = Keys[Base + I];
          AdmValues[Admitted] = Values[Base + I];
          ++Admitted;
        }
      size_t FastInserted = 0;
      if (F && Admitted != 0 &&
          F->putBatchHashed(AdmKeys, AdmImages, AdmValues, Admitted, Epoch,
                            FastInserted)) {
        Inserted += FastInserted;
      } else if (Admitted != 0) {
        // No fast lane, or stale epoch: guarded per-key redo, spilling
        // what the table's pattern rejects.
        for (size_t I = 0; I != Admitted; ++I) {
          bool One = false;
          if (F && F->putGuarded(AdmKeys[I], AdmValues[I], One))
            Inserted += One ? 1 : 0;
          else
            Inserted += spillInsert(AdmKeys[I], AdmValues[I]) ? 1 : 0;
        }
      }
      // Guard-rejected keys: offer them to the fast lane's own pattern
      // first (the routing generation may be retired — see put()),
      // spill the true rejects.
      for (size_t I = 0; I != Misses; ++I) {
        const size_t K = Base + MissIdx[I];
        bool One = false;
        if (F && F->putGuarded(Keys[K], Values[K], One))
          Inserted += One ? 1 : 0;
        else
          Inserted += spillInsert(Keys[K], Values[K]) ? 1 : 0;
      }
    }
    return Inserted;
  }

  /// Converges the storage onto the adaptive hash's current generation:
  /// creates the fast lane when a bijective plan first appears,
  /// migrates it when the adaptive epoch moved, then sweeps spill keys
  /// the current pattern admits into the fast lane. Cheap when nothing
  /// changed; returns true when any work was done. Call after
  /// pumpResynthesis(), or periodically from a maintenance thread in
  /// background mode.
  bool maintain() {
    std::lock_guard<std::mutex> Lock(MaintainMutex);
    const AdaptiveHash::Snapshot Snap = Adaptive.snapshot();
    ShardedIndexMap<Value> *F = fast();
    bool DidWork = false;
    if (Snap.Fast.valid() && Snap.Fast.plan().Bijective) {
      if (!F) {
        FastStorage = std::make_unique<ShardedIndexMap<Value>>(
            Snap.Fast, Snap.Pattern, Snap.Epoch, ShardHint);
        FastPtr.store(FastStorage.get(), std::memory_order_release);
        F = FastStorage.get();
        SEPE_COUNT("serving_table.fast_lane.created");
        SEPE_TRACE_INSTANT(LaneCreate, Snap.Epoch, 0);
        DidWork = true;
      } else if (F->epoch() != Snap.Epoch) {
        F->migrate(Snap.Fast, Snap.Pattern, Snap.Epoch);
        SEPE_COUNT("serving_table.fast_lane.migrated");
        DidWork = true;
      }
    }
    if (F && SpillCount.load(std::memory_order_acquire) != 0)
      DidWork |= sweepSpill(*F) != 0;
    return DidWork;
  }

  Stats stats() const {
    const ShardedIndexMap<Value> *F = fast();
    Stats S;
    S.FastLane = F != nullptr;
    const StaticLane *SL = staticLane();
    S.StaticActive = SL != nullptr;
    S.StaticSize = SL ? SL->Keys.size() : 0;
    S.FastSize = F ? F->size() : 0;
    S.SpillSize = SpillCount.load(std::memory_order_relaxed);
    S.FastEpoch = F ? F->epoch() : 0;
    S.AdaptiveEpoch = Adaptive.epoch();
    S.Migrations = F ? F->migrations() : 0;
    S.SweptKeys = Swept.load(std::memory_order_relaxed);
    return S;
  }

  /// Total elements across both lanes (moment-in-time per shard).
  size_t size() const {
    const ShardedIndexMap<Value> *F = fast();
    return (F ? F->size() : 0) + SpillCount.load(std::memory_order_relaxed);
  }

  /// The fast lane's per-shard lock-contention export
  /// (ShardedIndexMap::contentionJson), or "null" when the fast lane
  /// has not been created yet — sepeserve embeds it in its report so
  /// serving throughput can be read against lock pressure.
  std::string fastLaneContentionJson() const {
    const ShardedIndexMap<Value> *F = fast();
    return F ? F->contentionJson() : std::string("null");
  }

  /// Mirrors the fast lane's contention counters into telemetry
  /// histograms (no-op without -DSEPE_TELEMETRY=ON or before the fast
  /// lane exists).
  void recordContentionTelemetry() const {
    if (const ShardedIndexMap<Value> *F = fast())
      F->recordContentionTelemetry();
  }

private:
  /// Keys per routeBatch block in the batch entry points; bounds the
  /// stack scratch.
  static constexpr size_t RouteBlock = 256;

  static constexpr size_t SpillShardCount = 16; // Power of two.

  struct TransparentHash {
    using is_transparent = void;
    size_t operator()(std::string_view S) const {
      return std::hash<std::string_view>{}(S);
    }
  };

  /// One spill shard: plain string-keyed storage for out-of-format
  /// keys. Write-heavy only under drift, so a mutex-per-shard map is
  /// plenty.
  struct alignas(64) SpillShard {
    mutable std::shared_mutex Mutex;
    std::unordered_map<std::string, Value, TransparentHash, std::equal_to<>>
        Map;
  };

  /// The sealed static lane: values[mphf(key)] plus an 8-bit
  /// fingerprint that rejects nearly every out-of-set key before the
  /// exact key compare. The compare is what keeps the table exact — a
  /// fingerprint false positive (~2^-8 of out-of-set probes) just
  /// falls through to the dynamic lanes instead of serving a wrong
  /// value, which a bare DirectIndexMap would.
  struct StaticLane {
    Mphf F;
    std::vector<uint8_t> Fp;
    std::vector<std::string> Keys;
    std::vector<Value> Values;

    bool findFromBase(uint64_t Base, std::string_view Key,
                      Value &Out) const {
      const Mphf::SlotFp SF = F.slotFpFromBase(Base);
      if (Fp[SF.Slot] != static_cast<uint8_t>(SF.FpWord) ||
          Keys[SF.Slot] != Key)
        return false;
      Out = Values[SF.Slot];
      return true;
    }

    bool find(std::string_view Key, Value &Out) const {
      return findFromBase(F.baseImage(Key), Key, Out);
    }

    bool contains(std::string_view Key) const {
      const Mphf::SlotFp SF = F.slotFpFromBase(F.baseImage(Key));
      return Fp[SF.Slot] == static_cast<uint8_t>(SF.FpWord) &&
             Keys[SF.Slot] == Key;
    }
  };

  const StaticLane *staticLane() const {
    return StaticPtr.load(std::memory_order_acquire);
  }

  const ShardedIndexMap<Value> *fast() const {
    return FastPtr.load(std::memory_order_acquire);
  }
  ShardedIndexMap<Value> *fast() {
    return FastPtr.load(std::memory_order_acquire);
  }

  SpillShard &spillShard(std::string_view Key) const {
    return Spill[TransparentHash{}(Key) & (SpillShardCount - 1)];
  }

  bool spillFind(std::string_view Key, Value &Out) const {
    if (SpillCount.load(std::memory_order_acquire) == 0)
      return false;
    const SpillShard &S = spillShard(Key);
    std::shared_lock<std::shared_mutex> Lock(S.Mutex);
    const auto It = S.Map.find(Key);
    if (It == S.Map.end())
      return false;
    SEPE_COUNT("serving_table.spill.hit");
    Out = It->second;
    return true;
  }

  bool spillInsert(std::string_view Key, Value V) {
    SpillShard &S = spillShard(Key);
    std::unique_lock<std::shared_mutex> Lock(S.Mutex);
    const bool Inserted =
        S.Map.emplace(std::string(Key), std::move(V)).second;
    if (Inserted) {
      SpillCount.fetch_add(1, std::memory_order_release);
      SEPE_COUNT("serving_table.spill.inserted");
    }
    return Inserted;
  }

  bool spillErase(std::string_view Key) {
    if (SpillCount.load(std::memory_order_acquire) == 0)
      return false;
    SpillShard &S = spillShard(Key);
    std::unique_lock<std::shared_mutex> Lock(S.Mutex);
    const auto It = S.Map.find(Key);
    if (It == S.Map.end())
      return false;
    S.Map.erase(It);
    SpillCount.fetch_sub(1, std::memory_order_release);
    return true;
  }

  /// Moves every spill key the fast lane's active pattern admits into
  /// the fast lane: insert into fast first, erase from spill second,
  /// both under the spill shard's write lock (lock order spill -> fast,
  /// never reversed anywhere). Returns the number of keys moved.
  size_t sweepSpill(ShardedIndexMap<Value> &F) {
    SEPE_TRACE_SPAN(TraceSpan, SpillSweep, F.epoch());
    size_t Moved = 0;
    for (SpillShard &S : Spill) {
      std::unique_lock<std::shared_mutex> Lock(S.Mutex);
      for (auto It = S.Map.begin(); It != S.Map.end();) {
        bool Inserted = false;
        if (F.putGuarded(It->first, It->second, Inserted)) {
          It = S.Map.erase(It);
          SpillCount.fetch_sub(1, std::memory_order_release);
          ++Moved;
        } else {
          ++It;
        }
      }
    }
    if (Moved != 0) {
      Swept.fetch_add(Moved, std::memory_order_relaxed);
      SEPE_COUNT_N("serving_table.sweep.moved", Moved);
    }
    TraceSpan.setArg(Moved);
    return Moved;
  }

  size_t ShardHint;
  AdaptiveHash Adaptive;

  /// Created at most once (construction or first bijective generation),
  /// then mutated in place by migrations; readers take one acquire
  /// load. Null until a bijective plan exists (cold start).
  std::atomic<ShardedIndexMap<Value> *> FastPtr{nullptr};
  std::unique_ptr<ShardedIndexMap<Value>> FastStorage;

  /// Published static lane, or null. Replaced wholesale by
  /// sealStatic() and nulled by erase() of a sealed key; retired lanes
  /// stay in StaticStorage (guarded by MaintainMutex) until
  /// destruction so a concurrent reader never touches a freed lane —
  /// the same retire-until-destruction discipline the JIT rung uses
  /// for old code buffers.
  std::atomic<const StaticLane *> StaticPtr{nullptr};
  std::vector<std::unique_ptr<const StaticLane>> StaticStorage;

  mutable std::array<SpillShard, SpillShardCount> Spill{};
  std::atomic<size_t> SpillCount{0};
  std::atomic<uint64_t> Swept{0};
  std::mutex MaintainMutex;
};

} // namespace sepe

#endif // SEPE_RUNTIME_SERVING_TABLE_H
