//===- runtime/drift_detector.h - Sliding-window mismatch ratio -*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tracks the guard mismatch ratio over a sliding window of observed
/// keys and trips when it crosses a threshold — the signal that the key
/// distribution has drifted away from the pattern the current hash was
/// synthesized for. Lock-free: the live window is one 64-bit atomic
/// packing (observed << 32 | mismatches), so a whole hashBatch call
/// costs a single fetch_add. The thread whose add carries the observed
/// count across the window size closes the window: fetch_add serializes
/// the adds, so exactly one thread crosses, and Prev + Inc is a
/// consistent snapshot it can subtract back out with fetch_sub, leaving
/// any concurrent adds that landed after the crossing in the next
/// window.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_RUNTIME_DRIFT_DETECTOR_H
#define SEPE_RUNTIME_DRIFT_DETECTOR_H

#include "support/trace.h"

#include <atomic>
#include <cassert>
#include <cstdint>

namespace sepe {

/// Lock-free sliding-window drift detector.
class DriftDetector {
public:
  /// What one batched observation did to the live window.
  enum class Window {
    Open,    ///< Window still filling.
    Closed,  ///< This call closed a window; ratio stayed under threshold.
    Tripped, ///< This call closed a window whose ratio crossed threshold.
  };

  /// Trips when a window of \p WindowSize observed keys ends with more
  /// than \p Threshold (a ratio in [0, 1]) guard mismatches.
  DriftDetector(size_t WindowSize, double Threshold)
      : WindowSize(WindowSize ? WindowSize : 1),
        ThresholdPpm(static_cast<uint64_t>(Threshold * 1e6)) {
    assert(Threshold >= 0.0 && Threshold <= 1.0 && "ratio threshold");
    assert(this->WindowSize < (uint64_t{1} << 31) && "window fits the pack");
  }

  /// Records one batch: \p Observed keys of which \p Mismatched missed
  /// the guard. Returns Tripped only for the single call that closes a
  /// window past threshold, so the caller can trigger resynthesis
  /// exactly once per bad window.
  Window observe(size_t Observed, size_t Mismatched) {
    assert(Mismatched <= Observed && "more misses than keys");
    ObservedTotal.fetch_add(Observed, std::memory_order_relaxed);
    MismatchedTotal.fetch_add(Mismatched, std::memory_order_relaxed);
    const uint64_t Inc =
        (uint64_t{Observed} << 32) | static_cast<uint32_t>(Mismatched);
    const uint64_t Prev = State.fetch_add(Inc, std::memory_order_relaxed);
    const uint64_t Cur = Prev + Inc;
    if ((Prev >> 32) >= WindowSize || (Cur >> 32) < WindowSize)
      return Window::Open;
    // This call carried the count across the window boundary; close the
    // window by subtracting the snapshot we just created.
    State.fetch_sub(Cur, std::memory_order_relaxed);
    const uint64_t WindowObserved = Cur >> 32;
    const uint64_t WindowMisses = Cur & 0xFFFFFFFFULL;
    const uint64_t Ppm = WindowMisses * 1000000 / WindowObserved;
    LastRatioPpm.store(Ppm, std::memory_order_relaxed);
    Windows.fetch_add(1, std::memory_order_relaxed);
    if (Ppm > ThresholdPpm) {
      // Generation 0 here: the detector doesn't know which plan it is
      // guarding. AdaptiveHash::onTripped re-emits with the epoch; this
      // event pins the exact closing observation in the timeline.
      SEPE_TRACE_INSTANT(DriftTripped, 0, Ppm);
      return Window::Tripped;
    }
    return Window::Closed;
  }

  /// Mismatch ratio of the last closed window (0 before any window
  /// closes).
  double lastRatio() const {
    return static_cast<double>(LastRatioPpm.load(std::memory_order_relaxed)) /
           1e6;
  }

  /// Windows closed since construction or the last reset.
  uint64_t windowsClosed() const {
    return Windows.load(std::memory_order_relaxed);
  }

  /// Keys observed since construction (monotone; survives reset).
  uint64_t observedTotal() const {
    return ObservedTotal.load(std::memory_order_relaxed);
  }

  /// Guard misses since construction (monotone; survives reset).
  uint64_t mismatchedTotal() const {
    return MismatchedTotal.load(std::memory_order_relaxed);
  }

  size_t windowSize() const { return static_cast<size_t>(WindowSize); }

  /// Discards the partial live window and the last ratio — called after
  /// a hot swap so the new generation starts from a clean slate instead
  /// of inheriting the drifted tail that triggered it. \p TraceGen is
  /// the generation the slate is being cleaned for (flight-recorder
  /// correlation only).
  void reset([[maybe_unused]] uint64_t TraceGen = 0) {
    State.store(0, std::memory_order_relaxed);
    LastRatioPpm.store(0, std::memory_order_relaxed);
    SEPE_TRACE_INSTANT(DriftReset, TraceGen, 0);
  }

private:
  const uint64_t WindowSize;
  const uint64_t ThresholdPpm;
  std::atomic<uint64_t> State{0};
  std::atomic<uint64_t> LastRatioPpm{0};
  std::atomic<uint64_t> Windows{0};
  std::atomic<uint64_t> ObservedTotal{0};
  std::atomic<uint64_t> MismatchedTotal{0};
};

} // namespace sepe

#endif // SEPE_RUNTIME_DRIFT_DETECTOR_H
