//===- mphf/packed.h - Succinct storage for MPHF pilots ---------*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two storage primitives behind the static-set tier (src/mphf/):
/// a fixed-width bit-packed array for pilot values (every pilot stored
/// at the global maximum width, so random access is two shifts) and an
/// Elias-Fano encoding of monotone sequences for bucket offsets (the
/// classic high/low split with sampled select, ~2 + log2(U/N) bits per
/// element). Both report bytesUsed() so the bench can publish bits/key.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_MPHF_PACKED_H
#define SEPE_MPHF_PACKED_H

#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

namespace sepe {

/// A vector of N values, each stored in exactly Bits bits. Width 0 is
/// the degenerate all-zero array (every stored value was 0).
class PackedArray {
public:
  PackedArray() = default;

  PackedArray(unsigned Bits, size_t N)
      : N(N), Bits(Bits), Mask(Bits == 0 ? 0 : ~uint64_t{0} >> (64 - Bits)),
        Words((N * Bits + 63) / 64 + 1, 0) {
    assert(Bits <= 57 && "packed width beyond the two-word load limit");
  }

  /// Packs \p Values at the width of the largest element.
  static PackedArray pack(const std::vector<uint64_t> &Values) {
    uint64_t Max = 0;
    for (uint64_t V : Values)
      Max |= V;
    const unsigned Bits = Max == 0 ? 0 : std::bit_width(Max);
    PackedArray Packed(Bits, Values.size());
    for (size_t I = 0; I != Values.size(); ++I)
      Packed.set(I, Values[I]);
    return Packed;
  }

  /// Rebuilds an array from its raw words (deserialization).
  static PackedArray fromWords(unsigned Bits, size_t N,
                               std::vector<uint64_t> Words) {
    PackedArray Packed(Bits, N);
    assert(Words.size() <= Packed.Words.size() && "word blob too large");
    for (size_t I = 0; I != Words.size(); ++I)
      Packed.Words[I] = Words[I];
    return Packed;
  }

  size_t size() const { return N; }
  unsigned bits() const { return Bits; }
  bool empty() const { return N == 0; }

  uint64_t get(size_t I) const {
    assert(I < N && "packed index out of range");
    if (Bits == 0)
      return 0;
    const size_t BitPos = I * Bits;
    // The +1 spare word in the buffer makes the two-word read safe for
    // every in-range index, so get() stays branch-free.
    const uint64_t Lo = Words[BitPos / 64] >> (BitPos % 64);
    const uint64_t Hi =
        BitPos % 64 == 0 ? 0 : Words[BitPos / 64 + 1] << (64 - BitPos % 64);
    return (Lo | Hi) & Mask;
  }

  void set(size_t I, uint64_t V) {
    assert(I < N && "packed index out of range");
    assert((Bits == 64 || V <= Mask) && "value wider than packed width");
    if (Bits == 0)
      return;
    const size_t BitPos = I * Bits;
    const unsigned Shift = BitPos % 64;
    Words[BitPos / 64] &= ~(Mask << Shift);
    Words[BitPos / 64] |= V << Shift;
    if (Shift != 0 && Shift + Bits > 64) {
      Words[BitPos / 64 + 1] &= ~(Mask >> (64 - Shift));
      Words[BitPos / 64 + 1] |= V >> (64 - Shift);
    }
  }

  size_t bytesUsed() const { return Words.size() * sizeof(uint64_t); }

  const std::vector<uint64_t> &words() const { return Words; }

private:
  size_t N = 0;
  unsigned Bits = 0;
  uint64_t Mask = 0;
  std::vector<uint64_t> Words;
};

/// Elias-Fano encoding of a monotone non-decreasing sequence. Each
/// element splits into LowBits explicit low bits and a unary-coded high
/// part; get(I) is select1(I) over the high bit vector, accelerated by
/// a position sample every SampleRate set bits.
class EliasFano {
public:
  EliasFano() = default;

  /// Encodes \p Values (must be non-decreasing).
  static EliasFano encode(const std::vector<uint64_t> &Values) {
    EliasFano EF;
    EF.N = Values.size();
    if (EF.N == 0)
      return EF;
    EF.Universe = Values.back();
    const uint64_t U = EF.Universe + 1;
    EF.LowBits =
        U / EF.N == 0 ? 0 : static_cast<unsigned>(std::bit_width(U / EF.N) - 1);
    EF.Lows = PackedArray(EF.LowBits, EF.N);
    const size_t HighBits = EF.N + (EF.Universe >> EF.LowBits) + 1;
    EF.High.assign((HighBits + 63) / 64, 0);
    for (size_t I = 0; I != EF.N; ++I) {
      assert((I == 0 || Values[I] >= Values[I - 1]) &&
             "Elias-Fano input must be monotone");
      if (EF.LowBits != 0)
        EF.Lows.set(I, Values[I] & ((uint64_t{1} << EF.LowBits) - 1));
      const size_t Pos = (Values[I] >> EF.LowBits) + I;
      EF.High[Pos / 64] |= uint64_t{1} << (Pos % 64);
    }
    // Sampled select: bit position of every SampleRate-th set bit.
    EF.Samples.clear();
    size_t Ones = 0;
    for (size_t W = 0; W != EF.High.size(); ++W) {
      uint64_t Word = EF.High[W];
      while (Word != 0) {
        if (Ones % SampleRate == 0)
          EF.Samples.push_back(static_cast<uint32_t>(
              W * 64 + static_cast<size_t>(std::countr_zero(Word))));
        Word &= Word - 1;
        ++Ones;
      }
    }
    return EF;
  }

  size_t size() const { return N; }
  bool empty() const { return N == 0; }
  uint64_t universe() const { return Universe; }

  /// The I-th element of the encoded sequence.
  uint64_t get(size_t I) const {
    assert(I < N && "Elias-Fano index out of range");
    const uint64_t Low = LowBits == 0 ? 0 : Lows.get(I);
    return ((select1(I) - I) << LowBits) | Low;
  }

  /// Decodes the whole sequence (the evaluator caches hot sequences as
  /// flat arrays; see mphf.h).
  std::vector<uint64_t> decode() const {
    std::vector<uint64_t> Values;
    Values.reserve(N);
    size_t I = 0;
    for (size_t W = 0; W != High.size() && I != N; ++W) {
      uint64_t Word = High[W];
      while (Word != 0 && I != N) {
        const uint64_t Pos =
            W * 64 + static_cast<size_t>(std::countr_zero(Word));
        const uint64_t Low = LowBits == 0 ? 0 : Lows.get(I);
        Values.push_back(((Pos - I) << LowBits) | Low);
        Word &= Word - 1;
        ++I;
      }
    }
    return Values;
  }

  size_t bytesUsed() const {
    return Lows.bytesUsed() + High.size() * sizeof(uint64_t) +
           Samples.size() * sizeof(uint32_t);
  }

private:
  static constexpr size_t SampleRate = 256;

  size_t N = 0;
  uint64_t Universe = 0;
  unsigned LowBits = 0;
  PackedArray Lows;
  std::vector<uint64_t> High;
  std::vector<uint32_t> Samples;

  /// Bit position of the (I+1)-th set bit in High.
  size_t select1(size_t I) const {
    size_t Pos = Samples[I / SampleRate];
    size_t Remaining = I % SampleRate;
    size_t W = Pos / 64;
    // Mask off the bits below (and including) the sampled one, then
    // walk words; Remaining counts additional set bits to skip.
    uint64_t Word = High[W] & (~uint64_t{0} << (Pos % 64));
    while (true) {
      const size_t Count = static_cast<size_t>(std::popcount(Word));
      if (Remaining < Count)
        break;
      Remaining -= Count;
      ++W;
      Word = High[W];
    }
    while (Remaining != 0) {
      Word &= Word - 1;
      --Remaining;
    }
    return W * 64 + static_cast<size_t>(std::countr_zero(Word));
  }
};

} // namespace sepe

#endif // SEPE_MPHF_PACKED_H
