//===- mphf/mphf_explain.h - MphfPlan introspection -------------*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders an MphfPlan in the three formats of core/explain.h (text,
/// JSON, DOT), embedding the extraction front-end's own explainPlan
/// output so `keysynth --mphf-in=F --explain` shows the whole pipeline:
/// key bytes -> pext extraction -> finalizer -> pilot structures ->
/// dense [0, n) index.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_MPHF_MPHF_EXPLAIN_H
#define SEPE_MPHF_MPHF_EXPLAIN_H

#include "core/explain.h"
#include "mphf/mphf.h"

#include <string>

namespace sepe {

/// Renders \p Plan in \p Format. Always newline-terminated.
std::string explainMphf(const MphfPlan &Plan, ExplainFormat Format);

} // namespace sepe

#endif // SEPE_MPHF_MPHF_EXPLAIN_H
