//===- mphf/mphf_explain.cpp - MphfPlan introspection ---------------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "mphf/mphf_explain.h"

#include <cinttypes>
#include <cstdio>

using namespace sepe;

namespace {

std::string hex64(uint64_t V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "0x%016" PRIx64, V);
  return Buf;
}

const char *baseDescription(const MphfPlan &Plan) {
  return Plan.RawBase
             ? "seeded raw-byte multiply-fold mix"
             : "format-specialized extraction plan + splitmix64 finalizer";
}

/// Indents every line of \p Text by four spaces.
std::string indent4(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size() + 64);
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string::npos)
      End = Text.size();
    Out += "    ";
    Out += Text.substr(Pos, End - Pos);
    Out += '\n';
    Pos = End + 1;
  }
  return Out;
}

std::string mphfText(const MphfPlan &Plan) {
  std::string Out;
  char Buf[192];
  std::snprintf(Buf, sizeof(Buf),
                "mphf %s: n=%" PRIu64 ", seed %s, %.2f bits/key (%zu bytes)\n",
                mphfTierName(Plan.Tier), Plan.N, hex64(Plan.Seed).c_str(),
                Plan.bitsPerKey(), Plan.bytesUsed());
  Out += Buf;
  Out += std::string("  base image: ") + baseDescription(Plan) + '\n';
  switch (Plan.Tier) {
  case MphfTier::Mixer:
    Out += "  mixer constant " + hex64(Plan.MixerC) +
           ": slot = fastrange(mulfold(base, C), n)\n";
    break;
  case MphfTier::Displace:
    std::snprintf(Buf, sizeof(Buf),
                  "  displacement table: %u buckets (avg %.1f keys), "
                  "32-bit pilots\n",
                  Plan.NumBuckets,
                  static_cast<double>(Plan.N) / Plan.NumBuckets);
    Out += Buf;
    break;
  case MphfTier::Split:
    std::snprintf(Buf, sizeof(Buf),
                  "  splitting tree: %u buckets (avg %.1f keys), leaf max "
                  "%u\n",
                  Plan.NumBuckets,
                  static_cast<double>(Plan.N) / Plan.NumBuckets, Plan.LeafMax);
    Out += Buf;
    std::snprintf(Buf, sizeof(Buf),
                  "  pilots: %zu entries @ %u bits (packed), offsets in "
                  "Elias-Fano\n",
                  Plan.Pilots.size(), Plan.Pilots.bits());
    Out += Buf;
    break;
  }
  if (!Plan.RawBase && Plan.Extract) {
    Out += "  extraction plan:\n";
    Out += indent4(explainPlan(*Plan.Extract, ExplainFormat::Text));
  }
  return Out;
}

std::string mphfJson(const MphfPlan &Plan) {
  std::string Out = "{";
  Out += "\"tier\":\"" + std::string(mphfTierName(Plan.Tier)) + "\"";
  Out += ",\"n\":" + std::to_string(Plan.N);
  Out += ",\"seed\":\"" + hex64(Plan.Seed) + "\"";
  Out += std::string(",\"raw_base\":") + (Plan.RawBase ? "true" : "false");
  Out += ",\"bytes\":" + std::to_string(Plan.bytesUsed());
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%.4f", Plan.bitsPerKey());
  Out += ",\"bits_per_key\":" + std::string(Buf);
  switch (Plan.Tier) {
  case MphfTier::Mixer:
    Out += ",\"mixer\":\"" + hex64(Plan.MixerC) + "\"";
    break;
  case MphfTier::Displace:
    Out += ",\"buckets\":" + std::to_string(Plan.NumBuckets);
    break;
  case MphfTier::Split:
    Out += ",\"buckets\":" + std::to_string(Plan.NumBuckets);
    Out += ",\"leaf_max\":" + std::to_string(Plan.LeafMax);
    Out += ",\"pilot_count\":" + std::to_string(Plan.Pilots.size());
    Out += ",\"pilot_bits\":" + std::to_string(Plan.Pilots.bits());
    break;
  }
  if (!Plan.RawBase && Plan.Extract) {
    std::string Inner = explainPlan(*Plan.Extract, ExplainFormat::Json);
    while (!Inner.empty() && Inner.back() == '\n')
      Inner.pop_back();
    Out += ",\"extract\":" + Inner;
  }
  Out += "}\n";
  return Out;
}

std::string mphfDot(const MphfPlan &Plan) {
  std::string Out;
  Out += "digraph sepe_mphf {\n";
  Out += "  rankdir=LR;\n";
  Out += "  node [shape=box fontname=\"monospace\" fontsize=10];\n";
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "  label=\"mphf %s: n=%" PRIu64 ", %.2f bits/key\";\n",
                mphfTierName(Plan.Tier), Plan.N, Plan.bitsPerKey());
  Out += Buf;
  Out += "  key [label=\"key bytes\" shape=note];\n";
  Out += std::string("  base [label=\"") + baseDescription(Plan) + "\"];\n";
  Out += "  key -> base;\n";
  switch (Plan.Tier) {
  case MphfTier::Mixer:
    Out += "  mix [label=\"mulfold with " + hex64(Plan.MixerC) + "\"];\n";
    Out += "  base -> mix;\n";
    Out += "  slot [label=\"fastrange -> [0,n)\" shape=ellipse];\n";
    Out += "  mix -> slot;\n";
    break;
  case MphfTier::Displace:
    std::snprintf(Buf, sizeof(Buf),
                  "  bucket [label=\"bucket hash\\n%u buckets\"];\n",
                  Plan.NumBuckets);
    Out += Buf;
    Out += "  pilot [label=\"displacement pilot\"];\n";
    Out += "  slot [label=\"fastrange -> [0,n)\" shape=ellipse];\n";
    Out += "  base -> bucket -> pilot -> slot;\n";
    break;
  case MphfTier::Split:
    std::snprintf(Buf, sizeof(Buf),
                  "  bucket [label=\"bucket hash\\n%u buckets\\n"
                  "Elias-Fano offsets\"];\n",
                  Plan.NumBuckets);
    Out += Buf;
    std::snprintf(Buf, sizeof(Buf),
                  "  tree [label=\"splitting tree\\n%zu pilots @ %u bits\\n"
                  "leaf max %u\"];\n",
                  Plan.Pilots.size(), Plan.Pilots.bits(), Plan.LeafMax);
    Out += Buf;
    Out += "  slot [label=\"bucket offset + leaf slot\" shape=ellipse];\n";
    Out += "  base -> bucket -> tree -> slot;\n";
    break;
  }
  Out += "}\n";
  return Out;
}

} // namespace

std::string sepe::explainMphf(const MphfPlan &Plan, ExplainFormat Format) {
  switch (Format) {
  case ExplainFormat::Text:
    return mphfText(Plan);
  case ExplainFormat::Json:
    return mphfJson(Plan);
  case ExplainFormat::Dot:
    return mphfDot(Plan);
  }
  return "";
}
