//===- mphf/mphf.h - Synthesized minimal perfect hashing --------*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static-set tier: when the key *set* (not just the format) is
/// fixed, go past collision-free to *minimal perfect* — a bijection
/// onto [0, n) that turns a hash-table probe into one direct array
/// load. Three constructions sit behind one MphfPlan:
///
///  - Mixer: one multiply-fold constant whose range-mapped image is
///    already a bijection, found by bounded exhaustive search (the
///    exact-synthesis tier, practical for tiny sets).
///  - Displace: a CHD-style seeded displacement table — bucket by one
///    scrambled hash, then per-bucket search a pilot that parks every
///    member in a free slot (small sets, <= ~64 keys).
///  - Split: a RecSplit-style recursive splitting tree (Esposito/
///    Genuzio/Vigna; PAPERS.md) — bucket, then recursively brute-force
///    pilots that split each bucket in half until leaves are small
///    enough to brute-force a bijection directly. Pilots are stored in
///    a fixed-width PackedArray, bucket offsets in Elias-Fano; scales
///    to millions of keys at a few bits per key.
///
/// All three operate on a 64-bit *base image* of the key, which is the
/// point of composing with the paper's synthesizer: when the key set
/// conforms to a format whose Pext extraction is available, the base
/// image is the pext-compacted relevant bits (xor a seed mix; every
/// downstream hash applies its own finalizer), so the pilot search
/// distinguishes exactly the bits that vary instead of raw key bytes.
/// Sets without a usable extraction plan fall back to a seeded
/// raw-byte mix.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_MPHF_MPHF_H
#define SEPE_MPHF_MPHF_H

#include "core/executor.h"
#include "core/plan.h"
#include "mphf/packed.h"
#include "support/bit_ops.h"
#include "support/expected.h"

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace sepe {

class FormatSpec;

/// The three constructions, in increasing set-size ambition.
enum class MphfTier { Mixer, Displace, Split };

/// "Mixer", "Displace", "Split".
const char *mphfTierName(MphfTier Tier);

/// Inverse of mphfTierName; returns false on an unknown name.
bool parseMphfTier(std::string_view Name, MphfTier &Tier);

/// splitmix64's finalizer: a bijection on 64-bit words, so applying it
/// to distinct base images preserves distinctness while uniformizing
/// the bits the pilot searches consume.
inline uint64_t mphfMix64(uint64_t X) {
  X ^= X >> 30;
  X *= 0xBF58476D1CE4E5B9ull;
  X ^= X >> 27;
  X *= 0x94D049BB133111EBull;
  X ^= X >> 31;
  return X;
}

/// Lemire's fastrange: maps a full-width word onto [0, N) without a
/// modulo.
inline uint64_t mphfFastRange(uint64_t X, uint64_t N) {
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(X) * N) >> 64);
}

/// Bucket-selection hash; its salt is decorrelated from the slot hash
/// and from every multiplier the containers use (flat_index_map.h), so
/// bucketing never aligns with probe sequences. A single multiply-fold
/// (not a full mix64): it sits on every Displace/Split lookup's serial
/// chain, and the builder's bijection verification catches any set a
/// weaker mix would mishandle (the reseed loop then fixes it).
inline uint64_t mphfBucketHash(uint64_t Base) {
  return mulFold(Base ^ 0x8CB92BA72F3D8DD7ull, 0x2545F4914F6CDD1Dull);
}

/// Pilot-parameterized slot hash: the pilot multiply decorrelates
/// consecutive pilots (and is off the base image's dependency chain —
/// pilots come from the plan, not the key), then one multiply-fold
/// spreads the combination. Effectively independent slot assignments
/// per pilot are what the brute-force search relies on; the per-leaf
/// pilot distributions stay close enough to uniform that search costs
/// match the full-finalizer variant empirically.
inline uint64_t mphfSlotHash(uint64_t Base, uint64_t Pilot) {
  return mulFold(Base ^ ((Pilot + 1) * 0xA24BAED4963EE407ull),
                 0x9FB21C651E98DF25ull);
}

/// Membership fingerprint mix: an independently-salted mulFold for
/// callers that need fingerprint bits without evaluating the MPHF
/// (e.g. hashing a candidate key against a stored fingerprint table
/// built some other way). The direct-index lookup path does NOT pay
/// this: Mphf::slotFpFromBase hands back the slot hash's low bits,
/// which fastRange discards from the slot derivation, as free
/// fingerprint material.
inline uint64_t mphfFingerprintMix(uint64_t Base) {
  return mulFold(Base ^ 0xE7037ED1A0B428DBull, 0xC2B2AE3D27D4EB4Full);
}

/// Seeded raw-byte mix for key sets without a usable extraction plan
/// (or whose extraction images collide): word-at-a-time multiply-fold
/// over the key bytes. Distinct keys give distinct images with
/// overwhelming probability; the builder verifies and reseeds.
inline uint64_t mphfRawMix(std::string_view Key, uint64_t Seed) {
  uint64_t H = Seed ^ (Key.size() * 0x9E3779B97F4A7C15ull);
  size_t I = 0;
  for (; I + 8 <= Key.size(); I += 8)
    H = mulFold(loadU64Le(Key.data() + I) ^ H, 0x2B7E151628AED2A5ull);
  if (I != Key.size())
    H = mulFold(loadBytesLe(Key.data() + I, Key.size() - I) ^ H,
                0xD6E8FEB86659FD93ull);
  return H;
}

/// Tunables for buildMphf. Defaults build every paper format at
/// n = 1e5 in well under a second.
struct MphfBuildOptions {
  /// Extraction front-end: hash keys through this plan to get base
  /// images (ideally a bijective Pext plan). When null and Format is
  /// set, a Pext plan is synthesized from the format.
  std::shared_ptr<const HashPlan> Extract;

  /// The key format, when known; used to synthesize Extract.
  const FormatSpec *Format = nullptr;

  uint64_t Seed = 0x5e7a5e7;

  /// Largest set the Mixer/Displace (exact) tier handles; bigger sets
  /// go to the Split tier.
  unsigned ExactMax = 64;

  /// Largest set the single-mixer search is attempted for (the
  /// success probability n!/n^n collapses past ~a dozen keys).
  unsigned MixerMax = 12;
  unsigned MixerTries = 1u << 16;

  /// Split-tier shape: leaves brute-force a bijection at <= LeafMax
  /// keys; buckets average AvgBucket keys. The defaults keep the
  /// average bucket well below LeafMax so virtually every lookup is
  /// leaf-direct (bucket hash -> one cached pilot -> slot, no tree
  /// descent): at Poisson(4) only ~0.06% of keys sit in buckets past
  /// 12, so the descent branch is effectively never taken and never
  /// mispredicted. Raising AvgBucket or lowering LeafMax trades that
  /// lookup speed for space (fewer 16-byte evaluator bucket entries,
  /// narrower pilots) and faster builds.
  unsigned LeafMax = 12;
  unsigned AvgBucket = 4;

  /// Per-node pilot search bound; overrunning it restarts the whole
  /// build under the next seed.
  unsigned PilotLimit = 1u << 20;

  /// Whole-build reseeds before giving up. Exhausting these means the
  /// input almost certainly contains duplicate keys.
  unsigned MaxRestarts = 16;
};

/// A built minimal perfect hash function in storable form.
struct MphfPlan {
  MphfTier Tier = MphfTier::Mixer;
  uint64_t N = 0;
  uint64_t Seed = 0;

  /// True when base images come from mphfRawMix over the key bytes;
  /// false when Extract is the front-end.
  bool RawBase = true;
  std::shared_ptr<const HashPlan> Extract;

  /// Mixer tier: the multiply-fold constant (odd).
  uint64_t MixerC = 0;

  /// Displace and Split tiers: bucket count of mphfBucketHash.
  uint32_t NumBuckets = 0;

  /// Displace tier: pilot per bucket.
  std::vector<uint32_t> Displace;

  /// Split tier: leaf threshold the tree was built with, pilots in DFS
  /// preorder (concatenated across buckets, one global bit width), and
  /// the two monotone offset sequences (NumBuckets + 1 entries each):
  /// cumulative key counts and cumulative pilot counts per bucket.
  uint32_t LeafMax = 8;
  PackedArray Pilots;
  EliasFano Offsets;
  EliasFano PilotStarts;

  /// Storage footprint of the MPHF itself (pilot/offset structures,
  /// not the extraction plan or the evaluator caches).
  size_t bytesUsed() const;
  double bitsPerKey() const {
    return N == 0 ? 0.0 : 8.0 * static_cast<double>(bytesUsed()) /
                              static_cast<double>(N);
  }
};

/// The evaluator: maps each construction key to a distinct index in
/// [0, n). Copyable and cheap to copy (shared plan). Out-of-set keys
/// still produce an in-range index — membership is the caller's
/// problem (DirectIndexMap adds a fingerprint check).
class Mphf {
public:
  Mphf() = default;

  /// Wraps \p Plan. Decodes the Elias-Fano offset sequences into a
  /// flat per-bucket table (offset, size, pilot start, and the
  /// pre-decoded root pilot in one 16-byte entry) and precomputes the
  /// split-tree node-count memo: the plan stays succinct for storage,
  /// the evaluator trades 16 bytes per bucket of working memory for
  /// select-free, mostly single-metadata-load lookups.
  explicit Mphf(std::shared_ptr<const MphfPlan> Plan);

  bool valid() const { return Plan != nullptr; }
  uint64_t size() const { return Plan ? Plan->N : 0; }

  const MphfPlan &plan() const {
    assert(Plan && "no MPHF plan attached");
    return *Plan;
  }
  std::shared_ptr<const MphfPlan> planPtr() const { return Plan; }

  /// The 64-bit base image the pilot structures consume. Deliberately
  /// *unmixed*: every consumer (mphfBucketHash, mphfSlotHash,
  /// mphfFingerprintMix, the Mixer tier's mulFold) applies its own
  /// finalizer to it, so a finalizer here would only lengthen the
  /// lookup's serial dependency chain. The seed xor is a bijection, so
  /// distinct raw images stay distinct under every seed.
  uint64_t baseImage(std::string_view Key) const {
    return (Plan->RawBase ? mphfRawMix(Key, Plan->Seed) : Base(Key)) ^
           SeedMix;
  }

  /// Base images for \p N keys; uses the extraction plan's fused batch
  /// kernels when the plan has one.
  void baseBatch(const std::string_view *Keys, uint64_t *Out,
                 size_t N) const;

  /// An MPHF index plus fingerprint material. FpWord is the final slot
  /// hash word: fastRange keeps only its (value * range) high bits for
  /// the slot, so the low bits are uniform even conditioned on the
  /// slot — free membership-fingerprint bits with no extra mix on the
  /// lookup path. Construction and lookup derive fingerprints from the
  /// same word, so the pairing is stable.
  struct SlotFp {
    uint64_t Slot;
    uint64_t FpWord;
  };

  /// The MPHF index (and fingerprint word) of a base image. Inline
  /// because it sits on the lookup critical path of DirectIndexMap and
  /// ServingTable's static lane: the per-key chains are independent,
  /// so batch loops overlap them only when the body is visible to the
  /// compiler.
  SlotFp slotFpFromBase(uint64_t BaseImage) const {
    const MphfPlan &P = *Plan;
    if (P.Tier == MphfTier::Mixer) {
      const uint64_t X = mulFold(BaseImage, P.MixerC);
      return {mphfFastRange(X, P.N), X};
    }
    const uint64_t Bkt = bucketOf(mphfBucketHash(BaseImage));
    if (P.Tier == MphfTier::Displace) {
      const uint64_t X = mphfSlotHash(BaseImage, P.Displace[Bkt]);
      return {mphfFastRange(X, P.N), X};
    }
    const BucketRef &BR = BucketCache[Bkt];
    uint32_t Off = BR.Off;
    uint32_t M = BR.Size;
    // Out-of-set keys can land in an empty bucket; keep them in range
    // (the base image as fingerprint word keeps rejection uniform).
    if (M == 0)
      return {Off == P.N ? 0 : Off, BaseImage};
    uint64_t Pilot = BR.RootPilot;
    // Common case with the default AvgBucket: the bucket IS a leaf, and
    // the cached root pilot means the lookup touched exactly one
    // 16-byte bucket entry — no packed-pilot-array load at all.
    if (M > P.LeafMax) {
      uint32_t Pi = BR.PilotStart;
      do {
        const uint32_t M1 = M >> 1;
        if (mphfFastRange(mphfSlotHash(BaseImage, Pilot), M) < M1) {
          ++Pi;
          M = M1;
        } else {
          Pi += 1 + NodeCount[M1];
          Off += M1;
          M -= M1;
        }
        Pilot = P.Pilots.get(Pi);
      } while (M > P.LeafMax);
    }
    const uint64_t X = mphfSlotHash(BaseImage, Pilot);
    return {Off + mphfFastRange(X, M), X};
  }

  uint64_t slotFromBase(uint64_t BaseImage) const {
    return slotFpFromBase(BaseImage).Slot;
  }

  /// Pulls the bucket metadata line for \p BaseImage into cache. Batch
  /// loops call this for a whole block before the slotFromBase pass so
  /// the per-key metadata misses overlap instead of serializing; the
  /// redundant bucket-hash recompute is two multiplies, far cheaper
  /// than the miss it hides once the table outgrows L2.
  void prefetchSlot(uint64_t BaseImage) const {
    if (Plan->Tier == MphfTier::Split)
      prefetchRead(&BucketCache[bucketOf(mphfBucketHash(BaseImage))]);
  }

  uint64_t operator()(std::string_view Key) const {
    return slotFromBase(baseImage(Key));
  }

  /// Out[i] = (*this)(Keys[i]).
  void evalBatch(const std::string_view *Keys, uint64_t *Out,
                 size_t N) const;

private:
  /// Bucket index of a bucket-hash word. The Split builder sizes its
  /// bucket count to a power of two, so fastRange degenerates to a
  /// plain shift (fastRange(X, 2^k) == X >> (64 - k)); the evaluator
  /// detects that at attach time and skips the multiply. BucketShift
  /// is 0 for non-power-of-two counts (the Displace tier).
  uint64_t bucketOf(uint64_t BucketHash) const {
    return BucketShift != 0 ? BucketHash >> BucketShift
                            : mphfFastRange(BucketHash, Plan->NumBuckets);
  }

  std::shared_ptr<const MphfPlan> Plan;
  SynthesizedHash Base; ///< Valid only when !Plan->RawBase.
  uint64_t SeedMix = 0;
  unsigned BucketShift = 0;

  /// Split tier, decoded from the plan at attach time: everything a
  /// lookup needs about its bucket in one 16-byte (quarter-cache-line)
  /// entry, root pilot included, so the common leaf-direct lookup
  /// touches a single random line of metadata.
  struct BucketRef {
    uint32_t Off;        ///< First slot of the bucket.
    uint32_t Size;       ///< Keys in the bucket.
    uint32_t PilotStart; ///< Index of the root pilot in Plan->Pilots.
    uint32_t RootPilot;  ///< Pilots.get(PilotStart), pre-decoded.
  };
  std::vector<BucketRef> BucketCache;
  /// NodeCount[m]: pilots in the deterministic subtree over m keys.
  std::vector<uint32_t> NodeCount;
};

/// Builds a minimal perfect hash over \p Keys (distinct; duplicates
/// are reported as an error after reseeds exhaust). Selects the tier
/// from |Keys| and verifies the bijection over every key before
/// returning.
Expected<Mphf> buildMphf(const std::vector<std::string> &Keys,
                         const MphfBuildOptions &Options = {});

/// Convenience: string_view keys (e.g. straight from a fixture pool).
Expected<Mphf> buildMphf(const std::vector<std::string_view> &Keys,
                         const MphfBuildOptions &Options = {});

} // namespace sepe

#endif // SEPE_MPHF_MPHF_H
