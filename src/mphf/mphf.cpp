//===- mphf/mphf.cpp - MPHF construction and evaluation ------------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
//
// Build strategy: compute one 64-bit base image per key (extraction
// plan + bijective finalizer when available, seeded raw mix otherwise),
// then hand the image set to the tier builder. Every tier is a search
// over pilot values scored against the images only — keys are never
// touched again after imaging, which is what keeps million-key builds
// fast. Any search overrun or (astronomically unlikely) image collision
// restarts the whole build under the next seed; restarts that never
// converge mean the input contains duplicate keys, which is detected
// exactly and reported as such.
//
//===----------------------------------------------------------------------===//

#include "mphf/mphf.h"

#include "core/format_spec.h"
#include "core/synthesizer.h"

#include <algorithm>
#include <bit>
#include <numeric>

using namespace sepe;

const char *sepe::mphfTierName(MphfTier Tier) {
  switch (Tier) {
  case MphfTier::Mixer:
    return "Mixer";
  case MphfTier::Displace:
    return "Displace";
  case MphfTier::Split:
    return "Split";
  }
  return "?";
}

bool sepe::parseMphfTier(std::string_view Name, MphfTier &Tier) {
  if (Name == "Mixer") {
    Tier = MphfTier::Mixer;
    return true;
  }
  if (Name == "Displace") {
    Tier = MphfTier::Displace;
    return true;
  }
  if (Name == "Split") {
    Tier = MphfTier::Split;
    return true;
  }
  return false;
}

size_t MphfPlan::bytesUsed() const {
  return Displace.size() * sizeof(uint32_t) + Pilots.bytesUsed() +
         Offsets.bytesUsed() + PilotStarts.bytesUsed();
}

//===----------------------------------------------------------------------===//
// Evaluator
//===----------------------------------------------------------------------===//

Mphf::Mphf(std::shared_ptr<const MphfPlan> PlanIn)
    : Plan(std::move(PlanIn)) {
  assert(Plan && "attaching a null MPHF plan");
  SeedMix = mphfMix64(Plan->Seed);
  if (!Plan->RawBase) {
    assert(Plan->Extract && "extraction-based plan without a HashPlan");
    Base = SynthesizedHash(Plan->Extract);
  }
  if (Plan->NumBuckets >= 2 && std::has_single_bit(Plan->NumBuckets))
    BucketShift =
        64 - static_cast<unsigned>(std::countr_zero(Plan->NumBuckets));
  if (Plan->Tier == MphfTier::Split) {
    const std::vector<uint64_t> Offs = Plan->Offsets.decode();
    const std::vector<uint64_t> Starts = Plan->PilotStarts.decode();
    const size_t B = Offs.empty() ? 0 : Offs.size() - 1;
    BucketCache.resize(B);
    uint32_t MaxBucket = 0;
    for (size_t I = 0; I != B; ++I) {
      BucketRef &BR = BucketCache[I];
      BR.Off = static_cast<uint32_t>(Offs[I]);
      BR.Size = static_cast<uint32_t>(Offs[I + 1] - Offs[I]);
      BR.PilotStart = static_cast<uint32_t>(Starts[I]);
      BR.RootPilot =
          BR.Size == 0 ? 0
                       : static_cast<uint32_t>(Plan->Pilots.get(BR.PilotStart));
      MaxBucket = std::max(MaxBucket, BR.Size);
    }
    NodeCount.assign(MaxBucket + 1, 1);
    NodeCount[0] = 0;
    for (uint32_t M = Plan->LeafMax + 1; M <= MaxBucket; ++M)
      NodeCount[M] = 1 + NodeCount[M / 2] + NodeCount[M - M / 2];
  }
}

void Mphf::baseBatch(const std::string_view *Keys, uint64_t *Out,
                     size_t N) const {
  assert(Plan && "evaluating an empty Mphf");
  if (Plan->RawBase) {
    for (size_t I = 0; I != N; ++I)
      Out[I] = mphfRawMix(Keys[I], Plan->Seed) ^ SeedMix;
    return;
  }
  Base.hashBatch(Keys, Out, N);
  for (size_t I = 0; I != N; ++I)
    Out[I] ^= SeedMix;
}

void Mphf::evalBatch(const std::string_view *Keys, uint64_t *Out,
                     size_t N) const {
  baseBatch(Keys, Out, N);
  for (size_t I = 0; I != N; ++I)
    Out[I] = slotFromBase(Out[I]);
}

//===----------------------------------------------------------------------===//
// Builder
//===----------------------------------------------------------------------===//

namespace {

/// Sorted-adjacent duplicate scan over \p Images. Returns true when two
/// images collide; DuplicateKeys is set when the colliding *keys* are
/// byte-identical (a user error no reseed can fix).
bool imagesCollide(const std::vector<uint64_t> &Images,
                   const std::string_view *Keys, bool &DuplicateKeys) {
  DuplicateKeys = false;
  std::vector<uint32_t> Order(Images.size());
  std::iota(Order.begin(), Order.end(), 0);
  std::sort(Order.begin(), Order.end(), [&](uint32_t A, uint32_t B) {
    return Images[A] < Images[B];
  });
  bool Collides = false;
  for (size_t I = 0; I + 1 < Order.size(); ++I) {
    if (Images[Order[I]] != Images[Order[I + 1]])
      continue;
    Collides = true;
    if (Keys[Order[I]] == Keys[Order[I + 1]]) {
      DuplicateKeys = true;
      return true;
    }
  }
  return Collides;
}

/// Exact-synthesis tier: search one multiply-fold constant that is
/// already a bijection onto [0, n).
bool buildMixer(const std::vector<uint64_t> &Bases, uint64_t SeedMix,
                const MphfBuildOptions &Options, MphfPlan &Plan) {
  const uint64_t N = Bases.size();
  assert(N <= 64 && "mixer tier bitmap holds at most 64 slots");
  for (uint64_t Try = 0; Try != Options.MixerTries; ++Try) {
    const uint64_t C = mphfMix64(SeedMix ^ (Try * 0x9E3779B97F4A7C15ull)) | 1;
    uint64_t Taken = 0;
    bool Ok = true;
    for (uint64_t B : Bases) {
      const uint64_t Slot = mphfFastRange(mulFold(B, C), N);
      if ((Taken >> Slot) & 1) {
        Ok = false;
        break;
      }
      Taken |= uint64_t{1} << Slot;
    }
    if (Ok) {
      Plan.Tier = MphfTier::Mixer;
      Plan.MixerC = C;
      return true;
    }
  }
  return false;
}

/// CHD-style displacement: greedy per-bucket pilot search, hardest
/// (largest) buckets first.
bool buildDisplace(const std::vector<uint64_t> &Bases,
                   const MphfBuildOptions &Options, MphfPlan &Plan) {
  const uint64_t N = Bases.size();
  const uint32_t B = static_cast<uint32_t>(std::max<uint64_t>(1, (N + 3) / 4));
  std::vector<std::vector<uint64_t>> Members(B);
  for (uint64_t Base : Bases)
    Members[mphfFastRange(mphfBucketHash(Base), B)].push_back(Base);
  std::vector<uint32_t> Order(B);
  std::iota(Order.begin(), Order.end(), 0);
  std::sort(Order.begin(), Order.end(), [&](uint32_t A, uint32_t C) {
    return Members[A].size() > Members[C].size();
  });

  std::vector<bool> Used(N, false);
  std::vector<uint64_t> Slots;
  Plan.Displace.assign(B, 0);
  for (uint32_t Bucket : Order) {
    const std::vector<uint64_t> &Mem = Members[Bucket];
    if (Mem.empty())
      continue;
    bool Placed = false;
    for (uint32_t Pilot = 0; Pilot != Options.PilotLimit; ++Pilot) {
      Slots.clear();
      bool Ok = true;
      for (uint64_t Base : Mem) {
        const uint64_t Slot = mphfFastRange(mphfSlotHash(Base, Pilot), N);
        if (Used[Slot] ||
            std::find(Slots.begin(), Slots.end(), Slot) != Slots.end()) {
          Ok = false;
          break;
        }
        Slots.push_back(Slot);
      }
      if (Ok) {
        for (uint64_t Slot : Slots)
          Used[Slot] = true;
        Plan.Displace[Bucket] = Pilot;
        Placed = true;
        break;
      }
    }
    if (!Placed)
      return false;
  }
  Plan.Tier = MphfTier::Displace;
  Plan.NumBuckets = B;
  return true;
}

/// One recursive splitting tree over the bases of one bucket. Pilots
/// append in DFS preorder; bases are reordered in place so each child
/// works on a contiguous range.
bool buildSplitNode(std::vector<uint64_t> &Bases, size_t Begin, size_t End,
                    const MphfBuildOptions &Options,
                    std::vector<uint64_t> &Pilots) {
  const uint32_t M = static_cast<uint32_t>(End - Begin);
  if (M == 0)
    return true;
  if (M <= Options.LeafMax) {
    // Leaf: brute-force a pilot whose slot assignment is a bijection.
    for (uint64_t Pilot = 0; Pilot != Options.PilotLimit; ++Pilot) {
      uint64_t Taken = 0;
      bool Ok = true;
      for (size_t I = Begin; I != End; ++I) {
        const uint64_t Slot = mphfFastRange(mphfSlotHash(Bases[I], Pilot), M);
        if ((Taken >> Slot) & 1) {
          Ok = false;
          break;
        }
        Taken |= uint64_t{1} << Slot;
      }
      if (Ok) {
        Pilots.push_back(Pilot);
        return true;
      }
    }
    return false;
  }
  // Interior node: find a pilot sending exactly floor(M/2) keys into
  // the low half of [0, M), then recurse on the two halves.
  const uint32_t M1 = M >> 1;
  uint64_t Found = ~uint64_t{0};
  for (uint64_t Pilot = 0; Pilot != Options.PilotLimit; ++Pilot) {
    uint32_t Low = 0;
    for (size_t I = Begin; I != End; ++I)
      if (mphfFastRange(mphfSlotHash(Bases[I], Pilot), M) < M1)
        ++Low;
    if (Low == M1) {
      Found = Pilot;
      break;
    }
  }
  if (Found == ~uint64_t{0})
    return false;
  Pilots.push_back(Found);
  std::stable_partition(Bases.begin() + Begin, Bases.begin() + End,
                        [&](uint64_t Base) {
                          return mphfFastRange(mphfSlotHash(Base, Found),
                                               M) < M1;
                        });
  return buildSplitNode(Bases, Begin, Begin + M1, Options, Pilots) &&
         buildSplitNode(Bases, Begin + M1, End, Options, Pilots);
}

/// RecSplit-style tier: bucket, then one splitting tree per bucket.
bool buildSplit(const std::vector<uint64_t> &Bases,
                const MphfBuildOptions &Options, MphfPlan &Plan) {
  const uint64_t N = Bases.size();
  // Rounding the bucket count UP to a power of two lets the evaluator
  // turn bucket selection into a shift (see Mphf::bucketOf) and only
  // ever shrinks the average bucket, i.e. fewer interior splits.
  const uint32_t B = static_cast<uint32_t>(std::bit_ceil(
      std::max<uint64_t>(1, (N + Options.AvgBucket - 1) / Options.AvgBucket)));
  std::vector<std::vector<uint64_t>> Members(B);
  for (uint64_t Base : Bases)
    Members[mphfFastRange(mphfBucketHash(Base), B)].push_back(Base);

  std::vector<uint64_t> Pilots;
  std::vector<uint64_t> Offsets(B + 1, 0);
  std::vector<uint64_t> PilotStarts(B + 1, 0);
  Pilots.reserve(N / 4);
  for (uint32_t Bucket = 0; Bucket != B; ++Bucket) {
    Offsets[Bucket + 1] = Offsets[Bucket] + Members[Bucket].size();
    PilotStarts[Bucket] = Pilots.size();
    if (!buildSplitNode(Members[Bucket], 0, Members[Bucket].size(), Options,
                        Pilots))
      return false;
  }
  PilotStarts[B] = Pilots.size();

  Plan.Tier = MphfTier::Split;
  Plan.NumBuckets = B;
  Plan.LeafMax = Options.LeafMax;
  Plan.Pilots = PackedArray::pack(Pilots);
  Plan.Offsets = EliasFano::encode(Offsets);
  Plan.PilotStarts = EliasFano::encode(PilotStarts);
  return true;
}

/// Full-set bijectivity check: every key maps to a distinct index in
/// [0, n). The builder never returns an unverified function.
bool verifyBijection(const Mphf &F, const std::string_view *Keys,
                     size_t N) {
  std::vector<uint64_t> Seen((N + 63) / 64, 0);
  std::vector<uint64_t> Slots(std::min<size_t>(N, 4096));
  for (size_t At = 0; At < N;) {
    const size_t Chunk = std::min(Slots.size(), N - At);
    F.evalBatch(Keys + At, Slots.data(), Chunk);
    for (size_t I = 0; I != Chunk; ++I) {
      const uint64_t Slot = Slots[I];
      if (Slot >= N || ((Seen[Slot / 64] >> (Slot % 64)) & 1))
        return false;
      Seen[Slot / 64] |= uint64_t{1} << (Slot % 64);
    }
    At += Chunk;
  }
  return true;
}

Expected<Mphf> buildMphfImpl(const std::string_view *Keys, size_t N,
                             const MphfBuildOptions &Options) {
  if (N == 0)
    return Error{"cannot build an MPHF over an empty key set",
                 std::string::npos};
  if (N > (uint64_t{1} << 32))
    return Error{"key set too large for the static-set tier",
                 std::string::npos};
  MphfBuildOptions Opts = Options;
  Opts.LeafMax = std::min(std::max(Opts.LeafMax, 1u), 16u);
  Opts.MixerMax = std::min(Opts.MixerMax, 64u);

  // Resolve the extraction front-end: an explicit plan wins, else
  // synthesize Pext from the format, else raw-byte imaging.
  std::shared_ptr<const HashPlan> Extract = Opts.Extract;
  if (!Extract && Opts.Format != nullptr && !Opts.Format->empty()) {
    Expected<HashPlan> Synth =
        synthesize(Opts.Format->abstract(), HashFamily::Pext);
    if (Synth && !Synth->FallbackToStl)
      Extract = std::make_shared<const HashPlan>(Synth.take());
  }

  bool RawBase = Extract == nullptr;
  std::vector<uint64_t> Raw;
  if (!RawBase) {
    SynthesizedHash Front(Extract);
    Raw.resize(N);
    Front.hashBatch(Keys, Raw.data(), N);
    bool DuplicateKeys = false;
    if (imagesCollide(Raw, Keys, DuplicateKeys)) {
      if (DuplicateKeys)
        return Error{"duplicate key in MPHF input", std::string::npos};
      // The extraction images are not distinct on this set (e.g. a
      // format with more than 64 relevant bits whose xor-fold
      // collided); fall back to seeded raw imaging, where reseeding
      // can actually help.
      RawBase = true;
      Raw.clear();
    }
  }

  std::vector<uint64_t> Bases(N);
  for (unsigned Attempt = 0; Attempt <= Opts.MaxRestarts; ++Attempt) {
    const uint64_t Seed = Opts.Seed + Attempt;
    const uint64_t SeedMix = mphfMix64(Seed);
    if (RawBase) {
      for (size_t I = 0; I != N; ++I)
        Bases[I] = mphfRawMix(Keys[I], Seed) ^ SeedMix;
      bool DuplicateKeys = false;
      if (imagesCollide(Bases, Keys, DuplicateKeys)) {
        if (DuplicateKeys)
          return Error{"duplicate key in MPHF input", std::string::npos};
        continue;
      }
    } else {
      // The seed xor is a bijection, so distinct raw images stay
      // distinct under every seed.
      for (size_t I = 0; I != N; ++I)
        Bases[I] = Raw[I] ^ SeedMix;
    }

    auto Plan = std::make_shared<MphfPlan>();
    Plan->N = N;
    Plan->Seed = Seed;
    Plan->RawBase = RawBase;
    Plan->Extract = RawBase ? nullptr : Extract;

    bool Built = false;
    if (N <= Opts.ExactMax) {
      if (N <= Opts.MixerMax)
        Built = buildMixer(Bases, SeedMix, Opts, *Plan);
      if (!Built)
        Built = buildDisplace(Bases, Opts, *Plan);
    } else {
      Built = buildSplit(Bases, Opts, *Plan);
    }
    if (!Built)
      continue;

    Mphf F(std::move(Plan));
    if (verifyBijection(F, Keys, N))
      return F;
  }
  return Error{"MPHF construction did not converge after reseeds "
               "(pathological or duplicate key set)",
               std::string::npos};
}

} // namespace

Expected<Mphf> sepe::buildMphf(const std::vector<std::string> &Keys,
                               const MphfBuildOptions &Options) {
  std::vector<std::string_view> Views(Keys.begin(), Keys.end());
  return buildMphfImpl(Views.data(), Views.size(), Options);
}

Expected<Mphf> sepe::buildMphf(const std::vector<std::string_view> &Keys,
                               const MphfBuildOptions &Options) {
  return buildMphfImpl(Keys.data(), Keys.size(), Options);
}
