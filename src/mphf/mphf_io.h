//===- mphf/mphf_io.h - MphfPlan (de)serialization --------------*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Text serialization of MphfPlan in the same stable line-oriented
/// style as core/plan_io.h, so built MPHFs can be cached and shipped
/// separately from the builder (keysynth exposes it via --mphf-out /
/// --mphf-in). The extraction front-end, when present, embeds its
/// serializePlan text verbatim between 'plan' and 'endplan':
///
///   sepe-mphf v1
///   tier Split
///   n 100000
///   seed 0x00000000005e7a5e7
///   buckets 3125
///   leafmax 8
///   pilots 4231
///   p 12 5 0 9 31 2 2 7
///   ...
///   offsets 3126
///   o 0 28 61 ...
///   pilotstarts 3126
///   s 0 9 17 ...
///   plan
///   sepe-plan v1
///   ...
///   endplan
///
/// Logical pilot/offset values are serialized (not the packed words),
/// so the format is independent of the in-memory encodings and stays
/// human-diffable; the succinct structures are rebuilt on load.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_MPHF_MPHF_IO_H
#define SEPE_MPHF_MPHF_IO_H

#include "mphf/mphf.h"
#include "support/expected.h"

#include <string>
#include <string_view>

namespace sepe {

/// Serializes \p Plan into the stable text format.
std::string serializeMphf(const MphfPlan &Plan);

/// Parses a plan previously produced by serializeMphf. Fails with a
/// line-numbered message on malformed input; round-trips every field.
Expected<MphfPlan> deserializeMphf(std::string_view Text);

} // namespace sepe

#endif // SEPE_MPHF_MPHF_IO_H
