//===- mphf/mphf_io.cpp - MphfPlan (de)serialization ----------------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "mphf/mphf_io.h"

#include "core/plan_io.h"

#include <charconv>
#include <cstdio>
#include <vector>

using namespace sepe;

namespace {

constexpr const char *Magic = "sepe-mphf v1";

std::string hex64(uint64_t Value) {
  char Buffer[32];
  std::snprintf(Buffer, sizeof(Buffer), "0x%016llx",
                static_cast<unsigned long long>(Value));
  return Buffer;
}

/// Appends \p Values as 'Prefix v v v ...' lines, eight values each, so
/// large plans stay diffable line by line.
void appendValueLines(std::string &Out, char Prefix,
                      const std::vector<uint64_t> &Values) {
  for (size_t I = 0; I < Values.size(); I += 8) {
    Out += Prefix;
    for (size_t J = I; J != std::min(I + 8, Values.size()); ++J) {
      Out += ' ';
      Out += std::to_string(Values[J]);
    }
    Out += '\n';
  }
}

std::vector<std::string_view> tokenize(std::string_view Line) {
  std::vector<std::string_view> Tokens;
  size_t I = 0;
  while (I < Line.size()) {
    while (I < Line.size() && Line[I] == ' ')
      ++I;
    const size_t Begin = I;
    while (I < Line.size() && Line[I] != ' ')
      ++I;
    if (I > Begin)
      Tokens.push_back(Line.substr(Begin, I - Begin));
  }
  return Tokens;
}

bool parseU64(std::string_view Token, uint64_t &Out) {
  int Base = 10;
  if (Token.size() > 2 && Token[0] == '0' &&
      (Token[1] == 'x' || Token[1] == 'X')) {
    Token.remove_prefix(2);
    Base = 16;
  }
  const auto [End, Err] =
      std::from_chars(Token.data(), Token.data() + Token.size(), Out, Base);
  return Err == std::errc() && End == Token.data() + Token.size();
}

Error lineError(size_t LineNo, const std::string &Message) {
  return Error{"line " + std::to_string(LineNo) + ": " + Message,
               std::string::npos};
}

} // namespace

std::string sepe::serializeMphf(const MphfPlan &Plan) {
  std::string Out;
  Out += Magic;
  Out += '\n';
  Out += std::string("tier ") + mphfTierName(Plan.Tier) + '\n';
  Out += "n " + std::to_string(Plan.N) + '\n';
  Out += "seed " + hex64(Plan.Seed) + '\n';

  switch (Plan.Tier) {
  case MphfTier::Mixer:
    Out += "mixer " + hex64(Plan.MixerC) + '\n';
    break;
  case MphfTier::Displace: {
    Out += "buckets " + std::to_string(Plan.NumBuckets) + '\n';
    Out += "displace " + std::to_string(Plan.Displace.size()) + '\n';
    std::vector<uint64_t> Values(Plan.Displace.begin(), Plan.Displace.end());
    appendValueLines(Out, 'd', Values);
    break;
  }
  case MphfTier::Split: {
    Out += "buckets " + std::to_string(Plan.NumBuckets) + '\n';
    Out += "leafmax " + std::to_string(Plan.LeafMax) + '\n';
    std::vector<uint64_t> Pilots(Plan.Pilots.size());
    for (size_t I = 0; I != Pilots.size(); ++I)
      Pilots[I] = Plan.Pilots.get(I);
    Out += "pilots " + std::to_string(Pilots.size()) + '\n';
    appendValueLines(Out, 'p', Pilots);
    const std::vector<uint64_t> Offsets = Plan.Offsets.decode();
    Out += "offsets " + std::to_string(Offsets.size()) + '\n';
    appendValueLines(Out, 'o', Offsets);
    const std::vector<uint64_t> Starts = Plan.PilotStarts.decode();
    Out += "pilotstarts " + std::to_string(Starts.size()) + '\n';
    appendValueLines(Out, 's', Starts);
    break;
  }
  }

  if (!Plan.RawBase && Plan.Extract) {
    Out += "plan\n";
    Out += serializePlan(*Plan.Extract); // ends with its own newline
    Out += "endplan\n";
  }
  return Out;
}

Expected<MphfPlan> sepe::deserializeMphf(std::string_view Text) {
  MphfPlan Plan;
  Plan.RawBase = true;
  bool SawMagic = false, SawTier = false, SawN = false;
  size_t DisplaceCount = 0, PilotCount = 0, OffsetCount = 0, StartCount = 0;
  std::vector<uint64_t> Displace, Pilots, Offsets, Starts;
  bool InPlan = false;
  std::string PlanText;

  size_t LineNo = 0;
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    const size_t LineEnd = Text.find('\n', Pos);
    std::string_view Line =
        Text.substr(Pos, LineEnd == std::string_view::npos
                             ? std::string_view::npos
                             : LineEnd - Pos);
    Pos = LineEnd == std::string_view::npos ? Text.size() + 1 : LineEnd + 1;
    ++LineNo;

    if (InPlan) {
      if (Line == "endplan") {
        InPlan = false;
        Expected<HashPlan> Inner = deserializePlan(PlanText);
        if (!Inner)
          return lineError(LineNo, "embedded extraction plan: " +
                                       Inner.error().Message);
        Plan.Extract = std::make_shared<const HashPlan>(Inner.take());
        Plan.RawBase = false;
        continue;
      }
      PlanText += Line;
      PlanText += '\n';
      continue;
    }

    if (Line.empty() || Line[0] == '#')
      continue;

    if (!SawMagic) {
      if (Line != Magic)
        return lineError(LineNo, "expected the 'sepe-mphf v1' header");
      SawMagic = true;
      continue;
    }

    const std::vector<std::string_view> Tokens = tokenize(Line);
    if (Tokens.empty())
      continue;
    const std::string_view Key = Tokens[0];

    auto parseCount = [&](size_t &Count) {
      uint64_t Value = 0;
      if (Tokens.size() != 2 || !parseU64(Tokens[1], Value))
        return false;
      Count = static_cast<size_t>(Value);
      return true;
    };
    auto parseValues = [&](std::vector<uint64_t> &Values, size_t Count) {
      for (size_t I = 1; I != Tokens.size(); ++I) {
        uint64_t Value = 0;
        if (!parseU64(Tokens[I], Value) || Values.size() >= Count)
          return false;
        Values.push_back(Value);
      }
      return true;
    };

    if (Key == "tier") {
      if (Tokens.size() != 2 || !parseMphfTier(Tokens[1], Plan.Tier))
        return lineError(LineNo, "tier requires Mixer|Displace|Split");
      SawTier = true;
    } else if (Key == "n") {
      if (Tokens.size() != 2 || !parseU64(Tokens[1], Plan.N))
        return lineError(LineNo, "n requires one integer");
      SawN = true;
    } else if (Key == "seed") {
      if (Tokens.size() != 2 || !parseU64(Tokens[1], Plan.Seed))
        return lineError(LineNo, "seed requires one integer");
    } else if (Key == "mixer") {
      if (Tokens.size() != 2 || !parseU64(Tokens[1], Plan.MixerC))
        return lineError(LineNo, "mixer requires one constant");
    } else if (Key == "buckets") {
      uint64_t Value = 0;
      if (Tokens.size() != 2 || !parseU64(Tokens[1], Value))
        return lineError(LineNo, "buckets requires one integer");
      Plan.NumBuckets = static_cast<uint32_t>(Value);
    } else if (Key == "leafmax") {
      uint64_t Value = 0;
      if (Tokens.size() != 2 || !parseU64(Tokens[1], Value) || Value == 0 ||
          Value > 64)
        return lineError(LineNo, "leafmax requires an integer in [1,64]");
      Plan.LeafMax = static_cast<uint32_t>(Value);
    } else if (Key == "displace") {
      if (!parseCount(DisplaceCount))
        return lineError(LineNo, "displace requires one count");
    } else if (Key == "pilots") {
      if (!parseCount(PilotCount))
        return lineError(LineNo, "pilots requires one count");
    } else if (Key == "offsets") {
      if (!parseCount(OffsetCount))
        return lineError(LineNo, "offsets requires one count");
    } else if (Key == "pilotstarts") {
      if (!parseCount(StartCount))
        return lineError(LineNo, "pilotstarts requires one count");
    } else if (Key == "d") {
      if (!parseValues(Displace, DisplaceCount))
        return lineError(LineNo, "malformed or excess displace values");
    } else if (Key == "p") {
      if (!parseValues(Pilots, PilotCount))
        return lineError(LineNo, "malformed or excess pilot values");
    } else if (Key == "o") {
      if (!parseValues(Offsets, OffsetCount))
        return lineError(LineNo, "malformed or excess offset values");
    } else if (Key == "s") {
      if (!parseValues(Starts, StartCount))
        return lineError(LineNo, "malformed or excess pilotstart values");
    } else if (Key == "plan") {
      InPlan = true;
      PlanText.clear();
    } else {
      return lineError(LineNo,
                       "unknown directive '" + std::string(Key) + "'");
    }
  }

  if (!SawMagic)
    return Error{"empty plan: missing 'sepe-mphf v1' header"};
  if (InPlan)
    return Error{"unterminated embedded plan: missing 'endplan'"};
  if (!SawTier || !SawN || Plan.N == 0)
    return Error{"incomplete MPHF plan: tier and n are required"};

  switch (Plan.Tier) {
  case MphfTier::Mixer:
    if (Plan.MixerC == 0)
      return Error{"Mixer tier requires a mixer constant"};
    break;
  case MphfTier::Displace:
    if (Plan.NumBuckets == 0 || Displace.size() != DisplaceCount ||
        DisplaceCount != Plan.NumBuckets)
      return Error{"Displace tier requires buckets and a full table"};
    Plan.Displace.assign(Displace.begin(), Displace.end());
    break;
  case MphfTier::Split: {
    if (Plan.NumBuckets == 0 || Pilots.size() != PilotCount ||
        Offsets.size() != OffsetCount || Starts.size() != StartCount ||
        OffsetCount != Plan.NumBuckets + 1 ||
        StartCount != Plan.NumBuckets + 1)
      return Error{"Split tier requires buckets, pilots and both offset "
                   "sequences"};
    for (size_t I = 0; I + 1 < Offsets.size(); ++I)
      if (Offsets[I] > Offsets[I + 1] || Starts[I] > Starts[I + 1])
        return Error{"offset sequences must be monotone"};
    if (Offsets.back() != Plan.N || Starts.back() != Pilots.size())
      return Error{"offset sequences disagree with n / pilot count"};
    Plan.Pilots = PackedArray::pack(Pilots);
    Plan.Offsets = EliasFano::encode(Offsets);
    Plan.PilotStarts = EliasFano::encode(Starts);
    break;
  }
  }
  return Plan;
}
