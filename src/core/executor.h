//===- core/executor.h - Runtime evaluation of HashPlans --------*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SynthesizedHash evaluates a HashPlan at runtime — the in-process
/// equivalent of compiling the C++ source that core/codegen.h emits. The
/// evaluation routine is selected once, when the plan is attached, so
/// the per-key cost is one indirect call plus the plan's straight-line
/// steps. A "portable" mode forces the software pext / AES paths, which
/// is how the aarch64 experiment of RQ4 is reproduced on this host.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_CORE_EXECUTOR_H
#define SEPE_CORE_EXECUTOR_H

#include "core/plan.h"

#include <cassert>
#include <memory>
#include <string>
#include <string_view>

namespace sepe {

/// Which specialized instructions the executor may use. NoBitExtract
/// models the paper's Jetson (RQ4): AES hardware present, pext/bext
/// absent. Portable forces the bit-exact software routines for
/// everything.
enum class IsaLevel { Native, NoBitExtract, Portable };

/// A container-ready hash functor backed by a HashPlan. Copyable and
/// cheap to copy (shared plan ownership), so it can be handed to
/// std::unordered_map like any other hasher.
class SynthesizedHash {
public:
  SynthesizedHash() = default;

  /// Wraps \p Plan, selecting evaluation routines for \p Isa.
  explicit SynthesizedHash(std::shared_ptr<const HashPlan> Plan,
                           IsaLevel Isa = IsaLevel::Native);

  /// Convenience: takes ownership of a plan by value.
  explicit SynthesizedHash(HashPlan Plan, IsaLevel Isa = IsaLevel::Native)
      : SynthesizedHash(std::make_shared<const HashPlan>(std::move(Plan)),
                        Isa) {}

  bool valid() const { return Plan != nullptr; }
  const HashPlan &plan() const {
    assert(Plan && "no plan attached");
    return *Plan;
  }

  /// Hashes \p Key. Precondition: Key conforms to the plan's key format
  /// (length within bounds); out-of-format keys still produce a value
  /// but no dispersion guarantees hold — exactly the contract of the
  /// paper's generated functions.
  size_t operator()(std::string_view Key) const {
    assert(Plan && "hashing with an empty SynthesizedHash");
    return Eval(*Plan, Key.data(), Key.size());
  }

private:
  using EvalFn = uint64_t (*)(const HashPlan &, const char *, size_t);

  static EvalFn selectEval(const HashPlan &Plan, IsaLevel Isa);

  std::shared_ptr<const HashPlan> Plan;
  EvalFn Eval = nullptr;
};

} // namespace sepe

#endif // SEPE_CORE_EXECUTOR_H
