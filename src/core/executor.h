//===- core/executor.h - Runtime evaluation of HashPlans --------*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SynthesizedHash evaluates a HashPlan at runtime — the in-process
/// equivalent of compiling the C++ source that core/codegen.h emits. The
/// plan is compiled once, at attach time, into a pair of fused kernels:
/// a per-key routine (one indirect call plus the plan's straight-line
/// steps, with the common step counts specialized so even the step loop
/// disappears) and a batch routine that hashes many keys per call. The
/// batch dispatch is a ladder: eight-key AVX2 vertical kernels for
/// fixed-length Naive/OffXor/Pext plans (gated on a runtime cpuid
/// probe), the four-way interleaved scalar kernels otherwise, and a
/// per-key loop for the variable-length/partial shapes. A "portable"
/// mode forces the software pext / AES paths, which is how the aarch64
/// experiment of RQ4 is reproduced on this host.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_CORE_EXECUTOR_H
#define SEPE_CORE_EXECUTOR_H

#include "core/plan.h"
#include "support/telemetry.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace sepe {

class JitProgram;

/// Which specialized instructions the executor may use. NoBitExtract
/// models the paper's Jetson (RQ4): AES hardware present, pext/bext
/// absent. Portable forces the bit-exact software routines for
/// everything. The IsaLevel is an *upper bound*: at Native the executor
/// additionally consults the runtime cpuid probe (support/cpu_features.h)
/// before dispatching to the AVX2 wide kernels, so the same binary
/// degrades to the interleaved scalar kernels on hosts without AVX2.
enum class IsaLevel { Native, NoBitExtract, Portable };

/// The batch kernel families hashBatch can dispatch to, in increasing
/// width: a per-key loop over the single-key kernel, the four-way
/// interleaved scalar kernels (PR 1), the eight-key AVX2 vertical
/// kernels, and the attach-time JIT (core/jit.h) — straight-line
/// machine code emitted for the exact plan, no interpreter dispatch at
/// all. Auto picks the widest path the plan shape, the IsaLevel, and
/// the host CPU allow; the explicit values exist so the driver and
/// benchmarks can measure the ladder rung by rung. A request the plan
/// or host cannot honor resolves downward (Jit -> Avx2 -> Interleaved
/// -> Scalar), never upward.
enum class BatchPath { Auto, Scalar, Interleaved, Avx2, Jit };

/// Lower-case path name ("auto", "scalar", "interleaved", "avx2",
/// "jit") — the strings BENCH_*.json records so trajectories name the
/// kernel actually dispatched at runtime, not the compiled-in ceiling.
const char *batchPathName(BatchPath Path);

#if defined(SEPE_TELEMETRY)
/// Per-call batch dispatch accounting: which rung ran, how many keys
/// the call carried, and how many tail keys fell off the end of the
/// 4-wide interleave groups (the stragglers every batch kernel finishes
/// on its per-key epilogue). Names must be literals per rung so the
/// macro's static caching applies.
inline void recordBatchDispatch(BatchPath Resolved, size_t N) {
  switch (Resolved) {
  case BatchPath::Auto: // Resolved is never Auto; keep -Wswitch happy.
    break;
  case BatchPath::Scalar:
    SEPE_COUNT("executor.batch.calls.scalar");
    SEPE_RECORD("executor.batch.keys.scalar", N);
    break;
  case BatchPath::Interleaved:
    SEPE_COUNT("executor.batch.calls.interleaved");
    SEPE_RECORD("executor.batch.keys.interleaved", N);
    break;
  case BatchPath::Avx2:
    SEPE_COUNT("executor.batch.calls.avx2");
    SEPE_RECORD("executor.batch.keys.avx2", N);
    break;
  case BatchPath::Jit:
    SEPE_COUNT("executor.batch.calls.jit");
    SEPE_RECORD("executor.batch.keys.jit", N);
    break;
  }
  SEPE_RECORD("executor.batch.tail_keys", N % 4);
}
#endif

/// A KeyPattern membership guard compiled against one plan's load
/// schedule (SynthesizedHash::compileGuard). When the plan is a
/// fixed-length xor shape, the guard's per-position constant-bit checks
/// are re-expressed as (mask, value) words aligned to the offsets the
/// batch kernel already loads — the fused kernel then verifies
/// membership with one AND+CMP on each word it was hashing anyway,
/// plus a handful of Extra windows for constant positions no hash load
/// covers (the constant prefixes of the URL formats). Fused() false
/// means the plan shape has no fused kernel and guarded dispatch falls
/// back to the membership-sweep-then-compact path.
struct BatchGuard {
  /// One standalone check: (loadU64Le(Key + Offset) & Mask) == Value.
  struct Check {
    uint32_t Offset = 0;
    uint64_t Mask = 0;
    uint64_t Value = 0;
  };

  bool fused() const { return Fused; }

  bool Fused = false;
  size_t KeyLen = 0;
  /// Aligned index-for-index with the plan's Steps.
  std::vector<uint64_t> StepMasks;
  std::vector<uint64_t> StepValues;
  std::vector<Check> Extra;
};

/// A container-ready hash functor backed by a HashPlan. Copyable and
/// cheap to copy (shared plan ownership), so it can be handed to
/// std::unordered_map like any other hasher.
class SynthesizedHash {
public:
  SynthesizedHash() = default;

  /// Wraps \p Plan, selecting evaluation routines for \p Isa.
  /// \p Preferred pins the batch kernel family; Auto (the default)
  /// dispatches on the plan shape and the host CPU.
  explicit SynthesizedHash(std::shared_ptr<const HashPlan> Plan,
                           IsaLevel Isa = IsaLevel::Native,
                           BatchPath Preferred = BatchPath::Auto);

  /// Convenience: takes ownership of a plan by value.
  explicit SynthesizedHash(HashPlan Plan, IsaLevel Isa = IsaLevel::Native,
                           BatchPath Preferred = BatchPath::Auto)
      : SynthesizedHash(std::make_shared<const HashPlan>(std::move(Plan)),
                        Isa, Preferred) {}

  bool valid() const { return Plan != nullptr; }
  const HashPlan &plan() const {
    assert(Plan && "no plan attached");
    return *Plan;
  }

  /// Hashes \p Key. Precondition: Key conforms to the plan's key format
  /// (length within bounds); out-of-format keys still produce a value
  /// but no dispersion guarantees hold — exactly the contract of the
  /// paper's generated functions.
  size_t operator()(std::string_view Key) const {
    assert(Plan && "hashing with an empty SynthesizedHash");
    SEPE_COUNT("executor.single.calls");
    return Eval(*Plan, Key.data(), Key.size());
  }

  /// Hashes \p N keys in one call: Out[i] = (*this)(Keys[i]),
  /// bit-identical to the per-key operator. The batch kernel is selected
  /// at attach time alongside the per-key kernel; fixed-length plans run
  /// an evaluator that interleaves four keys per iteration so their
  /// loads overlap. Same precondition as operator(): every key conforms
  /// to the plan's format.
  void hashBatch(const std::string_view *Keys, uint64_t *Out,
                 size_t N) const {
    assert(Plan && "hashing with an empty SynthesizedHash");
#if defined(SEPE_TELEMETRY)
    recordBatchDispatch(Resolved, N);
#endif
    Batch(*Plan, Keys, Out, N);
  }

  /// Guard-aware batch dispatch, the entry point the adaptive runtime
  /// (runtime/adaptive_hash.h) hashes through: every key admitted by
  /// \p Guard runs the batch kernel and lands in Out at its own index;
  /// the indices of the rejected keys are appended to \p MissIdx (caller
  /// provides capacity for N) and their Out slots are left untouched for
  /// the caller's fallback lane. The common all-admitted block costs one
  /// word-at-a-time membership sweep plus the ordinary hashBatch call —
  /// no compaction copy; mixed blocks compact the admitted keys so the
  /// batch kernel still runs wide. Returns the number of misses.
  size_t hashBatchGuarded(const KeyPattern &Guard,
                          const std::string_view *Keys, uint64_t *Out,
                          size_t N, uint32_t *MissIdx) const;

  /// Compiles \p Guard against this plan's load schedule (see
  /// BatchGuard). Returns a non-fused guard when the plan shape has no
  /// fused kernel — fixed-length Naive/OffXor plans whose loads lie
  /// inside the guarded length are the fusable set. The caller caches
  /// the result for the lifetime of the (plan, pattern) pair; the
  /// adaptive runtime compiles one per published generation.
  BatchGuard compileGuard(const KeyPattern &Guard) const;

  /// hashBatchGuarded with a precompiled guard. \p Compiled must have
  /// been built by compileGuard on this same hash with this same
  /// \p Guard. Fused guards run the guard compare inside the batch
  /// kernel on words it already loads, so steady-state overhead is a
  /// couple of ALU ops per word instead of a second membership sweep.
  size_t hashBatchGuarded(const KeyPattern &Guard, const BatchGuard &Compiled,
                          const std::string_view *Keys, uint64_t *Out,
                          size_t N, uint32_t *MissIdx) const;

  /// The batch kernel family hashBatch resolved to at attach time —
  /// never Auto; reflects what actually runs on this host.
  BatchPath batchPath() const { return Resolved; }

  /// Name of the resolved batch path ("scalar" | "interleaved" |
  /// "avx2" | "jit"); what the benchmarks record.
  const char *batchPathName() const { return sepe::batchPathName(Resolved); }

  /// The compiled program when the JIT rung resolved, nullptr on every
  /// interpreted rung — exposed so tests can assert the W^X property
  /// of the live mapping and benchmarks can report code bytes. The
  /// shared_ptr rides along with every copy of the hash, which is what
  /// keeps emitted code alive RCU-style inside retired adaptive-runtime
  /// generations until their last reader drops them.
  const JitProgram *jitProgram() const { return Jit.get(); }

private:
  using EvalFn = uint64_t (*)(const HashPlan &, const char *, size_t);
  using BatchFn = void (*)(const HashPlan &, const std::string_view *,
                           uint64_t *, size_t);

  struct BatchChoice {
    BatchFn Fn;
    BatchPath Path;
  };

  static EvalFn selectEval(const HashPlan &Plan, IsaLevel Isa);
  static BatchChoice selectBatch(const HashPlan &Plan, IsaLevel Isa,
                                 BatchPath Preferred);

  std::shared_ptr<const HashPlan> Plan;
  std::shared_ptr<const JitProgram> Jit;
  EvalFn Eval = nullptr;
  BatchFn Batch = nullptr;
  BatchPath Resolved = BatchPath::Scalar;
};

} // namespace sepe

#endif // SEPE_CORE_EXECUTOR_H
