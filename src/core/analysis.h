//===- core/analysis.h - Key-format analyses for codegen -------*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analyses of Section 3.2 that turn a KeyPattern into a load layout:
///
///   - parseRanges: maximal runs of constant / non-constant bytes;
///   - computeLoads: 64-bit load offsets covering all non-constant bytes,
///     using the paper's overlapping last-load rule for fixed-length keys
///     (Section 3.2.2) and skipping constant words (Section 3.2.1);
///   - pext masks: the free (non-constant) bits inside each loaded word,
///     at bit-pair granularity (Section 3.2.3);
///   - buildSkipTable: the skip table driving the variable-length loop of
///     Figure 8.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_CORE_ANALYSIS_H
#define SEPE_CORE_ANALYSIS_H

#include "core/key_pattern.h"

#include <cstdint>
#include <vector>

namespace sepe {

/// A maximal run of bytes [Begin, End) that are all constant or all
/// non-constant.
struct ByteRun {
  size_t Begin;
  size_t End;
  bool IsConstant;

  size_t size() const { return End - Begin; }
  friend bool operator==(const ByteRun &A, const ByteRun &B) {
    return A.Begin == B.Begin && A.End == B.End &&
           A.IsConstant == B.IsConstant;
  }
};

/// Splits the first maxLength() bytes of \p Pattern into maximal
/// constant / non-constant runs ("parseRanges" in Figure 7).
std::vector<ByteRun> parseRanges(const KeyPattern &Pattern);

/// One planned 64-bit load.
struct LoadWord {
  /// Byte offset of the load within the key.
  uint32_t Offset;
  /// Free (non-constant) bits of the eight loaded bytes, little-endian:
  /// key byte Offset+J occupies result bits [8J, 8J+8).
  uint64_t FreeMask;
  /// Subset of FreeMask not already covered by an earlier, overlapping
  /// load; pext masks are built from this so no bit is extracted twice
  /// (compare masks mk0/mk1 in Figure 12).
  uint64_t NewFreeMask;

  friend bool operator==(const LoadWord &A, const LoadWord &B) {
    return A.Offset == B.Offset && A.FreeMask == B.FreeMask &&
           A.NewFreeMask == B.NewFreeMask;
  }
};

/// Load layout for a fixed-length key covering every byte (the Naive
/// family): loads at 0, 8, 16, ... with the final load pulled back to
/// KeyLen-8 when the length is not a multiple of eight. Requires
/// KeyLen >= 8.
std::vector<LoadWord> computeLoadsAllBytes(const KeyPattern &Pattern);

/// Load layout for a fixed-length key covering only non-constant runs
/// (the OffXor / Aes / Pext families, Section 3.2.2): constant words are
/// never loaded, and the last load of each run overlaps backwards when
/// the run tail is narrower than a word. Requires KeyLen >= 8.
std::vector<LoadWord> computeLoadsSkippingConst(const KeyPattern &Pattern);

/// The free-bit mask of the eight bytes starting at \p Offset.
uint64_t freeMaskAt(const KeyPattern &Pattern, size_t Offset);

/// The skip table of Section 3.2.1 for variable-length keys. The layout
/// mirrors Figure 8: Skip[0] is the initial pointer adjustment, and after
/// the C-th load the pointer advances by Skip[C]; loads are only planned
/// inside the guaranteed prefix [0, minLength()-8]. Bytes from TailStart
/// on are consumed by the byte-at-a-time tail loop.
struct SkipTable {
  std::vector<uint32_t> Skip;
  /// Pext masks, one per planned load (Skip.size() - 1 entries).
  std::vector<uint64_t> Masks;
  /// First byte handled by the tail loop.
  uint32_t TailStart = 0;

  size_t loadCount() const { return Skip.empty() ? 0 : Skip.size() - 1; }
};

SkipTable buildSkipTable(const KeyPattern &Pattern);

} // namespace sepe

#endif // SEPE_CORE_ANALYSIS_H
