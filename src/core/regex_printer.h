//===- core/regex_printer.h - KeyPattern -> canonical regex ----*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a KeyPattern back into the restricted regex dialect. This is
/// the output side of the paper's `keybuilder` tool: inference produces a
/// lattice pattern, and the printed regex is what the user feeds into
/// `keysynth` (Figure 5a). Round-trip property: parsing the printed regex
/// and abstracting it yields the original pattern.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_CORE_REGEX_PRINTER_H
#define SEPE_CORE_REGEX_PRINTER_H

#include "core/key_pattern.h"

#include <string>

namespace sepe {

/// Renders one byte pattern as a regex atom: a literal for constant
/// bytes, '.' for top, or a character class covering exactly the bytes
/// the quad constraints admit.
std::string printByteAtom(const BytePattern &Byte);

/// Renders \p Pattern as a regex. Optional tail positions (variable
/// length) are emitted with '?' quantifiers. Runs of identical atoms are
/// compressed with {n} counts.
std::string printRegex(const KeyPattern &Pattern);

} // namespace sepe

#endif // SEPE_CORE_REGEX_PRINTER_H
