//===- core/regex_parser.h - Restricted regex -> FormatSpec ----*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the restricted regular-expression dialect SEPE accepts
/// (Figure 5b) into an exact FormatSpec. Supported constructs:
///
///   - literal characters and '\'-escapes (\., \\, \xHH, ...)
///   - character classes: [0-9a-fA-F], \d, \w, \s, and '.' (any byte)
///   - groups: ( ... )
///   - counted repetition: {n} anywhere, {n,m} and '?' in tail position
///
/// Unbounded repetition ('*', '+', '{n,}') and alternation ('|') are
/// rejected with a diagnostic: SEPE's specializations require a bounded
/// positional format. Keys with genuinely unbounded tails should be
/// described up to a prefix; the synthesized functions then fall back to
/// the skip-table loop of Section 3.2.1 for the tail.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_CORE_REGEX_PARSER_H
#define SEPE_CORE_REGEX_PARSER_H

#include "core/format_spec.h"
#include "support/expected.h"

#include <string_view>

namespace sepe {

/// Maximum expanded width a regex may describe; guards against
/// pathological counted repetitions.
constexpr size_t MaxRegexWidth = 1u << 20;

/// Parses \p Regex into an exact per-position format. On failure the
/// error carries the offending input position.
Expected<FormatSpec> parseRegex(std::string_view Regex);

} // namespace sepe

#endif // SEPE_CORE_REGEX_PARSER_H
