//===- core/synthesizer.cpp - KeyPattern -> HashPlan ---------------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "core/synthesizer.h"

#include "support/telemetry.h"

#include <bit>

using namespace sepe;

namespace {

/// A fixed-length Pext plan is a bijection when every free bit of the
/// format is extracted exactly once and the rotated chunks land in
/// disjoint bit ranges of the result.
bool isBijectivePext(const std::vector<PlanStep> &Steps, unsigned FreeBits) {
  if (FreeBits > 64)
    return false;
  uint64_t Occupied = 0;
  unsigned Extracted = 0;
  for (const PlanStep &S : Steps) {
    const unsigned Width = static_cast<unsigned>(std::popcount(S.Mask));
    Extracted += Width;
    if (S.Shift + Width > 64)
      return false; // The rotation would wrap into earlier chunks.
    const uint64_t Range =
        (Width == 64 ? ~uint64_t{0} : ((uint64_t{1} << Width) - 1))
        << S.Shift;
    if ((Occupied & Range) != 0)
      return false;
    Occupied |= Range;
  }
  return Extracted == FreeBits;
}

/// Assigns pext shifts: chunks pack upward from bit 0 in load order, and
/// when the format has spare room the final chunk is hoisted so the most
/// significant hash bit is populated (Figure 12, Step 3). The first
/// chunk always stays at the low end, preserving the learned-index style
/// identity mapping on the low bits (Example 4.1).
void assignPextShifts(std::vector<PlanStep> &Steps, bool SpreadToTopBits) {
  unsigned BitOffset = 0;
  unsigned TotalBits = 0;
  for (PlanStep &S : Steps) {
    S.Shift = static_cast<uint8_t>(BitOffset & 63);
    const unsigned Width = static_cast<unsigned>(std::popcount(S.Mask));
    BitOffset += Width;
    TotalBits += Width;
  }
  if (SpreadToTopBits && Steps.size() >= 2 && TotalBits < 64) {
    PlanStep &Last = Steps.back();
    const unsigned Width = static_cast<unsigned>(std::popcount(Last.Mask));
    Last.Shift = static_cast<uint8_t>(64 - Width);
  }
}

Expected<HashPlan> synthesizeShortKey(const KeyPattern &Pattern,
                                      HashFamily Family,
                                      const SynthesisOptions &Options,
                                      HashPlan Plan) {
  if (!Options.AllowShortKeys) {
    // Footnote 5: SEPE defaults to the standard STL function for keys
    // with fewer than eight bytes.
    Plan.FallbackToStl = true;
    return Plan;
  }
  if (!Pattern.isFixedLength())
    return Error{"cannot force-specialize variable-length keys shorter "
                 "than one machine word"};
  Plan.PartialLoad = true;
  PlanStep Step;
  Step.Offset = 0;
  if (Family == HashFamily::Pext) {
    uint64_t Mask = 0;
    for (size_t J = 0; J != Pattern.maxLength(); ++J)
      Mask |= static_cast<uint64_t>(Pattern.byteAt(J).freeMask()) << (8 * J);
    Step.Mask = Mask;
    // A single full-coverage extraction of a sub-word key is trivially
    // injective.
    Plan.Bijective = true;
  }
  Plan.Steps.push_back(Step);
  return Plan;
}

} // namespace

Expected<HashPlan> sepe::synthesize(const KeyPattern &Pattern,
                                    HashFamily Family,
                                    const SynthesisOptions &Options) {
  SEPE_SPAN("synthesis.plan_construction");
  SEPE_COUNT("synthesis.plans");
  if (Pattern.empty())
    return Error{"cannot synthesize a hash for an empty key pattern"};
  if (Pattern.freeBitCount() == 0)
    return Error{"the key format admits a single key; no hash is needed"};

  HashPlan Plan;
  Plan.Family = Family;
  Plan.MinKeyLen = static_cast<uint32_t>(Pattern.minLength());
  Plan.MaxKeyLen = static_cast<uint32_t>(Pattern.maxLength());
  Plan.FixedLength = Pattern.isFixedLength();
  Plan.FreeBits = Pattern.freeBitCount();

  if (Pattern.maxLength() < 8)
    return synthesizeShortKey(Pattern, Family, Options, std::move(Plan));

  if (Plan.FixedLength) {
    const std::vector<LoadWord> Loads = Family == HashFamily::Naive
                                            ? computeLoadsAllBytes(Pattern)
                                            : computeLoadsSkippingConst(
                                                  Pattern);
    assert(!Loads.empty() && "a non-constant fixed-length format always "
                             "yields at least one load");
    for (const LoadWord &Load : Loads) {
      PlanStep Step;
      Step.Offset = Load.Offset;
      if (Family == HashFamily::Pext) {
        if (Load.NewFreeMask == 0)
          continue; // Fully shadowed by an earlier overlapping load.
        Step.Mask = Load.NewFreeMask;
      }
      Plan.Steps.push_back(Step);
    }
    if (Family == HashFamily::Pext) {
      assignPextShifts(Plan.Steps, Options.SpreadToTopBits);
      Plan.Bijective = isBijectivePext(Plan.Steps, Plan.FreeBits);
    }
    return Plan;
  }

  // Variable-length keys: drive the Figure 8 loop with a skip table. The
  // Naive family has no constant-skipping, so its "skip table" walks
  // every word of the guaranteed prefix.
  if (Family == HashFamily::Naive) {
    KeyPattern AllFree = KeyPattern::variable(
        std::vector<BytePattern>(Pattern.maxLength(), BytePattern::top()),
        Pattern.minLength());
    Plan.Skip = buildSkipTable(AllFree);
  } else {
    Plan.Skip = buildSkipTable(Pattern);
  }
  if (Family != HashFamily::Pext)
    Plan.Skip.Masks.assign(Plan.Skip.loadCount(), ~uint64_t{0});
  return Plan;
}

Expected<std::array<HashPlan, 4>>
sepe::synthesizeAllFamilies(const KeyPattern &Pattern,
                            const SynthesisOptions &Options) {
  std::array<HashPlan, 4> Result;
  const HashFamily Families[] = {HashFamily::Naive, HashFamily::OffXor,
                                 HashFamily::Aes, HashFamily::Pext};
  for (size_t I = 0; I != 4; ++I) {
    Expected<HashPlan> Plan = synthesize(Pattern, Families[I], Options);
    if (!Plan)
      return Plan.error();
    Result[I] = Plan.take();
  }
  return Result;
}
