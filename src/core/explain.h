//===- core/explain.h - Plan and JIT introspection -------------*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Read-side introspection over the HashPlan IR and compiled JIT
/// programs. explainPlan renders any plan — synthesized in-process or
/// parsed back from a `sepe-plan v1` file — as annotated human-readable
/// text, a JSON document, or Graphviz DOT, step by step: which key
/// bytes each load touches, which bits the pext mask keeps, how the
/// family combines the words, and a rough per-step cost. The DOT form
/// is a single valid digraph so `dot -Tsvg` renders it directly;
/// explainPlansDot puts several plans side by side as clusters of one
/// graph. explainJitProgram adds an annotated hex dump of the machine
/// code a plan compiled to, with the single-key and batch entry points
/// marked.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_CORE_EXPLAIN_H
#define SEPE_CORE_EXPLAIN_H

#include "core/plan.h"

#include <string>
#include <utility>
#include <vector>

namespace sepe {

class JitProgram;

/// Output forms of explainPlan. Text is the default for terminals;
/// Json feeds tooling; Dot feeds `dot -Tsvg`.
enum class ExplainFormat {
  Text,
  Json,
  Dot,
};

/// Parses "text" / "json" / "dot" (as accepted by `--explain=`);
/// returns false and leaves \p Format untouched on anything else.
bool parseExplainFormat(const std::string &Name, ExplainFormat &Format);

/// Renders \p Plan in the requested \p Format. The result always ends
/// with a newline and, for Dot, is one self-contained digraph.
std::string explainPlan(const HashPlan &Plan,
                        ExplainFormat Format = ExplainFormat::Text);

/// One digraph with one cluster per (name, plan) pair, so several
/// families over the same format render side by side under a single
/// `dot` invocation.
std::string
explainPlansDot(const std::vector<std::pair<std::string, HashPlan>> &Plans);

/// Annotated hex dump of a compiled program: code size, single-key and
/// batch entry offsets, 16 bytes per line.
std::string explainJitProgram(const JitProgram &Program);

} // namespace sepe

#endif // SEPE_CORE_EXPLAIN_H
