//===- core/regex_printer.cpp - KeyPattern -> canonical regex ------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "core/regex_printer.h"

#include <cctype>

using namespace sepe;

namespace {

/// Characters that must be escaped when printed as regex literals.
bool needsEscape(uint8_t Byte) {
  switch (Byte) {
  case '.':
  case '\\':
  case '(':
  case ')':
  case '[':
  case ']':
  case '{':
  case '}':
  case '?':
  case '*':
  case '+':
  case '|':
  case '-':
  case '^':
    return true;
  default:
    return false;
  }
}

void appendByte(std::string &Out, uint8_t Byte, bool InClass) {
  if (std::isprint(Byte) != 0) {
    if (InClass ? (Byte == ']' || Byte == '\\' || Byte == '-' || Byte == '^')
                : needsEscape(Byte))
      Out += '\\';
    Out += static_cast<char>(Byte);
    return;
  }
  static const char Hex[] = "0123456789abcdef";
  Out += "\\x";
  Out += Hex[Byte >> 4];
  Out += Hex[Byte & 0xF];
}

/// Emits the set of bytes matching \p Byte as a class, compressing
/// consecutive values into ranges.
std::string classAtom(const BytePattern &Byte) {
  std::string Out = "[";
  int RunStart = -1, Prev = -2;
  const auto FlushRun = [&](int Last) {
    if (RunStart < 0)
      return;
    appendByte(Out, static_cast<uint8_t>(RunStart), /*InClass=*/true);
    if (Last > RunStart) {
      if (Last > RunStart + 1)
        Out += '-';
      appendByte(Out, static_cast<uint8_t>(Last), /*InClass=*/true);
    }
  };
  for (unsigned Value = 0; Value != 256; ++Value) {
    if (!Byte.matches(static_cast<uint8_t>(Value)))
      continue;
    if (static_cast<int>(Value) != Prev + 1) {
      FlushRun(Prev);
      RunStart = static_cast<int>(Value);
    }
    Prev = static_cast<int>(Value);
  }
  FlushRun(Prev);
  Out += ']';
  return Out;
}

} // namespace

std::string sepe::printByteAtom(const BytePattern &Byte) {
  if (Byte.isTop())
    return ".";
  if (Byte.isConstant()) {
    std::string Out;
    appendByte(Out, Byte.constValue(), /*InClass=*/false);
    return Out;
  }
  return classAtom(Byte);
}

std::string sepe::printRegex(const KeyPattern &Pattern) {
  std::string Out;
  size_t I = 0;
  const size_t N = Pattern.size();
  while (I != N) {
    const bool Optional = I >= Pattern.minLength();
    const std::string Atom = printByteAtom(Pattern.byteAt(I));
    size_t RunLen = 1;
    while (I + RunLen != N &&
           (I + RunLen >= Pattern.minLength()) == Optional &&
           printByteAtom(Pattern.byteAt(I + RunLen)) == Atom)
      ++RunLen;
    if (Optional) {
      // Optional tails print as (atom){0,k} so length information
      // round-trips through the parser.
      Out += '(';
      Out += Atom;
      Out += "){0,";
      Out += std::to_string(RunLen);
      Out += '}';
    } else {
      Out += Atom;
      if (RunLen > 1) {
        Out += '{';
        Out += std::to_string(RunLen);
        Out += '}';
      }
    }
    I += RunLen;
  }
  return Out;
}
