//===- core/jit.h - Attach-time x86-64 JIT for HashPlans --------*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// In-process x86-64 code generation for HashPlans. Where the executor
/// interprets a plan's step list (core/executor.h) and codegen emits C++
/// source for offline compilation (core/codegen.h), the JIT closes the
/// loop at attach time: it encodes the plan's load/pext/rotate/xor
/// sequence directly into machine code in an anonymous mmap buffer —
/// masks, shifts, and offsets baked in as immediates — then flips the
/// buffer from writable to executable (W^X: PROT_READ|PROT_WRITE while
/// emitting, PROT_READ|PROT_EXEC forever after, never both).
///
/// A compiled JitProgram carries two entry points whose signatures match
/// the executor's internal kernel types exactly (the leading HashPlan&
/// argument is accepted and ignored), so compiled code drops into the
/// same function-pointer slots as the interpreted kernels with no
/// trampoline. Lifetime is shared_ptr-managed: SynthesizedHash keeps the
/// program alive as long as any copy of the hash exists, which is
/// precisely the RCU retirement story the adaptive runtime and the
/// sharded containers already implement for plan generations — retired
/// Table generations hold SynthesizedHash copies until no reader can
/// touch them, so the code buffer is never unmapped under a running
/// caller.
///
/// Eligibility is two separate questions, split so the dispatch ladder
/// can report them independently: jitAvailable() is about the *host*
/// (compiled in, BMI2 in cpuid, SEPE_JIT env not disabling) and
/// jitSupportsPlan() is about the *shape* (fixed-length, whole-word
/// loads, a Naive/OffXor/Pext family, a step count the emitter unrolls).
/// Everything else resolves downward onto the interpreted rungs.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_CORE_JIT_H
#define SEPE_CORE_JIT_H

#include "core/plan.h"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>

namespace sepe {

class JitProgram;

/// Compiled in at all? True only on x86-64 Linux builds without
/// -DSEPE_DISABLE_JIT (mmap/mprotect and the encodings are host
/// specific; the forced-fallback CI job proves every caller behaves
/// with this false).
bool jitCompiledIn();

/// Host gate: compiled in, BMI2 present in the runtime cpuid probe
/// (pext is encoded unconditionally for the Pext family and the gate is
/// kept uniform), and the SEPE_JIT environment variable — read once,
/// mirroring SEPE_TELEMETRY_ENABLED — not set to "0"/"off"/"false".
bool jitAvailable();

/// Shape gate: fixed-length Naive/OffXor/Pext plans with whole-word
/// loads and 1..16 steps. Variable-length, partial-load, Aes, and
/// fallback shapes stay on the interpreted ladder.
bool jitSupportsPlan(const HashPlan &Plan);

/// Compiles \p Plan to native code. Returns nullptr when
/// !jitAvailable(), !jitSupportsPlan(Plan), or the kernel refuses the
/// mapping — callers must be ready to stay on the interpreter.
std::shared_ptr<const JitProgram> compileJitProgram(const HashPlan &Plan);

/// One W^X code buffer holding a single-key evaluator and a 4-wide
/// unrolled batch kernel for one plan. Immutable once built (the
/// factory is the only writer and it seals the mapping before
/// publishing); move-only at the unique_ptr/shared_ptr level — the
/// object itself is pinned to its mapping.
class JitProgram {
public:
  using EvalFn = uint64_t (*)(const HashPlan &, const char *, size_t);
  using BatchFn = void (*)(const HashPlan &, const std::string_view *,
                           uint64_t *, size_t);

  JitProgram(const JitProgram &) = delete;
  JitProgram &operator=(const JitProgram &) = delete;
  ~JitProgram();

  /// Single-key entry point: rdi = ignored plan, rsi = data, rdx = len
  /// (ignored; the length is baked in). Bit-identical to the
  /// interpreter's fixed-length kernel for the same plan.
  EvalFn eval() const { return EvalEntry; }

  /// Batch entry point: rdi = ignored plan, rsi = string_view array,
  /// rdx = out array, rcx = count. Four keys per main-loop iteration,
  /// per-key tail.
  BatchFn batch() const { return BatchEntry; }

  /// Bytes of machine code emitted (not the page-rounded mapping size);
  /// what telemetry reports as jit.attach.code_bytes.
  size_t codeBytes() const { return CodeLen; }

  /// Base of the executable mapping — exposed so tests can walk
  /// /proc/self/maps and assert the W^X property on the live region.
  const void *code() const { return Mapping; }

private:
  JitProgram() = default;
  friend std::shared_ptr<const JitProgram>
  compileJitProgram(const HashPlan &Plan);

  void *Mapping = nullptr;
  size_t MapLen = 0;
  size_t CodeLen = 0;
  EvalFn EvalEntry = nullptr;
  BatchFn BatchEntry = nullptr;
};

} // namespace sepe

#endif // SEPE_CORE_JIT_H
