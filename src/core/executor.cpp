//===- core/executor.cpp - Runtime evaluation of HashPlans ---------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "core/executor.h"

#include "hashes/aes_round.h"
#include "hashes/murmur.h"
#include "support/bit_ops.h"
#include "support/unreachable.h"

#include <bit>

#if defined(SEPE_HAVE_AESNI)
#include <immintrin.h>
#endif

using namespace sepe;

namespace {

/// Initial AES state; arbitrary odd constants (first digits of pi/e) —
/// the Aes family derives its dispersion from the round function, not
/// the seed.
constexpr Block128 AesInitState{0x243f6a8885a308d3ULL,
                                0x13198a2e03707344ULL};

using EvalFnT = uint64_t (*)(const HashPlan &, const char *, size_t);
using BatchFnT = void (*)(const HashPlan &, const std::string_view *,
                          uint64_t *, size_t);

uint64_t evalFallback(const HashPlan &, const char *Data, size_t Len) {
  return murmurHashBytes(Data, Len, StlHashSeed);
}

// --- Fixed-length paths ---------------------------------------------------
//
// The fixed-length kernels are "fused": the step count is a template
// parameter for the common plan sizes (NSteps != 0), so the step loop
// unrolls away and the kernel is the same straight-line code codegen.h
// would emit. NSteps == 0 is the generic runtime-count variant.

template <size_t NSteps = 0>
uint64_t evalFixedXor(const HashPlan &Plan, const char *Data, size_t) {
  const PlanStep *Steps = Plan.Steps.data();
  const size_t M = NSteps != 0 ? NSteps : Plan.Steps.size();
  uint64_t Hash = 0;
  for (size_t S = 0; S != M; ++S)
    Hash ^= loadU64Le(Data + Steps[S].Offset);
  return Hash;
}

template <uint64_t (*Pext)(uint64_t, uint64_t), size_t NSteps = 0>
uint64_t evalFixedPext(const HashPlan &Plan, const char *Data, size_t) {
  const PlanStep *Steps = Plan.Steps.data();
  const size_t M = NSteps != 0 ? NSteps : Plan.Steps.size();
  uint64_t Hash = 0;
  // Chunks are *rotated* into place rather than shifted so formats with
  // more than 64 relevant bits wrap around without losing entropy
  // (Section 4.2: zero T-Coll even on 400-relevant-bit keys). For
  // chunks that fit, rotl is identical to the shift in Figure 12.
  for (size_t S = 0; S != M; ++S)
    Hash ^= std::rotl(Pext(loadU64Le(Data + Steps[S].Offset), Steps[S].Mask),
                      Steps[S].Shift);
  return Hash;
}

template <Block128 (*Round)(Block128, Block128)>
uint64_t evalFixedAes(const HashPlan &Plan, const char *Data, size_t Len) {
  Block128 State = AesInitState;
  State.Lo ^= Len;
  const std::vector<PlanStep> &Steps = Plan.Steps;
  size_t I = 0;
  for (; I + 1 < Steps.size(); I += 2) {
    const Block128 Chunk{loadU64Le(Data + Steps[I].Offset),
                         loadU64Le(Data + Steps[I + 1].Offset)};
    State = Round(State, Chunk);
  }
  if (I < Steps.size()) {
    // Odd number of loads: replicate the last word to fill the block,
    // the behavior that costs the Aes family a handful of collisions on
    // keys shorter than 16 bytes (Section 4.2).
    const uint64_t Last = loadU64Le(Data + Steps[I].Offset);
    State = Round(State, Block128{Last, Last});
  }
  State = Round(State, AesInitState);
  return State.Lo ^ State.Hi;
}

#if defined(SEPE_HAVE_AESNI)
/// Register-resident variant of evalFixedAes: bit-identical to the
/// template instantiated with aesEncRoundHw, but the 128-bit state stays
/// in an xmm register across rounds instead of round-tripping through
/// Block128.
uint64_t evalFixedAesNative(const HashPlan &Plan, const char *Data,
                            size_t Len) {
  const __m128i Init = _mm_set_epi64x(
      static_cast<long long>(0x13198a2e03707344ULL),
      static_cast<long long>(0x243f6a8885a308d3ULL));
  __m128i State = _mm_set_epi64x(
      static_cast<long long>(0x13198a2e03707344ULL),
      static_cast<long long>(0x243f6a8885a308d3ULL ^ Len));
  const std::vector<PlanStep> &Steps = Plan.Steps;
  size_t I = 0;
  for (; I + 1 < Steps.size(); I += 2) {
    const __m128i Chunk = _mm_set_epi64x(
        static_cast<long long>(loadU64Le(Data + Steps[I + 1].Offset)),
        static_cast<long long>(loadU64Le(Data + Steps[I].Offset)));
    State = _mm_aesenc_si128(State, Chunk);
  }
  if (I < Steps.size()) {
    const long long Last =
        static_cast<long long>(loadU64Le(Data + Steps[I].Offset));
    State = _mm_aesenc_si128(State, _mm_set_epi64x(Last, Last));
  }
  State = _mm_aesenc_si128(State, Init);
  const uint64_t Lo = static_cast<uint64_t>(_mm_cvtsi128_si64(State));
  const uint64_t Hi = static_cast<uint64_t>(
      _mm_cvtsi128_si64(_mm_unpackhi_epi64(State, State)));
  return Lo ^ Hi;
}
#endif

// --- Short forced-specialization path (RQ7) -------------------------------

uint64_t evalPartialXor(const HashPlan &Plan, const char *Data, size_t Len) {
  (void)Plan;
  return loadBytesLe(Data, Len < 8 ? Len : 8);
}

template <uint64_t (*Pext)(uint64_t, uint64_t)>
uint64_t evalPartialPext(const HashPlan &Plan, const char *Data, size_t Len) {
  const uint64_t Word = loadBytesLe(Data, Len < 8 ? Len : 8);
  return Pext(Word, Plan.Steps.front().Mask);
}

template <Block128 (*Round)(Block128, Block128)>
uint64_t evalPartialAes(const HashPlan &Plan, const char *Data, size_t Len) {
  (void)Plan;
  const uint64_t Word = loadBytesLe(Data, Len < 8 ? Len : 8);
  Block128 State = AesInitState;
  State.Lo ^= Len;
  State = Round(State, Block128{Word, Word});
  State = Round(State, AesInitState);
  return State.Lo ^ State.Hi;
}

// --- Variable-length (skip table) paths: Figure 8 -------------------------

/// Walks the skip table, handing each loaded word and then each tail
/// byte to the callbacks.
template <typename WordFn, typename ByteFn>
void walkSkipTable(const HashPlan &Plan, const char *Data, size_t Len,
                   WordFn Word, ByteFn Byte) {
  const SkipTable &Table = Plan.Skip;
  const char *P = Data;
  const char *End = Data + Len;
  if (!Table.Skip.empty()) {
    P += Table.Skip[0];
    for (size_t C = 1; C != Table.Skip.size(); ++C) {
      Word(loadU64Le(P), C - 1);
      P += Table.Skip[C];
    }
  }
  while (P < End) {
    Byte(static_cast<uint8_t>(*P));
    ++P;
  }
}

uint64_t evalVarXor(const HashPlan &Plan, const char *Data, size_t Len) {
  uint64_t Hash = Len;
  unsigned TailShift = 0;
  walkSkipTable(
      Plan, Data, Len, [&](uint64_t W, size_t) { Hash ^= W; },
      [&](uint8_t B) {
        Hash ^= std::rotl(static_cast<uint64_t>(B),
                          static_cast<int>(TailShift));
        TailShift = (TailShift + 8) & 63;
      });
  return Hash;
}

template <uint64_t (*Pext)(uint64_t, uint64_t)>
uint64_t evalVarPext(const HashPlan &Plan, const char *Data, size_t Len) {
  uint64_t Hash = Len;
  unsigned BitOffset = 0;
  unsigned TailShift = 0;
  walkSkipTable(
      Plan, Data, Len,
      [&](uint64_t W, size_t C) {
        const uint64_t Mask = Plan.Skip.Masks[C];
        Hash ^= std::rotl(Pext(W, Mask), static_cast<int>(BitOffset & 63));
        BitOffset += static_cast<unsigned>(__builtin_popcountll(Mask));
      },
      [&](uint8_t B) {
        Hash ^= std::rotl(static_cast<uint64_t>(B),
                          static_cast<int>((BitOffset + TailShift) & 63));
        TailShift = (TailShift + 8) & 63;
      });
  return Hash;
}

template <Block128 (*Round)(Block128, Block128)>
uint64_t evalVarAes(const HashPlan &Plan, const char *Data, size_t Len) {
  Block128 State = AesInitState;
  State.Lo ^= Len;
  uint64_t Pending = 0;
  bool HavePending = false;
  uint64_t TailAcc = 0;
  unsigned TailShift = 0;
  walkSkipTable(
      Plan, Data, Len,
      [&](uint64_t W, size_t) {
        if (HavePending) {
          State = Round(State, Block128{Pending, W});
          HavePending = false;
          return;
        }
        Pending = W;
        HavePending = true;
      },
      [&](uint8_t B) {
        TailAcc ^= static_cast<uint64_t>(B) << TailShift;
        TailShift = (TailShift + 8) & 63;
      });
  if (HavePending)
    State = Round(State, Block128{Pending, Pending});
  if (TailShift != 0 || TailAcc != 0)
    State = Round(State, Block128{TailAcc, Len});
  State = Round(State, AesInitState);
  return State.Lo ^ State.Hi;
}

// --- Batch evaluators -----------------------------------------------------
//
// The fixed-length batch kernels process four keys per iteration: the
// four hash states live in registers at once, so the (independent) key
// loads overlap instead of serializing behind each key's combine chain —
// the memory-level parallelism a per-key call can never expose. The
// variable-length and partial-load shapes fall back to a per-key loop
// over the already-selected single kernel; they still amortize the
// indirect call but keep one code path.

template <EvalFnT Eval>
void batchViaSingle(const HashPlan &Plan, const std::string_view *Keys,
                    uint64_t *Out, size_t N) {
  for (size_t I = 0; I != N; ++I)
    Out[I] = Eval(Plan, Keys[I].data(), Keys[I].size());
}

template <size_t NSteps = 0>
void batchFixedXor(const HashPlan &Plan, const std::string_view *Keys,
                   uint64_t *Out, size_t N) {
  const PlanStep *Steps = Plan.Steps.data();
  const size_t M = NSteps != 0 ? NSteps : Plan.Steps.size();
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    const char *D0 = Keys[I + 0].data();
    const char *D1 = Keys[I + 1].data();
    const char *D2 = Keys[I + 2].data();
    const char *D3 = Keys[I + 3].data();
    uint64_t H0 = 0, H1 = 0, H2 = 0, H3 = 0;
    for (size_t S = 0; S != M; ++S) {
      const uint32_t Off = Steps[S].Offset;
      H0 ^= loadU64Le(D0 + Off);
      H1 ^= loadU64Le(D1 + Off);
      H2 ^= loadU64Le(D2 + Off);
      H3 ^= loadU64Le(D3 + Off);
    }
    Out[I + 0] = H0;
    Out[I + 1] = H1;
    Out[I + 2] = H2;
    Out[I + 3] = H3;
  }
  for (; I != N; ++I)
    Out[I] = evalFixedXor<NSteps>(Plan, Keys[I].data(), Keys[I].size());
}

template <uint64_t (*Pext)(uint64_t, uint64_t), size_t NSteps = 0>
void batchFixedPext(const HashPlan &Plan, const std::string_view *Keys,
                    uint64_t *Out, size_t N) {
  const PlanStep *Steps = Plan.Steps.data();
  const size_t M = NSteps != 0 ? NSteps : Plan.Steps.size();
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    const char *D0 = Keys[I + 0].data();
    const char *D1 = Keys[I + 1].data();
    const char *D2 = Keys[I + 2].data();
    const char *D3 = Keys[I + 3].data();
    uint64_t H0 = 0, H1 = 0, H2 = 0, H3 = 0;
    for (size_t S = 0; S != M; ++S) {
      const uint32_t Off = Steps[S].Offset;
      const uint64_t Mask = Steps[S].Mask;
      const int Shift = Steps[S].Shift;
      H0 ^= std::rotl(Pext(loadU64Le(D0 + Off), Mask), Shift);
      H1 ^= std::rotl(Pext(loadU64Le(D1 + Off), Mask), Shift);
      H2 ^= std::rotl(Pext(loadU64Le(D2 + Off), Mask), Shift);
      H3 ^= std::rotl(Pext(loadU64Le(D3 + Off), Mask), Shift);
    }
    Out[I + 0] = H0;
    Out[I + 1] = H1;
    Out[I + 2] = H2;
    Out[I + 3] = H3;
  }
  for (; I != N; ++I)
    Out[I] =
        evalFixedPext<Pext, NSteps>(Plan, Keys[I].data(), Keys[I].size());
}

#if defined(SEPE_HAVE_AESNI)
/// Four interleaved copies of evalFixedAesNative: the AES round has a
/// multi-cycle latency but single-cycle throughput, so four independent
/// states keep the AES unit busy instead of stalling on one chain.
void batchFixedAesNative(const HashPlan &Plan, const std::string_view *Keys,
                         uint64_t *Out, size_t N) {
  const __m128i Init = _mm_set_epi64x(
      static_cast<long long>(0x13198a2e03707344ULL),
      static_cast<long long>(0x243f6a8885a308d3ULL));
  const std::vector<PlanStep> &Steps = Plan.Steps;
  const size_t M = Steps.size();
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    const char *D0 = Keys[I + 0].data();
    const char *D1 = Keys[I + 1].data();
    const char *D2 = Keys[I + 2].data();
    const char *D3 = Keys[I + 3].data();
    __m128i S0 = _mm_xor_si128(
        Init, _mm_set_epi64x(0, static_cast<long long>(Keys[I + 0].size())));
    __m128i S1 = _mm_xor_si128(
        Init, _mm_set_epi64x(0, static_cast<long long>(Keys[I + 1].size())));
    __m128i S2 = _mm_xor_si128(
        Init, _mm_set_epi64x(0, static_cast<long long>(Keys[I + 2].size())));
    __m128i S3 = _mm_xor_si128(
        Init, _mm_set_epi64x(0, static_cast<long long>(Keys[I + 3].size())));
    size_t S = 0;
    for (; S + 1 < M; S += 2) {
      const uint32_t OffLo = Steps[S].Offset;
      const uint32_t OffHi = Steps[S + 1].Offset;
      const auto Chunk = [OffLo, OffHi](const char *D) {
        return _mm_set_epi64x(
            static_cast<long long>(loadU64Le(D + OffHi)),
            static_cast<long long>(loadU64Le(D + OffLo)));
      };
      S0 = _mm_aesenc_si128(S0, Chunk(D0));
      S1 = _mm_aesenc_si128(S1, Chunk(D1));
      S2 = _mm_aesenc_si128(S2, Chunk(D2));
      S3 = _mm_aesenc_si128(S3, Chunk(D3));
    }
    if (S < M) {
      const uint32_t Off = Steps[S].Offset;
      const auto Last = [Off](const char *D) {
        const long long W = static_cast<long long>(loadU64Le(D + Off));
        return _mm_set_epi64x(W, W);
      };
      S0 = _mm_aesenc_si128(S0, Last(D0));
      S1 = _mm_aesenc_si128(S1, Last(D1));
      S2 = _mm_aesenc_si128(S2, Last(D2));
      S3 = _mm_aesenc_si128(S3, Last(D3));
    }
    S0 = _mm_aesenc_si128(S0, Init);
    S1 = _mm_aesenc_si128(S1, Init);
    S2 = _mm_aesenc_si128(S2, Init);
    S3 = _mm_aesenc_si128(S3, Init);
    const auto Fold = [](__m128i State) {
      const uint64_t Lo = static_cast<uint64_t>(_mm_cvtsi128_si64(State));
      const uint64_t Hi = static_cast<uint64_t>(
          _mm_cvtsi128_si64(_mm_unpackhi_epi64(State, State)));
      return Lo ^ Hi;
    };
    Out[I + 0] = Fold(S0);
    Out[I + 1] = Fold(S1);
    Out[I + 2] = Fold(S2);
    Out[I + 3] = Fold(S3);
  }
  for (; I != N; ++I)
    Out[I] = evalFixedAesNative(Plan, Keys[I].data(), Keys[I].size());
}
#endif

// --- Kernel selection helpers ---------------------------------------------
//
// The attach-time "compilation": pick the fused instantiation matching
// the plan's step count (paper formats have 1-4 loads) or the generic
// runtime-count kernel beyond that.

EvalFnT selectFixedXorEval(size_t M) {
  switch (M) {
  case 1:
    return evalFixedXor<1>;
  case 2:
    return evalFixedXor<2>;
  case 3:
    return evalFixedXor<3>;
  case 4:
    return evalFixedXor<4>;
  default:
    return evalFixedXor<>;
  }
}

template <uint64_t (*Pext)(uint64_t, uint64_t)>
EvalFnT selectFixedPextEval(size_t M) {
  switch (M) {
  case 1:
    return evalFixedPext<Pext, 1>;
  case 2:
    return evalFixedPext<Pext, 2>;
  case 3:
    return evalFixedPext<Pext, 3>;
  case 4:
    return evalFixedPext<Pext, 4>;
  default:
    return evalFixedPext<Pext>;
  }
}

BatchFnT selectFixedXorBatch(size_t M) {
  switch (M) {
  case 1:
    return batchFixedXor<1>;
  case 2:
    return batchFixedXor<2>;
  case 3:
    return batchFixedXor<3>;
  case 4:
    return batchFixedXor<4>;
  default:
    return batchFixedXor<>;
  }
}

template <uint64_t (*Pext)(uint64_t, uint64_t)>
BatchFnT selectFixedPextBatch(size_t M) {
  switch (M) {
  case 1:
    return batchFixedPext<Pext, 1>;
  case 2:
    return batchFixedPext<Pext, 2>;
  case 3:
    return batchFixedPext<Pext, 3>;
  case 4:
    return batchFixedPext<Pext, 4>;
  default:
    return batchFixedPext<Pext>;
  }
}

} // namespace

SynthesizedHash::EvalFn SynthesizedHash::selectEval(const HashPlan &Plan,
                                                    IsaLevel Isa) {
  if (Plan.FallbackToStl)
    return evalFallback;

  // pext hardware is available only at Native; AES hardware also at
  // NoBitExtract (the Jetson's situation).
  const bool HwPext = Isa == IsaLevel::Native;
  const bool Hw = Isa != IsaLevel::Portable;
  if (Plan.PartialLoad) {
    switch (Plan.Family) {
    case HashFamily::Naive:
    case HashFamily::OffXor:
      return evalPartialXor;
    case HashFamily::Pext:
      return HwPext ? evalPartialPext<pextHw> : evalPartialPext<pextSoft>;
    case HashFamily::Aes:
      return Hw ? evalPartialAes<aesEncRoundHw>
                : evalPartialAes<aesEncRoundSoft>;
    }
  }

  if (Plan.FixedLength) {
    switch (Plan.Family) {
    case HashFamily::Naive:
    case HashFamily::OffXor:
      return selectFixedXorEval(Plan.Steps.size());
    case HashFamily::Pext:
      return HwPext ? selectFixedPextEval<pextHw>(Plan.Steps.size())
                    : selectFixedPextEval<pextSoft>(Plan.Steps.size());
    case HashFamily::Aes:
#if defined(SEPE_HAVE_AESNI)
      if (Hw)
        return evalFixedAesNative;
#endif
      return Hw ? evalFixedAes<aesEncRoundHw>
                : evalFixedAes<aesEncRoundSoft>;
    }
  }

  switch (Plan.Family) {
  case HashFamily::Naive:
  case HashFamily::OffXor:
    return evalVarXor;
  case HashFamily::Pext:
    return HwPext ? evalVarPext<pextHw> : evalVarPext<pextSoft>;
  case HashFamily::Aes:
    return Hw ? evalVarAes<aesEncRoundHw> : evalVarAes<aesEncRoundSoft>;
  }
  unreachable("all plan shapes handled above");
}

SynthesizedHash::BatchFn SynthesizedHash::selectBatch(const HashPlan &Plan,
                                                      IsaLevel Isa) {
  if (Plan.FallbackToStl)
    return batchViaSingle<evalFallback>;

  const bool HwPext = Isa == IsaLevel::Native;
  const bool Hw = Isa != IsaLevel::Portable;
  if (Plan.PartialLoad) {
    switch (Plan.Family) {
    case HashFamily::Naive:
    case HashFamily::OffXor:
      return batchViaSingle<evalPartialXor>;
    case HashFamily::Pext:
      return HwPext ? batchViaSingle<evalPartialPext<pextHw>>
                    : batchViaSingle<evalPartialPext<pextSoft>>;
    case HashFamily::Aes:
      return Hw ? batchViaSingle<evalPartialAes<aesEncRoundHw>>
                : batchViaSingle<evalPartialAes<aesEncRoundSoft>>;
    }
  }

  if (Plan.FixedLength) {
    switch (Plan.Family) {
    case HashFamily::Naive:
    case HashFamily::OffXor:
      return selectFixedXorBatch(Plan.Steps.size());
    case HashFamily::Pext:
      return HwPext ? selectFixedPextBatch<pextHw>(Plan.Steps.size())
                    : selectFixedPextBatch<pextSoft>(Plan.Steps.size());
    case HashFamily::Aes:
#if defined(SEPE_HAVE_AESNI)
      if (Hw)
        return batchFixedAesNative;
#endif
      return Hw ? batchViaSingle<evalFixedAes<aesEncRoundHw>>
                : batchViaSingle<evalFixedAes<aesEncRoundSoft>>;
    }
  }

  switch (Plan.Family) {
  case HashFamily::Naive:
  case HashFamily::OffXor:
    return batchViaSingle<evalVarXor>;
  case HashFamily::Pext:
    return HwPext ? batchViaSingle<evalVarPext<pextHw>>
                  : batchViaSingle<evalVarPext<pextSoft>>;
  case HashFamily::Aes:
    return Hw ? batchViaSingle<evalVarAes<aesEncRoundHw>>
              : batchViaSingle<evalVarAes<aesEncRoundSoft>>;
  }
  unreachable("all plan shapes handled above");
}

SynthesizedHash::SynthesizedHash(std::shared_ptr<const HashPlan> Plan,
                                 IsaLevel Isa)
    : Plan(std::move(Plan)) {
  assert(this->Plan && "SynthesizedHash requires a plan");
  Eval = selectEval(*this->Plan, Isa);
  Batch = selectBatch(*this->Plan, Isa);
}
