//===- core/executor.cpp - Runtime evaluation of HashPlans ---------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "core/executor.h"

#include "hashes/aes_round.h"
#include "hashes/murmur.h"
#include "support/bit_ops.h"

#include <bit>

#if defined(SEPE_HAVE_AESNI)
#include <immintrin.h>
#endif

using namespace sepe;

namespace {

/// Initial AES state; arbitrary odd constants (first digits of pi/e) —
/// the Aes family derives its dispersion from the round function, not
/// the seed.
constexpr Block128 AesInitState{0x243f6a8885a308d3ULL,
                                0x13198a2e03707344ULL};

uint64_t evalFallback(const HashPlan &, const char *Data, size_t Len) {
  return murmurHashBytes(Data, Len, StlHashSeed);
}

// --- Fixed-length paths ---------------------------------------------------

uint64_t evalFixedXor(const HashPlan &Plan, const char *Data, size_t) {
  uint64_t Hash = 0;
  for (const PlanStep &S : Plan.Steps)
    Hash ^= loadU64Le(Data + S.Offset);
  return Hash;
}

template <uint64_t (*Pext)(uint64_t, uint64_t)>
uint64_t evalFixedPext(const HashPlan &Plan, const char *Data, size_t) {
  uint64_t Hash = 0;
  // Chunks are *rotated* into place rather than shifted so formats with
  // more than 64 relevant bits wrap around without losing entropy
  // (Section 4.2: zero T-Coll even on 400-relevant-bit keys). For
  // chunks that fit, rotl is identical to the shift in Figure 12.
  for (const PlanStep &S : Plan.Steps)
    Hash ^= std::rotl(Pext(loadU64Le(Data + S.Offset), S.Mask), S.Shift);
  return Hash;
}

template <Block128 (*Round)(Block128, Block128)>
uint64_t evalFixedAes(const HashPlan &Plan, const char *Data, size_t Len) {
  Block128 State = AesInitState;
  State.Lo ^= Len;
  const std::vector<PlanStep> &Steps = Plan.Steps;
  size_t I = 0;
  for (; I + 1 < Steps.size(); I += 2) {
    const Block128 Chunk{loadU64Le(Data + Steps[I].Offset),
                         loadU64Le(Data + Steps[I + 1].Offset)};
    State = Round(State, Chunk);
  }
  if (I < Steps.size()) {
    // Odd number of loads: replicate the last word to fill the block,
    // the behavior that costs the Aes family a handful of collisions on
    // keys shorter than 16 bytes (Section 4.2).
    const uint64_t Last = loadU64Le(Data + Steps[I].Offset);
    State = Round(State, Block128{Last, Last});
  }
  State = Round(State, AesInitState);
  return State.Lo ^ State.Hi;
}

#if defined(SEPE_HAVE_AESNI)
/// Register-resident variant of evalFixedAes: bit-identical to the
/// template instantiated with aesEncRoundHw, but the 128-bit state stays
/// in an xmm register across rounds instead of round-tripping through
/// Block128.
uint64_t evalFixedAesNative(const HashPlan &Plan, const char *Data,
                            size_t Len) {
  const __m128i Init = _mm_set_epi64x(
      static_cast<long long>(0x13198a2e03707344ULL),
      static_cast<long long>(0x243f6a8885a308d3ULL));
  __m128i State = _mm_set_epi64x(
      static_cast<long long>(0x13198a2e03707344ULL),
      static_cast<long long>(0x243f6a8885a308d3ULL ^ Len));
  const std::vector<PlanStep> &Steps = Plan.Steps;
  size_t I = 0;
  for (; I + 1 < Steps.size(); I += 2) {
    const __m128i Chunk = _mm_set_epi64x(
        static_cast<long long>(loadU64Le(Data + Steps[I + 1].Offset)),
        static_cast<long long>(loadU64Le(Data + Steps[I].Offset)));
    State = _mm_aesenc_si128(State, Chunk);
  }
  if (I < Steps.size()) {
    const long long Last =
        static_cast<long long>(loadU64Le(Data + Steps[I].Offset));
    State = _mm_aesenc_si128(State, _mm_set_epi64x(Last, Last));
  }
  State = _mm_aesenc_si128(State, Init);
  const uint64_t Lo = static_cast<uint64_t>(_mm_cvtsi128_si64(State));
  const uint64_t Hi = static_cast<uint64_t>(
      _mm_cvtsi128_si64(_mm_unpackhi_epi64(State, State)));
  return Lo ^ Hi;
}
#endif

// --- Short forced-specialization path (RQ7) -------------------------------

uint64_t evalPartialXor(const HashPlan &Plan, const char *Data, size_t Len) {
  (void)Plan;
  return loadBytesLe(Data, Len < 8 ? Len : 8);
}

template <uint64_t (*Pext)(uint64_t, uint64_t)>
uint64_t evalPartialPext(const HashPlan &Plan, const char *Data, size_t Len) {
  const uint64_t Word = loadBytesLe(Data, Len < 8 ? Len : 8);
  return Pext(Word, Plan.Steps.front().Mask);
}

template <Block128 (*Round)(Block128, Block128)>
uint64_t evalPartialAes(const HashPlan &Plan, const char *Data, size_t Len) {
  (void)Plan;
  const uint64_t Word = loadBytesLe(Data, Len < 8 ? Len : 8);
  Block128 State = AesInitState;
  State.Lo ^= Len;
  State = Round(State, Block128{Word, Word});
  State = Round(State, AesInitState);
  return State.Lo ^ State.Hi;
}

// --- Variable-length (skip table) paths: Figure 8 -------------------------

/// Walks the skip table, handing each loaded word and then each tail
/// byte to the callbacks.
template <typename WordFn, typename ByteFn>
void walkSkipTable(const HashPlan &Plan, const char *Data, size_t Len,
                   WordFn Word, ByteFn Byte) {
  const SkipTable &Table = Plan.Skip;
  const char *P = Data;
  const char *End = Data + Len;
  if (!Table.Skip.empty()) {
    P += Table.Skip[0];
    for (size_t C = 1; C != Table.Skip.size(); ++C) {
      Word(loadU64Le(P), C - 1);
      P += Table.Skip[C];
    }
  }
  while (P < End) {
    Byte(static_cast<uint8_t>(*P));
    ++P;
  }
}

uint64_t evalVarXor(const HashPlan &Plan, const char *Data, size_t Len) {
  uint64_t Hash = Len;
  unsigned TailShift = 0;
  walkSkipTable(
      Plan, Data, Len, [&](uint64_t W, size_t) { Hash ^= W; },
      [&](uint8_t B) {
        Hash ^= std::rotl(static_cast<uint64_t>(B),
                          static_cast<int>(TailShift));
        TailShift = (TailShift + 8) & 63;
      });
  return Hash;
}

template <uint64_t (*Pext)(uint64_t, uint64_t)>
uint64_t evalVarPext(const HashPlan &Plan, const char *Data, size_t Len) {
  uint64_t Hash = Len;
  unsigned BitOffset = 0;
  unsigned TailShift = 0;
  walkSkipTable(
      Plan, Data, Len,
      [&](uint64_t W, size_t C) {
        const uint64_t Mask = Plan.Skip.Masks[C];
        Hash ^= std::rotl(Pext(W, Mask), static_cast<int>(BitOffset & 63));
        BitOffset += static_cast<unsigned>(__builtin_popcountll(Mask));
      },
      [&](uint8_t B) {
        Hash ^= std::rotl(static_cast<uint64_t>(B),
                          static_cast<int>((BitOffset + TailShift) & 63));
        TailShift = (TailShift + 8) & 63;
      });
  return Hash;
}

template <Block128 (*Round)(Block128, Block128)>
uint64_t evalVarAes(const HashPlan &Plan, const char *Data, size_t Len) {
  Block128 State = AesInitState;
  State.Lo ^= Len;
  uint64_t Pending = 0;
  bool HavePending = false;
  uint64_t TailAcc = 0;
  unsigned TailShift = 0;
  walkSkipTable(
      Plan, Data, Len,
      [&](uint64_t W, size_t) {
        if (HavePending) {
          State = Round(State, Block128{Pending, W});
          HavePending = false;
          return;
        }
        Pending = W;
        HavePending = true;
      },
      [&](uint8_t B) {
        TailAcc ^= static_cast<uint64_t>(B) << TailShift;
        TailShift = (TailShift + 8) & 63;
      });
  if (HavePending)
    State = Round(State, Block128{Pending, Pending});
  if (TailShift != 0 || TailAcc != 0)
    State = Round(State, Block128{TailAcc, Len});
  State = Round(State, AesInitState);
  return State.Lo ^ State.Hi;
}

} // namespace

SynthesizedHash::EvalFn SynthesizedHash::selectEval(const HashPlan &Plan,
                                                    IsaLevel Isa) {
  if (Plan.FallbackToStl)
    return evalFallback;

  // pext hardware is available only at Native; AES hardware also at
  // NoBitExtract (the Jetson's situation).
  const bool HwPext = Isa == IsaLevel::Native;
  const bool Hw = Isa != IsaLevel::Portable;
  if (Plan.PartialLoad) {
    switch (Plan.Family) {
    case HashFamily::Naive:
    case HashFamily::OffXor:
      return evalPartialXor;
    case HashFamily::Pext:
      return HwPext ? evalPartialPext<pextHw> : evalPartialPext<pextSoft>;
    case HashFamily::Aes:
      return Hw ? evalPartialAes<aesEncRoundHw>
                : evalPartialAes<aesEncRoundSoft>;
    }
  }

  if (Plan.FixedLength) {
    switch (Plan.Family) {
    case HashFamily::Naive:
    case HashFamily::OffXor:
      return evalFixedXor;
    case HashFamily::Pext:
      return HwPext ? evalFixedPext<pextHw> : evalFixedPext<pextSoft>;
    case HashFamily::Aes:
#if defined(SEPE_HAVE_AESNI)
      if (Hw)
        return evalFixedAesNative;
#endif
      return Hw ? evalFixedAes<aesEncRoundHw>
                : evalFixedAes<aesEncRoundSoft>;
    }
  }

  switch (Plan.Family) {
  case HashFamily::Naive:
  case HashFamily::OffXor:
    return evalVarXor;
  case HashFamily::Pext:
    return HwPext ? evalVarPext<pextHw> : evalVarPext<pextSoft>;
  case HashFamily::Aes:
    return Hw ? evalVarAes<aesEncRoundHw> : evalVarAes<aesEncRoundSoft>;
  }
  assert(false && "unreachable: all plan shapes handled above");
  return evalFallback;
}

SynthesizedHash::SynthesizedHash(std::shared_ptr<const HashPlan> Plan,
                                 IsaLevel Isa)
    : Plan(std::move(Plan)) {
  assert(this->Plan && "SynthesizedHash requires a plan");
  Eval = selectEval(*this->Plan, Isa);
}
